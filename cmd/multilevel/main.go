// Command multilevel plans a two-level deployment (buddy in-memory
// checkpointing + low-rate global stable-storage dumps), the
// hierarchical combination the paper's conclusion proposes as future
// work: it prints, per protocol, the optimized inner period, the
// global-dump interval, the waste premium paid for the global level,
// and the expected loss an unprotected deployment would suffer. With
// -runs > 0 it cross-checks each plan by Monte-Carlo through the
// unified multilevel evaluation backend (internal/engine) and appends
// the simulated waste.
//
// Usage:
//
//	multilevel [-scenario Base|Exa] [-mtbf 300] [-phi 0]
//	           [-g 200] [-rg 200] [-life 2592000]
//	           [-runs 16] [-tbase 100000] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/multilevel"
	"repro/internal/scenario"
)

func main() {
	scName := flag.String("scenario", "Base", "scenario from Table I (Base or Exa)")
	mtbf := flag.Float64("mtbf", 300, "platform MTBF in seconds")
	phiFrac := flag.Float64("phi", 0, "overhead fraction of R")
	g := flag.Float64("g", 200, "global (whole-application) checkpoint duration in seconds")
	rg := flag.Float64("rg", 200, "global recovery duration in seconds")
	life := flag.Float64("life", 30*scenario.Day, "platform exploitation length in seconds")
	runs := flag.Int("runs", 16, "Monte-Carlo cross-check runs per protocol (0 = analytic only)")
	tbase := flag.Float64("tbase", 1e5, "failure-free application duration for the cross-check (s)")
	seed := flag.Uint64("seed", 42, "base RNG seed for the cross-check")
	flag.Parse()

	sc, err := scenario.ByName(*scName)
	if err != nil {
		fail(err)
	}
	p := sc.Params.WithMTBF(*mtbf)

	fmt.Printf("scenario %s, M = %.0fs, G = %.0fs, life = %.0fs\n\n", sc.Name, *mtbf, *g, *life)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "protocol\tinner P\tglobal every\tk\twaste\tpremium\tMTTI\tunprotected loss"
	if *runs > 0 {
		header += "\tsim waste\tci95"
	}
	fmt.Fprintln(w, header)
	for _, pr := range core.Protocols {
		phi := *phiFrac * p.R
		plan, err := multilevel.Optimize(multilevel.Config{
			Protocol: pr, Params: p, Phi: phi, G: *g, Rg: *rg,
		})
		if err != nil {
			fmt.Fprintf(w, "%s\tinfeasible (%v)\t\t\t\t\t\t\n", pr, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%.0fs\t%.0fs\t%d\t%.4f\t%.4f\t%.2gs\t%.4f",
			pr, plan.Period, plan.GlobalPeriod, plan.K, plan.Waste,
			plan.Waste-plan.InnerWaste, plan.MTTI,
			multilevel.LossIfUnprotected(pr, p, phi, *life))
		if *runs > 0 {
			// Cross-check the analytic plan through the unified backend:
			// the simulated two-level waste must track plan.Waste.
			row, err := experiments.ValidateRequest(engine.Multilevel{}, engine.Request{
				Protocol: pr,
				Params:   p,
				Phi:      phi,
				Period:   plan.Period,
				Tbase:    *tbase,
				Global:   &engine.Global{G: *g, Rg: *rg, K: plan.K},
			}, *seed, *runs, 0)
			if err != nil {
				fmt.Fprintf(w, "\t(%v)\t", err)
			} else {
				fmt.Fprintf(w, "\t%.4f\t%.4f", row.SimWaste, row.SimCI)
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "multilevel:", err)
	os.Exit(1)
}
