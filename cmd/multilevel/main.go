// Command multilevel plans a two-level deployment (buddy in-memory
// checkpointing + low-rate global stable-storage dumps), the
// hierarchical combination the paper's conclusion proposes as future
// work: it prints, per protocol, the optimized inner period, the
// global-dump interval, the waste premium paid for the global level,
// and the expected loss an unprotected deployment would suffer.
//
// Usage:
//
//	multilevel [-scenario Base|Exa] [-mtbf 300] [-phi 0]
//	           [-g 200] [-rg 200] [-life 2592000]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/multilevel"
	"repro/internal/scenario"
)

func main() {
	scName := flag.String("scenario", "Base", "scenario from Table I (Base or Exa)")
	mtbf := flag.Float64("mtbf", 300, "platform MTBF in seconds")
	phiFrac := flag.Float64("phi", 0, "overhead fraction of R")
	g := flag.Float64("g", 200, "global (whole-application) checkpoint duration in seconds")
	rg := flag.Float64("rg", 200, "global recovery duration in seconds")
	life := flag.Float64("life", 30*scenario.Day, "platform exploitation length in seconds")
	flag.Parse()

	sc, err := scenario.ByName(*scName)
	if err != nil {
		fail(err)
	}
	p := sc.Params.WithMTBF(*mtbf)

	fmt.Printf("scenario %s, M = %.0fs, G = %.0fs, life = %.0fs\n\n", sc.Name, *mtbf, *g, *life)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tinner P\tglobal every\tk\twaste\tpremium\tMTTI\tunprotected loss")
	for _, pr := range core.Protocols {
		phi := *phiFrac * p.R
		plan, err := multilevel.Optimize(multilevel.Config{
			Protocol: pr, Params: p, Phi: phi, G: *g, Rg: *rg,
		})
		if err != nil {
			fmt.Fprintf(w, "%s\tinfeasible (%v)\t\t\t\t\t\t\n", pr, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%.0fs\t%.0fs\t%d\t%.4f\t%.4f\t%.2gs\t%.4f\n",
			pr, plan.Period, plan.GlobalPeriod, plan.K, plan.Waste,
			plan.Waste-plan.InnerWaste, plan.MTTI,
			multilevel.LossIfUnprotected(pr, p, phi, *life))
	}
	w.Flush()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "multilevel:", err)
	os.Exit(1)
}
