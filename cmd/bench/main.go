// Command bench runs the repository's fixed performance suite — the
// Monte-Carlo kernel, the streaming batch aggregation, the detailed
// substrate engine (memoized one-shot vs compiled batch), the API
// sweep engine, the durable job path, the adaptive-precision executor
// with its equal-CI fixed-budget comparison, the distributed fabric's
// coordination overhead, and the replication plane's quorum tax on the
// durable job path — and writes a machine-readable JSON report, so
// every PR extends a comparable perf trajectory (BENCH_PR10.json is
// this PR's committed snapshot). The lane-batched
// kernel is reported per layer — runner_throughput (scalar oracle),
// lane_exact (SoA + wave replay, bitwise-scalar), lane_fast_inverse
// (closed-form replay, inverse-CDF sampler) and engine_throughput
// (production: closed-form replay + ziggurat) — so the committed
// report decomposes the speedup.
//
// Usage:
//
//	go run ./cmd/bench [-short] [-out bench.json] \
//	    [-baseline BENCH_PR10.json] [-max-regress 0.25] \
//	    [-cpuprofile cpu.pprof]
//
// With -baseline, the measured headline ns/op rows are compared
// against the committed report and the process exits non-zero when
// any regressed by more than -max-regress (CI's regression gate).
// With -cpuprofile, the benchmark loop runs under the CPU profiler;
// the resulting profile is what cmd/bench/default.pgo is built from
// (go build -pgo picks it up for the release binary).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fabric"
	"repro/internal/jobs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Metric is one benchmark's result row.
type Metric struct {
	Name     string             `json:"name"`
	NsOp     float64            `json:"ns_op"`
	AllocsOp int64              `json:"allocs_op"`
	BytesOp  int64              `json:"bytes_op"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// Report is the JSON document cmd/bench writes.
type Report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Short      bool     `json:"short"`
	Benchmarks []Metric `json:"benchmarks"`
	// PR1Baseline records the seed engine's numbers (before this PR's
	// zero-allocation kernel), measured interleaved with the new code
	// on the same machine, so the report carries its own before/after.
	PR1Baseline map[string]Metric `json:"pr1_baseline"`
}

// pr1Baseline is the historical record of the pre-optimization engine
// (PR 1 state), measured with interleaved A/B runs on the machine that
// produced the committed BENCH_PR2.json. It is embedded so the
// before/after comparison travels with every report.
var pr1Baseline = map[string]Metric{
	"engine_throughput": {
		Name:     "engine_throughput",
		NsOp:     340831, // mean of 3 interleaved rounds
		AllocsOp: 5,
		BytesOp:  752,
		Extra:    map[string]float64{"failures/sec": 1.68e6},
	},
	"batch_runmany_2048": {
		Name:     "batch_runmany_2048",
		NsOp:     71066345,
		AllocsOp: 10247,
		BytesOp:  1720609,
	},
}

// throughputConfig is the fixed kernel workload, identical to
// bench_test.go's BenchmarkEngineThroughput.
func throughputConfig(short bool) sim.Config {
	cfg := sim.Config{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithMTBF(1800),
		Phi:      1,
		Tbase:    1e6,
	}
	if short {
		cfg.Tbase = 1e5
	}
	return cfg
}

// metric converts a BenchmarkResult.
func metric(name string, r testing.BenchmarkResult) Metric {
	m := Metric{
		Name:     name,
		NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}
	if len(r.Extra) > 0 {
		m.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			m.Extra[k] = v
		}
	}
	return m
}

// laneLayerMetric measures one configuration of the lane-batched
// kernel on the fixed throughput workload, reported per run: compile
// once, then drive full-width RunBatch calls. tune selects the layer
// (exact wave replay, inverse-CDF sampler, or the production default).
func laneLayerMetric(name string, short bool, tune func(*sim.LaneRunner)) Metric {
	batch, err := sim.Compile(throughputConfig(short))
	if err != nil {
		fatal(err)
	}
	lr, err := batch.NewLaneRunner(sim.DefaultLaneWidth)
	if err != nil {
		fatal(err)
	}
	tune(lr)
	w := lr.Width()
	seeds := make([]uint64, w)
	out := make([]sim.Result, w)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i += w {
			for j := range seeds {
				seeds[j] = uint64(i + j)
			}
			lr.RunBatch(seeds, nil, out)
			for j := range out {
				total += out[j].Failures
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(total)/secs, "failures/sec")
		}
	})
	return metric(name, res)
}

// benchEngineThroughput measures the production Monte-Carlo path: the
// lane-batched SoA kernel with the closed-form fault-free fast-forward
// and the ziggurat sampler — the per-run cost RunMany's workers pay.
// Reports up to and including BENCH_PR6 measured sim.Run (a compile
// plus one scalar run per call) under this name; the scalar layer
// lives on as runner_throughput, and lane_exact / lane_fast_inverse
// decompose the speedup per layer.
func benchEngineThroughput(short bool) Metric {
	return laneLayerMetric("engine_throughput", short, func(*sim.LaneRunner) {})
}

// benchLaneExact measures the exact-mode lane kernel: SoA walk, wave
// replay and batched inverse-CDF sampling, bitwise identical to the
// scalar Runner — the mode the antithetic/adaptive executor runs.
func benchLaneExact(short bool) Metric {
	return laneLayerMetric("lane_exact", short, func(lr *sim.LaneRunner) { lr.SetExact(true) })
}

// benchLaneFastInverse measures the closed-form fast-forward with the
// inverse-CDF sampler still in place — isolating the replay layer from
// the ziggurat layer.
func benchLaneFastInverse(short bool) Metric {
	return laneLayerMetric("lane_fast_inverse", short, func(lr *sim.LaneRunner) { lr.SetZiggurat(false) })
}

// benchRunnerThroughput measures the compiled-batch kernel (the
// steady-state zero-allocation path RunMany executes).
func benchRunnerThroughput(short bool) Metric {
	batch, err := sim.Compile(throughputConfig(short))
	if err != nil {
		fatal(err)
	}
	r := batch.NewRunner()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			total += r.Run(uint64(i)).Failures
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(total)/secs, "failures/sec")
		}
	})
	return metric("runner_throughput", res)
}

// benchBatchRunMany measures the parallel streaming aggregation over a
// 2048-run batch (256 with -short).
func benchBatchRunMany(short bool) Metric {
	cfg := throughputConfig(true) // Tbase 1e5 keeps the batch bounded
	cfg.Seed = 42
	runs := 2048
	name := "batch_runmany_2048"
	if short {
		runs = 256
		name = "batch_runmany_256"
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		failures := 0.0
		for i := 0; i < b.N; i++ {
			agg, err := sim.RunMany(cfg, runs)
			if err != nil {
				b.Fatal(err)
			}
			failures += agg.Failures.Mean() * float64(agg.Failures.N())
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(runs*b.N)/secs, "runs/sec")
			b.ReportMetric(failures/secs, "failures/sec")
		}
	})
	return metric(name, res)
}

// detailedThroughputConfig is the fixed detailed-engine workload: a
// moderate platform (the substrates are O(N) per failure) with enough
// failures per run to exercise the cluster, registry and restore
// queue.
func detailedThroughputConfig(short bool) sim.DetailedConfig {
	cfg := sim.DetailedConfig{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithNodes(240).WithMTBF(600),
		Phi:      1,
		Tbase:    2e4,
	}
	if short {
		cfg.Tbase = 5e3
	}
	return cfg
}

// benchDetailedRun measures per-call sim.RunDetailed: compilation plus
// a full substrate rebuild (cluster, checkpoint registry, schedule)
// on every run — the shape of the pre-batch detailed engine.
func benchDetailedRun(short bool) Metric {
	cfg := detailedThroughputConfig(short)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			cfg.Seed = uint64(i)
			r, err := sim.RunDetailed(cfg)
			if err != nil {
				b.Fatal(err)
			}
			total += r.Failures
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(total)/secs, "failures/sec")
		}
	})
	return metric("detailed_run", res)
}

// benchDetailedRunner measures the compiled detailed batch path: the
// substrates are built once by CompileDetailed/NewRunner and rewound
// in place between runs.
func benchDetailedRunner(short bool) Metric {
	batch, err := sim.CompileDetailed(detailedThroughputConfig(short))
	if err != nil {
		fatal(err)
	}
	r := batch.NewRunner()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			dr, err := r.Run(uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			total += dr.Failures
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(total)/secs, "failures/sec")
		}
	})
	return metric("detailed_runner", res)
}

// benchSweep measures the API sweep engine end to end: grid expansion,
// batch compilation (cache-cold per iteration thanks to a fresh seed),
// parallel point evaluation and aggregation.
func benchSweep(short bool) Metric {
	svc := api.NewService(api.Options{})
	runs := 8
	if short {
		runs = 2
	}
	seed := uint64(0)
	const points = 8 // 2 protocols × 2 φ points × 2 MTBFs
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed++ // new seed: every point misses the item cache
			req := api.SweepRequest{
				Protocols: []string{"DoubleNBL", "Triple"},
				PhiFracs:  []float64{0.25, 0.75},
				MTBFs:     []float64{1800, 3600},
				Tbase:     2e4,
				Runs:      runs,
				Seed:      seed,
			}
			items, _, err := svc.Sweep(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if len(items) != points {
				b.Fatalf("got %d points, want %d", len(items), points)
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(points*b.N)/secs, "points/sec")
		}
	})
	return metric("sweep_points", res)
}

// benchJobOverhead measures the durable job path end to end: submit a
// fresh content-keyed job (normalize + store create), schedule it onto
// the job runner, execute its 4-point sweep through the shared pool
// with checkpointed (fsynced) NDJSON results, and wait for the
// terminal state. The same grid shape as benchSweep, so the delta
// between the two metrics is the durability overhead per job.
func benchJobOverhead(short bool) Metric {
	svc := api.NewService(api.Options{})
	dir, err := os.MkdirTemp("", "bench-jobs-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr, err := jobs.NewManager(jobs.Config{
		Dir:             dir,
		MaxConcurrent:   2,
		CheckpointEvery: 4,
		Exec:            svc.JobExecutor(),
		Normalize:       svc.NormalizeJobRequest,
	})
	if err != nil {
		fatal(err)
	}
	defer mgr.Close()
	tbase := 20000
	runs := 8
	if short {
		tbase = 10000
		runs = 2
	}
	const points = 4 // 2 φ points × 2 MTBFs
	seed := 0
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seed++ // fresh seed: a new job id and a cache-cold grid
			body := fmt.Sprintf(`{"protocols": ["DoubleNBL"], "phiFracs": [0.25, 0.75],
				"mtbfs": [1800, 3600], "tbase": %d, "runs": %d, "seed": %d}`, tbase, runs, seed)
			meta, created, err := mgr.Submit([]byte(body))
			if err != nil {
				b.Fatal(err)
			}
			if !created {
				b.Fatalf("job %s deduped; the seed should be fresh", meta.ID)
			}
			final, err := mgr.Wait(context.Background(), meta.ID)
			if err != nil {
				b.Fatal(err)
			}
			if final.State != jobs.Done || final.Completed != points {
				b.Fatalf("job finished as %+v", final)
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(points*b.N)/secs, "points/sec")
		}
	})
	return metric("job_overhead", res)
}

// benchReplicationOverhead measures the replication tax on the durable
// job path: the benchJobOverhead workload executed by a manager whose
// checkpoints must reach a write quorum of two in-process HTTP replicas
// (a 3-node fleet's worth), versus the same manager unreplicated. NsOp
// is the replicated job; Extra carries the unreplicated ns/op and the
// overhead ratio — the framing, CRC check, HTTP round trips and quorum
// wait per checkpoint, which is the cost every HA deployment pays.
func benchReplicationOverhead(short bool) Metric {
	newMgr := func(svc *api.Service, dir string, repl jobs.ReplicationSink) *jobs.Manager {
		mgr, err := jobs.NewManager(jobs.Config{
			Dir:             dir,
			MaxConcurrent:   2,
			CheckpointEvery: 4,
			Exec:            svc.JobExecutor(),
			Normalize:       svc.NormalizeJobRequest,
			Replicate:       repl,
		})
		if err != nil {
			fatal(err)
		}
		return mgr
	}
	jobLoop := func(mgr *jobs.Manager, seed *int) func(b *testing.B) {
		tbase, runs := 20000, 8
		if short {
			tbase, runs = 10000, 2
		}
		const points = 4 // 2 φ points × 2 MTBFs
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				*seed++ // fresh seed: a new job id and a cache-cold grid
				body := fmt.Sprintf(`{"protocols": ["DoubleNBL"], "phiFracs": [0.25, 0.75],
					"mtbfs": [1800, 3600], "tbase": %d, "runs": %d, "seed": %d}`, tbase, runs, *seed)
				meta, created, err := mgr.Submit([]byte(body))
				if err != nil {
					b.Fatal(err)
				}
				if !created {
					b.Fatalf("job %s deduped; the seed should be fresh", meta.ID)
				}
				final, err := mgr.Wait(context.Background(), meta.ID)
				if err != nil {
					b.Fatal(err)
				}
				if final.State != jobs.Done || final.Completed != points {
					b.Fatalf("job finished as %+v", final)
				}
			}
		}
	}
	tmp := func() string {
		dir, err := os.MkdirTemp("", "bench-repl-*")
		if err != nil {
			fatal(err)
		}
		return dir
	}
	dirs := []string{tmp(), tmp(), tmp()}
	defer func() {
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}()

	// Two replica peers, each a real store behind a real HTTP server.
	peers := make([]string, 2)
	servers := make([]*httptest.Server, 2)
	for i := range peers {
		store, err := jobs.NewStore(dirs[i])
		if err != nil {
			fatal(err)
		}
		rp, err := fabric.NewReplica(fabric.ReplicaConfig{Store: store})
		if err != nil {
			fatal(err)
		}
		mux := http.NewServeMux()
		rp.Routes(mux)
		servers[i] = httptest.NewServer(mux)
		peers[i] = servers[i].URL
	}
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
	}()
	leaderStore, err := jobs.NewStore(dirs[2])
	if err != nil {
		fatal(err)
	}
	repl, err := fabric.NewReplicator(fabric.ReplicatorConfig{
		Self:  "http://bench-leader",
		Peers: peers,
		Store: leaderStore,
	})
	if err != nil {
		fatal(err)
	}

	seed := 1 << 24
	svc := api.NewService(api.Options{})
	mgr := newMgr(svc, dirs[2], repl)
	res := testing.Benchmark(jobLoop(mgr, &seed))
	mgr.Close()

	plainDir := tmp()
	defer os.RemoveAll(plainDir)
	plain := newMgr(svc, plainDir, nil)
	plainRes := testing.Benchmark(jobLoop(plain, &seed))
	plain.Close()

	m := metric("replication_overhead", res)
	if m.Extra == nil {
		m.Extra = make(map[string]float64)
	}
	plainNs := float64(plainRes.T.Nanoseconds()) / float64(plainRes.N)
	m.Extra["unreplicated_ns_op"] = plainNs
	m.Extra["overhead_ratio"] = m.NsOp / plainNs
	return m
}

// adaptiveBenchGrid compiles the representative 3-backend grid of the
// adaptive-vs-fixed comparison: fast points spanning the variance
// spectrum (hostile, moderate and healthy MTBFs on one platform), a
// detailed point, and a multilevel point. The platform is shrunk to 96
// ranks so all three backends simulate the same physical machine.
func adaptiveBenchGrid(short bool) ([]engine.Batch, error) {
	tbase := 1e4
	if short {
		tbase = 5e3
	}
	p := scenario.Base().Params.WithNodes(96)
	mk := func(eng engine.Engine, mtbf float64, global *engine.Global) (engine.Batch, error) {
		q := p.WithMTBF(mtbf)
		req := engine.Request{
			Protocol: core.DoubleNBL,
			Params:   q,
			Phi:      0.25 * q.R,
			Tbase:    tbase,
			Global:   global,
		}
		resolved, err := eng.Resolve(req)
		if err != nil {
			return nil, err
		}
		return eng.Compile(resolved)
	}
	var batches []engine.Batch
	for _, pt := range []struct {
		eng    engine.Engine
		mtbf   float64
		global *engine.Global
	}{
		{engine.Fast{}, 600, nil},
		{engine.Fast{}, 3600, nil},
		{engine.Fast{}, 28800, nil},
		{engine.Detailed{}, 600, nil},
		{engine.Multilevel{}, 900, &engine.Global{G: 50, Rg: 50}},
	} {
		b, err := mk(pt.eng, pt.mtbf, pt.global)
		if err != nil {
			return nil, err
		}
		batches = append(batches, b)
	}
	return batches, nil
}

// adaptiveSearchResult caches the equal-precision fixed budgets per
// workload size: the search simulates far more than either timed
// side, and the regression gate re-invokes benchAdaptive at the
// baseline's size — the memo keeps that re-measure from paying the
// search twice in one process.
type adaptiveSearchResult struct {
	adaptiveRuns, fixedRuns int
	fixedBudget             []int
}

var adaptiveSearchMemo = map[bool]adaptiveSearchResult{}

// benchAdaptive measures the adaptive-precision executor on the
// 3-backend grid and computes its equal-precision comparison against
// fixed budgets: for every point, the smallest doubling fixed budget
// whose raw CI95 matches the adaptive run's achieved (variance-
// reduced) CI is searched, and the totals — runs and wall-clock — are
// reported in Extra. NsOp is the adaptive evaluation of the full grid.
func benchAdaptive(short bool) Metric {
	batches, err := adaptiveBenchGrid(short)
	if err != nil {
		fatal(err)
	}
	spec := engine.Precision{TargetRelErr: 0.05, MinRuns: 8, MaxRuns: 4096}
	const seed, fixedCap = 42, 1 << 15

	search, ok := adaptiveSearchMemo[short]
	if !ok {
		adaptiveRuns := 0
		for _, b := range batches {
			ar, err := engine.RunAdaptive(b, seed, spec, 0)
			if err != nil {
				fatal(err)
			}
			adaptiveRuns += ar.RunsUsed
			n := spec.MinRuns
			for {
				agg, err := engine.RunMany(b, seed, n, 0)
				if err != nil {
					fatal(err)
				}
				if agg.Waste.CI95() <= ar.CI95 {
					break
				}
				if n >= fixedCap {
					// Even the cap cannot match the variance-reduced CI;
					// charging the fixed side only the cap understates the
					// savings, so say so instead of silently pretending
					// equality.
					fmt.Printf("adaptive: fixed budget capped at %d runs with CI %.3g > adaptive %.3g; savings understated\n",
						n, agg.Waste.CI95(), ar.CI95)
					break
				}
				n *= 2
			}
			search.fixedBudget = append(search.fixedBudget, n)
			search.fixedRuns += n
		}
		search.adaptiveRuns = adaptiveRuns
		adaptiveSearchMemo[short] = search
	}
	adaptiveRuns, fixedRuns, fixedBudget := search.adaptiveRuns, search.fixedRuns, search.fixedBudget

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, batch := range batches {
				if _, err := engine.RunAdaptive(batch, seed, spec, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(adaptiveRuns*b.N)/secs, "runs/sec")
		}
	})
	fixedRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, batch := range batches {
				if _, err := engine.RunMany(batch, seed, fixedBudget[j], 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	m := metric("adaptive_sweep", res)
	if m.Extra == nil {
		m.Extra = make(map[string]float64)
	}
	m.Extra["adaptive_runs"] = float64(adaptiveRuns)
	m.Extra["fixed_runs_equal_ci"] = float64(fixedRuns)
	m.Extra["run_savings"] = float64(fixedRuns) / float64(adaptiveRuns)
	fixedNs := float64(fixedRes.T.Nanoseconds()) / float64(fixedRes.N)
	m.Extra["fixed_ns_op_equal_ci"] = fixedNs
	m.Extra["wallclock_savings"] = fixedNs / m.NsOp
	return m
}

// benchFabricOverhead measures the distributed fabric's coordination
// tax: the benchSweep grid executed through a coordinator over three
// in-process HTTP workers versus the same grid evaluated in-process.
// NsOp is the distributed sweep; Extra carries the single-node ns/op
// and the overhead ratio (partitioning + HTTP dispatch + merge, which
// dominates at this deliberately small grid — the point is to keep the
// fixed per-sweep cost on the trajectory, not to show speedup).
func benchFabricOverhead(short bool) Metric {
	runs := 8
	if short {
		runs = 2
	}
	servers := make([]*httptest.Server, 3)
	urls := make([]string, len(servers))
	for i := range servers {
		servers[i] = httptest.NewServer(api.NewServer(api.NewService(api.Options{})))
		urls[i] = servers[i].URL
	}
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
	}()
	coord, err := fabric.New(fabric.Config{Service: api.NewService(api.Options{}), Workers: urls})
	if err != nil {
		fatal(err)
	}
	const points = 8 // 2 protocols × 2 φ points × 2 MTBFs
	seed := uint64(1 << 20)
	mkReq := func() api.SweepRequest {
		seed++ // fresh seed: every point misses every worker's cache
		return api.SweepRequest{
			Protocols: []string{"DoubleNBL", "Triple"},
			PhiFracs:  []float64{0.25, 0.75},
			MTBFs:     []float64{1800, 3600},
			Tbase:     2e4,
			Runs:      runs,
			Seed:      seed,
		}
	}
	single := api.NewService(api.Options{})
	singleRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			items, _, err := single.Sweep(context.Background(), mkReq())
			if err != nil {
				b.Fatal(err)
			}
			if len(items) != points {
				b.Fatalf("got %d points, want %d", len(items), points)
			}
		}
	})
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body, err := json.Marshal(mkReq())
			if err != nil {
				b.Fatal(err)
			}
			got := 0
			err = coord.SweepStreamFrom(context.Background(), body, 0, nil, func([]byte) error {
				got++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if got != points {
				b.Fatalf("got %d points, want %d", got, points)
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(points*b.N)/secs, "points/sec")
		}
	})
	m := metric("fabric_overhead", res)
	if m.Extra == nil {
		m.Extra = make(map[string]float64)
	}
	singleNs := float64(singleRes.T.Nanoseconds()) / float64(singleRes.N)
	m.Extra["single_node_ns_op"] = singleNs
	m.Extra["overhead_ratio"] = m.NsOp / singleNs
	return m
}

// gatedBench describes one benchmark the regression gate checks. The
// fast kernel's alloc gate is absolute (+allocSlack): its hot path is
// allocation-free, so any per-run allocation is a regression. The
// detailed engine allocates proportionally to the failure sample
// (cluster Buddies slices, registry map growth), so its alloc gate is
// relative, like the time gate.
type gatedBench struct {
	name      string
	measure   func(short bool) Metric
	required  bool // error when missing from the baseline
	relAllocs bool // relative (1+maxRegress) alloc gate instead of +allocSlack
}

var gatedBenches = []gatedBench{
	{name: "engine_throughput", measure: benchEngineThroughput, required: true},
	// The lane layers and the batch aggregation ride the same kernel;
	// not required: baselines older than PR 8 do not carry the lane
	// rows, and PR 6's engine_throughput measured a different
	// definition (sim.Run per call).
	{name: "lane_exact", measure: benchLaneExact},
	{name: "lane_fast_inverse", measure: benchLaneFastInverse},
	{name: "batch_runmany_2048", measure: benchBatchRunMany, relAllocs: true},
	{name: "detailed_runner", measure: benchDetailedRunner, relAllocs: true},
	// The job path allocates per submission (request decode, store
	// writes), so its alloc gate is relative like the detailed one. Not
	// required: baselines older than PR 4 do not carry it.
	{name: "job_overhead", measure: benchJobOverhead, relAllocs: true},
	// The adaptive executor allocates per round (runner construction,
	// chunk buffers), so its alloc gate is relative too. Not required:
	// baselines older than PR 5 do not carry it.
	{name: "adaptive_sweep", measure: benchAdaptive, relAllocs: true},
	// The fabric path allocates per dispatch (HTTP requests, merge
	// buffers), so its alloc gate is relative. Not required: baselines
	// older than PR 6 do not carry it.
	{name: "fabric_overhead", measure: benchFabricOverhead, relAllocs: true},
	// The replicated job path allocates per checkpoint (frames, HTTP
	// requests, quorum fan-out), so its alloc gate is relative. Not
	// required: baselines older than PR 10 do not carry it.
	{name: "replication_overhead", measure: benchReplicationOverhead, relAllocs: true},
}

// gate compares the measured headline benchmarks against a committed
// report and returns an error when any regressed beyond maxRegress.
// ns/op is only comparable at equal workload sizes, so when the sizes
// differ (a -short CI run against a committed full-size snapshot) the
// gated benchmarks are re-measured once at the baseline's size.
//
// Caveat: the time gate compares against numbers measured on whatever
// machine produced the committed report; across very different
// hardware the threshold may need tuning (the fast kernel's absolute
// allocs/op gate never does).
func gate(rep Report, baselinePath string, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline: %w", err)
	}
	find := func(ms []Metric, name string) *Metric {
		for i := range ms {
			if ms[i].Name == name {
				return &ms[i]
			}
		}
		return nil
	}
	for _, gb := range gatedBenches {
		want := find(base.Benchmarks, gb.name)
		if want == nil {
			if gb.required {
				return fmt.Errorf("bench: %s missing from baseline", gb.name)
			}
			fmt.Printf("gate: %s not in baseline %s; skipping\n", gb.name, baselinePath)
			continue
		}
		got := find(rep.Benchmarks, gb.name)
		if rep.Short != base.Short {
			// Workload sizes (and size-suffixed names, like the batch
			// aggregation row) only compare at the baseline's size.
			fmt.Printf("gate: re-measuring %s at the baseline's workload size\n", gb.name)
			m := gb.measure(base.Short)
			got = &m
		}
		if got == nil {
			return fmt.Errorf("bench: %s missing from measurement", gb.name)
		}
		if gb.relAllocs {
			// Relative bound with a small absolute floor, so a tiny
			// baseline (the batch runner is ~1 alloc/op) doesn't turn
			// inliner jitter into a failure.
			limit := int64(float64(want.AllocsOp) * (1 + maxRegress))
			if floor := want.AllocsOp + 8; floor > limit {
				limit = floor
			}
			if got.AllocsOp > limit {
				return fmt.Errorf("bench: %s allocates %d/op, committed baseline is %d/op (limit %d)",
					gb.name, got.AllocsOp, want.AllocsOp, limit)
			}
		} else {
			// Per-op alloc counts drift by a few across Go versions'
			// inliner and escape analysis; real kernel regressions (an
			// allocation back on the per-failure path) show up as
			// hundreds per op.
			const allocSlack = 8
			if got.AllocsOp > want.AllocsOp+allocSlack {
				return fmt.Errorf("bench: %s allocates %d/op, committed baseline is %d/op (+%d slack)",
					gb.name, got.AllocsOp, want.AllocsOp, allocSlack)
			}
		}
		limit := want.NsOp * (1 + maxRegress)
		if got.NsOp > limit {
			return fmt.Errorf("bench: %s regressed: %.0f ns/op > %.0f ns/op (baseline %.0f +%d%%)",
				gb.name, got.NsOp, limit, want.NsOp, int(maxRegress*100))
		}
		fmt.Printf("gate ok: %s %.0f ns/op within %.0f ns/op (baseline %.0f +%d%%), %d allocs/op\n",
			gb.name, got.NsOp, limit, want.NsOp, int(maxRegress*100), got.AllocsOp)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	short := flag.Bool("short", false, "smaller workloads (CI-sized)")
	out := flag.String("out", "bench.json", "output JSON path")
	baseline := flag.String("baseline", "", "committed report to gate engine_throughput against")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression vs -baseline")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark loop (PGO input)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		Schema:      "repro-bench/v1",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Short:       *short,
		PR1Baseline: pr1Baseline,
	}
	for _, run := range []func(bool) Metric{
		benchEngineThroughput,
		benchLaneExact,
		benchLaneFastInverse,
		benchRunnerThroughput,
		benchBatchRunMany,
		benchDetailedRun,
		benchDetailedRunner,
		benchSweep,
		benchJobOverhead,
		benchAdaptive,
		benchFabricOverhead,
		benchReplicationOverhead,
	} {
		m := run(*short)
		fmt.Printf("%-22s %14.0f ns/op %8d allocs/op", m.Name, m.NsOp, m.AllocsOp)
		for k, v := range m.Extra {
			fmt.Printf("  %s=%.4g", k, v)
		}
		fmt.Println()
		rep.Benchmarks = append(rep.Benchmarks, m)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *baseline != "" {
		if err := gate(rep, *baseline, *maxRegress); err != nil {
			fatal(err)
		}
	}
}
