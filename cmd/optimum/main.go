// Command optimum compares the optimal checkpointing periods of the
// distributed protocols (Eq. 9, 10, 15) against the Young and Daly
// centralized formulas over a range of MTBFs, illustrating §III.B: the
// distributed protocols' waste is dominated by the (small) single-node
// checkpoint rather than a whole-application dump.
//
// Usage:
//
//	optimum [-scenario Base|Exa] [-phi 0.25] [-dumpx 100]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	scName := flag.String("scenario", "Base", "scenario from Table I (Base or Exa)")
	phiFrac := flag.Float64("phi", 0.25, "overhead fraction of R")
	dumpx := flag.Float64("dumpx", 100, "centralized dump cost as a multiple of delta")
	flag.Parse()

	sc, err := scenario.ByName(*scName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimum:", err)
		os.Exit(1)
	}

	mtbfs := []float64{10 * scenario.Minute, scenario.Hour, 7 * scenario.Hour, scenario.Day}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s, phi/R = %.2f, centralized dump = %.0fx delta\n",
		sc.Name, *phiFrac, *dumpx)
	fmt.Fprintln(w, "M\tYoung P\tDaly P\tcentral waste\tNBL P\tNBL waste\tBoF P\tBoF waste\tTriple P\tTriple waste")
	for _, m := range mtbfs {
		p := sc.Params.WithMTBF(m)
		phi := *phiFrac * p.R
		dump := *dumpx * p.Delta
		young := core.YoungPeriod(m, dump)
		daly := core.DalyPeriod(m, p.D, p.R, dump)
		central := core.CentralizedOptimalWaste(m, p.D, p.R, dump)
		row := fmt.Sprintf("%.0fs\t%.0f\t%.0f\t%.4f", m, young, daly, central)
		for _, pr := range []core.Protocol{core.DoubleNBL, core.DoubleBoF, core.TripleNBL} {
			ev := core.Evaluate(pr, p, phi)
			row += fmt.Sprintf("\t%.0f\t%.4f", ev.Period, ev.Waste)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
}
