// Command simulate validates the analytic model by Monte-Carlo
// simulation: it runs every protocol on the chosen scenario and prints
// model-vs-simulated waste and per-failure loss. It can also record
// and replay failure traces, and run the substrate-backed detailed
// simulator with its structural fatality cross-check.
//
// Usage:
//
//	simulate [-scenario Base|Exa] [-mtbf 1800] [-phi 0.25]
//	         [-tbase 2e5] [-runs 16] [-seed 42]
//	         [-record trace.json | -replay trace.json]
//	         [-detailed] [-weibull 0.7]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	scName := flag.String("scenario", "Base", "scenario from Table I (Base or Exa)")
	mtbf := flag.Float64("mtbf", 1800, "platform MTBF in seconds")
	phiFrac := flag.Float64("phi", 0.25, "overhead fraction of R")
	tbase := flag.Float64("tbase", 2e5, "failure-free application duration (s)")
	runs := flag.Int("runs", 16, "Monte-Carlo runs per protocol")
	seed := flag.Uint64("seed", 42, "base RNG seed")
	record := flag.String("record", "", "record a failure trace to this file and exit")
	replay := flag.String("replay", "", "replay a failure trace (single DoubleNBL run)")
	detailed := flag.Bool("detailed", false, "run the substrate-backed detailed simulator instead")
	weibull := flag.Float64("weibull", 0, "use a Weibull failure law with this shape (0 = exponential)")
	flag.Parse()

	sc, err := scenario.ByName(*scName)
	if err != nil {
		fail(err)
	}
	p := sc.Params.WithMTBF(*mtbf)

	switch {
	case *record != "":
		src := failure.NewMerged(p.N, p.M, rng.New(*seed))
		tr := failure.Collect(src, p.N, p.M, "exponential", *tbase*2)
		f, err := os.Create(*record)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := tr.Write(f); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %d failures over %.0fs to %s\n", len(tr.Events), *tbase*2, *record)
		return

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fail(err)
		}
		tr, err := failure.ReadTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		q := p.WithNodes(tr.Nodes)
		res, err := sim.Run(sim.Config{
			Protocol: core.DoubleNBL,
			Params:   q,
			Phi:      *phiFrac * q.R,
			Tbase:    *tbase,
			Source:   failure.NewReplay(tr.Events),
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("replayed %d failures: %+v\n", len(tr.Events), res)
		return

	case *detailed:
		// The detailed simulator needs a platform divisible by both
		// group sizes; shrink the rank count accordingly.
		n := p.N
		if n > 600 {
			n = 600
		}
		n -= n % 6
		q := p.WithNodes(n)
		fmt.Printf("detailed run: %d ranks, M = %.0fs\n", n, q.M)
		for _, pr := range core.Protocols {
			var law failure.Law
			if *weibull > 0 {
				law = failure.Weibull{Shape: *weibull, MTBF: failure.IndividualMTBF(q.M, q.N)}
			}
			res, err := sim.RunDetailed(sim.DetailedConfig{
				Protocol: pr,
				Params:   q,
				Phi:      *phiFrac * q.R,
				Tbase:    *tbase,
				Seed:     *seed,
				Law:      law,
			})
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-15s waste=%.5f failures=%d fatal=%v waves=%d maxImages=%d spareExhaustion=%d\n",
				pr, res.Waste, res.Failures, res.Fatal, res.CommittedWaves,
				res.MaxImagesPerRank, res.SpareExhaustion)
		}
		return
	}

	rows, err := experiments.Validate(sc, *mtbf, *phiFrac, *tbase, *runs, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("scenario %s, M = %.0fs, Tbase = %.0fs, %d runs/protocol\n\n",
		sc.Name, *mtbf, *tbase, *runs)
	fmt.Print(experiments.FormatValidation(rows))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
