// Command simulate validates the analytic model by Monte-Carlo
// simulation: it runs every protocol on the chosen scenario through
// one of the unified evaluation backends (fast, detailed, multilevel)
// and prints model-vs-simulated waste and per-failure loss. It can
// also record and replay failure traces, and print the detailed
// engine's substrate-level observations.
//
// Usage:
//
//	simulate [-scenario Base|Exa] [-mtbf 1800] [-phi 0.25]
//	         [-tbase 2e5] [-runs 16] [-seed 42]
//	         [-backend fast|detailed|multilevel]
//	         [-target-rel-err 0.05] [-max-runs 512]
//	         [-law exponential|weibull|lognormal] [-shape 0.7]
//	         [-g 200] [-rg 200] [-k 0]
//	         [-record trace.json | -replay trace.json]
//	         [-domain-size 4] [-burst-rate 2e-4] [-placement block|stripe]
//	         [-groups 3,1]
//	         [-substrate]
//
// With -target-rel-err, each protocol runs under the adaptive-
// precision executor (-runs is the first round, -max-runs the cap)
// and the table reports the budget each row actually consumed.
//
// The correlation flags enable spatially correlated failure domains
// and heterogeneous per-group MTBFs on the fast and detailed backends;
// -record composes the domain bursts into the recorded trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	scName := flag.String("scenario", "Base", "scenario from Table I (Base or Exa)")
	mtbf := flag.Float64("mtbf", 1800, "platform MTBF in seconds")
	phiFrac := flag.Float64("phi", 0.25, "overhead fraction of R")
	tbase := flag.Float64("tbase", 2e5, "failure-free application duration (s)")
	runs := flag.Int("runs", 16, "Monte-Carlo runs per protocol (first round under -target-rel-err)")
	seed := flag.Uint64("seed", 42, "base RNG seed")
	backend := flag.String("backend", "fast", "evaluation backend: fast, detailed or multilevel")
	targetRelErr := flag.Float64("target-rel-err", 0, "adaptive precision: stop once the waste CI95 is below this fraction of the waste (0 = fixed budget)")
	maxRuns := flag.Int("max-runs", 0, "adaptive precision: per-protocol run cap (default 32x runs)")
	lawName := flag.String("law", "", "failure law: exponential (default), weibull or lognormal")
	shape := flag.Float64("shape", 0, "weibull shape / lognormal sigma for -law")
	g := flag.Float64("g", 200, "multilevel: global checkpoint duration (s)")
	rg := flag.Float64("rg", 200, "multilevel: global recovery duration (s)")
	k := flag.Int("k", 0, "multilevel: inner periods per global checkpoint (0 = optimize)")
	record := flag.String("record", "", "record a failure trace to this file and exit")
	replay := flag.String("replay", "", "replay a failure trace (single DoubleNBL run)")
	domainSize := flag.Int("domain-size", 0, "correlated failures: nodes per failure domain (0 = i.i.d.)")
	burstRate := flag.Float64("burst-rate", 0, "correlated failures: platform-wide domain-burst rate (failures/s)")
	placement := flag.String("placement", "block", "correlated failures: domain placement, block or stripe")
	groups := flag.String("groups", "", "heterogeneous MTBFs: comma-separated relative per-group weights, e.g. 3,1")
	substrate := flag.Bool("substrate", false, "print the detailed engine's substrate observations instead of the table")
	flag.Parse()

	sc, err := scenario.ByName(*scName)
	if err != nil {
		fail(err)
	}
	p := sc.Params.WithMTBF(*mtbf)
	spec := scenario.Spec{Law: *lawName, Shape: *shape}
	corr, err := parseCorrelation(*domainSize, *burstRate, *placement, *groups)
	if err != nil {
		fail(err)
	}

	switch {
	case *record != "":
		stream := rng.New(*seed)
		var src failure.Source = failure.NewMerged(p.N, p.M, stream)
		if corr != nil && corr.Domains != nil {
			if err := corr.Domains.Validate(p.N); err != nil {
				fail(err)
			}
			src = failure.NewDomains(p.N, *corr.Domains, src, stream)
		}
		tr := failure.Collect(src, p.N, p.M, "exponential", *tbase*2)
		f, err := os.Create(*record)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := tr.Write(f); err != nil {
			fail(err)
		}
		fmt.Printf("recorded %d failures over %.0fs to %s\n", len(tr.Events), *tbase*2, *record)
		return

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fail(err)
		}
		tr, err := failure.ReadTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		q := p.WithNodes(tr.Nodes)
		// NewReplayTrace bounds the run by the trace's coverage: outliving
		// the log is a loud ErrTraceExhausted, never a silently fault-free
		// tail.
		res, err := sim.Run(sim.Config{
			Protocol: core.DoubleNBL,
			Params:   q,
			Phi:      *phiFrac * q.R,
			Tbase:    *tbase,
			Source:   failure.NewReplayTrace(tr),
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("replayed %d failures (coverage %.0fs): %+v\n", len(tr.Events), tr.Coverage(), res)
		return

	case *substrate:
		q := shrinkForDetailed(p)
		law, err := spec.ResolveLaw(q)
		if err != nil {
			fail(err)
		}
		fmt.Printf("detailed substrate run: %d ranks, M = %.0fs\n", q.N, q.M)
		for _, pr := range core.Protocols {
			res, err := sim.RunDetailed(sim.DetailedConfig{
				Protocol:    pr,
				Params:      q,
				Phi:         *phiFrac * q.R,
				Tbase:       *tbase,
				Seed:        *seed,
				Law:         law,
				Correlation: corr,
			})
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-15s waste=%.5f failures=%d fatal=%v waves=%d maxImages=%d spareExhaustion=%d\n",
				pr, res.Waste, res.Failures, res.Fatal, res.CommittedWaves,
				res.MaxImagesPerRank, res.SpareExhaustion)
		}
		return
	}

	eng, err := engine.ByName(*backend)
	if err != nil {
		fail(err)
	}
	if eng.Name() == "detailed" {
		// The detailed substrates are O(N) per failure; shrink the
		// platform (preserving the platform MTBF) like the substrate
		// report does.
		p = shrinkForDetailed(p)
	}
	law, err := spec.ResolveLaw(p)
	if err != nil {
		fail(err)
	}
	rows := make([]experiments.ValidationRow, 0, len(core.Protocols))
	adaptiveTotal := 0
	for _, pr := range core.Protocols {
		req := engine.Request{
			Protocol:    pr,
			Params:      p,
			Phi:         *phiFrac * p.R,
			Tbase:       *tbase,
			Law:         law,
			Correlation: corr,
		}
		if eng.Name() == "multilevel" {
			req.Global = &engine.Global{G: *g, Rg: *rg, K: *k}
		}
		var row experiments.ValidationRow
		if *targetRelErr > 0 {
			resolved, err := eng.Resolve(req)
			if err != nil {
				fail(err)
			}
			b, err := eng.Compile(resolved)
			if err != nil {
				fail(err)
			}
			spec := engine.Precision{TargetRelErr: *targetRelErr, MinRuns: *runs, MaxRuns: *maxRuns}
			var ar engine.AdaptiveResult
			row, ar, err = experiments.ValidateAdaptive(b, *seed, spec, 0)
			if err != nil {
				fail(err)
			}
			adaptiveTotal += ar.RunsUsed
		} else {
			var err error
			row, err = experiments.ValidateRequest(eng, req, *seed, *runs, 0)
			if err != nil {
				fail(err)
			}
		}
		rows = append(rows, row)
	}
	lawLabel := "exponential"
	if law != nil {
		lawLabel = law.Name()
	}
	if *targetRelErr > 0 {
		fmt.Printf("scenario %s, backend %s, law %s, M = %.0fs, Tbase = %.0fs, adaptive rel err %.3g (rounds of %d)\n\n",
			sc.Name, eng.Name(), lawLabel, p.M, *tbase, *targetRelErr, *runs)
	} else {
		fmt.Printf("scenario %s, backend %s, law %s, M = %.0fs, Tbase = %.0fs, %d runs/protocol\n\n",
			sc.Name, eng.Name(), lawLabel, p.M, *tbase, *runs)
	}
	fmt.Print(experiments.FormatValidation(rows))
	if *targetRelErr > 0 {
		// Under one fixed knob, every protocol would pay the hungriest
		// row's budget.
		maxUsed := 0
		for _, row := range rows {
			if row.Runs > maxUsed {
				maxUsed = row.Runs
			}
		}
		perRow := make([]string, len(rows))
		for i, row := range rows {
			perRow[i] = fmt.Sprint(row.Runs)
		}
		fmt.Printf("\nadaptive budget: %d runs total (per protocol: %s); "+
			"one fixed knob at equal precision would cost %d\n",
			adaptiveTotal, strings.Join(perRow, ", "), maxUsed*len(rows))
	}
}

// parseCorrelation builds the correlation settings from the command
// flags; nil when every flag keeps its i.i.d. default.
func parseCorrelation(domainSize int, burstRate float64, placement, groups string) (*failure.Correlation, error) {
	var c failure.Correlation
	if domainSize > 0 || burstRate != 0 {
		if domainSize < 1 {
			return nil, fmt.Errorf("simulate: -burst-rate needs -domain-size >= 1")
		}
		var stripe bool
		switch placement {
		case "", "block":
		case "stripe":
			stripe = true
		default:
			return nil, fmt.Errorf("simulate: unknown -placement %q (want block or stripe)", placement)
		}
		c.Domains = &failure.DomainSpec{Size: domainSize, Rate: burstRate, Stripe: stripe}
	}
	if groups != "" {
		for _, field := range strings.Split(groups, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("simulate: bad -groups weight %q: %v", field, err)
			}
			c.Groups = append(c.Groups, w)
		}
	}
	if c.IID() {
		return nil, nil
	}
	return &c, nil
}

// shrinkForDetailed caps the platform at 600 ranks, divisible by both
// buddy-group sizes, preserving the platform MTBF.
func shrinkForDetailed(p core.Params) core.Params {
	n := p.N
	if n > 600 {
		n = 600
	}
	n -= n % 6
	return p.WithNodes(n)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
