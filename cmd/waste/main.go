// Command waste evaluates the analytic waste model at a point or over
// a φ/R sweep: optimal period, period phases, fault-free and
// failure-induced waste for each protocol.
//
// Usage:
//
//	waste [-scenario Base|Exa] [-mtbf 25200] [-phi 0.25] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	scName := flag.String("scenario", "Base", "scenario from Table I (Base or Exa)")
	mtbf := flag.Float64("mtbf", 7*scenario.Hour, "platform MTBF in seconds")
	phiFrac := flag.Float64("phi", 0.25, "overhead as a fraction of R (0..1)")
	sweep := flag.Bool("sweep", false, "sweep phi/R from 0 to 1 instead of a single point")
	flag.Parse()

	sc, err := scenario.ByName(*scName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waste:", err)
		os.Exit(1)
	}
	p := sc.Params.WithMTBF(*mtbf)
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "waste:", err)
		os.Exit(1)
	}

	fracs := []float64{*phiFrac}
	if *sweep {
		fracs = nil
		for i := 0; i <= 10; i++ {
			fracs = append(fracs, float64(i)/10)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scenario %s, M = %.0fs\n", sc.Name, *mtbf)
	fmt.Fprintln(w, "protocol\tphi/R\tphi\ttheta\tP_opt\tsigma\twaste_ff\twaste_fail\twaste\tF\trisk")
	for _, frac := range fracs {
		for _, pr := range core.Protocols {
			ev := core.Evaluate(pr, p, frac*p.R)
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.1f\t%.1f\t%.1f\t%.5f\t%.5f\t%.5f\t%.1f\t%.1f\n",
				pr, frac, ev.Phi, ev.Theta, ev.Period, ev.Sigma,
				ev.WasteFF, ev.WasteRE, ev.Waste, ev.Loss, ev.Risk)
		}
	}
	w.Flush()
}
