// Command trace imports real failure logs into the repository's trace
// format and inspects existing traces. A LANL-style CSV log — one row
// per failure with a timestamp column and a node column — becomes the
// JSON document failure.ReadTrace accepts, ready for cmd/serve -traces
// or simulate -replay.
//
// Usage:
//
//	trace -nodes 96 -mtbf 3600 [-horizon 2e6] [-time-col 0] [-node-col 1]
//	      [-time-scale 1] [-node-base 0] [-law exponential]
//	      [-o cluster.json] failures.csv
//	trace -info cluster.json
//	trace -validate cluster.json
//
// Conversion sorts events by time, maps node ids through -node-base
// (LANL logs number nodes from 1), and records the log's observation
// window as the trace horizon — the replay engine refuses to simulate
// past it, so a run outliving the log fails loudly instead of coasting
// fault-free. -horizon 0 uses the last event's time, the most
// conservative window the log supports.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/failure"
)

func main() {
	nodes := flag.Int("nodes", 0, "platform size the log was recorded on (required for conversion)")
	mtbf := flag.Float64("mtbf", 0, "platform MTBF in seconds the log exhibits (required for conversion)")
	horizon := flag.Float64("horizon", 0, "observation window in seconds (0 = last event time)")
	timeCol := flag.Int("time-col", 0, "CSV column of the failure time")
	nodeCol := flag.Int("node-col", 1, "CSV column of the failed node id")
	timeScale := flag.Float64("time-scale", 1, "multiplier turning the time column into seconds (e.g. 3600 for hours)")
	nodeBase := flag.Int("node-base", 0, "offset subtracted from node ids (1 for logs numbering nodes from 1)")
	law := flag.String("law", "", "failure-law annotation recorded in the trace (informational)")
	out := flag.String("o", "", "output file (default stdout)")
	info := flag.String("info", "", "print a summary of this trace file and exit")
	validate := flag.String("validate", "", "validate this trace file and exit")
	flag.Parse()

	switch {
	case *info != "":
		tr := readTraceFile(*info)
		burstiness := describeBursts(tr)
		fmt.Printf("%s: %d nodes, %d events, platform MTBF %.0fs, coverage %.0fs%s\n",
			*info, tr.Nodes, len(tr.Events), tr.PlatformMTBF, tr.Coverage(), burstiness)
		if tr.Law != "" {
			fmt.Printf("law: %s\n", tr.Law)
		}
		return

	case *validate != "":
		tr := readTraceFile(*validate)
		if err := tr.Validate(); err != nil {
			fail(err)
		}
		fmt.Printf("%s: valid (%d events)\n", *validate, len(tr.Events))
		return
	}

	if *nodes < 1 || *mtbf <= 0 {
		fail(fmt.Errorf("conversion needs -nodes >= 1 and -mtbf > 0"))
	}
	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	events, err := readCSV(in, *timeCol, *nodeCol, *timeScale, *nodeBase, *nodes)
	if err != nil {
		fail(err)
	}
	tr := &failure.Trace{
		Nodes:        *nodes,
		PlatformMTBF: *mtbf,
		Law:          *law,
		Horizon:      *horizon,
		Events:       events,
	}
	if err := tr.Validate(); err != nil {
		fail(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fail(err)
	}
	if *out != "" {
		fmt.Printf("wrote %d events (coverage %.0fs) to %s\n", len(events), tr.Coverage(), *out)
	}
}

// readCSV parses one failure event per row, skipping a header row (a
// first row whose time column is not numeric) and blank lines.
func readCSV(r io.Reader, timeCol, nodeCol int, timeScale float64, nodeBase, nodes int) ([]failure.Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	var events []failure.Event
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row++
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue
		}
		if timeCol >= len(rec) || nodeCol >= len(rec) {
			return nil, fmt.Errorf("row %d has %d columns, need time-col %d and node-col %d",
				row, len(rec), timeCol, nodeCol)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(rec[timeCol]), 64)
		if err != nil {
			if row == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("row %d: bad time %q", row, rec[timeCol])
		}
		node, err := strconv.Atoi(strings.TrimSpace(rec[nodeCol]))
		if err != nil {
			return nil, fmt.Errorf("row %d: bad node id %q", row, rec[nodeCol])
		}
		node -= nodeBase
		if node < 0 || node >= nodes {
			return nil, fmt.Errorf("row %d: node %d outside [0, %d) after -node-base", row, node, nodes)
		}
		events = append(events, failure.Event{Time: t * timeScale, Node: node})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events, nil
}

// describeBursts summarizes simultaneous multi-node failures — the
// spatial-correlation signature the domain-burst model reproduces.
func describeBursts(tr *failure.Trace) string {
	bursts, largest := 0, 0
	for i := 0; i < len(tr.Events); {
		j := i
		for j < len(tr.Events) && tr.Events[j].Time == tr.Events[i].Time {
			j++
		}
		if size := j - i; size > 1 {
			bursts++
			if size > largest {
				largest = size
			}
		}
		i = j
	}
	if bursts == 0 {
		return ""
	}
	return fmt.Sprintf(", %d simultaneous bursts (largest %d nodes)", bursts, largest)
}

func readTraceFile(path string) *failure.Trace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := failure.ReadTrace(f)
	if err != nil {
		fail(err)
	}
	return tr
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}
