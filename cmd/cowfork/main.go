// Command cowfork explores the copy-on-write fork substrate (§IV and
// the paper's stated future work): it measures the COW overhead φ as a
// function of the upload duration θ for each upload ordering, fits the
// overlap factor α of the paper's linear model, and reports the δ
// reduction a fork-based local checkpoint would give the double
// protocols.
//
// Usage:
//
//	cowfork [-pages 131072] [-pagebytes 4096] [-writerate 20000]
//	        [-zipf 1.2] [-copyus 50] [-episodes 200] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/memory"
	"repro/internal/rng"
)

func main() {
	pages := flag.Int("pages", 131072, "resident pages (131072 x 4KiB = 512MB, the Base image)")
	pageBytes := flag.Int64("pagebytes", 4096, "page size in bytes")
	writeRate := flag.Float64("writerate", 20000, "application page-dirtying writes per second")
	zipf := flag.Float64("zipf", 1.2, "Zipf skew of the write distribution (0 = uniform)")
	copyus := flag.Float64("copyus", 50, "cost of one COW page duplication in microseconds")
	episodes := flag.Int("episodes", 200, "fork episodes averaged per (theta, order) point")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	proc := &memory.Process{
		Pages:     *pages,
		PageBytes: *pageBytes,
		WriteRate: *writeRate,
	}
	if *zipf > 0 {
		// Scatter the Zipf weights across the address space so that
		// AddressOrder differs from HotFirst the way it would for a
		// real application, whose hot pages are not laid out
		// contiguously at low addresses.
		zw := memory.ZipfWeights(*pages, *zipf)
		perm := make([]int, *pages)
		rng.New(*seed ^ 0x5ca77e2).Perm(perm)
		proc.Weights = make([]float64, *pages)
		for i, wt := range zw {
			proc.Weights[perm[i]] = wt
		}
	}
	copyTime := *copyus * 1e-6

	// θ grid from the Base scenario: R = 4s up to (1+α)R = 44s.
	thetas := []float64{4, 8, 12, 16, 24, 32, 44}
	stream := rng.New(*seed)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "image %.0f MB, write rate %.0f pages/s, copy cost %.0f us\n\n",
		float64(proc.Bytes())/(1<<20), *writeRate, *copyus)
	fmt.Fprintln(w, "order\ttheta (s)\tE[dups]\tmeasured phi (s)\tphi/theta_min")
	for _, order := range []memory.UploadOrder{memory.HotFirst, memory.AddressOrder, memory.ColdFirst} {
		curve, err := memory.PhiCurve(proc, thetas, copyTime, order, *episodes, stream)
		if err != nil {
			fail(err)
		}
		for i, pt := range curve {
			exp, err := memory.ExpectedDuplications(proc, thetas[i], order)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.4f\t%.4f\n",
				order, pt.Theta, exp, pt.Phi, pt.Phi/thetas[0])
		}
		if alpha, err := memory.FitAlpha(curve, thetas[0]); err == nil {
			fmt.Fprintf(w, "%s\tfitted alpha = %.2f\t\t\t\n", order, alpha)
		}
		fmt.Fprintln(w, "\t\t\t\t")
	}
	w.Flush()

	fmt.Printf("\nfork-based local checkpoint: delta %.2fs -> %.2fs (setup only)\n",
		memory.EffectiveDelta(proc, 256<<20, 0.05, false),
		memory.EffectiveDelta(proc, 256<<20, 0.05, true))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cowfork:", err)
	os.Exit(1)
}
