// Command serve exposes the evaluation service as an HTTP JSON API:
// the closed-form waste, optimal-period and risk models on /v1/waste,
// /v1/optimum and /v1/risk, the cached parallel Monte-Carlo sweep
// engine on /v1/sweep (NDJSON streaming with "Accept:
// application/x-ndjson"), and the durable, resumable job subsystem on
// /v1/jobs — sweeps submitted as jobs survive server restarts and
// resume mid-sweep from their last checkpoint, bitwise identically.
//
// The distributed fabric turns one serve process into a coordinator
// over a fleet: with -coordinator and -workers, /v1/sweep (and every
// job) is sharded across the worker URLs by consistent hashing and
// merged back byte-identically; with -worker-of, the process runs as a
// plain evaluation worker (no local job store). See README.md for curl
// examples and DESIGN.md, "API request lifecycle", "Job subsystem" and
// "Distributed fabric", for the internals.
//
// Usage:
//
//	serve [-addr :8080] [-cache 4096] [-sim-workers 0]
//	      [-maxgrid 4096] [-maxruns 256]
//	      [-jobs-dir jobs] [-max-concurrent-jobs 2] [-max-queued-jobs 0]
//	      [-checkpoint-every 16]
//	      [-coordinator] [-workers http://h1:8080,http://h2:8080]
//	      [-worker-of coordinator-name] [-lease 15s]
//	      [-peers http://h1:8080,http://h2:8080,http://h3:8080]
//	      [-self http://h1:8080] [-standby] [-replicas 0]
//	      [-heartbeat 1s] [-lease-ttl 4s]
//	      [-traces traces/]
//	      [-chaos "seed=42;comms:drop=0.1"]
//
// -peers turns the node into one member of an HA fleet: every durable
// job mutation is replicated over /v1/replica/* and only acked on a
// write quorum (-replicas peer acks; default a cluster majority), so
// any peer can resume any job with no shared disk. Exactly one node
// starts without -standby and leads at term 1; when its lease
// (-lease-ttl, renewed every -heartbeat) expires, the standbys promote
// in -peers order, adopt the replicated jobs, and resume byte-
// identically. A deposed leader is fenced by its stale term and halts
// instead of split-brain appending. See DESIGN.md, "Failure model".
//
// -traces registers every *.json failure trace in the directory (see
// cmd/trace for importing real failure logs); sweeps replay one with
// "scenario": {"trace": "<basename>", "backend": "detailed"}.
//
// -chaos arms the injectable fault plane (development and chaos
// drills only): a seeded, reproducible plan of drop / delay / corrupt
// / hang / partition faults over the coordinator's worker transport
// and the job store's append path. See internal/chaos and DESIGN.md,
// "Failure model".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/fabric"
	"repro/internal/failure"
	"repro/internal/jobs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 4096, "sweep-point LRU cache capacity (negative disables)")
	simWorkers := flag.Int("sim-workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	maxGrid := flag.Int("maxgrid", 4096, "maximum sweep grid points per request")
	maxRuns := flag.Int("maxruns", 256, "maximum Monte-Carlo runs per sweep point")
	jobsDir := flag.String("jobs-dir", "jobs", "durable job directory for /v1/jobs (empty disables the job subsystem)")
	maxJobs := flag.Int("max-concurrent-jobs", 2, "jobs executing simultaneously")
	maxQueued := flag.Int("max-queued-jobs", 0, "pending-job queue bound; new submissions over it get 503 + Retry-After (0 = unbounded)")
	ckptEvery := flag.Int("checkpoint-every", 16, "completed points per durable job checkpoint")
	tracesDir := flag.String("traces", "", "directory of failure-trace JSON files to register for scenario.trace replay")
	chaosPlan := flag.String("chaos", "", `fault-injection plan, e.g. "seed=42;comms:drop=0.1;store:corrupt=0.01" (dev only)`)
	coordinator := flag.Bool("coordinator", false, "run as fabric coordinator: shard sweeps across -workers")
	workerURLs := flag.String("workers", "", "comma-separated worker base URLs for -coordinator mode")
	workerOf := flag.String("worker-of", "", "run as a fabric worker for the named coordinator (disables the local job store)")
	lease := flag.Duration("lease", 15*time.Second, "coordinator per-dispatch heartbeat budget before re-dispatch")
	peers := flag.String("peers", "", "comma-separated fleet node URLs (including this node) enabling HA job replication")
	selfURL := flag.String("self", "", "this node's URL as it appears in -peers")
	standby := flag.Bool("standby", false, "join the HA fleet as a standby (exactly one node omits this)")
	replicas := flag.Int("replicas", 0, "peer acks a replicated write needs before the leader acks it (0 = cluster majority)")
	heartbeat := flag.Duration("heartbeat", time.Second, "HA leader lease-renewal period")
	leaseTTL := flag.Duration("lease-ttl", 4*time.Second, "HA leader lease TTL before standbys promote")
	flag.Parse()

	if *coordinator && *workerOf != "" {
		fmt.Fprintln(os.Stderr, "serve: -coordinator and -worker-of are mutually exclusive")
		os.Exit(1)
	}
	if *coordinator && *workerURLs == "" {
		fmt.Fprintln(os.Stderr, "serve: -coordinator needs -workers URL,URL,...")
		os.Exit(1)
	}
	if *peers != "" {
		if *selfURL == "" {
			fmt.Fprintln(os.Stderr, "serve: -peers needs -self URL")
			os.Exit(1)
		}
		if *workerOf != "" {
			fmt.Fprintln(os.Stderr, "serve: -peers and -worker-of are mutually exclusive")
			os.Exit(1)
		}
		if *jobsDir == "" {
			fmt.Fprintln(os.Stderr, "serve: -peers needs a -jobs-dir (replication is of the durable job store)")
			os.Exit(1)
		}
	}
	if *workerOf != "" {
		// A worker evaluates ranges on behalf of its coordinator; jobs
		// are durable on the coordinator, so a local store would only
		// invite split-brain submissions.
		*jobsDir = ""
	}

	svc := api.NewService(api.Options{
		CacheSize:     *cache,
		Workers:       *simWorkers,
		MaxGridPoints: *maxGrid,
		MaxRuns:       *maxRuns,
	})
	if *tracesDir != "" {
		// Traces register under their file basename; sweeps replay them
		// by that name and key results by content digest, so every node
		// of a fabric must load the same files (ids disagree loudly
		// otherwise — a mismatched digest changes the point keys).
		if err := loadTraces(svc, *tracesDir); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}

	// The fault plane: off (nil injector, zero cost) unless -chaos arms
	// a plan. Every injected fault is logged with the plan seed so a
	// chaos drill replays exactly.
	var injector *chaos.Injector
	if *chaosPlan != "" {
		plan, err := chaos.ParsePlan(*chaosPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		if injector, err = chaos.New(plan); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		if injector != nil {
			injector.Log = log.Printf
			log.Printf("serve: CHAOS ARMED: %s", plan)
		}
	}

	// Seeds for the operationally random (never byte-visible) sources:
	// an armed chaos plan pins them to its seed so drills replay; the
	// zero default lets each component draw from the clock (and log it).
	var chaosSeed uint64
	if injector != nil {
		chaosSeed = injector.Plan().Seed
	}

	var coord *fabric.Coordinator
	if *coordinator {
		var client *http.Client
		if injector != nil {
			client = &http.Client{Transport: &chaos.Transport{Injector: injector, Next: fabric.DefaultTransport()}}
		}
		var err error
		coord, err = fabric.New(fabric.Config{
			Service:    svc,
			Workers:    splitURLs(*workerURLs),
			Client:     client,
			Lease:      *lease,
			JitterSeed: chaosSeed,
			Logf:       log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}

	// newManager builds the execution plane over the job store: the
	// coordinator executor when sharding across a fleet, the local
	// sweep engine otherwise. In HA mode it runs once per leadership
	// term (repl carries the term's replication sink); in single-node
	// mode once at startup with no sink.
	newManager := func(repl jobs.ReplicationSink) (*jobs.Manager, error) {
		exec := svc.JobExecutor()
		if coord != nil {
			// Coordinator jobs execute across the fleet; checkpoints
			// stay in this process's store, so a coordinator restart
			// resumes a distributed job from its last durable point.
			exec = coord.Executor()
		}
		mgr, err := jobs.NewManager(jobs.Config{
			Dir:               *jobsDir,
			MaxConcurrent:     *maxJobs,
			MaxQueued:         *maxQueued,
			CheckpointEvery:   *ckptEvery,
			Exec:              exec,
			Normalize:         svc.NormalizeJobRequest,
			ResultsAppendHook: injector.AppendHook(),
			Replicate:         repl,
			JanitorSeed:       int64(chaosSeed),
		})
		if err != nil {
			return nil, err
		}
		metas := mgr.List()
		resumed := 0
		for _, meta := range metas {
			if !meta.State.Terminal() {
				resumed++
			}
		}
		log.Printf("serve: job store %s (%d jobs, %d to run)", *jobsDir, len(metas), resumed)
		return mgr, nil
	}

	var mgr *jobs.Manager
	var ha *fabric.HA
	switch {
	case *peers != "":
		store, err := jobs.NewStore(*jobsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		replClient := http.DefaultClient
		if injector != nil {
			replClient = &http.Client{Transport: &chaos.Transport{
				Injector:        injector,
				Site:            chaos.SiteReplica,
				CorruptRequests: true,
			}}
		}
		ha, err = fabric.NewHA(fabric.HAConfig{
			Self:           *selfURL,
			Peers:          splitURLs(*peers),
			Store:          store,
			Client:         replClient,
			HeartbeatEvery: *heartbeat,
			LeaseTTL:       *leaseTTL,
			Quorum:         *replicas,
			Leader:         !*standby,
			Logf:           log.Printf,
			OnPromote: func(term uint64, repl *fabric.Replicator) (func(), error) {
				m, err := newManager(repl)
				if err != nil {
					return nil, err
				}
				svc.AttachJobs(m)
				log.Printf("serve: leading at term %d; job manager attached", term)
				return func() {
					svc.DetachJobs()
					m.Close()
					log.Printf("serve: fenced at term %d; job manager detached", term)
				}, nil
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		if err := ha.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		role := "standby"
		if !*standby {
			role = "leader"
		}
		log.Printf("serve: HA %s %s in fleet %s (heartbeat %s, lease-ttl %s)",
			role, *selfURL, *peers, *heartbeat, *leaseTTL)
	case *jobsDir != "":
		var err error
		if mgr, err = newManager(nil); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		svc.AttachJobs(mgr)
	}

	handler := api.NewServer(svc)
	if coord != nil {
		handler = coord.Handler(handler)
		log.Printf("serve: coordinator over %d workers (lease %s)", len(splitURLs(*workerURLs)), *lease)
	}
	if ha != nil {
		handler = ha.Handler(handler)
	}
	if *workerOf != "" {
		log.Printf("serve: fabric worker for %s", *workerOf)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("serve: listening on %s (cache=%d sim-workers=%d)", *addr, *cache, *simWorkers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if ha != nil {
		ha.Close()
		if m := svc.Jobs(); m != nil {
			mgr = m // this node was leading: flush its manager too
		}
	}
	if mgr != nil {
		// Flush running jobs' progress; they stay "running" on disk and
		// resume from their last durable point on the next start.
		mgr.Close()
	}
	log.Printf("serve: shut down")
}

// loadTraces registers every *.json file in dir as a failure trace
// named after its basename (sans extension). A file that does not
// parse or validate fails startup: a half-loaded registry would let
// sweeps silently miss the trace they name.
func loadTraces(svc *api.Service, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		tr, err := failure.ReadTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("trace %s: %w", path, err)
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		id, err := svc.RegisterTrace(name, tr)
		if err != nil {
			return fmt.Errorf("trace %s: %w", path, err)
		}
		log.Printf("serve: trace %s (%d nodes, %d events, coverage %.0fs)",
			id, tr.Nodes, len(tr.Events), tr.Coverage())
		loaded++
	}
	log.Printf("serve: %d traces registered from %s", loaded, dir)
	return nil
}

// splitURLs parses the -workers flag, tolerating blanks and spaces.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// logRequests logs one line per request with its duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
