// Command serve exposes the evaluation service as an HTTP JSON API:
// the closed-form waste, optimal-period and risk models on /v1/waste,
// /v1/optimum and /v1/risk, and the cached parallel Monte-Carlo sweep
// engine on /v1/sweep (NDJSON streaming with "Accept:
// application/x-ndjson"). See README.md for curl examples and
// DESIGN.md, "API request lifecycle", for the internals.
//
// Usage:
//
//	serve [-addr :8080] [-cache 4096] [-workers 0]
//	      [-maxgrid 4096] [-maxruns 256]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 4096, "sweep-point LRU cache capacity (negative disables)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	maxGrid := flag.Int("maxgrid", 4096, "maximum sweep grid points per request")
	maxRuns := flag.Int("maxruns", 256, "maximum Monte-Carlo runs per sweep point")
	flag.Parse()

	svc := api.NewService(api.Options{
		CacheSize:     *cache,
		Workers:       *workers,
		MaxGridPoints: *maxGrid,
		MaxRuns:       *maxRuns,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(api.NewServer(svc)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("serve: listening on %s (cache=%d workers=%d)", *addr, *cache, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	log.Printf("serve: shut down")
}

// logRequests logs one line per request with its duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
