// Command serve exposes the evaluation service as an HTTP JSON API:
// the closed-form waste, optimal-period and risk models on /v1/waste,
// /v1/optimum and /v1/risk, the cached parallel Monte-Carlo sweep
// engine on /v1/sweep (NDJSON streaming with "Accept:
// application/x-ndjson"), and the durable, resumable job subsystem on
// /v1/jobs — sweeps submitted as jobs survive server restarts and
// resume mid-sweep from their last checkpoint, bitwise identically.
// See README.md for curl examples and DESIGN.md, "API request
// lifecycle" and "Job subsystem", for the internals.
//
// Usage:
//
//	serve [-addr :8080] [-cache 4096] [-workers 0]
//	      [-maxgrid 4096] [-maxruns 256]
//	      [-jobs-dir jobs] [-max-concurrent-jobs 2]
//	      [-checkpoint-every 16]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 4096, "sweep-point LRU cache capacity (negative disables)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	maxGrid := flag.Int("maxgrid", 4096, "maximum sweep grid points per request")
	maxRuns := flag.Int("maxruns", 256, "maximum Monte-Carlo runs per sweep point")
	jobsDir := flag.String("jobs-dir", "jobs", "durable job directory for /v1/jobs (empty disables the job subsystem)")
	maxJobs := flag.Int("max-concurrent-jobs", 2, "jobs executing simultaneously")
	ckptEvery := flag.Int("checkpoint-every", 16, "completed points per durable job checkpoint")
	flag.Parse()

	svc := api.NewService(api.Options{
		CacheSize:     *cache,
		Workers:       *workers,
		MaxGridPoints: *maxGrid,
		MaxRuns:       *maxRuns,
	})
	var mgr *jobs.Manager
	if *jobsDir != "" {
		var err error
		mgr, err = jobs.NewManager(jobs.Config{
			Dir:             *jobsDir,
			MaxConcurrent:   *maxJobs,
			CheckpointEvery: *ckptEvery,
			Exec:            svc.JobExecutor(),
			Normalize:       svc.NormalizeJobRequest,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		svc.AttachJobs(mgr)
		metas := mgr.List()
		resumed := 0
		for _, meta := range metas {
			if !meta.State.Terminal() {
				resumed++
			}
		}
		log.Printf("serve: job store %s (%d jobs, %d to run)", *jobsDir, len(metas), resumed)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(api.NewServer(svc)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("serve: listening on %s (cache=%d workers=%d)", *addr, *cache, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if mgr != nil {
		// Flush running jobs' progress; they stay "running" on disk and
		// resume from their last durable point on the next start.
		mgr.Close()
	}
	log.Printf("serve: shut down")
}

// logRequests logs one line per request with its duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
