// Command risk evaluates the success-probability model (Eq. 11, 12,
// 16): for a scenario, MTBF and platform-life it prints each
// protocol's risk window, success probability, and expected number of
// runs tolerated before a fatal failure, plus the no-checkpoint
// baseline.
//
// Usage:
//
//	risk [-scenario Base|Exa] [-mtbf 60] [-life 86400] [-phi 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	scName := flag.String("scenario", "Base", "scenario from Table I (Base or Exa)")
	mtbf := flag.Float64("mtbf", scenario.Minute, "platform MTBF in seconds")
	life := flag.Float64("life", scenario.Day, "platform exploitation length in seconds")
	phiFrac := flag.Float64("phi", 0, "overhead fraction of R; 0 gives theta=(alpha+1)R, the largest risk window")
	flag.Parse()

	sc, err := scenario.ByName(*scName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "risk:", err)
		os.Exit(1)
	}
	p := sc.Params.WithMTBF(*mtbf)

	fmt.Printf("scenario %s, M = %.0fs, life = %.0fs, n = %d, lambda = %.3g\n\n",
		sc.Name, *mtbf, *life, p.N, p.Lambda())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\trisk window (s)\tP[success]\tP[fatal]\truns tolerated")
	for _, pr := range core.Protocols {
		phi := *phiFrac * p.R
		success := core.SuccessProbability(pr, p, phi, *life)
		fmt.Fprintf(w, "%s\t%.1f\t%.9f\t%.3e\t%.3g\n",
			pr, core.RiskWindow(pr, p, phi), success,
			core.FatalFailureProbability(pr, p, phi, *life),
			core.RunsTolerated(pr, p, phi, *life))
	}
	w.Flush()
	fmt.Printf("\nno checkpointing (Eq. 12): P[success] = %.3e\n",
		core.BaseSuccessProbability(p, *life))
}
