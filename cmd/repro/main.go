// Command repro regenerates every table and figure of the paper into
// an output directory: Table I, the waste surfaces of Figures 4/7
// (gnuplot .dat), the waste-ratio slices of Figures 5/8, the
// success-probability ratio surfaces of Figures 6/9, the headline
// summary, and (with -ablations) the ablation curves of DESIGN.md.
//
// Usage:
//
//	repro [-out out] [-points 30] [-ablations] [-preview]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "out", "output directory for the .dat/.txt artifacts")
	points := flag.Int("points", 30, "grid resolution per axis")
	ablations := flag.Bool("ablations", false, "also write the ablation curves")
	preview := flag.Bool("preview", false, "print ASCII previews of the waste surfaces")
	flag.Parse()

	if err := experiments.WriteAll(*out, *points, *ablations, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("Table I:")
	fmt.Println(experiments.TableI())
	fmt.Println("Headline summary (paper §VI):")
	fmt.Println(experiments.Summarize())

	if *preview {
		for _, s := range experiments.Figure4(40, 20) {
			fmt.Println(s.RenderASCII())
		}
		for _, s := range experiments.Figure7(40, 20) {
			fmt.Println(s.RenderASCII())
		}
	}
}
