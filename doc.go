// Package repro reproduces "Revisiting the double checkpointing
// algorithm" (Dongarra, Hérault, Robert, APDCM 2013): the unified
// performance/risk model of buddy-based in-memory checkpointing, the
// DoubleNBL / DoubleBoF / Triple protocols, a Monte-Carlo simulator
// with structural fatality verification, and the harness regenerating
// every table and figure of the paper's evaluation.
//
// The library lives under internal/ (see DESIGN.md, "Package map",
// for the system inventory); the executables under cmd/ and the
// runnable examples under examples/ are the public surface. README.md
// maps each cmd/ binary to the paper artifact it regenerates, and
// cmd/serve exposes the model and simulator as an HTTP JSON service
// (DESIGN.md, "API request lifecycle"). The benchmarks in
// bench_test.go regenerate each figure and report its headline metric:
//
//	go test -bench=. -benchmem
package repro
