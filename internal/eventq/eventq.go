// Package eventq implements the discrete-event-simulation priority
// queue used by the simulators: a binary min-heap on event time with
// stable FIFO ordering of simultaneous events.
//
// The queue is generic over the payload type, so hot paths (the
// renewal failure process schedules and pops one event per failure)
// pay neither interface boxing nor a per-event heap-node allocation:
// events are stored by value in a single slice whose capacity is
// retained across Clear, giving allocation-free steady state.
package eventq

// Event is a scheduled occurrence as returned by Pop.
type Event[T any] struct {
	Time    float64
	Payload T
}

// Handle identifies a scheduled event for cancellation. The zero
// Handle is valid and never pending.
type Handle[T any] struct {
	q  *Queue[T]
	id uint64 // seq of the scheduled event (always >= 1); 0 marks the zero Handle
}

// Queue is a time-ordered event queue. The zero value is ready to use.
// It is not safe for concurrent use.
type Queue[T any] struct {
	h   []event[T]
	seq uint64
}

// event is a heap entry: (time, seq) orders the heap, seq breaks ties
// FIFO and identifies the entry for cancellation.
type event[T any] struct {
	time    float64
	seq     uint64
	payload T
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

// Schedule inserts an event at the given time and returns a handle
// that can cancel it. Events at equal times dequeue in insertion
// order, which keeps simulations deterministic. Scheduling is O(log n)
// and allocation-free once the queue has reached its steady capacity.
func (q *Queue[T]) Schedule(time float64, payload T) Handle[T] {
	q.seq++
	q.h = append(q.h, event[T]{time: time, seq: q.seq, payload: payload})
	q.up(len(q.h) - 1)
	return Handle[T]{q: q, id: q.seq}
}

// PeekTime returns the time of the earliest pending event. ok is false
// when the queue is empty.
func (q *Queue[T]) PeekTime() (time float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].time, true
}

// Pop removes and returns the earliest pending event. ok is false when
// the queue is empty.
func (q *Queue[T]) Pop() (ev Event[T], ok bool) {
	if len(q.h) == 0 {
		return Event[T]{}, false
	}
	e := q.h[0]
	q.removeAt(0)
	return Event[T]{Time: e.time, Payload: e.payload}, true
}

// Cancel removes the event identified by h. It returns false if the
// event already fired, was cancelled, or was dropped by Clear.
// Cancellation is O(n) (it locates the entry by a linear scan); the
// simulators' hot paths never cancel.
func (q *Queue[T]) Cancel(h Handle[T]) bool {
	if h.q != q || h.id == 0 {
		return false
	}
	for i := range q.h {
		if q.h[i].seq == h.id {
			q.removeAt(i)
			return true
		}
	}
	return false
}

// Pending reports whether the event identified by h is still queued.
func (h Handle[T]) Pending() bool {
	if h.q == nil || h.id == 0 {
		return false
	}
	for i := range h.q.h {
		if h.q.h[i].seq == h.id {
			return true
		}
	}
	return false
}

// Clear drops every pending event, retaining the backing capacity so a
// reused queue does not reallocate.
func (q *Queue[T]) Clear() {
	clear(q.h) // release payload references to the GC
	q.h = q.h[:0]
}

// removeAt deletes the entry at heap index i and restores the heap
// invariant.
func (q *Queue[T]) removeAt(i int) {
	last := len(q.h) - 1
	if i != last {
		q.h[i] = q.h[last]
	}
	q.h[last] = event[T]{}
	q.h = q.h[:last]
	if i < last {
		if !q.up(i) {
			q.down(i)
		}
	}
}

// less orders entries by (time, seq).
func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].time != q.h[j].time {
		return q.h[i].time < q.h[j].time
	}
	return q.h[i].seq < q.h[j].seq
}

// up sifts the entry at index i toward the root; it reports whether
// the entry moved.
func (q *Queue[T]) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
		moved = true
	}
	return moved
}

// down sifts the entry at index i toward the leaves.
func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}
