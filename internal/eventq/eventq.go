// Package eventq implements the discrete-event-simulation priority
// queue used by the detailed simulator: a binary min-heap on event
// time with stable FIFO ordering of simultaneous events and O(log n)
// cancellation by handle.
package eventq

import "container/heap"

// Event is a scheduled occurrence. The payload is an opaque value
// interpreted by the simulator.
type Event struct {
	Time    float64
	Payload any

	seq   uint64 // insertion sequence, breaks time ties FIFO
	index int    // heap index, -1 once removed
}

// Handle identifies a scheduled event for cancellation.
type Handle struct{ ev *Event }

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule inserts an event at the given time and returns a handle
// that can cancel it. Events at equal times dequeue in insertion
// order, which keeps detailed simulations deterministic.
func (q *Queue) Schedule(time float64, payload any) Handle {
	ev := &Event{Time: time, Payload: payload, seq: q.seq}
	q.seq++
	heap.Push(&q.h, ev)
	return Handle{ev: ev}
}

// PeekTime returns the time of the earliest pending event. ok is false
// when the queue is empty.
func (q *Queue) PeekTime() (time float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].Time, true
}

// Pop removes and returns the earliest pending event. ok is false when
// the queue is empty.
func (q *Queue) Pop() (ev Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	e := heap.Pop(&q.h).(*Event)
	return *e, true
}

// Cancel removes the event identified by h. It returns false if the
// event already fired or was already cancelled. Cancelling is O(log n).
func (q *Queue) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.index < 0 {
		return false
	}
	heap.Remove(&q.h, h.ev.index)
	return true
}

// Pending reports whether the event identified by h is still queued.
func (h Handle) Pending() bool { return h.ev != nil && h.ev.index >= 0 }

// Clear drops every pending event.
func (q *Queue) Clear() {
	for _, ev := range q.h {
		ev.index = -1
	}
	q.h = q.h[:0]
}

// eventHeap implements heap.Interface ordered by (Time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
