package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestOrdering(t *testing.T) {
	var q Queue[float64]
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		q.Schedule(tm, tm)
	}
	prev := -1.0
	for q.Len() > 0 {
		ev, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed on non-empty queue")
		}
		if ev.Time < prev {
			t.Fatalf("events out of order: %v after %v", ev.Time, prev)
		}
		prev = ev.Time
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Schedule(1.0, i)
	}
	for i := 0; i < 10; i++ {
		ev, _ := q.Pop()
		if ev.Payload != i {
			t.Fatalf("tie-break not FIFO: got %v at position %d", ev.Payload, i)
		}
	}
}

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue should fail")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue should fail")
	}
	if q.Len() != 0 {
		t.Fatal("empty queue has non-zero length")
	}
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue[string]
	q.Schedule(3, "c")
	q.Schedule(1, "a")
	q.Schedule(2, "b")
	for q.Len() > 0 {
		peek, _ := q.PeekTime()
		ev, _ := q.Pop()
		if ev.Time != peek {
			t.Fatalf("peek %v != pop %v", peek, ev.Time)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue[string]
	h1 := q.Schedule(1, "a")
	h2 := q.Schedule(2, "b")
	q.Schedule(3, "c")

	if !h2.Pending() {
		t.Fatal("h2 should be pending")
	}
	if !q.Cancel(h2) {
		t.Fatal("Cancel should succeed")
	}
	if h2.Pending() {
		t.Fatal("h2 should no longer be pending")
	}
	if q.Cancel(h2) {
		t.Fatal("double Cancel should fail")
	}

	ev, _ := q.Pop()
	if ev.Payload != "a" {
		t.Fatalf("first event = %v, want a", ev.Payload)
	}
	if q.Cancel(h1) {
		t.Fatal("cancelling a fired event should fail")
	}
	ev, _ = q.Pop()
	if ev.Payload != "c" {
		t.Fatalf("second event = %v, want c (b cancelled)", ev.Payload)
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestCancelZeroHandle(t *testing.T) {
	var q Queue[int]
	if q.Cancel(Handle[int]{}) {
		t.Fatal("zero handle Cancel should fail")
	}
	if (Handle[int]{}).Pending() {
		t.Fatal("zero handle should not be pending")
	}
}

func TestCancelForeignQueue(t *testing.T) {
	var a, b Queue[int]
	h := a.Schedule(1, 7)
	if b.Cancel(h) {
		t.Fatal("a handle must not cancel events of another queue")
	}
	if !a.Cancel(h) {
		t.Fatal("the owning queue should cancel its handle")
	}
}

func TestClear(t *testing.T) {
	var q Queue[*int]
	h := q.Schedule(1, nil)
	q.Schedule(2, nil)
	q.Clear()
	if q.Len() != 0 {
		t.Fatal("Clear left events behind")
	}
	if h.Pending() {
		t.Fatal("cleared event still pending")
	}
	// The queue must remain usable after Clear.
	x := 5
	q.Schedule(5, &x)
	if ev, ok := q.Pop(); !ok || ev.Payload != &x {
		t.Fatal("queue unusable after Clear")
	}
}

func TestHeapProperty(t *testing.T) {
	// Property: popping returns exactly the sorted sequence of the
	// scheduled times, for arbitrary inputs.
	f := func(raw []float64) bool {
		var q Queue[struct{}]
		times := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v != v { // skip NaN: unordered values are out of contract
				continue
			}
			times = append(times, v)
			q.Schedule(v, struct{}{})
		}
		sort.Float64s(times)
		for _, want := range times {
			ev, ok := q.Pop()
			if !ok || ev.Time != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomCancellationProperty(t *testing.T) {
	// Schedule many events, cancel a random half, and verify the
	// survivors pop in order with none of the cancelled ones.
	s := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		var q Queue[int]
		type rec struct {
			h      Handle[int]
			time   float64
			cancel bool
		}
		recs := make([]rec, 200)
		for i := range recs {
			tm := s.Float64() * 100
			recs[i] = rec{h: q.Schedule(tm, i), time: tm, cancel: s.Float64() < 0.5}
		}
		var want []float64
		for _, r := range recs {
			if r.cancel {
				if !q.Cancel(r.h) {
					t.Fatal("cancel failed")
				}
			} else {
				want = append(want, r.time)
			}
		}
		sort.Float64s(want)
		for _, w := range want {
			ev, ok := q.Pop()
			if !ok || ev.Time != w {
				t.Fatalf("trial %d: expected %v, got %v (ok=%v)", trial, w, ev.Time, ok)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("trial %d: %d stray events", trial, q.Len())
		}
	}
}

// TestScheduleAndPopAllocFree pins the steady-state allocation contract
// the renewal failure process relies on: once the backing array has
// grown, Schedule/Pop cycles allocate nothing.
func TestScheduleAndPopAllocFree(t *testing.T) {
	var q Queue[int]
	s := rng.New(7)
	for i := 0; i < 128; i++ {
		q.Schedule(s.Float64(), i)
	}
	avg := testing.AllocsPerRun(100, func() {
		ev, _ := q.Pop()
		q.Schedule(ev.Time+s.Float64(), ev.Payload)
	})
	if avg != 0 {
		t.Fatalf("Schedule/Pop allocates %v per cycle, want 0", avg)
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	s := rng.New(1)
	var q Queue[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(s.Float64(), i)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
