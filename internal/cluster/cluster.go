// Package cluster models the platform's resource management: compute
// nodes organized in buddy groups (pairs or triples), a pool of spare
// nodes, and the replacement of failed nodes, which the paper
// abstracts as the downtime D. The detailed simulator uses it to make
// D an observable queueing effect (a failure with an exhausted spare
// pool waits for a repair) instead of a constant.
package cluster

import (
	"errors"
	"fmt"
)

// State is the lifecycle state of a physical node.
type State int

const (
	// Active: the node runs a rank of the application.
	Active State = iota
	// Spare: the node is idle, ready to replace a failed one.
	Spare
	// Down: the node has failed and is under repair.
	Down
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Spare:
		return "spare"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Node is one physical machine.
type Node struct {
	ID    int
	State State
	// Rank is the application rank hosted by the node (-1 when not
	// Active). Ranks are the stable identities the checkpointing
	// protocol reasons about; replacements inherit the rank.
	Rank int
}

// ErrNoSpares is returned when a failure cannot be replaced.
var ErrNoSpares = errors.New("cluster: spare pool exhausted")

// Cluster tracks physical nodes, the rank mapping and the spare pool.
type Cluster struct {
	nodes     []Node
	rankHost  []int // rank -> physical node ID
	sparePool []int
	groupSize int

	// Repairs in flight: node ID -> completion time, so the cluster
	// can return repaired machines to the pool.
	repairs map[int]float64
	// RepairTime is how long a failed machine takes to rejoin the
	// spare pool. 0 disables repair (machines are lost forever).
	RepairTime float64
}

// New creates a cluster with ranks active ranks, spares spare nodes
// and the given buddy-group size (2 or 3). Rank i runs initially on
// physical node i.
func New(ranks, spares, groupSize int) (*Cluster, error) {
	if ranks < groupSize || groupSize < 2 || groupSize > 3 {
		return nil, fmt.Errorf("cluster: invalid shape ranks=%d group=%d", ranks, groupSize)
	}
	if ranks%groupSize != 0 {
		return nil, fmt.Errorf("cluster: %d ranks not divisible by group size %d", ranks, groupSize)
	}
	if spares < 0 {
		return nil, fmt.Errorf("cluster: negative spare count %d", spares)
	}
	c := &Cluster{
		nodes:     make([]Node, ranks+spares),
		rankHost:  make([]int, ranks),
		groupSize: groupSize,
		repairs:   make(map[int]float64),
	}
	for i := range c.nodes {
		c.nodes[i] = Node{ID: i, State: Spare, Rank: -1}
	}
	for r := 0; r < ranks; r++ {
		c.nodes[r].State = Active
		c.nodes[r].Rank = r
		c.rankHost[r] = r
	}
	for s := ranks; s < ranks+spares; s++ {
		c.sparePool = append(c.sparePool, s)
	}
	return c, nil
}

// Reset rewinds the cluster in place to the state New returned:
// rank i active on physical node i, every extra node back in the spare
// pool, no repairs in flight. It allocates nothing, so one Cluster can
// serve an entire Monte-Carlo batch of detailed runs.
func (c *Cluster) Reset() {
	ranks := len(c.rankHost)
	for i := range c.nodes {
		c.nodes[i] = Node{ID: i, State: Spare, Rank: -1}
	}
	for r := 0; r < ranks; r++ {
		c.nodes[r].State = Active
		c.nodes[r].Rank = r
		c.rankHost[r] = r
	}
	c.sparePool = c.sparePool[:0]
	for s := ranks; s < len(c.nodes); s++ {
		c.sparePool = append(c.sparePool, s)
	}
	clear(c.repairs)
}

// Ranks returns the number of application ranks.
func (c *Cluster) Ranks() int { return len(c.rankHost) }

// Spares returns the number of currently available spare nodes.
func (c *Cluster) Spares() int { return len(c.sparePool) }

// GroupSize returns the buddy-group size.
func (c *Cluster) GroupSize() int { return c.groupSize }

// Host returns the physical node currently hosting a rank.
func (c *Cluster) Host(rank int) int { return c.rankHost[rank] }

// NodeState returns the state of a physical node.
func (c *Cluster) NodeState(id int) State { return c.nodes[id].State }

// Group returns the ranks of the buddy group containing the rank:
// pairs {2k, 2k+1} or triples {3k, 3k+1, 3k+2}.
func (c *Cluster) Group(rank int) []int {
	start := (rank / c.groupSize) * c.groupSize
	g := make([]int, c.groupSize)
	for i := range g {
		g[i] = start + i
	}
	return g
}

// Buddies returns the other ranks of the rank's group. For triples the
// first element is the preferred buddy (next in the rotation p → p' →
// p” → p) and the second the secondary buddy, matching §IV.
func (c *Cluster) Buddies(rank int) []int {
	start := (rank / c.groupSize) * c.groupSize
	out := make([]int, 0, c.groupSize-1)
	for i := 1; i < c.groupSize; i++ {
		out = append(out, start+(rank-start+i)%c.groupSize)
	}
	return out
}

// Fail marks the physical node hosting the rank as down at time now,
// allocates a spare as the replacement and returns its physical ID.
// The replacement is usable by the caller after the downtime D has
// elapsed (the cluster does not track D; the simulator schedules it).
// If repair is enabled, the failed machine rejoins the pool at
// now+RepairTime.
func (c *Cluster) Fail(rank int, now float64) (replacement int, err error) {
	c.reclaimRepairs(now)
	failed := c.rankHost[rank]
	c.nodes[failed].State = Down
	c.nodes[failed].Rank = -1
	if c.RepairTime > 0 {
		c.repairs[failed] = now + c.RepairTime
	}
	if len(c.sparePool) == 0 {
		return -1, ErrNoSpares
	}
	replacement = c.sparePool[len(c.sparePool)-1]
	c.sparePool = c.sparePool[:len(c.sparePool)-1]
	c.nodes[replacement].State = Active
	c.nodes[replacement].Rank = rank
	c.rankHost[rank] = replacement
	return replacement, nil
}

// reclaimRepairs returns repaired machines to the spare pool.
func (c *Cluster) reclaimRepairs(now float64) {
	for id, ready := range c.repairs {
		if ready <= now {
			delete(c.repairs, id)
			c.nodes[id].State = Spare
			c.sparePool = append(c.sparePool, id)
		}
	}
}

// CheckInvariants verifies the structural invariants: every rank is
// hosted by exactly one Active node, and every pool entry is Spare.
// It is called by tests and by the detailed simulator in debug runs.
func (c *Cluster) CheckInvariants() error {
	seen := make(map[int]int)
	for r, id := range c.rankHost {
		if c.nodes[id].State != Active || c.nodes[id].Rank != r {
			return fmt.Errorf("cluster: rank %d hosted by inconsistent node %+v", r, c.nodes[id])
		}
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("cluster: node %d hosts ranks %d and %d", id, prev, r)
		}
		seen[id] = r
	}
	for _, id := range c.sparePool {
		if c.nodes[id].State != Spare {
			return fmt.Errorf("cluster: pool entry %d in state %v", id, c.nodes[id].State)
		}
	}
	return nil
}
