package cluster

import (
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(8, 2, 2); err != nil {
		t.Fatalf("valid cluster rejected: %v", err)
	}
	bad := []struct{ ranks, spares, group int }{
		{1, 0, 2},  // fewer ranks than group
		{8, 2, 1},  // group too small
		{8, 2, 4},  // group too large
		{7, 2, 2},  // not divisible
		{8, -1, 2}, // negative spares
		{8, 1, 3},  // 8 not divisible by 3
	}
	for _, tc := range bad {
		if _, err := New(tc.ranks, tc.spares, tc.group); err == nil {
			t.Errorf("New(%d, %d, %d) should fail", tc.ranks, tc.spares, tc.group)
		}
	}
}

func TestInitialLayout(t *testing.T) {
	c, err := New(6, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ranks() != 6 || c.Spares() != 3 || c.GroupSize() != 3 {
		t.Fatalf("shape: ranks=%d spares=%d group=%d", c.Ranks(), c.Spares(), c.GroupSize())
	}
	for r := 0; r < 6; r++ {
		if c.Host(r) != r {
			t.Errorf("rank %d initially on node %d", r, c.Host(r))
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsAndBuddies(t *testing.T) {
	c, _ := New(6, 0, 2)
	got := c.Group(3)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Group(3) = %v", got)
	}
	if b := c.Buddies(3); len(b) != 1 || b[0] != 2 {
		t.Fatalf("Buddies(3) = %v", b)
	}

	c3, _ := New(6, 0, 3)
	// §IV rotation: p's preferred buddy is p', secondary is p''.
	if b := c3.Buddies(3); b[0] != 4 || b[1] != 5 {
		t.Fatalf("Buddies(3) = %v, want [4 5]", b)
	}
	if b := c3.Buddies(5); b[0] != 3 || b[1] != 4 {
		t.Fatalf("Buddies(5) = %v, want [3 4] (rotation wraps)", b)
	}
	// The rotation property: p' has p'' as preferred and p as secondary.
	if b := c3.Buddies(4); b[0] != 5 || b[1] != 3 {
		t.Fatalf("Buddies(4) = %v, want [5 3]", b)
	}
}

func TestFailAllocatesSpare(t *testing.T) {
	c, _ := New(4, 2, 2)
	repl, err := c.Fail(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if repl < 4 {
		t.Fatalf("replacement %d should be a spare node", repl)
	}
	if c.Host(1) != repl {
		t.Fatalf("rank 1 hosted by %d, want %d", c.Host(1), repl)
	}
	if c.NodeState(1) != Down {
		t.Fatalf("failed node state = %v", c.NodeState(1))
	}
	if c.Spares() != 1 {
		t.Fatalf("spares = %d, want 1", c.Spares())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSparePoolExhaustion(t *testing.T) {
	c, _ := New(4, 1, 2)
	if _, err := c.Fail(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fail(2, 2); err != ErrNoSpares {
		t.Fatalf("expected ErrNoSpares, got %v", err)
	}
}

func TestRepairReturnsNodes(t *testing.T) {
	c, _ := New(4, 1, 2)
	c.RepairTime = 100
	if _, err := c.Fail(0, 0); err != nil {
		t.Fatal(err)
	}
	// Before the repair completes the pool is empty.
	if _, err := c.Fail(1, 50); err != ErrNoSpares {
		t.Fatalf("want ErrNoSpares at t=50, got %v", err)
	}
	// Note the failed attempt at t=50 still marked rank 1's node down;
	// rebuild a fresh cluster for the clean case.
	c, _ = New(4, 1, 2)
	c.RepairTime = 100
	if _, err := c.Fail(0, 0); err != nil {
		t.Fatal(err)
	}
	repl, err := c.Fail(1, 150) // node 0 repaired at t=100
	if err != nil {
		t.Fatalf("repair should have refilled the pool: %v", err)
	}
	if repl != 0 {
		t.Fatalf("replacement = %d, want repaired node 0", repl)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplacementInheritsRank(t *testing.T) {
	c, _ := New(4, 2, 2)
	repl, _ := c.Fail(3, 5)
	// The buddy group of rank 3 is unchanged even though the host moved.
	g := c.Group(3)
	if g[0] != 2 || g[1] != 3 {
		t.Fatalf("group after replacement = %v", g)
	}
	if c.NodeState(repl) != Active {
		t.Fatalf("replacement state = %v", c.NodeState(repl))
	}
	// Failing the same rank again moves it to yet another node.
	repl2, err := c.Fail(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if repl2 == repl {
		t.Fatal("second replacement reused a down node")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Active: "active", Spare: "spare", Down: "down"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if !strings.HasPrefix(State(9).String(), "State(") {
		t.Error("unknown state formatting")
	}
}

// TestReset checks that a heavily mutated cluster rewinds to its
// initial state in place (the detailed batch path reuses one Cluster
// across a whole Monte-Carlo batch).
func TestReset(t *testing.T) {
	c, err := New(8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.RepairTime = 5
	for _, rank := range []int{0, 3, 0} {
		if _, err := c.Fail(rank, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Fail(5, 2); err != ErrNoSpares {
		t.Fatalf("4th failure with 3 spares: err = %v, want ErrNoSpares", err)
	}
	c.Reset()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Spares() != 3 {
		t.Errorf("spares after reset = %d, want 3", c.Spares())
	}
	for r := 0; r < 8; r++ {
		if c.Host(r) != r {
			t.Errorf("rank %d hosted by node %d after reset", r, c.Host(r))
		}
	}
	// A reset cluster must behave exactly like a fresh one.
	fresh, _ := New(8, 3, 2)
	a, errA := c.Fail(2, 0)
	b, errB := fresh.Fail(2, 0)
	if a != b || (errA == nil) != (errB == nil) {
		t.Errorf("reset cluster diverges from fresh: (%d, %v) vs (%d, %v)", a, errA, b, errB)
	}
}
