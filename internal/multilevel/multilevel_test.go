package multilevel

import (
	"math"
	"testing"

	"repro/internal/core"
)

func baseParams() core.Params {
	return core.Params{D: 0, Delta: 2, R: 4, Alpha: 10, N: 324 * 32, M: 7 * 3600}
}

func baseConfig() Config {
	return Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams(),
		Phi:      1,
		G:        200, // whole-app dump: 100x the per-node checkpoint
		Rg:       200,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Protocol = core.Protocol(77) },
		func(c *Config) { c.Params.M = 0 },
		func(c *Config) { c.Phi = -1 },
		func(c *Config) { c.G = 0 },
		func(c *Config) { c.G = math.NaN() },
		func(c *Config) { c.Rg = -5 },
	}
	for i, mutate := range bad {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestFatalRateMatchesEq11(t *testing.T) {
	// Per-execution fatality of Eq. 11 equals rate × T to first order.
	p := baseParams().WithMTBF(120)
	phi := 0.0
	life := 3600.0
	rate := FatalRate(core.DoubleNBL, p, phi)
	perExec := core.FatalFailureProbability(core.DoubleNBL, p, phi, life)
	if math.Abs(rate*life-perExec) > 0.05*perExec {
		t.Fatalf("rate*T = %v, Eq.11 = %v", rate*life, perExec)
	}
	// Same for triples against Eq. 16.
	rate = FatalRate(core.TripleNBL, p, phi)
	perExec = core.FatalFailureProbability(core.TripleNBL, p, phi, life)
	if math.Abs(rate*life-perExec) > 0.05*perExec {
		t.Fatalf("triple rate*T = %v, Eq.16 = %v", rate*life, perExec)
	}
}

func TestWasteComposition(t *testing.T) {
	c := baseConfig()
	period := 300.0
	w1, err := Waste(c, period, 1)
	if err != nil {
		t.Fatal(err)
	}
	w10, err := Waste(c, period, 10)
	if err != nil {
		t.Fatal(err)
	}
	inner, _ := core.Waste(c.Protocol, c.Params, c.Phi, period)
	// More frequent global dumps cost more in this regime (fatal
	// failures are rare on Base at 7h MTBF).
	if !(w1 > w10 && w10 > inner) {
		t.Fatalf("waste ordering: k=1 %v, k=10 %v, inner %v", w1, w10, inner)
	}
	if _, err := Waste(c, period, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := Waste(c, 10, 5); err == nil {
		t.Fatal("period below MinPeriod should fail")
	}
}

func TestOptimizeBeatsNaive(t *testing.T) {
	c := baseConfig()
	plan, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 1 || plan.Period <= 0 {
		t.Fatalf("degenerate plan %+v", plan)
	}
	// The optimized plan beats always-global (k=1) at the same period
	// and beats a poorly chosen period.
	naive, _ := Waste(c, plan.Period, 1)
	if plan.Waste > naive+1e-12 {
		t.Fatalf("plan %v worse than k=1 %v", plan.Waste, naive)
	}
	shortP, _ := Waste(c, core.MinPeriod(c.Protocol, c.Params, c.Phi)+1, plan.K)
	if plan.Waste > shortP+1e-12 {
		t.Fatalf("plan %v worse than short-period %v", plan.Waste, shortP)
	}
	if plan.GlobalPeriod != float64(plan.K)*plan.Period {
		t.Fatal("GlobalPeriod inconsistent")
	}
	if plan.MTTI <= 0 {
		t.Fatalf("MTTI = %v", plan.MTTI)
	}
}

func TestGlobalLevelNearlyFree(t *testing.T) {
	// On Base at 7h MTBF, fatal buddy failures are so rare that the
	// optimized two-level waste is within a whisker of the pure buddy
	// waste: the global level's insurance is nearly free.
	c := baseConfig()
	plan, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	pure := core.OptimalWaste(c.Protocol, c.Params, c.Phi)
	if plan.Waste > pure*1.25 {
		t.Fatalf("two-level waste %v vs pure %v: insurance too expensive", plan.Waste, pure)
	}
	if plan.Waste < pure {
		t.Fatalf("two-level waste %v cannot beat pure buddy %v", plan.Waste, pure)
	}
}

func TestInsuranceWorthItAtSmallMTBF(t *testing.T) {
	// At M = 300s over a 30-day life, an unprotected DoubleNBL
	// deployment loses a meaningful fraction of its work to fatal
	// double failures; the two-level plan caps that for a bounded
	// waste premium. (M = 60s would saturate Base entirely at φ = 0:
	// F = D+R+θ+P/2 ≥ 71s > M.)
	p := baseParams().WithMTBF(300)
	life := 30.0 * 86400
	lost := LossIfUnprotected(core.DoubleNBL, p, 0, life)
	if lost < 0.05 {
		t.Fatalf("unprotected loss = %v, expected significant", lost)
	}
	c := Config{Protocol: core.DoubleNBL, Params: p, Phi: 0, G: 200, Rg: 200}
	plan, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	// The waste the global level adds on top of the buddy level.
	added := plan.Waste - plan.InnerWaste
	if added <= 0 || added > 0.2 {
		t.Fatalf("insurance premium = %v", added)
	}
	t.Logf("M=300s: unprotected expected loss %.3f of the platform life; "+
		"two-level premium %.4f waste, global every %.0fs (k=%d), MTTI %.0fs",
		lost, added, plan.GlobalPeriod, plan.K, plan.MTTI)
}

func TestTripleNeedsLessInsurance(t *testing.T) {
	// Triple's fatal rate is cubic in λ: its optimized global interval
	// should be much longer than Double's (less frequent insurance).
	p := baseParams().WithMTBF(300)
	mk := func(pr core.Protocol) Plan {
		plan, err := Optimize(Config{Protocol: pr, Params: p, Phi: 0, G: 200, Rg: 200})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	double := mk(core.DoubleNBL)
	triple := mk(core.TripleNBL)
	if triple.MTTI <= double.MTTI {
		t.Fatalf("triple MTTI %v should exceed double %v", triple.MTTI, double.MTTI)
	}
	if triple.GlobalPeriod < double.GlobalPeriod {
		t.Fatalf("triple global interval %v shorter than double %v",
			triple.GlobalPeriod, double.GlobalPeriod)
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	c := baseConfig()
	c.Params.M = 3 // hopeless platform
	if _, err := Optimize(c); err == nil {
		t.Fatal("M=3s should be infeasible")
	}
}

func TestLossIfUnprotectedClamp(t *testing.T) {
	p := baseParams().WithMTBF(1)
	if got := LossIfUnprotected(core.DoubleNBL, p, 0, 1e12); got != 1 {
		t.Fatalf("clamped loss = %v, want 1", got)
	}
	if got := LossIfUnprotected(core.DoubleNBL, baseParams(), 0, 0); got != 0 {
		t.Fatalf("zero-life loss = %v", got)
	}
}

// TestOptimizeForKConsistency pins the fixed-axis planners against the
// full search: Optimize's plan is reproduced by OptimizeForK at its
// own k, and OptimizeInterval at the plan's period finds a plan no
// worse than the full optimum up to its geometric k grid.
func TestOptimizeForKConsistency(t *testing.T) {
	c := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams().WithMTBF(300),
		Phi:      0,
		G:        200,
		Rg:       200,
	}
	full, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	atK, err := OptimizeForK(c, full.K)
	if err != nil {
		t.Fatal(err)
	}
	if atK.Waste != full.Waste || atK.Period != full.Period {
		t.Errorf("OptimizeForK(%d) = %+v, want the full optimum %+v", full.K, atK, full)
	}
	atP, err := OptimizeInterval(c, full.Period)
	if err != nil {
		t.Fatal(err)
	}
	if atP.K != full.K || atP.Waste != full.Waste {
		t.Errorf("OptimizeInterval(%v) = %+v, want the full optimum %+v", full.Period, atP, full)
	}
	// A deliberately bad k must cost waste.
	worse, err := OptimizeForK(c, full.K*64)
	if err == nil && worse.Waste < full.Waste {
		t.Errorf("k=%d beats the optimum: %v < %v", full.K*64, worse.Waste, full.Waste)
	}
	if _, err := OptimizeForK(c, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := OptimizeInterval(c, 0); err == nil {
		t.Error("period=0 accepted")
	}
}
