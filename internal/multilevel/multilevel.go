// Package multilevel implements the hierarchical extension sketched in
// the paper's related work and conclusion (§VII, §VIII): combine the
// distributed in-memory buddy protocols (high-rate, cheap, but exposed
// to fatal buddy-group failures) with a low-rate global checkpoint to
// reliable stable storage. A fatal in-memory failure then no longer
// kills the application: it rolls back to the last global checkpoint
// instead, at a much larger (but bounded and rare) cost.
//
// The model composes the paper's first-order waste terms:
//
//	WASTE ≈ WASTEff(inner) + G/(kP) + F/M + r_fatal·L_global
//
// where the inner buddy protocol runs with period P, a blocking global
// dump of duration G is taken every k inner periods, F/M is the
// ordinary per-failure waste (Eq. 7/8/14), r_fatal is the rate of
// fatal buddy-group failures per unit time (the same chain analysis as
// Eq. 11/16, per time instead of per execution), and L_global =
// D + Rg + kP/2 + G/2 is the expected loss when a fatal failure forces
// a global rollback.
package multilevel

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/optimize"
)

// Config describes a two-level deployment.
type Config struct {
	// Protocol is the inner in-memory buddy protocol.
	Protocol core.Protocol
	// Params is the platform.
	Params core.Params
	// Phi is the inner overhead point φ ∈ [0, R].
	Phi float64
	// G is the duration of one blocking global checkpoint (a
	// whole-application dump to stable storage).
	G float64
	// Rg is the time to reload the application from global storage
	// after a fatal in-memory failure.
	Rg float64
}

// Validate reports an error for out-of-domain configurations.
func (c Config) Validate() error {
	if !c.Protocol.Valid() {
		return fmt.Errorf("multilevel: invalid protocol %d", int(c.Protocol))
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Params.CheckPhi(c.Phi); err != nil && c.Protocol != core.DoubleBlocking {
		return err
	}
	if c.G <= 0 || math.IsNaN(c.G) {
		return fmt.Errorf("multilevel: global checkpoint cost G = %v", c.G)
	}
	if c.Rg < 0 || math.IsNaN(c.Rg) {
		return fmt.Errorf("multilevel: global recovery Rg = %v", c.Rg)
	}
	return nil
}

// FatalRate returns the rate (per second) of fatal buddy-group
// failures for the inner protocol: the per-execution probabilities of
// Eq. 11/16 divided by the execution length. For pairs the chain is
// nλ²·Risk per unit time; for triples 2nλ³·Risk².
func FatalRate(pr core.Protocol, p core.Params, phi float64) float64 {
	lambda := p.Lambda()
	risk := core.RiskWindow(pr, p, phi)
	if pr.IsTriple() {
		return 2 * float64(p.N) * lambda * lambda * lambda * risk * risk
	}
	return float64(p.N) * lambda * lambda * risk
}

// Waste returns the two-level waste for inner period P and global
// interval k (global checkpoint every k inner periods). It returns 1
// for saturated configurations.
func Waste(c Config, period float64, k int) (float64, error) {
	if k < 1 {
		return 1, fmt.Errorf("multilevel: k = %d", k)
	}
	inner, err := core.Waste(c.Protocol, c.Params, c.Phi, period)
	if err != nil {
		return 1, err
	}
	globalFF := c.G / (float64(k) * period)
	lossGlobal := c.Params.D + c.Rg + float64(k)*period/2 + c.G/2
	fatal := FatalRate(c.Protocol, c.Params, c.Phi) * lossGlobal
	w := 1 - (1-inner)*(1-clamp01(globalFF))*(1-clamp01(fatal))
	return clamp01(w), nil
}

// Plan is an optimized two-level configuration.
type Plan struct {
	Period       float64 // inner buddy period
	K            int     // inner periods per global checkpoint
	Waste        float64 // total two-level waste
	InnerWaste   float64 // waste of the buddy level alone
	GlobalPeriod float64 // k·P, the wall-clock global interval
	// MTTI is the mean time between fatal in-memory failures, i.e.
	// how often the global level is actually needed.
	MTTI float64
}

// periodBounds returns the inner-period search interval [minP, maxP).
// Beyond P = 2(M−A) the per-failure loss F = A + P/2 exceeds the MTBF
// and the waste saturates at 1; a flat saturated plateau would defeat
// a unimodal search, so it is excluded up front.
func periodBounds(c Config) (minP, maxP float64, err error) {
	minP = core.MinPeriod(c.Protocol, c.Params, c.Phi)
	a := core.FailureLoss(c.Protocol, c.Params, c.Phi, 0)
	maxP = 2 * (c.Params.M - a)
	if maxP <= minP {
		return 0, 0, fmt.Errorf("multilevel: no feasible plan (M = %v too small)", c.Params.M)
	}
	return minP, maxP, nil
}

// finish fills the derived Plan fields shared by every optimizer.
func finish(c Config, best Plan) (Plan, error) {
	if best.Waste >= 1 {
		return Plan{}, fmt.Errorf("multilevel: no feasible plan (M = %v too small)", c.Params.M)
	}
	innerW, err := core.Waste(c.Protocol, c.Params, c.Phi, best.Period)
	if err != nil {
		return Plan{}, err
	}
	best.InnerWaste = innerW
	best.GlobalPeriod = float64(best.K) * best.Period
	if r := FatalRate(c.Protocol, c.Params, c.Phi); r > 0 {
		best.MTTI = 1 / r
	} else {
		best.MTTI = math.Inf(1)
	}
	return best, nil
}

// OptimizeForK returns the minimal-waste plan for a fixed global
// interval of k inner periods: only the inner period is searched.
func OptimizeForK(c Config, k int) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	if k < 1 {
		return Plan{}, fmt.Errorf("multilevel: k = %d", k)
	}
	minP, maxP, err := periodBounds(c)
	if err != nil {
		return Plan{}, err
	}
	waste := func(p float64) float64 {
		w, err := Waste(c, p, k)
		if err != nil {
			return 2
		}
		return w
	}
	// GridRefine tolerates the residual flat spots near the
	// boundaries that golden section cannot.
	p := optimize.GridRefine(waste, minP, maxP, 64, 4)
	return finish(c, Plan{Period: p, K: k, Waste: waste(p)})
}

// OptimizeInterval returns the minimal-waste plan for a fixed inner
// period: only the global interval k is searched (geometrically — the
// waste's k-dependence G/(kP) + r·kP/2 is shallow around its optimum,
// so the best power of two is within a few percent of the true best).
func OptimizeInterval(c Config, period float64) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	if period <= 0 || math.IsNaN(period) {
		return Plan{}, fmt.Errorf("multilevel: period = %v", period)
	}
	best := Plan{Waste: 2}
	for k := 1; k <= 1<<20; k *= 2 {
		w, err := Waste(c, period, k)
		if err != nil {
			return Plan{}, err
		}
		if w < best.Waste {
			best = Plan{Period: period, K: k, Waste: w}
		}
	}
	return finish(c, best)
}

// Optimize searches the (P, k) space for the minimal-waste plan. The
// inner period starts from the protocol's single-level optimum; k is
// scanned geometrically and the period refined for each k.
func Optimize(c Config) (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	if _, _, err := periodBounds(c); err != nil {
		return Plan{}, err
	}
	best := Plan{Waste: 2}
	for k := 1; k <= 1<<20; k *= 2 {
		plan, err := OptimizeForK(c, k)
		if err != nil {
			continue // this k saturates; a larger interval may not
		}
		if plan.Waste < best.Waste {
			best = plan
		}
	}
	return finish(c, best)
}

// LossIfUnprotected returns the expected fraction of a platform life
// lost to fatal failures WITHOUT a global level (the application
// restarts from scratch): per fatal failure the full expected
// accumulated work life/2 is lost, so the fraction is r_fatal·life/2,
// clamped to 1. It quantifies what the global level buys.
func LossIfUnprotected(pr core.Protocol, p core.Params, phi, life float64) float64 {
	return clamp01(FatalRate(pr, p, phi) * life / 2)
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	case math.IsNaN(x):
		return 1
	}
	return x
}
