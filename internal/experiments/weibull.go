package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// This file implements the non-exponential failure study motivated by
// the paper's related work (§VII, refs [8]-[10]): the closed-form
// optimal periods assume Exponential failures, but production machines
// exhibit Weibull laws with shape < 1 (decreasing hazard: failures
// cluster). The study measures, by simulation, how far the
// exponential-assumption period is from the empirically best fixed
// period under Weibull failures of the same mean.

// WeibullPoint is one row of the study.
type WeibullPoint struct {
	// Shape is the Weibull shape parameter (1 = Exponential).
	Shape float64
	// ExpPeriod is the closed-form optimal period (Eq. 9) computed
	// under the Exponential assumption.
	ExpPeriod float64
	// ExpWaste is the simulated waste when running with ExpPeriod
	// under the Weibull law.
	ExpWaste float64
	// BestMultiplier and BestWaste describe the empirically best
	// fixed period among the scanned multiples of ExpPeriod.
	BestMultiplier float64
	BestWaste      float64
	// ModelWaste is what the Exponential model predicts (Eq. 5); the
	// gap to ExpWaste measures the model error under Weibull.
	ModelWaste float64
}

// WeibullStudy runs the study for the given shapes on a scaled-down
// platform (node-level renewal processes are O(n) per run, so the
// platform is capped at 512 nodes while preserving the platform MTBF).
func WeibullStudy(sc scenario.Scenario, mtbf, phiFrac, tbase float64,
	shapes []float64, runs int, seed uint64) ([]WeibullPoint, error) {
	p := sc.Params.WithMTBF(mtbf)
	if p.N > 512 {
		p = p.WithNodes(512)
	}
	pr := core.DoubleNBL
	phi := phiFrac * p.R
	expPeriod, err := core.OptimalPeriod(pr, p, phi)
	if err != nil {
		return nil, fmt.Errorf("experiments: infeasible at M=%v: %w", mtbf, err)
	}
	multipliers := []float64{0.5, 0.7, 1, 1.4, 2}

	var out []WeibullPoint
	for _, shape := range shapes {
		pt := WeibullPoint{
			Shape:      shape,
			ExpPeriod:  expPeriod,
			ModelWaste: core.OptimalWaste(pr, p, phi),
			BestWaste:  2,
		}
		for _, mult := range multipliers {
			cfg := sim.Config{
				Protocol: pr,
				Params:   p,
				Phi:      phi,
				Period:   mult * expPeriod,
				Tbase:    tbase,
				Seed:     seed,
			}
			if shape != 1 {
				cfg.Law = failure.Weibull{
					Shape: shape,
					MTBF:  failure.IndividualMTBF(p.M, p.N),
				}
			}
			agg, err := sim.RunMany(cfg, runs)
			if err != nil {
				return nil, err
			}
			w := agg.Waste.Mean()
			if agg.Completed.Rate() < 1 {
				w = 1 // count non-completions as saturation
			}
			if mult == 1 {
				pt.ExpWaste = w
			}
			if w < pt.BestWaste {
				pt.BestWaste = w
				pt.BestMultiplier = mult
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatWeibull renders the study table.
func FormatWeibull(points []WeibullPoint) string {
	out := fmt.Sprintf("%8s %10s %12s %12s %10s %12s\n",
		"shape", "P(exp)", "model waste", "waste@P(exp)", "best mult", "best waste")
	for _, pt := range points {
		out += fmt.Sprintf("%8.2f %10.1f %12.5f %12.5f %10.2f %12.5f\n",
			pt.Shape, pt.ExpPeriod, pt.ModelWaste, pt.ExpWaste, pt.BestMultiplier, pt.BestWaste)
	}
	return out
}
