package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/optimize"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file implements the ablation studies DESIGN.md calls out: the
// sensitivity of the paper's conclusions to the new α parameter, to
// the local-checkpoint cost δ, the exact waste crossover between the
// protocols, the comparison against centralized stable storage, and
// the Monte-Carlo validation table.

// CrossoverPhiFrac locates the φ/R at which Triple's optimal waste
// crosses DoubleNBL's (above it Triple loses, below it wins). The
// analysis predicts φ = δ exactly (the fault-free costs 2φ and δ+φ tie
// there while the failure terms coincide).
func CrossoverPhiFrac(p core.Params) float64 {
	diff := func(frac float64) float64 {
		phi := frac * p.R
		return core.OptimalWaste(core.TripleNBL, p, phi) -
			core.OptimalWaste(core.DoubleNBL, p, phi)
	}
	x, ok := optimize.Bisect(diff, 1e-4, 1, 1e-6)
	if !ok {
		return 1 // no crossover in range: Triple wins (or loses) everywhere
	}
	return x
}

// AlphaSweep computes the Triple/DoubleNBL waste ratio as a function
// of the overlap factor α at fixed φ/R, probing the paper's remark
// that it took "conservatively high values" of α, "thereby reducing
// the potential benefit of the triple checkpointing algorithm": at
// fixed φ/R a larger α stretches θ, inflating the failure-loss term
// D+R+θ common to both protocols and diluting Triple's fault-free
// advantage, so the ratio creeps toward 1 as α grows.
func AlphaSweep(sc scenario.Scenario, phiFrac float64, alphas []float64) *stats.Series {
	return stats.NewSeries(
		fmt.Sprintf("Triple/DoubleNBL waste ratio at phi/R=%.2f", phiFrac),
		"alpha", "waste ratio", alphas,
		func(alpha float64) float64 {
			p := sc.Params
			p.Alpha = alpha
			phi := phiFrac * p.R
			ref := core.OptimalWaste(core.DoubleNBL, p, phi)
			if ref == 0 {
				return 1
			}
			return core.OptimalWaste(core.TripleNBL, p, phi) / ref
		})
}

// DeltaSweep computes both protocols' waste as δ shrinks (e.g. thanks
// to a fork-based local checkpoint, §IV/§VI.A): Triple's advantage
// comes precisely from not paying δ, so the gap must close as δ → 0.
func DeltaSweep(sc scenario.Scenario, phiFrac float64, deltas []float64) []*stats.Series {
	mk := func(pr core.Protocol) *stats.Series {
		return stats.NewSeries(pr.String(), "delta (s)", "waste", deltas,
			func(delta float64) float64 {
				p := sc.Params
				p.Delta = delta
				return core.OptimalWaste(pr, p, phiFrac*p.R)
			})
	}
	return []*stats.Series{mk(core.DoubleNBL), mk(core.TripleNBL)}
}

// CentralizedSweep compares the distributed protocols against the
// Young/Daly centralized baseline as the global dump cost grows
// relative to the single-node δ (§III.B, §VII).
func CentralizedSweep(sc scenario.Scenario, phiFrac float64, multipliers []float64) []*stats.Series {
	p := sc.Params
	phi := phiFrac * p.R
	central := stats.NewSeries("Centralized(Daly)", "dump cost / delta", "waste", multipliers,
		func(mult float64) float64 {
			return core.CentralizedOptimalWaste(p.M, p.D, p.R, mult*p.Delta)
		})
	flat := func(pr core.Protocol) *stats.Series {
		w := core.OptimalWaste(pr, p, phi)
		return stats.NewSeries(pr.String(), "dump cost / delta", "waste", multipliers,
			func(float64) float64 { return w })
	}
	return []*stats.Series{central, flat(core.DoubleNBL), flat(core.TripleNBL)}
}

// ValidationRow is one line of the model-vs-simulation table.
type ValidationRow struct {
	Protocol   core.Protocol
	PhiFrac    float64
	Period     float64 // period actually simulated
	Runs       int
	ModelWaste float64
	SimWaste   float64
	SimCI      float64
	ModelLoss  float64 // F at the optimal period
	SimLoss    float64 // measured mean loss per failure
	// FatalRate and CompletedRate are the per-run fractions of fatal
	// failures and completions; ImportanceFatal is the variance-reduced
	// fatal-probability estimate (sim.Result.ImportanceFatalProb).
	FatalRate       float64
	CompletedRate   float64
	ImportanceFatal float64
}

// ValidateConfig runs the Monte-Carlo comparison for one prepared
// configuration on the fast backend: the model waste and per-failure
// loss at cfg's period (0 selects the optimal period, resolved into
// the returned row) against the simulated batch. It is the shared
// kernel of Validate; callers that evaluate the same physical
// configuration repeatedly (the API sweep engine) should compile once
// and use ValidateBatch. workers <= 0 uses one goroutine per CPU.
func ValidateConfig(cfg sim.Config, runs, workers int) (ValidationRow, error) {
	return ValidateRequest(engine.Fast{}, engine.Request{
		Protocol:   cfg.Protocol,
		Params:     cfg.Params,
		Phi:        cfg.Phi,
		Period:     cfg.Period,
		Tbase:      cfg.Tbase,
		Law:        cfg.Law,
		MaxSimTime: cfg.MaxSimTime,
	}, cfg.Seed, runs, workers)
}

// ValidateRequest is ValidateConfig over an arbitrary evaluation
// backend: the request is resolved and compiled by eng, simulated, and
// compared against that backend's analytic model (the single-level
// Eq. 5 waste for the fast and detailed engines, the two-level
// composition for the multilevel one).
func ValidateRequest(eng engine.Engine, req engine.Request, seed uint64, runs, workers int) (ValidationRow, error) {
	resolved, err := eng.Resolve(req)
	if err != nil {
		if errors.Is(err, engine.ErrInfeasible) {
			return ValidationRow{}, fmt.Errorf("experiments: %s infeasible at M=%v: %w",
				req.Protocol, req.Params.M, err)
		}
		return ValidationRow{}, err
	}
	b, err := eng.Compile(resolved)
	if err != nil {
		return ValidationRow{}, err
	}
	return ValidateBatch(b, seed, runs, workers)
}

// ValidateBatch is ValidateRequest over a precompiled batch: seeds
// seed+0 .. seed+runs-1 are simulated with the batch's reusable
// per-worker runners and compared against the backend's model. Reusing
// one engine.Batch across calls amortizes the per-batch precomputation
// — grid rows of a sweep that resolve to the same physical
// configuration, or repeated sweeps with different seeds, compile
// once, whatever the backend.
func ValidateBatch(b engine.Batch, seed uint64, runs, workers int) (ValidationRow, error) {
	agg, err := engine.RunMany(b, seed, runs, workers)
	if err != nil {
		return ValidationRow{}, err
	}
	return aggregateRow(b, runs, agg), nil
}

// aggregateRow projects a simulated aggregate onto the comparison row
// against the batch's analytic model — the shared tail of the fixed
// and adaptive validation paths.
func aggregateRow(b engine.Batch, runs int, agg sim.Aggregate) ValidationRow {
	req := b.Request()
	model := b.Model()
	return ValidationRow{
		Protocol:        req.Protocol,
		PhiFrac:         req.Phi / req.Params.R,
		Period:          req.Period,
		Runs:            runs,
		ModelWaste:      model.Waste,
		SimWaste:        agg.Waste.Mean(),
		SimCI:           agg.Waste.CI95(),
		ModelLoss:       model.Loss,
		SimLoss:         agg.LossPerF.Mean(),
		FatalRate:       agg.Fatal.Rate(),
		CompletedRate:   agg.Completed.Rate(),
		ImportanceFatal: agg.ImportanceFatal.Mean(),
	}
}

// ValidateAdaptive is ValidateBatch under the adaptive-precision
// executor: the point runs in geometric antithetic rounds until the
// variance-reduced waste CI meets spec, and the returned row reports
// that estimator (SimWaste and SimCI are the regression-adjusted
// estimate and its CI95 half-width; Runs the budget actually spent).
// The full AdaptiveResult rides along for callers that report the
// raw-vs-reduced comparison.
func ValidateAdaptive(b engine.Batch, seed uint64, spec engine.Precision, workers int) (ValidationRow, engine.AdaptiveResult, error) {
	ar, err := engine.RunAdaptive(b, seed, spec, workers)
	if err != nil {
		return ValidationRow{}, engine.AdaptiveResult{}, err
	}
	row := aggregateRow(b, ar.RunsUsed, ar.Agg)
	row.SimWaste = ar.Estimate
	row.SimCI = ar.CI95
	return row, ar, nil
}

// Validate runs the Monte-Carlo validation for every protocol at the
// given MTBF and returns the comparison table (the data behind
// cmd/simulate and BenchmarkSimulationValidation).
func Validate(sc scenario.Scenario, mtbf, phiFrac, tbase float64, runs int, seed uint64) ([]ValidationRow, error) {
	p := sc.Params.WithMTBF(mtbf)
	rows := make([]ValidationRow, 0, len(core.Protocols))
	for _, pr := range core.Protocols {
		row, err := ValidateConfig(sim.Config{
			Protocol: pr,
			Params:   p,
			Phi:      phiFrac * p.R,
			Tbase:    tbase,
			Seed:     seed,
		}, runs, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatValidation renders the validation table.
func FormatValidation(rows []ValidationRow) string {
	out := fmt.Sprintf("%-15s %8s %12s %12s %10s %10s %10s\n",
		"protocol", "phi/R", "model waste", "sim waste", "ci95", "model F", "sim F")
	for _, r := range rows {
		out += fmt.Sprintf("%-15s %8.2f %12.5f %12.5f %10.5f %10.2f %10.2f\n",
			r.Protocol, r.PhiFrac, r.ModelWaste, r.SimWaste, r.SimCI, r.ModelLoss, r.SimLoss)
	}
	return out
}
