package experiments

import (
	"repro/internal/core"
	"repro/internal/multilevel"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// InsuranceSweep quantifies the two-level extension (DESIGN.md) across
// platform MTBFs: for each M it returns
//
//   - the waste premium of adding an optimally spaced global
//     checkpoint level on top of the buddy protocol, and
//   - the expected fraction of the platform life an UNPROTECTED
//     deployment loses to fatal buddy-group failures,
//
// for both DoubleNBL and Triple. The crossing of the two curves is the
// operating point below which the paper's conclusion (combine
// in-memory buddy checkpointing with a hierarchical level) pays off.
func InsuranceSweep(sc scenario.Scenario, phiFrac, g, rg, life float64, mtbfs []float64) []*stats.Series {
	mk := func(pr core.Protocol, metric string, f func(core.Params, float64) float64) *stats.Series {
		return stats.NewSeries(pr.String()+" "+metric, "M (s)", "fraction", mtbfs,
			func(m float64) float64 {
				p := sc.Params.WithMTBF(m)
				return f(p, phiFrac*p.R)
			})
	}
	premium := func(p core.Params, phi float64) float64 {
		plan, err := multilevel.Optimize(multilevel.Config{
			Protocol: core.DoubleNBL, Params: p, Phi: phi, G: g, Rg: rg,
		})
		if err != nil {
			return 1
		}
		return plan.Waste - plan.InnerWaste
	}
	premiumTri := func(p core.Params, phi float64) float64 {
		plan, err := multilevel.Optimize(multilevel.Config{
			Protocol: core.TripleNBL, Params: p, Phi: phi, G: g, Rg: rg,
		})
		if err != nil {
			return 1
		}
		return plan.Waste - plan.InnerWaste
	}
	lost := func(pr core.Protocol) func(core.Params, float64) float64 {
		return func(p core.Params, phi float64) float64 {
			return multilevel.LossIfUnprotected(pr, p, phi, life)
		}
	}
	return []*stats.Series{
		mk(core.DoubleNBL, "premium", premium),
		mk(core.DoubleNBL, "unprotected-loss", lost(core.DoubleNBL)),
		mk(core.TripleNBL, "premium", premiumTri),
		mk(core.TripleNBL, "unprotected-loss", lost(core.TripleNBL)),
	}
}
