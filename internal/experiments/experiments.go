// Package experiments regenerates every table and figure of the
// paper's evaluation section (§VI): Table I, the waste surfaces of
// Figures 4 and 7, the waste-ratio slices of Figures 5 and 8, and the
// relative success-probability surfaces of Figures 6 and 9, plus the
// ablations DESIGN.md calls out. Each generator returns plain data
// (stats.Surface / stats.Series) that the writers render as gnuplot
// .dat files and ASCII previews.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// WasteMTBFMin and WasteMTBFMax bound the MTBF axis of the waste
// surfaces: "from 15s, where no progress happens for any protocol, up
// to 1 day, where the waste is almost 0 for all" (§VI.A).
const (
	WasteMTBFMin = 15
	WasteMTBFMax = scenario.Day
)

// WasteSurface computes the waste surface of one protocol for the
// scenario: z = waste at the model-optimal period, over x = φ/R in
// [0, 1] and y = platform MTBF (log scale), the format of Figures 4
// and 7.
func WasteSurface(sc scenario.Scenario, pr core.Protocol, phiPoints, mtbfPoints int) *stats.Surface {
	phiFracs := make([]float64, phiPoints+1)
	for i := range phiFracs {
		phiFracs[i] = float64(i) / float64(phiPoints)
	}
	mtbfs := scenario.MTBFGridLog(WasteMTBFMin, WasteMTBFMax, mtbfPoints)
	s := stats.NewSurface(
		fmt.Sprintf("waste %s scenario %s", pr, sc.Name),
		"phi/R", "M (s)", "waste", phiFracs, mtbfs)
	s.Fill(func(frac, m float64) float64 {
		p := sc.Params.WithMTBF(m)
		return core.OptimalWaste(pr, p, frac*p.R)
	})
	return s
}

// Figure4 returns the three Base-scenario waste surfaces in the
// paper's order: DoubleBoF (4a), DoubleNBL (4b), Triple (4c).
func Figure4(phiPoints, mtbfPoints int) []*stats.Surface {
	return wasteFigure(scenario.Base(), phiPoints, mtbfPoints)
}

// Figure7 returns the Exa-scenario waste surfaces (7a, 7b, 7c).
func Figure7(phiPoints, mtbfPoints int) []*stats.Surface {
	return wasteFigure(scenario.Exa(), phiPoints, mtbfPoints)
}

func wasteFigure(sc scenario.Scenario, phiPoints, mtbfPoints int) []*stats.Surface {
	protos := []core.Protocol{core.DoubleBoF, core.DoubleNBL, core.TripleNBL}
	out := make([]*stats.Surface, len(protos))
	for i, pr := range protos {
		out[i] = WasteSurface(sc, pr, phiPoints, mtbfPoints)
	}
	return out
}

// WasteRatioSeries computes the Figure 5/8 curves: the waste of
// DoubleBoF and Triple relative to DoubleNBL as a function of φ/R at
// a fixed MTBF (the paper uses M = 7h).
func WasteRatioSeries(sc scenario.Scenario, mtbf float64, points int) []*stats.Series {
	p := sc.Params.WithMTBF(mtbf)
	fracs := make([]float64, points+1)
	for i := range fracs {
		fracs[i] = float64(i) / float64(points)
	}
	ratio := func(pr core.Protocol) func(frac float64) float64 {
		return func(frac float64) float64 {
			phi := frac * p.R
			ref := core.OptimalWaste(core.DoubleNBL, p, phi)
			if ref == 0 {
				return 1
			}
			return core.OptimalWaste(pr, p, phi) / ref
		}
	}
	return []*stats.Series{
		stats.NewSeries("DoubleBoF/DoubleNBL", "phi/R", "waste ratio", fracs, ratio(core.DoubleBoF)),
		stats.NewSeries("Triple/DoubleNBL", "phi/R", "waste ratio", fracs, ratio(core.TripleNBL)),
	}
}

// Figure5 returns the Base waste-ratio curves at M = 7h.
func Figure5(points int) []*stats.Series {
	return WasteRatioSeries(scenario.Base(), 7*scenario.Hour, points)
}

// Figure8 returns the Exa waste-ratio curves at M = 7h.
func Figure8(points int) []*stats.Series {
	return WasteRatioSeries(scenario.Exa(), 7*scenario.Hour, points)
}

// RiskRatioSurface computes a Figure 6/9 panel: the ratio of success
// probabilities of two protocols over x = platform MTBF and y =
// platform exploitation length, evaluated at θ = (α+1)R (φ = 0, the
// largest risk window for the non-blocking protocols, as the paper
// stresses).
func RiskRatioSurface(sc scenario.Scenario, num, den core.Protocol,
	mtbfs, lives []float64) *stats.Surface {
	s := stats.NewSurface(
		fmt.Sprintf("success ratio %s/%s scenario %s", num, den, sc.Name),
		"M (s)", "platform life (s)", "success ratio", mtbfs, lives)
	s.Fill(func(m, life float64) float64 {
		p := sc.Params.WithMTBF(m)
		denom := core.SuccessProbability(den, p, 0, life)
		if denom == 0 {
			return 1 // both die; the ratio is uninformative there
		}
		return core.SuccessProbability(num, p, 0, life) / denom
	})
	return s
}

// Figure6 returns the Base risk panels: 6a = DoubleNBL/DoubleBoF and
// 6b = DoubleBoF/Triple, over M ∈ (0, 30] minutes and a platform life
// of 1..30 days. A NBL/Triple panel is appended as a bonus column
// because the paper's §VI.A text discusses that comparison too.
func Figure6(points int) []*stats.Surface {
	mtbfs := scenario.LinearGrid(scenario.Minute, 30*scenario.Minute, points)
	lives := scenario.LinearGrid(scenario.Day, 30*scenario.Day, points)
	sc := scenario.Base()
	return []*stats.Surface{
		RiskRatioSurface(sc, core.DoubleNBL, core.DoubleBoF, mtbfs, lives),
		RiskRatioSurface(sc, core.DoubleBoF, core.TripleNBL, mtbfs, lives),
		RiskRatioSurface(sc, core.DoubleNBL, core.TripleNBL, mtbfs, lives),
	}
}

// Figure9 returns the Exa risk panels over M ∈ (0, 60] minutes and a
// platform life of 1..60 weeks.
func Figure9(points int) []*stats.Surface {
	mtbfs := scenario.LinearGrid(scenario.Minute, 60*scenario.Minute, points)
	lives := scenario.LinearGrid(scenario.Week, 60*scenario.Week, points)
	sc := scenario.Exa()
	return []*stats.Surface{
		RiskRatioSurface(sc, core.DoubleNBL, core.DoubleBoF, mtbfs, lives),
		RiskRatioSurface(sc, core.DoubleBoF, core.TripleNBL, mtbfs, lives),
		RiskRatioSurface(sc, core.DoubleNBL, core.TripleNBL, mtbfs, lives),
	}
}

// TableI renders the scenario table.
func TableI() string { return scenario.TableI(scenario.All()) }

// Summary compiles the headline numbers the paper's §VI quotes, used
// by EXPERIMENTS.md and the benchmarks:
type Summary struct {
	// BaseWorstTripleRatio is the worst-case Triple/DoubleNBL waste
	// ratio on Base at M = 7h (paper: ≤ ~1.15, at φ/R = 1).
	BaseWorstTripleRatio float64
	// BaseTripleGainAtTenth is the Triple/DoubleNBL waste ratio on
	// Base at φ/R = 0.1 (paper: "much smaller").
	BaseTripleGainAtTenth float64
	// ExaTripleGainAtTenth is the same ratio on Exa (paper: gain "up
	// to 25%", i.e. ratio ≈ 0.75).
	ExaTripleGainAtTenth float64
	// BaseCrossoverPhiFrac is the φ/R at which Triple's waste crosses
	// DoubleNBL's on Base (analysis: φ = δ, i.e. 0.5).
	BaseCrossoverPhiFrac float64
	// RunsToleratedGain is the factor by which Triple multiplies the
	// number of day-long runs tolerated before a fatal failure at
	// M = 60 s on Base (paper: "twice more runs", conservative).
	RunsToleratedGain float64
}

// Summarize computes the headline Summary.
func Summarize() Summary {
	base := scenario.Base().Params
	exa := scenario.Exa().Params
	ratioAt := func(p core.Params, frac float64) float64 {
		return core.OptimalWaste(core.TripleNBL, p, frac*p.R) /
			core.OptimalWaste(core.DoubleNBL, p, frac*p.R)
	}
	var sum Summary
	sum.BaseWorstTripleRatio = ratioAt(base, 1)
	sum.BaseTripleGainAtTenth = ratioAt(base, 0.1)
	sum.ExaTripleGainAtTenth = ratioAt(exa, 0.1)
	sum.BaseCrossoverPhiFrac = CrossoverPhiFrac(base)
	pRisk := base.WithMTBF(scenario.Minute)
	sum.RunsToleratedGain = core.RunsTolerated(core.TripleNBL, pRisk, 0, scenario.Day) /
		core.RunsTolerated(core.DoubleNBL, pRisk, 0, scenario.Day)
	return sum
}

// String renders the summary for EXPERIMENTS.md.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Base Triple/DoubleNBL worst-case waste ratio (phi/R=1):  %.3f (paper: ~1.15)\n", s.BaseWorstTripleRatio)
	fmt.Fprintf(&b, "Base Triple/DoubleNBL waste ratio at phi/R=0.1:          %.3f (paper: well below 1)\n", s.BaseTripleGainAtTenth)
	fmt.Fprintf(&b, "Exa  Triple/DoubleNBL waste ratio at phi/R=0.1:          %.3f (paper: ~0.75)\n", s.ExaTripleGainAtTenth)
	fmt.Fprintf(&b, "Base waste crossover phi/R (Triple vs DoubleNBL):        %.3f (analysis: 0.5 = delta/R)\n", s.BaseCrossoverPhiFrac)
	fmt.Fprintf(&b, "Runs tolerated, Triple vs DoubleNBL (M=60s, 1-day runs): %.2fx (paper: >= 2x)\n", s.RunsToleratedGain)
	return b.String()
}
