package experiments

import (
	"testing"

	"repro/internal/scenario"
)

func TestInsuranceSweepShape(t *testing.T) {
	mtbfs := []float64{300, 600, 1800, 7200}
	series := InsuranceSweep(scenario.Base(), 0.25, 200, 200, 30*scenario.Day, mtbfs)
	if len(series) != 4 {
		t.Fatalf("%d series", len(series))
	}
	dblPremium, dblLost := series[0], series[1]
	triPremium, triLost := series[2], series[3]

	for i := range mtbfs {
		for _, s := range series {
			if s.Ys[i] < 0 || s.Ys[i] > 1 {
				t.Fatalf("%s at M=%v: %v outside [0,1]", s.Name, mtbfs[i], s.Ys[i])
			}
		}
		// Triple's unprotected loss is always (weakly) below Double's:
		// cubic vs quadratic chains.
		if triLost.Ys[i] > dblLost.Ys[i]+1e-12 {
			t.Errorf("M=%v: triple loss %v above double %v", mtbfs[i], triLost.Ys[i], dblLost.Ys[i])
		}
	}
	// The unprotected loss shrinks as the platform gets healthier.
	for i := 1; i < len(mtbfs); i++ {
		if dblLost.Ys[i] > dblLost.Ys[i-1]+1e-12 {
			t.Fatalf("double unprotected loss increased with MTBF: %v", dblLost.Ys)
		}
	}
	// At the hostile end the insurance pays: the double's unprotected
	// loss exceeds its premium by a wide margin.
	if !(dblLost.Ys[0] > 5*dblPremium.Ys[0]) {
		t.Errorf("M=300s: loss %v should dwarf premium %v", dblLost.Ys[0], dblPremium.Ys[0])
	}
	// Triple barely needs the insurance at all.
	if triPremium.Ys[0] > dblPremium.Ys[0]+1e-9 {
		t.Errorf("triple premium %v above double %v", triPremium.Ys[0], dblPremium.Ys[0])
	}
}
