package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// WriteAll regenerates every figure and table into dir: gnuplot .dat
// files for the plots, table1.txt, summary.txt, and (optionally) the
// ablation curves. points controls the grid resolution. progress, if
// non-nil, receives one line per artifact.
func WriteAll(dir string, points int, ablations bool, progress io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	note := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}

	// Table I.
	if err := os.WriteFile(filepath.Join(dir, "table1.txt"), []byte(TableI()), 0o644); err != nil {
		return err
	}
	note("table1.txt")

	// Figures 4 and 7: waste surfaces.
	for figure, surfaces := range map[string][]*stats.Surface{
		"fig4": Figure4(points, points),
		"fig7": Figure7(points, points),
	} {
		for i, s := range surfaces {
			name := fmt.Sprintf("%s%c_%s.dat", figure, 'a'+i, protoSlug(i))
			if err := writeSurface(filepath.Join(dir, name), s); err != nil {
				return err
			}
			note("%s", name)
		}
	}

	// Figures 5 and 8: waste-ratio slices.
	if err := writeSeries(filepath.Join(dir, "fig5.dat"), Figure5(points)...); err != nil {
		return err
	}
	note("fig5.dat")
	if err := writeSeries(filepath.Join(dir, "fig8.dat"), Figure8(points)...); err != nil {
		return err
	}
	note("fig8.dat")

	// Figures 6 and 9: success-probability ratios.
	riskNames := []string{"a_nbl_over_bof", "b_bof_over_triple", "c_nbl_over_triple"}
	for i, s := range Figure6(points) {
		name := fmt.Sprintf("fig6%s.dat", riskNames[i])
		if err := writeSurface(filepath.Join(dir, name), s); err != nil {
			return err
		}
		note("%s", name)
	}
	for i, s := range Figure9(points) {
		name := fmt.Sprintf("fig9%s.dat", riskNames[i])
		if err := writeSurface(filepath.Join(dir, name), s); err != nil {
			return err
		}
		note("%s", name)
	}

	// Headline summary.
	if err := os.WriteFile(filepath.Join(dir, "summary.txt"), []byte(Summarize().String()), 0o644); err != nil {
		return err
	}
	note("summary.txt")

	if !ablations {
		return nil
	}
	alphas := []float64{0.5, 1, 2, 5, 10, 20, 50}
	if err := writeSeries(filepath.Join(dir, "ablation_alpha.dat"),
		AlphaSweep(scenario.Base(), 0.25, alphas)); err != nil {
		return err
	}
	note("ablation_alpha.dat")
	deltas := []float64{0.01, 0.05, 0.1, 0.5, 1, 2, 4}
	if err := writeSeries(filepath.Join(dir, "ablation_delta.dat"),
		DeltaSweep(scenario.Base(), 0.25, deltas)...); err != nil {
		return err
	}
	note("ablation_delta.dat")
	mults := []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}
	if err := writeSeries(filepath.Join(dir, "ablation_centralized.dat"),
		CentralizedSweep(scenario.Base(), 0.25, mults)...); err != nil {
		return err
	}
	note("ablation_centralized.dat")
	mtbfs := []float64{200, 300, 600, 1200, 3600, 7200}
	if err := writeSeries(filepath.Join(dir, "extension_insurance.dat"),
		InsuranceSweep(scenario.Base(), 0.25, 200, 200, 30*scenario.Day, mtbfs)...); err != nil {
		return err
	}
	note("extension_insurance.dat")
	return nil
}

func protoSlug(i int) string {
	switch i {
	case 0:
		return "doublebof"
	case 1:
		return "doublenbl"
	default:
		return "triple"
	}
}

func writeSurface(path string, s *stats.Surface) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.WriteDat(f); err != nil {
		return err
	}
	return f.Close()
}

func writeSeries(path string, series ...*stats.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := stats.WriteDat(f, series...); err != nil {
		return err
	}
	return f.Close()
}
