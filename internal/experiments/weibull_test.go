package experiments

import (
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestWeibullStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo")
	}
	points, err := WeibullStudy(scenario.Base(), 1800, 0.25, 1e5,
		[]float64{0.5, 0.7, 1}, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	var expPt, burstyPt WeibullPoint
	for _, pt := range points {
		if pt.BestWaste > pt.ExpWaste+1e-12 {
			t.Errorf("shape %v: best waste %v exceeds waste at P(exp) %v",
				pt.Shape, pt.BestWaste, pt.ExpWaste)
		}
		if pt.BestWaste <= 0 || pt.BestWaste >= 1 {
			t.Errorf("shape %v: degenerate best waste %v", pt.Shape, pt.BestWaste)
		}
		switch pt.Shape {
		case 1:
			expPt = pt
		case 0.5:
			burstyPt = pt
		}
	}
	// Shape 1 is Exponential: the model must be accurate there.
	if d := expPt.ExpWaste - expPt.ModelWaste; d > 0.15*expPt.ModelWaste+0.01 || d < -0.15*expPt.ModelWaste-0.01 {
		t.Errorf("shape 1: simulated %v vs model %v", expPt.ExpWaste, expPt.ModelWaste)
	}
	// Bursty failures (shape 0.5) hurt: same mean MTBF, higher waste
	// than the exponential run at the exponential-optimal period.
	if burstyPt.ExpWaste <= expPt.ExpWaste {
		t.Errorf("shape 0.5 waste %v not above exponential %v (clustering should hurt)",
			burstyPt.ExpWaste, expPt.ExpWaste)
	}
	text := FormatWeibull(points)
	if !strings.Contains(text, "best mult") {
		t.Errorf("table: %s", text)
	}
	t.Logf("\n%s", text)
}

func TestWeibullStudyInfeasible(t *testing.T) {
	if _, err := WeibullStudy(scenario.Base(), 5, 0.25, 1e4, []float64{1}, 2, 1); err == nil {
		t.Fatal("M=5s should be infeasible")
	}
}
