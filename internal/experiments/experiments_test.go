package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

func TestTableI(t *testing.T) {
	table := TableI()
	for _, want := range []string{"Base", "Exa", "10368", "1000000"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table I missing %q:\n%s", want, table)
		}
	}
}

func TestWasteSurfaceShape(t *testing.T) {
	s := WasteSurface(scenario.Base(), core.DoubleNBL, 10, 12)
	if len(s.Xs) != 11 || len(s.Ys) != 12 {
		t.Fatalf("surface grid %dx%d", len(s.Xs), len(s.Ys))
	}
	// Waste ∈ [0, 1] everywhere.
	lo, hi := s.MinMax()
	if lo < 0 || hi > 1 {
		t.Fatalf("waste range [%v, %v]", lo, hi)
	}
	// §VI.A: waste ≈ 1 at M = 15 s, ≈ 0 at M = 1 day (for φ/R > 0).
	for i := range s.Xs {
		if got := s.Z[i][0]; got < 0.5 {
			t.Errorf("phi/R=%v at M=15s: waste %v, want near 1", s.Xs[i], got)
		}
		if got := s.Z[i][len(s.Ys)-1]; got > 0.05 {
			t.Errorf("phi/R=%v at M=1day: waste %v, want near 0", s.Xs[i], got)
		}
	}
	// Waste is non-increasing in M at every φ.
	for i := range s.Xs {
		for j := 1; j < len(s.Ys); j++ {
			if s.Z[i][j] > s.Z[i][j-1]+1e-9 {
				t.Fatalf("waste increased with MTBF at phi/R=%v", s.Xs[i])
			}
		}
	}
}

func TestFigure4PanelOrder(t *testing.T) {
	panels := Figure4(4, 4)
	if len(panels) != 3 {
		t.Fatalf("%d panels", len(panels))
	}
	wantNames := []string{"DoubleBoF", "DoubleNBL", "Triple"}
	for i, s := range panels {
		if !strings.Contains(s.Name, wantNames[i]) {
			t.Errorf("panel %d named %q, want %s", i, s.Name, wantNames[i])
		}
	}
}

// TestFigure5Shape asserts the paper's Fig. 5 reading: BoF/NBL ≥ 1
// converging to 1 as φ/R → 1; Triple/NBL well below 1 left of the
// φ = δ crossover, at most ~1.15 at φ/R = 1.
func TestFigure5Shape(t *testing.T) {
	series := Figure5(20)
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	bof, tri := series[0], series[1]
	if bof.Name != "DoubleBoF/DoubleNBL" || tri.Name != "Triple/DoubleNBL" {
		t.Fatalf("series names %q, %q", bof.Name, tri.Name)
	}
	for i, x := range bof.Xs {
		if bof.Ys[i] < 1-1e-9 {
			t.Errorf("BoF ratio %v < 1 at phi/R=%v", bof.Ys[i], x)
		}
	}
	last := len(bof.Xs) - 1
	if math.Abs(bof.Ys[last]-1) > 1e-6 {
		t.Errorf("BoF ratio at phi/R=1 is %v, want 1 (protocols coincide)", bof.Ys[last])
	}
	if tri.Ys[2] >= 0.8 { // phi/R = 0.1
		t.Errorf("Triple ratio at phi/R=0.1 is %v, want well below 1", tri.Ys[2])
	}
	if tri.Ys[last] < 1.05 || tri.Ys[last] > 1.2 {
		t.Errorf("Triple ratio at phi/R=1 is %v, want ~1.15", tri.Ys[last])
	}
}

// TestFigure8Shape asserts the Exa claim: Triple's gain reaches ~25%
// at φ/R = 0.1.
func TestFigure8Shape(t *testing.T) {
	series := Figure8(20)
	tri := series[1]
	got := tri.Ys[2] // phi/R = 0.1
	if got < 0.65 || got > 0.85 {
		t.Errorf("Exa Triple ratio at phi/R=0.1 = %v, want ~0.75", got)
	}
}

// TestFigure6Shape asserts the risk panels: every ratio is in [0, 1]
// (the numerator protocol is always the riskier one), decreasing in
// platform life, and the BoF/Triple panel dips far lower than the
// NBL/BoF panel at small MTBF (the paper's "orders of magnitude").
func TestFigure6Shape(t *testing.T) {
	panels := Figure6(12)
	if len(panels) != 3 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, s := range panels {
		lo, hi := s.MinMax()
		if lo < 0 || hi > 1+1e-9 {
			t.Fatalf("%s: ratio range [%v, %v]", s.Name, lo, hi)
		}
		// Non-increasing in platform life at the smallest MTBF.
		for j := 1; j < len(s.Ys); j++ {
			if s.Z[0][j] > s.Z[0][j-1]+1e-9 {
				t.Fatalf("%s: ratio increased with life", s.Name)
			}
		}
	}
	nblOverBof, bofOverTriple, nblOverTriple := panels[0], panels[1], panels[2]
	// Worst corner: smallest MTBF, longest life. P_triple ≥ P_bof ≥
	// P_nbl implies NBL/Triple is the deepest of the three ratios.
	last := len(nblOverBof.Ys) - 1
	cornerA := nblOverBof.Z[0][last]
	cornerB := bofOverTriple.Z[0][last]
	cornerNT := nblOverTriple.Z[0][last]
	if cornerNT > cornerA+1e-12 || cornerNT > cornerB+1e-12 {
		t.Errorf("NBL/Triple corner %v should be the deepest (NBL/BoF %v, BoF/Triple %v)",
			cornerNT, cornerA, cornerB)
	}
	// Triple itself stays nearly immune even in the worst corner with
	// its largest risk window θ = (α+1)R — the paper's headline.
	p := scenario.Base().Params.WithMTBF(scenario.Minute)
	if tri := core.SuccessProbability(core.TripleNBL, p, 0, 30*scenario.Day); tri < 0.99 {
		t.Errorf("Triple corner success probability %v, want >= 0.99", tri)
	}
}

func TestFigure9Shape(t *testing.T) {
	panels := Figure9(10)
	// On Exa, the BoF advantage is visible "to a higher extent" (§VI.B):
	// the NBL/BoF corner dips lower than on Base with the same relative
	// corner (sanity: it is meaningfully below 1).
	last := len(panels[0].Ys) - 1
	corner := panels[0].Z[0][last]
	if corner > 0.99 {
		t.Errorf("Exa NBL/BoF corner = %v, want visibly below 1", corner)
	}
	// BoF/Triple also dips well below 1 on Exa (Fig. 9b), and the
	// NBL/Triple ratio is the deepest of all.
	cornerBT := panels[1].Z[0][last]
	cornerNT := panels[2].Z[0][last]
	if cornerBT > 0.9 {
		t.Errorf("Exa BoF/Triple corner = %v, want well below 1", cornerBT)
	}
	if cornerNT > corner+1e-12 || cornerNT > cornerBT+1e-12 {
		t.Errorf("Exa NBL/Triple corner %v should be the deepest (%v, %v)", cornerNT, corner, cornerBT)
	}
	// Triple stays nearly immune on Exa too.
	p := scenario.Exa().Params.WithMTBF(scenario.Minute)
	if tri := core.SuccessProbability(core.TripleNBL, p, 0, 60*scenario.Week); tri < 0.99 {
		t.Errorf("Exa Triple corner success = %v, want >= 0.99", tri)
	}
}

func TestSummaryNumbers(t *testing.T) {
	s := Summarize()
	if s.BaseWorstTripleRatio < 1.05 || s.BaseWorstTripleRatio > 1.2 {
		t.Errorf("BaseWorstTripleRatio = %v", s.BaseWorstTripleRatio)
	}
	if s.ExaTripleGainAtTenth < 0.65 || s.ExaTripleGainAtTenth > 0.85 {
		t.Errorf("ExaTripleGainAtTenth = %v", s.ExaTripleGainAtTenth)
	}
	if math.Abs(s.BaseCrossoverPhiFrac-0.5) > 0.01 {
		t.Errorf("BaseCrossoverPhiFrac = %v, want 0.5", s.BaseCrossoverPhiFrac)
	}
	if s.RunsToleratedGain < 2 {
		t.Errorf("RunsToleratedGain = %v, want >= 2 (paper: 'twice more runs')", s.RunsToleratedGain)
	}
	str := s.String()
	if !strings.Contains(str, "crossover") {
		t.Errorf("summary text: %s", str)
	}
}

func TestCrossoverMatchesDeltaOverR(t *testing.T) {
	// The crossover is at φ = δ for any scenario where it exists.
	for _, sc := range scenario.All() {
		got := CrossoverPhiFrac(sc.Params)
		want := sc.Params.Delta / sc.Params.R
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s: crossover %v, want δ/R = %v", sc.Name, got, want)
		}
	}
}

func TestAlphaSweepShape(t *testing.T) {
	s := AlphaSweep(scenario.Base(), 0.25, []float64{0.5, 1, 2, 5, 10, 20})
	// At fixed φ/R, a larger α stretches θ and inflates the common
	// failure-loss term D+R+θ, diluting Triple's fault-free advantage:
	// the ratio creeps toward 1 — the quantitative content of the
	// paper's remark that its "conservatively high" α values REDUCE
	// the triple algorithm's potential benefit. Triple must still win
	// (< 1) across the sweep at φ/R = 0.25 < δ/R.
	for i := 1; i < len(s.Ys); i++ {
		if s.Ys[i] < s.Ys[i-1]-1e-9 {
			t.Fatalf("ratio decreased with alpha: %v", s.Ys)
		}
	}
	for i, y := range s.Ys {
		if y >= 1 {
			t.Fatalf("Triple loses at alpha=%v: ratio %v", s.Xs[i], y)
		}
	}
}

func TestDeltaSweepShape(t *testing.T) {
	series := DeltaSweep(scenario.Base(), 0.25, []float64{0.01, 0.1, 1, 2, 4})
	double, triple := series[0], series[1]
	// Triple does not depend on δ; Double's waste grows with δ.
	for i := 1; i < len(triple.Ys); i++ {
		if math.Abs(triple.Ys[i]-triple.Ys[0]) > 1e-12 {
			t.Fatalf("Triple waste depends on delta: %v", triple.Ys)
		}
		if double.Ys[i] < double.Ys[i-1]-1e-12 {
			t.Fatalf("Double waste decreased with delta: %v", double.Ys)
		}
	}
	// At δ ≈ 0 the double protocol catches up with (and beats, since
	// its fault-free cost is φ < 2φ) the triple.
	if double.Ys[0] > triple.Ys[0] {
		t.Errorf("at delta~0 double %v should not exceed triple %v", double.Ys[0], triple.Ys[0])
	}
}

func TestCentralizedSweepShape(t *testing.T) {
	series := CentralizedSweep(scenario.Base(), 0.25, []float64{1, 10, 100})
	central, double := series[0], series[1]
	// The centralized baseline degrades with the dump cost while the
	// distributed waste is flat; by 100×δ the gap is wide.
	if central.Ys[2] <= central.Ys[0] {
		t.Fatal("centralized waste should grow with dump cost")
	}
	if double.Ys[0] != double.Ys[2] {
		t.Fatal("distributed waste should not depend on the dump cost")
	}
	if central.Ys[2] < 3*double.Ys[2] {
		t.Errorf("at 100x dump cost: centralized %v vs distributed %v", central.Ys[2], double.Ys[2])
	}
}

func TestValidateTable(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo")
	}
	rows, err := Validate(scenario.Base(), 1800, 0.25, 2e5, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(core.Protocols) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.SimWaste-r.ModelWaste) > 0.15*r.ModelWaste+0.01 {
			t.Errorf("%s: sim %v vs model %v", r.Protocol, r.SimWaste, r.ModelWaste)
		}
		if r.SimLoss > 0 && math.Abs(r.SimLoss-r.ModelLoss) > 0.2*r.ModelLoss {
			t.Errorf("%s: sim F %v vs model F %v", r.Protocol, r.SimLoss, r.ModelLoss)
		}
	}
	text := FormatValidation(rows)
	if !strings.Contains(text, "DoubleNBL") || !strings.Contains(text, "model waste") {
		t.Errorf("validation table: %s", text)
	}
}

func TestWriteAll(t *testing.T) {
	dir := t.TempDir()
	if err := WriteAll(dir, 8, true, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table1.txt", "summary.txt",
		"fig4a_doublebof.dat", "fig4b_doublenbl.dat", "fig4c_triple.dat",
		"fig5.dat",
		"fig6a_nbl_over_bof.dat", "fig6b_bof_over_triple.dat", "fig6c_nbl_over_triple.dat",
		"fig7a_doublebof.dat", "fig7b_doublenbl.dat", "fig7c_triple.dat",
		"fig8.dat",
		"fig9a_nbl_over_bof.dat", "fig9b_bof_over_triple.dat", "fig9c_nbl_over_triple.dat",
		"ablation_alpha.dat", "ablation_delta.dat", "ablation_centralized.dat",
		"extension_insurance.dat",
	}
	for _, name := range want {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("empty artifact %s", name)
		}
	}
}
