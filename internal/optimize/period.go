package optimize

// MinimizeUnimodal minimizes f over [a, b] by golden section with a
// relative tolerance of 1e-6 of the bracket, returning both the argmin
// and the minimum value. It is the entry point the API's /v1/optimum
// endpoint uses to cross-check the closed-form periods (Eq. 9, 10, 15)
// by direct minimization of the waste, the role the Maple computations
// play in §III.B.
func MinimizeUnimodal(f func(float64) float64, a, b float64) (x, fx float64) {
	if b < a {
		a, b = b, a
	}
	x = GoldenSection(f, a, b, 1e-6*(b-a))
	return x, f(x)
}
