// Package optimize provides small numerical optimization routines used
// to cross-check the paper's closed-form optimal checkpointing periods
// (Eq. 9, 10, 15) against direct minimization of the waste function,
// standing in for the Maple computations of §III.B.
package optimize

import "math"

// invPhi is 1/φ where φ is the golden ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes f over [a, b] assuming f is unimodal there.
// It returns the abscissa of the minimum with absolute tolerance tol.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-9
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// GridRefine minimizes f over [a, b] by iterated grid scans. It does
// not require unimodality; it is slower but robust, and is used as a
// second opinion in tests.
func GridRefine(f func(float64) float64, a, b float64, points, rounds int) float64 {
	if points < 3 {
		points = 3
	}
	if rounds < 1 {
		rounds = 1
	}
	lo, hi := a, b
	best := lo
	for r := 0; r < rounds; r++ {
		step := (hi - lo) / float64(points-1)
		bestVal := math.Inf(1)
		for i := 0; i < points; i++ {
			x := lo + float64(i)*step
			if v := f(x); v < bestVal {
				bestVal, best = v, x
			}
		}
		lo = math.Max(a, best-step)
		hi = math.Min(b, best+step)
	}
	return best
}

// Bisect finds a root of f in [a, b] (f(a) and f(b) must have opposite
// signs) with absolute tolerance tol. It is used to locate waste-ratio
// crossover points in the ablation experiments.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, bool) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, true
	}
	if fb == 0 {
		return b, true
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, false
	}
	if tol <= 0 {
		tol = 1e-9
	}
	for b-a > tol {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 {
			return m, true
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, true
}
