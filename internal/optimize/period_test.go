package optimize

import (
	"math"
	"testing"
)

func TestMinimizeUnimodal(t *testing.T) {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	x, fx := MinimizeUnimodal(f, 0, 10)
	if math.Abs(x-3) > 1e-4 {
		t.Errorf("argmin = %v, want 3", x)
	}
	if fx > 1e-8 {
		t.Errorf("min = %v, want ~0", fx)
	}
	// Reversed bracket must work too.
	if x, _ := MinimizeUnimodal(f, 10, 0); math.Abs(x-3) > 1e-4 {
		t.Errorf("reversed bracket argmin = %v, want 3", x)
	}
}
