package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	got := GoldenSection(f, 0, 10, 1e-8)
	if math.Abs(got-3) > 1e-6 {
		t.Fatalf("minimum at %v, want 3", got)
	}
}

func TestGoldenSectionReversedBounds(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 2) }
	got := GoldenSection(f, 10, 0, 1e-8) // bounds swapped
	if math.Abs(got-2) > 1e-6 {
		t.Fatalf("minimum at %v, want 2", got)
	}
}

func TestGoldenSectionBoundaryMinimum(t *testing.T) {
	f := func(x float64) float64 { return x }
	got := GoldenSection(f, 1, 5, 1e-8)
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("boundary minimum at %v, want 1", got)
	}
}

func TestGoldenSectionDefaultTolerance(t *testing.T) {
	f := func(x float64) float64 { return (x - 1) * (x - 1) }
	got := GoldenSection(f, 0, 2, 0) // non-positive tol falls back
	if math.Abs(got-1) > 1e-6 {
		t.Fatalf("minimum at %v, want 1", got)
	}
}

func TestGoldenSectionProperty(t *testing.T) {
	// For any parabola with vertex inside the interval, the minimizer
	// is found to tolerance.
	prop := func(rawV, rawW float64) bool {
		v := math.Mod(math.Abs(rawV), 8) + 1 // vertex in [1, 9]
		w := math.Mod(math.Abs(rawW), 5) + 0.1
		if math.IsNaN(v) || math.IsNaN(w) {
			return true
		}
		f := func(x float64) float64 { return w * (x - v) * (x - v) }
		got := GoldenSection(f, 0, 10, 1e-9)
		return math.Abs(got-v) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGridRefine(t *testing.T) {
	// A bimodal function where golden section could latch onto the
	// wrong valley: grid refinement finds the global minimum.
	f := func(x float64) float64 {
		return math.Min((x-2)*(x-2)+0.5, (x-8)*(x-8))
	}
	got := GridRefine(f, 0, 10, 50, 6)
	if math.Abs(got-8) > 1e-3 {
		t.Fatalf("global minimum at %v, want 8", got)
	}
}

func TestGridRefineDegenerateArgs(t *testing.T) {
	f := func(x float64) float64 { return (x - 1) * (x - 1) }
	got := GridRefine(f, 0, 2, 1, 0) // clamped to 3 points, 1 round
	if math.Abs(got-1) > 0.5 {
		t.Fatalf("minimum at %v", got)
	}
}

func TestBisect(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, ok := Bisect(f, 0, 2, 1e-10)
	if !ok || math.Abs(root-math.Sqrt2) > 1e-8 {
		t.Fatalf("root = %v, ok = %v", root, ok)
	}
}

func TestBisectEndpointsAreRoots(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	if root, ok := Bisect(f, 1, 5, 1e-9); !ok || root != 1 {
		t.Fatalf("root at a = %v, %v", root, ok)
	}
	if root, ok := Bisect(f, -3, 1, 1e-9); !ok || root != 1 {
		t.Fatalf("root at b = %v, %v", root, ok)
	}
}

func TestBisectNoSignChange(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, ok := Bisect(f, -5, 5, 1e-9); ok {
		t.Fatal("no root should be reported")
	}
}

func TestBisectDefaultTolerance(t *testing.T) {
	f := func(x float64) float64 { return x - 3 }
	root, ok := Bisect(f, 0, 10, 0)
	if !ok || math.Abs(root-3) > 1e-6 {
		t.Fatalf("root = %v", root)
	}
}
