package engine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// This file is the statistical-validation suite: for exponential
// failures, the Monte-Carlo waste and expected makespan of every
// backend must agree with the analytic first-order model (Eq. 3/5 for
// the single-level engines, the two-level composition for the
// multilevel one) within a 3σ bound derived from the sample variance
// accumulated by stats.Sample. The suite spans six
// (protocol, MTBF, φ) points × all three backends; the deterministic
// seeding makes the outcome reproducible, so a failure here is a real
// model/kernel divergence, not noise.

// validationPoints are the six (protocol, MTBF, φ/R) grid points: all
// five protocols, MTBFs from 1 h to 3 h, overheads across [0, 1].
var validationPoints = []struct {
	pr      core.Protocol
	mtbf    float64
	phiFrac float64
}{
	{core.DoubleNBL, 3600, 0.25},
	{core.DoubleNBL, 7200, 1},
	{core.TripleNBL, 3600, 0.5},
	{core.DoubleBoF, 7200, 0.25},
	{core.TripleBoF, 10800, 0.75},
	{core.DoubleBlocking, 7200, 0.5},
}

// validationRequest builds the engine request for one grid point. The
// detailed backend gets a 96-node platform (its substrates are O(N)
// per failure; under the merged exponential law the timeline depends
// only on the platform MTBF, so the point is statistically the same);
// the multilevel backend gets a fixed global level.
func validationRequest(eng Engine, pr core.Protocol, mtbf, phiFrac float64) Request {
	params := scenario.Base().Params.WithMTBF(mtbf)
	if eng.Name() == "detailed" {
		params = scenario.Base().Params.WithNodes(96).WithMTBF(mtbf)
	}
	req := Request{
		Protocol: pr,
		Params:   params,
		Phi:      core.EffectivePhi(pr, params, phiFrac*params.R),
		Tbase:    2e4,
	}
	if eng.Name() == "multilevel" {
		req.Global = &Global{G: 100, Rg: 60}
	}
	return req
}

// TestStatisticalValidation asserts, per backend and grid point, that
// the sampled mean waste lies within 3 standard errors of the model
// waste, and that the sampled mean makespan lies within 3 standard
// errors of the first-order projection Tbase/(1-WASTE) (Eq. 3). With
// 48 runs per point the 3σ bands are a fraction of a percent of
// waste — tight enough that a biased kernel, a broken aggregation
// merge or a mis-derived model constant trips the suite.
func TestStatisticalValidation(t *testing.T) {
	const runs = 48
	for _, eng := range []Engine{Fast{}, Detailed{}, Multilevel{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			for _, p := range validationPoints {
				req := validationRequest(eng, p.pr, p.mtbf, p.phiFrac)
				b := mustCompile(t, eng, req)
				agg, err := RunMany(b, 42, runs, 4)
				if err != nil {
					t.Fatalf("%s M=%v phi=%v: %v", p.pr, p.mtbf, p.phiFrac, err)
				}
				if agg.Completed.Rate() != 1 {
					t.Fatalf("%s M=%v phi=%v: only %v of runs completed; the regime is too hostile to validate against the completed-run model",
						p.pr, p.mtbf, p.phiFrac, agg.Completed.Rate())
				}
				model := b.Model()
				if model.Waste <= 0 || model.Waste >= 1 {
					t.Fatalf("%s M=%v phi=%v: model waste %v outside (0, 1)",
						p.pr, p.mtbf, p.phiFrac, model.Waste)
				}

				// Waste: |sim - model| <= 3·StdErr.
				if diff, bound := math.Abs(agg.Waste.Mean()-model.Waste), 3*agg.Waste.StdErr(); diff > bound {
					t.Errorf("%s M=%v phi=%v: waste %v vs model %v (|Δ| %v > 3σ %v)",
						p.pr, p.mtbf, p.phiFrac, agg.Waste.Mean(), model.Waste, diff, bound)
				}
				// Expected makespan: Eq. 3's projection at the model waste.
				wantMakespan := req.Tbase / (1 - model.Waste)
				if diff, bound := math.Abs(agg.Makespan.Mean()-wantMakespan), 3*agg.Makespan.StdErr(); diff > bound {
					t.Errorf("%s M=%v phi=%v: makespan %v vs model %v (|Δ| %v > 3σ %v)",
						p.pr, p.mtbf, p.phiFrac, agg.Makespan.Mean(), wantMakespan, diff, bound)
				}
			}
		})
	}
}

// TestStatisticalValidationSigmaIsMeaningful guards the suite against
// a degenerate pass: the 3σ bands must come from real sample spread,
// not from a variance that collapsed to zero (which would make every
// comparison trivially depend on exact equality) nor one so wide the
// bound stops discriminating (> 20% of the model waste).
func TestStatisticalValidationSigmaIsMeaningful(t *testing.T) {
	eng := Fast{}
	for _, p := range validationPoints {
		req := validationRequest(eng, p.pr, p.mtbf, p.phiFrac)
		b := mustCompile(t, eng, req)
		agg, err := RunMany(b, 42, 48, 4)
		if err != nil {
			t.Fatal(err)
		}
		se := agg.Waste.StdErr()
		if se <= 0 {
			t.Errorf("%s M=%v phi=%v: zero waste variance across 48 runs", p.pr, p.mtbf, p.phiFrac)
		}
		if rel := 3 * se / b.Model().Waste; rel > 0.20 {
			t.Errorf("%s M=%v phi=%v: 3σ is %.0f%% of the model waste; the band is too loose to validate anything",
				p.pr, p.mtbf, p.phiFrac, 100*rel)
		}
	}
}
