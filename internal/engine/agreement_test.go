package engine

import (
	"math"
	"testing"

	"repro/internal/failure"
	"repro/internal/sim"
)

// TestCrossEngineAgreement is the acceptance check for the unified
// backend layer: the fast and detailed engines, driven through the
// same interface on the Base scenario, agree on the measured waste and
// fatal rate within the Monte-Carlo confidence bounds — for both the
// exponential law and a Weibull law with decreasing hazard. (The
// detailed engine shares the fast timeline, so the agreement is in
// fact exact; the CI-bound comparison is what a third, independent
// backend would have to pass.)
func TestCrossEngineAgreement(t *testing.T) {
	req := baseRequest()
	req.Params = req.Params.WithMTBF(600)
	req.Tbase = 1e4
	const runs = 24

	for _, law := range []struct {
		name string
		law  failure.Law
	}{
		{"exponential", nil},
		{"weibull", failure.Weibull{Shape: 0.7, MTBF: failure.IndividualMTBF(req.Params.M, req.Params.N)}},
	} {
		t.Run(law.name, func(t *testing.T) {
			r := req
			r.Law = law.law
			aggs := make(map[string]sim.Aggregate)
			for _, eng := range []Engine{Fast{}, Detailed{}} {
				b := mustCompile(t, eng, r)
				agg, err := RunMany(b, 42, runs, 4)
				if err != nil {
					t.Fatalf("%s: %v", eng.Name(), err)
				}
				if agg.Runs != runs {
					t.Fatalf("%s: aggregated %d runs, want %d", eng.Name(), agg.Runs, runs)
				}
				aggs[eng.Name()] = agg
			}
			fast, det := aggs["fast"], aggs["detailed"]
			// Waste: within the union of the two 95% confidence bounds
			// (plus an epsilon for a zero-CI degenerate sample).
			bound := fast.Waste.CI95() + det.Waste.CI95() + 1e-9
			if diff := math.Abs(fast.Waste.Mean() - det.Waste.Mean()); diff > bound {
				t.Errorf("waste disagrees: fast %v vs detailed %v (|Δ| %v > CI bound %v)",
					fast.Waste.Mean(), det.Waste.Mean(), diff, bound)
			}
			// Fatal rate: a per-run Bernoulli; bound by the binomial
			// standard error of the pooled sample.
			p := (fast.Fatal.Rate() + det.Fatal.Rate()) / 2
			se := 2*math.Sqrt(2*p*(1-p)/runs) + 1e-9
			if diff := math.Abs(fast.Fatal.Rate() - det.Fatal.Rate()); diff > se {
				t.Errorf("fatal rate disagrees: fast %v vs detailed %v (|Δ| %v > %v)",
					fast.Fatal.Rate(), det.Fatal.Rate(), diff, se)
			}
			if fast.Completed.Rate() == 0 {
				t.Error("no run completed; the regime is too hostile for the agreement check")
			}
		})
	}
}
