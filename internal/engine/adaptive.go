package engine

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// This file implements the adaptive-precision executor (DESIGN.md,
// "Adaptive precision"): instead of burning one fixed Monte-Carlo
// budget per point, a point runs in deterministic geometric rounds and
// stops as soon as the waste estimate reaches a requested relative
// precision. Two variance-reduction layers make every round worth
// more:
//
//   - antithetic pairing: consecutive runs share a seed, one drawing
//     the reflected-uniform failure sample (sim.AggregateAntithetic),
//     so the pair mean cancels the first-order sampling noise of the
//     inter-arrival times. The estimators accumulate one observation
//     per pair — pairs are mutually independent even though the runs
//     inside one are deliberately anticorrelated — so the stopping CI
//     is statistically valid and the pairing's variance reduction
//     shows up in it directly;
//   - a control variate: each pair's mean failure count, whose
//     expectation the analytic first-order model supplies
//     (λ·Tbase/(1−W_model)), regression-adjusts the waste mean through
//     stats.Controlled.
//
// The round schedule, the pairing and the stopping rule depend only on
// the batch, the content-keyed base seed and the Precision spec —
// never on the worker count or wall-clock — so adaptive points are as
// deterministic (and as resumable) as fixed-budget ones.

// Precision is the adaptive stopping specification of one point.
type Precision struct {
	// TargetRelErr is the requested relative precision: rounds stop
	// once the 95% CI half-width of the waste estimate falls to
	// TargetRelErr × |waste|. 0 disables adaptive execution.
	TargetRelErr float64
	// MinRuns is the first round's size (default 8). Doubling rounds
	// follow: MinRuns, 2·MinRuns, 4·MinRuns, … up to MaxRuns.
	MinRuns int
	// MaxRuns caps the total budget (default 32×MinRuns).
	MaxRuns int
}

// Enabled reports whether the spec requests adaptive execution.
func (p Precision) Enabled() bool { return p.TargetRelErr > 0 }

// withDefaults normalizes the spec. Round sizes are whole antithetic
// pairs — the estimator works on pair means, so a round must never
// end between the halves of a pair: MinRuns rounds up (a first round
// is always at least one whole pair) and MaxRuns rounds down, so the
// executed budget never exceeds the requested cap. A cap that cannot
// fit the pair-rounded first round (both odd and equal) is a spec
// error, not a silent overrun.
func (p Precision) withDefaults() (Precision, error) {
	if !(p.TargetRelErr > 0) || p.TargetRelErr >= 1 || math.IsNaN(p.TargetRelErr) {
		return p, fmt.Errorf("engine: targetRelErr = %v must be in (0, 1)", p.TargetRelErr)
	}
	if p.MinRuns <= 0 {
		p.MinRuns = 8
	}
	if p.MaxRuns <= 0 {
		p.MaxRuns = 32 * p.MinRuns
	}
	requested := p.MaxRuns
	p.MinRuns += p.MinRuns & 1
	p.MaxRuns -= p.MaxRuns & 1
	if p.MaxRuns < p.MinRuns {
		return p, fmt.Errorf("engine: maxRuns = %d below the %d-run first round (whole antithetic pairs)",
			requested, p.MinRuns)
	}
	return p, nil
}

// AdaptiveResult is the outcome of one adaptive point.
type AdaptiveResult struct {
	// Agg is the plain aggregate over every executed run, the same
	// shape a fixed-budget evaluation returns (raw mean, raw CI).
	Agg sim.Aggregate
	// PairWaste accumulates one waste observation per antithetic pair
	// (the mean of the pair's completed halves). Pairs are mutually
	// independent even though the runs within one are deliberately
	// anticorrelated, so its CI95 is a valid 95% interval that credits
	// the pairing — unlike Agg.Waste's, which treats the paired runs as
	// i.i.d.
	PairWaste stats.Sample
	// Controlled is the regression-adjusted waste accumulator over the
	// same per-pair observations (Mu is the model-implied expected
	// failure count, identical for a run and a pair mean).
	Controlled stats.Controlled
	// RunsUsed is the number of runs actually simulated; Rounds the
	// number of rounds they took.
	RunsUsed int
	Rounds   int
	// Estimate is the variance-reduced waste estimate the stopper
	// tracked (the controlled mean when the control is informative, the
	// raw mean otherwise), and CI95 its half-width.
	Estimate float64
	CI95     float64
	// Converged reports whether the target was met before MaxRuns.
	Converged bool
}

// RelErr returns the achieved relative error of the estimate.
func (r AdaptiveResult) RelErr() float64 {
	if r.CI95 == 0 {
		return 0
	}
	if r.Estimate == 0 {
		return math.Inf(1)
	}
	return r.CI95 / math.Abs(r.Estimate)
}

// controlMu returns the analytic expectation of the per-run failure
// count at the batch's resolved request — the control variate's known
// mean: the expected makespan Tbase/(1−W_model) times the platform
// failure rate 1/M. It returns NaN (control disabled) when the model
// offers no finite prediction. The model is first-order, so the
// expectation carries an O(W²) bias; the induced estimator bias is
// β·(μ_true − μ_model), second-order small, and the stopping CI is
// computed against the model-consistent estimator either way (the
// DESIGN.md section quantifies this).
func controlMu(b Batch) float64 {
	req := b.Request()
	w := b.Model().Waste
	if !(w >= 0) || w >= 1 || !(req.Params.M > 0) || !(req.Tbase > 0) {
		return math.NaN()
	}
	return req.Tbase / (1 - w) / req.Params.M
}

// RunAdaptive evaluates the batch to the requested precision: rounds
// of antithetically paired runs (seeds base+0, base+0ʳ, base+1,
// base+1ʳ, …) are executed through the chunked deterministic
// aggregation and merged across rounds, and after each round the
// stopper compares the variance-reduced CI against the target. The
// result — including RunsUsed — is bitwise independent of the worker
// count, and re-executing the same (batch, base, spec) replays it
// exactly.
func RunAdaptive(b Batch, base uint64, spec Precision, workers int) (AdaptiveResult, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return AdaptiveResult{}, err
	}
	var (
		runners []Runner
		out     AdaptiveResult
	)
	out.Controlled.Mu = controlMu(b)
	useControl := !math.IsNaN(out.Controlled.Mu)
	if !useControl {
		out.Controlled.Mu = 0
	}
	newRunner := func(w int) func(uint64, bool) (sim.Result, error) {
		// Runners persist across rounds (they are reset per seed), so
		// later rounds reuse the compiled substrates the first round
		// built — the multilevel backend's RunWork resumption and the
		// detailed backend's in-place substrate rewind compose with the
		// round loop for free.
		for len(runners) <= w {
			runners = append(runners, b.NewRunner())
		}
		return runners[w].RunAntithetic
	}
	// The estimators work on antithetic pairs: observe sees results in
	// run-index order (the in-order Add pass of the chunked
	// aggregation), so even indices stash the plain half and odd
	// indices fold the pair. A pair contributes the mean of its
	// completed halves (or the single completed half, or nothing);
	// round sizes are whole pairs, so no pair straddles an estimate.
	var (
		nextRun int
		plain   sim.Result
	)
	observe := func(res sim.Result) {
		j := nextRun
		nextRun++
		if j&1 == 0 {
			plain = res
			return
		}
		switch {
		case plain.Completed && res.Completed:
			w := (plain.Waste + res.Waste) / 2
			c := (float64(plain.Failures) + float64(res.Failures)) / 2
			out.PairWaste.Add(w)
			out.Controlled.Add(w, c)
		case plain.Completed:
			out.PairWaste.Add(plain.Waste)
			out.Controlled.Add(plain.Waste, float64(plain.Failures))
		case res.Completed:
			out.PairWaste.Add(res.Waste)
			out.Controlled.Add(res.Waste, float64(res.Failures))
		}
	}
	// Batches implementing AntitheticRunner (the fast backend's
	// lane-batched kernel) execute each round through it: the index
	// mapping, chunking and observe order are identical, so the rounds
	// — and with them the stopper's every decision — replay bitwise.
	antiRunner, batched := b.(AntitheticRunner)
	for target := spec.MinRuns; ; target = min(2*target, spec.MaxRuns) {
		var (
			part sim.Aggregate
			err  error
		)
		if batched {
			part, err = antiRunner.RunAntitheticSeeded(base, out.RunsUsed,
				target-out.RunsUsed, workers, observe)
		} else {
			part, err = sim.AggregateAntithetic(base, out.RunsUsed, target-out.RunsUsed,
				workers, newRunner, observe)
		}
		if err != nil {
			return AdaptiveResult{}, err
		}
		out.Agg.Merge(part)
		out.RunsUsed = target
		out.Rounds++
		out.Estimate, out.CI95 = adaptiveEstimate(&out.PairWaste, &out.Controlled, useControl)
		// Fewer than 2 pair observations (a fatal-heavy round) leaves the
		// variance undefined — CI95 reads 0 there, which must not pass
		// for precision. The legitimate zero-variance early stop
		// (identical completed wastes) always carries ≥ 2 observations.
		if out.PairWaste.N() >= 2 && out.CI95 <= spec.TargetRelErr*math.Abs(out.Estimate) {
			out.Converged = true
			return out, nil
		}
		if target >= spec.MaxRuns {
			return out, nil
		}
	}
}

// adaptiveEstimate picks the tighter of the pair-mean and the
// regression-adjusted waste estimate. Both are computed over mutually
// independent per-pair observations, so both CIs are valid; the
// controlled estimator additionally needs a few pairs before β̂ means
// anything (and a control that varied at all) — until then the
// pair-mean stands. Both branches are deterministic functions of the
// accumulated moments, so the choice — like everything else in the
// stopper — replays bitwise.
func adaptiveEstimate(pairs *stats.Sample, ctrl *stats.Controlled, useControl bool) (est, ci float64) {
	est, ci = pairs.Mean(), pairs.CI95()
	if !useControl || ctrl.N() < 8 {
		return est, ci
	}
	if cci := ctrl.CI95(); cci < ci {
		return ctrl.Mean(), cci
	}
	return est, ci
}
