// Package engine unifies the evaluation backends behind one
// interface: a Request describes a physical point (protocol, platform,
// overhead, period, failure law, backend-specific knobs), an Engine
// resolves and compiles it into an immutable Batch, and per-worker
// Runners execute individual seeds. The chunked deterministic
// aggregation of sim.AggregateSeeded then turns any backend's runs
// into the same worker-count-independent Aggregate.
//
// Three backends implement the interface (DESIGN.md, "Evaluation
// backends"):
//
//   - "fast": the zero-allocation coordinated-timeline kernel
//     (sim.Compile/Runner), the default.
//   - "detailed": the substrate-backed simulator
//     (sim.CompileDetailed), which additionally cross-checks the
//     structural fatality verdict on every failure.
//   - "multilevel": the two-level composition — the fast kernel for
//     the in-memory buddy level, resumed across global rollbacks, with
//     the global checkpoint level of internal/multilevel layered on
//     top.
//
// The lifecycle mirrors the API sweep engine's needs: Resolve is the
// cheap feasibility gate (no substrate construction), Compile the
// cacheable per-batch precomputation, and Batch/Runner the hot path.
package engine

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/sim"
)

// ErrInfeasible marks a point where the backend cannot make progress:
// the MTBF is too small for the protocol, a fixed period is below the
// protocol's MinPeriod, the platform does not fit the detailed
// substrate shape, or no multilevel plan exists. Sweep engines turn it
// into a Feasible=false item instead of aborting the grid; every other
// Resolve/Compile error is a request error.
var ErrInfeasible = errors.New("engine: infeasible point")

// infeasible wraps err so errors.Is(_, ErrInfeasible) holds.
func infeasible(err error) error {
	return fmt.Errorf("%w: %v", ErrInfeasible, err)
}

// Request is one fully resolved evaluation point, backend-agnostic.
// The zero values of the backend-specific fields select the documented
// defaults, so a Request built for the fast engine runs unchanged on
// the detailed one.
type Request struct {
	// Protocol is the checkpointing protocol.
	Protocol core.Protocol
	// Params is the platform (Table I row plus MTBF).
	Params core.Params
	// Phi is the overhead point φ ∈ [0, R].
	Phi float64
	// Period is the inner checkpointing period; 0 lets Resolve fill the
	// backend's optimal period.
	Period float64
	// Tbase is the failure-free application duration.
	Tbase float64
	// MaxSimTime bounds each run (0 → 1000×Tbase).
	MaxSimTime float64
	// Law optionally replaces the Exponential failure law (nil selects
	// the merged-superposition fast path).
	Law failure.Law
	// Correlation optionally leaves the i.i.d. world: correlated
	// failure domains and/or heterogeneous per-group MTBFs. Supported
	// by the fast and detailed backends; rejected by multilevel.
	Correlation *failure.Correlation
	// Trace, when set, replays a recorded failure log instead of
	// generating failures (detailed backend only). The run errors with
	// failure.ErrTraceExhausted past the trace's coverage.
	Trace *failure.Trace
	// TraceID is the content identifier of Trace (name@digest from the
	// API's trace registry); caches key on it instead of the trace body.
	TraceID string
	// ImageBytes is the detailed backend's checkpoint image size
	// (0 → 512 MB).
	ImageBytes int64
	// Spares is the detailed backend's spare pool size (0 → N/10+1).
	Spares int
	// Global is the multilevel backend's global checkpoint level;
	// required by that backend, ignored by the others.
	Global *Global
}

// Global is the multilevel backend's global (stable-storage) level: a
// blocking dump of duration G every K inner periods, reloaded in Rg
// after a fatal in-memory failure. K = 0 lets Resolve optimize the
// interval.
type Global struct {
	G  float64
	Rg float64
	K  int
}

// simConfig projects the request onto the fast kernel's Config (the
// seed is always per run).
func (r Request) simConfig() sim.Config {
	return sim.Config{
		Protocol:    r.Protocol,
		Params:      r.Params,
		Phi:         r.Phi,
		Period:      r.Period,
		Tbase:       r.Tbase,
		Law:         r.Law,
		Correlation: r.Correlation,
		MaxSimTime:  r.MaxSimTime,
	}
}

// resolveCorrelation gates the correlation axes during Resolve: layout
// mismatches (a domain size or group count that does not divide the
// platform) are infeasible points — a grid sweeping N degrades per
// point instead of aborting — while any other invalid value (negative
// or non-finite rate, non-positive weight) is a request error.
func resolveCorrelation(req Request) error {
	c := req.Correlation
	if c.IID() {
		return nil
	}
	n := req.Params.N
	if d := c.Domains; d != nil && d.Size >= 1 && (d.Size > n || n%d.Size != 0) {
		return infeasible(fmt.Errorf("engine: domain size %d does not divide %d nodes", d.Size, n))
	}
	if g := len(c.Groups); g > 0 && n%g != 0 {
		return infeasible(fmt.Errorf("engine: %d MTBF groups do not divide %d nodes", g, n))
	}
	return c.Validate(n)
}

// Model is a backend's analytic prediction at a resolved request: the
// expected waste and the per-failure time loss F. The Monte-Carlo
// aggregate is validated against it.
type Model struct {
	Waste float64
	Loss  float64
}

// Engine is one evaluation backend: Resolve validates a request and
// fills its backend-resolved fields (the optimal period, the optimized
// multilevel interval), Compile precomputes the immutable per-batch
// state every seed shares.
type Engine interface {
	// Name is the backend identifier requests select ("fast",
	// "detailed", "multilevel").
	Name() string
	// Resolve returns the request with its period (and, for the
	// multilevel backend, global interval) resolved. An infeasible
	// point returns the request echo and an error matching
	// ErrInfeasible; any other error is a request error. Resolve builds
	// no substrates, so it is cheap enough to run per grid point.
	Resolve(req Request) (Request, error)
	// Compile precomputes the batch state for a resolved request
	// (Resolve is applied first when the request still carries a zero
	// period). The returned Batch is immutable and safe for concurrent
	// use.
	Compile(req Request) (Batch, error)
}

// Batch is a compiled request: the unit the sweep engine caches and
// fans out over workers.
type Batch interface {
	// Request returns the resolved request the batch was compiled from.
	Request() Request
	// Model returns the backend's analytic prediction at the resolved
	// request.
	Model() Model
	// NewRunner returns a reusable single-goroutine executor. Runners
	// are not safe for concurrent use; create one per worker.
	NewRunner() Runner
}

// Runner executes single seeds of one Batch. Equal seeds give
// identical Results on every backend.
type Runner interface {
	Run(seed uint64) (sim.Result, error)
	// RunAntithetic runs the seed with the reflected-uniform failure
	// sample when antithetic is true — the mirror half of an antithetic
	// pair (DESIGN.md, "Adaptive precision"). RunAntithetic(seed, false)
	// is bitwise identical to Run(seed) on every backend.
	RunAntithetic(seed uint64, antithetic bool) (sim.Result, error)
}

// ManyRunner is the optional batched executor a Batch may implement:
// a backend-owned RunMany that produces the exact Aggregate the
// generic per-seed path would (bitwise, for any worker count) through
// a faster engine. The fast backend implements it with the
// lane-batched SoA kernel (sim.LaneRunner).
type ManyRunner interface {
	RunManySeeded(base uint64, runs, workers int) (sim.Aggregate, error)
}

// AntitheticRunner is ManyRunner's antithetic-schedule counterpart,
// the optional fast path of the adaptive executor's rounds. The
// contract matches sim.AggregateAntithetic: run j draws seed
// base+j/2, reflected when odd, and observe sees every Result once in
// run-index order.
type AntitheticRunner interface {
	RunAntitheticSeeded(base uint64, first, runs, workers int,
		observe func(sim.Result)) (sim.Aggregate, error)
}

// RunMany executes runs seeds base+0 .. base+runs-1 of the batch
// across the given worker budget, streaming the chunked deterministic
// aggregation: the Aggregate is bitwise independent of the worker
// count for every backend, which is what lets the sweep cache treat
// backends uniformly. Batches implementing ManyRunner (the fast
// backend's lane-batched kernel) execute through it — same Aggregate,
// bit for bit. A per-run error (the detailed engine's fatality
// cross-check) cancels the remaining dispatch.
func RunMany(b Batch, base uint64, runs, workers int) (sim.Aggregate, error) {
	if mr, ok := b.(ManyRunner); ok {
		return mr.RunManySeeded(base, runs, workers)
	}
	return sim.AggregateSeeded(base, runs, workers, func(int) func(uint64) (sim.Result, error) {
		r := b.NewRunner()
		return r.Run
	})
}

// backends is the registry, in documentation order.
var backends = []Engine{Fast{}, Detailed{}, Multilevel{}}

// Names returns the registered backend names.
func Names() []string {
	names := make([]string, len(backends))
	for i, e := range backends {
		names[i] = e.Name()
	}
	return names
}

// ByName returns the backend registered under name; the empty string
// selects the fast engine (the documented default).
func ByName(name string) (Engine, error) {
	if name == "" {
		return Fast{}, nil
	}
	for _, e := range backends {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("engine: unknown backend %q (want %s)",
		name, strings.Join(Names(), ", "))
}

// resolvePeriod is the shared fast/detailed period resolution,
// reproducing the analytic feasibility gates: a zero period resolves
// to the closed-form optimum (Eq. 9/10/15) and an MTBF too small for
// progress is infeasible; a fixed period must admit a valid phase
// split (≥ the protocol's MinPeriod).
func resolvePeriod(req Request) (Request, error) {
	cfg := req.simConfig()
	if err := cfg.Validate(); err != nil {
		return req, err
	}
	if req.Period == 0 {
		period, err := core.OptimalPeriod(req.Protocol, req.Params, req.Phi)
		req.Period = period // echoed even when infeasible
		if err != nil {
			return req, infeasible(err)
		}
	} else if _, err := core.PeriodPhases(req.Protocol, req.Params, req.Phi, req.Period); err != nil {
		return req, infeasible(err)
	}
	return req, nil
}

// singleLevelModel is the fast/detailed analytic prediction: Eq. 5's
// waste and Eq. 7/8/14's per-failure loss at the resolved period.
func singleLevelModel(req Request) (Model, error) {
	w, err := core.Waste(req.Protocol, req.Params, req.Phi, req.Period)
	if err != nil {
		return Model{}, err
	}
	return Model{
		Waste: w,
		Loss:  core.FailureLoss(req.Protocol, req.Params, req.Phi, req.Period),
	}, nil
}
