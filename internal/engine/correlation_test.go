package engine

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/scenario"
)

// TestStatisticalValidationCorrelationDegenerate is the degenerate-
// correlation oracle: a burst model with rate 0 and uniform per-group
// MTBF weights describe exactly the i.i.d. platform, so the correlated
// code path (scalar engine, wrapped or heterogeneous sources) must
// agree with the plain i.i.d. backend within 3σ on mean waste. This
// pins the superposition and the group-law normalization against the
// independent model they must degenerate to. (The name keeps it inside
// the CI validation shard's -run 'TestStatisticalValidation' filter.)
func TestStatisticalValidationCorrelationDegenerate(t *testing.T) {
	const runs = 48
	degenerate := []struct {
		name string
		corr *failure.Correlation
	}{
		{"rate0-domains", &failure.Correlation{Domains: &failure.DomainSpec{Size: 32, Rate: 0}}},
		{"uniform-groups", &failure.Correlation{Groups: []float64{1, 1, 1, 1}}},
		{"both", &failure.Correlation{
			Domains: &failure.DomainSpec{Size: 32, Rate: 0, Stripe: true},
			Groups:  []float64{1, 1},
		}},
	}
	for _, eng := range []Engine{Fast{}, Detailed{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			for _, p := range validationPoints[:3] {
				plainReq := validationRequest(eng, p.pr, p.mtbf, p.phiFrac)
				plain := mustCompile(t, eng, plainReq)
				plainAgg, err := RunMany(plain, 42, runs, 4)
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range degenerate {
					req := validationRequest(eng, p.pr, p.mtbf, p.phiFrac)
					req.Correlation = d.corr
					b := mustCompile(t, eng, req)
					agg, err := RunMany(b, 43, runs, 4)
					if err != nil {
						t.Fatalf("%s %s M=%v: %v", d.name, p.pr, p.mtbf, err)
					}
					if agg.Completed.Rate() != 1 {
						t.Fatalf("%s %s M=%v: only %v of runs completed", d.name, p.pr, p.mtbf, agg.Completed.Rate())
					}
					diff := math.Abs(agg.Waste.Mean() - plainAgg.Waste.Mean())
					bound := 3 * math.Hypot(agg.Waste.StdErr(), plainAgg.Waste.StdErr())
					if diff > bound {
						t.Errorf("%s %s M=%v phi=%v: degenerate waste %v vs i.i.d. %v (|Δ| %v > 3σ %v)",
							d.name, p.pr, p.mtbf, p.phiFrac, agg.Waste.Mean(), plainAgg.Waste.Mean(), diff, bound)
					}
					// And against the analytic model directly, like the
					// main suite.
					if mdiff, mbound := math.Abs(agg.Waste.Mean()-b.Model().Waste), 3*agg.Waste.StdErr(); mdiff > mbound {
						t.Errorf("%s %s M=%v phi=%v: degenerate waste %v vs model %v (|Δ| %v > 3σ %v)",
							d.name, p.pr, p.mtbf, p.phiFrac, agg.Waste.Mean(), b.Model().Waste, mdiff, mbound)
					}
				}
			}
		})
	}
}

// TestCorrelatedPlacementSensitivity pins the tentpole claim: with a
// domain burst model enabled, buddy-protocol waste and survival are
// measurably sensitive to domain-vs-buddy placement. Block domains
// align with the contiguous buddy groups, so one burst fells whole
// groups at once — fatal almost surely once a snapshot set has
// committed. Striped domains spread each burst across distinct buddy
// groups: every victim's buddy survives to restore it, and the
// application survives burst after burst. Same seeds, same rates; only
// the placement differs.
func TestCorrelatedPlacementSensitivity(t *testing.T) {
	const runs = 64
	base := Request{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithNodes(96).WithMTBF(3600),
		Phi:      2,
		Tbase:    2e4,
	}
	fatalRate := func(stripe bool) float64 {
		req := base
		req.Correlation = &failure.Correlation{
			Domains: &failure.DomainSpec{Size: 4, Rate: 1.0 / 5000, Stripe: stripe},
		}
		b := mustCompile(t, Detailed{}, req)
		agg, err := RunMany(b, 42, runs, 4)
		if err != nil {
			t.Fatal(err)
		}
		return agg.Fatal.Rate()
	}
	block := fatalRate(false)
	stripe := fatalRate(true)
	t.Logf("fatal rate: block=%v stripe=%v", block, stripe)
	if block < 0.5 {
		t.Errorf("block placement fatal rate %v; bursts aligned with buddy groups should usually kill the run", block)
	}
	if stripe > block/2 {
		t.Errorf("stripe placement fatal rate %v not clearly below block %v; placement should matter", stripe, block)
	}
}

// TestBackendCorrelationGating checks which backends accept which new
// axes: trace replay is detailed-only, correlation is fast/detailed,
// and layout mismatches are infeasible (not request errors).
func TestBackendCorrelationGating(t *testing.T) {
	params := scenario.Base().Params.WithNodes(96).WithMTBF(3600)
	base := Request{Protocol: core.DoubleNBL, Params: params, Phi: 2, Tbase: 2e4}

	corr := base
	corr.Correlation = &failure.Correlation{Domains: &failure.DomainSpec{Size: 4, Rate: 1e-4}}
	if _, err := (Fast{}).Resolve(corr); err != nil {
		t.Fatalf("fast should accept correlation: %v", err)
	}
	if _, err := (Detailed{}).Resolve(corr); err != nil {
		t.Fatalf("detailed should accept correlation: %v", err)
	}
	ml := corr
	ml.Global = &Global{G: 100, Rg: 60}
	if _, err := (Multilevel{}).Resolve(ml); err == nil {
		t.Fatal("multilevel should reject correlation")
	}

	tr := base
	tr.Trace = &failure.Trace{Nodes: 96, PlatformMTBF: 3600, Horizon: 1e9}
	if _, err := (Detailed{}).Resolve(tr); err != nil {
		t.Fatalf("detailed should accept a matching trace: %v", err)
	}
	if _, err := (Fast{}).Resolve(tr); err == nil {
		t.Fatal("fast should reject trace replay")
	}
	mltr := tr
	mltr.Global = &Global{G: 100, Rg: 60}
	if _, err := (Multilevel{}).Resolve(mltr); err == nil {
		t.Fatal("multilevel should reject trace replay")
	}

	mismatch := tr
	mismatch.Trace = &failure.Trace{Nodes: 48, PlatformMTBF: 3600, Horizon: 1e9}
	if _, err := (Detailed{}).Resolve(mismatch); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("node-count mismatch should be infeasible, got %v", err)
	}

	badLayout := base
	badLayout.Correlation = &failure.Correlation{Domains: &failure.DomainSpec{Size: 5, Rate: 1e-4}}
	if _, err := (Fast{}).Resolve(badLayout); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("non-dividing domain size should be infeasible, got %v", err)
	}
	badLayout.Correlation = &failure.Correlation{Groups: []float64{1, 2, 3, 4, 5}}
	if _, err := (Detailed{}).Resolve(badLayout); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("non-dividing group count should be infeasible, got %v", err)
	}

	badValue := base
	badValue.Correlation = &failure.Correlation{Domains: &failure.DomainSpec{Size: 4, Rate: math.NaN()}}
	if _, err := (Fast{}).Resolve(badValue); err == nil || errors.Is(err, ErrInfeasible) {
		t.Fatalf("NaN rate should be a request error, got %v", err)
	}
	badValue.Correlation = &failure.Correlation{Groups: []float64{1, -1}}
	if _, err := (Fast{}).Resolve(badValue); err == nil || errors.Is(err, ErrInfeasible) {
		t.Fatalf("negative weight should be a request error, got %v", err)
	}
}
