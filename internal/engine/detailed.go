package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Detailed is the substrate-backed backend: sim.CompileDetailed drives
// the cluster / checkpoint-registry / protocol substrates in lockstep
// with the fast timeline and cross-checks the structural fatality
// verdict against the analytic risk windows on every failure. Its
// performance metrics are bit-identical to the fast engine's for equal
// seeds; what it adds is the structural verification (and its cost —
// per-failure substrate updates are O(N)).
type Detailed struct{}

// Name returns "detailed".
func (Detailed) Name() string { return "detailed" }

// Resolve fills the optimal period, normalizes the substrate defaults
// (Spares → N/10+1, ImageBytes → 512 MB) so that explicit defaults and
// omitted fields key identically, and gates feasibility. A platform
// whose rank count is not divisible by the protocol's buddy-group size
// cannot be laid out structurally and is reported infeasible, so a
// sweep mixing double and triple protocols degrades per point instead
// of aborting.
func (Detailed) Resolve(req Request) (Request, error) {
	req, err := resolvePeriod(req)
	if err != nil {
		return req, err
	}
	if g := req.Protocol.GroupSize(); req.Params.N%g != 0 {
		return req, infeasible(fmt.Errorf("sim: %d ranks not divisible by group size %d", req.Params.N, g))
	}
	if err := resolveCorrelation(req); err != nil {
		return req, err
	}
	if tr := req.Trace; tr != nil {
		if err := tr.Validate(); err != nil {
			return req, err
		}
		if tr.Nodes != req.Params.N {
			// A grid sweeping N degrades per point: the trace only fits
			// the platform size it was recorded on.
			return req, infeasible(fmt.Errorf("engine: trace recorded for %d nodes, platform has %d",
				tr.Nodes, req.Params.N))
		}
	}
	req.Spares, req.ImageBytes = NormalizeSubstrate(req.Params, req.Spares, req.ImageBytes)
	return req, nil
}

// NormalizeSubstrate applies the detailed engine's substrate defaults
// (sim.DetailedConfig.Normalize) to a spares/imageBytes pair, so
// callers that key requests before Resolve — the API sweep's point
// keying — collapse explicit defaults and omitted fields to one
// physical configuration.
func NormalizeSubstrate(p core.Params, spares int, imageBytes int64) (int, int64) {
	n := sim.DetailedConfig{Params: p, Spares: spares, ImageBytes: imageBytes}.Normalize()
	return n.Spares, n.ImageBytes
}

// Compile precomputes the shared batch state via sim.CompileDetailed.
func (Detailed) Compile(req Request) (Batch, error) {
	b, err := sim.CompileDetailed(sim.DetailedConfig{
		Protocol:    req.Protocol,
		Params:      req.Params,
		Phi:         req.Phi,
		Period:      req.Period,
		Tbase:       req.Tbase,
		Spares:      req.Spares,
		ImageBytes:  req.ImageBytes,
		Law:         req.Law,
		Correlation: req.Correlation,
		Trace:       req.Trace,
		MaxSimTime:  req.MaxSimTime,
	})
	if err != nil {
		return nil, err
	}
	cfg := b.Config()
	req.Period = cfg.Period
	req.Spares = cfg.Spares
	req.ImageBytes = cfg.ImageBytes
	model, err := singleLevelModel(req)
	if err != nil {
		return nil, err
	}
	return &detailedBatch{req: req, b: b, model: model}, nil
}

type detailedBatch struct {
	req   Request
	b     *sim.DetailedBatch
	model Model
}

func (b *detailedBatch) Request() Request { return b.req }
func (b *detailedBatch) Model() Model     { return b.model }
func (b *detailedBatch) NewRunner() Runner {
	return detailedRunner{r: b.b.NewRunner()}
}

type detailedRunner struct{ r *sim.DetailedRunner }

func (d detailedRunner) Run(seed uint64) (sim.Result, error) {
	res, err := d.r.Run(seed)
	return res.Result, err
}

func (d detailedRunner) RunAntithetic(seed uint64, antithetic bool) (sim.Result, error) {
	res, err := d.r.RunAntithetic(seed, antithetic)
	return res.Result, err
}
