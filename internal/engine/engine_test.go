package engine

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// baseRequest is the shared test point: Base scenario at a 1 h MTBF,
// shrunk to 96 nodes (divisible by both group sizes) so the detailed
// substrates stay cheap.
func baseRequest() Request {
	p := scenario.Base().Params.WithNodes(96).WithMTBF(3600)
	return Request{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      0.25 * p.R,
		Tbase:    2e4,
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "fast", "detailed", "multilevel"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if name != "" && e.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, e.Name())
		}
	}
	if _, err := ByName("backned"); err == nil {
		t.Error("unknown backend accepted")
	}
	if e, _ := ByName(""); e.Name() != "fast" {
		t.Errorf("empty backend resolves to %q, want fast", e.Name())
	}
}

// TestFastBatchMatchesSim pins the adapter: the fast backend is the
// sim kernel, bit for bit.
func TestFastBatchMatchesSim(t *testing.T) {
	req, eng := baseRequest(), Fast{}
	resolved, err := eng.Resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Compile(resolved)
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewRunner()
	cfg := resolved.simConfig()
	for seed := uint64(0); seed < 8; seed++ {
		got, err := r.Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = seed
		want, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: engine %+v != sim %+v", seed, got, want)
		}
	}
}

// TestDetailedBatchMatchesRunDetailed pins the compiled detailed path:
// a reused DetailedRunner produces the same results as per-run
// RunDetailed (which rebuilds the substrates every call), across
// interleaved seeds.
func TestDetailedBatchMatchesRunDetailed(t *testing.T) {
	req := baseRequest()
	req.Params = req.Params.WithMTBF(600) // enough failures to stress the substrates
	resolved, err := Detailed{}.Resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Detailed{}.Compile(resolved)
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewRunner()
	for _, seed := range []uint64{3, 0, 7, 3, 1} { // repeats catch stale substrate state
		got, err := r.Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.RunDetailed(sim.DetailedConfig{
			Protocol: req.Protocol, Params: req.Params, Phi: req.Phi,
			Tbase: req.Tbase, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Result {
			t.Fatalf("seed %d: batch %+v != RunDetailed %+v", seed, got, want.Result)
		}
	}
}

// TestRunManyWorkerIndependence pins the cross-backend determinism
// guarantee: every backend's aggregate is bitwise independent of the
// worker count.
func TestRunManyWorkerIndependence(t *testing.T) {
	for _, eng := range backends {
		req := baseRequest()
		req.Params = req.Params.WithMTBF(900)
		req.Tbase = 1e4
		if eng.Name() == "multilevel" {
			req.Global = &Global{G: 50, Rg: 50}
		}
		resolved, err := eng.Resolve(req)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		b, err := eng.Compile(resolved)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		serial, err := RunMany(b, 42, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		wide, err := RunMany(b, 42, 16, 8)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if !reflect.DeepEqual(serial, wide) {
			t.Errorf("%s: aggregate differs between 1 and 8 workers:\n%+v\n%+v",
				eng.Name(), serial, wide)
		}
		if serial.Runs != 16 {
			t.Errorf("%s: %d runs aggregated, want 16", eng.Name(), serial.Runs)
		}
	}
}

// TestResolveInfeasible checks the ErrInfeasible mapping on each
// backend: saturated MTBFs (and indivisible detailed platforms) are
// infeasible, not request errors.
func TestResolveInfeasible(t *testing.T) {
	req := baseRequest()
	req.Params = req.Params.WithMTBF(15) // no protocol progresses at 15 s
	for _, eng := range backends {
		r := req
		if eng.Name() == "multilevel" {
			r.Global = &Global{G: 50, Rg: 50}
		}
		if _, err := eng.Resolve(r); !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s at M=15s: err = %v, want ErrInfeasible", eng.Name(), err)
		}
	}
	// Detailed: 100 ranks are not divisible into triples.
	r := baseRequest()
	r.Protocol = core.TripleNBL
	r.Params = r.Params.WithNodes(100)
	if _, err := (Detailed{}).Resolve(r); !errors.Is(err, ErrInfeasible) {
		t.Errorf("indivisible detailed platform: err = %v, want ErrInfeasible", err)
	}
	// A bad request is NOT infeasible: it must surface as a hard error.
	bad := baseRequest()
	bad.Tbase = -1
	if _, err := (Fast{}).Resolve(bad); err == nil || errors.Is(err, ErrInfeasible) {
		t.Errorf("negative Tbase: err = %v, want a non-infeasible error", err)
	}
	// Multilevel without a global level is a request error.
	if _, err := (Multilevel{}).Resolve(baseRequest()); err == nil || errors.Is(err, ErrInfeasible) {
		t.Errorf("multilevel without global: err = %v, want a non-infeasible error", err)
	}
}

// TestMultilevelRescuesFatalRuns is the backend's semantic pin: in a
// regime where the inner protocol suffers fatal buddy-group failures,
// the two-level composition completes every run anyway (the global
// level absorbs the fatality as a rollback), trading extra makespan.
func TestMultilevelRescuesFatalRuns(t *testing.T) {
	req := baseRequest()
	req.Params = req.Params.WithMTBF(120) // hostile: fatal chains happen
	req.Tbase = 5e3

	fast, err := Fast{}.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	fastAgg, err := RunMany(fast, 7, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fastAgg.Fatal.Rate() == 0 {
		t.Skip("regime produced no inner fatal failures; nothing to rescue")
	}

	req.Global = &Global{G: 20, Rg: 20}
	resolved, err := Multilevel{}.Resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Global.K < 1 || resolved.Period <= 0 {
		t.Fatalf("unresolved plan: %+v", resolved.Global)
	}
	ml, err := Multilevel{}.Compile(resolved)
	if err != nil {
		t.Fatal(err)
	}
	mlAgg, err := RunMany(ml, 7, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mlAgg.Fatal.Rate() != 0 {
		t.Errorf("multilevel runs report fatal failures: rate %v", mlAgg.Fatal.Rate())
	}
	if mlAgg.Completed.Rate() != 1 {
		t.Errorf("multilevel completion rate %v, want 1", mlAgg.Completed.Rate())
	}
	if w := mlAgg.Waste.Mean(); w <= 0 || w >= 1 {
		t.Errorf("multilevel waste %v out of (0, 1)", w)
	}
	if math.IsNaN(ml.Model().Waste) || ml.Model().Waste >= 1 {
		t.Errorf("multilevel model waste %v", ml.Model().Waste)
	}
}

// TestMultilevelRunWorkIdentity pins the composition's base case: with
// no fatal failures the multilevel result is the inner result plus the
// global dump time.
func TestMultilevelRunWorkIdentity(t *testing.T) {
	req := baseRequest()
	req.Params = req.Params.WithMTBF(1e9) // effectively failure-free
	req.Global = &Global{G: 30, Rg: 30, K: 4}
	resolved, err := Multilevel{}.Resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Multilevel{}.Compile(resolved)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.NewRunner().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Fatal {
		t.Fatalf("failure-free run: %+v", res)
	}
	mb := b.(*mlBatch)
	inner := mb.inner.FaultFreeMakespan(req.Tbase)
	wantDumps := math.Floor(req.Tbase / mb.globalWork)
	want := inner + 30*wantDumps
	if math.Abs(res.Makespan-want) > 1e-6 {
		t.Errorf("makespan %v, want inner %v + %v dumps × G", res.Makespan, inner, wantDumps)
	}
	if res.WorkDone != req.Tbase {
		t.Errorf("work done %v, want %v", res.WorkDone, req.Tbase)
	}
}

// TestWeibullLawThreadsThrough checks that a non-exponential law
// reaches the kernel on the fast and detailed backends (the sample
// differs from the exponential one at equal seed and mean).
func TestWeibullLawThreadsThrough(t *testing.T) {
	for _, eng := range []Engine{Fast{}, Detailed{}} {
		req := baseRequest()
		req.Params = req.Params.WithMTBF(900)
		expB := mustCompile(t, eng, req)
		req.Law = failure.Weibull{Shape: 0.7, MTBF: failure.IndividualMTBF(req.Params.M, req.Params.N)}
		weiB := mustCompile(t, eng, req)
		expRes, err := expB.NewRunner().Run(5)
		if err != nil {
			t.Fatal(err)
		}
		weiRes, err := weiB.NewRunner().Run(5)
		if err != nil {
			t.Fatal(err)
		}
		if expRes == weiRes {
			t.Errorf("%s: Weibull law did not change the trajectory", eng.Name())
		}
	}
}

func mustCompile(t *testing.T, eng Engine, req Request) Batch {
	t.Helper()
	resolved, err := eng.Resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Compile(resolved)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
