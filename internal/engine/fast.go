package engine

import (
	"errors"

	"repro/internal/sim"
)

// Fast is the default backend: the zero-allocation coordinated-
// timeline kernel of sim.Compile/Runner. It simulates the global
// checkpoint schedule with analytic risk-window bookkeeping, which is
// what makes 10⁶-node platforms cheap.
type Fast struct{}

// Name returns "fast".
func (Fast) Name() string { return "fast" }

// Resolve fills the optimal period and gates feasibility. Correlation
// runs on this backend (the scalar engine; the lane kernel is for
// i.i.d. batches only); trace replay needs the detailed backend's
// substrates.
func (Fast) Resolve(req Request) (Request, error) {
	if req.Trace != nil || req.TraceID != "" {
		return req, errors.New("engine: trace replay requires the detailed backend")
	}
	req, err := resolvePeriod(req)
	if err != nil {
		return req, err
	}
	if err := resolveCorrelation(req); err != nil {
		return req, err
	}
	return req, nil
}

// Compile precomputes the shared batch state via sim.Compile.
func (Fast) Compile(req Request) (Batch, error) {
	b, err := sim.Compile(req.simConfig())
	if err != nil {
		return nil, err
	}
	req.Period = b.Period()
	model, err := singleLevelModel(req)
	if err != nil {
		return nil, err
	}
	return &fastBatch{req: req, b: b, model: model}, nil
}

type fastBatch struct {
	req   Request
	b     *sim.Batch
	model Model
}

func (b *fastBatch) Request() Request { return b.req }
func (b *fastBatch) Model() Model     { return b.model }
func (b *fastBatch) NewRunner() Runner {
	return fastRunner{r: b.b.NewRunner()}
}

// RunManySeeded implements ManyRunner: batches on the merged
// exponential path execute through the lane-batched SoA kernel
// (renewal-law batches fall back to the scalar Runner inside sim),
// producing the exact per-seed Results and Aggregate of the generic
// path.
func (b *fastBatch) RunManySeeded(base uint64, runs, workers int) (sim.Aggregate, error) {
	return b.b.RunManySeeded(base, runs, workers)
}

// RunAntitheticSeeded implements AntitheticRunner with the same lane
// kernel; antithetic pairs occupy adjacent lanes.
func (b *fastBatch) RunAntitheticSeeded(base uint64, first, runs, workers int,
	observe func(sim.Result)) (sim.Aggregate, error) {
	return b.b.RunAntitheticSeeded(base, first, runs, workers, observe)
}

type fastRunner struct{ r *sim.Runner }

func (f fastRunner) Run(seed uint64) (sim.Result, error) {
	return f.r.Run(seed), nil
}

func (f fastRunner) RunAntithetic(seed uint64, antithetic bool) (sim.Result, error) {
	return f.r.RunAntithetic(seed, antithetic), nil
}
