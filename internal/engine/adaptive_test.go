package engine

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// compileBackend resolves and compiles the shared test point on one
// backend, with the MTBF override applied.
func compileBackend(t *testing.T, eng Engine, mtbf float64) Batch {
	t.Helper()
	req := baseRequest()
	req.Params = req.Params.WithMTBF(mtbf)
	req.Tbase = 1e4
	if eng.Name() == "multilevel" {
		req.Global = &Global{G: 50, Rg: 50}
	}
	resolved, err := eng.Resolve(req)
	if err != nil {
		t.Fatalf("%s: %v", eng.Name(), err)
	}
	b, err := eng.Compile(resolved)
	if err != nil {
		t.Fatalf("%s: %v", eng.Name(), err)
	}
	return b
}

// TestRunAntitheticFalseMatchesRunAllBackends pins the engine-level
// contract the adaptive executor builds on: on every backend,
// RunAntithetic(seed, false) is bitwise Run(seed), and the reflected
// half is deterministic and (on failure-rich points) different.
func TestRunAntitheticFalseMatchesRunAllBackends(t *testing.T) {
	for _, eng := range backends {
		b := compileBackend(t, eng, 900)
		r1, r2 := b.NewRunner(), b.NewRunner()
		differs := false
		for seed := uint64(0); seed < 6; seed++ {
			want, err := r1.Run(seed)
			if err != nil {
				t.Fatalf("%s: %v", eng.Name(), err)
			}
			plain, err := r2.RunAntithetic(seed, false)
			if err != nil {
				t.Fatalf("%s: %v", eng.Name(), err)
			}
			if plain != want {
				t.Fatalf("%s seed %d: RunAntithetic(false) != Run", eng.Name(), seed)
			}
			anti, err := r2.RunAntithetic(seed, true)
			if err != nil {
				t.Fatalf("%s: %v", eng.Name(), err)
			}
			anti2, err := r1.RunAntithetic(seed, true)
			if err != nil {
				t.Fatalf("%s: %v", eng.Name(), err)
			}
			if anti != anti2 {
				t.Fatalf("%s seed %d: antithetic run not deterministic", eng.Name(), seed)
			}
			if anti != want {
				differs = true
			}
		}
		if !differs {
			t.Errorf("%s: antithetic runs never differed at a 900 s MTBF", eng.Name())
		}
	}
}

// TestRunAdaptiveWorkerIndependence pins the adaptive determinism
// guarantee on all three backends: the full AdaptiveResult — aggregate,
// controlled accumulator, rounds, RunsUsed, estimate — is bitwise
// independent of the worker count, and a re-execution replays it.
func TestRunAdaptiveWorkerIndependence(t *testing.T) {
	spec := Precision{TargetRelErr: 0.05, MinRuns: 8, MaxRuns: 64}
	for _, eng := range backends {
		b := compileBackend(t, eng, 900)
		serial, err := RunAdaptive(b, 42, spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		wide, err := RunAdaptive(b, 42, spec, 8)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if !reflect.DeepEqual(serial, wide) {
			t.Errorf("%s: adaptive result differs between 1 and 8 workers:\n%+v\n%+v",
				eng.Name(), serial, wide)
		}
		again, err := RunAdaptive(b, 42, spec, 4)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if !reflect.DeepEqual(serial, again) {
			t.Errorf("%s: adaptive result is not replayable", eng.Name())
		}
		if serial.RunsUsed != serial.Agg.Runs {
			t.Errorf("%s: RunsUsed %d != aggregated runs %d",
				eng.Name(), serial.RunsUsed, serial.Agg.Runs)
		}
		if serial.RunsUsed < spec.MinRuns || serial.RunsUsed > spec.MaxRuns {
			t.Errorf("%s: RunsUsed %d outside [%d, %d]",
				eng.Name(), serial.RunsUsed, spec.MinRuns, spec.MaxRuns)
		}
		if serial.Converged && serial.CI95 > spec.TargetRelErr*math.Abs(serial.Estimate) {
			t.Errorf("%s: converged with rel err %v above target", eng.Name(), serial.RelErr())
		}
	}
}

// TestRunAdaptiveZeroVarianceEarlyStop covers the degenerate stop: a
// day-long MTBF on a short application yields (almost surely) zero
// failures, every waste identical, a zero CI — the point must stop
// after the first round instead of doubling to MaxRuns.
func TestRunAdaptiveZeroVarianceEarlyStop(t *testing.T) {
	b := compileBackend(t, Fast{}, 864000)
	res, err := RunAdaptive(b, 1, Precision{TargetRelErr: 0.01, MinRuns: 8, MaxRuns: 512}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.RunsUsed != 8 || res.Rounds != 1 {
		t.Errorf("quiet point did not stop after round 1: %+v", res)
	}
	if math.IsNaN(res.Estimate) || math.IsNaN(res.CI95) {
		t.Errorf("degenerate stop produced NaN: %+v", res)
	}
}

// TestRunAdaptiveBudgetIsDemandDriven is the economic argument: at one
// shared precision target, the spend per point follows that point's
// relative sampling noise instead of one global knob. A hostile MTBF
// concentrates waste (large mean, failures every run) and converges in
// the first rounds, while a healthy MTBF's tiny waste — dominated by
// rare single-failure outliers — needs an order of magnitude more runs
// to pin down to the same relative precision.
func TestRunAdaptiveBudgetIsDemandDriven(t *testing.T) {
	spec := Precision{TargetRelErr: 0.08, MinRuns: 8, MaxRuns: 1024}
	large, err := RunAdaptive(compileBackend(t, Fast{}, 600), 7, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	small, err := RunAdaptive(compileBackend(t, Fast{}, 86400), 7, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !large.Converged || !small.Converged {
		t.Fatalf("both points should converge within 1024 runs: %+v, %+v", large, small)
	}
	if small.RunsUsed <= 4*large.RunsUsed {
		t.Errorf("relative-noise spread not reflected in budgets: %d vs %d runs",
			large.RunsUsed, small.RunsUsed)
	}
	for _, res := range []AdaptiveResult{large, small} {
		if res.RelErr() > spec.TargetRelErr {
			t.Errorf("converged point missed the target: rel err %v > %v", res.RelErr(), spec.TargetRelErr)
		}
	}
}

// TestRunAdaptiveControlVariateTightensCI checks the variance
// reduction pays: on a failure-rich point the regression-adjusted CI
// is strictly tighter than the raw CI at the same sample, so the
// stopper needs fewer runs than a raw-CI stopper would.
func TestRunAdaptiveControlVariateTightensCI(t *testing.T) {
	b := compileBackend(t, Fast{}, 600)
	res, err := RunAdaptive(b, 3, Precision{TargetRelErr: 0.05, MinRuns: 32, MaxRuns: 2048}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Controlled.N() == 0 {
		t.Fatal("no completed runs fed the control accumulator")
	}
	raw := res.Agg.Waste.CI95()
	if res.CI95 >= raw {
		t.Errorf("variance-reduced CI %v not below raw CI %v (ESS %.1f at n=%d)",
			res.CI95, raw, res.Controlled.ESS(), res.Controlled.N())
	}
	if math.Abs(res.Estimate-res.Agg.Waste.Mean()) > 3*raw {
		t.Errorf("adjusted estimate %v implausibly far from raw mean %v",
			res.Estimate, res.Agg.Waste.Mean())
	}
}

// TestRunAdaptiveSpecValidation pins the spec gate.
func TestRunAdaptiveSpecValidation(t *testing.T) {
	b := compileBackend(t, Fast{}, 3600)
	for _, spec := range []Precision{
		{TargetRelErr: 0},
		{TargetRelErr: -0.1},
		{TargetRelErr: 1},
		{TargetRelErr: math.NaN()},
		{TargetRelErr: 0.05, MinRuns: 64, MaxRuns: 8},
		// Both odd and equal: the pair-rounded first round (8) cannot
		// fit the rounded-down cap (6) — an error, never a silent
		// budget overrun past the requested 7.
		{TargetRelErr: 0.05, MinRuns: 7, MaxRuns: 7},
	} {
		if _, err := RunAdaptive(b, 1, spec, 1); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

// fatalBatch is a synthetic backend whose runs can be forced fatal,
// for exercising the degenerate adaptive paths real points only hit
// probabilistically.
type fatalBatch struct {
	req Request
	// completeSeed, when non-zero, is the one seed whose runs complete.
	completeSeed uint64
}

func (b fatalBatch) Request() Request { return b.req }
func (b fatalBatch) Model() Model     { return Model{Waste: 0.2, Loss: 1} }
func (b fatalBatch) NewRunner() Runner {
	return fatalRunner{b: b}
}

type fatalRunner struct{ b fatalBatch }

func (r fatalRunner) Run(seed uint64) (sim.Result, error) {
	return r.RunAntithetic(seed, false)
}

func (r fatalRunner) RunAntithetic(seed uint64, _ bool) (sim.Result, error) {
	if r.b.completeSeed != 0 && seed == r.b.completeSeed {
		return sim.Result{Completed: true, Waste: 0.25, Failures: 3}, nil
	}
	return sim.Result{Fatal: true, Failures: 2}, nil
}

// TestRunAdaptiveFatalHeavyNeverFakesConvergence pins the degenerate
// guard: with zero or one pair observations, the undefined variance
// reads as CI 0, which must not pass for precision — the point runs to
// MaxRuns unconverged instead of reporting a perfect-precision
// estimate backed by nothing.
func TestRunAdaptiveFatalHeavyNeverFakesConvergence(t *testing.T) {
	req := baseRequest()
	spec := Precision{TargetRelErr: 0.05, MinRuns: 8, MaxRuns: 64}

	allFatal, err := RunAdaptive(fatalBatch{req: req}, 100, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if allFatal.Converged || allFatal.RunsUsed != 64 {
		t.Errorf("all-fatal point claimed convergence: %+v", allFatal)
	}
	if allFatal.PairWaste.N() != 0 || allFatal.CI95 != 0 || allFatal.Estimate != 0 {
		t.Errorf("all-fatal point fabricated an estimate: %+v", allFatal)
	}

	// Exactly one pair (seed 100 = pair 0) completes: a single
	// observation is still no basis for a CI.
	onePair, err := RunAdaptive(fatalBatch{req: req, completeSeed: 100}, 100, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if onePair.Converged || onePair.RunsUsed != 64 {
		t.Errorf("single-observation point claimed convergence: %+v", onePair)
	}
	if onePair.PairWaste.N() != 1 || onePair.Estimate != 0.25 {
		t.Errorf("single-observation accounting off: %+v", onePair)
	}
}

// TestRunAdaptiveOddMaxRunsNeverExceeded pins the pair normalization
// direction: an odd cap rounds DOWN, so the executed (and echoed)
// budget never exceeds what the request allowed.
func TestRunAdaptiveOddMaxRunsNeverExceeded(t *testing.T) {
	spec := Precision{TargetRelErr: 0.05, MinRuns: 8, MaxRuns: 15}
	res, err := RunAdaptive(fatalBatch{req: baseRequest()}, 9, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.RunsUsed != 14 {
		t.Errorf("odd cap 15 should exhaust at 14 runs unconverged: %+v", res)
	}
}
