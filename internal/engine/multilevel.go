package engine

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/multilevel"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Multilevel is the two-level backend: the fast kernel simulates the
// in-memory buddy level, and the global stable-storage level of
// internal/multilevel is composed on top per run. A fatal buddy-group
// failure no longer kills the application: the execution rolls back to
// the last global checkpoint (losing the work since it, plus the
// reload D+Rg) and resumes — the Monte-Carlo counterpart of the
// analytic composition in multilevel.Waste.
//
// Per run, the composition is first-order in the same sense as the
// model: global dumps are charged by work progress (one blocking dump
// of G per K inner periods' worth of work) rather than woven into the
// inner timeline, so the inner failure sample is exactly the fast
// engine's. Results never carry Fatal=true — that is the point of the
// global level; a deployment that cannot finish inside the horizon
// reports Completed=false instead.
type Multilevel struct{}

// Name returns "multilevel".
func (Multilevel) Name() string { return "multilevel" }

// Resolve validates the global level and fills the missing plan
// dimensions: a zero period and/or zero interval K are optimized by
// the analytic planner (multilevel.Optimize and its fixed-axis
// variants). No feasible plan — the MTBF is too small for any (P, k) —
// is reported infeasible.
func (Multilevel) Resolve(req Request) (Request, error) {
	if !req.Correlation.IID() {
		return req, fmt.Errorf("engine: correlation is not supported by the multilevel backend (use fast or detailed)")
	}
	if req.Trace != nil || req.TraceID != "" {
		return req, fmt.Errorf("engine: trace replay requires the detailed backend")
	}
	mc, err := req.multilevelConfig()
	if err != nil {
		return req, err
	}
	cfg := req.simConfig()
	if err := cfg.Validate(); err != nil {
		return req, err
	}
	g := *req.Global
	switch {
	case req.Period != 0 && g.K > 0:
		w, werr := multilevel.Waste(mc, req.Period, g.K)
		if werr != nil {
			return req, infeasible(werr)
		}
		if w >= 1 {
			return req, infeasible(fmt.Errorf("multilevel: waste saturates at period %v, k %d", req.Period, g.K))
		}
	case g.K > 0:
		plan, perr := multilevel.OptimizeForK(mc, g.K)
		if perr != nil {
			return req, infeasible(perr)
		}
		req.Period = plan.Period
	case req.Period != 0:
		plan, perr := multilevel.OptimizeInterval(mc, req.Period)
		if perr != nil {
			return req, infeasible(perr)
		}
		g.K = plan.K
	default:
		plan, perr := multilevel.Optimize(mc)
		if perr != nil {
			return req, infeasible(perr)
		}
		req.Period, g.K = plan.Period, plan.K
	}
	req.Global = &g
	// The inner kernel must be able to simulate the resolved period.
	if _, err := core.PeriodPhases(req.Protocol, req.Params, req.Phi, req.Period); err != nil {
		return req, infeasible(err)
	}
	return req, nil
}

// Validate checks the global level's standalone domain: the dump must
// cost positive time, the reload and interval must be non-negative.
// The protocol/platform context is validated per point by Resolve; this
// part is point-independent, so sweep engines gate it before expanding
// a grid (a bad g fails the request up front instead of aborting a
// half-streamed sweep).
func (g *Global) Validate() error {
	if g == nil || !(g.G > 0) {
		return errors.New("engine: multilevel backend needs a global level with g > 0")
	}
	if g.Rg < 0 || math.IsNaN(g.Rg) {
		return fmt.Errorf("engine: global recovery rg = %v", g.Rg)
	}
	if g.K < 0 {
		return fmt.Errorf("engine: global interval k = %d", g.K)
	}
	return nil
}

// multilevelConfig validates the request's global level.
func (r Request) multilevelConfig() (multilevel.Config, error) {
	if err := r.Global.Validate(); err != nil {
		return multilevel.Config{}, err
	}
	mc := multilevel.Config{
		Protocol: r.Protocol,
		Params:   r.Params,
		Phi:      r.Phi,
		G:        r.Global.G,
		Rg:       r.Global.Rg,
	}
	if err := mc.Validate(); err != nil {
		return multilevel.Config{}, err
	}
	return mc, nil
}

// Compile resolves any missing plan dimension, compiles the inner fast
// batch at the resolved period, and precomputes the composition
// constants.
func (Multilevel) Compile(req Request) (Batch, error) {
	if req.Period == 0 || req.Global == nil || req.Global.K == 0 {
		var err error
		if req, err = (Multilevel{}).Resolve(req); err != nil {
			return nil, err
		}
	}
	mc, err := req.multilevelConfig()
	if err != nil {
		return nil, err
	}
	inner, err := sim.Compile(req.simConfig())
	if err != nil {
		return nil, err
	}
	w, err := multilevel.Waste(mc, req.Period, req.Global.K)
	if err != nil {
		return nil, err
	}
	horizon := req.MaxSimTime
	if horizon == 0 {
		horizon = 1000 * req.Tbase
	}
	globalWork := float64(req.Global.K) * inner.PeriodWork()
	if globalWork <= 0 {
		return nil, fmt.Errorf("engine: multilevel plan preserves no work per interval (k=%d)", req.Global.K)
	}
	return &mlBatch{
		req:   req,
		inner: inner,
		mc:    mc,
		model: Model{
			Waste: w,
			// The per-failure loss is the inner protocol's F: ordinary
			// (non-fatal) failures are handled entirely by the buddy
			// level.
			Loss: core.FailureLoss(req.Protocol, req.Params, req.Phi, req.Period),
		},
		globalWork: globalWork,
		horizon:    horizon,
	}, nil
}

type mlBatch struct {
	req        Request
	inner      *sim.Batch
	mc         multilevel.Config
	model      Model
	globalWork float64 // work preserved per global interval: K × period work
	horizon    float64 // total-time bound across rollbacks
}

func (b *mlBatch) Request() Request { return b.req }
func (b *mlBatch) Model() Model     { return b.model }
func (b *mlBatch) NewRunner() Runner {
	return &mlRunner{b: b, inner: b.inner.NewRunner()}
}

type mlRunner struct {
	b     *mlBatch
	inner *sim.Runner
	str   rng.Stream
}

// Run simulates one two-level execution: fast-kernel attempts at the
// remaining work, resumed from the last global checkpoint after each
// fatal in-memory failure. Attempt seeds are drawn from a stream
// seeded by the run seed, so equal seeds give identical executions and
// the chunked aggregation stays worker-count independent.
func (r *mlRunner) Run(seed uint64) (sim.Result, error) {
	return r.RunAntithetic(seed, false)
}

// RunAntithetic is Run with the reflected-uniform failure sample: the
// attempt-seed stream is untouched (seeds are raw Uint64 draws, which
// reflection never alters), so a reflected two-level run resumes the
// exact same attempt schedule as its plain mirror while every inner
// attempt draws the mirrored failure sample through
// Runner.RunWorkAntithetic — the composition of the RunWork resumption
// with antithetic pairing.
func (r *mlRunner) RunAntithetic(seed uint64, antithetic bool) (sim.Result, error) {
	b := r.b
	r.str.Reseed(seed)
	remaining := b.req.Tbase
	var out sim.Result
	out.Period = b.req.Period
	var t, work float64
	for {
		res := r.inner.RunWorkAntithetic(r.str.Uint64(), remaining, antithetic)
		out.Failures += res.Failures
		out.FailuresInRisk += res.FailuresInRisk
		out.RiskTime += res.RiskTime
		out.ImportanceFatalProb += res.ImportanceFatalProb
		if !res.Fatal {
			// Completed (or saturated inside the attempt's own horizon).
			t += res.Makespan + b.mc.G*math.Floor(res.WorkDone/b.globalWork)
			work += res.WorkDone
			out.Completed = res.Completed
			break
		}
		// Fatal buddy-group failure: roll back to the last global
		// checkpoint. Work preserved = whole global intervals dumped
		// before the fatality; time paid = the attempt up to the
		// fatality, its dumps, and the global reload.
		dumps := math.Floor(res.WorkDone / b.globalWork)
		t += res.FatalTime + b.mc.G*dumps + b.mc.Params.D + b.mc.Rg
		work += dumps * b.globalWork
		remaining -= dumps * b.globalWork
		if t >= b.horizon {
			break // the deployment never finishes inside the horizon
		}
	}
	out.Makespan = t
	out.WorkDone = work
	if t > 0 {
		out.Waste = 1 - work/t
	}
	out.LostTime = t - (b.inner.FaultFreeMakespan(work) + b.mc.G*math.Floor(work/b.globalWork))
	return out, nil
}
