package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/jobs"
)

// adaptiveSweepBody is the fixed grid of sweepBody under adaptive
// precision: the per-point budget becomes demand-driven between the
// 8-run first round and the 64-run cap.
const adaptiveSweepBody = `{
	"scenario": {"name": "Base"},
	"protocols": ["DoubleNBL", "Triple"],
	"phiFracs": [0.25, 0.75],
	"mtbfs": [3600, 7200],
	"tbase": 20000,
	"runs": 8,
	"targetRelErr": 0.1,
	"maxRuns": 64,
	"seed": 42
}`

// TestSweepAdaptive runs the acceptance sweep under a precision
// target: every feasible item echoes the budget it consumed and the
// achieved CI, repeated requests are byte-identical and cache-served,
// and the spend varies across the grid instead of being one knob.
func TestSweepAdaptive(t *testing.T) {
	svc, ts := newTestServer(t)
	first := post(t, ts.URL+"/v1/sweep", adaptiveSweepBody, nil)
	firstBody := readBody(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", first.StatusCode, firstBody)
	}
	var out sweepResponse
	if err := json.Unmarshal(firstBody, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 8 {
		t.Fatalf("got %d items, want 8", len(out.Items))
	}
	budgets := map[int]bool{}
	for _, item := range out.Items {
		if !item.Feasible {
			t.Fatalf("unexpected infeasible item: %+v", item)
		}
		if item.RunsUsed < 8 || item.RunsUsed > 64 {
			t.Errorf("runsUsed %d outside [8, 64]: %+v", item.RunsUsed, item)
		}
		if item.CI95 <= 0 || item.CI95 != item.SimCI {
			t.Errorf("ci95 echo %v should be the positive stopping CI (simCI %v)", item.CI95, item.SimCI)
		}
		if item.Runs != 8 {
			t.Errorf("runs echo %d, want the 8-run first round", item.Runs)
		}
		budgets[item.RunsUsed] = true
	}
	if len(budgets) < 2 {
		t.Errorf("every point consumed the same budget %v; expected demand-driven spread", budgets)
	}

	second := post(t, ts.URL+"/v1/sweep", adaptiveSweepBody, nil)
	secondBody := readBody(t, second)
	if !bytes.Equal(firstBody, secondBody) {
		t.Errorf("repeated adaptive sweep is not byte-identical")
	}
	if got, want := second.Header.Get(HeaderSweepHits), "8"; got != want {
		t.Errorf("second adaptive sweep cache hits = %s, want %s", got, want)
	}
	_ = svc
}

// TestSweepAdaptiveWorkerIndependence extends the determinism pin to
// the adaptive path: items — including runsUsed — are identical
// whatever the worker budget.
func TestSweepAdaptiveWorkerIndependence(t *testing.T) {
	var req SweepRequest
	if err := json.Unmarshal([]byte(adaptiveSweepBody), &req); err != nil {
		t.Fatal(err)
	}
	a, _, err := NewService(Options{Workers: 1}).Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NewService(Options{Workers: 8}).Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("adaptive sweep differs between 1 and 8 workers:\n%+v\n%+v", a, b)
	}
}

// TestSweepFixedWireFormatUnchanged pins the backward-compatibility
// guarantee: a fixed-budget request's response bytes carry no adaptive
// fields (the golden file saw to the exact bytes; this test makes the
// reason explicit), and an adaptive request for the same grid is keyed
// separately instead of poisoning the fixed entries.
func TestSweepFixedWireFormatUnchanged(t *testing.T) {
	svc, ts := newTestServer(t)
	fixed := readBody(t, post(t, ts.URL+"/v1/sweep", sweepBody, nil))
	for _, field := range []string{"runsUsed", "ci95", "targetRelErr", "maxRuns"} {
		if bytes.Contains(fixed, []byte(field)) {
			t.Errorf("fixed-budget response leaks adaptive field %q:\n%s", field, fixed)
		}
	}
	misses := svc.SimPoints()
	adaptive := readBody(t, post(t, ts.URL+"/v1/sweep", adaptiveSweepBody, nil))
	if svc.SimPoints() == misses {
		t.Error("adaptive sweep was served from fixed-budget cache entries")
	}
	if !bytes.Contains(adaptive, []byte("runsUsed")) {
		t.Errorf("adaptive response misses runsUsed: %s", adaptive)
	}
	// The fixed grid still replays from cache, byte-identical.
	again := readBody(t, post(t, ts.URL+"/v1/sweep", sweepBody, nil))
	if !bytes.Equal(fixed, again) {
		t.Error("fixed sweep changed after an adaptive sweep of the same grid")
	}
}

// TestSweepAdaptiveValidation pins the request gate.
func TestSweepAdaptiveValidation(t *testing.T) {
	svc := NewService(Options{MaxRuns: 128})
	base := func() SweepRequest {
		var req SweepRequest
		if err := json.Unmarshal([]byte(adaptiveSweepBody), &req); err != nil {
			t.Fatal(err)
		}
		req.MaxRuns = 0
		req.TargetRelErr = 0
		return req
	}
	cases := []struct {
		name string
		mut  func(*SweepRequest)
	}{
		{"negative targetRelErr", func(r *SweepRequest) { r.TargetRelErr = -0.1 }},
		{"targetRelErr = 1", func(r *SweepRequest) { r.TargetRelErr = 1 }},
		{"maxRuns without targetRelErr", func(r *SweepRequest) { r.MaxRuns = 64 }},
		{"maxRuns below runs", func(r *SweepRequest) { r.TargetRelErr = 0.1; r.MaxRuns = 4 }},
		{"maxRuns above service cap", func(r *SweepRequest) { r.TargetRelErr = 0.1; r.MaxRuns = 1 << 20 }},
		{"odd maxRuns equal to odd runs", func(r *SweepRequest) { r.TargetRelErr = 0.1; r.Runs = 7; r.MaxRuns = 7 }},
	}
	for _, tc := range cases {
		req := base()
		tc.mut(&req)
		if _, _, err := svc.Sweep(context.Background(), req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestAdaptiveJobDedupeDefaultMaxRuns pins the canonicalization of the
// adaptive budget: omitting maxRuns and spelling out the service
// default are one content key, one job.
func TestAdaptiveJobDedupeDefaultMaxRuns(t *testing.T) {
	svc := NewService(Options{}) // service MaxRuns default: 256
	implicit := strings.Replace(adaptiveSweepBody, `"maxRuns": 64,`, ``, 1)
	explicit := strings.Replace(adaptiveSweepBody, `"maxRuns": 64,`, `"maxRuns": 256,`, 1)
	a, _, err := svc.NormalizeJobRequest([]byte(implicit))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := svc.NormalizeJobRequest([]byte(explicit))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("default-budget spellings canonicalize differently:\n%s\n%s", a, b)
	}
	c, _, err := svc.NormalizeJobRequest([]byte(adaptiveSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("explicit non-default budget collapsed onto the default key")
	}
}

// TestAdaptiveJobResumeBitwise is the PR acceptance check for durable
// adaptive jobs: a server killed mid-sweep with a torn tail resumes
// the adaptive job on a fresh process and produces a results file
// byte-identical to an uninterrupted run — the round schedule and
// stopping rule replay exactly from the content-keyed seeds.
func TestAdaptiveJobResumeBitwise(t *testing.T) {
	refSvc := NewService(Options{})
	refMgr := newJobsManager(t, refSvc, t.TempDir(), 1)
	refMeta, created, err := refMgr.Submit([]byte(adaptiveSweepBody))
	if err != nil || !created {
		t.Fatalf("submit: %v (created %v)", err, created)
	}
	if _, err := refMgr.Wait(testCtx(t), refMeta.ID); err != nil {
		t.Fatal(err)
	}
	refStore, err := jobs.NewStore(refMgr.Store().Dir())
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refStore.ResultsPath(refMeta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(want, []byte("\n")); lines != 8 {
		t.Fatalf("reference run has %d lines, want 8", lines)
	}

	dir := t.TempDir()
	store, err := jobs.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	freshSvc := NewService(Options{})
	canonical, total, err := freshSvc.NormalizeJobRequest([]byte(adaptiveSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	id := jobs.IDFor(canonical)
	if id != refMeta.ID {
		t.Fatalf("content key differs across services: %s vs %s", id, refMeta.ID)
	}
	killed := jobs.Meta{ID: id, State: jobs.Running, Total: total, Completed: 2, CreatedAt: 1}
	if err := store.Create(killed, canonical); err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(want, []byte("\n"))
	torn := bytes.Join(lines[:3], nil)
	torn = append(torn, lines[3][:10]...)
	if err := os.WriteFile(store.ResultsPath(id), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	mgr := newJobsManager(t, freshSvc, dir, 1)
	final, err := mgr.Wait(testCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.Done || final.Completed != 8 {
		t.Fatalf("resumed adaptive job status %+v", final)
	}
	got, err := os.ReadFile(store.ResultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed adaptive results are not byte-identical:\n%s\nwant:\n%s", got, want)
	}
}
