package api

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/jobs"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// testTrace records a short merged-exponential history suitable for
// replay on a 96-node detailed platform.
func testTrace(nodes int, mtbf, horizon float64) *failure.Trace {
	gen := failure.NewMerged(nodes, mtbf, rng.New(99))
	return failure.Collect(gen, nodes, mtbf, "exponential", horizon)
}

// corrSweepRequest is a small fast+detailed grid with room for the
// correlation axes: 96 nodes divides both domain sizes and buddy
// groups.
func corrSweepRequest() SweepRequest {
	n := 96
	req := SweepRequest{
		Backends:  []string{"fast", "detailed"},
		Protocols: []string{"DoubleNBL"},
		PhiFracs:  []float64{0.5},
		MTBFs:     []float64{3600},
		Tbase:     10000,
		Runs:      2,
		Seed:      7,
	}
	req.Scenario.N = &n
	return req
}

// TestSweepKeyInvarianceWithoutCorrelation pins the wire/cache
// compatibility contract of the new axes: a request that leaves
// domains, groups and trace unset produces exactly the historical
// point keys — no new key tokens anywhere — while setting any of the
// three changes every affected key. Historical keys are what the
// derived per-point seeds, the golden bodies and the fabric's point
// partitioning hang off.
func TestSweepKeyInvarianceWithoutCorrelation(t *testing.T) {
	svc := NewService(Options{})
	base := corrSweepRequest()
	keys, err := svc.PointKeys(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		for _, token := range []string{"|dom=", "|groups=", "|trace="} {
			if strings.Contains(key, token) {
				t.Errorf("default key %q contains new token %q", key, token)
			}
		}
	}

	domains := corrSweepRequest()
	domains.Scenario.Domains = &scenario.DomainsSpec{Size: 4, BurstRate: 1e-5}
	domKeys, err := svc.PointKeys(domains)
	if err != nil {
		t.Fatal(err)
	}
	groups := corrSweepRequest()
	groups.Scenario.Groups = []float64{2, 1}
	grpKeys, err := svc.PointKeys(groups)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if domKeys[i] == keys[i] {
			t.Errorf("domains axis left key %d unchanged: %q", i, keys[i])
		}
		if !strings.Contains(domKeys[i], "|dom=") {
			t.Errorf("domains key %q missing |dom= token", domKeys[i])
		}
		if grpKeys[i] == keys[i] {
			t.Errorf("groups axis left key %d unchanged: %q", i, keys[i])
		}
		if !strings.Contains(grpKeys[i], "|groups=") {
			t.Errorf("groups key %q missing |groups= token", grpKeys[i])
		}
	}

	// Placement is part of the physical point: block and stripe domains
	// at equal size and rate must not share a key (or a seed).
	stripe := corrSweepRequest()
	stripe.Scenario.Domains = &scenario.DomainsSpec{Size: 4, BurstRate: 1e-5, Placement: "stripe"}
	stripeKeys, err := svc.PointKeys(stripe)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(domKeys, stripeKeys) {
		t.Error("block and stripe placements share point keys")
	}
}

// TestSweepCorrelatedDeterminism runs the correlated axes end to end
// through the sweep engine: the grid evaluates on both supporting
// backends, every point simulates, and two fresh services produce
// identical items (the correlated paths inherit the content-keyed
// seeding).
func TestSweepCorrelatedDeterminism(t *testing.T) {
	req := corrSweepRequest()
	req.Scenario.Domains = &scenario.DomainsSpec{Size: 4, BurstRate: 1e-4, Placement: "stripe"}
	req.Scenario.Groups = []float64{3, 1}

	a, statsA, err := NewService(Options{}).Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NewService(Options{Workers: 8}).Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("correlated sweep differs across services:\n%+v\n%+v", a, b)
	}
	if len(a) != 2 || statsA.CacheMisses != 2 {
		t.Fatalf("got %d items, stats %+v, want 2 simulated points", len(a), statsA)
	}
	for _, item := range a {
		if !item.Feasible {
			t.Errorf("correlated point infeasible: %+v", item)
		}
	}

	// A domain size that does not divide N is a layout problem, not a
	// request error: the grid degrades per point.
	bad := corrSweepRequest()
	bad.Scenario.Domains = &scenario.DomainsSpec{Size: 5, BurstRate: 1e-4}
	items, _, err := NewService(Options{}).Sweep(context.Background(), bad)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range items {
		if item.Feasible {
			t.Errorf("non-dividing domain size produced a feasible point: %+v", item)
		}
	}
}

// TestSweepCorrelationGating pins the request-level gates: a value
// error in the spec, a multilevel backend in a correlated grid, and a
// trace on a non-detailed backend all fail the request up front.
func TestSweepCorrelationGating(t *testing.T) {
	svc := NewService(Options{})

	bad := corrSweepRequest()
	bad.Scenario.Domains = &scenario.DomainsSpec{Size: 4, BurstRate: -1}
	if _, _, err := svc.Sweep(context.Background(), bad); err == nil {
		t.Error("negative burst rate accepted")
	}
	bad = corrSweepRequest()
	bad.Scenario.Domains = &scenario.DomainsSpec{Size: 4, BurstRate: 1e-5, Placement: "ring"}
	if _, _, err := svc.Sweep(context.Background(), bad); err == nil {
		t.Error("unknown placement accepted")
	}

	ml := corrSweepRequest()
	ml.Backends = []string{"fast", "multilevel"}
	ml.Scenario.Global = &scenario.GlobalSpec{G: 200, Rg: 100}
	ml.Scenario.Groups = []float64{2, 1}
	if _, _, err := svc.Sweep(context.Background(), ml); err == nil {
		t.Error("correlated grid with a multilevel backend accepted")
	}

	if _, err := svc.RegisterTrace("small", testTrace(96, 3600, 1e6)); err != nil {
		t.Fatal(err)
	}
	tr := corrSweepRequest()
	tr.Scenario.Trace = "small"
	if _, _, err := svc.Sweep(context.Background(), tr); err == nil {
		t.Error("trace replay on the fast backend accepted")
	}
	tr.Backends = []string{"detailed"}
	tr.Scenario.Trace = "missing"
	if _, _, err := svc.Sweep(context.Background(), tr); err == nil {
		t.Error("unknown trace name accepted")
	}
	mismatch := corrSweepRequest()
	mismatch.Backends = []string{"detailed"}
	n := 48
	mismatch.Scenario.N = &n
	mismatch.Scenario.Trace = "small"
	if _, _, err := svc.Sweep(context.Background(), mismatch); err == nil {
		t.Error("trace/platform node-count mismatch accepted")
	}
}

// TestSweepTraceReplayDeterministicResume is the tentpole acceptance
// check for the trace axis: a recorded trace replayed through the
// sweep engine is deterministic across fresh services (both register
// the same log, so they derive the same content id, keys and seeds),
// and a resume from any offset — the durable-jobs and fabric path —
// reproduces the exact item suffix.
func TestSweepTraceReplayDeterministicResume(t *testing.T) {
	tr := testTrace(96, 3600, 1e7)
	req := corrSweepRequest()
	req.Backends = []string{"detailed"}
	req.Protocols = []string{"DoubleNBL", "Triple"}
	req.Scenario.Trace = "cronos"

	run := func(svc *Service) []SweepItem {
		t.Helper()
		if _, err := svc.RegisterTrace("cronos", tr); err != nil {
			t.Fatal(err)
		}
		items, _, err := svc.Sweep(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return items
	}
	a := run(NewService(Options{}))
	b := run(NewService(Options{Workers: 8}))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("trace sweep differs across services:\n%+v\n%+v", a, b)
	}
	if len(a) != 2 {
		t.Fatalf("got %d items, want 2", len(a))
	}
	for _, item := range a {
		if !item.Feasible || item.SimWaste <= 0 {
			t.Errorf("replayed point did not simulate: %+v", item)
		}
	}

	// Resume from offset 1 on a fresh, cold service: the emitted suffix
	// must be bitwise the tail of the full run.
	resumed := NewService(Options{})
	if _, err := resumed.RegisterTrace("cronos", tr); err != nil {
		t.Fatal(err)
	}
	var suffix []SweepItem
	_, err := resumed.SweepStreamFrom(context.Background(), req, 1, jobs.Interactive, nil,
		func(item SweepItem) error {
			suffix = append(suffix, item)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(suffix, a[1:]) {
		t.Errorf("resumed suffix differs from the full run:\n%+v\n%+v", suffix, a[1:])
	}
}

// TestRegisterTraceContentAddressed pins the aliasing defence:
// re-binding a name to a different log changes the content id and
// therefore every point key, so stale cache entries can never serve
// the new trace.
func TestRegisterTraceContentAddressed(t *testing.T) {
	svc := NewService(Options{})
	req := corrSweepRequest()
	req.Backends = []string{"detailed"}
	req.Scenario.Trace = "cronos"

	id1, err := svc.RegisterTrace("cronos", testTrace(96, 3600, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	keys1, err := svc.PointKeys(req)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := svc.RegisterTrace("cronos", testTrace(96, 7200, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatalf("different logs share the content id %q", id1)
	}
	keys2, err := svc.PointKeys(req)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(keys1, keys2) {
		t.Error("re-registered trace left the point keys unchanged")
	}
	for _, key := range keys1 {
		if !strings.Contains(key, "|trace="+id1) {
			t.Errorf("key %q missing trace id %q", key, id1)
		}
	}

	// An invalid trace never enters the registry.
	if _, err := svc.RegisterTrace("bad", &failure.Trace{Nodes: 0}); err == nil {
		t.Error("invalid trace registered")
	}
	if _, err := svc.RegisterTrace("", testTrace(96, 3600, 1e6)); err == nil {
		t.Error("empty trace name registered")
	}
	ids := svc.TraceIDs()
	if len(ids) != 1 || ids[0] != id2 {
		t.Errorf("TraceIDs = %v, want just %q", ids, id2)
	}
}
