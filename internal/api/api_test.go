package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// -update regenerates the golden response files.
var update = flag.Bool("update", false, "rewrite testdata golden files")

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(Options{})
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	return svc, ts
}

// post sends a JSON request and returns the response.
func post(t *testing.T, url, body string, header http.Header) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkGolden compares got against testdata/<name>, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/api -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// The golden requests pin down the full JSON wire format of each
// endpoint for one representative point: Base scenario at M = 2 h,
// φ/R = 0.25.
const goldenScenario = `"scenario": {"name": "Base", "mtbf": 7200}`

func TestGoldenWaste(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{` + goldenScenario + `, "protocol": "DoubleNBL", "phiFrac": 0.25, "tbase": 100000}`
	resp := post(t, ts.URL+"/v1/waste", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	checkGolden(t, "waste.golden.json", readBody(t, resp))
}

func TestGoldenOptimum(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{` + goldenScenario + `, "protocol": "Triple", "phiFrac": 0.25}`
	resp := post(t, ts.URL+"/v1/optimum", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	checkGolden(t, "optimum.golden.json", readBody(t, resp))
}

func TestGoldenRisk(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{` + goldenScenario + `, "protocol": "DoubleBoF", "phiFrac": 0.25, "life": 86400}`
	resp := post(t, ts.URL+"/v1/risk", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	checkGolden(t, "risk.golden.json", readBody(t, resp))
}

func TestGoldenSweep(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/v1/sweep", sweepBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	checkGolden(t, "sweep.golden.json", readBody(t, resp))
}

func TestWasteMatchesModel(t *testing.T) {
	svc := NewService(Options{})
	resp, err := svc.Waste(PointRequest{
		Scenario: specBase(7200),
		Protocol: "DoubleNBL",
		PhiFrac:  0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Feasible {
		t.Fatal("Base at 2h MTBF must be feasible")
	}
	if resp.Waste <= 0 || resp.Waste >= 1 {
		t.Errorf("waste = %v, want in (0, 1)", resp.Waste)
	}
	if resp.Phases.Ckpt1 != 2 {
		t.Errorf("double protocol Ckpt1 = %v, want δ = 2", resp.Phases.Ckpt1)
	}
	total := resp.Phases.Ckpt1 + resp.Phases.Ckpt2 + resp.Phases.Compute
	if diff := math.Abs(total - resp.Period); diff > 1e-9 {
		t.Errorf("phases sum to %v, period is %v", total, resp.Period)
	}
}

func TestOptimumClosedFormAgreesWithNumeric(t *testing.T) {
	svc := NewService(Options{})
	for _, protocol := range []string{"DoubleBlocking", "DoubleNBL", "DoubleBoF", "Triple", "TripleBoF"} {
		resp, err := svc.Optimum(PointRequest{
			Scenario: specBase(7200),
			Protocol: protocol,
			PhiFrac:  0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The closed form is a first-order approximation; the paper's
		// own cross-check tolerates percent-level gaps.
		if resp.PeriodGap > 0.05 {
			t.Errorf("%s: closed form %v vs numeric %v (gap %v)",
				protocol, resp.Period, resp.NumericPeriod, resp.PeriodGap)
		}
		if resp.NumericWaste > resp.Waste+1e-9 {
			t.Errorf("%s: numeric waste %v exceeds closed-form waste %v",
				protocol, resp.NumericWaste, resp.Waste)
		}
	}
}

func TestRiskTripleBeatsDouble(t *testing.T) {
	svc := NewService(Options{})
	get := func(protocol string) RiskResponse {
		resp, err := svc.Risk(PointRequest{
			Scenario: specBase(3600),
			Protocol: protocol,
			PhiFrac:  0.25,
			Life:     30 * 86400,
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	double, triple := get("DoubleNBL"), get("Triple")
	if triple.SuccessProb <= double.SuccessProb {
		t.Errorf("triple success %v must exceed double %v (the paper's §V.C conclusion)",
			triple.SuccessProb, double.SuccessProb)
	}
	if double.BaseSuccessProb >= double.SuccessProb {
		t.Errorf("no-checkpoint baseline %v must be worse than the protocol %v",
			double.BaseSuccessProb, double.SuccessProb)
	}
}

// TestRiskInfiniteRunsTolerated pins the zero-fatal-probability edge:
// the runs-tolerated count is infinite, which JSON cannot carry, so
// the field is omitted and the endpoint still answers 200 with a full
// body (not the empty 200 a failed Encode would produce).
func TestRiskInfiniteRunsTolerated(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/v1/risk",
		`{"protocol": "Triple", "phiFrac": 0.5, "life": 1}`, nil)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if len(body) == 0 {
		t.Fatal("empty body")
	}
	var r RiskResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if r.RunsTolerated != nil {
		t.Errorf("runsTolerated = %v, want omitted for zero fatal probability", *r.RunsTolerated)
	}
	if r.SuccessProb != 1 {
		t.Errorf("successProb = %v, want 1 over a 1s horizon", r.SuccessProb)
	}
}

func TestHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, path, body string
		method           string
		wantStatus       int
	}{
		{"bad protocol", "/v1/waste", `{"protocol": "Quadruple", "phiFrac": 0}`, http.MethodPost, http.StatusBadRequest},
		{"unknown field", "/v1/waste", `{"protocol": "DoubleNBL", "phiFrak": 0.5}`, http.MethodPost, http.StatusBadRequest},
		{"unknown nested scenario field", "/v1/waste", `{"scenario": {"mtfb": 1800}, "protocol": "DoubleNBL"}`, http.MethodPost, http.StatusBadRequest},
		{"bad scenario name", "/v1/risk", `{"scenario": {"name": "Peta"}, "protocol": "DoubleNBL", "life": 1}`, http.MethodPost, http.StatusBadRequest},
		{"risk needs horizon", "/v1/risk", `{"protocol": "DoubleNBL"}`, http.MethodPost, http.StatusBadRequest},
		{"phiFrac range", "/v1/optimum", `{"protocol": "DoubleNBL", "phiFrac": 1.5}`, http.MethodPost, http.StatusBadRequest},
		{"get not allowed", "/v1/sweep", ``, http.MethodGet, http.StatusMethodNotAllowed},
		{"grid too large", "/v1/sweep", `{"phiFracs": [0.1], "mtbfs": [` + bigMTBFList + `]}`, http.MethodPost, http.StatusBadRequest},
		{"runs cap", "/v1/sweep", `{"runs": 100000}`, http.MethodPost, http.StatusBadRequest},
		// Strict decoding: a typo'd backend selector must be a 400, not a
		// silently ignored default that sweeps the wrong engine.
		{"typo'd backend field", "/v1/sweep", `{"scenario": {"backned": "detailed"}, "runs": 2}`, http.MethodPost, http.StatusBadRequest},
		{"typo'd nested global field", "/v1/sweep", `{"scenario": {"backend": "multilevel", "global": {"gee": 200}}, "runs": 2}`, http.MethodPost, http.StatusBadRequest},
		{"unknown backend value", "/v1/sweep", `{"scenario": {"backend": "quantum"}, "runs": 2}`, http.MethodPost, http.StatusBadRequest},
		{"unknown backend axis value", "/v1/sweep", `{"backends": ["fast", "quantum"], "runs": 2}`, http.MethodPost, http.StatusBadRequest},
		{"unknown law", "/v1/sweep", `{"scenario": {"law": "gaussian", "shape": 1}, "runs": 2}`, http.MethodPost, http.StatusBadRequest},
		{"weibull without shape", "/v1/sweep", `{"scenario": {"law": "weibull"}, "runs": 2}`, http.MethodPost, http.StatusBadRequest},
		{"multilevel without global", "/v1/sweep", `{"scenario": {"backend": "multilevel"}, "runs": 2}`, http.MethodPost, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body := readBody(t, resp)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error body %q is not an {\"error\": ...} envelope", body)
			}
		})
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.Unmarshal(readBody(t, resp), &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK {
		t.Error("healthz not ok")
	}
}

// bigMTBFList expands to more grid points than the default 4096 limit.
var bigMTBFList = func() string {
	var b strings.Builder
	for i := 0; i < 1000; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("3600")
	}
	return b.String()
}()

// specBase returns a Base-scenario spec with the given MTBF override.
func specBase(mtbf float64) scenario.Spec {
	return scenario.Spec{Name: "Base", MTBF: &mtbf}
}

// TestSweepBackendKnobsGateUpFront pins the point-independent knob
// validation: a bad global level or substrate shape is a 400 before
// any grid work, like the protocol and law axes — never a mid-stream
// abort halfway through a multi-backend sweep.
func TestSweepBackendKnobsGateUpFront(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []string{
		`{"backends": ["fast", "multilevel"], "scenario": {"global": {"g": -5}}, "runs": 2}`,
		`{"scenario": {"backend": "multilevel", "global": {"g": 200, "rg": -1}}, "runs": 2}`,
		`{"scenario": {"backend": "multilevel", "global": {"g": 200, "k": -2}}, "runs": 2}`,
		`{"scenario": {"backend": "detailed", "n": 96, "spares": -3}, "runs": 2}`,
		`{"scenario": {"backend": "detailed", "n": 96, "imageBytes": -1}, "runs": 2}`,
	}
	for _, body := range cases {
		resp := post(t, ts.URL+"/v1/sweep", body, nil)
		got := readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", body, resp.StatusCode, got)
		}
	}
}
