package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/jobs"
)

// This file adapts the sweep engine to the durable job subsystem
// (internal/jobs) and mounts its HTTP surface:
//
//	POST   /v1/jobs              submit a sweep as a durable job
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         status + progress
//	GET    /v1/jobs/{id}/results NDJSON results (?offset=N resumes)
//	DELETE /v1/jobs/{id}         cancel (active) / delete (terminal)
//
// The job body is exactly the /v1/sweep request. DESIGN.md, "Job
// subsystem", documents the state machine and resume semantics.

// NormalizeJobRequest is the jobs.Normalizer of the sweep service: it
// strictly decodes a /v1/sweep request body, validates it by expanding
// the grid (filling the documented defaults in place), and returns the
// canonical request bytes — the job's content key — plus the grid
// size. Two submissions that decode to the same normalized request
// canonicalize identically and therefore dedupe to the same job id.
func (s *Service) NormalizeJobRequest(request []byte) ([]byte, int, error) {
	var req SweepRequest
	if err := decodeStrict(bytes.NewReader(request), &req); err != nil {
		return nil, 0, err
	}
	points, err := s.expand(&req) // validates and fills defaults
	if err != nil {
		return nil, 0, err
	}
	// Collapse the scenario's enum aliases onto their omitted-field
	// spellings (expand already validated them): "Base" is the default
	// scenario, "fast" the default backend (the axis it feeds is frozen
	// into req.Backends above), "exponential" the default law. Numeric
	// overrides spelled at their table values are NOT collapsed — that
	// equivalence would couple the key to the scenario tables.
	if req.Scenario.Name == "Base" {
		req.Scenario.Name = ""
	}
	if req.Scenario.Backend == "fast" {
		req.Scenario.Backend = ""
	}
	if req.Scenario.Law == "exponential" {
		req.Scenario.Law = ""
	}
	canonical, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	return canonical, len(points), nil
}

// JobExecutor is the jobs.Executor of the sweep service: it replays
// the canonical request through the same SweepStreamFrom engine the
// synchronous path uses — at Batch priority, from the durable offset —
// and encodes each item exactly like the streaming /v1/sweep response
// (compact JSON, one line per item). Identical request bytes therefore
// produce identical line bytes on every execution, which is what makes
// a resumed job's results file bitwise equal to an uninterrupted run.
func (s *Service) JobExecutor() jobs.Executor {
	return func(ctx context.Context, request []byte, offset int, start func(total int) error, emit func(line []byte) error) error {
		var req SweepRequest
		if err := decodeStrict(bytes.NewReader(request), &req); err != nil {
			return err
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		_, err := s.SweepStreamFrom(ctx, req, offset, jobs.Batch, start, func(item SweepItem) error {
			buf.Reset()
			if err := enc.Encode(item); err != nil {
				return err
			}
			return emit(buf.Bytes())
		})
		return err
	}
}

// jobListResponse is the GET /v1/jobs body.
type jobListResponse struct {
	Jobs []jobs.Meta `json:"jobs"`
}

// writeJobError maps job-subsystem errors onto HTTP statuses: unknown
// ids are 404s, persistence failures (disk full, permissions) are 500s
// so clients retry the submission instead of discarding it as invalid,
// a saturated queue is a 503 with a Retry-After (the request was fine;
// the node is shedding load), and everything else is a request error.
func writeJobError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, jobs.ErrStorage):
		status = http.StatusInternalServerError
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		status = http.StatusServiceUnavailable
	}
	writeError(w, status, err)
}

// jobsManager returns the attached manager, answering 503 with a
// Retry-After (the shape of queue shedding: the request is fine, the
// node cannot take it right now) when none is attached — jobs are
// disabled, or this is a standby whose promotion has not handed it a
// manager yet. Callers return immediately on nil.
func (s *Service) jobsManager(w http.ResponseWriter) *jobs.Manager {
	mgr := s.Jobs()
	if mgr == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			errors.New("api: no job manager attached (standby, or jobs disabled)"))
	}
	return mgr
}

func (s *Service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	mgr := s.jobsManager(w)
	if mgr == nil {
		return
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	meta, created, err := mgr.Submit(body.Bytes())
	if err != nil {
		writeJobError(w, err)
		return
	}
	if created {
		w.WriteHeader(http.StatusAccepted)
	}
	writeJSON(w, meta)
}

func (s *Service) handleJobList(w http.ResponseWriter, r *http.Request) {
	mgr := s.jobsManager(w)
	if mgr == nil {
		return
	}
	metas := mgr.List()
	if metas == nil {
		metas = []jobs.Meta{} // "jobs": [] rather than null
	}
	writeJSON(w, jobListResponse{Jobs: metas})
}

func (s *Service) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	mgr := s.jobsManager(w)
	if mgr == nil {
		return
	}
	meta, err := mgr.Get(r.PathValue("id"))
	if err != nil {
		writeJobError(w, err)
		return
	}
	writeJSON(w, meta)
}

// handleJobDelete cancels an active job; a terminal job is removed
// from the store instead. Either way the job's last status is the
// response.
func (s *Service) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	mgr := s.jobsManager(w)
	if mgr == nil {
		return
	}
	id := r.PathValue("id")
	meta, err := mgr.Get(id)
	if err != nil {
		writeJobError(w, err)
		return
	}
	if meta.State.Terminal() {
		if meta, err = mgr.Delete(id); err != nil {
			writeJobError(w, err)
			return
		}
	} else if meta, err = mgr.Cancel(id); err != nil {
		writeJobError(w, err)
		return
	}
	writeJSON(w, meta)
}

// handleJobResults streams the job's NDJSON results from line
// ?offset=N (default 0), following the file as checkpoints land until
// the job is terminal. A failed or cancelled job terminates the stream
// with an {"error": ...} record, so a truncated result set is always
// distinguishable from a complete one.
func (s *Service) handleJobResults(w http.ResponseWriter, r *http.Request) {
	mgr := s.jobsManager(w)
	if mgr == nil {
		return
	}
	id := r.PathValue("id")
	offset := 0
	if q := r.URL.Query().Get("offset"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("api: offset %q must be a non-negative integer", q))
			return
		}
		offset = n
	}
	if _, err := mgr.Get(id); err != nil {
		writeJobError(w, err)
		return
	}
	w.Header().Set("Content-Type", NDJSONContentType)
	flusher, _ := w.(http.Flusher)
	// Commit the status line before following: a job with no durable
	// lines yet would otherwise leave the client (and any proxy
	// response-header timeout) staring at zero bytes until the first
	// checkpoint lands.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	meta, err := mgr.StreamResults(r.Context(), id, offset, func(line []byte) error {
		if err := r.Context().Err(); err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// If the client is still connected (the job vanished mid-follow,
		// or the store failed), terminate the stream with an error
		// record instead of a silent truncation; a dead client gets
		// nothing either way.
		if r.Context().Err() == nil {
			json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}
	switch meta.State {
	case jobs.Failed:
		json.NewEncoder(w).Encode(errorResponse{Error: meta.Error})
	case jobs.Cancelled:
		json.NewEncoder(w).Encode(errorResponse{Error: "job cancelled"})
	}
	if flusher != nil {
		flusher.Flush()
	}
}
