package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// newJobsManager builds a durable job manager over dir wired to svc's
// execution engine, with a small checkpoint interval so tests exercise
// multiple chunks.
func newJobsManager(t *testing.T, svc *Service, dir string, maxConcurrent int) *jobs.Manager {
	t.Helper()
	mgr, err := jobs.NewManager(jobs.Config{
		Dir:             dir,
		MaxConcurrent:   maxConcurrent,
		CheckpointEvery: 2,
		Exec:            svc.JobExecutor(),
		Normalize:       svc.NormalizeJobRequest,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	return mgr
}

// newJobsServer is newTestServer plus an attached job manager.
func newJobsServer(t *testing.T, maxConcurrent int) (*Service, *jobs.Manager, *httptest.Server) {
	t.Helper()
	svc := NewService(Options{})
	mgr := newJobsManager(t, svc, t.TempDir(), maxConcurrent)
	svc.AttachJobs(mgr)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	return svc, mgr, ts
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// ndjsonSweep returns the exact NDJSON byte stream of a sweep request:
// the reference a job's results file must match.
func ndjsonSweep(t *testing.T, svc *Service, body string) []byte {
	t.Helper()
	var req SweepRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	items, _, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, item := range items {
		if err := enc.Encode(item); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestJobLifecycleHTTP drives the full /v1/jobs surface over HTTP:
// submit (202), status polling, NDJSON results identical to the
// synchronous sweep stream, resume offset, duplicate-submission
// dedupe (200, same id), and delete.
func TestJobLifecycleHTTP(t *testing.T) {
	svc, mgr, ts := newJobsServer(t, 1)

	resp := post(t, ts.URL+"/v1/jobs", sweepBody, nil)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var meta jobs.Meta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Total != 8 {
		t.Errorf("submitted job total = %d, want the 8-point grid", meta.Total)
	}

	final, err := mgr.Wait(testCtx(t), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.Done || final.Completed != 8 {
		t.Fatalf("final status %+v", final)
	}

	// Status over HTTP agrees.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got jobs.Meta
	if err := json.Unmarshal(readBody(t, resp), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.Done || got.Completed != 8 {
		t.Errorf("GET status %+v", got)
	}

	// Results are byte-identical to the synchronous NDJSON stream.
	want := ndjsonSweep(t, svc, sweepBody)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + meta.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != NDJSONContentType {
		t.Errorf("results content type %q", ct)
	}
	results := readBody(t, resp)
	if !bytes.Equal(results, want) {
		t.Errorf("job results differ from the sweep stream:\n%s\nwant:\n%s", results, want)
	}

	// Resume offset returns exactly the suffix.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + meta.ID + "/results?offset=6")
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(want, []byte("\n"))
	suffix := append(append([]byte{}, lines[6]...), lines[7]...)
	if tail := readBody(t, resp); !bytes.Equal(tail, suffix) {
		t.Errorf("offset=6 results:\n%s\nwant:\n%s", tail, suffix)
	}

	// Duplicate submission dedupes to the same (now done) job: 200, not
	// 202, and no new execution.
	simulated := svc.SimPoints()
	resp = post(t, ts.URL+"/v1/jobs", sweepBody, nil)
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit status %d: %s", resp.StatusCode, body)
	}
	var dup jobs.Meta
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != meta.ID || dup.State != jobs.Done {
		t.Errorf("duplicate submission got %+v, want the done job %s", dup, meta.ID)
	}
	if svc.SimPoints() != simulated {
		t.Errorf("duplicate submission re-simulated")
	}

	// List shows it; delete removes it.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list jobListResponse
	if err := json.Unmarshal(readBody(t, resp), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != meta.ID {
		t.Errorf("job list %+v", list)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+meta.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp, err = http.Get(ts.URL + "/v1/jobs/" + meta.ID); err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted job status code %d, want 404", resp.StatusCode)
	}
}

// TestJobResumeAfterRestartBitwise is the PR's acceptance test: a
// server killed mid-sweep — durable prefix, torn half-line tail, meta
// frozen at "running" — is restarted as a fresh process (new Service,
// empty caches), resumes the job from its last durable point, and the
// final results file is byte-identical to an uninterrupted run.
func TestJobResumeAfterRestartBitwise(t *testing.T) {
	// Uninterrupted reference run in its own store.
	refSvc := NewService(Options{})
	refMgr := newJobsManager(t, refSvc, t.TempDir(), 1)
	refMeta, created, err := refMgr.Submit([]byte(sweepBody))
	if err != nil || !created {
		t.Fatalf("submit: %v (created %v)", err, created)
	}
	if _, err := refMgr.Wait(testCtx(t), refMeta.ID); err != nil {
		t.Fatal(err)
	}
	refStore, err := jobs.NewStore(refMgr.Store().Dir())
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refStore.ResultsPath(refMeta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(want, []byte("\n")); lines != 8 {
		t.Fatalf("reference run has %d lines, want 8", lines)
	}

	// Fabricate the killed server's disk state: 3 durable lines plus a
	// torn tail of line 4, checkpoint marker mid-chunk.
	dir := t.TempDir()
	store, err := jobs.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	freshSvc := NewService(Options{}) // the "restarted process"
	canonical, total, err := freshSvc.NormalizeJobRequest([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	id := jobs.IDFor(canonical)
	if id != refMeta.ID {
		t.Fatalf("content key differs across services: %s vs %s", id, refMeta.ID)
	}
	killed := jobs.Meta{ID: id, State: jobs.Running, Total: total, Completed: 2, CreatedAt: 1}
	if err := store.Create(killed, canonical); err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(want, []byte("\n"))
	torn := bytes.Join(lines[:3], nil)
	torn = append(torn, lines[3][:10]...) // half of line 4
	if err := os.WriteFile(store.ResultsPath(id), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	mgr := newJobsManager(t, freshSvc, dir, 1)
	final, err := mgr.Wait(testCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.Done || final.Completed != 8 {
		t.Fatalf("resumed job status %+v", final)
	}
	got, err := os.ReadFile(store.ResultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed results are not byte-identical:\n%s\nwant:\n%s", got, want)
	}
	// The resumed half really was recomputed by the fresh process, not
	// replayed: points 4..8 (minus the DoubleBlocking collapse, if any)
	// hit the fresh service's simulator.
	if freshSvc.SimPoints() == 0 {
		t.Error("restarted service never simulated; resume replayed nothing")
	}
}

// TestJobCancelAndErrorRecord: a job cancelled over HTTP mid-run turns
// terminal, and its results stream ends with the {"error": ...}
// record instead of silently truncating.
func TestJobCancelAndErrorRecord(t *testing.T) {
	// Workers: 1, and the test itself holds the pool's only token: the
	// job transitions to running but cannot evaluate a single point
	// until cancelled — the cancel-while-running window is structural,
	// not a scheduling race.
	svc := NewService(Options{Workers: 1})
	mgr := newJobsManager(t, svc, t.TempDir(), 1)
	svc.AttachJobs(mgr)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	if err := svc.pool.Acquire(context.Background(), jobs.Interactive); err != nil {
		t.Fatal(err)
	}
	defer svc.pool.Release()

	resp := post(t, ts.URL+"/v1/jobs", sweepBody, nil)
	var b jobs.Meta
	if err := json.Unmarshal(readBody(t, resp), &b); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %+v", resp.StatusCode, b)
	}
	// Wait until the runner picked the job up (running is persisted and
	// notified before execution starts).
	ctx := testCtx(t)
	for {
		got, err := mgr.Get(b.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == jobs.Running {
			break
		}
		if ctx.Err() != nil {
			t.Fatalf("job never started: %+v", got)
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+b.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var atDelete jobs.Meta
	if err := json.Unmarshal(readBody(t, resp), &atDelete); err != nil {
		t.Fatal(err)
	}
	if atDelete.State.Terminal() && atDelete.State != jobs.Cancelled {
		t.Fatalf("job reached %s before the cancel landed", atDelete.State)
	}
	// The transition is async for a running job; wait for it.
	final, err := mgr.Wait(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.Cancelled {
		t.Fatalf("job ended as %s, want cancelled", final.State)
	}

	// The results stream terminates with the error record.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + b.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
	var e errorResponse
	if err := json.Unmarshal(lines[len(lines)-1], &e); err != nil || e.Error == "" {
		t.Fatalf("cancelled job results end with %q, want an error record (%v)",
			lines[len(lines)-1], err)
	}

	// Status agrees.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + b.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got jobs.Meta
	if err := json.Unmarshal(readBody(t, resp), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.Cancelled {
		t.Errorf("cancelled job state %s", got.State)
	}
}

// TestJobDedupeSpelledOutDefaults pins the canonicalization: a sweep
// that omits an axis and one that spells out that axis's documented
// default are the same content key, hence the same job.
func TestJobDedupeSpelledOutDefaults(t *testing.T) {
	svc := NewService(Options{})
	implicit := `{"protocols": ["Triple"], "mtbfs": [1800], "tbase": 10000, "runs": 2, "seed": 5}`
	explicit := `{"scenario": {"name": "Base", "backend": "fast", "law": "exponential"},
		"backends": ["fast"], "protocols": ["Triple"],
		"phiFracs": [0, 0.25, 0.5, 0.75, 1], "mtbfs": [1800],
		"tbase": 10000, "runs": 2, "seed": 5}`
	a, _, err := svc.NormalizeJobRequest([]byte(implicit))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := svc.NormalizeJobRequest([]byte(explicit))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("spelled-out defaults canonicalize differently:\n%s\n%s", a, b)
	}
	distinct := strings.Replace(implicit, `"seed": 5`, `"seed": 6`, 1)
	c, _, err := svc.NormalizeJobRequest([]byte(distinct))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("distinct seeds share a canonical request")
	}
}

// TestJobsDirSharedManagers: per-job leases replaced the store-wide
// flock, so a second manager over the same directory opens fine, and a
// job finished under the first manager is adopted — same id, same
// terminal state, no re-execution — when the identical request is
// submitted to the second.
func TestJobsDirSharedManagers(t *testing.T) {
	svc := NewService(Options{})
	dir := t.TempDir()
	mgr1 := newJobsManager(t, svc, dir, 1)
	mgr2 := newJobsManager(t, svc, dir, 1)

	body := `{"protocols": ["DoubleNBL"], "phiFracs": [0.25], "mtbfs": [1800], "tbase": 5000, "runs": 2, "seed": 311}`
	meta1, created, err := mgr1.Submit([]byte(body))
	if err != nil || !created {
		t.Fatalf("submit: meta %+v, created %v, err %v", meta1, created, err)
	}
	final, err := mgr1.Wait(context.Background(), meta1.ID)
	if err != nil || final.State != jobs.Done {
		t.Fatalf("first manager's job: %+v, err %v", final, err)
	}
	simPoints := svc.SimPoints()
	meta2, created, err := mgr2.Submit([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Error("resubmission on a sibling manager must adopt the on-disk job, not create a new one")
	}
	if meta2.ID != meta1.ID || meta2.State != jobs.Done || meta2.Completed != final.Completed {
		t.Errorf("adopted job %+v does not mirror the on-disk terminal state %+v", meta2, final)
	}
	if got := svc.SimPoints(); got != simPoints {
		t.Errorf("adoption re-simulated: %d points before, %d after", simPoints, got)
	}
}

// TestJobSubmitValidation: a bad job body is rejected at submission
// (400 with the error envelope), never enqueued.
func TestJobSubmitValidation(t *testing.T) {
	_, mgr, ts := newJobsServer(t, 1)
	for _, body := range []string{
		`{"protocols": ["Quadruple"], "runs": 2}`,
		`{"runz": 2}`,
		`{"scenario": {"backend": "quantum"}, "runs": 2}`,
		`not json`,
	} {
		resp := post(t, ts.URL+"/v1/jobs", body, nil)
		got := readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", body, resp.StatusCode, got)
		}
	}
	if n := len(mgr.List()); n != 0 {
		t.Errorf("%d jobs enqueued from invalid submissions", n)
	}
	// Unknown job ids are 404s on every per-job route.
	for _, path := range []string{"/v1/jobs/job-00", "/v1/jobs/job-00/results"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestJobsDisabled: without an attached manager the job routes exist
// but shed every request with a retryable 503 — the same surface an HA
// standby serves until promotion attaches a manager mid-flight.
func TestJobsDisabled(t *testing.T) {
	_, ts := newTestServer(t)
	resp := post(t, ts.URL+"/v1/jobs", sweepBody, nil)
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("jobs route without a manager: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("manager-less 503 carries no Retry-After")
	}
	for _, path := range []string{"/v1/jobs", "/v1/jobs/job-00", "/v1/jobs/job-00/results"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s without a manager: status %d, want 503", path, resp.StatusCode)
		}
	}
}

// cancellingWriter is an http.ResponseWriter that cancels the request
// context after the first body write — the observable shape of a
// client that disconnects mid-stream while the transport still accepts
// writes (so the terminal record, if any, is capturable).
type cancellingWriter struct {
	header http.Header
	buf    bytes.Buffer
	cancel context.CancelFunc
	wrote  bool
}

func (w *cancellingWriter) Header() http.Header { return w.header }
func (w *cancellingWriter) WriteHeader(int)     {}
func (w *cancellingWriter) Flush()              {}
func (w *cancellingWriter) Write(p []byte) (int, error) {
	n, err := w.buf.Write(p)
	if !w.wrote {
		w.wrote = true
		w.cancel()
	}
	return n, err
}

// TestStreamSweepDisconnectEmitsTerminalRecord pins the streaming
// contract: when the request context dies mid-sweep, the stream is
// terminated promptly — remaining grid points are not simulated — and
// ends with a flushed {"error": ...} NDJSON record rather than a
// silent truncation.
func TestStreamSweepDisconnectEmitsTerminalRecord(t *testing.T) {
	svc := NewService(Options{Workers: 1})
	handler := NewServer(svc)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(sweepBody))
	req.Header.Set("Accept", NDJSONContentType)
	req = req.WithContext(ctx)
	w := &cancellingWriter{header: make(http.Header), cancel: cancel}
	handler.ServeHTTP(w, req)

	lines := bytes.Split(bytes.TrimSuffix(w.buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want at least one item plus the terminal record:\n%s",
			len(lines), w.buf.Bytes())
	}
	var item SweepItem
	if err := json.Unmarshal(lines[0], &item); err != nil {
		t.Errorf("first line is not an item: %v", err)
	}
	var e errorResponse
	if err := json.Unmarshal(lines[len(lines)-1], &e); err != nil || e.Error == "" {
		t.Errorf("last line %q is not the terminal error record (%v)", lines[len(lines)-1], err)
	}
	if n := svc.SimPoints(); n > 4 {
		t.Errorf("disconnected sweep still simulated %d of 8 points", n)
	}
	if len(lines)-1 >= 8 {
		t.Errorf("disconnected stream delivered the whole grid (%d items)", len(lines)-1)
	}
}

// TestSyncAndJobPathsShareThePool: a synchronous sweep issued while a
// job is executing still completes (the shared pool serves both), and
// both paths resolve identical physical points to identical items via
// the shared cache.
func TestSyncAndJobPathsShareThePool(t *testing.T) {
	svc, mgr, ts := newJobsServer(t, 2)
	resp := post(t, ts.URL+"/v1/jobs", sweepBody, nil)
	var meta jobs.Meta
	if err := json.Unmarshal(readBody(t, resp), &meta); err != nil {
		t.Fatal(err)
	}
	// Interactive sweep of the same grid, racing the job.
	second := post(t, ts.URL+"/v1/sweep", sweepBody, nil)
	secondBody := readBody(t, second)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("sync sweep during job: %d %s", second.StatusCode, secondBody)
	}
	if _, err := mgr.Wait(testCtx(t), meta.ID); err != nil {
		t.Fatal(err)
	}
	want := ndjsonSweep(t, svc, sweepBody)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + meta.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if results := readBody(t, resp); !bytes.Equal(results, want) {
		t.Errorf("job results diverge from the sync path under contention:\n%s\nwant:\n%s",
			results, want)
	}
	var buffered sweepResponse
	if err := json.Unmarshal(secondBody, &buffered); err != nil {
		t.Fatal(err)
	}
	if len(buffered.Items) != 8 {
		t.Errorf("sync sweep returned %d items", len(buffered.Items))
	}
}
