package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/jobs"
)

// Sweep metadata headers. They carry SweepStats out of band so that
// repeated identical sweeps return byte-identical bodies (the
// cache-determinism guarantee the tests pin down). On streaming
// responses they are sent as HTTP trailers.
const (
	HeaderSweepPoints = "X-Sweep-Points"
	HeaderSweepHits   = "X-Sweep-Cache-Hits"
	HeaderSweepMisses = "X-Sweep-Cache-Misses"
)

// NDJSONContentType is the Accept value selecting the streaming
// /v1/sweep response: one SweepItem JSON object per line, emitted in
// grid order as points complete.
const NDJSONContentType = "application/x-ndjson"

// NewServer mounts the service's endpoints plus /healthz on a new
// mux. The point endpoints take a POST with a JSON body and return
// JSON; errors are {"error": "..."} with a 4xx/5xx status. The
// /v1/jobs lifecycle endpoints are always mounted but answer 503
// until a job manager is attached (AttachJobs) — an HA standby mounts
// its routes long before promotion hands it a manager.
func NewServer(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/waste", handlePoint(s.Waste))
	mux.HandleFunc("/v1/optimum", handlePoint(s.Optimum))
	mux.HandleFunc("/v1/risk", handlePoint(s.Risk))
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	return mux
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// writeJSON marshals v before touching the ResponseWriter, so an
// encoding failure becomes a 500 error body instead of a silent empty
// 200.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// decodeRequest parses a JSON request body, rejecting unknown fields
// so typos fail loudly. An empty body decodes to the zero request.
func decodeRequest(r *http.Request, v any) error {
	return decodeStrict(http.MaxBytesReader(nil, r.Body, 1<<20), v)
}

// decodeStrict is the shared strict JSON decoder: unknown fields are
// rejected, an empty document decodes to the zero value. Job
// submissions run through it too, so the job path accepts exactly the
// request language of /v1/sweep.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("invalid request: %w", err)
	}
	return nil
}

// handlePoint adapts a closed-form service method into an HTTP
// handler.
func handlePoint[T any](eval func(PointRequest) (T, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("use POST with a JSON body"))
			return
		}
		var req PointRequest
		if err := decodeRequest(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := eval(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, resp)
	}
}

// sweepResponse is the non-streaming /v1/sweep body.
type sweepResponse struct {
	Items []SweepItem `json:"items"`
}

// rangeParams parses the optional ?offset=&limit= query parameters
// selecting a contiguous sub-range of the sweep grid — the wire format
// the fabric coordinator uses to dispatch point ranges to workers.
// Absent parameters select the whole grid (offset 0, limit -1), so the
// historical /v1/sweep surface is unchanged.
func rangeParams(r *http.Request) (offset, limit int, err error) {
	offset, limit = 0, -1
	if q := r.URL.Query().Get("offset"); q != "" {
		if offset, err = strconv.Atoi(q); err != nil || offset < 0 {
			return 0, 0, fmt.Errorf("api: offset %q must be a non-negative integer", q)
		}
	}
	if q := r.URL.Query().Get("limit"); q != "" {
		if limit, err = strconv.Atoi(q); err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("api: limit %q must be a non-negative integer", q)
		}
	}
	return offset, limit, nil
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST with a JSON body"))
		return
	}
	offset, limit, err := rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req SweepRequest
	if err := decodeRequest(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.Header.Get("Accept") == NDJSONContentType {
		s.streamSweep(w, r, req, offset, limit)
		return
	}
	items := make([]SweepItem, 0, 16)
	stats, err := s.sweepRange(r.Context(), req, offset, limit, jobs.Interactive, nil, func(item SweepItem) error {
		items = append(items, item)
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	setSweepHeaders(w.Header(), stats)
	writeJSON(w, sweepResponse{Items: items})
}

// streamSweep writes one SweepItem per NDJSON line, flushing as points
// complete, and reports SweepStats as HTTP trailers. A request-context
// cancellation (the client disconnected) is checked before every
// encode, so it propagates into the sweep engine — and out of the
// shared evaluation pool — promptly instead of whenever the next TCP
// write happens to fail; any mid-stream abort terminates the stream
// with a flushed {"error": ...} record rather than a silent
// truncation. A non-default offset/limit streams just that contiguous
// grid range — byte-for-byte the same lines a full-grid stream carries
// at those positions, which is what lets a fabric coordinator merge
// worker ranges back into a byte-identical single-node response.
func (s *Service) streamSweep(w http.ResponseWriter, r *http.Request, req SweepRequest, offset, limit int) {
	w.Header().Set("Trailer", HeaderSweepPoints+", "+HeaderSweepHits+", "+HeaderSweepMisses)
	w.Header().Set("Content-Type", NDJSONContentType)
	framed := r.Header.Get(HeaderSweepIntegrity) == IntegrityCRC32C
	flusher, _ := w.(http.Flusher)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	var frame []byte // reused integrity-framing scratch
	wrote := false
	stats, err := s.sweepRange(r.Context(), req, offset, limit, jobs.Interactive, nil, func(item SweepItem) error {
		if err := r.Context().Err(); err != nil {
			return err
		}
		buf.Reset()
		if err := enc.Encode(item); err != nil {
			return err
		}
		line := buf.Bytes()
		if framed {
			frame = AppendFrameLine(frame[:0], line)
			line = frame
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if !wrote {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Mid-stream failure: the status line is already sent, so the
		// error becomes the final NDJSON record, flushed so a still-
		// connected client actually sees why the stream ended early.
		// Error records are never integrity-framed (see integrity.go).
		json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
		if flusher != nil {
			flusher.Flush()
		}
	}
	setSweepHeaders(w.Header(), stats)
}

func setSweepHeaders(h http.Header, stats SweepStats) {
	h.Set(HeaderSweepPoints, strconv.Itoa(stats.Points))
	h.Set(HeaderSweepHits, strconv.Itoa(stats.CacheHits))
	h.Set(HeaderSweepMisses, strconv.Itoa(stats.CacheMisses))
}

// healthResponse is the /healthz body: liveness plus the service's
// cache and simulation counters.
type healthResponse struct {
	OK          bool   `json:"ok"`
	CacheLen    int    `json:"cacheLen"`
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	SimPoints   uint64 `json:"simPoints"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	writeJSON(w, healthResponse{
		OK:          true,
		CacheLen:    s.cache.Len(),
		CacheHits:   hits,
		CacheMisses: misses,
		SimPoints:   s.SimPoints(),
	})
}

// ReadyStatus is the /readyz report. It is deliberately distinct from
// /healthz: health is liveness ("the process answers"), readiness is
// load acceptance ("send this node work"). A node can be alive and
// healthy yet degraded — its job queue saturated, or (behind a fabric
// coordinator, which overlays its own fleet view) its workers dark.
type ReadyStatus struct {
	// Ready reports whether the node accepts work at all; a false value
	// is served with a 503 so load balancers take the node out of
	// rotation.
	Ready bool `json:"ready"`
	// Degraded reports reduced capacity — still serving, still correct,
	// but shedding or absorbing load (saturated job queue, open worker
	// circuits). Degraded nodes stay in rotation.
	Degraded bool `json:"degraded"`
	// Jobs carries the job subsystem's load snapshot when a manager is
	// attached.
	Jobs *jobs.Stats `json:"jobs,omitempty"`
}

// ReadyStatus returns the service's readiness: degraded when the job
// queue is saturated (new submissions are being shed with 503s).
func (s *Service) ReadyStatus() ReadyStatus {
	st := ReadyStatus{Ready: true}
	if mgr := s.Jobs(); mgr != nil {
		js := mgr.Stats()
		st.Jobs = &js
		st.Degraded = js.Saturated
	}
	return st
}

func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	WriteReady(w, s.ReadyStatus())
}

// WriteReady serves a readiness report with its HTTP status contract
// (503 only when not ready). The fabric coordinator reuses it for the
// fleet-aware /readyz it overlays on this one.
func WriteReady(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if ready, ok := v.(interface{ IsReady() bool }); ok && !ready.IsReady() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	w.Write(append(data, '\n'))
}

// IsReady lets WriteReady pick the status code for this report and any
// struct embedding it.
func (r ReadyStatus) IsReady() bool { return r.Ready }
