package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/scenario"
)

// sweepBody is the fixed sweep request shared by the determinism and
// golden tests: 2 protocols × 2 overhead points × 2 MTBFs = 8 points,
// kept cheap with a short application and a small batch.
const sweepBody = `{
	"scenario": {"name": "Base"},
	"protocols": ["DoubleNBL", "Triple"],
	"phiFracs": [0.25, 0.75],
	"mtbfs": [3600, 7200],
	"tbase": 20000,
	"runs": 4,
	"seed": 42
}`

func sweepRequest() SweepRequest {
	var req SweepRequest
	if err := json.Unmarshal([]byte(sweepBody), &req); err != nil {
		panic(err)
	}
	return req
}

// TestSweepCacheDeterminism is the acceptance check: the same sweep
// twice gives byte-identical bodies, and the second is served entirely
// from the cache without touching the simulator.
func TestSweepCacheDeterminism(t *testing.T) {
	svc, ts := newTestServer(t)

	first := post(t, ts.URL+"/v1/sweep", sweepBody, nil)
	firstBody := readBody(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", first.StatusCode, firstBody)
	}
	if got, want := first.Header.Get(HeaderSweepMisses), "8"; got != want {
		t.Errorf("first sweep cache misses = %s, want %s", got, want)
	}
	simulated := svc.SimPoints()
	if simulated == 0 {
		t.Fatal("first sweep did not reach the simulator")
	}

	second := post(t, ts.URL+"/v1/sweep", sweepBody, nil)
	secondBody := readBody(t, second)
	if !bytes.Equal(firstBody, secondBody) {
		t.Errorf("repeated sweep is not byte-identical:\nfirst:\n%s\nsecond:\n%s", firstBody, secondBody)
	}
	if got, want := second.Header.Get(HeaderSweepHits), "8"; got != want {
		t.Errorf("second sweep cache hits = %s, want %s", got, want)
	}
	if svc.SimPoints() != simulated {
		t.Errorf("second sweep ran the simulator: %d points before, %d after",
			simulated, svc.SimPoints())
	}
}

// TestSweepWorkerCountIndependence pins the determinism guarantee the
// cache relies on: the items do not depend on how the grid is split
// across workers.
func TestSweepWorkerCountIndependence(t *testing.T) {
	req := sweepRequest()
	serial := NewService(Options{Workers: 1})
	wide := NewService(Options{Workers: 8})
	a, _, err := serial.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := wide.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sweep differs between 1 and 8 workers:\n%+v\n%+v", a, b)
	}
}

// TestSweepSeedIndependentOfGridShape checks the content-keyed
// seeding: the same physical point gets the same sample whether it is
// swept alone or as part of a larger grid, so overlapping sweeps share
// cache entries.
func TestSweepSeedIndependentOfGridShape(t *testing.T) {
	svc := NewService(Options{})
	full := sweepRequest()
	sub := full
	sub.Protocols = []string{"Triple"}
	sub.PhiFracs = []float64{0.75}
	sub.MTBFs = []float64{7200}

	fullItems, _, err := svc.Sweep(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	simulated := svc.SimPoints()
	subItems, stats, err := svc.Sweep(context.Background(), sub)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || svc.SimPoints() != simulated {
		t.Errorf("sub-sweep should hit the cache: stats %+v, sim %d -> %d",
			stats, simulated, svc.SimPoints())
	}
	want := fullItems[len(fullItems)-1] // Triple, 0.75, 7200 is the last grid point
	if !reflect.DeepEqual(subItems[0], want) {
		t.Errorf("point differs between grids:\n%+v\n%+v", subItems[0], want)
	}
}

// TestSweepStreamNDJSON exercises the streaming response: one valid
// JSON object per line, same items as the buffered response, stats in
// the trailers.
func TestSweepStreamNDJSON(t *testing.T) {
	svc, ts := newTestServer(t)
	buffered, _, err := svc.Sweep(context.Background(), sweepRequest())
	if err != nil {
		t.Fatal(err)
	}

	resp := post(t, ts.URL+"/v1/sweep", sweepBody, http.Header{"Accept": []string{NDJSONContentType}})
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != NDJSONContentType {
		t.Errorf("content type %q, want %q", got, NDJSONContentType)
	}
	var items []SweepItem
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var item SweepItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		items = append(items, item)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, buffered) {
		t.Errorf("streamed items differ from buffered items")
	}
	// Trailers are only populated after the body is consumed.
	if got, want := resp.Trailer.Get(HeaderSweepPoints), fmt.Sprint(len(buffered)); got != want {
		t.Errorf("trailer %s = %q, want %q", HeaderSweepPoints, got, want)
	}
}

// TestSweepConcurrentRequests hammers the endpoint from many
// goroutines mixing distinct seeds (cache misses) and shared seeds
// (cache hits); under -race this is the concurrent-safety check for
// the pool, the cache and the counters.
func TestSweepConcurrentRequests(t *testing.T) {
	_, ts := newTestServer(t)
	body := func(seed int) string {
		return fmt.Sprintf(`{"protocols": ["DoubleNBL"], "phiFracs": [0.25, 0.5],
			"mtbfs": [3600], "tbase": 10000, "runs": 2, "seed": %d}`, seed)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*4)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
					strings.NewReader(body(g%3))) // 3 distinct seeds shared across goroutines
				if err != nil {
					errs <- err.Error()
					return
				}
				var out sweepResponse
				data := new(bytes.Buffer)
				data.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, data)
					return
				}
				if err := json.Unmarshal(data.Bytes(), &out); err != nil {
					errs <- err.Error()
					return
				}
				if len(out.Items) != 2 {
					errs <- fmt.Sprintf("got %d items, want 2", len(out.Items))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestSweepInfeasiblePointsSkipSimulator checks that a saturated MTBF
// (15 s on Base, where no protocol progresses) yields a feasible=false
// item without burning simulator time.
func TestSweepInfeasiblePointsSkipSimulator(t *testing.T) {
	svc := NewService(Options{})
	req := sweepRequest()
	req.Protocols = []string{"DoubleNBL"}
	req.PhiFracs = []float64{0.5}
	req.MTBFs = []float64{15}
	items, _, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("got %d items", len(items))
	}
	if items[0].Feasible || items[0].ModelWaste != 1 {
		t.Errorf("expected infeasible saturated point, got %+v", items[0])
	}
	if svc.SimPoints() != 0 {
		t.Errorf("infeasible point reached the simulator")
	}
}

func TestSweepDefaultsCoverAllProtocols(t *testing.T) {
	svc := NewService(Options{MaxRuns: 4})
	req := SweepRequest{Tbase: 10000, Runs: 2, Seed: 7}
	mtbf := 1800.0
	req.Scenario.MTBF = &mtbf
	items, stats, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// 5 protocols × default 5 φ points × 1 MTBF.
	if want := 25; len(items) != want || stats.Points != want {
		t.Errorf("got %d items, stats %+v, want %d points", len(items), stats, want)
	}
	seen := map[string]bool{}
	for _, item := range items {
		seen[item.Protocol] = true
	}
	if len(seen) != 5 {
		t.Errorf("defaults covered protocols %v, want all 5", seen)
	}
}

// TestSweepDoubleBlockingCollapses checks φ canonicalization:
// DoubleBlocking pins φ = R, so its grid points at different requested
// φ/R are the same physical point — one simulation, one cache entry,
// identical items reporting the effective φ/R of 1.
func TestSweepDoubleBlockingCollapses(t *testing.T) {
	// One worker serializes the three identical-key points so the
	// second and third deterministically hit the first one's cache
	// entry (with parallel workers they could race past each other and
	// each simulate — same result, but nondeterministic stats).
	svc := NewService(Options{Workers: 1})
	req := sweepRequest()
	req.Protocols = []string{"DoubleBlocking"}
	req.PhiFracs = []float64{0, 0.5, 1}
	req.MTBFs = []float64{3600}
	items, stats, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 1 || stats.CacheHits != 2 {
		t.Errorf("stats %+v, want 1 miss + 2 hits", stats)
	}
	if svc.SimPoints() != 1 {
		t.Errorf("simulated %d points, want 1", svc.SimPoints())
	}
	for _, item := range items {
		if item.PhiFrac != 1 {
			t.Errorf("DoubleBlocking item reports phiFrac %v, want effective 1", item.PhiFrac)
		}
		if !reflect.DeepEqual(item, items[0]) {
			t.Errorf("collapsed points differ: %+v vs %+v", item, items[0])
		}
	}
}

// TestSweepDefaultRunsSimulate pins the runs default: a request that
// omits "runs" must simulate the documented 8-run batch (not a 0-run
// batch whose empty aggregate would poison the cache under the
// runs=8 key).
func TestSweepDefaultRunsSimulate(t *testing.T) {
	svc := NewService(Options{})
	req := sweepRequest()
	req.Protocols = []string{"DoubleNBL"}
	req.PhiFracs = []float64{0.5}
	req.MTBFs = []float64{1800}
	req.Runs = 0
	items, _, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Runs != 8 {
		t.Errorf("runs = %d, want the default 8", items[0].Runs)
	}
	if items[0].SimWaste <= 0 || items[0].CompletedRate != 1 {
		t.Errorf("default-runs point was not simulated: %+v", items[0])
	}
}

// TestSweepFixedPeriodPartialInfeasibility checks that a fixed period
// below one protocol's MinPeriod marks that point Feasible=false like
// the MTBF-too-small path, instead of aborting the rest of the grid.
func TestSweepFixedPeriodPartialInfeasibility(t *testing.T) {
	svc := NewService(Options{})
	req := sweepRequest()
	req.Protocols = []string{"DoubleNBL", "Triple"}
	req.PhiFracs = []float64{0}
	req.MTBFs = []float64{3600}
	// At φ = 0 on Base, θ = 44: MinPeriod is 46 for DoubleNBL but 88
	// for Triple, so a fixed period of 60 splits the grid.
	req.Period = 60
	items, _, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d items, want 2", len(items))
	}
	if !items[0].Feasible || items[0].SimWaste == 0 {
		t.Errorf("DoubleNBL at period 60 should simulate: %+v", items[0])
	}
	if items[1].Feasible || items[1].ModelWaste != 1 {
		t.Errorf("Triple at period 60 < MinPeriod 88 should be infeasible: %+v", items[1])
	}
}

// TestSweepClientDisconnectStopsWorkers checks cancellation: when the
// context dies mid-sweep, the workers stop picking up grid points
// instead of simulating the rest of the grid.
func TestSweepClientDisconnectStopsWorkers(t *testing.T) {
	svc := NewService(Options{Workers: 1})
	req := sweepRequest()
	req.Runs = 8
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	brokenPipe := fmt.Errorf("client went away")
	_, err := svc.SweepStream(ctx, req, func(SweepItem) error {
		emitted++
		cancel()
		return brokenPipe
	})
	if err != brokenPipe {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if emitted != 1 {
		t.Errorf("emitted %d items, want 1", emitted)
	}
	// With one worker and a cancelled feeder, only the points already
	// in flight at cancellation can still be simulated — far fewer
	// than the 8-point grid.
	if n := svc.SimPoints(); n > 4 {
		t.Errorf("workers simulated %d of 8 points after cancellation", n)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", SweepItem{Seed: 1})
	c.Put("b", SweepItem{Seed: 2})
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", SweepItem{Seed: 3}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Errorf("stats = %d hits/%d misses, want 3/1", hits, misses)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", SweepItem{})
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache must not store")
	}
}

// TestSweepReusesCompiledBatches pins the compiled-batch reuse: a
// repeat of the same physical grid under a different seed misses the
// item cache (the seed is part of the point key) and simulates again,
// but compiles no new batches — the physical configurations are
// already compiled.
func TestSweepReusesCompiledBatches(t *testing.T) {
	svc := NewService(Options{})
	req := sweepRequest()
	if _, _, err := svc.Sweep(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	compiled := svc.batches.len()
	if compiled == 0 {
		t.Fatal("first sweep compiled no batches")
	}
	req.Seed = 43 // fresh sample, same physical grid
	_, stats, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 8 {
		t.Errorf("re-seeded sweep stats %+v, want 8 item-cache misses", stats)
	}
	if got := svc.batches.len(); got != compiled {
		t.Errorf("batch cache grew from %d to %d on a re-seeded sweep", compiled, got)
	}
}

// detailedSweepBody is a small detailed-backend sweep: the platform is
// shrunk to 96 ranks so the substrate-backed runs stay cheap.
const detailedSweepBody = `{
	"scenario": {"name": "Base", "n": 96, "backend": "detailed"},
	"protocols": ["DoubleNBL", "Triple"],
	"phiFracs": [0.25],
	"mtbfs": [900],
	"tbase": 10000,
	"runs": 2,
	"seed": 42
}`

// TestSweepDetailedBackend runs the acceptance sweep on the detailed
// engine: points simulate, the backend is echoed per item, and
// repeated requests are byte-identical and cache-served.
func TestSweepDetailedBackend(t *testing.T) {
	svc, ts := newTestServer(t)
	first := post(t, ts.URL+"/v1/sweep", detailedSweepBody, nil)
	firstBody := readBody(t, first)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", first.StatusCode, firstBody)
	}
	var out sweepResponse
	if err := json.Unmarshal(firstBody, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 2 {
		t.Fatalf("got %d items, want 2", len(out.Items))
	}
	for _, item := range out.Items {
		if item.Backend != "detailed" {
			t.Errorf("item backend = %q, want detailed", item.Backend)
		}
		if !item.Feasible || item.SimWaste <= 0 {
			t.Errorf("detailed point did not simulate: %+v", item)
		}
	}
	if svc.SimPoints() != 2 {
		t.Errorf("simulated %d points, want 2", svc.SimPoints())
	}

	second := post(t, ts.URL+"/v1/sweep", detailedSweepBody, nil)
	secondBody := readBody(t, second)
	if !bytes.Equal(firstBody, secondBody) {
		t.Errorf("repeated detailed sweep is not byte-identical")
	}
	if got, want := second.Header.Get(HeaderSweepHits), "2"; got != want {
		t.Errorf("second sweep cache hits = %s, want %s", got, want)
	}
	if svc.SimPoints() != 2 {
		t.Errorf("second sweep ran the simulator")
	}
}

// TestSweepBackendsAxis pins the backend grid axis: a fast+detailed
// sweep evaluates each physical point once per backend, in backend-
// outermost order, and the fast half is identical — seeds, samples and
// bytes — to a plain fast-only sweep of the same grid (the backend
// leaves the fast point keys untouched).
func TestSweepBackendsAxis(t *testing.T) {
	svc := NewService(Options{})
	req := SweepRequest{
		Backends:  []string{"fast", "detailed"},
		Protocols: []string{"DoubleNBL"},
		PhiFracs:  []float64{0.25, 0.75},
		MTBFs:     []float64{900},
		Tbase:     10000,
		Runs:      2,
		Seed:      7,
	}
	n := 96
	req.Scenario.N = &n
	items, stats, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 || stats.Points != 4 {
		t.Fatalf("got %d items, stats %+v, want 4 points", len(items), stats)
	}
	fastOnly := req
	fastOnly.Backends = nil
	fastItems, _, err := svc.Sweep(context.Background(), fastOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items[:2], fastItems) {
		t.Errorf("fast half of the backends axis differs from a fast-only sweep:\n%+v\n%+v",
			items[:2], fastItems)
	}
	for i, item := range items {
		want := ""
		if i >= 2 {
			want = "detailed"
		}
		if item.Backend != want {
			t.Errorf("item %d backend = %q, want %q", i, item.Backend, want)
		}
	}
	// The detailed engine shares the fast timeline, so at equal seeds
	// the measured waste agrees exactly; the seeds ARE equal only if the
	// keys differ per backend — which the distinct cache misses prove.
	if stats.CacheMisses != 4 {
		t.Errorf("stats %+v, want 4 distinct misses", stats)
	}
}

// TestSweepMultilevelBackend checks the two-level backend through the
// service: a hostile MTBF where the buddy protocols suffer fatal
// chains yields complete, non-fatal multilevel items.
func TestSweepMultilevelBackend(t *testing.T) {
	svc := NewService(Options{})
	req := SweepRequest{
		Protocols: []string{"DoubleNBL"},
		PhiFracs:  []float64{0.25},
		MTBFs:     []float64{300},
		Tbase:     5000,
		Runs:      4,
		Seed:      11,
	}
	req.Scenario.Backend = "multilevel"
	req.Scenario.Global = &scenario.GlobalSpec{G: 50, Rg: 50}
	items, _, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("got %d items", len(items))
	}
	item := items[0]
	if item.Backend != "multilevel" || !item.Feasible {
		t.Fatalf("unexpected multilevel item: %+v", item)
	}
	if item.FatalRate != 0 || item.CompletedRate != 1 {
		t.Errorf("multilevel item should absorb fatal failures: %+v", item)
	}
	if item.ModelWaste <= 0 || item.ModelWaste >= 1 {
		t.Errorf("multilevel model waste %v out of (0, 1)", item.ModelWaste)
	}

	// Without a global level the backend is a request error, not a 500.
	bad := req
	bad.Scenario.Global = nil
	if _, _, err := svc.Sweep(context.Background(), bad); err == nil {
		t.Error("multilevel sweep without scenario.global must fail")
	}
}

// TestSweepWeibullLaw checks the law axis: a Weibull sweep is keyed
// separately from the exponential one (distinct samples), echoes the
// law per item, and stays deterministic.
func TestSweepWeibullLaw(t *testing.T) {
	svc := NewService(Options{})
	req := SweepRequest{
		Protocols: []string{"DoubleNBL"},
		PhiFracs:  []float64{0.25},
		MTBFs:     []float64{900},
		Tbase:     10000,
		Runs:      4,
		Seed:      9,
	}
	n := 128 // renewal sources are O(n) per run; keep the platform small
	req.Scenario.N = &n
	expItems, _, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wei := req
	wei.Scenario.Law = "weibull"
	wei.Scenario.Shape = 0.7
	weiItems, stats, err := svc.Sweep(context.Background(), wei)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 1 {
		t.Errorf("weibull point must miss the exponential cache entry: %+v", stats)
	}
	if weiItems[0].Law != "weibull(0.7)" {
		t.Errorf("law echo = %q, want weibull(0.7)", weiItems[0].Law)
	}
	if expItems[0].Law != "" {
		t.Errorf("exponential law echo = %q, want omitted", expItems[0].Law)
	}
	if weiItems[0].SimWaste == expItems[0].SimWaste {
		t.Errorf("weibull sample equals exponential sample: %+v", weiItems[0])
	}
	again, _, err := svc.Sweep(context.Background(), wei)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(weiItems, again) {
		t.Errorf("repeated weibull sweep differs")
	}
}

// TestSweepDetailedIndivisiblePlatform checks graceful degradation: a
// triple-protocol detailed point on a platform not divisible into
// triples is a Feasible=false item, not an aborted grid.
func TestSweepDetailedIndivisiblePlatform(t *testing.T) {
	svc := NewService(Options{})
	req := SweepRequest{
		Protocols: []string{"DoubleNBL", "Triple"},
		PhiFracs:  []float64{0.25},
		MTBFs:     []float64{900},
		Tbase:     10000,
		Runs:      2,
		Seed:      3,
	}
	n := 100 // divisible by 2, not by 3
	req.Scenario.N = &n
	req.Scenario.Backend = "detailed"
	items, _, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d items, want 2", len(items))
	}
	if !items[0].Feasible || items[0].SimWaste <= 0 {
		t.Errorf("DoubleNBL on 100 ranks should simulate: %+v", items[0])
	}
	if items[1].Feasible || items[1].ModelWaste != 1 {
		t.Errorf("Triple on 100 ranks should be infeasible: %+v", items[1])
	}
}

// TestSweepDetailedDefaultKnobsShareKeys pins the substrate-default
// normalization: spelling out the default spares/imageBytes values is
// the same physical point as omitting them — same derived seed, same
// cache entry, identical items.
func TestSweepDetailedDefaultKnobsShareKeys(t *testing.T) {
	svc := NewService(Options{})
	req := SweepRequest{
		Protocols: []string{"DoubleNBL"},
		PhiFracs:  []float64{0.25},
		MTBFs:     []float64{900},
		Tbase:     10000,
		Runs:      2,
		Seed:      42,
	}
	n := 96
	req.Scenario.N = &n
	req.Scenario.Backend = "detailed"
	implicit, _, err := svc.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	spelled := req
	spelled.Scenario.Spares = 96/10 + 1
	spelled.Scenario.ImageBytes = 512 << 20
	explicit, stats, err := svc.Sweep(context.Background(), spelled)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 {
		t.Errorf("explicit-default sweep should hit the implicit point's cache entry: %+v", stats)
	}
	if !reflect.DeepEqual(implicit, explicit) {
		t.Errorf("explicit defaults diverge from omitted defaults:\n%+v\n%+v", implicit, explicit)
	}
}
