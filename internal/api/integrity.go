package api

import (
	"fmt"
	"hash/crc32"
	"strconv"
)

// Streaming-sweep line integrity.
//
// A fabric coordinator dispatching a grid range cannot trust the
// network with the response bytes: a single flipped byte inside a JSON
// value can survive every structural check (the line still parses) and
// silently break the fabric's byte-identity oracle. Setting
// HeaderSweepIntegrity: IntegrityCRC32C on a streaming sweep request
// asks the server to frame every result line as
//
//	<crc32c as 8 lowercase hex digits> ' ' <line>
//
// where the checksum covers the line bytes including the trailing
// newline. The receiver verifies and strips the prefix before merging,
// so the reassembled output stays byte-identical to an unframed
// stream. Terminal {"error": ...} records are never framed — their
// leading '{' cannot collide with a hex prefix, and they abort the
// range regardless.
const (
	HeaderSweepIntegrity = "X-Sweep-Integrity"
	IntegrityCRC32C      = "crc32c"
)

// frameLen is the prefix length: 8 hex digits plus one space.
const frameLen = crc32.Size*2 + 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrameLine appends the integrity frame and the line to dst,
// reusing its capacity — the streaming path frames every point into
// one scratch buffer instead of allocating per line.
func AppendFrameLine(dst, line []byte) []byte {
	dst = fmt.Appendf(dst, "%08x ", crc32.Checksum(line, castagnoli))
	return append(dst, line...)
}

// FrameLine returns the integrity-framed copy of one result line.
func FrameLine(line []byte) []byte {
	return AppendFrameLine(make([]byte, 0, frameLen+len(line)), line)
}

// UnframeLine verifies one framed line and returns its payload
// (aliased into framed). A missing or unparsable prefix and a checksum
// mismatch are both reported as errors: the caller asked for framing,
// so an unframed line is itself evidence of corruption.
func UnframeLine(framed []byte) ([]byte, error) {
	if len(framed) <= frameLen || framed[frameLen-1] != ' ' {
		return nil, fmt.Errorf("api: integrity frame missing on %d-byte line", len(framed))
	}
	want, err := strconv.ParseUint(string(framed[:frameLen-1]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("api: integrity frame unparsable: %v", err)
	}
	line := framed[frameLen:]
	if got := crc32.Checksum(line, castagnoli); got != uint32(want) {
		return nil, fmt.Errorf("api: line checksum mismatch: computed %08x, framed %08x", got, want)
	}
	return line, nil
}
