package api

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/jobs"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// SweepRequest is the /v1/sweep request: the cross product of the
// backend, protocol, φ/R and MTBF axes over one platform, simulated at
// the model-optimal (or a fixed) period with a bounded worker pool.
type SweepRequest struct {
	// Scenario describes the platform; its MTBF is overridden by each
	// point of the MTBFs axis. Its backend/law/substrate fields select
	// the evaluation engine and failure law for every point (see
	// Backends for a per-point backend axis).
	Scenario scenario.Spec `json:"scenario"`
	// Backends lists evaluation backends (fast, detailed, multilevel)
	// as an additional, outermost grid axis; empty selects the
	// scenario's backend (default fast). A multilevel point needs the
	// scenario's global level.
	Backends []string `json:"backends,omitempty"`
	// Protocols lists figure names; empty selects every protocol.
	Protocols []string `json:"protocols,omitempty"`
	// PhiFracs lists overhead points φ/R in [0, 1]; empty selects
	// {0, 0.25, 0.5, 0.75, 1}.
	PhiFracs []float64 `json:"phiFracs,omitempty"`
	// MTBFs lists platform MTBFs in seconds; empty keeps the
	// scenario's MTBF as the single axis point.
	MTBFs []float64 `json:"mtbfs,omitempty"`
	// Tbase is the failure-free application duration (default 1e5 s).
	Tbase float64 `json:"tbase,omitempty"`
	// Period fixes the checkpointing period; 0 uses the backend-optimal
	// period at each point.
	Period float64 `json:"period,omitempty"`
	// Runs is the Monte-Carlo batch per point (default 8, capped by
	// the service's MaxRuns). Under adaptive precision (TargetRelErr)
	// it is the first round's size instead of the whole budget.
	Runs int `json:"runs,omitempty"`
	// TargetRelErr enables adaptive precision: each point runs in
	// geometric rounds (Runs, 2·Runs, … up to MaxRuns) of antithetic
	// pairs and stops as soon as the variance-reduced waste CI95
	// half-width falls below TargetRelErr × |waste| (DESIGN.md,
	// "Adaptive precision"). Must be in (0, 1); 0 — the default — keeps
	// the historical fixed budget and the historical wire bytes.
	TargetRelErr float64 `json:"targetRelErr,omitempty"`
	// MaxRuns caps the adaptive budget per point (default: the
	// service's MaxRuns limit). Only valid together with TargetRelErr.
	// Rounds are whole antithetic pairs, so an odd cap rounds down —
	// the spent budget never exceeds it.
	MaxRuns int `json:"maxRuns,omitempty"`
	// Seed is the base seed; per-point seeds are derived from it
	// through an rng.Stream split keyed by the canonical point key, so
	// a point's sample is independent of its position in the grid.
	Seed uint64 `json:"seed,omitempty"`
}

// precision projects the request's adaptive fields onto the engine
// spec (zero when adaptive execution is disabled).
func (r *SweepRequest) precision() engine.Precision {
	if r.TargetRelErr == 0 {
		return engine.Precision{}
	}
	return engine.Precision{TargetRelErr: r.TargetRelErr, MinRuns: r.Runs, MaxRuns: r.MaxRuns}
}

// SweepItem is one grid point of the /v1/sweep response: the model
// evaluation and the Monte-Carlo aggregate at that point.
type SweepItem struct {
	Protocol string `json:"protocol"`
	// Backend is the evaluation engine of the point; omitted for the
	// default fast engine.
	Backend string `json:"backend,omitempty"`
	// Law is the failure law of the point; omitted for the default
	// exponential law.
	Law string `json:"law,omitempty"`
	// PhiFrac is the effective φ/R of the point: the requested value,
	// except for DoubleBlocking which always reports 1 (its exchange
	// is fully blocking regardless of the request).
	PhiFrac float64 `json:"phiFrac"`
	MTBF    float64 `json:"mtbf"`
	Seed    uint64  `json:"seed"`
	Runs    int     `json:"runs"`
	// Feasible is false when the backend cannot make progress at the
	// point (MTBF too small, fixed period below the protocol's
	// MinPeriod, no multilevel plan, platform indivisible into the
	// detailed substrate's buddy groups); such points carry
	// ModelWaste = 1 and no simulation results.
	Feasible   bool    `json:"feasible"`
	Period     float64 `json:"period"`
	ModelWaste float64 `json:"modelWaste"`
	ModelLoss  float64 `json:"modelLoss"`
	RiskWindow float64 `json:"riskWindow"`
	// SimWaste and SimCI are the Monte-Carlo waste estimate and its 95%
	// CI half-width. For adaptive points (the request set targetRelErr)
	// they are the variance-reduced estimator the stopper tracked; for
	// fixed-budget points the raw sample statistics, unchanged.
	SimWaste float64 `json:"simWaste"`
	SimCI    float64 `json:"simCI"`
	SimLoss  float64 `json:"simLoss"`
	// RunsUsed is the adaptive budget the point actually consumed and
	// CI95 the achieved variance-reduced waste CI95 half-width (the
	// stopping quantity, = SimCI). Both appear only for adaptive
	// requests — fixed-budget responses keep their historical bytes —
	// and RunsUsed is the reliable adaptiveness marker: it is present
	// on every simulated adaptive point, while CI95 is additionally
	// omitted in the degenerate zero-variance early stop (a point whose
	// first round saw identical wastes reports an exact 0, which JSON
	// omitempty elides).
	RunsUsed int     `json:"runsUsed,omitempty"`
	CI95     float64 `json:"ci95,omitempty"`
	// FatalRate and CompletedRate are per-run frequencies;
	// ImportanceFatal is the variance-reduced fatal-probability
	// estimate.
	FatalRate       float64 `json:"fatalRate"`
	CompletedRate   float64 `json:"completedRate"`
	ImportanceFatal float64 `json:"importanceFatal"`
}

// SweepStats summarizes one sweep execution. It travels in HTTP
// headers (not the body) so that repeated identical sweeps return
// byte-identical bodies.
type SweepStats struct {
	Points      int
	CacheHits   int
	CacheMisses int
}

// sweepPoint is one expanded grid point awaiting evaluation.
type sweepPoint struct {
	eng     engine.Engine
	req     engine.Request
	seed    uint64
	phiFrac float64
	backend string // item label: "" for the default fast engine
	law     string // item label: "" for the default exponential law
	key     string
}

// defaultPhiFracs is the φ/R axis used when a sweep request leaves
// PhiFracs empty.
var defaultPhiFracs = []float64{0, 0.25, 0.5, 0.75, 1}

// expand validates the request, fills its defaults in place (callers
// rely on the normalized Runs), and returns the grid in deterministic
// order: backends × protocols × phiFracs × mtbfs.
func (s *Service) expand(req *SweepRequest) ([]sweepPoint, error) {
	base, err := req.Scenario.Resolve()
	if err != nil {
		return nil, err
	}
	// The correlation settings are MTBF-independent (relative weights,
	// absolute burst rate), so one resolution serves the whole grid;
	// layout feasibility against N stays per point in the backends.
	corr, err := req.Scenario.ResolveCorrelation(base)
	if err != nil {
		return nil, err
	}
	var trace *failure.Trace
	var traceID string
	if name := req.Scenario.Trace; name != "" {
		tr, id, ok := s.LookupTrace(name)
		if !ok {
			return nil, fmt.Errorf("api: unknown trace %q (server has %d registered)", name, len(s.TraceIDs()))
		}
		if tr.Nodes != base.N {
			// N is not a grid axis, so a platform-size mismatch fails the
			// whole request up front instead of degrading every point.
			return nil, fmt.Errorf("api: trace %q recorded for %d nodes, scenario has %d", name, tr.Nodes, base.N)
		}
		trace, traceID = tr, id
	}
	backendNames := req.Backends
	if len(backendNames) == 0 {
		backendNames = []string{req.Scenario.Backend}
	}
	engines := make([]engine.Engine, len(backendNames))
	for i, name := range backendNames {
		if engines[i], err = engine.ByName(name); err != nil {
			return nil, err
		}
		// Point-independent backend knobs are gated here, like the
		// protocol and law axes: a bad global level or substrate shape
		// is a 400 before any work, not a mid-stream abort.
		switch engines[i].Name() {
		case "multilevel":
			if req.Scenario.Global == nil {
				return nil, errors.New("api: multilevel backend needs scenario.global ({g, rg, k})")
			}
			g := engine.Global{G: req.Scenario.Global.G, Rg: req.Scenario.Global.Rg, K: req.Scenario.Global.K}
			if err := g.Validate(); err != nil {
				return nil, err
			}
		case "detailed":
			if req.Scenario.Spares < 0 || req.Scenario.ImageBytes < 0 {
				return nil, fmt.Errorf("api: detailed substrate knobs must be >= 0 (spares %d, imageBytes %d)",
					req.Scenario.Spares, req.Scenario.ImageBytes)
			}
		}
		// The correlation and trace axes are scenario-wide, so a backend
		// axis that cannot run them fails the request up front — same
		// policy as a bad global level.
		if trace != nil && engines[i].Name() != "detailed" {
			return nil, fmt.Errorf("api: trace replay requires the detailed backend (grid includes %q)", engines[i].Name())
		}
		if corr != nil && engines[i].Name() == "multilevel" {
			return nil, errors.New("api: correlated failures (domains/groups) are not supported by the multilevel backend")
		}
	}
	// Validate the law shape once up front; the per-point law is
	// re-resolved at each MTBF axis point below.
	if _, err := req.Scenario.ResolveLaw(base); err != nil {
		return nil, err
	}
	names := req.Protocols
	if len(names) == 0 {
		names = make([]string, len(core.Protocols))
		for i, pr := range core.Protocols {
			names[i] = pr.String()
		}
	}
	protocols := make([]core.Protocol, len(names))
	for i, name := range names {
		if protocols[i], err = core.ParseProtocol(name); err != nil {
			return nil, err
		}
	}
	phiFracs := req.PhiFracs
	if len(phiFracs) == 0 {
		phiFracs = defaultPhiFracs
	}
	for _, f := range phiFracs {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("api: phiFrac = %v must be in [0, 1]", f)
		}
	}
	mtbfs := req.MTBFs
	if len(mtbfs) == 0 {
		mtbfs = []float64{base.M}
	}
	for _, m := range mtbfs {
		if m <= 0 {
			return nil, fmt.Errorf("api: mtbf = %v must be > 0", m)
		}
	}
	if req.Tbase == 0 {
		req.Tbase = 1e5
	}
	if req.Tbase < 0 || req.Period < 0 {
		return nil, errors.New("api: tbase and period must be >= 0")
	}
	if req.Runs == 0 {
		req.Runs = 8
	}
	if req.Runs < 1 || req.Runs > s.maxRuns {
		return nil, fmt.Errorf("api: runs = %d must be in [1, %d]", req.Runs, s.maxRuns)
	}
	if req.TargetRelErr != 0 {
		if math.IsNaN(req.TargetRelErr) || req.TargetRelErr <= 0 || req.TargetRelErr >= 1 {
			return nil, fmt.Errorf("api: targetRelErr = %v must be in (0, 1)", req.TargetRelErr)
		}
		// The adaptive budget defaults to the service's per-point cap
		// and is normalized into the request, so two spellings of the
		// default dedupe to one job and one set of cache keys.
		if req.MaxRuns == 0 {
			req.MaxRuns = s.maxRuns
		}
		if req.MaxRuns < req.Runs || req.MaxRuns > s.maxRuns {
			return nil, fmt.Errorf("api: maxRuns = %d must be in [runs = %d, %d]",
				req.MaxRuns, req.Runs, s.maxRuns)
		}
		// Rounds are whole antithetic pairs: the first round rounds up,
		// the cap rounds down. A cap that cannot fit the rounded first
		// round (runs and maxRuns both odd and equal) is a request error
		// here — not a silent budget overrun, nor a mid-stream abort.
		if req.MaxRuns-(req.MaxRuns&1) < req.Runs+(req.Runs&1) {
			return nil, fmt.Errorf("api: maxRuns = %d cannot fit the first round (%d runs rounded up to whole antithetic pairs)",
				req.MaxRuns, req.Runs)
		}
	} else if req.MaxRuns != 0 {
		return nil, errors.New("api: maxRuns needs targetRelErr (adaptive precision)")
	}
	total := len(engines) * len(protocols) * len(phiFracs) * len(mtbfs)
	if total > s.maxGridPoints {
		return nil, fmt.Errorf("api: sweep grid has %d points, limit is %d", total, s.maxGridPoints)
	}
	// Write the resolved axes back into the request (fresh slices, so
	// a caller's arrays are never mutated): the job subsystem derives
	// its content key from the normalized request, and an omitted axis
	// must dedupe against its spelled-out default. ParseProtocol is
	// exact-match, so explicit protocol names are already canonical;
	// backends normalize through the engine ("" → "fast").
	req.Backends = make([]string, len(engines))
	for i, eng := range engines {
		req.Backends[i] = eng.Name()
	}
	req.Protocols = append([]string(nil), names...)
	req.PhiFracs = append([]float64(nil), phiFracs...)
	req.MTBFs = append([]float64(nil), mtbfs...)

	baseStream := rng.New(req.Seed)
	points := make([]sweepPoint, 0, total)
	for _, eng := range engines {
		for _, pr := range protocols {
			for _, frac := range phiFracs {
				for _, m := range mtbfs {
					p := base.WithMTBF(m)
					// Canonicalize φ before keying: DoubleBlocking pins
					// φ = R whatever the request asks, so its grid points
					// collapse to one cache entry (and one simulation) per
					// MTBF, and the cached item's content is fully
					// determined by the key.
					phi := core.EffectivePhi(pr, p, frac*p.R)
					law, lerr := req.Scenario.ResolveLaw(p)
					if lerr != nil {
						return nil, lerr
					}
					preq := engine.Request{
						Protocol: pr,
						Params:   p,
						Phi:      phi,
						Period:   req.Period,
						Tbase:    req.Tbase,
						Law:      law,
					}
					// Backend-specific knobs are threaded only into the
					// backend that reads them, so a fast point's key never
					// varies with, say, an irrelevant imageBytes override.
					switch eng.Name() {
					case "fast":
						preq.Correlation = corr
					case "detailed":
						// Normalized before keying: a spelled-out default
						// and an omitted field are the same physical point
						// (same key, same derived seed, same cache entry).
						preq.Spares, preq.ImageBytes = engine.NormalizeSubstrate(
							p, req.Scenario.Spares, req.Scenario.ImageBytes)
						preq.Correlation = corr
						preq.Trace, preq.TraceID = trace, traceID
					case "multilevel":
						g := req.Scenario.Global
						preq.Global = &engine.Global{G: g.G, Rg: g.Rg, K: g.K}
					}
					key := pointKey(eng.Name(), preq, req.Runs, req.Seed, req.precision())
					// The per-point seed depends only on the canonical key,
					// never on the grid position, so overlapping sweeps
					// resolve the same point to the same sample (and the
					// same cache entry).
					seed := baseStream.Split(fnv64(key)).Uint64()
					points = append(points, sweepPoint{
						eng:     eng,
						req:     preq,
						seed:    seed,
						phiFrac: phi / p.R,
						backend: backendLabel(eng),
						law:     lawLabel(law),
						key:     key,
					})
				}
			}
		}
	}
	return points, nil
}

// backendLabel is the item's backend echo: the canonical engine name,
// with the default fast engine rendered as the empty string (omitted
// from the JSON) so that default requests keep their historical wire
// format and the label is a pure function of the point key.
func backendLabel(eng engine.Engine) string {
	if eng.Name() == "fast" {
		return ""
	}
	return eng.Name()
}

// lawLabel is the item's law echo, empty (omitted) for the default
// exponential law — including an explicitly requested "exponential",
// which resolves to the same nil-law fast path and must share its
// cache entries.
func lawLabel(law failure.Law) string {
	if law == nil {
		return ""
	}
	return law.Name()
}

// batchKey canonicalizes the physical configuration of a sweep point:
// every field that influences the simulation trajectory, rendered with
// exact float encoding — but not the batch size or seed, so it also
// keys the compiled-batch cache shared across sweeps. The
// backend-specific fields (law, backend name, substrate shape, global
// level, horizon) are keyed only when they differ from the defaults,
// so the historical fast/exponential keys — and therefore the derived
// per-point seeds and golden responses — are unchanged.
func batchKey(backend string, req engine.Request) string {
	p := req.Params
	var b strings.Builder
	b.WriteString(req.Protocol.String())
	for _, f := range []float64{p.D, p.Delta, p.R, p.Alpha, p.M, req.Phi, req.Period, req.Tbase} {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(f, 'x', -1, 64))
	}
	fmt.Fprintf(&b, "|n=%d", p.N)
	if req.Law != nil {
		// %#v renders the concrete law with all its parameters (Name()
		// alone omits the law's MTBF).
		fmt.Fprintf(&b, "|law=%#v", req.Law)
	}
	if req.MaxSimTime != 0 {
		fmt.Fprintf(&b, "|maxt=%s", strconv.FormatFloat(req.MaxSimTime, 'x', -1, 64))
	}
	if backend != "" && backend != "fast" {
		fmt.Fprintf(&b, "|backend=%s", backend)
	}
	if req.ImageBytes != 0 {
		fmt.Fprintf(&b, "|img=%d", req.ImageBytes)
	}
	if req.Spares != 0 {
		fmt.Fprintf(&b, "|spares=%d", req.Spares)
	}
	if req.Global != nil {
		fmt.Fprintf(&b, "|g=%s|rg=%s|k=%d",
			strconv.FormatFloat(req.Global.G, 'x', -1, 64),
			strconv.FormatFloat(req.Global.Rg, 'x', -1, 64),
			req.Global.K)
	}
	if c := req.Correlation; c != nil {
		if d := c.Domains; d != nil {
			fmt.Fprintf(&b, "|dom=%d:%s", d.Size, strconv.FormatFloat(d.Rate, 'x', -1, 64))
			if d.Stripe {
				b.WriteString(":stripe")
			}
		}
		if len(c.Groups) > 0 {
			b.WriteString("|groups=")
			for i, w := range c.Groups {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatFloat(w, 'x', -1, 64))
			}
		}
	}
	if req.TraceID != "" {
		// The content id (name@digest), not the trace bytes: re-binding a
		// name to a different log changes the id, so it can never alias a
		// cached point.
		b.WriteString("|trace=")
		b.WriteString(req.TraceID)
	}
	return b.String()
}

// pointKey canonicalizes a sweep point into the cache key: the
// physical configuration plus the batch shape. Two requests that
// resolve to the same physical point — whatever scenario name,
// override set or grid shape produced it — share a key. The adaptive
// precision spec is keyed only when enabled, so fixed-budget requests
// keep their historical keys (and therefore their derived per-point
// seeds and golden byte responses) unchanged.
func pointKey(backend string, req engine.Request, runs int, baseSeed uint64, spec engine.Precision) string {
	key := batchKey(backend, req) + fmt.Sprintf("|runs=%d|seed=%d", runs, baseSeed)
	if spec.Enabled() {
		key += fmt.Sprintf("|relerr=%s|maxruns=%d",
			strconv.FormatFloat(spec.TargetRelErr, 'x', -1, 64), spec.MaxRuns)
	}
	return key
}

// fnv64 is the FNV-1a hash of s, used to key rng.Stream.Split.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// evaluate computes one grid point, consulting the cache first. A
// zero spec runs the historical fixed budget; an enabled spec runs the
// adaptive-precision executor and additionally fills the RunsUsed /
// CI95 echoes.
func (s *Service) evaluate(pt sweepPoint, runs int, spec engine.Precision, simWorkers int) (SweepItem, bool, error) {
	if item, ok := s.cache.Get(pt.key); ok {
		return item, true, nil
	}
	p, pr := pt.req.Params, pt.req.Protocol
	item := SweepItem{
		Protocol:   pr.String(),
		Backend:    pt.backend,
		Law:        pt.law,
		PhiFrac:    pt.phiFrac,
		MTBF:       p.M,
		Seed:       pt.seed,
		Runs:       runs,
		RiskWindow: core.RiskWindow(pr, p, pt.req.Phi),
	}
	// Resolve the period (and, for multilevel, the plan) up front so
	// infeasible points — MTBF too small for any progress, a fixed
	// period below this protocol's MinPeriod, no feasible two-level
	// plan — become Feasible=false items instead of either burning the
	// full MaxSimTime horizon or aborting the rest of the grid.
	resolved, err := pt.eng.Resolve(pt.req)
	if err != nil {
		if errors.Is(err, engine.ErrInfeasible) {
			item.Period = resolved.Period
			item.ModelWaste = 1
			item.ModelLoss = core.FailureLoss(pr, p, pt.req.Phi, resolved.Period)
			s.cache.Put(pt.key, item)
			return item, false, nil
		}
		return SweepItem{}, false, fmt.Errorf("api: point %s: %w", pt.key, err)
	}
	s.simPoints.Add(1)
	// The compiled batch is keyed by the physical configuration (with
	// the period and plan resolved), so grid rows that collapse to one
	// physical point and repeated sweeps with different seeds or batch
	// sizes share one compilation — whatever the backend.
	b, err := s.batches.get(batchKey(pt.eng.Name(), resolved), pt.eng, resolved)
	if err != nil {
		return SweepItem{}, false, fmt.Errorf("api: point %s: %w", pt.key, err)
	}
	var row experiments.ValidationRow
	if spec.Enabled() {
		var ar engine.AdaptiveResult
		row, ar, err = experiments.ValidateAdaptive(b, pt.seed, spec, simWorkers)
		if err == nil {
			item.RunsUsed = ar.RunsUsed
			item.CI95 = ar.CI95
		}
	} else {
		row, err = experiments.ValidateBatch(b, pt.seed, runs, simWorkers)
	}
	if err != nil {
		return SweepItem{}, false, fmt.Errorf("api: point %s: %w", pt.key, err)
	}
	item.Feasible = row.ModelWaste < 1
	item.Period = row.Period
	item.ModelWaste = row.ModelWaste
	item.ModelLoss = row.ModelLoss
	item.SimWaste = row.SimWaste
	item.SimCI = row.SimCI
	item.SimLoss = row.SimLoss
	item.FatalRate = row.FatalRate
	item.CompletedRate = row.CompletedRate
	item.ImportanceFatal = row.ImportanceFatal
	s.cache.Put(pt.key, item)
	return item, false, nil
}

// SweepStream expands the request's grid, evaluates it across the
// service's shared priority pool at interactive priority, and emits
// the items in grid order as each becomes ready (the first items of a
// large sweep stream while the rest still compute). emit runs on the
// caller's goroutine; an emit error or a cancelled ctx aborts the
// sweep, and no further grid points are admitted to the pool (a
// disconnected client does not keep burning CPU on the rest of the
// grid).
func (s *Service) SweepStream(ctx context.Context, req SweepRequest, emit func(SweepItem) error) (SweepStats, error) {
	return s.SweepStreamFrom(ctx, req, 0, jobs.Interactive, nil, emit)
}

// SweepStreamFrom is the one execution engine behind both the
// synchronous /v1/sweep path and the durable /v1/jobs path: it
// evaluates the expanded grid from point `offset` on (the points
// before it are already durable when a job resumes), admitting each
// point to the service-wide priority pool at priority pr. onExpand, if
// non-nil, receives the full grid size after validation and before any
// evaluation; returning an error from it aborts the sweep. The emitted
// item sequence is deterministic — grid order, content-keyed seeds —
// so any suffix of it is bitwise reproducible from its offset.
func (s *Service) SweepStreamFrom(ctx context.Context, req SweepRequest, offset int, pr jobs.Priority, onExpand func(total int) error, emit func(SweepItem) error) (SweepStats, error) {
	return s.sweepRange(ctx, req, offset, -1, pr, onExpand, emit)
}

// SweepStreamRange evaluates the half-open point range
// [offset, offset+limit) of the request's grid (limit < 0 selects the
// rest of the grid) in grid order. It is the worker side of the
// distributed fabric: a coordinator partitions the grid's point keys
// and dispatches each contiguous range to one worker through this
// entry point, and because per-point seeds are content-keyed — never
// position-dependent — the emitted items are bitwise identical to the
// same slice of a single-node run. A limit overshooting the grid is
// truncated, so a range dispatch and its grid agree on the boundary
// without an extra round trip.
func (s *Service) SweepStreamRange(ctx context.Context, req SweepRequest, offset, limit int, pr jobs.Priority, emit func(SweepItem) error) (SweepStats, error) {
	return s.sweepRange(ctx, req, offset, limit, pr, nil, emit)
}

// PointKeys expands the request and returns the canonical content key
// of every grid point, in grid order. The keys are what the fabric
// coordinator partitions across workers: a point's key (and therefore
// its derived seed and its evaluated bytes) is independent of the grid
// position and of which node evaluates it.
func (s *Service) PointKeys(req SweepRequest) ([]string, error) {
	points, err := s.expand(&req)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(points))
	for i, pt := range points {
		keys[i] = pt.key
	}
	return keys, nil
}

// sweepRange is the shared range executor behind SweepStreamFrom
// (limit < 0) and SweepStreamRange.
func (s *Service) sweepRange(ctx context.Context, req SweepRequest, offset, limit int, pr jobs.Priority, onExpand func(total int) error, emit func(SweepItem) error) (SweepStats, error) {
	points, err := s.expand(&req) // normalizes req.Runs for the evaluations below
	if err != nil {
		return SweepStats{}, err
	}
	stats := SweepStats{Points: len(points)}
	if onExpand != nil {
		if err := onExpand(len(points)); err != nil {
			return stats, err
		}
	}
	if offset < 0 || offset > len(points) {
		return stats, fmt.Errorf("api: resume offset %d outside the %d-point grid", offset, len(points))
	}
	points = points[offset:]
	if limit >= 0 && limit < len(points) {
		points = points[:limit]
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type slot struct {
		item   SweepItem
		cached bool
		err    error
	}
	slots := make([]slot, len(points))
	ready := make([]chan struct{}, len(points))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	// The feeder admits points to the shared pool in grid order: one
	// blocking token per point (priority-ordered against every other
	// in-flight sweep and job), plus opportunistically grabbed idle
	// tokens so the batch executor can fan the point's runs out on a
	// quiet machine — the concurrent simulation goroutines never exceed
	// the service's Workers budget, whatever the number of in-flight
	// requests.
	go func() {
		for i := range points {
			if err := s.pool.Acquire(ctx, pr); err != nil {
				slots[i] = slot{err: err}
				close(ready[i])
				continue // ctx is dead; fail the rest without blocking
			}
			held := 1
			for held < req.Runs && s.pool.TryAcquire() {
				held++
			}
			go func(i, held int) {
				item, cached, err := s.evaluate(points[i], req.Runs, req.precision(), held)
				for j := 0; j < held; j++ {
					s.pool.Release()
				}
				slots[i] = slot{item: item, cached: cached, err: err}
				close(ready[i])
			}(i, held)
		}
	}()

	for i := range points {
		select {
		case <-ready[i]:
		case <-ctx.Done():
			return stats, ctx.Err()
		}
		if slots[i].err != nil {
			return stats, slots[i].err
		}
		if slots[i].cached {
			stats.CacheHits++
		} else {
			stats.CacheMisses++
		}
		if err := emit(slots[i].item); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// Sweep is SweepStream collected into a slice, for the non-streaming
// JSON response and for library callers.
func (s *Service) Sweep(ctx context.Context, req SweepRequest) ([]SweepItem, SweepStats, error) {
	items := make([]SweepItem, 0, 16)
	stats, err := s.SweepStream(ctx, req, func(item SweepItem) error {
		items = append(items, item)
		return nil
	}) // req is a value; SweepStream normalizes its own copy
	if err != nil {
		return nil, stats, err
	}
	return items, stats, nil
}
