package api

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/scenario"
)

// FuzzSpecDecode fuzzes the strict JSON decoding of scenario.Spec —
// the surface every request body funnels a platform description
// through — and the resolution pipeline behind it. The contract under
// fuzz: no panics anywhere; a document that decodes must resolve
// either to a platform that passes core.Params.Validate or to an
// error; and both decode and resolve are deterministic (the content-
// keyed job dedupe depends on that). The seed corpus is the committed
// golden bodies in internal/api/testdata plus the spec shapes the
// tests exercise.
func FuzzSpecDecode(f *testing.F) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, seed := range []string{
		`{}`,
		`{"name": "Base", "mtbf": 7200}`,
		`{"name": "Exa", "d": 30, "delta": 15, "r": 30, "alpha": 5, "n": 1024}`,
		`{"backend": "detailed", "n": 96, "spares": 4, "imageBytes": 1048576}`,
		`{"backend": "multilevel", "global": {"g": 200, "rg": 100, "k": 3}}`,
		`{"law": "weibull", "shape": 0.7}`,
		`{"law": "lognormal", "shape": 1.5}`,
		`{"name": "Peta"}`,
		`{"mtbf": -1}`,
		`{"backned": "detailed"}`,
		`{"n": 0, "law": "weibull"}`,
		// PR 5 adaptive-precision request fields: they belong to the
		// sweep request, not the platform spec, so the strict Spec decode
		// must reject them — the corpus pins that rejection path and
		// hands the fuzzer the new vocabulary to mutate.
		`{"targetRelErr": 0.05, "maxRuns": 64}`,
		`{"name": "Base", "targetRelErr": 1e-3}`,
		`{"maxRuns": -1}`,
		`{"targetRelErr": "0.05"}`,
		// PR 9 correlation/trace vocabulary: valid shapes plus the value
		// errors ResolveCorrelation must reject without panicking.
		`{"domains": {"size": 8, "burstRate": 1e-5}}`,
		`{"domains": {"size": 4, "burstRate": 0.0002, "placement": "stripe"}, "n": 96}`,
		`{"domains": {"size": 0, "burstRate": 1}}`,
		`{"domains": {"size": 8, "burstRate": -1}}`,
		`{"domains": {"size": 8, "burstRate": 1e-5, "placement": "ring"}}`,
		`{"groups": [2, 1]}`,
		`{"groups": [1, -1]}`,
		`{"groups": []}`,
		`{"trace": "cronos"}`,
		`{"trace": "cronos", "backend": "detailed", "n": 96}`,
		`{"domains": {"burstRate": "fast"}}`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var spec scenario.Spec
		if err := decodeStrict(bytes.NewReader(data), &spec); err != nil {
			return // a decode error is the expected rejection path
		}
		p, err := spec.Resolve()
		p2, err2 := spec.Resolve()
		if (err == nil) != (err2 == nil) || p != p2 {
			t.Fatalf("Resolve is nondeterministic: (%+v, %v) vs (%+v, %v)", p, err, p2, err2)
		}
		if err != nil {
			return // rejected platforms are fine; panics are not
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("resolved platform fails validation: %+v: %v", p, verr)
		}
		law, lerr := spec.ResolveLaw(p)
		law2, lerr2 := spec.ResolveLaw(p)
		if (lerr == nil) != (lerr2 == nil) || !reflect.DeepEqual(law, law2) {
			t.Fatalf("ResolveLaw is nondeterministic: (%v, %v) vs (%v, %v)", law, lerr, law2, lerr2)
		}
		corr, cerr := spec.ResolveCorrelation(p)
		corr2, cerr2 := spec.ResolveCorrelation(p)
		if (cerr == nil) != (cerr2 == nil) || !reflect.DeepEqual(corr, corr2) {
			t.Fatalf("ResolveCorrelation is nondeterministic: (%v, %v) vs (%v, %v)", corr, cerr, corr2, cerr2)
		}
		if cerr == nil && corr != nil && corr.IID() {
			// A non-nil resolution must carry at least one active axis;
			// IID()==true would silently bypass the correlated engine.
			t.Fatalf("ResolveCorrelation returned a non-nil i.i.d. correlation for %+v", spec)
		}
		if _, berr := engine.ByName(spec.Backend); berr != nil {
			return // unknown backend is a request error
		}
		// A resolvable spec with a known backend and law must survive the
		// cheap engine feasibility gate without panicking: the outcome is
		// either a resolved request, ErrInfeasible, or a request error —
		// never a crash.
		if lerr != nil {
			return
		}
		eng, _ := engine.ByName(spec.Backend)
		req := engine.Request{
			Protocol: 0, // DoubleBlocking, always a valid protocol
			Params:   p,
			Phi:      p.R,
			Tbase:    1e4,
			Law:      law,
		}
		if eng.Name() == "multilevel" {
			if spec.Global == nil {
				return
			}
			req.Global = &engine.Global{G: spec.Global.G, Rg: spec.Global.Rg, K: spec.Global.K}
		}
		eng.Resolve(req) // outcome may be any error; it must return
	})
}
