package api

import (
	"container/list"
	"sync"
)

// Cache is a bounded, thread-safe LRU of sweep-point results, keyed by
// the canonical point key (see pointKey). Repeated hot queries — the
// same grid point appearing in overlapping sweeps, or an identical
// sweep re-submitted — are served from it without touching the
// simulator.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key  string
	item SweepItem
}

// NewCache returns an LRU cache holding up to capacity entries.
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached item for key and marks it most recently used.
func (c *Cache) Get(key string) (SweepItem, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return SweepItem{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).item, true
}

// Put stores the item under key, evicting the least recently used
// entry when the cache is full.
func (c *Cache) Put(key string, item SweepItem) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).item = item
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, item: item})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
