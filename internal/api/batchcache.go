package api

import (
	"container/list"
	"sync"

	"repro/internal/engine"
)

// batchCache is a bounded, thread-safe LRU of compiled evaluation
// batches (engine.Batch) keyed by the physical configuration — the
// point key minus the runs and seed fields, plus the backend. Grid
// rows that collapse to the same physical point (DoubleBlocking's
// pinned φ), and repeated sweeps over the same grid with different
// seeds or batch sizes, reuse one compilation (protocol phases,
// optimal period, multilevel plan, detailed substrate shapes) instead
// of recompiling per evaluation.
type batchCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type batchEntry struct {
	key string
	b   engine.Batch
}

// newBatchCache returns an LRU cache holding up to capacity compiled
// batches. capacity <= 0 disables reuse (every get compiles).
func newBatchCache(capacity int) *batchCache {
	return &batchCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the compiled batch for key, compiling req with eng on a
// miss. Compilation runs outside the lock; a concurrent double-compile
// of the same key is benign (batches are immutable) and the first
// stored entry wins.
func (c *batchCache) get(key string, eng engine.Engine, req engine.Request) (engine.Batch, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		b := el.Value.(*batchEntry).b
		c.mu.Unlock()
		return b, nil
	}
	c.mu.Unlock()

	b, err := eng.Compile(req)
	if err != nil {
		return nil, err
	}
	if c.cap <= 0 {
		return b, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*batchEntry).b, nil
	}
	c.items[key] = c.ll.PushFront(&batchEntry{key: key, b: b})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*batchEntry).key)
	}
	return b, nil
}

// len returns the number of cached batches.
func (c *batchCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
