// Package api is the transport-agnostic evaluation service over the
// paper's model: it turns JSON requests into calls on internal/core
// (closed-form waste and risk), internal/optimize (numeric period
// cross-check) and internal/sim (Monte-Carlo sweeps), and returns
// plain response structs that any transport can encode. cmd/serve
// mounts it behind HTTP via NewServer.
//
// The request lifecycle, the sweep engine's worker layout and the
// cache-key canonicalization are documented in DESIGN.md, "API request
// lifecycle". All responses are deterministic: for a fixed request
// (including its seed) the encoded bytes are identical across calls,
// worker counts and processes, which is what makes the sweep cache
// sound.
package api

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/jobs"
	"repro/internal/optimize"
	"repro/internal/scenario"
)

// Options configures a Service. The zero value selects sensible
// defaults for every field.
type Options struct {
	// CacheSize bounds the sweep-point LRU cache (default 4096
	// entries, <= -1 disables caching).
	CacheSize int
	// Workers bounds the sweep engine's concurrent grid-point
	// evaluations, shared across all in-flight requests (default
	// GOMAXPROCS).
	Workers int
	// MaxGridPoints rejects sweep requests whose expanded grid exceeds
	// this size (default 4096).
	MaxGridPoints int
	// MaxRuns caps the Monte-Carlo runs per sweep point (default 256).
	MaxRuns int
}

// Service evaluates model and simulation queries. It is safe for
// concurrent use; the only mutable state is the sweep cache and the
// simulation counter.
type Service struct {
	cache *Cache
	// batches reuses compiled simulation batches across grid rows and
	// requests that resolve to the same physical configuration.
	batches       *batchCache
	maxGridPoints int
	maxRuns       int
	// pool bounds concurrent sweep-point evaluations SERVICE-wide and
	// priority-aware: N simultaneous sweeps — synchronous requests and
	// background jobs alike — share the Workers budget instead of each
	// claiming the whole machine, and interactive waiters are admitted
	// before queued job points.
	pool *jobs.Pool
	// jobs holds the optional durable job manager behind /v1/jobs (nil
	// until AttachJobs). It is an atomic pointer because HA promotion
	// attaches a manager to a long-running standby's service — and a
	// fenced leader detaches its closing one — while request handlers
	// race the swap.
	jobs atomic.Pointer[jobs.Manager]
	// simPoints counts sweep points actually simulated (cache misses);
	// tests and the /healthz endpoint use it to prove cache hits skip
	// the simulator.
	simPoints atomic.Uint64
	// traces holds the server-registered failure traces a sweep's
	// scenario.trace field may name. Registration is content-addressed:
	// each trace carries an id of the form name@digest (a sha256 prefix
	// of its canonical JSON), and the id — never the bare name — enters
	// the point keys, so re-registering a different log under an old
	// name can never alias a cached result.
	tracesMu sync.RWMutex
	traces   map[string]registeredTrace
}

// registeredTrace is one named failure trace plus its content id.
type registeredTrace struct {
	tr *failure.Trace
	id string
}

// NewService returns a Service with the given options.
func NewService(opt Options) *Service {
	if opt.CacheSize == 0 {
		opt.CacheSize = 4096
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.MaxGridPoints <= 0 {
		opt.MaxGridPoints = 4096
	}
	if opt.MaxRuns <= 0 {
		opt.MaxRuns = 256
	}
	return &Service{
		cache:         NewCache(opt.CacheSize),
		batches:       newBatchCache(opt.MaxGridPoints),
		maxGridPoints: opt.MaxGridPoints,
		maxRuns:       opt.MaxRuns,
		pool:          jobs.NewPool(opt.Workers),
	}
}

// AttachJobs wires the durable job manager into the service's /v1/jobs
// endpoints (mounted by NewServer; they answer 503 until a manager is
// attached). The manager must have been built with this service's
// JobExecutor and NormalizeJobRequest, so both the synchronous and the
// job path run through one execution engine. Safe to call on a live
// server — a promoted standby attaches its manager mid-flight.
func (s *Service) AttachJobs(mgr *jobs.Manager) { s.jobs.Store(mgr) }

// DetachJobs unwires the job manager: a fenced ex-leader detaches its
// closing manager so /v1/jobs requests answer 503 (retryable against
// the new leader) instead of racing a shutdown.
func (s *Service) DetachJobs() { s.jobs.Store(nil) }

// Jobs returns the attached job manager (nil when jobs are disabled or
// the node is an unpromoted standby).
func (s *Service) Jobs() *jobs.Manager { return s.jobs.Load() }

// RegisterTrace validates tr and registers it under name for replay
// through the sweep's scenario.trace axis. The returned id is
// name@digest, where digest is a sha256 prefix of the trace's
// canonical JSON encoding; it keys every sweep point that replays the
// trace, so results stay content-addressed even if the name is later
// rebound. Registering an existing name replaces it.
func (s *Service) RegisterTrace(name string, tr *failure.Trace) (string, error) {
	if name == "" {
		return "", errors.New("api: trace name must be non-empty")
	}
	if err := tr.Validate(); err != nil {
		return "", fmt.Errorf("api: trace %q: %w", name, err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		return "", fmt.Errorf("api: trace %q: %w", name, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	id := name + "@" + hex.EncodeToString(sum[:6])
	s.tracesMu.Lock()
	defer s.tracesMu.Unlock()
	if s.traces == nil {
		s.traces = make(map[string]registeredTrace)
	}
	s.traces[name] = registeredTrace{tr: tr, id: id}
	return id, nil
}

// LookupTrace returns the trace registered under name and its content
// id, or ok=false when no such trace exists.
func (s *Service) LookupTrace(name string) (*failure.Trace, string, bool) {
	s.tracesMu.RLock()
	defer s.tracesMu.RUnlock()
	rt, ok := s.traces[name]
	return rt.tr, rt.id, ok
}

// TraceIDs lists the registered traces as their content ids
// (name@digest), sorted by name, for diagnostics endpoints.
func (s *Service) TraceIDs() []string {
	s.tracesMu.RLock()
	defer s.tracesMu.RUnlock()
	ids := make([]string, 0, len(s.traces))
	for _, rt := range s.traces {
		ids = append(ids, rt.id)
	}
	sort.Strings(ids)
	return ids
}

// Cache returns the sweep-point cache (for stats reporting).
func (s *Service) Cache() *Cache { return s.cache }

// SimPoints returns how many sweep points have been simulated (cache
// misses) since the service started.
func (s *Service) SimPoints() uint64 { return s.simPoints.Load() }

// PointRequest is the JSON request shared by the closed-form
// endpoints: a platform spec, a protocol, and the model coordinates.
type PointRequest struct {
	// Scenario describes the platform (Table I row plus overrides).
	Scenario scenario.Spec `json:"scenario"`
	// Protocol is the figure name: DoubleBlocking, DoubleNBL,
	// DoubleBoF, Triple or TripleBoF.
	Protocol string `json:"protocol"`
	// PhiFrac is the overhead point φ/R in [0, 1].
	PhiFrac float64 `json:"phiFrac"`
	// Period is the checkpointing period in seconds; 0 selects the
	// model-optimal period (Eq. 9/10/15).
	Period float64 `json:"period,omitempty"`
	// Tbase is the failure-free application duration, used by /v1/waste
	// for the expected-runtime projection (Eq. 3). 0 omits it.
	Tbase float64 `json:"tbase,omitempty"`
	// Life is the horizon t of the success probability (Eq. 11/16),
	// used by /v1/risk. 0 falls back to Tbase.
	Life float64 `json:"life,omitempty"`
}

// resolve validates the request and returns the model coordinates.
func (r *PointRequest) resolve() (core.Protocol, core.Params, float64, error) {
	pr, err := core.ParseProtocol(r.Protocol)
	if err != nil {
		return 0, core.Params{}, 0, err
	}
	p, err := r.Scenario.Resolve()
	if err != nil {
		return 0, core.Params{}, 0, err
	}
	if r.PhiFrac < 0 || r.PhiFrac > 1 {
		return 0, core.Params{}, 0, fmt.Errorf("api: phiFrac = %v must be in [0, 1]", r.PhiFrac)
	}
	if r.Period < 0 {
		return 0, core.Params{}, 0, fmt.Errorf("api: period = %v must be >= 0", r.Period)
	}
	return pr, p, r.PhiFrac * p.R, nil
}

// ParamsJSON is the resolved platform echoed in every response, so a
// client sees exactly which Table I row plus overrides was evaluated.
type ParamsJSON struct {
	D     float64 `json:"d"`
	Delta float64 `json:"delta"`
	R     float64 `json:"r"`
	Alpha float64 `json:"alpha"`
	N     int     `json:"n"`
	MTBF  float64 `json:"mtbf"`
}

func paramsJSON(p core.Params) ParamsJSON {
	return ParamsJSON{D: p.D, Delta: p.Delta, R: p.R, Alpha: p.Alpha, N: p.N, MTBF: p.M}
}

// PhasesJSON is the period split of Fig. 1/3.
type PhasesJSON struct {
	Ckpt1   float64 `json:"ckpt1"`
	Ckpt2   float64 `json:"ckpt2"`
	Compute float64 `json:"compute"`
}

// WasteResponse is the /v1/waste response: the full waste breakdown of
// Eq. 4-8/13-14 at the requested (or optimal) period.
type WasteResponse struct {
	Protocol  string     `json:"protocol"`
	Params    ParamsJSON `json:"params"`
	Phi       float64    `json:"phi"`
	Theta     float64    `json:"theta"`
	Period    float64    `json:"period"`
	Phases    PhasesJSON `json:"phases"`
	WasteFF   float64    `json:"wasteFF"`
	WasteFail float64    `json:"wasteFail"`
	Waste     float64    `json:"waste"`
	Loss      float64    `json:"loss"`
	Feasible  bool       `json:"feasible"`
	// ExpectedRuntime is Tbase/(1-WASTE) (Eq. 3), present when the
	// request carries a tbase and the point is feasible.
	ExpectedRuntime float64 `json:"expectedRuntime,omitempty"`
}

// Waste evaluates the closed-form waste model at one point.
func (s *Service) Waste(req PointRequest) (WasteResponse, error) {
	pr, p, phi, err := req.resolve()
	if err != nil {
		return WasteResponse{}, err
	}
	phi = core.EffectivePhi(pr, p, phi)
	resp := WasteResponse{
		Protocol: pr.String(),
		Params:   paramsJSON(p),
		Phi:      phi,
		Theta:    p.Theta(phi),
		Feasible: true,
	}
	period := req.Period
	if period == 0 {
		period, err = core.OptimalPeriod(pr, p, phi)
		if err != nil {
			if !errors.Is(err, core.ErrMTBFTooSmall) {
				return WasteResponse{}, err
			}
			resp.Feasible = false
		}
	}
	resp.Period = period
	ph, err := core.PeriodPhases(pr, p, phi, period)
	if err != nil {
		return WasteResponse{}, fmt.Errorf("api: period %v: %w", period, err)
	}
	resp.Phases = PhasesJSON{Ckpt1: ph.Ckpt1, Ckpt2: ph.Ckpt2, Compute: ph.Compute}
	resp.WasteFF = core.WasteFF(pr, p, phi, period)
	resp.WasteFail = core.WasteFail(pr, p, phi, period)
	resp.Loss = core.FailureLoss(pr, p, phi, period)
	w, err := core.Waste(pr, p, phi, period)
	if err != nil {
		return WasteResponse{}, err
	}
	resp.Waste = w
	if w >= 1 {
		resp.Feasible = false
	}
	if req.Tbase > 0 && resp.Feasible {
		resp.ExpectedRuntime = req.Tbase / (1 - w)
	}
	return resp, nil
}

// OptimumResponse is the /v1/optimum response: the closed-form optimal
// period (Eq. 9/10/15) against its direct numeric minimization.
type OptimumResponse struct {
	Protocol string     `json:"protocol"`
	Params   ParamsJSON `json:"params"`
	Phi      float64    `json:"phi"`
	// Period is the closed-form optimal period.
	Period float64 `json:"period"`
	// NumericPeriod minimizes Eq. 5 directly by golden section,
	// standing in for the paper's Maple cross-check (§III.B).
	NumericPeriod float64 `json:"numericPeriod"`
	// PeriodGap is |Period-NumericPeriod|/NumericPeriod, the
	// first-order approximation error of the closed form.
	PeriodGap float64    `json:"periodGap"`
	MinPeriod float64    `json:"minPeriod"`
	Phases    PhasesJSON `json:"phases"`
	Waste     float64    `json:"waste"`
	// NumericWaste is the waste at NumericPeriod (always <= Waste up
	// to the solver tolerance).
	NumericWaste float64 `json:"numericWaste"`
	Feasible     bool    `json:"feasible"`
}

// Optimum evaluates the optimal-period model at one point.
func (s *Service) Optimum(req PointRequest) (OptimumResponse, error) {
	pr, p, phi, err := req.resolve()
	if err != nil {
		return OptimumResponse{}, err
	}
	if req.Period != 0 {
		return OptimumResponse{}, errors.New("api: optimum request must not fix a period")
	}
	phi = core.EffectivePhi(pr, p, phi)
	resp := OptimumResponse{
		Protocol:  pr.String(),
		Params:    paramsJSON(p),
		Phi:       phi,
		MinPeriod: core.MinPeriod(pr, p, phi),
		Feasible:  true,
	}
	period, err := core.OptimalPeriod(pr, p, phi)
	resp.Period = period
	if err != nil {
		if !errors.Is(err, core.ErrMTBFTooSmall) {
			return OptimumResponse{}, err
		}
		resp.Feasible = false
		resp.NumericPeriod = period
		resp.Waste = 1
		resp.NumericWaste = 1
		return resp, nil
	}
	// Cross-check the closed form by minimizing Eq. 5 directly: the
	// waste is unimodal in the period, and the closed form is within a
	// small factor of the true optimum wherever the model is feasible,
	// so [MinPeriod, max(4·closed, 8·MinPeriod)] brackets it.
	waste := func(period float64) float64 {
		w, werr := core.Waste(pr, p, phi, period)
		if werr != nil {
			return 1
		}
		return w
	}
	numeric, numericWaste := optimize.MinimizeUnimodal(
		waste, resp.MinPeriod, math.Max(4*period, 8*resp.MinPeriod))
	resp.NumericPeriod = numeric
	resp.NumericWaste = numericWaste
	resp.PeriodGap = math.Abs(period-numeric) / numeric
	if ph, err := core.PeriodPhases(pr, p, phi, period); err == nil {
		resp.Phases = PhasesJSON{Ckpt1: ph.Ckpt1, Ckpt2: ph.Ckpt2, Compute: ph.Compute}
	}
	resp.Waste = core.OptimalWaste(pr, p, phi)
	if resp.Waste >= 1 {
		resp.Feasible = false
	}
	return resp, nil
}

// RiskResponse is the /v1/risk response: the risk-window and
// success-probability model of §III.C/§V.C (Eq. 11, 12, 16).
type RiskResponse struct {
	Protocol string     `json:"protocol"`
	Params   ParamsJSON `json:"params"`
	Phi      float64    `json:"phi"`
	// Life is the horizon t the probabilities refer to.
	Life float64 `json:"life"`
	// RiskWindow is the post-failure window during which a second
	// (third) failure in the buddy group is fatal.
	RiskWindow float64 `json:"riskWindow"`
	// SuccessProb is Eq. 11 (double) or Eq. 16 (triple).
	SuccessProb float64 `json:"successProb"`
	FatalProb   float64 `json:"fatalProb"`
	// RunsTolerated is the expected number of length-Life executions
	// before the first fatal failure, 1/FatalProb. It is omitted when
	// the fatal probability is 0 to working precision (the count is
	// infinite, which JSON cannot carry).
	RunsTolerated *float64 `json:"runsTolerated,omitempty"`
	// BaseSuccessProb is the no-checkpointing baseline (Eq. 12), where
	// any failure is fatal.
	BaseSuccessProb float64 `json:"baseSuccessProb"`
}

// Risk evaluates the success-probability model at one point.
func (s *Service) Risk(req PointRequest) (RiskResponse, error) {
	pr, p, phi, err := req.resolve()
	if err != nil {
		return RiskResponse{}, err
	}
	life := req.Life
	if life == 0 {
		life = req.Tbase
	}
	if life <= 0 {
		return RiskResponse{}, errors.New("api: risk request needs a positive life (or tbase) horizon")
	}
	phi = core.EffectivePhi(pr, p, phi)
	success := core.SuccessProbability(pr, p, phi, life)
	resp := RiskResponse{
		Protocol:        pr.String(),
		Params:          paramsJSON(p),
		Phi:             phi,
		Life:            life,
		RiskWindow:      core.RiskWindow(pr, p, phi),
		SuccessProb:     success,
		FatalProb:       1 - success,
		BaseSuccessProb: core.BaseSuccessProbability(p, life),
	}
	if runs := core.RunsTolerated(pr, p, phi, life); !math.IsInf(runs, 0) {
		resp.RunsTolerated = &runs
	}
	return resp, nil
}
