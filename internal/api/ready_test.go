package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
)

// readyBody decodes one /readyz response.
type readyBody struct {
	Ready    bool        `json:"ready"`
	Degraded bool        `json:"degraded"`
	Jobs     *jobs.Stats `json:"jobs"`
}

func getReady(t *testing.T, ts *httptest.Server) (int, readyBody) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body readyBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReadyWithoutJobs: a bare service is ready, never degraded, and
// reports no job stats.
func TestReadyWithoutJobs(t *testing.T) {
	ts := httptest.NewServer(NewServer(NewService(Options{})))
	defer ts.Close()
	status, body := getReady(t, ts)
	if status != http.StatusOK || !body.Ready || body.Degraded || body.Jobs != nil {
		t.Fatalf("bare /readyz: status %d, body %+v", status, body)
	}
}

// TestReadyReportsSaturationAndShedsSubmissions drives the whole
// load-shedding surface: a saturated job queue turns /readyz degraded
// (while /healthz stays plain ok), new submissions bounce with 503 +
// Retry-After, deduped resubmissions still pass, and draining the
// queue clears the degradation.
func TestReadyReportsSaturationAndShedsSubmissions(t *testing.T) {
	svc := NewService(Options{})
	gate := make(chan struct{})
	real := svc.JobExecutor()
	mgr, err := jobs.NewManager(jobs.Config{
		Dir:           t.TempDir(),
		MaxConcurrent: 1,
		MaxQueued:     1,
		Normalize:     svc.NormalizeJobRequest,
		Exec: func(ctx context.Context, request []byte, offset int, start func(int) error, emit func([]byte) error) error {
			select {
			case <-gate:
			case <-ctx.Done():
				return ctx.Err()
			}
			return real(ctx, request, offset, start, emit)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	svc.AttachJobs(mgr)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	defer close(gate)

	submit := func(seed int) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"scenario": {"mtbf": 1800}, "tbase": 1000, "runs": 1, "seed": %d}`, seed)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Job 1 occupies the single runner (blocked at the gate), job 2
	// fills the queue.
	submit(1).Body.Close()
	submit(2).Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := mgr.Stats(); st.Running == 1 && st.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated: %+v", mgr.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Saturated: /readyz is degraded-but-ready, /healthz is plain ok.
	status, body := getReady(t, ts)
	if status != http.StatusOK || !body.Ready || !body.Degraded {
		t.Fatalf("saturated /readyz: status %d, body %+v", status, body)
	}
	if body.Jobs == nil || !body.Jobs.Saturated || body.Jobs.Queued != 1 {
		t.Fatalf("saturated /readyz job stats: %+v", body.Jobs)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !health.OK {
		t.Fatalf("/healthz under saturation: status %d, ok %v", hresp.StatusCode, health.OK)
	}

	// A NEW submission is shed with 503 + Retry-After...
	resp := submit(3)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission over the bound: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After")
	}
	var shed struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil || shed.Error == "" {
		t.Fatalf("503 body: %+v, %v", shed, err)
	}
	// ...but resubmitting the queued job dedupes straight through.
	dup := submit(2)
	dup.Body.Close()
	if dup.StatusCode != http.StatusOK {
		t.Fatalf("dedupe under saturation: status %d, want 200", dup.StatusCode)
	}

	// Draining the queue clears the degradation.
	gate <- struct{}{}
	gate <- struct{}{}
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, body := getReady(t, ts)
		if !body.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz still degraded after the queue drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
