package stats

import (
	"math"
	"testing"
)

// TestControlledExactLinearControl pins the adjustment on a control
// that explains y perfectly: y = 3c + 2 with E[c] = Mu known. The
// adjusted mean must equal 3·Mu + 2 exactly (up to rounding) whatever
// the sample, with near-zero residual variance, while the raw mean
// carries the full sampling noise.
func TestControlledExactLinearControl(t *testing.T) {
	v := Controlled{Mu: 10}
	cs := []float64{4, 19, 7, 12, 3, 25, 9, 11}
	for _, c := range cs {
		v.Add(3*c+2, c)
	}
	if got, want := v.Mean(), 32.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("adjusted mean = %v, want %v", got, want)
	}
	if math.Abs(v.Beta()-3) > 1e-12 {
		t.Errorf("beta = %v, want 3", v.Beta())
	}
	if v.Variance() > 1e-9 {
		t.Errorf("residual variance = %v, want ~0", v.Variance())
	}
	if v.ESS() < 1e6 {
		t.Errorf("ESS = %v, want enormous for a perfect control", v.ESS())
	}
	if math.Abs(v.RawMean()-v.Mean()) < 1 {
		t.Errorf("raw mean %v should differ from adjusted %v on this skewed sample",
			v.RawMean(), v.Mean())
	}
}

// TestControlledNoisyControl checks the variance reduction on a
// partially informative control: Var_adj must sit between 0 and the
// raw variance, and ESS above n.
func TestControlledNoisyControl(t *testing.T) {
	v := Controlled{Mu: 0}
	// y = c + small deterministic "noise"; c alternates around 0.
	for i := 0; i < 64; i++ {
		c := float64(i%9) - 4
		noise := 0.1 * float64((i*7)%5-2)
		v.Add(c+noise, c)
	}
	raw := v.m2y / float64(v.n-1)
	if adj := v.Variance(); adj <= 0 || adj >= raw {
		t.Errorf("adjusted variance %v not inside (0, raw %v)", adj, raw)
	}
	if v.ESS() <= float64(v.N()) {
		t.Errorf("ESS %v should exceed n %d for a correlated control", v.ESS(), v.N())
	}
	if v.CI95() <= 0 {
		t.Errorf("CI95 = %v, want > 0", v.CI95())
	}
}

// TestControlledConstantControlFallsBack pins the degenerate path the
// adaptive executor's zero-variance early stop relies on: a control
// that never varies contributes no information, so beta is 0 and the
// estimator degrades to the raw mean with the raw variance.
func TestControlledConstantControlFallsBack(t *testing.T) {
	v := Controlled{Mu: 5}
	for _, y := range []float64{1, 2, 3, 4} {
		v.Add(y, 5)
	}
	if v.Beta() != 0 {
		t.Errorf("beta = %v, want 0 for a constant control", v.Beta())
	}
	if got, want := v.Mean(), v.RawMean(); got != want {
		t.Errorf("adjusted mean %v != raw mean %v", got, want)
	}
	var s Sample
	for _, y := range []float64{1, 2, 3, 4} {
		s.Add(y)
	}
	if math.Abs(v.Variance()-s.Variance()) > 1e-15 {
		t.Errorf("variance %v, want raw %v", v.Variance(), s.Variance())
	}
	if v.ESS() != float64(v.N()) {
		t.Errorf("ESS = %v, want n", v.ESS())
	}
}

// TestControlledEmptyAndTiny covers the n = 0 / n = 1 / n = 2 guards:
// every statistic must stay finite and safe (the adaptive stopper
// evaluates them after a first round that may have completed nothing).
func TestControlledEmptyAndTiny(t *testing.T) {
	var v Controlled
	if v.Mean() != 0 || v.CI95() != 0 || v.StdErr() != 0 || v.ESS() != 0 {
		t.Errorf("empty accumulator not all-zero: mean %v ci %v ess %v", v.Mean(), v.CI95(), v.ESS())
	}
	v.Add(3, 1)
	if v.Mean() != 3 || v.Variance() != 0 {
		t.Errorf("single pair: mean %v variance %v", v.Mean(), v.Variance())
	}
	v.Add(5, 2)
	// n = 2: beta would be fit on 0 degrees of freedom; must fall back
	// to the raw variance, not divide by n-2 = 0.
	if got := v.Variance(); math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
		t.Errorf("n=2 variance = %v, want finite positive raw variance", got)
	}
}

// TestControlledMergeMatchesSequential is the merge-equivalence
// property the chunked aggregation depends on: folding pairs chunk by
// chunk equals adding them one by one, for any chunk split.
func TestControlledMergeMatchesSequential(t *testing.T) {
	ys := []float64{0.3, 0.8, 0.1, 0.9, 0.55, 0.42, 0.77, 0.05, 0.61, 0.34}
	cs := []float64{2, 7, 1, 9, 5, 4, 8, 0, 6, 3}
	for split := 0; split <= len(ys); split++ {
		var seq, a, b Controlled
		seq.Mu, a.Mu, b.Mu = 4.5, 4.5, 4.5
		for i := range ys {
			seq.Add(ys[i], cs[i])
			if i < split {
				a.Add(ys[i], cs[i])
			} else {
				b.Add(ys[i], cs[i])
			}
		}
		a.Merge(b)
		if a.N() != seq.N() ||
			math.Abs(a.Mean()-seq.Mean()) > 1e-12 ||
			math.Abs(a.Variance()-seq.Variance()) > 1e-12 ||
			math.Abs(a.Beta()-seq.Beta()) > 1e-12 {
			t.Errorf("split %d: merged (%v, %v, %v) != sequential (%v, %v, %v)",
				split, a.Mean(), a.Variance(), a.Beta(), seq.Mean(), seq.Variance(), seq.Beta())
		}
	}
}

// TestControlledMergeMuMismatchPanics pins the misuse guard.
func TestControlledMergeMuMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different control expectations should panic")
		}
	}()
	a := Controlled{Mu: 1}
	b := Controlled{Mu: 2}
	a.Add(1, 1)
	b.Add(2, 2)
	a.Merge(b)
}
