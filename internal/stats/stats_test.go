package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() != len(xs) {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if want := 32.0 / 7; math.Abs(s.Variance()-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", s.Variance(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.StdDev() != math.Sqrt(s.Variance()) {
		t.Fatal("stddev mismatch")
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 should be positive")
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Variance() != 0 || s.StdErr() != 0 || s.Mean() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Variance() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Fatal("single-observation sample wrong")
	}
}

func TestSampleMatchesNaiveProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) < 2 {
			return true
		}
		var s Sample
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var sq float64
		for _, x := range xs {
			sq += (x - mean) * (x - mean)
		}
		naiveVar := sq / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(s.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Variance()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	for i := 0; i < 1000; i++ {
		p.Add(i%10 == 0)
	}
	if math.Abs(p.Rate()-0.1) > 1e-12 {
		t.Fatalf("rate = %v", p.Rate())
	}
	lo, hi := p.Wilson95()
	if !(lo < 0.1 && 0.1 < hi) {
		t.Fatalf("Wilson interval [%v, %v] should cover 0.1", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("Wilson interval [%v, %v] outside [0,1]", lo, hi)
	}
	var empty Proportion
	lo, hi = empty.Wilson95()
	if lo != 0 || hi != 1 {
		t.Fatalf("empty Wilson interval = [%v, %v]", lo, hi)
	}
	if empty.Rate() != 0 {
		t.Fatal("empty rate should be 0")
	}
}

func TestWilsonNearZero(t *testing.T) {
	// Zero hits out of many trials: the interval must stay tight near
	// zero and must not include negative numbers.
	p := Proportion{Hits: 0, Trials: 100000}
	lo, hi := p.Wilson95()
	if lo != 0 {
		t.Fatalf("lo = %v, want 0", lo)
	}
	if hi > 1e-3 {
		t.Fatalf("hi = %v, want < 1e-3", hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], want)
		}
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("bin 0 center = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSurface(t *testing.T) {
	s := NewSurface("test", "x", "y", "z", []float64{0, 1, 2}, []float64{0, 10})
	s.Fill(func(x, y float64) float64 { return x + y })
	if s.At(2, 1) != 12 {
		t.Fatalf("At(2,1) = %v", s.At(2, 1))
	}
	lo, hi := s.MinMax()
	if lo != 0 || hi != 12 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	var buf bytes.Buffer
	if err := s.WriteDat(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 10 12") {
		t.Fatalf("dat output missing row: %s", out)
	}
	// Blocks must be separated by blank lines for gnuplot splot.
	if !strings.Contains(out, "\n\n") {
		t.Fatal("dat output missing block separator")
	}
	ascii := s.RenderASCII()
	if !strings.Contains(ascii, "test") || len(strings.Split(ascii, "\n")) < 4 {
		t.Fatalf("ascii render too small:\n%s", ascii)
	}
}

func TestSurfaceMinMaxSkipsNonFinite(t *testing.T) {
	s := NewSurface("t", "x", "y", "z", []float64{0, 1}, []float64{0})
	s.Z[0][0] = math.NaN()
	s.Z[1][0] = 3
	lo, hi := s.MinMax()
	if lo != 3 || hi != 3 {
		t.Fatalf("MinMax with NaN = %v, %v", lo, hi)
	}
}

func TestSeriesAndWriteDat(t *testing.T) {
	xs := []float64{0, 0.5, 1}
	a := NewSeries("a", "phi", "ratio", xs, func(x float64) float64 { return 2 * x })
	b := NewSeries("b", "phi", "ratio", xs, func(x float64) float64 { return x * x })
	var buf bytes.Buffer
	if err := WriteDat(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# phi a b\n") {
		t.Fatalf("header: %s", out)
	}
	if !strings.Contains(out, "0.5 1 0.25") {
		t.Fatalf("row missing: %s", out)
	}
	if err := WriteDat(&buf); err != nil {
		t.Fatal("empty WriteDat should be a no-op")
	}
}

// TestSampleMergeMatchesSequential checks the streaming-aggregation
// identities: merging into an empty sample is an exact copy, merging
// an empty sample is a no-op, and a split-merge reproduces the
// sequential moments to floating-point accuracy.
func TestSampleMergeMatchesSequential(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9, -3, 12, 0.5}
	for split := 0; split <= len(xs); split++ {
		var a, b, seq Sample
		for _, x := range xs[:split] {
			a.Add(x)
			seq.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
			seq.Add(x)
		}
		a.Merge(b)
		if a.N() != seq.N() || a.Min() != seq.Min() || a.Max() != seq.Max() {
			t.Fatalf("split %d: counts/extrema differ: %+v vs %+v", split, a, seq)
		}
		if math.Abs(a.Mean()-seq.Mean()) > 1e-12 {
			t.Fatalf("split %d: mean %v != %v", split, a.Mean(), seq.Mean())
		}
		if math.Abs(a.Variance()-seq.Variance()) > 1e-9 {
			t.Fatalf("split %d: variance %v != %v", split, a.Variance(), seq.Variance())
		}
		// The boundary splits must be bitwise exact, not just close:
		// that is what makes single-chunk streaming aggregation
		// reproduce the legacy sequential aggregation byte for byte.
		if split == 0 || split == len(xs) {
			if a != seq {
				t.Fatalf("split %d: empty-side merge not exact: %+v vs %+v", split, a, seq)
			}
		}
	}
}

// TestSampleMergeProperty fuzzes Merge against sequential Add over
// random splits.
func TestSampleMergeProperty(t *testing.T) {
	f := func(raw []float64, splitRaw uint8) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		split := int(splitRaw) % (len(xs) + 1)
		var a, b, seq Sample
		for _, x := range xs[:split] {
			a.Add(x)
			seq.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
			seq.Add(x)
		}
		a.Merge(b)
		if a.N() != seq.N() || a.Min() != seq.Min() || a.Max() != seq.Max() {
			return false
		}
		scale := math.Max(1, math.Abs(seq.Mean()))
		if math.Abs(a.Mean()-seq.Mean()) > 1e-9*scale {
			return false
		}
		vscale := math.Max(1, seq.Variance())
		return math.Abs(a.Variance()-seq.Variance()) <= 1e-6*vscale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProportionMerge(t *testing.T) {
	var a, b Proportion
	for i := 0; i < 10; i++ {
		a.Add(i%3 == 0)
	}
	for i := 0; i < 7; i++ {
		b.Add(i%2 == 0)
	}
	a.Merge(b)
	if a.Trials != 17 || a.Hits != 4+4 {
		t.Fatalf("merged proportion = %d/%d, want 8/17", a.Hits, a.Trials)
	}
}

// TestHistogramMergeMatchesSequential is the merge-equivalence
// property for histograms: folding per-chunk partial histograms, for
// any chunk split, equals adding every observation to one histogram —
// the property that unblocks chunked histogram aggregation.
func TestHistogramMergeMatchesSequential(t *testing.T) {
	xs := []float64{-1, 0, 0.5, 2.3, 4.9, 5, 7.7, 9.99, 10, 12, 3.3, 6.6}
	for split := 0; split <= len(xs); split++ {
		seq := NewHistogram(0, 10, 5)
		a := NewHistogram(0, 10, 5)
		b := NewHistogram(0, 10, 5)
		for i, x := range xs {
			seq.Add(x)
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		if a.Under != seq.Under || a.Over != seq.Over || a.Total() != seq.Total() {
			t.Fatalf("split %d: merged outliers/total differ: %+v vs %+v", split, a, seq)
		}
		for i := range a.Counts {
			if a.Counts[i] != seq.Counts[i] {
				t.Fatalf("split %d bin %d: %d != %d", split, i, a.Counts[i], seq.Counts[i])
			}
		}
	}
}

// TestHistogramMergeShapePanics pins the shape guard.
func TestHistogramMergeShapePanics(t *testing.T) {
	cases := []*Histogram{
		NewHistogram(0, 10, 4), // bin count differs
		NewHistogram(0, 20, 5), // upper bound differs
		NewHistogram(1, 10, 5), // lower bound differs
	}
	for i, o := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: merging mismatched shapes should panic", i)
				}
			}()
			NewHistogram(0, 10, 5).Merge(o)
		}()
	}
}

// TestQuantileEdgeCases covers the inputs the adaptive rounds can
// produce: an empty sample after a fatal-heavy first round, a single
// observation, and an all-identical sample (the zero-variance
// early-stop path).
func TestQuantileEdgeCases(t *testing.T) {
	if q := Quantile(nil, 0.5); !math.IsNaN(q) {
		t.Errorf("Quantile(nil) = %v, want NaN", q)
	}
	if q := Quantile([]float64{}, 0.5); !math.IsNaN(q) {
		t.Errorf("Quantile(empty) = %v, want NaN", q)
	}
	for _, q := range []float64{-1, 0, 0.25, 0.5, 1, 2} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Errorf("single-element quantile(%v) = %v, want 7", q, got)
		}
		if got := Quantile([]float64{3, 3, 3, 3}, q); got != 3 {
			t.Errorf("all-identical quantile(%v) = %v, want 3", q, got)
		}
	}
	// Out-of-range q clamps to the extremes.
	xs := []float64{5, 1, 9}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Errorf("quantile(-0.5) = %v, want min", got)
	}
	if got := Quantile(xs, 1.5); got != 9 {
		t.Errorf("quantile(1.5) = %v, want max", got)
	}
	// The input must not be reordered.
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 9 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

// TestWilson95EdgeCases covers the degenerate proportions adaptive
// rounds see: no trials at all (total ignorance), all hits, and no
// hits — the bounds must stay inside [0, 1] and bracket the rate.
func TestWilson95EdgeCases(t *testing.T) {
	var empty Proportion
	lo, hi := empty.Wilson95()
	if lo != 0 || hi != 1 {
		t.Errorf("empty Wilson interval [%v, %v], want [0, 1]", lo, hi)
	}
	all := Proportion{Hits: 8, Trials: 8}
	lo, hi = all.Wilson95()
	if hi != 1 || lo <= 0.5 || lo >= 1 {
		t.Errorf("all-hits Wilson interval [%v, %v]", lo, hi)
	}
	none := Proportion{Hits: 0, Trials: 8}
	lo, hi = none.Wilson95()
	if lo > 1e-12 || hi <= 0 || hi >= 0.5 {
		t.Errorf("no-hits Wilson interval [%v, %v]", lo, hi)
	}
	one := Proportion{Hits: 1, Trials: 1}
	lo, hi = one.Wilson95()
	if lo < 0 || hi > 1 || lo > one.Rate() || hi < one.Rate() {
		t.Errorf("single-trial Wilson interval [%v, %v] does not bracket 1", lo, hi)
	}
}

// TestSampleMergeIdenticalObservations pins the zero-variance merge:
// chunks of identical observations merge to zero variance exactly, so
// the adaptive stopper's CI hits 0 and stops — no 1e-30 residue.
func TestSampleMergeIdenticalObservations(t *testing.T) {
	var a, b Sample
	for i := 0; i < 5; i++ {
		a.Add(0.25)
	}
	for i := 0; i < 11; i++ {
		b.Add(0.25)
	}
	a.Merge(b)
	if a.Variance() != 0 || a.CI95() != 0 {
		t.Errorf("identical-sample merge: variance %v ci %v, want exact 0", a.Variance(), a.CI95())
	}
	if a.Mean() != 0.25 || a.N() != 16 {
		t.Errorf("identical-sample merge: mean %v n %d", a.Mean(), a.N())
	}
}
