package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Surface is a 2-D table z = f(x, y): the data behind the paper's 3-D
// waste and success-probability plots (Figures 4, 6, 7, 9).
type Surface struct {
	Name   string
	XLabel string
	YLabel string
	ZLabel string
	Xs     []float64
	Ys     []float64
	Z      [][]float64 // Z[i][j] = f(Xs[i], Ys[j])
}

// NewSurface allocates a surface over the given axes.
func NewSurface(name, xlabel, ylabel, zlabel string, xs, ys []float64) *Surface {
	z := make([][]float64, len(xs))
	for i := range z {
		z[i] = make([]float64, len(ys))
	}
	return &Surface{Name: name, XLabel: xlabel, YLabel: ylabel, ZLabel: zlabel, Xs: xs, Ys: ys, Z: z}
}

// Fill evaluates f over the grid.
func (s *Surface) Fill(f func(x, y float64) float64) {
	for i, x := range s.Xs {
		for j, y := range s.Ys {
			s.Z[i][j] = f(x, y)
		}
	}
}

// At returns Z at grid indexes (i, j).
func (s *Surface) At(i, j int) float64 { return s.Z[i][j] }

// MinMax returns the smallest and largest finite Z values.
func (s *Surface) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, row := range s.Z {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// WriteDat writes the surface in gnuplot splot format: blocks of
// "x y z" lines separated by blank lines, with a comment header.
func (s *Surface) WriteDat(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n# x=%s y=%s z=%s\n", s.Name, s.XLabel, s.YLabel, s.ZLabel); err != nil {
		return err
	}
	for i, x := range s.Xs {
		for j, y := range s.Ys {
			if _, err := fmt.Fprintf(w, "%g %g %g\n", x, y, s.Z[i][j]); err != nil {
				return err
			}
		}
		if i < len(s.Xs)-1 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// asciiRamp maps a [0,1] intensity to a character, dark to bright.
const asciiRamp = " .:-=+*#%@"

// RenderASCII draws the surface as an ASCII heat map (rows = Ys from
// high to low, columns = Xs), good enough to eyeball the shape of the
// paper's figures in a terminal.
func (s *Surface) RenderASCII() string {
	lo, hi := s.MinMax()
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s: %s=%.3g..%.3g)\n", s.Name, s.ZLabel, asciiRamp, lo, hi)
	for j := len(s.Ys) - 1; j >= 0; j-- {
		fmt.Fprintf(&b, "%10.3g |", s.Ys[j])
		for i := range s.Xs {
			v := s.Z[i][j]
			var ch byte = '?'
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				idx := int((v - lo) / span * float64(len(asciiRamp)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(asciiRamp) {
					idx = len(asciiRamp) - 1
				}
				ch = asciiRamp[idx]
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10s  ", "")
	fmt.Fprintf(&b, "%-.3g .. %.3g (%s)\n", s.Xs[0], s.Xs[len(s.Xs)-1], s.XLabel)
	return b.String()
}

// Series is a named 1-D curve, the format of Figures 5 and 8.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Xs     []float64
	Ys     []float64
}

// NewSeries evaluates f over xs.
func NewSeries(name, xlabel, ylabel string, xs []float64, f func(x float64) float64) *Series {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	return &Series{Name: name, XLabel: xlabel, YLabel: ylabel, Xs: xs, Ys: ys}
}

// WriteDat writes columns "x y1 y2 ..." for the given series sharing
// the same X axis, with a header naming each column.
func WriteDat(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	if _, err := fmt.Fprintf(w, "# %s %s\n", series[0].XLabel, strings.Join(names, " ")); err != nil {
		return err
	}
	for i, x := range series[0].Xs {
		if _, err := fmt.Fprintf(w, "%g", x); err != nil {
			return err
		}
		for _, s := range series {
			if _, err := fmt.Fprintf(w, " %g", s.Ys[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
