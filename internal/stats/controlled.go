package stats

import "math"

// Controlled is a regression-adjusted (control-variate) accumulator:
// each observation pairs the quantity of interest y with a control c
// whose true expectation Mu is known analytically. The adjusted mean
//
//	ŷ = ȳ − β̂·(c̄ − Mu),   β̂ = S_yc / S_cc
//
// removes the part of y's sampling noise that the control explains, so
// its variance is the residual variance of the y-on-c regression —
// never asymptotically worse than the raw mean, and dramatically
// better when y and c are strongly correlated (the Monte-Carlo waste
// against the per-run failure count, whose expectation the analytic
// first-order model supplies).
//
// The accumulator keeps the joint central co-moments with the same
// Welford/Chan updates as Sample, so it streams, loses no precision to
// cancellation, and merges exactly like the other accumulators.
type Controlled struct {
	// Mu is the known expectation of the control. Merging requires
	// equal Mu on both sides.
	Mu float64

	n            int
	meanY, meanC float64
	m2y, m2c     float64 // Σ(y−ȳ)², Σ(c−c̄)²
	mcy          float64 // Σ(y−ȳ)(c−c̄)
}

// Add records one (observation, control) pair.
func (v *Controlled) Add(y, c float64) {
	v.n++
	dy := y - v.meanY
	dc := c - v.meanC
	v.meanY += dy / float64(v.n)
	v.meanC += dc / float64(v.n)
	v.m2y += dy * (y - v.meanY)
	v.m2c += dc * (c - v.meanC)
	v.mcy += dy * (c - v.meanC)
}

// Merge folds another accumulator into v (Chan et al.'s pairwise
// update, extended to the cross moment). Both sides must share the
// same control expectation; merging an empty accumulator is a no-op
// and merging into an empty one copies o, so chunk-ordered merges are
// independent of the chunking — the same property Sample.Merge gives
// the streaming aggregation.
func (v *Controlled) Merge(o Controlled) {
	if o.n == 0 {
		return
	}
	if v.Mu != o.Mu {
		panic("stats: merging Controlled accumulators with different control expectations")
	}
	if v.n == 0 {
		*v = o
		return
	}
	na, nb, nn := float64(v.n), float64(o.n), float64(v.n+o.n)
	dy := o.meanY - v.meanY
	dc := o.meanC - v.meanC
	v.m2y += o.m2y + dy*dy*na*nb/nn
	v.m2c += o.m2c + dc*dc*na*nb/nn
	v.mcy += o.mcy + dy*dc*na*nb/nn
	v.meanY += dy * nb / nn
	v.meanC += dc * nb / nn
	v.n += o.n
}

// N returns the number of pairs.
func (v *Controlled) N() int { return v.n }

// RawMean returns the unadjusted mean of y.
func (v *Controlled) RawMean() float64 { return v.meanY }

// ControlMean returns the observed mean of the control.
func (v *Controlled) ControlMean() float64 { return v.meanC }

// Beta returns the fitted regression coefficient S_yc/S_cc (0 when
// the control never varied — the adjustment degenerates to the raw
// mean, which is the right fallback).
func (v *Controlled) Beta() float64 {
	if v.m2c == 0 {
		return 0
	}
	return v.mcy / v.m2c
}

// Mean returns the regression-adjusted estimate of E[y].
func (v *Controlled) Mean() float64 {
	return v.meanY - v.Beta()*(v.meanC-v.Mu)
}

// Variance returns the per-observation variance of the adjusted
// estimator: the residual variance of the y-on-c regression,
// (S_yy − S_yc²/S_cc)/(n−2). With fewer than 3 pairs, or a constant
// control, it falls back to the raw sample variance (β̂ carries no
// information yet).
func (v *Controlled) Variance() float64 {
	if v.n < 2 {
		return 0
	}
	if v.m2c == 0 || v.n < 3 {
		return v.m2y / float64(v.n-1)
	}
	resid := v.m2y - v.mcy*v.mcy/v.m2c
	if resid < 0 {
		resid = 0 // exact linear dependence, up to rounding
	}
	return resid / float64(v.n-2)
}

// StdErr returns the standard error of the adjusted mean.
func (v *Controlled) StdErr() float64 {
	if v.n == 0 {
		return 0
	}
	return math.Sqrt(v.Variance() / float64(v.n))
}

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval on the adjusted mean.
func (v *Controlled) CI95() float64 { return 1.96 * v.StdErr() }

// ESS returns the effective sample size: how many raw observations
// the adjusted estimate is statistically worth, n·Var_raw/Var_adj. A
// control explaining 75% of the variance makes every simulated run
// count 4×. It is n itself while the adjustment is degenerate.
func (v *Controlled) ESS() float64 {
	if v.n < 3 {
		return float64(v.n)
	}
	adj := v.Variance()
	if adj == 0 {
		return math.Inf(1)
	}
	raw := v.m2y / float64(v.n-1)
	return float64(v.n) * raw / adj
}
