// Package stats provides the summary statistics used by the
// Monte-Carlo harness: running moments, confidence intervals,
// histograms and 2-D surfaces (the paper's figure format).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations with Welford's online algorithm, so
// long simulations do not lose precision to catastrophic cancellation.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another sample into s, as if every observation of o had
// been Added to s (Chan et al.'s pairwise update of the Welford
// moments). Merging an empty sample is exact (a no-op), and merging
// into an empty sample copies o bit-for-bit — the property the
// streaming Monte-Carlo aggregation relies on for worker-count
// independence.
func (s *Sample) Merge(o Sample) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	na, nb, nn := float64(s.n), float64(o.n), float64(s.n+o.n)
	delta := o.mean - s.mean
	s.mean += delta * nb / nn
	s.m2 += o.m2 + delta*delta*na*nb/nn
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval on the mean.
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// String formats the sample as "mean ± ci95 (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Proportion tracks a Bernoulli rate with its Wilson confidence
// bounds, used for fatal-failure frequencies where the rate is tiny.
type Proportion struct {
	Hits   int
	Trials int
}

// Add records one trial.
func (p *Proportion) Add(hit bool) {
	p.Trials++
	if hit {
		p.Hits++
	}
}

// Merge folds another proportion into p. Integer counters make the
// merge exact for any grouping of the trials.
func (p *Proportion) Merge(o Proportion) {
	p.Hits += o.Hits
	p.Trials += o.Trials
}

// Rate returns the observed proportion.
func (p *Proportion) Rate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Trials)
}

// Wilson95 returns the Wilson-score 95% interval, which behaves well
// for rates near 0 (unlike the normal approximation).
func (p *Proportion) Wilson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(p.Trials)
	phat := p.Rate()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation. xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram returns a histogram with the given bounds and bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		h.Counts[int((x-h.Lo)/h.binWidth)]++
	}
}

// Merge folds another histogram into h. Both histograms must share
// the exact same shape (bounds and bin count), the condition under
// which per-chunk partial histograms merged in any grouping equal the
// histogram of all observations — integer counters make the merge
// exact, like Proportion's. Merging a differently shaped histogram
// panics, mirroring NewHistogram's shape validation.
func (h *Histogram) Merge(o *Histogram) {
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Counts) != len(h.Counts) {
		panic("stats: merging histograms of different shapes")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
}

// Total returns the number of observations including outliers.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the center abscissa of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}
