package chaos

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrInjected marks every transport-level fault this package
// manufactures, so tests (and retry layers) can tell an injected
// failure from a real one with errors.Is.
var ErrInjected = fmt.Errorf("chaos: injected fault")

// injectedError wraps a decision as the error a faulted round trip
// returns.
type injectedError struct{ d *Decision }

func (e *injectedError) Error() string { return fmt.Sprintf("chaos: injected %s", e.d) }
func (e *injectedError) Unwrap() error { return ErrInjected }

// Transport wraps an http.RoundTripper with comms fault injection:
// Drop and Partition fail the request outright, Delay stalls it, Hang
// blocks until the request context dies, and Corrupt flips one byte of
// the response body stream — or, with CorruptRequests, of the request
// body before it leaves, which is how the replication channel's
// silent-corruption case reaches the replica-side frame checksums. A
// nil Injector is fully transparent.
type Transport struct {
	Injector *Injector
	// Site is the injection site the transport rolls against (default
	// SiteComms; the replication client uses SiteReplica).
	Site string
	// CorruptRequests redirects Corrupt decisions at the REQUEST body:
	// the bytes are damaged in flight toward the server, so the
	// receiver's integrity checks — not the sender's — must catch them.
	CorruptRequests bool
	// Next performs the real round trips (default
	// http.DefaultTransport).
	Next http.RoundTripper
}

func (t *Transport) next() http.RoundTripper {
	if t.Next != nil {
		return t.Next
	}
	return http.DefaultTransport
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	site := t.Site
	if site == "" {
		site = SiteComms
	}
	d := t.Injector.Decide(site, req.URL.Host)
	if d == nil {
		return t.next().RoundTrip(req)
	}
	switch d.Class {
	case Drop, Partition:
		return nil, &injectedError{d}
	case Hang:
		// The half-open connection: the dial "succeeds" but nothing ever
		// comes back. Only the caller's deadline (context, lease
		// watchdog, response-header timeout) gets out.
		<-req.Context().Done()
		return nil, fmt.Errorf("%w (interrupted: %v)", &injectedError{d}, req.Context().Err())
	case Delay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.Delay):
		}
		return t.next().RoundTrip(req)
	case Corrupt:
		if t.CorruptRequests {
			if req.Body != nil {
				req = req.Clone(req.Context())
				req.Body = &corruptBody{rc: req.Body, offset: int64(d.Offset), xor: d.XOR}
			}
			return t.next().RoundTrip(req)
		}
		resp, err := t.next().RoundTrip(req)
		if err != nil || resp.Body == nil {
			return resp, err
		}
		resp.Body = &corruptBody{rc: resp.Body, offset: int64(d.Offset), xor: d.XOR}
		return resp, nil
	}
	return t.next().RoundTrip(req)
}

// corruptBody flips one byte of the wrapped stream: the decision's
// offset, taken modulo the first non-empty read, so the flip always
// lands whatever the body length. Newlines are never flipped into or
// out of existence — the offset skips them and the XOR mask cannot
// mint one — so corruption exercises record integrity, not framing.
type corruptBody struct {
	rc     io.ReadCloser
	offset int64
	xor    byte
	done   bool
}

func (c *corruptBody) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 && !c.done {
		i := int(c.offset % int64(n))
		if p[i] == '\n' {
			i = (i + 1) % n
		}
		if p[i] != '\n' {
			p[i] ^= c.xor
			c.done = true
		}
	}
	return n, err
}

func (c *corruptBody) Close() error { return c.rc.Close() }
