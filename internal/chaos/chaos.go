// Package chaos is the injectable fault plane of the fabric: a small,
// deterministic fault-injection engine that the test suites (and the
// -chaos dev flag of cmd/serve) script against every failure surface
// the fleet can see — the coordinator↔worker HTTP path, the durable
// results store, and the fabric merger.
//
// Faults are described by a Plan: a seed plus a list of Rules, each
// arming one fault Class at one Site with a probability. An Injector
// evaluates the plan; every draw comes from a seeded rng.Stream split
// per site, so a chaos run is reproducible from its seed (and a CI
// failure replays from the logged seed). The injector never touches
// the hot path unless a rule matches its site: production builds run
// with a nil injector and pay nothing.
//
// DESIGN.md, "Failure model", pins the expected end-to-end behavior of
// every fault class.
package chaos

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Class enumerates the injectable fault classes.
type Class string

const (
	// Drop fails the operation immediately (connection refused / write
	// error): the cleanest failure, visible to the caller at once.
	Drop Class = "drop"
	// Delay stalls the operation before letting it through: the
	// slow-network / overloaded-peer case retry budgets must absorb.
	Delay Class = "delay"
	// Corrupt lets the operation through but flips one payload byte:
	// the silent-data-corruption case checksums and validation exist
	// for. The flipped byte is never a '\n', so corruption tests framing
	// integrity separately from record integrity.
	Corrupt Class = "corrupt"
	// Hang accepts the operation and never completes it: the
	// half-open-connection case only deadlines and lease watchdogs can
	// escape.
	Hang Class = "hang"
	// Partition makes a specific peer (or all peers) unreachable for
	// every operation: the network-partition case circuit breakers and
	// degraded-local execution exist for.
	Partition Class = "partition"
)

// Classes lists every fault class, in a stable order — the chaos
// matrix test iterates it so a newly added class cannot silently skip
// coverage.
var Classes = []Class{Drop, Delay, Corrupt, Hang, Partition}

// Canonical site names. A Rule may use any site string; these are the
// hook points the repo wires up.
const (
	// SiteComms is the coordinator→worker HTTP transport.
	SiteComms = "comms"
	// SiteStore is the jobs store's results append path.
	SiteStore = "store"
	// SiteMerge is the fabric merger's line intake.
	SiteMerge = "merge"
	// SiteReplica is the leader→replica checkpoint replication channel.
	SiteReplica = "replica"
)

// Rule arms one fault class at one site.
type Rule struct {
	// Site selects the hook point ("" arms every site).
	Site string
	// Class is the fault class to inject.
	Class Class
	// P is the per-operation probability in [0, 1].
	P float64
	// Peer restricts the rule to operations whose peer contains this
	// substring (host:port for comms); "" matches every peer. Mostly
	// used with Partition.
	Peer string
	// Delay is the injected stall for Delay-class rules (default 100ms).
	Delay time.Duration
}

func (r Rule) validate() error {
	switch r.Class {
	case Drop, Delay, Corrupt, Hang, Partition:
	default:
		return fmt.Errorf("chaos: unknown fault class %q", r.Class)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("chaos: rule %s:%s probability %v outside [0, 1]", r.Site, r.Class, r.P)
	}
	return nil
}

// Plan is a reproducible fault schedule: a seed plus the armed rules.
// The zero Plan injects nothing.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Decision is one injected fault: the class plus its parameters.
type Decision struct {
	Class Class
	// Delay is the stall duration (Delay class).
	Delay time.Duration
	// Offset and XOR locate and define the byte flip (Corrupt class):
	// the byte at Offset modulo the payload length is XORed. The
	// injector picks an XOR that cannot produce or destroy a '\n'.
	Offset int
	XOR    byte
}

func (d *Decision) String() string {
	switch d.Class {
	case Delay:
		return fmt.Sprintf("%s(%s)", d.Class, d.Delay)
	case Corrupt:
		return fmt.Sprintf("%s(@%d^%#x)", d.Class, d.Offset, d.XOR)
	default:
		return string(d.Class)
	}
}

// Injector evaluates a Plan. It is safe for concurrent use; every
// random draw comes from a per-site rng.Stream derived from the plan
// seed, so a single-threaded schedule replays exactly and a concurrent
// one replays in distribution.
type Injector struct {
	plan Plan
	// Log, when non-nil, receives one line per injected fault (wired to
	// log.Printf by the -chaos flag). Set before use.
	Log func(format string, args ...any)

	mu      sync.Mutex
	streams map[string]*rng.Stream
}

// New returns an injector for the plan. A nil return means the plan
// arms nothing (callers can skip wiring hooks entirely).
func New(plan Plan) (*Injector, error) {
	for _, r := range plan.Rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	if len(plan.Rules) == 0 {
		return nil, nil
	}
	return &Injector{plan: plan, streams: make(map[string]*rng.Stream)}, nil
}

// Plan returns the injector's plan (for logging and test replay).
func (in *Injector) Plan() Plan { return in.plan }

// Decide rolls the plan's dice for one operation at site against peer.
// It returns nil when no fault fires. Rules are evaluated in plan
// order; the first that fires wins. A nil *Injector never injects, so
// hook sites can call through it unconditionally.
func (in *Injector) Decide(site, peer string) *Decision {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.streams[site]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(site))
		st = rng.New(in.plan.Seed).Split(h.Sum64())
		in.streams[site] = st
	}
	for _, r := range in.plan.Rules {
		if r.Site != "" && r.Site != site {
			continue
		}
		if r.Peer != "" && !strings.Contains(peer, r.Peer) {
			continue
		}
		// One draw per candidate rule, always consumed, so the draw
		// sequence — and with it the replay — does not depend on which
		// rules happen to match the peer.
		u := st.Float64()
		if u >= r.P {
			continue
		}
		d := &Decision{Class: r.Class}
		switch r.Class {
		case Delay:
			d.Delay = r.Delay
			if d.Delay <= 0 {
				d.Delay = 100 * time.Millisecond
			}
		case Corrupt:
			d.Offset = int(st.Uint64() % (1 << 20))
			// Flip a low bit other than the one distinguishing '\n'
			// (0x0a) from other bytes: XOR with 0x01 maps 0x0a↔0x0b, so
			// a newline could be minted or destroyed. 0x04 cannot turn
			// any byte into 0x0a, nor 0x0a into anything with the 0x04
			// bit pattern of a newline — framing is preserved.
			d.XOR = 0x04
		}
		if in.Log != nil {
			in.Log("chaos: inject %s at %s (peer %q)", d, site, peer)
		}
		return d
	}
	return nil
}

// CorruptLine applies a Corrupt decision to one record: it flips the
// decision's byte inside the record body, never touching the trailing
// newline. Records of length <= 1 pass through (there is no body
// byte to flip).
func (d *Decision) CorruptLine(line []byte) []byte {
	body := len(line)
	if body > 0 && line[body-1] == '\n' {
		body--
	}
	if d.Class != Corrupt || body == 0 {
		return line
	}
	out := append([]byte(nil), line...)
	out[d.Offset%body] ^= d.XOR
	return out
}

// AppendHook returns a results-store append hook (see
// jobs.Config.ResultsAppendHook) that corrupts record bytes on their
// way to disk per the plan's SiteStore rules — simulating media
// corruption: the checksum of the true record is already computed, so
// recovery must detect the mismatch. Returns nil when the plan never
// fires at the store site, and a nil *Injector yields a nil hook.
func (in *Injector) AppendHook() func(line []byte) []byte {
	if in == nil || !in.arms(SiteStore) {
		return nil
	}
	return func(line []byte) []byte {
		if d := in.Decide(SiteStore, ""); d != nil && d.Class == Corrupt {
			return d.CorruptLine(line)
		}
		return line
	}
}

// LineHook returns a merger intake hook (see fabric.Merger.SetHook)
// that corrupts or tears delivered lines per the plan's SiteMerge
// rules. Drop-class decisions tear the line (strip its newline), which
// the merger must reject; Corrupt-class flip a body byte. Returns nil
// when the plan never fires at the merge site.
func (in *Injector) LineHook() func(i int, line []byte) []byte {
	if in == nil || !in.arms(SiteMerge) {
		return nil
	}
	return func(i int, line []byte) []byte {
		d := in.Decide(SiteMerge, strconv.Itoa(i))
		if d == nil {
			return line
		}
		switch d.Class {
		case Corrupt:
			return d.CorruptLine(line)
		case Drop:
			if n := len(line); n > 0 && line[n-1] == '\n' {
				return line[:n-1] // torn delivery
			}
		}
		return line
	}
}

// arms reports whether any rule can fire at the site.
func (in *Injector) arms(site string) bool {
	for _, r := range in.plan.Rules {
		if (r.Site == "" || r.Site == site) && r.P > 0 {
			return true
		}
	}
	return false
}

// ParsePlan parses the -chaos flag grammar: semicolon-separated
// clauses, each either
//
//	seed=N
//	[site:]class=p[@dur][#peer]
//
// e.g. "seed=42;comms:drop=0.1;comms:delay=0.05@200ms;store:corrupt=0.01;comms:partition=1#host:9001".
// An omitted site arms every site. The empty string parses to the zero
// (inactive) plan.
func ParsePlan(s string) (Plan, error) {
	var plan Plan
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: bad seed %q: %v", rest, err)
			}
			plan.Seed = seed
			continue
		}
		var r Rule
		head, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return Plan{}, fmt.Errorf("chaos: clause %q is not site:class=p or seed=N", clause)
		}
		if site, class, ok := strings.Cut(head, ":"); ok {
			r.Site, r.Class = site, Class(class)
		} else {
			r.Class = Class(head)
		}
		rest, r.Peer, _ = strings.Cut(rest, "#")
		if prob, dur, ok := strings.Cut(rest, "@"); ok {
			d, err := time.ParseDuration(dur)
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: clause %q: bad duration: %v", clause, err)
			}
			r.Delay = d
			rest = prob
		}
		p, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("chaos: clause %q: bad probability: %v", clause, err)
		}
		r.P = p
		if err := r.validate(); err != nil {
			return Plan{}, err
		}
		plan.Rules = append(plan.Rules, r)
	}
	return plan, nil
}

// String renders the plan back in the ParsePlan grammar (seed first,
// rules in evaluation order), so logs show exactly what is armed and
// the rendered string re-parses to an equivalent plan.
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for _, r := range p.Rules {
		var b strings.Builder
		if r.Site != "" {
			b.WriteString(r.Site)
			b.WriteByte(':')
		}
		fmt.Fprintf(&b, "%s=%s", r.Class, strconv.FormatFloat(r.P, 'g', -1, 64))
		if r.Delay > 0 {
			fmt.Fprintf(&b, "@%s", r.Delay)
		}
		if r.Peer != "" {
			fmt.Fprintf(&b, "#%s", r.Peer)
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ";")
}
