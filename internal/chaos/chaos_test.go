package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "seed=42;comms:drop=0.1;comms:delay=0.05@200ms;store:corrupt=0.01;comms:partition=1#host:9001"
	plan, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Rules) != 4 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Rules[1].Delay != 200*time.Millisecond {
		t.Errorf("delay rule = %+v", plan.Rules[1])
	}
	if plan.Rules[3].Peer != "host:9001" || plan.Rules[3].P != 1 {
		t.Errorf("partition rule = %+v", plan.Rules[3])
	}
	again, err := ParsePlan(plan.String())
	if err != nil {
		t.Fatalf("rendered plan %q does not re-parse: %v", plan.String(), err)
	}
	if again.String() != plan.String() {
		t.Errorf("round trip: %q != %q", again.String(), plan.String())
	}
}

func TestParsePlanRejects(t *testing.T) {
	for _, bad := range []string{
		"comms:drop=1.5",       // probability out of range
		"comms:tickle=0.5",     // unknown class
		"comms:drop",           // no probability
		"seed=x",               // bad seed
		"comms:delay=0.1@fast", // bad duration
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestEmptyPlanInjectsNothing(t *testing.T) {
	in, err := New(Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("empty plan produced a live injector")
	}
	// A nil injector is callable and transparent at every hook.
	if d := in.Decide(SiteComms, "x"); d != nil {
		t.Errorf("nil injector decided %v", d)
	}
	if in.AppendHook() != nil || in.LineHook() != nil {
		t.Error("nil injector produced hooks")
	}
}

func TestDecideDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, Rules: []Rule{{Site: SiteComms, Class: Drop, P: 0.5}}}
	seq := func() []bool {
		in, err := New(plan)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Decide(SiteComms, "w") != nil
		}
		return out
	}
	a, b := seq(), seq()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identically seeded injectors", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired < 60 || fired > 140 {
		t.Errorf("p=0.5 fired %d/200 times", fired)
	}
}

func TestPeerFilterAndDrawAlignment(t *testing.T) {
	// The peer filter must not consume draws differently: two injectors
	// with the same seed, one probed with a matching peer and one not,
	// stay aligned on subsequent draws.
	plan := Plan{Seed: 3, Rules: []Rule{{Site: SiteComms, Class: Partition, P: 1, Peer: "dead"}}}
	in, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	if d := in.Decide(SiteComms, "healthy:1"); d != nil {
		t.Fatalf("partition fired for non-matching peer: %v", d)
	}
	if d := in.Decide(SiteComms, "dead:2"); d == nil || d.Class != Partition {
		t.Fatalf("partition did not fire for matching peer: %v", d)
	}
}

func TestCorruptLinePreservesFraming(t *testing.T) {
	in, err := New(Plan{Seed: 1, Rules: []Rule{{Site: SiteStore, Class: Corrupt, P: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.AppendHook()
	if hook == nil {
		t.Fatal("no append hook for armed store site")
	}
	line := []byte(`{"protocol":"x","v":123}` + "\n")
	for i := 0; i < 64; i++ {
		got := hook(append([]byte(nil), line...))
		if got[len(got)-1] != '\n' {
			t.Fatal("corruption destroyed the trailing newline")
		}
		if bytes.IndexByte(got[:len(got)-1], '\n') >= 0 {
			t.Fatal("corruption minted an interior newline")
		}
		if bytes.Equal(got, line) {
			t.Fatalf("p=1 corrupt hook left iteration %d unchanged", i)
		}
	}
}

func TestLineHookTearsAndCorrupts(t *testing.T) {
	in, err := New(Plan{Seed: 9, Rules: []Rule{{Site: SiteMerge, Class: Drop, P: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.LineHook()
	line := []byte("{\"a\":1}\n")
	torn := hook(0, line)
	if n := len(torn); n != len(line)-1 || torn[n-1] == '\n' {
		t.Fatalf("drop rule did not tear the line: %q", torn)
	}
}

// transportFixture mounts a tiny NDJSON handler behind a chaos
// transport.
func transportFixture(t *testing.T, plan Plan) (*http.Client, string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "{\"ok\":true}\n{\"ok\":true}\n")
	}))
	t.Cleanup(ts.Close)
	in, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	return &http.Client{Transport: &Transport{Injector: in}}, ts.URL
}

func TestTransportDrop(t *testing.T) {
	client, url := transportFixture(t, Plan{Seed: 1, Rules: []Rule{{Site: SiteComms, Class: Drop, P: 1}}})
	_, err := client.Get(url)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped request returned %v, want ErrInjected", err)
	}
}

func TestTransportPartitionByPeer(t *testing.T) {
	clientA, urlA := transportFixture(t, Plan{})
	host := strings.TrimPrefix(urlA, "http://")
	plan := Plan{Seed: 1, Rules: []Rule{{Site: SiteComms, Class: Partition, P: 1, Peer: host}}}
	in, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: &Transport{Injector: in}}
	if _, err := client.Get(urlA); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned peer reachable: %v", err)
	}
	// A different peer sails through.
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer other.Close()
	resp, err := client.Get(other.URL)
	if err != nil {
		t.Fatalf("non-partitioned peer unreachable: %v", err)
	}
	resp.Body.Close()
	_ = clientA
}

func TestTransportHangRespectsContext(t *testing.T) {
	client, url := transportFixture(t, Plan{Seed: 1, Rules: []Rule{{Site: SiteComms, Class: Hang, P: 1}}})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("hung request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang ignored the context for %s", elapsed)
	}
}

func TestTransportCorruptFlipsOneBodyByte(t *testing.T) {
	clean, url := transportFixture(t, Plan{})
	resp, err := clean.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	client, _ := transportFixture(t, Plan{Seed: 5, Rules: []Rule{{Site: SiteComms, Class: Corrupt, P: 1}}})
	resp, err = client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Equal(got, want) {
		t.Fatal("corrupt transport returned clean bytes")
	}
	if len(got) != len(want) {
		t.Fatalf("corruption changed the length: %d != %d", len(got), len(want))
	}
	if bytes.Count(got, []byte{'\n'}) != bytes.Count(want, []byte{'\n'}) {
		t.Fatal("corruption changed the newline framing")
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
}

func TestTransportDelay(t *testing.T) {
	client, url := transportFixture(t, Plan{Seed: 1, Rules: []Rule{{Site: SiteComms, Class: Delay, P: 1, Delay: 80 * time.Millisecond}}})
	start := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("delayed request returned after only %s", elapsed)
	}
}
