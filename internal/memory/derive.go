package memory

import (
	"fmt"

	"repro/internal/rng"
)

// PhiCurvePoint is one (θ, φ) sample of the measured overhead curve.
type PhiCurvePoint struct {
	Theta float64
	Phi   float64
}

// PhiCurve measures the expected COW overhead φ(θ) over a range of
// upload durations, averaging episodes per point. It is the measured
// counterpart of the paper's linear interpolation θ(φ) = θmin +
// α(θmin − φ).
func PhiCurve(p *Process, thetas []float64, copyTime float64, order UploadOrder,
	episodes int, stream *rng.Stream) ([]PhiCurvePoint, error) {
	if episodes < 1 {
		return nil, fmt.Errorf("memory: %d episodes", episodes)
	}
	out := make([]PhiCurvePoint, 0, len(thetas))
	for _, theta := range thetas {
		var sum float64
		for e := 0; e < episodes; e++ {
			res, err := ForkUpload(p, theta, copyTime, order, stream)
			if err != nil {
				return nil, err
			}
			sum += res.OverheadTime
		}
		out = append(out, PhiCurvePoint{Theta: theta, Phi: sum / float64(episodes)})
	}
	return out, nil
}

// FitAlpha estimates the overlap factor α of the paper's linear model
// from a measured (θ, φ) curve by least squares on θ = θmin + α(θmin−φ):
// α = Σ (θ−θmin)(θmin−φ) / Σ (θmin−φ)². Points with φ ≥ θmin carry no
// information (fully blocking) and are skipped.
func FitAlpha(curve []PhiCurvePoint, thetaMin float64) (float64, error) {
	var num, den float64
	for _, pt := range curve {
		d := thetaMin - pt.Phi
		if d <= 0 {
			continue
		}
		num += (pt.Theta - thetaMin) * d
		den += d * d
	}
	if den == 0 {
		return 0, fmt.Errorf("memory: no usable points to fit α (all φ >= θmin)")
	}
	return num / den, nil
}

// EffectiveDelta returns the local-checkpoint time of the double
// protocols with and without fork/COW: without fork, δ is the time to
// write the whole image to local storage at the given bandwidth; with
// fork it shrinks to the pause needed to set up the copy-on-write
// mappings (setupTime) because the writing proceeds concurrently. The
// paper notes this refinement would "reduce δ significantly" for the
// double protocols too.
func EffectiveDelta(p *Process, localBandwidth, setupTime float64, withFork bool) float64 {
	if !withFork {
		return float64(p.Bytes()) / localBandwidth
	}
	return setupTime
}
