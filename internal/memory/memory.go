// Package memory models the copy-on-write fork checkpointing that
// motivates the triple algorithm (§IV): a process forks, the child
// uploads the image to the buddies while the parent keeps computing,
// and every parent write to a page the child has not yet uploaded
// forces the OS to duplicate that page. The trade-off the paper
// describes — upload slower to relieve the network vs upload faster to
// duplicate fewer pages, mitigated by sending the most-likely-modified
// pages first — is directly reproducible here.
//
// This substrate substitutes for the real fork/COW mechanism (which a
// simulation cannot invoke meaningfully) and supplies the paper's
// stated future work: deriving realistic values of the overhead φ and
// the overlap factor α from application write behaviour instead of
// assuming them.
package memory

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Process describes the application state on one node.
type Process struct {
	// Pages is the number of resident pages.
	Pages int
	// PageBytes is the page size in bytes.
	PageBytes int64
	// WriteRate is the rate of page-dirtying writes per second
	// executed by the computing parent.
	WriteRate float64
	// Weights holds the relative probability of each page being the
	// target of a write. It is normalized internally; a nil slice
	// means uniform.
	Weights []float64
}

// Validate reports an error for a non-physical process.
func (p *Process) Validate() error {
	if p.Pages <= 0 {
		return fmt.Errorf("memory: %d pages", p.Pages)
	}
	if p.PageBytes <= 0 {
		return fmt.Errorf("memory: page size %d", p.PageBytes)
	}
	if p.WriteRate < 0 || math.IsNaN(p.WriteRate) {
		return fmt.Errorf("memory: write rate %v", p.WriteRate)
	}
	if p.Weights != nil && len(p.Weights) != p.Pages {
		return fmt.Errorf("memory: %d weights for %d pages", len(p.Weights), p.Pages)
	}
	return nil
}

// Bytes returns the total image size.
func (p *Process) Bytes() int64 { return int64(p.Pages) * p.PageBytes }

// normWeights returns the per-page write probabilities.
func (p *Process) normWeights() []float64 {
	w := make([]float64, p.Pages)
	if p.Weights == nil {
		for i := range w {
			w[i] = 1 / float64(p.Pages)
		}
		return w
	}
	var sum float64
	for _, x := range p.Weights {
		if x < 0 {
			x = 0
		}
		sum += x
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1 / float64(p.Pages)
		}
		return w
	}
	for i, x := range p.Weights {
		if x < 0 {
			x = 0
		}
		w[i] = x / sum
	}
	return w
}

// ZipfWeights returns Zipf(s) page-write weights over n pages: page i
// has weight 1/(i+1)^s. HPC applications typically concentrate writes
// on a small working set, which Zipf captures.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// UploadOrder selects the order in which the child uploads pages.
type UploadOrder int

const (
	// HotFirst uploads the most-likely-modified pages first — the
	// paper's recommendation, minimizing the window during which hot
	// pages are still shared.
	HotFirst UploadOrder = iota
	// ColdFirst uploads the least-likely-modified pages first — the
	// adversarial order, used as the ablation baseline.
	ColdFirst
	// AddressOrder uploads pages by address (index), oblivious to
	// hotness — what a naive implementation does.
	AddressOrder
)

// String returns the order name.
func (o UploadOrder) String() string {
	switch o {
	case HotFirst:
		return "hot-first"
	case ColdFirst:
		return "cold-first"
	case AddressOrder:
		return "address-order"
	default:
		return fmt.Sprintf("UploadOrder(%d)", int(o))
	}
}

// ForkResult summarizes one fork-upload episode.
type ForkResult struct {
	// Theta is the upload duration used.
	Theta float64
	// Duplicated is the number of pages the COW mechanism copied.
	Duplicated int
	// ExtraBytes is the peak extra memory consumed by duplicates.
	ExtraBytes int64
	// OverheadTime is the application time lost to page copies, i.e.
	// the measured φ contribution of the COW traffic for this episode.
	OverheadTime float64
}

// ForkUpload simulates one checkpoint: fork at time 0, upload all
// pages evenly over theta seconds in the given order while the parent
// writes pages at the process write rate, each COW duplication costing
// copyTime seconds of application time. The returned overhead is the
// φ of this episode.
//
// The simulation uses the exact first-write-time decomposition of the
// Poisson write process: page i receives its first write at an
// Exponential(rate·p_i) time, and is duplicated iff that write lands
// before the page's upload completes.
func ForkUpload(p *Process, theta, copyTime float64, order UploadOrder, stream *rng.Stream) (ForkResult, error) {
	if err := p.Validate(); err != nil {
		return ForkResult{}, err
	}
	if theta <= 0 {
		return ForkResult{}, fmt.Errorf("memory: upload duration %v", theta)
	}
	if copyTime < 0 {
		return ForkResult{}, fmt.Errorf("memory: copy time %v", copyTime)
	}
	weights := p.normWeights()
	uploadAt := uploadTimes(weights, theta, order)
	res := ForkResult{Theta: theta}
	for i, w := range weights {
		rate := p.WriteRate * w
		if rate <= 0 {
			continue
		}
		firstWrite := stream.Exponential(rate)
		if firstWrite < uploadAt[i] {
			res.Duplicated++
		}
	}
	res.ExtraBytes = int64(res.Duplicated) * p.PageBytes
	res.OverheadTime = float64(res.Duplicated) * copyTime
	return res, nil
}

// ExpectedDuplications returns the analytic expectation of the number
// of COW duplications for the same model: Σ_i 1 − exp(−rate·p_i·u_i).
func ExpectedDuplications(p *Process, theta float64, order UploadOrder) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if theta <= 0 {
		return 0, fmt.Errorf("memory: upload duration %v", theta)
	}
	weights := p.normWeights()
	uploadAt := uploadTimes(weights, theta, order)
	var sum float64
	for i, w := range weights {
		sum += 1 - math.Exp(-p.WriteRate*w*uploadAt[i])
	}
	return sum, nil
}

// uploadTimes returns the completion time of each page's upload when
// pages are sent back to back over theta seconds in the given order.
func uploadTimes(weights []float64, theta float64, order UploadOrder) []float64 {
	n := len(weights)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	switch order {
	case HotFirst:
		sort.SliceStable(idx, func(a, b int) bool { return weights[idx[a]] > weights[idx[b]] })
	case ColdFirst:
		sort.SliceStable(idx, func(a, b int) bool { return weights[idx[a]] < weights[idx[b]] })
	case AddressOrder:
		// keep index order
	}
	per := theta / float64(n)
	at := make([]float64, n)
	for pos, page := range idx {
		at[page] = float64(pos+1) * per
	}
	return at
}
