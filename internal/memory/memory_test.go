package memory

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func testProc() *Process {
	return &Process{
		Pages:     4096,
		PageBytes: 4096,
		WriteRate: 1000, // 1000 page writes/s
		Weights:   ZipfWeights(4096, 1.2),
	}
}

func TestProcessValidate(t *testing.T) {
	if err := testProc().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Process{
		{Pages: 0, PageBytes: 1, WriteRate: 1},
		{Pages: 4, PageBytes: 0, WriteRate: 1},
		{Pages: 4, PageBytes: 1, WriteRate: -1},
		{Pages: 4, PageBytes: 1, WriteRate: math.NaN()},
		{Pages: 4, PageBytes: 1, WriteRate: 1, Weights: []float64{1, 2}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("process %d should be invalid", i)
		}
	}
}

func TestBytes(t *testing.T) {
	p := &Process{Pages: 131072, PageBytes: 4096, WriteRate: 0}
	if got := p.Bytes(); got != 512<<20 {
		t.Fatalf("Bytes = %d, want 512MB", got)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("weights = %v", w)
		}
	}
}

func TestNormWeightsFallbacks(t *testing.T) {
	// nil weights → uniform.
	p := &Process{Pages: 4, PageBytes: 1, WriteRate: 1}
	w := p.normWeights()
	for _, x := range w {
		if math.Abs(x-0.25) > 1e-12 {
			t.Fatalf("uniform weights = %v", w)
		}
	}
	// all-zero weights → uniform, not NaN.
	p.Weights = []float64{0, 0, 0, 0}
	w = p.normWeights()
	for _, x := range w {
		if math.Abs(x-0.25) > 1e-12 {
			t.Fatalf("degenerate weights = %v", w)
		}
	}
	// negative weights are clamped to 0.
	p.Weights = []float64{-5, 1, 1, 0}
	w = p.normWeights()
	if w[0] != 0 || math.Abs(w[1]-0.5) > 1e-12 {
		t.Fatalf("clamped weights = %v", w)
	}
}

func TestUploadTimesOrdering(t *testing.T) {
	weights := []float64{0.1, 0.6, 0.3}
	theta := 3.0
	hot := uploadTimes(weights, theta, HotFirst)
	// Hot-first: page 1 (0.6) at t=1, page 2 (0.3) at t=2, page 0 at t=3.
	if hot[1] != 1 || hot[2] != 2 || hot[0] != 3 {
		t.Fatalf("hot-first times = %v", hot)
	}
	cold := uploadTimes(weights, theta, ColdFirst)
	if cold[0] != 1 || cold[2] != 2 || cold[1] != 3 {
		t.Fatalf("cold-first times = %v", cold)
	}
	addr := uploadTimes(weights, theta, AddressOrder)
	if addr[0] != 1 || addr[1] != 2 || addr[2] != 3 {
		t.Fatalf("address-order times = %v", addr)
	}
}

func TestForkUploadValidation(t *testing.T) {
	s := rng.New(1)
	if _, err := ForkUpload(testProc(), 0, 1e-6, HotFirst, s); err == nil {
		t.Fatal("zero theta should fail")
	}
	if _, err := ForkUpload(testProc(), 4, -1, HotFirst, s); err == nil {
		t.Fatal("negative copy time should fail")
	}
	if _, err := ForkUpload(&Process{}, 4, 0, HotFirst, s); err == nil {
		t.Fatal("invalid process should fail")
	}
}

func TestForkUploadMatchesExpectation(t *testing.T) {
	p := testProc()
	s := rng.New(42)
	theta := 4.0
	want, err := ExpectedDuplications(p, theta, HotFirst)
	if err != nil {
		t.Fatal(err)
	}
	const episodes = 200
	var sum float64
	for e := 0; e < episodes; e++ {
		res, err := ForkUpload(p, theta, 1e-6, HotFirst, s)
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.Duplicated)
	}
	got := sum / episodes
	if math.Abs(got-want) > 0.05*want+2 {
		t.Fatalf("mean duplications %v, analytic %v", got, want)
	}
}

func TestHotFirstBeatsColdFirst(t *testing.T) {
	// The paper's ordering claim: uploading the most-likely-modified
	// pages first strictly reduces expected duplications on a skewed
	// write distribution. Zipf weights are descending by construction,
	// which would make AddressOrder coincide with HotFirst; interleave
	// them so the three orders genuinely differ.
	p := testProc()
	n := len(p.Weights)
	shuffled := make([]float64, n)
	for i, w := range p.Weights {
		shuffled[(i*7919)%n] = w // 7919 is odd, hence coprime with 4096
	}
	p.Weights = shuffled
	theta := 4.0
	hot, err := ExpectedDuplications(p, theta, HotFirst)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ExpectedDuplications(p, theta, ColdFirst)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := ExpectedDuplications(p, theta, AddressOrder)
	if err != nil {
		t.Fatal(err)
	}
	if !(hot < addr && addr < cold) {
		t.Fatalf("ordering violated: hot %v, address %v, cold %v", hot, addr, cold)
	}
	if hot > 0.8*cold {
		t.Fatalf("hot-first gain too small: %v vs %v", hot, cold)
	}
}

func TestFasterUploadDuplicatesLess(t *testing.T) {
	// §IV: "taking less time to upload ... reduces the amount of pages
	// that must be created with the copy-on-write mechanism".
	p := testProc()
	prev := -1.0
	for _, theta := range []float64{1, 2, 4, 8, 16, 44} {
		d, err := ExpectedDuplications(p, theta, HotFirst)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && d < prev {
			t.Fatalf("duplications decreased with slower upload: θ=%v d=%v prev=%v", theta, d, prev)
		}
		prev = d
	}
}

func TestUniformWeightsOrderIrrelevant(t *testing.T) {
	// With uniform write probabilities the upload order cannot matter.
	p := &Process{Pages: 1000, PageBytes: 4096, WriteRate: 100}
	theta := 4.0
	hot, _ := ExpectedDuplications(p, theta, HotFirst)
	cold, _ := ExpectedDuplications(p, theta, ColdFirst)
	if math.Abs(hot-cold) > 1e-9 {
		t.Fatalf("uniform: hot %v != cold %v", hot, cold)
	}
}

func TestZeroWriteRateNoDuplications(t *testing.T) {
	p := &Process{Pages: 100, PageBytes: 4096, WriteRate: 0}
	res, err := ForkUpload(p, 4, 1e-6, HotFirst, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicated != 0 || res.OverheadTime != 0 || res.ExtraBytes != 0 {
		t.Fatalf("idle process duplicated pages: %+v", res)
	}
}

func TestPhiCurveAndFitAlpha(t *testing.T) {
	p := testProc()
	thetas := []float64{4, 8, 16, 24, 32, 44}
	curve, err := PhiCurve(p, thetas, 5e-5, HotFirst, 50, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(thetas) {
		t.Fatalf("curve has %d points", len(curve))
	}
	// φ rises with θ here (longer exposure → more duplications), but
	// must stay below θmin for the fit to make sense.
	for _, pt := range curve {
		if pt.Phi < 0 {
			t.Fatalf("negative φ: %+v", pt)
		}
	}
	alpha, err := FitAlpha(curve, 4)
	if err != nil {
		t.Fatal(err)
	}
	if alpha <= 0 {
		t.Fatalf("fitted α = %v, want positive", alpha)
	}
}

func TestFitAlphaNoInformation(t *testing.T) {
	curve := []PhiCurvePoint{{Theta: 4, Phi: 5}, {Theta: 8, Phi: 4}}
	if _, err := FitAlpha(curve, 4); err == nil {
		t.Fatal("curve with φ >= θmin everywhere should not fit")
	}
}

func TestPhiCurveValidation(t *testing.T) {
	if _, err := PhiCurve(testProc(), []float64{4}, 0, HotFirst, 0, rng.New(1)); err == nil {
		t.Fatal("zero episodes should fail")
	}
	if _, err := PhiCurve(testProc(), []float64{-1}, 0, HotFirst, 1, rng.New(1)); err == nil {
		t.Fatal("negative theta should fail")
	}
}

func TestEffectiveDelta(t *testing.T) {
	p := &Process{Pages: 131072, PageBytes: 4096, WriteRate: 0} // 512 MB
	// Base scenario: 256 MB/s SSD gives δ = 2 s, the Table I value.
	if got := EffectiveDelta(p, 256<<20, 0.05, false); math.Abs(got-2) > 1e-12 {
		t.Fatalf("δ without fork = %v, want 2", got)
	}
	if got := EffectiveDelta(p, 256<<20, 0.05, true); got != 0.05 {
		t.Fatalf("δ with fork = %v, want setup time", got)
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[UploadOrder]string{
		HotFirst: "hot-first", ColdFirst: "cold-first", AddressOrder: "address-order",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
	if UploadOrder(7).String() == "" {
		t.Error("unknown order should still format")
	}
}

func TestExpectedDuplicationsBounds(t *testing.T) {
	p := testProc()
	d, err := ExpectedDuplications(p, 44, ColdFirst)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 || d > float64(p.Pages) {
		t.Fatalf("expected duplications %v outside [0, pages]", d)
	}
}
