package sim

import (
	"fmt"
	"math"

	"repro/internal/failure"
	"repro/internal/rng"
)

type mode int

const (
	// modeSchedule: the application follows the periodic checkpoint
	// schedule (phases 1..3 of the period).
	modeSchedule mode = iota
	// modeStall: downtime + recovery (+ blocking retransmissions for
	// the BoF protocols); no work progresses.
	modeStall
	// modeReexec: re-executing the work lost to the last failure; at
	// reduced rate while the buddy images are still being re-received
	// (NBL protocols).
	modeReexec
)

const workEps = 1e-9

// fmin and fmax are branch-only float min/max for the hot path. Every
// operand there is finite (and non-negative), so math.Min/Max's NaN
// and signed-zero handling is dead weight; for such operands the
// result is bit-identical to math.Min/Max.
func fmin(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func fmax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// riskEntry records one node whose images are being restored: the
// restoration (risk) window closes at end. The engine keeps these in a
// small reusable slice — buddy groups have 2 or 3 members and risk
// windows are short, so the set holds a handful of entries at most and
// the old map was pure allocation and hashing overhead.
type riskEntry struct {
	node int
	end  float64
}

// engine is the state of one simulated execution. The embedded
// compiled block is the immutable per-batch precomputation; everything
// else is per-run state rewound by reset, so one engine serves a whole
// Monte-Carlo batch without allocating.
type engine struct {
	compiled

	// Failure source: exactly one of merged / renewal / src is active.
	// merged is the concrete exponential fast path (no interface
	// dispatch, no per-run stream allocation); renewal covers Config.Law
	// and the per-node laws of MTBF groups; src covers externally
	// supplied sources (trace replay).
	merged  *failure.Merged
	renewal *failure.Renewal
	src     failure.Source
	// domains, when the config sets a burst model, wraps the active
	// source above and takes over nextFailure.
	domains *failure.Domains
	// replay is src's concrete type when it is a rewindable trace
	// replay, so reset can rewind it for batch reuse.
	replay *failure.Replay
	stream rng.Stream // owned stream backing merged / renewal / domains
	// antithetic selects the reflected-uniform failure sample for the
	// next reset: the run consumes the identical raw RNG state (same
	// victims, same draw counts) but every inter-arrival time is drawn
	// from the reflected quantile, which is what makes a (seed, seed)
	// pair of plain+antithetic runs negatively correlated.
	antithetic bool

	// timeline state
	t               float64
	work            float64 // current live work level
	snapshotWork    float64 // work level of the last committed snapshot
	periodStartWork float64 // work level at offset 0 of the current period
	md              mode
	offset          float64 // period offset, valid in modeSchedule
	stallRemaining  float64
	reexecRemaining float64 // work units still to re-execute
	overlapRemain   float64 // time left in the reduced-rate window
	resumeOffset    float64 // where the schedule resumes after re-execution

	// risk state: nodes inside their restoration window.
	comp      []riskEntry
	riskUntil float64 // end of the current union of risk windows
	// everCommitted: a snapshot set has committed. Before that, the
	// rollback target is the initial configuration, which the paper
	// treats as "always successful": no failure chain is fatal yet.
	everCommitted bool

	// onCommit, when set, is invoked at every snapshot commit with
	// the current time (used by the detailed simulator to keep the
	// checkpoint registry in lockstep). Setting it disables the
	// fault-free period fast-forward, so every commit is observed.
	onCommit func(t float64)

	// err records a run-level failure condition (trace exhausted before
	// the simulation could conclude); reset clears it.
	err error

	res Result
}

// newEngine compiles cfg and builds a single-use engine honoring
// cfg.Source (the path used by Run and the detailed simulator).
func newEngine(cfg Config) (*engine, error) {
	c, err := compileConfig(cfg)
	if err != nil {
		return nil, err
	}
	e := &engine{compiled: c, comp: make([]riskEntry, 0, 16)}
	e.initSource(cfg.Source)
	e.reset(cfg.Seed)
	return e, nil
}

// initSource installs the failure source: an external Source when
// given, the per-node renewal process when a Law (or per-group MTBF
// weights) is set, and the merged exponential process otherwise. A
// configured burst model wraps whichever background is active.
func (e *engine) initSource(src failure.Source) {
	var bg failure.Source
	switch {
	case src != nil:
		e.src = src
		if r, ok := src.(*failure.Replay); ok {
			e.replay = r
		}
		bg = src
	case e.nodeLaws != nil:
		e.renewal = failure.NewRenewal(e.nodeLaws, &e.stream)
		bg = e.renewal
	case e.law != nil:
		e.renewal = failure.NewRenewalUniform(e.p.N, e.law, &e.stream)
		bg = e.renewal
	default:
		e.merged = failure.NewMerged(e.p.N, e.p.M, &e.stream)
		bg = e.merged
	}
	if e.corr != nil && e.corr.Domains != nil {
		// The burst stream splits from e.stream without advancing it, so
		// the background's draws are exactly what they would be unwrapped.
		e.domains = failure.NewDomains(e.p.N, *e.corr.Domains, bg, &e.stream)
	}
}

// reset rewinds the engine to the start of a fresh run with the given
// seed. It allocates nothing: the risk set keeps its backing array and
// the failure source is reseeded in place.
func (e *engine) reset(seed uint64) {
	e.t = 0
	e.work = 0
	e.snapshotWork = 0
	e.periodStartWork = 0
	e.md = modeSchedule
	e.offset = 0
	e.stallRemaining = 0
	e.reexecRemaining = 0
	e.overlapRemain = 0
	e.resumeOffset = 0
	e.comp = e.comp[:0]
	e.riskUntil = 0
	e.everCommitted = false
	e.res = Result{Period: e.period}
	e.err = nil
	// The reflection mode is applied before reseeding: Reseed preserves
	// it (and renewal child streams inherit it through ReseedSplit), so
	// the whole failure sample of the run is plain or antithetic as one.
	e.stream.SetReflected(e.antithetic)
	switch {
	case e.merged != nil:
		e.merged.Reseed(seed)
	case e.renewal != nil:
		e.stream.Reseed(seed)
		e.renewal.Reseed(&e.stream)
	default:
		if e.replay != nil {
			e.replay.Rewind()
		}
		if e.domains != nil {
			// No generative background owns the stream; seed it so the
			// burst process still derives deterministically from the seed.
			e.stream.Reseed(seed)
		}
	}
	if e.domains != nil {
		// After the background: the burst stream re-derives from the
		// freshly seeded parent state (without advancing it).
		e.domains.Reseed(&e.stream)
	}
}

// runSeed executes one full run of the given seed, with the plain or
// the antithetic (reflected-uniform) failure sample.
// runSeed(seed, false) is bitwise identical to the historical
// reset+run path.
func (e *engine) runSeed(seed uint64, antithetic bool) Result {
	e.antithetic = antithetic
	e.reset(seed)
	return e.run()
}

// nextFailure draws the next failure from whichever source is active.
// The merged exponential path is a concrete call the compiler can
// devirtualize and inline.
func (e *engine) nextFailure() (failure.Event, bool) {
	if e.domains != nil {
		return e.domains.Next()
	}
	if e.merged != nil {
		return e.merged.Next()
	}
	if e.renewal != nil {
		return e.renewal.Next()
	}
	return e.src.Next()
}

// sourceCoverage returns the absolute time up to which the active
// source's silence is meaningful. Generative sources never exhaust, so
// the question only arises for bounded sources (trace replays, wrapped
// or not); everything else covers forever.
func (e *engine) sourceCoverage() float64 {
	var s failure.Source
	switch {
	case e.domains != nil:
		s = e.domains
	case e.src != nil:
		s = e.src
	default:
		return math.Inf(1)
	}
	if b, ok := s.(failure.Bounded); ok {
		return b.CoverageHorizon()
	}
	return math.Inf(1)
}

// scheduleWork returns the work accomplished by the schedule between
// period offset 0 and the given offset, in a fault-free period.
func (c *compiled) scheduleWork(offset float64) float64 {
	c1 := c.phases.Ckpt1
	c2 := c1 + c.phases.Ckpt2
	var w float64
	if c.pr.IsTriple() {
		w += fmin(offset, c1) * c.exRate
	}
	if offset > c1 {
		w += (fmin(offset, c2) - c1) * c.exRate
	}
	if offset > c2 {
		w += offset - c2
	}
	return w
}

// segment returns the phase index (1..3), work rate and end offset of
// the schedule segment containing the given period offset.
func (c *compiled) segment(offset float64) (idx int, rate, segEnd float64) {
	c1 := c.phases.Ckpt1
	c2 := c1 + c.phases.Ckpt2
	switch {
	case offset < c1:
		if c.pr.IsTriple() {
			return 1, c.exRate, c1
		}
		return 1, 0, c1 // blocking local checkpoint
	case offset < c2:
		return 2, c.exRate, c2
	default:
		return 3, 1, c.period
	}
}

// advanceUntil advances the timeline to target (absolute time) or
// until the application completes, whichever comes first. It returns
// true on completion.
func (e *engine) advanceUntil(target float64) bool {
	for e.t < target-workEps {
		dt := target - e.t
		switch e.md {
		case modeSchedule:
			// Fast-forward: at a period start with no open risk window
			// and no commit observer, every full fault-free period until
			// the target is pure schedule repetition — commit bookkeeping
			// included — so it collapses to a handful of float additions
			// per period. The additions replicate the stepwise walk's
			// operations exactly (same operands, same order), so the
			// trajectory is bitwise identical to the general loop; the
			// saving is the per-segment dispatch, min/need guards and
			// divisions, which is where the bulk of the simulated time
			// goes on healthy platforms (failures are many periods
			// apart).
			if e.offset == 0 && e.onCommit == nil && e.riskUntil <= e.t &&
				dt >= e.period+workEps {
				if e.replayPeriods(target) {
					continue
				}
			}
			idx, rate, segEnd := e.segment(e.offset)
			step := fmin(dt, segEnd-e.offset)
			if rate > 0 {
				if need := (e.tbase - e.work) / rate; need < step {
					step = need
				}
			}
			e.t += step
			e.offset += step
			e.work += rate * step
			if e.work >= e.tbase-workEps {
				return true
			}
			if e.offset >= segEnd-workEps {
				e.crossBoundary(idx, segEnd)
			}
		case modeStall:
			step := fmin(dt, e.stallRemaining)
			e.t += step
			e.stallRemaining -= step
			if e.stallRemaining <= workEps {
				e.stallRemaining = 0
				e.md = modeReexec
			}
		case modeReexec:
			rate := 1.0
			limit := dt
			if e.overlapRemain > 0 {
				rate = e.exRate
				limit = fmin(limit, e.overlapRemain)
			}
			if e.reexecRemaining <= workEps {
				e.finishReexec()
				continue
			}
			step := limit
			if rate > 0 {
				if need := e.reexecRemaining / rate; need < step {
					step = need
				}
				if need := (e.tbase - e.work) / rate; need < step {
					step = need
				}
			}
			e.t += step
			e.work += rate * step
			e.reexecRemaining -= rate * step
			if e.overlapRemain > 0 {
				e.overlapRemain -= step
				if e.overlapRemain < workEps {
					e.overlapRemain = 0
				}
			}
			if e.work >= e.tbase-workEps {
				return true
			}
			if e.reexecRemaining <= workEps {
				e.finishReexec()
			}
		}
	}
	e.t = target
	return false
}

// replayPeriods advances the timeline through as many full fault-free
// periods as fit strictly before target without risking completion,
// replicating the stepwise walk's float operations bit for bit: per
// period, phase 1 (work only for the triple protocols), phase 2, the
// snapshot commit, and phase 3. Each period fits the remaining time
// with an eps to spare, so the stepwise walk would never have clamped
// a segment inside it; the work budget keeps two full periods of
// headroom below Tbase — far more than any rounding drift — so the
// completion instant is always resolved by the stepwise walk. The
// caller guarantees no open risk window and no commit observer, so the
// skipped commits reduce to snapshot bookkeeping (pending risk entries
// can only be expired ones; the first skipped commit would have
// cleared them). It reports whether any period was replayed.
func (e *engine) replayPeriods(target float64) bool {
	if e.periodWork <= 0 {
		return false
	}
	c1 := e.phases.Ckpt1
	c2 := c1 + e.phases.Ckpt2
	seg2 := c2 - c1
	seg3 := e.period - c2
	triple := e.pr.IsTriple()
	workCap := e.tbase - 2*e.periodWork
	replayed := false
	for target-e.t >= e.period+workEps && e.work < workCap {
		w0 := e.work
		if triple {
			e.work += e.exRate * c1
		}
		e.t += c1
		e.t += seg2
		e.work += e.exRate * seg2
		e.snapshotWork = w0
		e.t += seg3
		e.work += seg3
		e.periodStartWork = e.work
		replayed = true
	}
	if replayed {
		e.comp = e.comp[:0]
		e.everCommitted = true
		e.offset = 0
	}
	return replayed
}

// crossBoundary applies the schedule transition at the end of phase
// idx. Dispatching on the phase index (not the boundary value) keeps
// degenerate periods with σ = 0, where the phase-2 boundary coincides
// with the period end, from looping.
func (e *engine) crossBoundary(idx int, segEnd float64) {
	switch idx {
	case 1:
		if e.pr.IsTriple() {
			// Triple commits once the image reaches the preferred buddy.
			e.commit()
		}
		e.offset = segEnd
	case 2:
		if !e.pr.IsTriple() {
			// Double commits when the remote exchange completes.
			e.commit()
		}
		e.offset = segEnd
	default:
		e.periodStartWork = e.work
		e.offset = 0
	}
}

// commit records a snapshot-set commit. A committed set means every
// rank's image — including the ranks restored after recent failures —
// is fully replicated again, so all open risk windows close early.
// (In steady state commits always land after the windows anyway; the
// distinction matters only for failures straddling the first commits,
// where re-execution is short.)
func (e *engine) commit() {
	e.snapshotWork = e.periodStartWork
	e.everCommitted = true
	e.comp = e.comp[:0]
	if e.riskUntil > e.t {
		e.res.RiskTime -= e.riskUntil - e.t
		e.riskUntil = e.t
	}
	if e.onCommit != nil {
		e.onCommit(e.t)
	}
}

// finishReexec re-enters the periodic schedule at the resume offset.
func (e *engine) finishReexec() {
	e.md = modeSchedule
	e.reexecRemaining = 0
	e.offset = e.resumeOffset
	if e.resumeOffset == 0 {
		e.periodStartWork = e.work
	}
}

// applyFailure processes the failure of the given node at the current
// time. It returns true when the failure is fatal.
func (e *engine) applyFailure(node int) bool {
	e.res.Failures++

	// --- Risk bookkeeping -------------------------------------------------
	gStart := (node / e.group) * e.group
	others := 0
	nodeAt := -1
	for i := 0; i < len(e.comp); {
		en := e.comp[i]
		if en.end <= e.t {
			// Expired window: drop the entry (swap-remove; set order is
			// irrelevant).
			e.comp[i] = e.comp[len(e.comp)-1]
			e.comp = e.comp[:len(e.comp)-1]
			continue
		}
		if en.node == node {
			nodeAt = i
		} else if en.node >= gStart && en.node < gStart+e.group {
			others++
		}
		i++
	}
	if others > 0 {
		// Before the first commit the rollback target is the initial
		// configuration, which survives any failure pattern (§IV).
		if others >= e.group-1 && e.everCommitted {
			e.res.Fatal = true
			e.res.FatalTime = e.t
			return true
		}
		e.res.FailuresInRisk++
	}
	if nodeAt >= 0 {
		e.comp[nodeAt].end = e.t + e.risk
	} else {
		e.comp = append(e.comp, riskEntry{node: node, end: e.t + e.risk})
	}

	// Union of risk windows, for the RiskTime metric.
	start := fmax(e.t, e.riskUntil)
	if end := e.t + e.risk; end > start {
		e.res.RiskTime += end - start
		e.riskUntil = end
	}

	// First-order importance estimate of the fatal-chain probability
	// opened by this failure (see Result.ImportanceFatalProb).
	e.res.ImportanceFatalProb += e.impFatal

	// --- Rollback ----------------------------------------------------------
	if e.md == modeSchedule {
		// Decide where the schedule resumes, reproducing the model's
		// per-phase rules (DESIGN.md).
		switch e.phases.PhaseOf(e.offset) {
		case 1:
			e.resumeOffset = 0
		case 2:
			if e.pr.IsTriple() {
				e.resumeOffset = e.phases.Ckpt1
			} else {
				e.resumeOffset = 0
			}
		default:
			e.resumeOffset = e.offset
		}
	}
	// else: a failure during failure handling keeps the previous
	// resume target; the handling simply restarts.

	e.work = e.snapshotWork
	reexec := e.periodStartWork + e.scheduleWork(e.resumeOffset) - e.snapshotWork
	if reexec < 0 {
		reexec = 0
	}
	e.reexecRemaining = reexec

	e.stallRemaining = e.p.D + e.p.R
	if e.pr.BlocksOnFailure() {
		e.stallRemaining += float64(e.images) * e.p.R
		e.overlapRemain = 0
	} else {
		e.overlapRemain = float64(e.images) * e.theta
	}
	e.md = modeStall
	return false
}

// faultFreeMakespan returns the time the fault-free schedule takes to
// produce the given amount of work.
func (c *compiled) faultFreeMakespan(workTarget float64) float64 {
	if workTarget <= 0 {
		return 0
	}
	w := c.periodWork
	full := math.Floor(workTarget / w)
	rem := workTarget - full*w
	tm := full * c.period
	if rem <= workEps {
		return tm
	}
	// Walk the phases of the last, partial period.
	c1, c2 := c.phases.Ckpt1, c.phases.Ckpt2
	if c.pr.IsTriple() && c.exRate > 0 {
		cap1 := c1 * c.exRate
		if rem <= cap1 {
			return tm + rem/c.exRate
		}
		rem -= cap1
		tm += c1
	} else {
		tm += c1 // blocking local checkpoint contributes no work
	}
	cap2 := c2 * c.exRate
	if c.exRate > 0 && rem <= cap2 {
		return tm + rem/c.exRate
	}
	rem -= cap2
	tm += c2
	return tm + rem
}

// run executes the simulation loop.
func (e *engine) run() Result {
	for {
		ev, ok := e.nextFailure()
		target := e.horizon
		if ok && ev.Time < e.horizon {
			target = ev.Time
		}
		if !ok {
			// An exhausted bounded source vouches for silence only up to
			// its coverage; the run may finish inside it but must not
			// coast fault-free past it.
			if cov := e.sourceCoverage(); cov < target {
				target = cov
			}
		}
		if e.advanceUntil(target) {
			e.res.Completed = true
			break
		}
		if !ok {
			if cov := e.sourceCoverage(); cov < e.horizon {
				e.err = fmt.Errorf("%w: log covers [0, %v], simulation still running at t=%v",
					failure.ErrTraceExhausted, cov, e.t)
			}
			break // horizon reached, trace exhausted, or coverage ended
		}
		if ev.Time >= e.horizon {
			break // horizon reached (saturated)
		}
		if e.applyFailure(ev.Node) {
			break // fatal
		}
	}
	e.res.Makespan = e.t
	e.res.WorkDone = math.Min(e.work, e.tbase)
	if e.res.Makespan > 0 {
		e.res.Waste = 1 - e.res.WorkDone/e.res.Makespan
	}
	e.res.LostTime = e.res.Makespan - e.faultFreeMakespan(e.res.WorkDone)
	return e.res
}
