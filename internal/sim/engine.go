package sim

import (
	"math"

	"repro/internal/core"
	"repro/internal/failure"
)

type mode int

const (
	// modeSchedule: the application follows the periodic checkpoint
	// schedule (phases 1..3 of the period).
	modeSchedule mode = iota
	// modeStall: downtime + recovery (+ blocking retransmissions for
	// the BoF protocols); no work progresses.
	modeStall
	// modeReexec: re-executing the work lost to the last failure; at
	// reduced rate while the buddy images are still being re-received
	// (NBL protocols).
	modeReexec
)

const workEps = 1e-9

// engine is the state of one simulated execution.
type engine struct {
	cfg Config
	pr  core.Protocol
	p   core.Params

	phi    float64
	theta  float64
	phases core.Phases
	period float64
	exRate float64 // work rate during an overlapped exchange: 1 − φ/θ
	images int     // buddy images to re-receive after a failure
	risk   float64 // risk-window length
	group  int     // buddy group size

	src failure.Source

	// timeline state
	t               float64
	work            float64 // current live work level
	snapshotWork    float64 // work level of the last committed snapshot
	periodStartWork float64 // work level at offset 0 of the current period
	md              mode
	offset          float64 // period offset, valid in modeSchedule
	stallRemaining  float64
	reexecRemaining float64 // work units still to re-execute
	overlapRemain   float64 // time left in the reduced-rate window
	resumeOffset    float64 // where the schedule resumes after re-execution

	// risk state: node -> end of its restoration window
	compromised map[int]float64
	riskUntil   float64 // end of the current union of risk windows
	// everCommitted: a snapshot set has committed. Before that, the
	// rollback target is the initial configuration, which the paper
	// treats as "always successful": no failure chain is fatal yet.
	everCommitted bool

	// onCommit, when set, is invoked at every snapshot commit with
	// the current time (used by the detailed simulator to keep the
	// checkpoint registry in lockstep).
	onCommit func(t float64)

	res Result
}

func newEngine(cfg Config) (*engine, error) {
	pr, p := cfg.Protocol, cfg.Params
	phi := core.EffectivePhi(pr, p, cfg.Phi)
	period := cfg.Period
	if period == 0 {
		var err error
		period, err = core.OptimalPeriod(pr, p, phi)
		if err != nil && err != core.ErrMTBFTooSmall {
			return nil, err
		}
	}
	phases, err := core.PeriodPhases(pr, p, phi, period)
	if err != nil {
		return nil, err
	}
	theta := p.Theta(phi)
	images := 1
	if pr.IsTriple() {
		images = 2
	}
	e := &engine{
		cfg:         cfg,
		pr:          pr,
		p:           p,
		phi:         phi,
		theta:       theta,
		phases:      phases,
		period:      period,
		exRate:      (theta - phi) / theta,
		images:      images,
		risk:        core.RiskWindow(pr, p, phi),
		group:       pr.GroupSize(),
		src:         cfg.source(),
		compromised: make(map[int]float64),
	}
	e.res.Period = period
	return e, nil
}

// scheduleWork returns the work accomplished by the schedule between
// period offset 0 and the given offset, in a fault-free period.
func (e *engine) scheduleWork(offset float64) float64 {
	c1 := e.phases.Ckpt1
	c2 := c1 + e.phases.Ckpt2
	var w float64
	if e.pr.IsTriple() {
		w += math.Min(offset, c1) * e.exRate
	}
	if offset > c1 {
		w += (math.Min(offset, c2) - c1) * e.exRate
	}
	if offset > c2 {
		w += offset - c2
	}
	return w
}

// segment returns the phase index (1..3), work rate and end offset of
// the schedule segment containing the given period offset.
func (e *engine) segment(offset float64) (idx int, rate, segEnd float64) {
	c1 := e.phases.Ckpt1
	c2 := c1 + e.phases.Ckpt2
	switch {
	case offset < c1:
		if e.pr.IsTriple() {
			return 1, e.exRate, c1
		}
		return 1, 0, c1 // blocking local checkpoint
	case offset < c2:
		return 2, e.exRate, c2
	default:
		return 3, 1, e.period
	}
}

// advanceUntil advances the timeline to target (absolute time) or
// until the application completes, whichever comes first. It returns
// true on completion.
func (e *engine) advanceUntil(target float64) bool {
	for e.t < target-workEps {
		dt := target - e.t
		switch e.md {
		case modeSchedule:
			idx, rate, segEnd := e.segment(e.offset)
			step := math.Min(dt, segEnd-e.offset)
			if rate > 0 {
				if need := (e.cfg.Tbase - e.work) / rate; need < step {
					step = need
				}
			}
			e.t += step
			e.offset += step
			e.work += rate * step
			if e.work >= e.cfg.Tbase-workEps {
				return true
			}
			if e.offset >= segEnd-workEps {
				e.crossBoundary(idx, segEnd)
			}
		case modeStall:
			step := math.Min(dt, e.stallRemaining)
			e.t += step
			e.stallRemaining -= step
			if e.stallRemaining <= workEps {
				e.stallRemaining = 0
				e.md = modeReexec
			}
		case modeReexec:
			rate := 1.0
			limit := dt
			if e.overlapRemain > 0 {
				rate = e.exRate
				limit = math.Min(limit, e.overlapRemain)
			}
			if e.reexecRemaining <= workEps {
				e.finishReexec()
				continue
			}
			step := limit
			if rate > 0 {
				if need := e.reexecRemaining / rate; need < step {
					step = need
				}
				if need := (e.cfg.Tbase - e.work) / rate; need < step {
					step = need
				}
			}
			e.t += step
			e.work += rate * step
			e.reexecRemaining -= rate * step
			if e.overlapRemain > 0 {
				e.overlapRemain -= step
				if e.overlapRemain < workEps {
					e.overlapRemain = 0
				}
			}
			if e.work >= e.cfg.Tbase-workEps {
				return true
			}
			if e.reexecRemaining <= workEps {
				e.finishReexec()
			}
		}
	}
	e.t = target
	return false
}

// crossBoundary applies the schedule transition at the end of phase
// idx. Dispatching on the phase index (not the boundary value) keeps
// degenerate periods with σ = 0, where the phase-2 boundary coincides
// with the period end, from looping.
func (e *engine) crossBoundary(idx int, segEnd float64) {
	switch idx {
	case 1:
		if e.pr.IsTriple() {
			// Triple commits once the image reaches the preferred buddy.
			e.commit()
		}
		e.offset = segEnd
	case 2:
		if !e.pr.IsTriple() {
			// Double commits when the remote exchange completes.
			e.commit()
		}
		e.offset = segEnd
	default:
		e.periodStartWork = e.work
		e.offset = 0
	}
}

// commit records a snapshot-set commit. A committed set means every
// rank's image — including the ranks restored after recent failures —
// is fully replicated again, so all open risk windows close early.
// (In steady state commits always land after the windows anyway; the
// distinction matters only for failures straddling the first commits,
// where re-execution is short.)
func (e *engine) commit() {
	e.snapshotWork = e.periodStartWork
	e.everCommitted = true
	for k := range e.compromised {
		delete(e.compromised, k)
	}
	if e.riskUntil > e.t {
		e.res.RiskTime -= e.riskUntil - e.t
		e.riskUntil = e.t
	}
	if e.onCommit != nil {
		e.onCommit(e.t)
	}
}

// finishReexec re-enters the periodic schedule at the resume offset.
func (e *engine) finishReexec() {
	e.md = modeSchedule
	e.reexecRemaining = 0
	e.offset = e.resumeOffset
	if e.resumeOffset == 0 {
		e.periodStartWork = e.work
	}
}

// applyFailure processes the failure of the given node at the current
// time. It returns true when the failure is fatal.
func (e *engine) applyFailure(node int) bool {
	e.res.Failures++

	// --- Risk bookkeeping -------------------------------------------------
	gStart := (node / e.group) * e.group
	others := 0
	for m := gStart; m < gStart+e.group && m < e.p.N; m++ {
		if m == node {
			continue
		}
		if end, ok := e.compromised[m]; ok {
			if end <= e.t {
				delete(e.compromised, m)
			} else {
				others++
			}
		}
	}
	if others > 0 {
		// Before the first commit the rollback target is the initial
		// configuration, which survives any failure pattern (§IV).
		if others >= e.group-1 && e.everCommitted {
			e.res.Fatal = true
			e.res.FatalTime = e.t
			return true
		}
		e.res.FailuresInRisk++
	}
	e.compromised[node] = e.t + e.risk

	// Union of risk windows, for the RiskTime metric.
	start := math.Max(e.t, e.riskUntil)
	if end := e.t + e.risk; end > start {
		e.res.RiskTime += end - start
		e.riskUntil = end
	}

	// First-order importance estimate of the fatal-chain probability
	// opened by this failure (see Result.ImportanceFatalProb).
	lr := e.p.Lambda() * e.risk
	if e.group == 2 {
		e.res.ImportanceFatalProb += lr
	} else {
		e.res.ImportanceFatalProb += 2 * lr * lr
	}

	// --- Rollback ----------------------------------------------------------
	if e.md == modeSchedule {
		// Decide where the schedule resumes, reproducing the model's
		// per-phase rules (DESIGN.md).
		switch e.phases.PhaseOf(e.offset) {
		case 1:
			e.resumeOffset = 0
		case 2:
			if e.pr.IsTriple() {
				e.resumeOffset = e.phases.Ckpt1
			} else {
				e.resumeOffset = 0
			}
		default:
			e.resumeOffset = e.offset
		}
	}
	// else: a failure during failure handling keeps the previous
	// resume target; the handling simply restarts.

	e.work = e.snapshotWork
	reexec := e.periodStartWork + e.scheduleWork(e.resumeOffset) - e.snapshotWork
	if reexec < 0 {
		reexec = 0
	}
	e.reexecRemaining = reexec

	e.stallRemaining = e.p.D + e.p.R
	if e.pr.BlocksOnFailure() {
		e.stallRemaining += float64(e.images) * e.p.R
		e.overlapRemain = 0
	} else {
		e.overlapRemain = float64(e.images) * e.theta
	}
	e.md = modeStall
	return false
}

// faultFreeMakespan returns the time the fault-free schedule takes to
// produce the given amount of work.
func (e *engine) faultFreeMakespan(workTarget float64) float64 {
	if workTarget <= 0 {
		return 0
	}
	w := core.Work(e.pr, e.p, e.phi, e.period)
	full := math.Floor(workTarget / w)
	rem := workTarget - full*w
	tm := full * e.period
	if rem <= workEps {
		return tm
	}
	// Walk the phases of the last, partial period.
	c1, c2 := e.phases.Ckpt1, e.phases.Ckpt2
	if e.pr.IsTriple() && e.exRate > 0 {
		cap1 := c1 * e.exRate
		if rem <= cap1 {
			return tm + rem/e.exRate
		}
		rem -= cap1
		tm += c1
	} else {
		tm += c1 // blocking local checkpoint contributes no work
	}
	cap2 := c2 * e.exRate
	if e.exRate > 0 && rem <= cap2 {
		return tm + rem/e.exRate
	}
	rem -= cap2
	tm += c2
	return tm + rem
}

// run executes the simulation loop.
func (e *engine) run() Result {
	horizon := e.cfg.MaxSimTime
	if horizon == 0 {
		horizon = 1000 * e.cfg.Tbase
	}
	for {
		ev, ok := e.src.Next()
		target := horizon
		if ok && ev.Time < horizon {
			target = ev.Time
		}
		if e.advanceUntil(target) {
			e.res.Completed = true
			break
		}
		if !ok || ev.Time >= horizon {
			break // horizon reached (saturated) or trace exhausted
		}
		if e.applyFailure(ev.Node) {
			break // fatal
		}
	}
	e.res.Makespan = e.t
	e.res.WorkDone = math.Min(e.work, e.cfg.Tbase)
	if e.res.Makespan > 0 {
		e.res.Waste = 1 - e.res.WorkDone/e.res.Makespan
	}
	e.res.LostTime = e.res.Makespan - e.faultFreeMakespan(e.res.WorkDone)
	return e.res
}
