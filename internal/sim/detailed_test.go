package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
)

func TestDetailedFaultFree(t *testing.T) {
	cfg := DetailedConfig{
		Protocol:   core.DoubleNBL,
		Params:     baseParams().WithNodes(16).WithMTBF(1e12), // effectively no failures
		Phi:        1,
		Period:     100,
		Tbase:      5 * 97,
		Seed:       1,
		MaxSimTime: 1e6,
	}
	res, err := RunDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("did not complete: %+v", res)
	}
	if math.Abs(res.Makespan-500) > 1e-6 {
		t.Fatalf("makespan = %v, want 500", res.Makespan)
	}
	// One commit per period; the fifth period's commit happens at
	// offset 36 of period 5, before completion at t=500.
	if res.CommittedWaves != 5 {
		t.Fatalf("committed waves = %d, want 5", res.CommittedWaves)
	}
	// Constant memory: own image + buddy image.
	if res.MaxImagesPerRank != 2 {
		t.Fatalf("max images per rank = %d, want 2", res.MaxImagesPerRank)
	}
	if res.SpareExhaustion != 0 {
		t.Fatalf("spare exhaustion = %d", res.SpareExhaustion)
	}
}

func TestDetailedMatchesFastEngine(t *testing.T) {
	// The detailed simulator layers substrates on the same timeline;
	// its performance metrics must be bit-identical to the fast
	// engine's for the same seed.
	p := baseParams().WithNodes(64).WithMTBF(400)
	for _, pr := range []core.Protocol{core.DoubleNBL, core.DoubleBoF, core.TripleNBL} {
		n := 64
		if pr.IsTriple() {
			n = 63
		}
		q := p.WithNodes(n)
		for seed := uint64(0); seed < 10; seed++ {
			fast, err := Run(Config{
				Protocol: pr, Params: q, Phi: 1, Tbase: 2e4, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			det, err := RunDetailed(DetailedConfig{
				Protocol: pr, Params: q, Phi: 1, Tbase: 2e4, Seed: seed,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", pr, seed, err)
			}
			if fast.Makespan != det.Makespan || fast.Failures != det.Failures ||
				fast.Fatal != det.Fatal || fast.Waste != det.Waste {
				t.Fatalf("%s seed %d: fast %+v != detailed %+v", pr, seed, fast, det.Result)
			}
		}
	}
}

// TestDetailedFatalityAgreementStress drives hostile regimes (tiny
// MTBF, frequent fatal chains) through both fatality detectors; any
// disagreement makes RunDetailed return an error.
func TestDetailedFatalityAgreementStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cases := []struct {
		pr core.Protocol
		n  int
		m  float64
	}{
		{core.DoubleNBL, 8, 60},
		{core.DoubleNBL, 8, 30},
		{core.DoubleBoF, 8, 30},
		{core.DoubleBlocking, 8, 30},
		{core.TripleNBL, 9, 30},
		{core.TripleNBL, 9, 60},
		{core.TripleBoF, 9, 30},
	}
	fatalSeen := 0
	for _, tc := range cases {
		p := core.Params{D: 1, Delta: 2, R: 4, Alpha: 10, N: tc.n, M: tc.m}
		for seed := uint64(0); seed < 150; seed++ {
			res, err := RunDetailed(DetailedConfig{
				Protocol:   tc.pr,
				Params:     p,
				Phi:        1,
				Tbase:      500,
				Seed:       seed,
				MaxSimTime: 1e5,
				Spares:     1000,
			})
			if err != nil {
				t.Fatalf("%s n=%d M=%v seed=%d: %v", tc.pr, tc.n, tc.m, seed, err)
			}
			if res.Fatal {
				fatalSeen++
				if !res.StructuralFatal {
					t.Fatalf("%s seed=%d: fatal without structural detection", tc.pr, seed)
				}
			}
		}
	}
	if fatalSeen == 0 {
		t.Fatal("stress regimes produced no fatal failures; the agreement check never fired")
	}
}

func TestDetailedSpareExhaustion(t *testing.T) {
	p := core.Params{D: 1, Delta: 2, R: 4, Alpha: 10, N: 8, M: 50}
	res, err := RunDetailed(DetailedConfig{
		Protocol:   core.DoubleNBL,
		Params:     p,
		Phi:        1,
		Tbase:      400,
		Seed:       3,
		Spares:     1,
		MaxSimTime: 1e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures < 2 {
		t.Skipf("only %d failures; cannot exercise exhaustion", res.Failures)
	}
	if res.SpareExhaustion == 0 {
		t.Fatalf("expected spare exhaustion with a single spare and %d failures", res.Failures)
	}
}

func TestDetailedRejectsIndivisiblePlatform(t *testing.T) {
	p := baseParams().WithNodes(10) // not divisible by 3
	_, err := RunDetailed(DetailedConfig{
		Protocol: core.TripleNBL, Params: p, Phi: 1, Tbase: 100,
	})
	if err == nil {
		t.Fatal("10 ranks with triples should be rejected")
	}
}

func TestDetailedWeibull(t *testing.T) {
	p := baseParams().WithNodes(32).WithMTBF(900)
	res, err := RunDetailed(DetailedConfig{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      1,
		Tbase:    2e4,
		Seed:     5,
		Law:      failure.Weibull{Shape: 0.7, MTBF: failure.IndividualMTBF(900, 32)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed && !res.Fatal {
		t.Fatalf("Weibull detailed run stuck: %+v", res)
	}
}

func TestDetailedTripleConstantMemory(t *testing.T) {
	res, err := RunDetailed(DetailedConfig{
		Protocol:   core.TripleNBL,
		Params:     baseParams().WithNodes(12).WithMTBF(300),
		Phi:        1,
		Tbase:      5000,
		Seed:       11,
		MaxSimTime: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A triple rank holds the images of its two buddies: 2 replicas,
	// briefly 3 when a double-failure restoration overlaps a commit.
	if res.MaxImagesPerRank > 3 {
		t.Fatalf("max images per rank = %d, want <= 3", res.MaxImagesPerRank)
	}
	if res.CommittedWaves == 0 {
		t.Fatal("no waves committed")
	}
}

// TestDetailedBatchReuse pins the compiled detailed path at the sim
// level: one DetailedRunner re-used across interleaved seeds (substrate
// Resets included) reproduces per-call RunDetailed exactly, including
// the substrate-level observations.
func TestDetailedBatchReuse(t *testing.T) {
	cfg := DetailedConfig{
		Protocol: core.TripleNBL,
		Params:   baseParams().WithNodes(63).WithMTBF(300),
		Phi:      1,
		Tbase:    5000,
	}
	b, err := CompileDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Config().Spares; got != 63/10+1 {
		t.Errorf("default spares = %d, want %d", got, 63/10+1)
	}
	r := b.NewRunner()
	for _, seed := range []uint64{2, 9, 2, 0, 9} {
		got, err := r.Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = seed
		want, err := RunDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: reused runner %+v != fresh RunDetailed %+v", seed, got, want)
		}
	}
}
