package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// laneTestConfigs spans the regimes the lane kernel must replicate:
// every protocol family (double/triple, blocking/non-blocking),
// healthy and hostile MTBFs (long replay waves vs failure-rich
// stepwise walks), φ = 0 and φ > 0, and a saturating horizon.
func laneTestConfigs() []Config {
	p := scenario.Base().Params
	var cfgs []Config
	for _, pr := range core.Protocols {
		cfgs = append(cfgs,
			Config{Protocol: pr, Params: p.WithMTBF(1800), Phi: 1, Tbase: 2e4},
			Config{Protocol: pr, Params: p.WithMTBF(450), Phi: 0.5, Tbase: 1e4},
		)
	}
	// Failure-rich: fatal chains and risk-window overlaps are common.
	cfgs = append(cfgs,
		Config{Protocol: core.DoubleNBL, Params: p.WithMTBF(150), Phi: 1, Tbase: 5e3},
		Config{Protocol: core.TripleBoF, Params: p.WithMTBF(150), Phi: 0, Tbase: 5e3},
		// Tight horizon: some runs saturate instead of completing.
		Config{Protocol: core.DoubleBoF, Params: p.WithMTBF(300), Phi: 1, Tbase: 1e4, MaxSimTime: 1.2e4},
	)
	return cfgs
}

// TestLaneRunnerMatchesScalarBitwise is the exact mode's core
// contract: lane l with seed s produces a Result bitwise identical to
// the scalar Runner's, across widths (including a tail-heavy width-3
// batch), protocols and failure regimes — the sampler and the replay
// addition sequence are shared, so the equivalence is exact, not
// statistical.
func TestLaneRunnerMatchesScalarBitwise(t *testing.T) {
	for ci, cfg := range laneTestConfigs() {
		b, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scalar := b.NewRunner()
		for _, width := range []int{1, 3, 8, 16} {
			lr, err := b.NewLaneRunner(width)
			if err != nil {
				t.Fatal(err)
			}
			lr.SetExact(true)
			seeds := make([]uint64, width)
			out := make([]Result, width)
			for base := uint64(0); base < 48; base += uint64(width) {
				for i := range seeds {
					seeds[i] = base + uint64(i)
				}
				lr.RunBatch(seeds, nil, out)
				for i, seed := range seeds {
					if want := scalar.Run(seed); out[i] != want {
						t.Fatalf("config %d width %d seed %d:\nlane   %+v\nscalar %+v",
							ci, width, seed, out[i], want)
					}
				}
			}
		}
	}
}

// TestLaneRunnerAntitheticMatchesScalar pins the reflected half: a
// lane with anti[l] = true is bitwise RunAntithetic(seed, true), with
// pairs laid out on adjacent lanes.
func TestLaneRunnerAntitheticMatchesScalar(t *testing.T) {
	for ci, cfg := range laneTestConfigs() {
		b, err := Compile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scalar := b.NewRunner()
		const width = 8
		lr, err := b.NewLaneRunner(width)
		if err != nil {
			t.Fatal(err)
		}
		lr.SetExact(true)
		seeds := make([]uint64, width)
		anti := make([]bool, width)
		out := make([]Result, width)
		for j := 0; j < width; j++ {
			seeds[j] = uint64(j / 2) // pair j/2 on lanes 2⌊j/2⌋, 2⌊j/2⌋+1
			anti[j] = j&1 == 1
		}
		lr.RunBatch(seeds, anti, out)
		for j := 0; j < width; j++ {
			if want := scalar.RunAntithetic(seeds[j], anti[j]); out[j] != want {
				t.Fatalf("config %d lane %d (seed %d, anti %v):\nlane   %+v\nscalar %+v",
					ci, j, seeds[j], anti[j], out[j], want)
			}
		}
	}
}

// TestLaneRunnerSamplerBatchInvariant checks the prefetch depth is
// pure mechanics: any batch size (including 1, the no-batching
// diagnostic layer) yields the same bits.
func TestLaneRunnerSamplerBatchInvariant(t *testing.T) {
	cfg := Config{Protocol: core.DoubleNBL, Params: scenario.Base().Params.WithMTBF(450), Phi: 1, Tbase: 1e4}
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const width = 4
	seeds := []uint64{3, 5, 7, 11}
	want := make([]Result, width)
	got := make([]Result, width)
	ref, err := b.NewLaneRunner(width)
	if err != nil {
		t.Fatal(err)
	}
	ref.RunBatch(seeds, nil, want)
	for _, batch := range []int{1, 2, 7, 64, 256} {
		lr, err := b.NewLaneRunner(width)
		if err != nil {
			t.Fatal(err)
		}
		lr.SetSamplerBatch(batch)
		lr.RunBatch(seeds, nil, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sampler batch %d seed %d: %+v != %+v", batch, seeds[i], got[i], want[i])
			}
		}
	}
}

// TestRunManySeededLaneWorkerInvariantAndStatistical pins the executor
// rewiring on both halves of its contract. The production lane path is
// deterministic per seed and chunk-merged, so the Aggregate must be
// bitwise identical for every worker count — the merge-equivalence
// guarantee the sweep cache and the fabric's byte identity stand on.
// Against the scalar oracle the production path (closed-form replay,
// ziggurat draws) is statistically — not bitwise — equivalent: the
// waste means must agree within 3σ of the combined standard error.
func TestRunManySeededLaneWorkerInvariantAndStatistical(t *testing.T) {
	cfg := Config{Protocol: core.TripleNBL, Params: scenario.Base().Params.WithMTBF(600), Phi: 1, Tbase: 1e4}
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 300 // > one chunk, with a partial tail chunk and a tail lane group
	scalar, err := AggregateSeeded(42, runs, 2, func(int) func(uint64) (Result, error) {
		r := b.NewRunner()
		return func(seed uint64) (Result, error) { return r.Run(seed), nil }
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.RunManySeeded(42, runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7} {
		got, err := b.RunManySeeded(42, runs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers %d: lane aggregate differs from the 1-worker aggregate", workers)
		}
	}
	diff := want.Waste.Mean() - scalar.Waste.Mean()
	if diff < 0 {
		diff = -diff
	}
	seLane := want.Waste.CI95() / 1.96
	seScalar := scalar.Waste.CI95() / 1.96
	if limit := 3 * (seLane + seScalar); diff > limit {
		t.Fatalf("lane waste mean %v vs scalar %v: |diff| %v > 3σ limit %v",
			want.Waste.Mean(), scalar.Waste.Mean(), diff, limit)
	}
}

// TestRunAntitheticSeededLaneMatchesScalar pins the adaptive round
// primitive: the lane-batched antithetic schedule replays
// AggregateAntithetic bitwise — including the observe order — across
// round splits and worker counts.
func TestRunAntitheticSeededLaneMatchesScalar(t *testing.T) {
	b, err := Compile(antiTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	newScalar := func(int) func(uint64, bool) (Result, error) {
		r := b.NewRunner()
		return func(seed uint64, anti bool) (Result, error) { return r.RunAntithetic(seed, anti), nil }
	}
	for _, round := range []struct{ first, runs int }{{0, 64}, {64, 40}, {0, 300}} {
		var wantSeen []Result
		want, err := AggregateAntithetic(7, round.first, round.runs, 2, newScalar,
			func(r Result) { wantSeen = append(wantSeen, r) })
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			var seen []Result
			got, err := b.RunAntitheticSeeded(7, round.first, round.runs, workers,
				func(r Result) { seen = append(seen, r) })
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("round %+v workers %d: aggregate differs", round, workers)
			}
			if len(seen) != len(wantSeen) {
				t.Fatalf("round %+v: observe saw %d results, want %d", round, len(seen), len(wantSeen))
			}
			for i := range seen {
				if seen[i] != wantSeen[i] {
					t.Fatalf("round %+v workers %d: observe order diverges at %d", round, workers, i)
				}
			}
		}
	}
}

// TestLaneRunnerZigguratStatistical: the ziggurat sampler changes the
// draw sequence, so equivalence is statistical — the mean waste over a
// sizable batch must agree with the inverse-CDF kernel within 3σ of
// the combined standard error — while equal seeds stay bitwise
// deterministic.
func TestLaneRunnerZigguratStatistical(t *testing.T) {
	cfg := Config{Protocol: core.DoubleNBL, Params: scenario.Base().Params.WithMTBF(900), Phi: 1, Tbase: 2e4}
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const width, batches = 16, 40
	run := func(zig bool) Aggregate {
		lr, err := b.NewLaneRunner(width)
		if err != nil {
			t.Fatal(err)
		}
		lr.SetZiggurat(zig)
		seeds := make([]uint64, width)
		out := make([]Result, width)
		var agg Aggregate
		for bt := 0; bt < batches; bt++ {
			for i := range seeds {
				seeds[i] = uint64(bt*width + i)
			}
			lr.RunBatch(seeds, nil, out)
			for _, r := range out {
				agg.Add(r)
			}
		}
		return agg
	}
	inv, zig := run(false), run(true)
	zig2 := run(true)
	if zig != zig2 {
		t.Fatal("ziggurat kernel is not deterministic for equal seeds")
	}
	diff := inv.Waste.Mean() - zig.Waste.Mean()
	if diff < 0 {
		diff = -diff
	}
	seInv := inv.Waste.CI95() / 1.96
	seZig := zig.Waste.CI95() / 1.96
	if limit := 3 * (seInv + seZig); diff > limit {
		t.Fatalf("ziggurat waste mean %v vs inverse-CDF %v: |diff| %v > 3σ limit %v",
			zig.Waste.Mean(), inv.Waste.Mean(), diff, limit)
	}
}

// TestLaneRunnerSteadyStateZeroAllocs extends the scalar kernel's
// zero-allocation guarantee to the lane kernel: after the first batch,
// RunBatch allocates nothing.
func TestLaneRunnerSteadyStateZeroAllocs(t *testing.T) {
	cfg := Config{Protocol: core.DoubleNBL, Params: scenario.Base().Params.WithMTBF(900), Phi: 1, Tbase: 1e4}
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := b.NewLaneRunner(8)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, 8)
	out := make([]Result, 8)
	warm := func(base uint64) {
		for i := range seeds {
			seeds[i] = base + uint64(i)
		}
		lr.RunBatch(seeds, nil, out)
	}
	warm(0)
	allocs := testing.AllocsPerRun(10, func() { warm(8) })
	if allocs != 0 {
		t.Fatalf("steady-state RunBatch allocates %.1f times per batch, want 0", allocs)
	}
}
