package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
)

// baseParams mirrors the paper's Base scenario.
func baseParams() core.Params {
	return core.Params{D: 0, Delta: 2, R: 4, Alpha: 10, N: 324 * 32, M: 7 * 3600}
}

// singleFailure runs one execution with exactly one injected failure.
func singleFailure(t *testing.T, pr core.Protocol, phi, period, tbase, failAt float64) Result {
	t.Helper()
	cfg := Config{
		Protocol: pr,
		Params:   baseParams(),
		Phi:      phi,
		Period:   period,
		Tbase:    tbase,
		Source:   failure.NewReplay([]failure.Event{{Time: failAt, Node: 0}}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	return res
}

func TestFaultFreeMakespan(t *testing.T) {
	// Without failures the makespan must be exactly Tff = #periods·P.
	for _, pr := range core.Protocols {
		cfg := Config{
			Protocol: pr,
			Params:   baseParams(),
			Phi:      1,
			Period:   100,
			Tbase:    0, // set below
			Source:   failure.NewReplay(nil),
		}
		w := core.Work(pr, cfg.Params, core.EffectivePhi(pr, cfg.Params, 1), 100)
		cfg.Tbase = 3 * w
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", pr, err)
		}
		if !res.Completed {
			t.Fatalf("%s: did not complete", pr)
		}
		if math.Abs(res.Makespan-300) > 1e-6 {
			t.Errorf("%s: fault-free makespan = %v, want 300", pr, res.Makespan)
		}
		if math.Abs(res.WorkDone-cfg.Tbase) > 1e-6 {
			t.Errorf("%s: work done = %v, want %v", pr, res.WorkDone, cfg.Tbase)
		}
		if res.LostTime > 1e-6 {
			t.Errorf("%s: fault-free lost time = %v, want 0", pr, res.LostTime)
		}
		// Measured waste must equal the analytic fault-free waste.
		want := core.WasteFF(pr, cfg.Params, core.EffectivePhi(pr, cfg.Params, 1), 100)
		if math.Abs(res.Waste-want) > 1e-9 {
			t.Errorf("%s: fault-free waste = %v, want %v", pr, res.Waste, want)
		}
	}
}

// The next tests pin the failure-handling semantics to the model's
// per-phase re-execution times: with Base parameters, φ = 1 (θ = 34)
// and P = 100, a single failure must cost exactly D + R + RE_i(tlost).

func TestDoubleNBLPhase3Failure(t *testing.T) {
	// Failure in period 2's compute phase, 14 s in: offset 50 = 2+34+14.
	res := singleFailure(t, core.DoubleNBL, 1, 100, 3*97, 150)
	// extra = D + R + θ + tlost = 0 + 4 + 34 + 14 = 52.
	if want := 300.0 + 52; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
	if math.Abs(res.LostTime-52) > 1e-6 {
		t.Fatalf("lost time = %v, want 52", res.LostTime)
	}
}

func TestDoubleNBLPhase1Failure(t *testing.T) {
	// Failure 1 s into period 2's local checkpoint (offset 1).
	res := singleFailure(t, core.DoubleNBL, 1, 100, 3*97, 101)
	// extra = D + R + (θ+σ) + t1 = 4 + 98 + 1 = 103.
	if want := 300.0 + 103; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestDoubleNBLPhase2Failure(t *testing.T) {
	// Failure 18 s into period 2's exchange (offset 20).
	res := singleFailure(t, core.DoubleNBL, 1, 100, 3*97, 120)
	// extra = D + R + (θ+σ) + δ + t2 = 4 + 98 + 2 + 18 = 122.
	if want := 300.0 + 122; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestDoubleBoFPhase3Failure(t *testing.T) {
	// Blocking on failure: extra = D + 2R + (θ−φ) + tlost = 8+33+14 = 55.
	res := singleFailure(t, core.DoubleBoF, 1, 100, 3*97, 150)
	if want := 300.0 + 55; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestTriplePhase1Failure(t *testing.T) {
	// Triple, φ=1: phases are 34, 34, 32 in a period of 100; W = 98.
	// Failure at offset 10 of period 2 (t = 110).
	res := singleFailure(t, core.TripleNBL, 1, 100, 3*98, 110)
	// extra = D + R + (2θ+σ) + t1 = 4 + 100 + 10 = 114.
	if want := 300.0 + 114; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestTriplePhase2Failure(t *testing.T) {
	// Failure at offset 40 of period 2 (t = 140, 6 s into phase 2).
	res := singleFailure(t, core.TripleNBL, 1, 100, 3*98, 140)
	// extra = D + R + θ + t2 = 4 + 34 + 6 = 44: only the preferred-
	// buddy phase's work is re-executed, the aborted secondary
	// exchange restarts in-schedule.
	if want := 300.0 + 44; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestTriplePhase3Failure(t *testing.T) {
	// Failure at offset 80 of period 2 (t = 180, 12 s into compute).
	res := singleFailure(t, core.TripleNBL, 1, 100, 3*98, 180)
	// extra = D + R + 2θ + t3 = 4 + 68 + 12 = 84.
	if want := 300.0 + 84; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestTripleBoFPhase3Failure(t *testing.T) {
	// extra = D + 3R + 2(θ−φ) + t3 = 12 + 66 + 12 = 90.
	res := singleFailure(t, core.TripleBoF, 1, 100, 3*98, 180)
	if want := 300.0 + 90; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestDoubleBlockingFailure(t *testing.T) {
	// DoubleBlocking pins φ = R = 4, θ = 4; P = 100 gives phases
	// 2, 4, 94 and W = 94. Failure at offset 50 of period 2 (t = 150,
	// tlost = 44): extra = D + 2R + (θ−φ) + tlost = 8 + 0 + 44 = 52.
	res := singleFailure(t, core.DoubleBlocking, 0, 100, 3*94, 150)
	if want := 300.0 + 52; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestFailureDuringRecoveryRestartsHandling(t *testing.T) {
	// A second failure in another pair while the first is being
	// handled must roll back again without corrupting the timeline:
	// failure 1 at t=150 (phase 3, offset 50), failure 2 at t=152
	// (during the D+R stall). Handling restarts: extra stall 4, then
	// re-execution of the same 47 work units (θ + 14 = 48 s).
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams(),
		Phi:      1,
		Period:   100,
		Tbase:    3 * 97,
		Source: failure.NewReplay([]failure.Event{
			{Time: 150, Node: 0},
			{Time: 152, Node: 100}, // different pair: not fatal
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Fatal {
		t.Fatalf("unexpected outcome: %+v", res)
	}
	if res.Failures != 2 {
		t.Fatalf("failures = %d, want 2", res.Failures)
	}
	// Timeline: t=150 fail; stall to 154, but second failure at 152
	// restarts stall (to 156) and re-execution takes 48 s → resume
	// schedule at offset 50 at t=204, i.e. 54 s of extra delay over
	// the remaining 150 s of fault-free schedule.
	if want := 150 + 2 + 4 + 48 + 150.0; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestFatalDoubleFailure(t *testing.T) {
	// Node 1 is node 0's buddy: a failure of node 1 inside node 0's
	// risk window (D+R+θ = 38 s) is fatal.
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams(),
		Phi:      1,
		Period:   100,
		Tbase:    3 * 97,
		Source: failure.NewReplay([]failure.Event{
			{Time: 150, Node: 0},
			{Time: 160, Node: 1},
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fatal {
		t.Fatal("buddy failure inside the risk window should be fatal")
	}
	if res.FatalTime != 160 {
		t.Fatalf("fatal time = %v, want 160", res.FatalTime)
	}
	if res.Completed {
		t.Fatal("fatal run should not complete")
	}
}

func TestBuddyFailureOutsideWindowNotFatal(t *testing.T) {
	// Same pair, but the second failure lands after the risk window
	// (38 s for DoubleNBL at φ=1) has closed.
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams(),
		Phi:      1,
		Period:   100,
		Tbase:    3 * 97,
		Source: failure.NewReplay([]failure.Event{
			{Time: 150, Node: 0},
			{Time: 150 + 39, Node: 1},
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fatal {
		t.Fatal("failure outside the risk window must not be fatal")
	}
	if !res.Completed {
		t.Fatal("run should complete")
	}
	if res.Failures != 2 {
		t.Fatalf("failures = %d, want 2", res.Failures)
	}
}

func TestBoFShrinksFatalWindow(t *testing.T) {
	// The same failure pair separated by 20 s: fatal for DoubleNBL
	// (window 38 s) but survivable for DoubleBoF (window D+2R = 8 s).
	mk := func(pr core.Protocol) Result {
		cfg := Config{
			Protocol: pr,
			Params:   baseParams(),
			Phi:      1,
			Period:   100,
			Tbase:    3 * 97,
			Source: failure.NewReplay([]failure.Event{
				{Time: 150, Node: 0},
				{Time: 170, Node: 1},
			}),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !mk(core.DoubleNBL).Fatal {
		t.Fatal("DoubleNBL should be fatal at Δt=20s")
	}
	if mk(core.DoubleBoF).Fatal {
		t.Fatal("DoubleBoF should survive at Δt=20s")
	}
}

func TestTripleNeedsThreeFailures(t *testing.T) {
	// Two failures in a triple within the window: survivable.
	// Three: fatal. Window for TripleNBL at φ=1 is D+R+2θ = 72 s.
	base := []failure.Event{
		{Time: 150, Node: 0},
		{Time: 160, Node: 1},
	}
	mk := func(events []failure.Event) Result {
		cfg := Config{
			Protocol: core.TripleNBL,
			Params:   baseParams(),
			Phi:      1,
			Period:   100,
			Tbase:    3 * 98,
			Source:   failure.NewReplay(events),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := mk(base)
	if res.Fatal {
		t.Fatal("two failures in a triple should be survivable")
	}
	if res.FailuresInRisk != 1 {
		t.Fatalf("FailuresInRisk = %d, want 1", res.FailuresInRisk)
	}
	res = mk(append(base[:2:2], failure.Event{Time: 170, Node: 2}))
	if !res.Fatal {
		t.Fatal("three failures in a triple inside the window should be fatal")
	}
}

func TestSameNodeRefailureNotFatal(t *testing.T) {
	// The replacement node failing again during its own restoration
	// is not fatal (the buddy still holds the images).
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams(),
		Phi:      1,
		Period:   100,
		Tbase:    3 * 97,
		Source: failure.NewReplay([]failure.Event{
			{Time: 150, Node: 0},
			{Time: 155, Node: 0},
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fatal {
		t.Fatal("re-failure of the same node must not be fatal")
	}
	if !res.Completed {
		t.Fatal("run should complete")
	}
}

func TestModelSaturationIsConservative(t *testing.T) {
	// At M = 20 s the first-order model declares waste = 1 for
	// DoubleNBL at φ = 2 (F > M at the minimum period), but the
	// simulated application still crawls forward. The simulator must
	// agree the platform is badly degraded without deadlocking.
	p := baseParams().WithMTBF(20)
	cfg := Config{
		Protocol:   core.DoubleNBL,
		Params:     p,
		Phi:        2,
		Tbase:      1000,
		Seed:       1,
		MaxSimTime: 50000,
	}
	if w := core.OptimalWaste(core.DoubleNBL, p, 2); w != 1 {
		t.Fatalf("model waste = %v, want saturation (1)", w)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed && res.Waste < 0.7 {
		t.Fatalf("simulated waste %v too low for a saturated platform", res.Waste)
	}
}

func TestTrulySaturatedRunHitsHorizon(t *testing.T) {
	// At M = 5 s failures strike faster than a single re-execution
	// can finish (the exchange alone takes θ = 24 s), so the run must
	// hit the horizon without completing.
	p := baseParams().WithMTBF(5)
	cfg := Config{
		Protocol:   core.DoubleNBL,
		Params:     p,
		Phi:        2,
		Tbase:      1000,
		Seed:       1,
		MaxSimTime: 20000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatalf("run should not complete at M=5s: %+v", res)
	}
	// The run ends either at the horizon or by a fatal double failure
	// (with failures every 5 s and a 28 s risk window, roughly two
	// fatal chains are expected over this horizon).
	if !res.Fatal && res.Makespan < 20000-1 {
		t.Fatalf("non-fatal run stopped before the horizon: %+v", res)
	}
	if res.Fatal && res.FatalTime > 20000 {
		t.Fatalf("fatal time %v beyond horizon", res.FatalTime)
	}
	if res.WorkDone >= cfg.Tbase {
		t.Fatalf("work done = %v, want < Tbase", res.WorkDone)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Protocol: core.DoubleNBL, Params: baseParams(), Phi: 1, Tbase: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Protocol: core.Protocol(42), Params: baseParams(), Phi: 1, Tbase: 100},
		{Protocol: core.DoubleNBL, Params: core.Params{}, Phi: 1, Tbase: 100},
		{Protocol: core.DoubleNBL, Params: baseParams(), Phi: -1, Tbase: 100},
		{Protocol: core.DoubleNBL, Params: baseParams(), Phi: 99, Tbase: 100},
		{Protocol: core.DoubleNBL, Params: baseParams(), Phi: 1, Tbase: 0},
		{Protocol: core.DoubleNBL, Params: baseParams(), Phi: 1, Tbase: 100, Period: -5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams().WithMTBF(600),
		Phi:      1,
		Tbase:    50000,
		Seed:     7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds gave identical results")
	}
}
