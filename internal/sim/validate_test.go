package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
)

// TestSimulatedWasteMatchesModel is the headline validation: the
// measured waste of Monte-Carlo runs must converge to the analytic
// waste of Eq. (5) at the optimal period, for every protocol. The
// model is first-order in P/M, so the tolerance is a few percent of
// the waste plus a small absolute slack.
func TestSimulatedWasteMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo convergence test")
	}
	p := baseParams().WithMTBF(1800) // 30 min: ~170 failures per run
	for _, pr := range core.Protocols {
		for _, phi := range []float64{1, 3} {
			want := core.OptimalWaste(pr, p, phi)
			cfg := Config{
				Protocol: pr,
				Params:   p,
				Phi:      phi,
				Tbase:    3e5,
				Seed:     12345,
			}
			agg, err := RunMany(cfg, 24)
			if err != nil {
				t.Fatalf("%s: %v", pr, err)
			}
			if agg.Completed.Rate() < 1 {
				t.Fatalf("%s φ=%v: only %v of runs completed", pr, phi, agg.Completed.Rate())
			}
			got := agg.Waste.Mean()
			tol := 0.10*want + 0.005
			if math.Abs(got-want) > tol {
				t.Errorf("%s φ=%v: simulated waste %v, model %v (|Δ| > %v)",
					pr, phi, got, want, tol)
			}
		}
	}
}

// TestSimulatedLossMatchesF validates the per-failure loss formulas
// (Eq. 7, 8, 14): the mean simulated extra time per failure must match
// F at the period used.
func TestSimulatedLossMatchesF(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo convergence test")
	}
	p := baseParams().WithMTBF(3600)
	for _, pr := range []core.Protocol{core.DoubleNBL, core.DoubleBoF, core.TripleNBL} {
		phi := 1.0
		period, err := core.OptimalPeriod(pr, p, phi)
		if err != nil {
			t.Fatal(err)
		}
		want := core.FailureLoss(pr, p, phi, period)
		cfg := Config{
			Protocol: pr,
			Params:   p,
			Phi:      phi,
			Period:   period,
			Tbase:    5e5,
			Seed:     777,
		}
		agg, err := RunMany(cfg, 16)
		if err != nil {
			t.Fatal(err)
		}
		got := agg.LossPerF.Mean()
		if math.Abs(got-want) > 0.08*want {
			t.Errorf("%s: simulated F = %v, model F = %v", pr, got, want)
		}
	}
}

// TestSimulatedFatalityMatchesRiskModel validates Eq. (11) on a small
// platform where fatal double failures are frequent enough to count
// directly, and checks the importance estimator agrees with both.
func TestSimulatedFatalityMatchesRiskModel(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo convergence test")
	}
	// 8 nodes with platform MTBF 100 s: λ = 1/800. DoubleNBL at φ=0
	// has risk window D+R+θ = 48 s on these parameters.
	p := core.Params{D: 0, Delta: 1, R: 4, Alpha: 10, N: 8, M: 100}
	cfg := Config{
		Protocol:   core.DoubleNBL,
		Params:     p,
		Phi:        0,
		Tbase:      300,
		Seed:       2024,
		MaxSimTime: 1e7,
	}
	const runs = 4000
	agg, err := RunMany(cfg, runs)
	if err != nil {
		t.Fatal(err)
	}
	// Model prediction with T = the simulated mean makespan.
	tmean := agg.Makespan.Mean()
	want := core.FatalFailureProbability(core.DoubleNBL, p, 0, tmean)
	got := agg.Fatal.Rate()
	lo, hi := agg.Fatal.Wilson95()
	t.Logf("fatal rate: sim %v [%v, %v], model %v, importance %v",
		got, lo, hi, want, agg.ImportanceFatal.Mean())
	// The Eq. 11 derivation is first-order; allow a generous band but
	// require the right order of magnitude and overlapping intervals.
	if want < lo*0.5 || want > hi*2 {
		t.Errorf("model fatal probability %v far from simulated [%v, %v]", want, lo, hi)
	}
	imp := agg.ImportanceFatal.Mean()
	if imp < 0.3*want || imp > 3*want {
		t.Errorf("importance estimate %v inconsistent with model %v", imp, want)
	}
}

// TestTripleFatalityRequiresThreeFailures checks on a small platform
// that Triple's fatal rate is far below Double's under identical
// failure pressure (the paper's Fig. 6b claim, in simulation).
func TestTripleFatalityRequiresThreeFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo convergence test")
	}
	p := core.Params{D: 0, Delta: 1, R: 4, Alpha: 10, N: 12, M: 60}
	run := func(pr core.Protocol) float64 {
		cfg := Config{
			Protocol:   pr,
			Params:     p,
			Phi:        0,
			Tbase:      200,
			Seed:       555,
			MaxSimTime: 1e7,
		}
		agg, err := RunMany(cfg, 3000)
		if err != nil {
			t.Fatal(err)
		}
		return agg.Fatal.Rate()
	}
	double := run(core.DoubleNBL)
	triple := run(core.TripleNBL)
	t.Logf("fatal rates: double %v, triple %v", double, triple)
	if double == 0 {
		t.Fatal("expected some fatal double failures at M=60s on 12 nodes")
	}
	// At M = 60 s the per-failure chain probabilities are not small
	// (λ·Risk ≈ 0.13 for Triple's 92 s window), so the separation is
	// a factor of a few rather than orders of magnitude; the paper's
	// orders-of-magnitude regime (large M) is covered analytically in
	// core's risk tests.
	if triple > double/2 {
		t.Errorf("triple fatal rate %v not clearly below double %v", triple, double)
	}
}

// TestWeibullLawRuns exercises the node-level renewal source end to
// end: same platform MTBF, Weibull shape < 1 (bursty failures).
func TestWeibullLawRuns(t *testing.T) {
	p := baseParams().WithNodes(64).WithMTBF(1800)
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      1,
		Tbase:    5e4,
		Seed:     31,
		Law:      failure.Weibull{Shape: 0.7, MTBF: failure.IndividualMTBF(p.M, p.N)},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed && !res.Fatal {
		t.Fatalf("Weibull run neither completed nor died: %+v", res)
	}
	if res.Completed && (res.Waste <= 0 || res.Waste >= 1) {
		t.Fatalf("Weibull waste = %v", res.Waste)
	}
}

func TestRunManyReproducible(t *testing.T) {
	cfg := Config{
		Protocol: core.DoubleBoF,
		Params:   baseParams().WithMTBF(1200),
		Phi:      2,
		Tbase:    1e5,
		Seed:     99,
	}
	a, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMany(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Waste.Mean() != b.Waste.Mean() || a.Fatal.Hits != b.Fatal.Hits {
		t.Fatal("RunMany is not reproducible across invocations")
	}
}

func TestRunManyRejectsBadConfig(t *testing.T) {
	if _, err := RunMany(Config{}, 4); err == nil {
		t.Fatal("empty config should be rejected")
	}
}

func TestRunManyDropsSharedSource(t *testing.T) {
	// A Source cannot be shared across parallel runs; RunMany must
	// fall back to seeded generation rather than racing on it.
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams().WithMTBF(1200),
		Phi:      1,
		Tbase:    5e4,
		Seed:     1,
		Source:   failure.NewReplay(nil),
	}
	agg, err := RunMany(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Failures.Mean() == 0 {
		t.Fatal("seeded generation should have produced failures")
	}
}

// TestFirstPeriodFailure covers the startup edge: a failure before the
// first snapshot commit rolls back to the initial state.
func TestFirstPeriodFailure(t *testing.T) {
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams(),
		Phi:      1,
		Period:   100,
		Tbase:    97,
		Source:   failure.NewReplay([]failure.Event{{Time: 1, Node: 5}}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	// Failure at offset 1 (phase 1, first period): nothing to
	// re-execute (snapshot = start), resume at offset 0 after D+R.
	// Fault-free makespan for 97 work units is 100; extra = 4 + 1.
	if want := 100 + 4 + 1.0; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}

// TestSingleShortRunAccounting covers a one-period application with a
// failure: re-execution, schedule resumption and completion must
// compose to exactly the per-phase formula.
func TestSingleShortRunAccounting(t *testing.T) {
	// Tbase = 97 (one period of work). Failure in the first period's
	// compute phase at offset 50 (tlost = 14): the 47 lost work units
	// re-execute in θ+14 s, then the schedule resumes at offset 50.
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams(),
		Phi:      1,
		Period:   100,
		Tbase:    97,
		Source:   failure.NewReplay([]failure.Event{{Time: 50, Node: 0}}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	// Fault-free completion is at t = 100 (work 97 at period end).
	// The failure at t=50 (tlost=14) costs D+R+θ+tlost = 52.
	if want := 152.0; math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
}
