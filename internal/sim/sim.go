// Package sim is the Monte-Carlo simulator validating the paper's
// analytical model. It simulates a coordinated application running one
// of the buddy checkpointing protocols on a failure-prone platform and
// measures the actual waste, the per-failure time loss, and fatal
// failures (second/third failures inside a risk window).
//
// Because every protocol in the paper is coordinated — all nodes
// checkpoint in the same global phases, and any failure rolls every
// node back to the same snapshot — the application can be simulated as
// a single global timeline annotated with which node each failure
// strikes. That is what makes 10⁶-node platforms cheap to simulate.
// The per-node structure still matters for risk: fatality depends on
// whether a failure hits the buddy group of a node whose images are
// being restored.
//
// The failure-handling semantics mirror the model's derivation of RE1,
// RE2, RE3 (see DESIGN.md, "Simulator semantics"): the simulator never
// quotes the closed forms; the agreement between its measured waste and
// Eq. (5) is the validation result reproduced by cmd/simulate.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/failure"
)

// Config describes one simulated execution.
type Config struct {
	// Protocol selects the checkpointing protocol.
	Protocol core.Protocol
	// Params is the platform (Table I row plus MTBF).
	Params core.Params
	// Phi is the overhead point φ ∈ [0, R].
	Phi float64
	// Period is the checkpointing period; 0 selects the model-optimal
	// period.
	Period float64
	// Tbase is the failure-free application duration (work units).
	Tbase float64
	// Seed seeds the failure process. Two runs with equal Config are
	// identical.
	Seed uint64
	// Source optionally replaces the generated failure process (for
	// trace replay). When set, Seed is ignored for failure sampling.
	Source failure.Source
	// Law optionally replaces the Exponential law in the node-level
	// process. Setting Law forces the per-node renewal source even for
	// exponential laws.
	Law failure.Law
	// Correlation optionally leaves the i.i.d. world: correlated
	// failure domains (burst model) and/or heterogeneous per-group
	// MTBFs, superposed on the background process selected by
	// Law/Source. Nil keeps the classic independent model.
	Correlation *failure.Correlation
	// MaxSimTime aborts runs that exceed this horizon (defence against
	// saturated configurations where the application cannot finish).
	// 0 means 1000×Tbase.
	MaxSimTime float64
}

// Result aggregates the outcome of one simulated execution.
type Result struct {
	// Completed is false when the run hit MaxSimTime or a fatal
	// failure terminated the application.
	Completed bool
	// Fatal is true when a failure chain exhausted a buddy group
	// inside the risk window (application lost).
	Fatal bool
	// FatalTime is the time of the fatal failure (0 if none).
	FatalTime float64
	// Makespan is the total execution time (up to completion, fatal
	// failure, or the horizon).
	Makespan float64
	// WorkDone is the work completed (equals Tbase on success).
	WorkDone float64
	// Waste is 1 − WorkDone/Makespan, comparable to core.Waste.
	Waste float64
	// Failures is the number of failures endured.
	Failures int
	// FailuresInRisk counts failures that landed inside some active
	// risk window but did not complete a fatal chain.
	FailuresInRisk int
	// LostTime is the cumulative extra time attributed to failures
	// (downtime, recovery, re-execution and re-spent schedule); its
	// mean per failure is the simulated counterpart of F (Eq. 7/8/14).
	LostTime float64
	// RiskTime is the total time with at least one active risk window.
	RiskTime float64
	// ImportanceFatalProb is the variance-reduced estimate of the
	// per-run fatal-failure probability: the sum over observed
	// failures of the analytic probability that the rest of the group
	// dies inside the window. It converges orders of magnitude faster
	// than the raw Fatal frequency.
	ImportanceFatalProb float64
	// Period is the checkpointing period used.
	Period float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if !c.Protocol.Valid() {
		return fmt.Errorf("sim: invalid protocol %d", int(c.Protocol))
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if err := c.Params.CheckPhi(c.Phi); err != nil && c.Protocol != core.DoubleBlocking {
		return err
	}
	if c.Tbase <= 0 {
		return errors.New("sim: Tbase must be positive")
	}
	if c.Period < 0 {
		return errors.New("sim: negative period")
	}
	return nil
}

// Run simulates one execution. Batch callers should Compile once and
// reuse a Runner instead: Run pays the per-batch precomputation and
// the engine allocation on every call. A trace-backed run whose
// failure log ends before the application completes returns an error
// wrapping failure.ErrTraceExhausted (running on would silently
// simulate a fault-free tail).
func Run(cfg Config) (Result, error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	res := eng.run()
	return res, eng.err
}
