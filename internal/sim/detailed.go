package sim

import (
	"fmt"
	"math"
	"reflect"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/failure"
	"repro/internal/protocol"
)

// DetailedConfig describes a run of the detailed simulator, which
// drives the cluster / checkpoint / protocol substrates explicitly
// instead of the fast engine's closed bookkeeping. It is meant for
// moderate platform sizes where structural verification matters more
// than raw speed.
type DetailedConfig struct {
	Protocol core.Protocol
	Params   core.Params
	Phi      float64
	Period   float64 // 0 → model-optimal
	Tbase    float64
	Seed     uint64
	// Spares is the spare-node pool size. 0 defaults to N/10+1.
	Spares int
	// ImageBytes is the checkpoint image size (0 → 512 MB, the Base
	// scenario's value).
	ImageBytes int64
	// Law optionally overrides the Exponential failure law.
	Law failure.Law
	// Correlation optionally sets correlated failure domains and/or
	// per-group MTBFs (carried by pointer so the config stays
	// comparable — it keys the one-shot memo map).
	Correlation *failure.Correlation
	// Trace, when set, replays the recorded failure log instead of
	// generating failures; the run errors with failure.ErrTraceExhausted
	// if it outlives the trace's coverage. Seed and Law are then unused
	// for failure sampling.
	Trace *failure.Trace
	// MaxSimTime bounds the run (0 → 1000×Tbase).
	MaxSimTime float64
}

// Normalize returns the config with the documented substrate defaults
// applied: Spares → N/10+1, ImageBytes → 512 MB. It is the single
// source of those defaults — CompileDetailed, the engine backend's
// Resolve and the API sweep's point keying all share it, so an
// explicitly spelled-out default and an omitted field describe the
// same physical configuration everywhere (same cache keys, same
// derived seeds).
func (c DetailedConfig) Normalize() DetailedConfig {
	if c.Spares == 0 {
		c.Spares = c.Params.N/10 + 1
	}
	if c.ImageBytes == 0 {
		c.ImageBytes = 512 << 20
	}
	return c
}

// DetailedResult extends Result with substrate-level observations.
type DetailedResult struct {
	Result
	// SpareExhaustion counts failures that found an empty spare pool
	// (handled with the same downtime, but reported: on a real
	// machine the application would block until a repair).
	SpareExhaustion int
	// MaxImagesPerRank is the peak number of image replicas resident
	// on any rank — the paper's constant-memory claim bounds it by 2
	// plus the transient current wave.
	MaxImagesPerRank int
	// StructuralFatal records whether fatality was detected by the
	// checkpoint registry (no surviving replica), as opposed to the
	// analytic window bookkeeping. The two must agree.
	StructuralFatal bool
	// CommittedWaves counts snapshot sets that committed.
	CommittedWaves int
}

// detailedEngine runs the substrate-backed simulation. It reuses the
// fast engine for the timeline (the protocols are coordinated, so the
// global schedule is identical) and layers the substrates on top,
// checking at every failure that the structural recoverability answer
// matches the analytic risk window.
type detailedEngine struct {
	cfg  DetailedConfig
	eng  *engine
	cl   *cluster.Cluster
	reg  *checkpoint.Registry
	plan protocol.FailurePlan
	sch  protocol.Schedule
	// buddies is the batch's precomputed static buddy topology.
	buddies [][]int

	// incarnation[r] counts rank r's failures, to drop stale restores.
	incarnation []int
	restores    eventq.Queue[restoreEvent]

	res DetailedResult
}

// restoreEvent re-adds a replica on a replacement node. It is voided
// if the holder failed again since scheduling (its newer failure
// schedules fresh restores) or if a newer snapshot set committed
// meanwhile (the commit rebuilds the full replica layout).
//
// Matching the paper's first-order risk model, restoration is atomic
// at the end of the risk window: the replacement either regains every
// buddy image at failure+Risk or the group died (fatal). Modeling the
// staggered per-image transfer completions (protocol.FailurePlan's
// RestoreDone milestones) would make the simulator strictly *less*
// at risk than Eq. 11/16 assume; the cross-check against the analytic
// windows requires the paper's semantics.
type restoreEvent struct {
	owner, holder     int
	version           checkpoint.Version
	holderIncarnation int
}

// RunDetailed executes one substrate-backed simulation. Repeated
// calls for the same physical configuration (only the seed differing —
// cmd/simulate's per-protocol loops, the bench's one-shot metric)
// reuse a memoized compiled batch and its substrates instead of
// rebuilding the cluster, checkpoint registry and schedule every call;
// the memo serializes same-configuration calls (each entry owns one
// runner), so parallel batch workloads should still CompileDetailed
// once and give each worker its own DetailedRunner.
func RunDetailed(cfg DetailedConfig) (DetailedResult, error) {
	seed := cfg.Seed
	cfg.Seed = 0 // seeds are per run; the memo keys the physical config
	// Normalize before keying, so explicit-default and omitted-field
	// spellings of one physical configuration share one memo entry
	// (the promise DetailedConfig.Normalize documents).
	cfg = cfg.Normalize()
	if (cfg.Law != nil && !reflect.TypeOf(cfg.Law).Comparable()) ||
		cfg.Correlation != nil || cfg.Trace != nil {
		// A non-comparable custom law cannot key the memo map, and the
		// correlation/trace pointers would key by identity (every fresh
		// pointer a new entry, unbounded growth for no hits); fall back
		// to the historical compile-per-call path.
		b, err := CompileDetailed(cfg)
		if err != nil {
			return DetailedResult{}, err
		}
		return b.NewRunner().Run(seed)
	}
	detailedMemo.Lock()
	ent, ok := detailedMemo.entries[cfg]
	if !ok {
		b, err := CompileDetailed(cfg)
		if err != nil {
			detailedMemo.Unlock()
			return DetailedResult{}, err
		}
		if len(detailedMemo.entries) >= detailedMemoCap {
			clear(detailedMemo.entries)
		}
		ent = &detailedMemoEntry{runner: b.NewRunner()}
		detailedMemo.entries[cfg] = ent
	}
	detailedMemo.Unlock()
	// The run itself holds only the entry's lock, so concurrent
	// one-shot callers serialize per configuration, not globally. (An
	// entry evicted by the cap's clear keeps working for the goroutines
	// already holding it; the next same-config call just recompiles.)
	ent.Lock()
	defer ent.Unlock()
	return ent.runner.Run(seed)
}

// detailedMemoCap bounds the one-shot memo: enough for every protocol
// of a few interleaved configurations, small enough that the substrate
// memory (O(N) per entry) stays negligible. On overflow the memo is
// simply dropped — it is a cache of convenience, not of correctness.
const detailedMemoCap = 16

type detailedMemoEntry struct {
	sync.Mutex
	runner *DetailedRunner
}

// detailedMemo caches compiled batches (with one reusable runner each)
// behind the one-shot RunDetailed, keyed by the seedless config.
var detailedMemo = struct {
	sync.Mutex
	entries map[DetailedConfig]*detailedMemoEntry
}{entries: make(map[DetailedConfig]*detailedMemoEntry)}

// DetailedBatch is a compiled detailed-simulation configuration,
// immutable and safe for concurrent use. It is the detailed engine's
// counterpart of Compile: the protocol schedule, failure plan, fast
// timeline precomputation and substrate shapes are computed once, and
// each DetailedRunner reuses one cluster and one checkpoint registry
// across every seed of a Monte-Carlo batch instead of rebuilding the
// substrates per run.
type DetailedBatch struct {
	cfg  DetailedConfig // normalized: Spares/ImageBytes defaults applied
	c    compiled
	plan protocol.FailurePlan
	sch  protocol.Schedule
	// buddies[r] is rank r's buddy list (cluster.Buddies precomputed:
	// the topology is static, and per-call slices were the detailed
	// engine's dominant steady-state allocation — one per rank per
	// committed wave).
	buddies [][]int
}

// CompileDetailed validates cfg, applies its defaults (Spares →
// N/10+1, ImageBytes → 512 MB) and precomputes the batch state shared
// by all seeds. cfg.Seed is ignored (seeds are per run).
func CompileDetailed(cfg DetailedConfig) (*DetailedBatch, error) {
	fast := Config{
		Protocol:    cfg.Protocol,
		Params:      cfg.Params,
		Phi:         cfg.Phi,
		Period:      cfg.Period,
		Tbase:       cfg.Tbase,
		Law:         cfg.Law,
		Correlation: cfg.Correlation,
		MaxSimTime:  cfg.MaxSimTime,
	}
	if err := fast.Validate(); err != nil {
		return nil, err
	}
	if cfg.Params.N%cfg.Protocol.GroupSize() != 0 {
		return nil, fmt.Errorf("sim: %d ranks not divisible by group size %d",
			cfg.Params.N, cfg.Protocol.GroupSize())
	}
	if cfg.Trace != nil {
		if err := cfg.Trace.Validate(); err != nil {
			return nil, err
		}
		if cfg.Trace.Nodes != cfg.Params.N {
			return nil, fmt.Errorf("sim: trace recorded for %d nodes, platform has %d",
				cfg.Trace.Nodes, cfg.Params.N)
		}
	}
	if cfg.Spares < 0 || cfg.ImageBytes < 0 {
		return nil, fmt.Errorf("sim: negative substrate shape (spares %d, imageBytes %d)",
			cfg.Spares, cfg.ImageBytes)
	}
	cfg = cfg.Normalize()
	c, err := compileConfig(fast)
	if err != nil {
		return nil, err
	}
	sch, err := protocol.Build(cfg.Protocol, cfg.Params, cfg.Phi, c.period)
	if err != nil {
		return nil, err
	}
	// Validate the cluster shape once at compile time, so NewRunner
	// cannot fail, and snapshot the static buddy topology.
	cl, err := cluster.New(cfg.Params.N, cfg.Spares, cfg.Protocol.GroupSize())
	if err != nil {
		return nil, err
	}
	buddies := make([][]int, cfg.Params.N)
	for rank := range buddies {
		buddies[rank] = cl.Buddies(rank)
	}
	return &DetailedBatch{
		cfg:     cfg,
		c:       c,
		plan:    protocol.PlanFailure(cfg.Protocol, cfg.Params, cfg.Phi),
		sch:     sch,
		buddies: buddies,
	}, nil
}

// Period returns the checkpointing period the batch simulates.
func (b *DetailedBatch) Period() float64 { return b.c.period }

// Config returns the batch configuration with the period resolved and
// the Spares/ImageBytes defaults applied.
func (b *DetailedBatch) Config() DetailedConfig {
	cfg := b.cfg
	cfg.Period = b.c.period
	return cfg
}

// NewRunner returns a reusable single-goroutine detailed-simulation
// engine for the batch: the cluster, checkpoint registry, incarnation
// table and restore queue are allocated once and rewound in place
// between runs. Runners are not safe for concurrent use; create one
// per worker.
func (b *DetailedBatch) NewRunner() *DetailedRunner {
	eng := &engine{compiled: b.c, comp: make([]riskEntry, 0, 16)}
	var src failure.Source
	if b.cfg.Trace != nil {
		// Each runner owns its replay cursor; the trace itself is shared
		// read-only across runners.
		src = failure.NewReplayTrace(b.cfg.Trace)
	}
	eng.initSource(src)
	cl, err := cluster.New(b.cfg.Params.N, b.cfg.Spares, b.cfg.Protocol.GroupSize())
	if err != nil {
		// The shape was validated at compile time.
		panic("sim: compiled detailed batch with invalid cluster shape: " + err.Error())
	}
	return &DetailedRunner{
		b: b,
		d: detailedEngine{
			cfg:         b.cfg,
			eng:         eng,
			cl:          cl,
			reg:         checkpoint.NewRegistry(b.cfg.Params.N, b.cfg.ImageBytes),
			plan:        b.plan,
			sch:         b.sch,
			buddies:     b.buddies,
			incarnation: make([]int, b.cfg.Params.N),
		},
	}
}

// DetailedRunner executes detailed simulations of one DetailedBatch,
// reusing the substrates between runs.
type DetailedRunner struct {
	b *DetailedBatch
	d detailedEngine
}

// Run simulates one execution with the given seed. Equal seeds give
// identical DetailedResults, and Runner.Run(seed) is identical to
// RunDetailed with the batch Config and that seed.
func (r *DetailedRunner) Run(seed uint64) (DetailedResult, error) {
	return r.RunAntithetic(seed, false)
}

// RunAntithetic simulates one execution with the given seed and,
// when antithetic is true, the reflected-uniform failure sample (see
// Runner.RunAntithetic). The substrate bookkeeping and the structural
// fatality cross-check run identically on both halves of a pair;
// RunAntithetic(seed, false) is bitwise identical to Run(seed).
func (r *DetailedRunner) RunAntithetic(seed uint64, antithetic bool) (DetailedResult, error) {
	d := &r.d
	d.eng.antithetic = antithetic
	d.eng.reset(seed)
	d.cl.Reset()
	d.reg.Reset()
	for i := range d.incarnation {
		d.incarnation[i] = 0
	}
	d.restores.Clear()
	d.res = DetailedResult{}
	return d.run()
}

// commitWave registers the full set of replicas for a committed wave:
// each rank's image lands on itself (double protocols keep a local
// copy) plus its buddy holders, then completes.
func (d *detailedEngine) commitWave() {
	v := d.reg.BeginWave()
	n := d.cfg.Params.N
	for rank := 0; rank < n; rank++ {
		if d.cfg.Protocol.IsTriple() {
			for _, b := range d.buddies[rank] {
				d.reg.AddReplica(rank, v, b)
			}
		} else {
			d.reg.AddReplica(rank, v, rank) // local copy
			d.reg.AddReplica(rank, v, d.buddies[rank][0])
		}
	}
	for rank := 0; rank < n; rank++ {
		d.reg.RankComplete(rank)
	}
	d.res.CommittedWaves++
	d.trackMemory()
}

// processRestores applies restore events due at or before now.
func (d *detailedEngine) processRestores(now float64) {
	for {
		tm, ok := d.restores.PeekTime()
		if !ok || tm > now {
			return
		}
		ev, _ := d.restores.Pop()
		re := ev.Payload
		if d.incarnation[re.holder] != re.holderIncarnation {
			continue // the replacement failed again; restore is void
		}
		if re.version != d.reg.Committed() {
			continue // a newer set committed meanwhile
		}
		d.reg.AddReplica(re.owner, re.version, re.holder)
	}
}

// failRank mirrors the fast engine's applyFailure at the substrate
// level and cross-checks structural vs analytic fatality.
func (d *detailedEngine) failRank(rank int, now float64) (fatal bool, err error) {
	d.processRestores(now)
	d.incarnation[rank]++

	if _, ferr := d.cl.Fail(rank, now); ferr == cluster.ErrNoSpares {
		d.res.SpareExhaustion++
	} else if ferr != nil {
		return false, ferr
	}
	d.reg.InvalidateHolder(rank)

	structuralFatal := !d.reg.Recoverable(rank)
	if structuralFatal {
		d.res.StructuralFatal = true
		return true, nil
	}

	// Schedule the restoration of the buddy images the failed machine
	// lost, atomically at the end of the risk window (see restoreEvent
	// for why the per-image milestones are not used here).
	v := d.reg.Committed()
	if v > 0 {
		for _, owner := range d.buddies[rank] {
			d.restores.Schedule(now+d.plan.RiskWindow, restoreEvent{
				owner:             owner,
				holder:            rank,
				version:           v,
				holderIncarnation: d.incarnation[rank],
			})
		}
		if !d.cfg.Protocol.IsTriple() {
			// Double protocols also rebuild the local copy (received
			// during the recovery R at the end of the stall).
			d.restores.Schedule(now+d.cfg.Params.D+d.cfg.Params.R, restoreEvent{
				owner:             rank,
				holder:            rank,
				version:           v,
				holderIncarnation: d.incarnation[rank],
			})
		}
	}
	return false, nil
}

// trackMemory records the peak per-rank replica count over a sample of
// ranks (sampling keeps large platforms cheap).
func (d *detailedEngine) trackMemory() {
	limit := d.cfg.Params.N
	if limit > 64 {
		limit = 64
	}
	for rank := 0; rank < limit; rank++ {
		if use := d.reg.MemoryUse(rank); use > d.res.MaxImagesPerRank {
			d.res.MaxImagesPerRank = use
		}
	}
}

// run drives the fast engine's timeline while maintaining the
// substrates in lockstep: the engine's commit hook updates the
// checkpoint registry at the exact commit instants, and every failure
// is applied to both the analytic bookkeeping and the substrates, with
// the two fatality verdicts cross-checked.
func (d *detailedEngine) run() (DetailedResult, error) {
	e := d.eng
	e.onCommit = func(t float64) {
		d.processRestores(t)
		d.commitWave()
	}
	horizon := d.cfg.MaxSimTime
	if horizon == 0 {
		horizon = 1000 * d.cfg.Tbase
	}
	for {
		ev, ok := e.nextFailure()
		target := horizon
		if ok && ev.Time < horizon {
			target = ev.Time
		}
		if !ok {
			// An exhausted trace vouches for silence only up to its
			// coverage; the run may finish inside it but must not coast
			// fault-free past it.
			if cov := e.sourceCoverage(); cov < target {
				target = cov
			}
		}
		done := e.advanceUntil(target)
		d.processRestores(e.t)
		if done {
			d.res.Result = e.res
			d.res.Result.Completed = true
			d.finish()
			return d.res, nil
		}
		if !ok {
			if cov := e.sourceCoverage(); cov < horizon {
				return DetailedResult{}, fmt.Errorf("sim: %w: log covers [0, %v], simulation still running at t=%v",
					failure.ErrTraceExhausted, cov, e.t)
			}
			d.res.Result = e.res
			d.finish()
			return d.res, nil
		}
		if ev.Time >= horizon {
			d.res.Result = e.res
			d.finish()
			return d.res, nil
		}
		rank := ev.Node
		// Apply to the fast engine first (timeline + analytic risk).
		analyticFatal := e.applyFailure(rank)
		structFatal, err := d.failRank(rank, e.t)
		if err != nil {
			return DetailedResult{}, err
		}
		if analyticFatal != structFatal {
			return DetailedResult{}, fmt.Errorf(
				"sim: fatality disagreement at t=%v rank=%d: analytic=%v structural=%v",
				e.t, rank, analyticFatal, structFatal)
		}
		if analyticFatal {
			d.res.Result = e.res
			d.finish()
			return d.res, nil
		}
	}
}

// finish copies the fast engine's final accounting.
func (d *detailedEngine) finish() {
	e := d.eng
	d.res.Makespan = e.t
	d.res.WorkDone = math.Min(e.work, d.cfg.Tbase)
	if d.res.Makespan > 0 {
		d.res.Waste = 1 - d.res.WorkDone/d.res.Makespan
	}
	d.res.LostTime = d.res.Makespan - e.faultFreeMakespan(d.res.WorkDone)
	d.res.Failures = e.res.Failures
	d.res.Fatal = e.res.Fatal
	d.res.FatalTime = e.res.FatalTime
	d.res.FailuresInRisk = e.res.FailuresInRisk
	d.res.RiskTime = e.res.RiskTime
	d.res.ImportanceFatalProb = e.res.ImportanceFatalProb
	d.res.Period = e.period
	d.trackMemory()
}
