package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
)

// TestRunInvariantsProperty fuzzes the fast engine across protocols,
// overheads, MTBFs and seeds and checks the accounting identities that
// must hold for every run:
//
//   - waste ∈ [0, 1];
//   - completed ⇒ WorkDone = Tbase and Makespan ≥ fault-free makespan;
//   - LostTime ≥ 0 and Makespan = faultFree(WorkDone) + LostTime;
//   - no failures ⇒ LostTime = 0.
func TestRunInvariantsProperty(t *testing.T) {
	base := baseParams()
	prop := func(rawPhi, rawM float64, rawProto, seed uint16) bool {
		pr := core.Protocols[int(rawProto)%len(core.Protocols)]
		phi := math.Mod(math.Abs(rawPhi), 1) * base.R
		if math.IsNaN(phi) {
			phi = 1
		}
		m := 120 + math.Mod(math.Abs(rawM), 7200)
		if math.IsNaN(m) {
			m = 600
		}
		cfg := Config{
			Protocol:   pr,
			Params:     base.WithMTBF(m),
			Phi:        phi,
			Tbase:      20000,
			Seed:       uint64(seed),
			MaxSimTime: 5e6,
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		if res.Waste < 0 || res.Waste > 1 || math.IsNaN(res.Waste) {
			return false
		}
		if res.Completed && math.Abs(res.WorkDone-cfg.Tbase) > 1e-6 {
			return false
		}
		if res.LostTime < -1e-6 {
			return false
		}
		if res.Failures == 0 && res.LostTime > 1e-6 {
			return false
		}
		if res.Makespan < res.WorkDone-1e-6 {
			return false // cannot do more work than wall-clock time
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMoreFailuresMoreWaste: with the same protocol and period, a
// platform with a smaller MTBF never wastes less (in expectation over
// a batch of seeds).
func TestMoreFailuresMoreWaste(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo")
	}
	base := baseParams()
	var prev float64 = -1
	for _, m := range []float64{3600, 1800, 900, 450} {
		agg, err := RunMany(Config{
			Protocol: core.DoubleNBL,
			Params:   base.WithMTBF(m),
			Phi:      1,
			Period:   100,
			Tbase:    1e5,
			Seed:     3,
		}, 12)
		if err != nil {
			t.Fatal(err)
		}
		w := agg.Waste.Mean()
		if prev >= 0 && w < prev-0.005 {
			t.Fatalf("waste decreased when MTBF shrank: %v after %v (M=%v)", w, prev, m)
		}
		prev = w
	}
}

// TestProtocolOrderingUnderReplay: on the same failure sample with the
// same period and φ < δ, Triple's makespan beats the double protocols'
// (it skips the blocking local checkpoint), and DoubleNBL beats
// DoubleBoF (BoF pays an extra R per failure).
func TestProtocolOrderingUnderReplay(t *testing.T) {
	p := baseParams().WithMTBF(600)
	src := &failure.Recorder{Inner: failure.NewMerged(p.N, p.M, rng.New(17))}
	run := func(pr core.Protocol, s failure.Source) Result {
		res, err := Run(Config{
			Protocol: pr,
			Params:   p,
			Phi:      1, // φ = 1 < δ = 2
			Period:   120,
			Tbase:    3e4,
			Source:   s,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%s did not complete", pr)
		}
		return res
	}
	nbl := run(core.DoubleNBL, src)
	bof := run(core.DoubleBoF, failure.NewReplay(src.Log))
	tri := run(core.TripleNBL, failure.NewReplay(src.Log))
	if nbl.Failures == 0 {
		t.Skip("no failures sampled")
	}
	if bof.Makespan < nbl.Makespan {
		t.Errorf("BoF makespan %v beat NBL %v on the same failures", bof.Makespan, nbl.Makespan)
	}
	if tri.Makespan >= nbl.Makespan {
		t.Errorf("Triple makespan %v did not beat NBL %v at φ<δ", tri.Makespan, nbl.Makespan)
	}
}
