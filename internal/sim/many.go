package sim

import (
	"runtime"
	"sync"

	"repro/internal/stats"
)

// Aggregate summarizes a batch of independent runs of the same
// configuration (differing only by seed).
type Aggregate struct {
	Runs      int
	Waste     stats.Sample // waste of completed runs
	Makespan  stats.Sample // makespan of completed runs
	LossPerF  stats.Sample // mean lost time per failure (simulated F)
	Failures  stats.Sample // failures per run
	Fatal     stats.Proportion
	Completed stats.Proportion
	// ImportanceFatal averages the variance-reduced per-run fatal
	// probability estimates (see Result.ImportanceFatalProb).
	ImportanceFatal stats.Sample
}

// RunMany executes runs independent simulations in parallel (one
// goroutine per CPU) and aggregates the results. Seeds are
// cfg.Seed+0 .. cfg.Seed+runs-1, so results are reproducible and
// independent of the worker count. Config.Source must be nil (a shared
// source cannot be split across runs).
func RunMany(cfg Config, runs int) (Aggregate, error) {
	return RunManyWorkers(cfg, runs, runtime.GOMAXPROCS(0))
}

// RunManyWorkers is RunMany with an explicit worker budget, for
// callers that already parallelize above the batch (the API sweep
// engine gives each grid point a bounded slice of the machine instead
// of letting every point claim all CPUs). workers <= 0 falls back to
// one goroutine per CPU. The aggregate is identical for any worker
// count.
func RunManyWorkers(cfg Config, runs, workers int) (Aggregate, error) {
	if err := cfg.Validate(); err != nil {
		return Aggregate{}, err
	}
	if cfg.Source != nil {
		cfg.Source = nil // sources are single-run; fall back to seeded generation
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]Result, runs)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < runs; i += workers {
				c := cfg
				c.Seed = cfg.Seed + uint64(i)
				res, err := Run(c)
				if err != nil {
					errs[w] = err
					return
				}
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Aggregate{}, err
		}
	}

	var agg Aggregate
	agg.Runs = runs
	for i := range results {
		res := &results[i]
		agg.Fatal.Add(res.Fatal)
		agg.Completed.Add(res.Completed)
		agg.ImportanceFatal.Add(res.ImportanceFatalProb)
		if res.Completed {
			agg.Waste.Add(res.Waste)
			agg.Makespan.Add(res.Makespan)
			agg.Failures.Add(float64(res.Failures))
			if res.Failures > 0 {
				agg.LossPerF.Add(res.LostTime / float64(res.Failures))
			}
		}
	}
	return agg, nil
}
