package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Aggregate summarizes a batch of independent runs of the same
// configuration (differing only by seed).
type Aggregate struct {
	Runs      int
	Waste     stats.Sample // waste of completed runs
	Makespan  stats.Sample // makespan of completed runs
	LossPerF  stats.Sample // mean lost time per failure (simulated F)
	Failures  stats.Sample // failures per run
	Fatal     stats.Proportion
	Completed stats.Proportion
	// ImportanceFatal averages the variance-reduced per-run fatal
	// probability estimates (see Result.ImportanceFatalProb).
	ImportanceFatal stats.Sample
}

// Add folds one run into the aggregate.
func (a *Aggregate) Add(res Result) {
	a.Runs++
	a.Fatal.Add(res.Fatal)
	a.Completed.Add(res.Completed)
	a.ImportanceFatal.Add(res.ImportanceFatalProb)
	if res.Completed {
		a.Waste.Add(res.Waste)
		a.Makespan.Add(res.Makespan)
		a.Failures.Add(float64(res.Failures))
		if res.Failures > 0 {
			a.LossPerF.Add(res.LostTime / float64(res.Failures))
		}
	}
}

// Merge folds another aggregate into a. Merging an empty aggregate is
// a no-op and merging into an empty aggregate copies o exactly, so a
// chunk-ordered merge of partial aggregates is independent of how many
// workers produced them.
func (a *Aggregate) Merge(o Aggregate) {
	a.Runs += o.Runs
	a.Waste.Merge(o.Waste)
	a.Makespan.Merge(o.Makespan)
	a.LossPerF.Merge(o.LossPerF)
	a.Failures.Merge(o.Failures)
	a.Fatal.Merge(o.Fatal)
	a.Completed.Merge(o.Completed)
	a.ImportanceFatal.Merge(o.ImportanceFatal)
}

// aggChunkSize is the fixed streaming-aggregation granularity: seeds
// are grouped into chunks of this many consecutive runs, each chunk is
// reduced to a partial Aggregate (by in-seed-order Adds over the
// chunk's buffered results), and the partials are merged in chunk
// order. The chunk boundaries and the per-chunk Add order depend only
// on the run count — never on the worker count or scheduling — so the
// final Aggregate is bitwise identical for any number of workers, and
// a batch holds one chunk of Results plus O(1) aggregates instead of
// materializing all runs. Within a chunk the runs themselves are
// simulated in parallel, so batches as small as one chunk still use
// the full worker budget.
const aggChunkSize = 256

// RunMany executes runs independent simulations in parallel (one
// goroutine per CPU) and aggregates the results. Seeds are
// cfg.Seed+0 .. cfg.Seed+runs-1, so results are reproducible and
// independent of the worker count. Config.Source must be nil (a shared
// source cannot be split across runs).
func RunMany(cfg Config, runs int) (Aggregate, error) {
	return RunManyWorkers(cfg, runs, runtime.GOMAXPROCS(0))
}

// RunManyWorkers is RunMany with an explicit worker budget, for
// callers that already parallelize above the batch (the API sweep
// engine gives each grid point a bounded slice of the machine instead
// of letting every point claim all CPUs). workers <= 0 falls back to
// one goroutine per CPU. The aggregate is identical for any worker
// count.
func RunManyWorkers(cfg Config, runs, workers int) (Aggregate, error) {
	if cfg.Source != nil {
		cfg.Source = nil // sources are single-run; fall back to seeded generation
	}
	b, err := Compile(cfg)
	if err != nil {
		return Aggregate{}, err
	}
	return b.RunManySeeded(cfg.Seed, runs, workers)
}

// RunManySeeded executes runs simulations of the batch with seeds
// base+0 .. base+runs-1 across the given worker budget, streaming
// per-chunk partial aggregates instead of materializing per-run
// Results. Batches on the merged exponential path execute through the
// lane-batched kernel (LaneRunner) in production mode — closed-form
// fast-forward plus ziggurat sampling, statistically equivalent to
// the scalar Runner and fully deterministic per seed, with the same
// chunked aggregation, so the Aggregate is bitwise identical for any
// worker count; renewal-law batches run the scalar Runner. Each
// worker owns one reusable runner (kept across chunks), so the
// steady-state simulation loop allocates nothing.
func (b *Batch) RunManySeeded(base uint64, runs, workers int) (Aggregate, error) {
	if b.c.iid() {
		return b.aggregateLanes(runs, workers, false,
			func(lo int, seeds []uint64, anti []bool) {
				for i := range seeds {
					seeds[i] = base + uint64(lo+i)
				}
			}, nil)
	}
	return AggregateSeeded(base, runs, workers, func(int) func(uint64) (Result, error) {
		r := b.NewRunner()
		return func(seed uint64) (Result, error) { return r.Run(seed), nil }
	})
}

// RunAntitheticSeeded executes the global run indices [first,
// first+runs) of the antithetically paired schedule (run j: seed
// base+j/2, reflected when j is odd) with the batch's fastest
// backend: lane-batched in exact mode on the merged exponential path
// — pairs land on adjacent lanes and replay the scalar draw sequence
// bitwise — and the scalar Runner otherwise. The semantics
// (chunking, observe order, worker-count bitwise independence) are
// exactly AggregateAntithetic's; the engine package's adaptive
// executor routes through it.
func (b *Batch) RunAntitheticSeeded(base uint64, first, runs, workers int,
	observe func(Result)) (Aggregate, error) {
	if b.c.iid() {
		return b.aggregateLanes(runs, workers, true,
			func(lo int, seeds []uint64, anti []bool) {
				for i := range seeds {
					j := first + lo + i
					seeds[i] = base + uint64(j/2)
					anti[i] = j&1 == 1
				}
			}, observe)
	}
	return AggregateAntithetic(base, first, runs, workers,
		func(int) func(uint64, bool) (Result, error) {
			r := b.NewRunner()
			return func(seed uint64, antithetic bool) (Result, error) {
				return r.RunAntithetic(seed, antithetic), nil
			}
		}, observe)
}

// aggregateLanes is the lane-batched analogue of aggregateItems: items
// [0, n) are dispatched in the same fixed chunks of aggChunkSize, each
// chunk splits into whole lane groups of DefaultLaneWidth (the width
// divides the chunk size, so group boundaries — and with them the
// merge order — are identical to the scalar path's), workers claim
// groups and run them through per-worker LaneRunners, and the buffered
// Results fold in item order exactly as before. A lane Result is a
// pure function of its seed (exact mode: bitwise the scalar Runner's;
// production mode: statistically equivalent), so the Aggregate is
// bitwise identical for any worker count either way.
func (b *Batch) aggregateLanes(n, workers int, antithetic bool,
	fill func(lo int, seeds []uint64, anti []bool), observe func(Result)) (Aggregate, error) {
	if n <= 0 {
		return Aggregate{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, (n+DefaultLaneWidth-1)/DefaultLaneWidth)
	if workers < 1 {
		workers = 1
	}
	type laneWorker struct {
		lr    *LaneRunner
		seeds []uint64
		anti  []bool
	}
	ws := make([]*laneWorker, workers)
	defer func() {
		for _, w := range ws {
			if w != nil {
				b.lanes.Put(w.lr)
			}
		}
	}()
	for w := range ws {
		lr, err := b.laneRunner()
		if err != nil {
			return Aggregate{}, err
		}
		// The antithetic schedule runs in exact mode: reflection must
		// mirror the scalar draw sequence exactly for the pairing (and
		// the adaptive executor's oracle tests) to hold. SetExact also
		// restores the production defaults on a pooled runner last used
		// antithetically.
		lr.SetExact(antithetic)
		ws[w] = &laneWorker{lr: lr, seeds: make([]uint64, DefaultLaneWidth)}
		if antithetic {
			ws[w].anti = make([]bool, DefaultLaneWidth)
		}
	}
	buf := make([]Result, min(aggChunkSize, n))
	var total Aggregate
	for lo := 0; lo < n; lo += aggChunkSize {
		hi := min(lo+aggChunkSize, n)
		span := buf[:hi-lo]
		groups := (len(span) + DefaultLaneWidth - 1) / DefaultLaneWidth
		err := runChunks(groups, workers,
			func(w int) *laneWorker { return ws[w] },
			func(w *laneWorker, g int) error {
				gLo := g * DefaultLaneWidth
				gHi := min(gLo+DefaultLaneWidth, len(span))
				seeds := w.seeds[:gHi-gLo]
				var anti []bool
				if antithetic {
					anti = w.anti[:gHi-gLo]
				}
				fill(lo+gLo, seeds, anti)
				w.lr.RunBatch(seeds, anti, span[gLo:gHi])
				return nil
			})
		if err != nil {
			return Aggregate{}, err
		}
		var part Aggregate
		for j := range span {
			part.Add(span[j])
			if observe != nil {
				observe(span[j])
			}
		}
		total.Merge(part)
	}
	return total, nil
}

// AggregateSeeded is the backend-agnostic batch executor behind
// RunManySeeded and the engine package: it runs seeds base+0 ..
// base+runs-1 through per-worker run functions and streams the chunked
// deterministic aggregation. newRunner(w) is called once per worker
// (before any run starts) and returns that worker's run function — a
// closure over whatever reusable per-worker state the backend needs —
// so the steady-state loop pays no per-run setup.
//
// A per-run error (the detailed engine's fatality cross-check, an
// exhausted backend) cancels the remaining dispatch via runChunks
// instead of letting the other workers finish the batch.
func AggregateSeeded(base uint64, runs, workers int,
	newRunner func(w int) func(seed uint64) (Result, error)) (Aggregate, error) {
	return aggregateItems(runs, workers,
		func(w int) func(item int) (Result, error) {
			run := newRunner(w)
			return func(item int) (Result, error) { return run(base + uint64(item)) }
		}, nil)
}

// AggregateAntithetic is the adaptive executor's round primitive: it
// runs the global run indices [first, first+runs) of an
// antithetically paired schedule — run index j belongs to pair j/2,
// shares seed base+j/2 with its mirror, and the odd half draws the
// reflected-uniform failure sample — through per-worker run functions,
// streaming the same chunked deterministic aggregation as
// AggregateSeeded. observe, when non-nil, receives every Result once,
// in run-index order, on the calling goroutine (during the in-order
// Add pass), so callers can feed order-sensitive accumulators (the
// control-variate regression) without giving up worker-count
// independence.
//
// The index mapping depends only on (base, j), never on the round
// split: executing [0, 8) then [8, 16) replays the exact pairs an
// uninterrupted [0, 16) with the same round boundary would run, which
// is what makes an interrupted adaptive point bitwise resumable.
func AggregateAntithetic(base uint64, first, runs, workers int,
	newRunner func(w int) func(seed uint64, antithetic bool) (Result, error),
	observe func(Result)) (Aggregate, error) {
	return aggregateItems(runs, workers,
		func(w int) func(item int) (Result, error) {
			run := newRunner(w)
			return func(item int) (Result, error) {
				j := first + item
				return run(base+uint64(j/2), j&1 == 1)
			}
		}, observe)
}

// aggregateItems is the shared chunked executor behind AggregateSeeded
// and AggregateAntithetic: items [0, n) are dispatched over the worker
// budget in fixed chunks of aggChunkSize, each chunk's buffered
// Results are folded in item order into a partial Aggregate (observe
// sees them in the same pass), and the partials merge in chunk order —
// bitwise independent of the worker count.
func aggregateItems(n, workers int,
	newRunner func(w int) func(item int) (Result, error),
	observe func(Result)) (Aggregate, error) {
	if n <= 0 {
		return Aggregate{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, n)
	if workers < 1 {
		workers = 1
	}
	fns := make([]func(int) (Result, error), workers)
	for w := range fns {
		fns[w] = newRunner(w)
	}
	buf := make([]Result, min(aggChunkSize, n))
	var total Aggregate
	for lo := 0; lo < n; lo += aggChunkSize {
		hi := min(lo+aggChunkSize, n)
		span := buf[:hi-lo]
		err := runChunks(len(span), workers,
			func(w int) func(int) (Result, error) { return fns[w] },
			func(run func(int) (Result, error), j int) error {
				res, err := run(lo + j)
				if err != nil {
					return err
				}
				span[j] = res
				return nil
			})
		if err != nil {
			return Aggregate{}, err
		}
		// The partial is built by in-order Adds over the chunk, so it —
		// and therefore the chunk-ordered merge — is independent of how
		// the parallel runs above were scheduled.
		var part Aggregate
		for j := range span {
			part.Add(span[j])
			if observe != nil {
				observe(span[j])
			}
		}
		total.Merge(part)
	}
	return total, nil
}

// runChunks dispatches work-item indices [0, n) to a pool of workers;
// worker w operates on the state newWorker(w) returns (a reusable
// Runner in the batch path). The first error cancels the dispatch:
// every worker observes the stop flag before claiming its next item,
// so a failing batch aborts promptly instead of the surviving workers
// simulating the rest of it.
func runChunks[W any](n, workers int, newWorker func(w int) W, fn func(w W, item int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, n)
	if workers < 1 {
		workers = 1
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := newWorker(i)
			for !stop.Load() {
				item := int(next.Add(1)) - 1
				if item >= n {
					return
				}
				if err := fn(w, item); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
