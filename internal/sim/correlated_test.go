package sim

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
)

func corrParams(n int) core.Params {
	return core.Params{D: 1, Delta: 2, R: 4, Alpha: 10, N: n, M: 100}
}

// TestRunTraceExhaustedErrors pins the loud-failure contract: a
// trace-backed run that outlives its trace's coverage returns
// failure.ErrTraceExhausted instead of silently coasting fault-free
// (which would bias waste low).
func TestRunTraceExhaustedErrors(t *testing.T) {
	p := corrParams(8)
	// A trace whose coverage ends long before the application can
	// finish: one early failure, horizon 50, Tbase 10000.
	tr := &failure.Trace{
		Nodes:        8,
		PlatformMTBF: 100,
		Law:          "exponential",
		Horizon:      50,
		Events:       []failure.Event{{Time: 10, Node: 3}},
	}
	_, err := Run(Config{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      2,
		Tbase:    10000,
		Source:   failure.NewReplayTrace(tr),
	})
	if !errors.Is(err, failure.ErrTraceExhausted) {
		t.Fatalf("expected ErrTraceExhausted, got %v", err)
	}

	// The same trace with coverage past the run's needs succeeds.
	long := &failure.Trace{
		Nodes:        8,
		PlatformMTBF: 100,
		Law:          "exponential",
		Horizon:      1e9,
		Events:       []failure.Event{{Time: 10, Node: 3}},
	}
	res, err := Run(Config{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      2,
		Tbase:    10000,
		Source:   failure.NewReplayTrace(long),
	})
	if err != nil {
		t.Fatalf("covered replay failed: %v", err)
	}
	if !res.Completed || res.Failures != 1 {
		t.Fatalf("covered replay: completed=%v failures=%d", res.Completed, res.Failures)
	}

	// Legacy raw-slice replay keeps its unbounded-coverage semantics.
	res, err = Run(Config{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      2,
		Tbase:    10000,
		Source:   failure.NewReplay(tr.Events),
	})
	if err != nil {
		t.Fatalf("raw replay failed: %v", err)
	}
	if !res.Completed {
		t.Fatal("raw replay should complete fault-free past the log")
	}
}

// TestRunDetailedTraceExhaustedErrors is the same contract through the
// detailed substrate simulator (the backend traces actually run on).
func TestRunDetailedTraceExhaustedErrors(t *testing.T) {
	p := corrParams(8)
	tr := &failure.Trace{
		Nodes:        8,
		PlatformMTBF: 100,
		Law:          "exponential",
		Horizon:      50,
		Events:       []failure.Event{{Time: 10, Node: 3}},
	}
	cfg := DetailedConfig{
		Protocol: core.DoubleNBL,
		Params:   p,
		Phi:      2,
		Tbase:    10000,
		Trace:    tr,
	}
	if _, err := RunDetailed(cfg); !errors.Is(err, failure.ErrTraceExhausted) {
		t.Fatalf("expected ErrTraceExhausted, got %v", err)
	}
	cfg.Trace = &failure.Trace{
		Nodes:        8,
		PlatformMTBF: 100,
		Law:          "exponential",
		Horizon:      1e9,
		Events:       []failure.Event{{Time: 10, Node: 3}},
	}
	res, err := RunDetailed(cfg)
	if err != nil {
		t.Fatalf("covered replay failed: %v", err)
	}
	if !res.Completed || res.Failures != 1 {
		t.Fatalf("covered replay: completed=%v failures=%d", res.Completed, res.Failures)
	}
}

// TestCompileDetailedRejectsBadTrace checks compile-time trace gating:
// node-count mismatch and invalid traces fail before any run.
func TestCompileDetailedRejectsBadTrace(t *testing.T) {
	base := DetailedConfig{
		Protocol: core.DoubleNBL,
		Params:   corrParams(8),
		Phi:      2,
		Tbase:    100,
	}
	mismatched := base
	mismatched.Trace = &failure.Trace{Nodes: 16, Horizon: 1e9}
	if _, err := CompileDetailed(mismatched); err == nil {
		t.Fatal("node-count mismatch should fail to compile")
	}
	invalid := base
	invalid.Trace = &failure.Trace{Nodes: 8, Events: []failure.Event{{Time: -1, Node: 0}}}
	if _, err := CompileDetailed(invalid); err == nil {
		t.Fatal("invalid trace should fail to compile")
	}
}

// TestDetailedTraceReplayDeterministic pins replay determinism across
// runners and repeated runs of one runner: the trace is the failure
// sample, so every run is bitwise the same result.
func TestDetailedTraceReplayDeterministic(t *testing.T) {
	// Record a trace from a generated run so it contains a realistic
	// failure mix, with a horizon comfortably past the app's needs.
	gen := failure.NewMerged(8, 400, rng.New(99))
	tr := failure.Collect(gen, 8, 400, "exponential", 1e7)
	cfg := DetailedConfig{
		Protocol: core.DoubleNBL,
		Params:   corrParams(8),
		Phi:      2,
		Tbase:    5000,
		Trace:    tr,
	}
	b, err := CompileDetailed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1 := b.NewRunner()
	first, err := r1.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Failures == 0 {
		t.Fatal("trace replay saw no failures; trace too sparse for the test")
	}
	again, err := r1.Run(2) // different seed: the trace decides, not the seed
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("same runner diverged across runs:\n%+v\n%+v", first, again)
	}
	fresh, err := b.NewRunner().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if first != fresh {
		t.Fatalf("fresh runner diverged:\n%+v\n%+v", first, fresh)
	}
}

// TestBatchCorrelatedDeterministic pins seed determinism of the burst
// model through the batch path, and that correlated batches skip the
// lane kernel.
func TestBatchCorrelatedDeterministic(t *testing.T) {
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   corrParams(16),
		Phi:      2,
		Tbase:    5000,
		Correlation: &failure.Correlation{
			Domains: &failure.DomainSpec{Size: 4, Rate: 1.0 / 500},
		},
	}
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.NewLaneRunner(DefaultLaneWidth); err == nil {
		t.Fatal("correlated batch must not get a lane runner")
	}
	r := b.NewRunner()
	a1 := r.Run(7)
	a2 := b.NewRunner().Run(7)
	if a1 != a2 {
		t.Fatalf("seed 7 diverged across runners:\n%+v\n%+v", a1, a2)
	}
	if r.Run(8) == a1 {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
	// The aggregate path must agree across worker counts (scalar
	// fallback keeps the worker-count-bitwise contract).
	agg1, err := b.RunManySeeded(100, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg4, err := b.RunManySeeded(100, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if agg1 != agg4 {
		t.Fatalf("worker counts diverged:\n%+v\n%+v", agg1, agg4)
	}
}

// TestBatchGroupsDeterministic does the same for the per-group MTBF
// axis, which routes through the heterogeneous renewal source.
func TestBatchGroupsDeterministic(t *testing.T) {
	cfg := Config{
		Protocol: core.DoubleNBL,
		Params:   corrParams(16),
		Phi:      2,
		Tbase:    5000,
		Correlation: &failure.Correlation{
			Groups: []float64{4, 2, 1, 1},
		},
	}
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.NewLaneRunner(DefaultLaneWidth); err == nil {
		t.Fatal("grouped batch must not get a lane runner")
	}
	r := b.NewRunner()
	a1 := r.Run(7)
	a2 := b.NewRunner().Run(7)
	if a1 != a2 {
		t.Fatalf("seed 7 diverged across runners:\n%+v\n%+v", a1, a2)
	}
	agg1, err := b.RunManySeeded(100, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg3, err := b.RunManySeeded(100, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg1 != agg3 {
		t.Fatalf("worker counts diverged:\n%+v\n%+v", agg1, agg3)
	}
}

// TestCompileRejectsBadCorrelation checks compile-time validation of
// the correlation axes.
func TestCompileRejectsBadCorrelation(t *testing.T) {
	base := Config{
		Protocol: core.DoubleNBL,
		Params:   corrParams(16),
		Phi:      2,
		Tbase:    100,
	}
	bad := base
	bad.Correlation = &failure.Correlation{Domains: &failure.DomainSpec{Size: 5, Rate: 1}}
	if _, err := Compile(bad); err == nil {
		t.Fatal("non-dividing domain size should fail to compile")
	}
	bad = base
	bad.Correlation = &failure.Correlation{Groups: []float64{1, 2, 3}}
	if _, err := Compile(bad); err == nil {
		t.Fatal("non-dividing group count should fail to compile")
	}
}
