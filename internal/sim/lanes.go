package sim

import (
	"fmt"
	"math"

	"repro/internal/failure"
	"repro/internal/rng"
)

// This file is the lane-batched kernel (DESIGN.md, "Lane kernel"): a
// LaneRunner advances up to `width` independent runs in lockstep over
// structure-of-arrays state — per-lane clocks, accumulated work,
// period offsets, prefetched next-failure times — so the dominant cost
// of a healthy platform, replaying fault-free periods, becomes a
// data-parallel pass over contiguous float64 slices whose per-lane
// dependency chains overlap in the CPU pipeline instead of
// serializing one timeline at a time.
//
// The kernel has two replay modes with two contracts:
//
//   - exact mode (SetExact(true)): lane l with seed s produces a
//     Result bitwise identical to Runner.Run(s) (and, antithetic, to
//     RunAntithetic). Every method is a line-for-line port of
//     engine.go operating on lane-indexed state; the period-replay
//     fast-forward (engine.replayPeriods) is hoisted out of the
//     per-lane walk into a wave pass (waveReplay) whose additions are
//     the exact per-lane operand sequence, only interleaved across
//     lanes for instruction-level parallelism. The antithetic
//     executor (RunAntitheticSeeded) runs in this mode, so the
//     adaptive rounds replay the scalar schedule bit for bit.
//
//   - production mode (the default): the fault-free fast-forward is
//     computed in closed form — k whole periods collapse to two
//     multiply-adds instead of k dependent add chains — and the
//     inter-arrival sampler is the log-free ziggurat. Results then
//     differ from the scalar oracle in accumulated rounding (and in
//     the draw sequence), so the equivalence is statistical, but the
//     path stays fully deterministic: a fixed seed yields fixed bits,
//     so the worker-count-bitwise merge guarantee is untouched.
//
// In both modes failure events are prefetched per lane in batches
// (failure.Merged.FillEvents), consuming the lane's stream in the
// exact per-event order of the scalar path and deferring the logs to
// one pipelined pass. Overdrawn events are discarded at the next
// reset, which is harmless because each run reseeds its stream.
//
// The tail is per-lane: runs finishing at different makespans leave
// the active set individually, so a batch degrades gracefully to
// scalar-equivalent work when only one lane remains.

// DefaultLaneWidth is the lane count the batched executor uses: it
// divides aggChunkSize (chunks split into whole lane groups, keeping
// the merge order of the chunked aggregation unchanged) and is even
// (antithetic pairs occupy adjacent lanes).
const DefaultLaneWidth = 16

// waveConsts caches one period's additions — the exact operand
// sequence of engine.replayPeriods — so the exact-mode wave cascade
// and tail add the same bits as the scalar walk.
type waveConsts struct {
	c1, seg2, seg3 float64
	wc1, wc2       float64
	triple         bool
}

// advanceLane outcomes.
const (
	laneReached   = iota // timeline reached the advance target
	laneCompleted        // work target reached; the run is done
	laneParked           // scalar fast-forward condition hit; wave pending
)

// LaneRunner executes batches of up to `width` runs of one Batch in
// lockstep. Like Runner it is single-goroutine and allocation-free in
// steady state; create one per worker. It requires the merged
// exponential failure path (Config.Law == nil) — renewal-law batches
// fall back to the scalar Runner.
type LaneRunner struct {
	compiled
	width   int
	workCap float64 // tbase − 2·periodWork, the scalar replay work cap
	zig     bool
	exact   bool
	bufLen  int

	// SoA timeline state, indexed by lane.
	t               []float64
	work            []float64
	snapshotWork    []float64
	periodStartWork []float64
	offset          []float64
	target          []float64 // advance target of a parked lane

	// Per-lane stall/re-execution and risk state.
	md              []mode
	stallRemaining  []float64
	reexecRemaining []float64
	overlapRemain   []float64
	resumeOffset    []float64
	riskUntil       []float64
	everCommitted   []bool
	comp            [][]riskEntry
	res             []Result

	// Failure sampling: one content-seeded stream and merged process
	// per lane, refilling a per-lane slice of the shared event buffers.
	streams []rng.Stream
	merged  []*failure.Merged
	evTime  []float64 // width × bufLen, lane l owns [l·bufLen, (l+1)·bufLen)
	evNode  []int32
	evPos   []int
	us      []float64 // uniform scratch for one refill

	active []int
	parked []int
	keys   []uint64   // exact-mode bulk worklist: packed (periods<<16 | lane) sort keys
	wc     waveConsts // one period's additions, set once per batch

	// Reciprocals of the period spans, precomputed for the replay
	// period-count candidates (a multiply instead of a divide; the
	// candidate is corrected against the exact bounds either way).
	invPeriod     float64
	invPeriodWork float64
}

// NewLaneRunner returns a lane-batched runner of the given width.
// Batches with a renewal failure law have no lane path (each lane
// would need N per-node streams), and correlated batches none either
// (the closed-form fast-forward assumes independent failures); callers
// fall back to NewRunner.
func (b *Batch) NewLaneRunner(width int) (*LaneRunner, error) {
	if !b.c.iid() {
		return nil, fmt.Errorf("sim: lane runner requires the i.i.d. merged exponential failure path (no Law, no Correlation)")
	}
	if width < 1 || width > 1<<16 {
		return nil, fmt.Errorf("sim: lane width %d must be in [1, 65536]", width)
	}
	lr := &LaneRunner{compiled: b.c, width: width}
	lr.workCap = lr.tbase - 2*lr.periodWork
	lr.t = make([]float64, width)
	lr.work = make([]float64, width)
	lr.snapshotWork = make([]float64, width)
	lr.periodStartWork = make([]float64, width)
	lr.offset = make([]float64, width)
	lr.target = make([]float64, width)
	lr.md = make([]mode, width)
	lr.stallRemaining = make([]float64, width)
	lr.reexecRemaining = make([]float64, width)
	lr.overlapRemain = make([]float64, width)
	lr.resumeOffset = make([]float64, width)
	lr.riskUntil = make([]float64, width)
	lr.everCommitted = make([]bool, width)
	lr.comp = make([][]riskEntry, width)
	lr.res = make([]Result, width)
	lr.streams = make([]rng.Stream, width)
	lr.merged = make([]*failure.Merged, width)
	for l := 0; l < width; l++ {
		lr.comp[l] = make([]riskEntry, 0, 16)
		lr.merged[l] = failure.NewMerged(lr.p.N, lr.p.M, &lr.streams[l])
	}
	lr.active = make([]int, 0, width)
	lr.parked = make([]int, 0, width)
	lr.keys = make([]uint64, 0, width)
	if lr.period > 0 {
		lr.invPeriod = 1 / lr.period
	}
	if lr.periodWork > 0 {
		lr.invPeriodWork = 1 / lr.periodWork
	}
	// The wave constants — one period's additions — are fixed per batch;
	// computed exactly as engine.replayPeriods derives them so the
	// exact-mode cascade and tail add the same bits as the scalar walk.
	c1 := lr.phases.Ckpt1
	c2 := c1 + lr.phases.Ckpt2
	lr.wc.c1 = c1
	lr.wc.seg2 = c2 - c1
	lr.wc.seg3 = lr.period - c2
	lr.wc.wc1 = lr.exRate * c1
	lr.wc.wc2 = lr.exRate * lr.wc.seg2
	lr.wc.triple = lr.pr.IsTriple()
	lr.zig = true // production default; SetExact(true) restores inverse-CDF
	lr.SetSamplerBatch(defaultSamplerBatch(lr.tbase, lr.p.M))
	return lr, nil
}

// defaultSamplerBatch sizes the per-lane event prefetch: a quarter of
// the events a run is expected to consume (≈ Tbase / platform MTBF,
// ignoring waste), clamped to [8, 64]. The only wasted sampling is the
// final partial buffer, so short runs keep the overdraw small while
// long runs amortize the refill over 64 pipelined logs.
func defaultSamplerBatch(tbase, platformMTBF float64) int {
	expected := tbase / platformMTBF
	n := int(expected / 4)
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	return n
}

// Width returns the lane count.
func (lr *LaneRunner) Width() int { return lr.width }

// SetSamplerBatch resizes the per-lane failure-event prefetch buffer.
// It must be called between batches, not mid-run; n < 1 is clamped to
// 1 (per-event refill, the no-batching diagnostic layer of cmd/bench).
func (lr *LaneRunner) SetSamplerBatch(n int) {
	if n < 1 {
		n = 1
	}
	lr.bufLen = n
	lr.evTime = make([]float64, lr.width*n)
	lr.evNode = make([]int32, lr.width*n)
	lr.evPos = make([]int, lr.width)
	lr.us = make([]float64, n)
}

// SetZiggurat switches the inter-arrival sampler between the
// inverse-CDF path (bitwise identical to the scalar engine) and the
// log-free ziggurat (the production default). Ziggurat results are
// statistically — not bitwise — equivalent, and antithetic pairing
// weakens from exact quantile reflection to layer-and-position
// mirroring, which is why SetExact turns it off. It is exposed so
// cmd/bench can measure the layer in isolation.
func (lr *LaneRunner) SetZiggurat(on bool) { lr.zig = on }

// SetExact selects the replay mode. Exact mode replays fault-free
// periods with the scalar engine's per-period addition sequence (the
// wave pass) and the inverse-CDF sampler, making every lane Result
// bitwise identical to Runner.RunAntithetic — the oracle contract the
// antithetic/adaptive executor depends on for exact reflection.
// Production mode (the default) uses the closed-form fast-forward and
// the ziggurat sampler: statistically equivalent, still fully
// deterministic per seed, and ~2× faster on healthy platforms.
func (lr *LaneRunner) SetExact(on bool) {
	lr.exact = on
	lr.zig = !on
}

// RunBatch executes len(seeds) runs (at most Width) and writes their
// Results to out in seed order. anti selects the reflected-uniform
// failure sample per lane (nil = all plain). In exact mode out[l] is
// bitwise Runner.RunAntithetic(seeds[l], anti[l]); in production mode
// it is statistically equivalent and deterministic per seed.
func (lr *LaneRunner) RunBatch(seeds []uint64, anti []bool, out []Result) {
	n := len(seeds)
	if n > lr.width {
		panic("sim: RunBatch with more seeds than lanes")
	}
	for l := 0; l < n; l++ {
		lr.resetLane(l, seeds[l], anti != nil && anti[l])
	}
	active := lr.active[:0]
	for l := 0; l < n; l++ {
		active = append(active, l)
	}
	for len(active) > 0 {
		parked := lr.parked[:0]
		j := 0
		for _, l := range active {
			if lr.stepLane(l) {
				parked = append(parked, l)
				active[j] = l
				j++
			}
		}
		active = active[:j]
		lr.parked = parked
		if len(parked) > 0 {
			lr.waveReplay()
		}
	}
	lr.active = active
	copy(out, lr.res[:n])
}

// resetLane rewinds lane l for a fresh run, mirroring engine.reset:
// the reflection mode is applied before reseeding, so the whole
// failure sample of the run is plain or antithetic as one.
func (lr *LaneRunner) resetLane(l int, seed uint64, antithetic bool) {
	lr.t[l] = 0
	lr.work[l] = 0
	lr.snapshotWork[l] = 0
	lr.periodStartWork[l] = 0
	lr.md[l] = modeSchedule
	lr.offset[l] = 0
	lr.stallRemaining[l] = 0
	lr.reexecRemaining[l] = 0
	lr.overlapRemain[l] = 0
	lr.resumeOffset[l] = 0
	lr.comp[l] = lr.comp[l][:0]
	lr.riskUntil[l] = 0
	lr.everCommitted[l] = false
	lr.res[l] = Result{Period: lr.period}
	lr.streams[l].SetReflected(antithetic)
	lr.merged[l].Reseed(seed)
	lr.refill(l)
}

// refill replenishes lane l's prefetched failure events.
func (lr *LaneRunner) refill(l int) {
	base := l * lr.bufLen
	times := lr.evTime[base : base+lr.bufLen]
	nodes := lr.evNode[base : base+lr.bufLen]
	if lr.zig {
		lr.merged[l].FillEventsZiggurat(times, nodes)
	} else {
		lr.merged[l].FillEvents(times, nodes, lr.us)
	}
	lr.evPos[l] = 0
}

// stepLane is the per-lane port of engine.run's loop: it advances lane
// l through failures until the run finishes (completed, fatal, or
// horizon-saturated — reported false) or the lane parks for a replay
// wave (reported true).
func (lr *LaneRunner) stepLane(l int) bool {
	base := l * lr.bufLen
	for {
		evT := lr.evTime[base+lr.evPos[l]]
		target := lr.horizon
		hasEv := evT < lr.horizon
		if hasEv {
			target = evT
		}
		switch lr.advanceLane(l, target) {
		case laneCompleted:
			lr.res[l].Completed = true
			lr.finishLane(l)
			return false
		case laneParked:
			return true
		}
		if !hasEv {
			lr.finishLane(l) // horizon reached (saturated)
			return false
		}
		node := int(lr.evNode[base+lr.evPos[l]])
		lr.evPos[l]++
		if lr.evPos[l] == lr.bufLen {
			lr.refill(l)
		}
		if lr.applyFailureLane(l, node) {
			lr.finishLane(l) // fatal
			return false
		}
	}
}

// advanceLane is the lane port of engine.advanceUntil. Where the
// scalar engine calls replayPeriods, a production lane fast-forwards
// in closed form and an exact lane parks for the wave pass: the guard
// is the scalar condition plus replayPeriods' own first-iteration
// conditions (periodWork > 0, work below the cap, a full period of
// headroom), so at least one period always replays and an unguarded
// lane proceeds stepwise exactly where the scalar walk would.
// The hot per-lane state lives in locals for the whole walk — one load
// per field on entry, one store on exit — so the inner loop works on
// registers instead of bounds-checked slice cells. Every float
// operation is the scalar sequence unchanged; the state is flushed
// before the rare commitLane call (which reads the lane's clock) and at
// every return.
func (lr *LaneRunner) advanceLane(l int, target float64) int {
	var (
		t       = lr.t[l]
		work    = lr.work[l]
		offset  = lr.offset[l]
		md      = lr.md[l]
		stall   = lr.stallRemaining[l]
		reexec  = lr.reexecRemaining[l]
		overlap = lr.overlapRemain[l]
		triple  = lr.pr.IsTriple()
	)
	for t < target-workEps {
		dt := target - t
		switch md {
		case modeSchedule:
			if offset == 0 && lr.riskUntil[l] <= t && dt >= lr.period+workEps &&
				lr.periodWork > 0 && work < lr.workCap {
				if lr.exact {
					lr.target[l] = target
					lr.t[l], lr.work[l], lr.offset[l], lr.md[l] = t, work, offset, md
					lr.stallRemaining[l], lr.reexecRemaining[l], lr.overlapRemain[l] = stall, reexec, overlap
					return laneParked
				}
				// Production fast-forward: k whole fault-free periods
				// collapse to closed form. The reciprocal candidate is
				// corrected against the exact monotone bounds, so k is a
				// pure deterministic function of (t, work, target) — the
				// guard above is canReplay(0), so k ≥ 1 always holds.
				t0, w0 := t, work
				// The time bound leaves one full period of headroom
				// (canReplay needs target−tj ≥ period), so its candidate is
				// the quotient minus one; starting there, the corrections
				// usually terminate on their first probe each.
				k := int64(fmin((target-t0)*lr.invPeriod-1, (lr.workCap-w0)*lr.invPeriodWork))
				for k > 1 && !lr.canReplay(t0, w0, target, k-1) {
					k--
				}
				if k < 1 {
					k = 1
				}
				for lr.canReplay(t0, w0, target, k) {
					k++
				}
				t = t0 + float64(k)*lr.period
				work = w0 + float64(k)*lr.periodWork
				lr.snapshotWork[l] = w0 + float64(k-1)*lr.periodWork
				lr.periodStartWork[l] = work
				lr.comp[l] = lr.comp[l][:0]
				lr.everCommitted[l] = true
				continue
			}
			idx, rate, segEnd := lr.segment(offset)
			step := fmin(dt, segEnd-offset)
			// The completion clamp can only bind within the last period of
			// work (need < step requires tbase − work < rate·step ≤ one
			// period's work); the cheap pre-filter skips the division —
			// ~15 cycles on the critical path of every segment step —
			// everywhere else, with a full period of slack over rounding.
			if rate > 0 && work+rate*step >= lr.tbase-lr.period {
				if need := (lr.tbase - work) / rate; need < step {
					step = need
				}
			}
			t += step
			offset += step
			work += rate * step
			if work >= lr.tbase-workEps {
				lr.t[l], lr.work[l], lr.offset[l], lr.md[l] = t, work, offset, md
				lr.stallRemaining[l], lr.reexecRemaining[l], lr.overlapRemain[l] = stall, reexec, overlap
				return laneCompleted
			}
			if offset >= segEnd-workEps {
				// crossBoundaryLane, on the cached state.
				switch idx {
				case 1:
					if triple {
						lr.t[l] = t
						lr.commitLane(l)
					}
					offset = segEnd
				case 2:
					if !triple {
						lr.t[l] = t
						lr.commitLane(l)
					}
					offset = segEnd
				default:
					lr.periodStartWork[l] = work
					offset = 0
				}
			}
		case modeStall:
			step := fmin(dt, stall)
			t += step
			stall -= step
			if stall <= workEps {
				stall = 0
				md = modeReexec
			}
		case modeReexec:
			rate := 1.0
			limit := dt
			if overlap > 0 {
				rate = lr.exRate
				limit = fmin(limit, overlap)
			}
			if reexec <= workEps {
				// finishReexecLane, on the cached state.
				md = modeSchedule
				reexec = 0
				offset = lr.resumeOffset[l]
				if offset == 0 {
					lr.periodStartWork[l] = work
				}
				continue
			}
			step := limit
			if rate == 1 {
				// x/1.0 is exactly x: the common full-speed re-execution
				// path skips the division bitwise-identically.
				if reexec < step {
					step = reexec
				}
			} else if rate > 0 {
				if need := reexec / rate; need < step {
					step = need
				}
			}
			if rate > 0 && work+rate*step >= lr.tbase-lr.period {
				if need := (lr.tbase - work) / rate; need < step {
					step = need
				}
			}
			t += step
			work += rate * step
			reexec -= rate * step
			if overlap > 0 {
				overlap -= step
				if overlap < workEps {
					overlap = 0
				}
			}
			if work >= lr.tbase-workEps {
				lr.t[l], lr.work[l], lr.offset[l], lr.md[l] = t, work, offset, md
				lr.stallRemaining[l], lr.reexecRemaining[l], lr.overlapRemain[l] = stall, reexec, overlap
				return laneCompleted
			}
			if reexec <= workEps {
				md = modeSchedule
				reexec = 0
				offset = lr.resumeOffset[l]
				if offset == 0 {
					lr.periodStartWork[l] = work
				}
			}
		}
	}
	t = target
	lr.t[l], lr.work[l], lr.offset[l], lr.md[l] = t, work, offset, md
	lr.stallRemaining[l], lr.reexecRemaining[l], lr.overlapRemain[l] = stall, reexec, overlap
	return laneReached
}

// canReplay reports whether the closed-form fast-forward may replay
// period j+1: after j whole periods from (t0, w0), a full period of
// time headroom remains and the work cap is unreached. Both bounds are
// monotone in j (exact integer-to-float conversion, monotone multiply
// and add), so the count correction converges from either side.
func (lr *LaneRunner) canReplay(t0, w0, target float64, j int64) bool {
	tj := t0 + float64(j)*lr.period
	wj := w0 + float64(j)*lr.periodWork
	return target-tj >= lr.period+workEps && wj < lr.workCap
}

// waveReplay (exact mode only: production lanes fast-forward in closed
// form and never park) replays fault-free periods for every parked
// lane in two phases. The bulk phase computes, per lane, a conservative count of
// periods that are certain to replay (the time and work headroom in
// whole periods, minus a margin that dwarfs any floating-point drift)
// and burns them in a register-blocked loop: four lanes' clocks and
// work levels live in locals and advance together, so the four
// add chains — each as latency-bound as the scalar walk's — overlap
// in the CPU pipeline. The additions are the exact per-lane operand
// sequence of engine.replayPeriods (snapshot bookkeeping deferred:
// only the final snapshot/period-start values are observable, and the
// tail phase writes them), so the bits are unchanged. The tail phase
// then runs the scalar replay loop verbatim per lane — the margin
// guarantees it executes at least once, so the snapshot bookkeeping
// and the exact exit condition are the scalar walk's — and applies
// the replay epilogue (risk set cleared, everCommitted, offset 0)
// before the lane resumes stepwise.
func (lr *LaneRunner) waveReplay() {
	c1, seg2, seg3 := lr.wc.c1, lr.wc.seg2, lr.wc.seg3
	wc1, wc2 := lr.wc.wc1, lr.wc.wc2
	triple := lr.wc.triple

	// Bulk phase: certain whole periods, interleaved four lanes wide.
	// bulkMargin periods are left for the tail on both the time and the
	// work bound — far beyond the accumulated rounding drift of any
	// pass (capped at 2²⁴ periods, drift stays below a fraction of one
	// period), so the bulk count never overshoots the scalar loop's.
	const bulkMargin = 3
	const bulkCap = 1 << 24
	parked := lr.parked
	keys := lr.keys[:0]
	for _, l := range parked {
		kt := (lr.target[l] - lr.t[l]) * lr.invPeriod
		kw := (lr.workCap - lr.work[l]) * lr.invPeriodWork
		k := int64(fmin(kt, kw)) - bulkMargin
		if k > bulkCap {
			k = bulkCap
		}
		if k > 0 {
			keys = append(keys, uint64(k)<<16|uint64(l))
		}
	}
	// One descending sort on the packed (count, lane) keys groups lanes
	// of similar depth, so a group wastes few dummy iterations on its
	// shallower members.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] > keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	lr.waveBulkGo(keys)

	// Tail phase: the scalar replay loop, verbatim, per lane.
	limit := lr.period + workEps
	for _, l := range parked {
		t, work := lr.t[l], lr.work[l]
		target := lr.target[l]
		snap := lr.snapshotWork[l]
		for target-t >= limit && work < lr.workCap {
			w0 := work
			if triple {
				work += wc1
			}
			t += c1
			t += seg2
			work += wc2
			snap = w0
			t += seg3
			work += seg3
		}
		lr.t[l], lr.work[l] = t, work
		lr.snapshotWork[l] = snap
		lr.periodStartWork[l] = work
		lr.comp[l] = lr.comp[l][:0]
		lr.everCommitted[l] = true
		lr.offset[l] = 0
	}
}

// waveBulkGo is the exact-mode bulk cascade: groups of four lanes
// advance in manually interleaved locals, so the four add chains
// overlap in the pipeline; a lane whose count is exhausted writes back
// at its bound while its slot keeps running as a discarded dummy.
func (lr *LaneRunner) waveBulkGo(keys []uint64) {
	c1, seg2, seg3 := lr.wc.c1, lr.wc.seg2, lr.wc.seg3
	wc1, wc2 := lr.wc.wc1, lr.wc.wc2
	triple := lr.wc.triple
	for lo := 0; lo < len(keys); lo += 4 {
		g := keys[lo:min(lo+4, len(keys))]
		lA := int(g[0] & 0xFFFF)
		lB, lC, lD := -1, -1, -1
		tA, wA := lr.t[lA], lr.work[lA]
		tB, wB := tA, wA
		tC, wC := tA, wA
		tD, wD := tA, wA
		kA := int64(g[0] >> 16)
		kB, kC, kD := int64(0), int64(0), int64(0)
		if len(g) > 1 {
			lB = int(g[1] & 0xFFFF)
			tB, wB = lr.t[lB], lr.work[lB]
			kB = int64(g[1] >> 16)
		}
		if len(g) > 2 {
			lC = int(g[2] & 0xFFFF)
			tC, wC = lr.t[lC], lr.work[lC]
			kC = int64(g[2] >> 16)
		}
		if len(g) > 3 {
			lD = int(g[3] & 0xFFFF)
			tD, wD = lr.t[lD], lr.work[lD]
			kD = int64(g[3] >> 16)
		}
		for i := int64(0); i < kA; i++ {
			if i == kD && lD >= 0 {
				lr.t[lD], lr.work[lD] = tD, wD
				lD = -1
			}
			if i == kC && lC >= 0 {
				lr.t[lC], lr.work[lC] = tC, wC
				lC = -1
			}
			if i == kB && lB >= 0 {
				lr.t[lB], lr.work[lB] = tB, wB
				lB = -1
			}
			if triple {
				wA += wc1
				wB += wc1
				wC += wc1
				wD += wc1
			}
			tA += c1
			tB += c1
			tC += c1
			tD += c1
			tA += seg2
			tB += seg2
			tC += seg2
			tD += seg2
			wA += wc2
			wB += wc2
			wC += wc2
			wD += wc2
			tA += seg3
			tB += seg3
			tC += seg3
			tD += seg3
			wA += seg3
			wB += seg3
			wC += seg3
			wD += seg3
		}
		lr.t[lA], lr.work[lA] = tA, wA
		if lD >= 0 {
			lr.t[lD], lr.work[lD] = tD, wD
		}
		if lC >= 0 {
			lr.t[lC], lr.work[lC] = tC, wC
		}
		if lB >= 0 {
			lr.t[lB], lr.work[lB] = tB, wB
		}
	}
}

// commitLane is the lane port of engine.commit (lanes never carry a
// commit observer); advanceLane flushes the lane clock before calling.
func (lr *LaneRunner) commitLane(l int) {
	lr.snapshotWork[l] = lr.periodStartWork[l]
	lr.everCommitted[l] = true
	lr.comp[l] = lr.comp[l][:0]
	if lr.riskUntil[l] > lr.t[l] {
		lr.res[l].RiskTime -= lr.riskUntil[l] - lr.t[l]
		lr.riskUntil[l] = lr.t[l]
	}
}

// applyFailureLane is the lane port of engine.applyFailure. It returns
// true when the failure is fatal.
func (lr *LaneRunner) applyFailureLane(l, node int) bool {
	res := &lr.res[l]
	res.Failures++
	t := lr.t[l]

	// --- Risk bookkeeping -------------------------------------------------
	gStart := (node / lr.group) * lr.group
	others := 0
	nodeAt := -1
	comp := lr.comp[l]
	for i := 0; i < len(comp); {
		en := comp[i]
		if en.end <= t {
			comp[i] = comp[len(comp)-1]
			comp = comp[:len(comp)-1]
			continue
		}
		if en.node == node {
			nodeAt = i
		} else if en.node >= gStart && en.node < gStart+lr.group {
			others++
		}
		i++
	}
	if others > 0 {
		if others >= lr.group-1 && lr.everCommitted[l] {
			lr.comp[l] = comp
			res.Fatal = true
			res.FatalTime = t
			return true
		}
		res.FailuresInRisk++
	}
	if nodeAt >= 0 {
		comp[nodeAt].end = t + lr.risk
	} else {
		comp = append(comp, riskEntry{node: node, end: t + lr.risk})
	}
	lr.comp[l] = comp

	start := fmax(t, lr.riskUntil[l])
	if end := t + lr.risk; end > start {
		res.RiskTime += end - start
		lr.riskUntil[l] = end
	}
	res.ImportanceFatalProb += lr.impFatal

	// --- Rollback ----------------------------------------------------------
	if lr.md[l] == modeSchedule {
		switch lr.phases.PhaseOf(lr.offset[l]) {
		case 1:
			lr.resumeOffset[l] = 0
		case 2:
			if lr.pr.IsTriple() {
				lr.resumeOffset[l] = lr.phases.Ckpt1
			} else {
				lr.resumeOffset[l] = 0
			}
		default:
			lr.resumeOffset[l] = lr.offset[l]
		}
	}

	lr.work[l] = lr.snapshotWork[l]
	reexec := lr.periodStartWork[l] + lr.scheduleWork(lr.resumeOffset[l]) - lr.snapshotWork[l]
	if reexec < 0 {
		reexec = 0
	}
	lr.reexecRemaining[l] = reexec

	lr.stallRemaining[l] = lr.p.D + lr.p.R
	if lr.pr.BlocksOnFailure() {
		lr.stallRemaining[l] += float64(lr.images) * lr.p.R
		lr.overlapRemain[l] = 0
	} else {
		lr.overlapRemain[l] = float64(lr.images) * lr.theta
	}
	lr.md[l] = modeStall
	return false
}

// finishLane is the lane port of engine.run's epilogue.
func (lr *LaneRunner) finishLane(l int) {
	res := &lr.res[l]
	res.Makespan = lr.t[l]
	res.WorkDone = math.Min(lr.work[l], lr.tbase)
	if res.Makespan > 0 {
		res.Waste = 1 - res.WorkDone/res.Makespan
	}
	res.LostTime = res.Makespan - lr.faultFreeMakespan(res.WorkDone)
}
