package sim

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
)

// perfConfig is the hot-path configuration the allocation guards pin:
// the exponential fast path on a hostile-but-feasible platform, the
// same shape BenchmarkEngineThroughput measures.
func perfConfig() Config {
	return Config{
		Protocol: core.DoubleNBL,
		Params:   baseParams().WithMTBF(1800),
		Phi:      1,
		Tbase:    2e4,
		Seed:     1,
	}
}

// TestRunSteadyStateZeroAllocs is the headline allocation guard: after
// the first run has warmed the Runner's reusable state, simulating on
// the exponential path allocates nothing — no engine, no risk map, no
// rng stream, no event boxing.
func TestRunSteadyStateZeroAllocs(t *testing.T) {
	b, err := Compile(perfConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewRunner()
	seed := uint64(0)
	avg := testing.AllocsPerRun(10, func() {
		seed++
		r.Run(seed)
	})
	if avg != 0 {
		t.Fatalf("Runner.Run allocates %v per run in steady state, want 0", avg)
	}
}

// TestRenewalRunSteadyStateZeroAllocs extends the guard to the
// non-exponential renewal path: the generic event queue stores node
// indices by value and the per-node streams reseed in place, so even
// Weibull batches run allocation-free after warm-up.
func TestRenewalRunSteadyStateZeroAllocs(t *testing.T) {
	cfg := perfConfig()
	cfg.Params = cfg.Params.WithNodes(64)
	cfg.Tbase = 5e3
	cfg.Law = failure.Weibull{Shape: 0.7, MTBF: failure.IndividualMTBF(cfg.Params.M, cfg.Params.N)}
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewRunner()
	seed := uint64(0)
	avg := testing.AllocsPerRun(10, func() {
		seed++
		r.Run(seed)
	})
	if avg != 0 {
		t.Fatalf("renewal Runner.Run allocates %v per run in steady state, want 0", avg)
	}
}

// TestRunnerMatchesRun pins the reset contract: a Runner reused across
// seeds produces exactly the Result a fresh sim.Run produces for each
// seed, in any order.
func TestRunnerMatchesRun(t *testing.T) {
	cfg := perfConfig()
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewRunner()
	for _, seed := range []uint64{3, 1, 7, 1, 0} {
		cfg.Seed = seed
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Run(seed); got != want {
			t.Fatalf("seed %d: Runner.Run %+v != Run %+v", seed, got, want)
		}
	}
}

// TestAggregateMergeMatchesSequential is the merge-equivalence guard:
// partial aggregates built chunk by chunk and merged in chunk order
// match the single-threaded aggregation bit for bit.
func TestAggregateMergeMatchesSequential(t *testing.T) {
	cfg := perfConfig()
	cfg.Tbase = 5e3
	const runs = 600 // spans 3 chunks of 256
	b, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Single-threaded reference through the public batch API.
	want, err := b.RunManySeeded(cfg.Seed, runs, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-built partials over the same fixed chunk boundaries and lane
	// groups (the production lane kernel, like RunManySeeded uses),
	// merged in order.
	lr, err := b.NewLaneRunner(DefaultLaneWidth)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, DefaultLaneWidth)
	out := make([]Result, DefaultLaneWidth)
	var got Aggregate
	for lo := 0; lo < runs; lo += aggChunkSize {
		hi := lo + aggChunkSize
		if hi > runs {
			hi = runs
		}
		var part Aggregate
		for gLo := lo; gLo < hi; gLo += DefaultLaneWidth {
			gHi := gLo + DefaultLaneWidth
			if gHi > hi {
				gHi = hi
			}
			for i := gLo; i < gHi; i++ {
				seeds[i-gLo] = cfg.Seed + uint64(i)
			}
			lr.RunBatch(seeds[:gHi-gLo], nil, out[:gHi-gLo])
			for i := 0; i < gHi-gLo; i++ {
				part.Add(out[i])
			}
		}
		got.Merge(part)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunk-merged aggregate differs from single-threaded:\n%+v\n%+v", got, want)
	}
}

// TestRunManyWorkerCountBitwise pins the streaming-aggregation
// invariant: the Aggregate is bitwise identical for every worker
// count, because chunk boundaries depend only on the run count and the
// partials merge in chunk order.
func TestRunManyWorkerCountBitwise(t *testing.T) {
	cfg := perfConfig()
	cfg.Tbase = 5e3
	const runs = 600
	ref, err := RunManyWorkers(cfg, runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 8} {
		agg, err := RunManyWorkers(cfg, runs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(agg, ref) {
			t.Fatalf("aggregate differs between 1 and %d workers:\n%+v\n%+v", workers, ref, agg)
		}
	}
}

// TestRunChunksAbortsOnFirstError pins the batch cancellation fix: a
// failing chunk stops the dispatch before the surviving workers chew
// through the rest of the batch.
func TestRunChunksAbortsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	const n, workers = 1000, 4
	err := runChunks(n, workers, func(int) struct{} { return struct{}{} },
		func(struct{}, int) error {
			executed.Add(1)
			return boom
		})
	if err != boom {
		t.Fatalf("err = %v, want the chunk error", err)
	}
	// Every worker stops at its first failing chunk: at most one
	// execution per worker, never the whole batch.
	if got := executed.Load(); got > workers {
		t.Fatalf("%d chunks executed after the first error, want <= %d", got, workers)
	}
}

// TestRunChunksRunsEveryChunk checks the healthy path: each chunk runs
// exactly once.
func TestRunChunksRunsEveryChunk(t *testing.T) {
	const n = 100
	var seen [n]atomic.Int64
	err := runChunks(n, 7, func(int) struct{} { return struct{}{} },
		func(_ struct{}, chunk int) error {
			seen[chunk].Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("chunk %d executed %d times, want 1", i, got)
		}
	}
}

// TestCommitClosesRiskWindows is the regression test for the risk-set
// clearing at commit (formerly the map-clearing idiom, now the slice
// reset): committed snapshot sets close every open restoration window,
// for both buddy-group sizes.
func TestCommitClosesRiskWindows(t *testing.T) {
	for _, pr := range []core.Protocol{core.DoubleNBL, core.TripleNBL} {
		e, err := newEngine(Config{
			Protocol: pr,
			Params:   baseParams(),
			Phi:      1,
			Period:   100,
			Tbase:    1e4,
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Open a window, then commit: the set must be empty and a
		// buddy failure right after must be neither fatal nor in-risk.
		e.t = 10
		if e.applyFailure(0) {
			t.Fatalf("%s: first failure cannot be fatal", pr)
		}
		if len(e.comp) != 1 || e.riskUntil <= e.t {
			t.Fatalf("%s: window not opened: comp=%v riskUntil=%v", pr, e.comp, e.riskUntil)
		}
		e.t = 12
		e.commit()
		if len(e.comp) != 0 {
			t.Fatalf("%s: commit left %d open windows", pr, len(e.comp))
		}
		if e.riskUntil > e.t {
			t.Fatalf("%s: commit left riskUntil=%v past t=%v", pr, e.riskUntil, e.t)
		}
		e.t = 14
		if e.applyFailure(1) {
			t.Fatalf("%s: buddy failure after commit must not be fatal", pr)
		}
		if e.res.FailuresInRisk != 0 {
			t.Fatalf("%s: buddy failure after commit counted as in-risk", pr)
		}
	}
}

// TestTripleCommitInsideWindowEndToEnd drives the commit-closes-window
// semantics through the public API for the group-of-3 protocol: at
// φ = 0, a first-period failure re-executes nothing, so the next
// commit (t ≈ 58) lands inside the 92 s risk window it opened. A buddy
// failure after the commit must not count as in-risk, and a third
// failure then only sees one open window — survivable. If commits
// failed to close windows, the same trace would be fatal.
func TestTripleCommitInsideWindowEndToEnd(t *testing.T) {
	cfg := Config{
		Protocol: core.TripleNBL,
		Params:   baseParams(), // D=0, R=4, θ(0)=44: risk window D+R+2θ = 92
		Phi:      0,
		Period:   100,
		Tbase:    3 * 98,
		Source: failure.NewReplay([]failure.Event{
			{Time: 10, Node: 0}, // phase 1 of period 1: reexec = 0, commit at ~58
			{Time: 70, Node: 1}, // after the commit: node 0's window is closed
			{Time: 80, Node: 2}, // only node 1's window open: survivable
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fatal {
		t.Fatal("commit did not close the risk window: three-failure chain reported fatal")
	}
	if res.Failures != 3 {
		t.Fatalf("failures = %d, want 3", res.Failures)
	}
	// Only the third failure lands inside an open (node 1) window.
	if res.FailuresInRisk != 1 {
		t.Fatalf("FailuresInRisk = %d, want 1 (node 0's window must have closed at the commit)", res.FailuresInRisk)
	}
}
