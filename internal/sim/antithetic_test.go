package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// antiTestConfig is a failure-rich configuration: a hostile MTBF so
// the antithetic machinery has variance to bite on.
func antiTestConfig() Config {
	return Config{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithMTBF(900),
		Phi:      1,
		Tbase:    2e4,
	}
}

// TestRunAntitheticFalseMatchesRun pins the compatibility contract:
// the plain half of a pair is bitwise the historical run, even after
// the runner executed reflected runs in between.
func TestRunAntitheticFalseMatchesRun(t *testing.T) {
	b, err := Compile(antiTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewRunner()
	for seed := uint64(0); seed < 8; seed++ {
		want := r.Run(seed)
		r.RunAntithetic(seed, true) // perturb the runner state
		if got := r.RunAntithetic(seed, false); got != want {
			t.Fatalf("seed %d: RunAntithetic(false) = %+v, want Run's %+v", seed, got, want)
		}
		if got := r.Run(seed); got != want {
			t.Fatalf("seed %d: Run after an antithetic run = %+v, want %+v", seed, got, want)
		}
	}
}

// TestRunAntitheticDiffersAndIsDeterministic checks the reflected half
// is a genuinely different trajectory, reproducible for equal seeds.
func TestRunAntitheticDiffersAndIsDeterministic(t *testing.T) {
	b, err := Compile(antiTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := b.NewRunner(), b.NewRunner()
	differs := false
	for seed := uint64(0); seed < 8; seed++ {
		anti := r1.RunAntithetic(seed, true)
		if again := r2.RunAntithetic(seed, true); anti != again {
			t.Fatalf("seed %d: antithetic run is not deterministic", seed)
		}
		if anti != r1.Run(seed) {
			differs = true
		}
	}
	if !differs {
		t.Error("antithetic runs never differed from plain runs on a failure-rich config")
	}
}

// TestAntitheticPairsAnticorrelated checks the variance-reduction
// premise: across many pairs, the plain and reflected waste of a
// shared seed are negatively correlated, so the pair-mean variance is
// below the iid-pair variance.
func TestAntitheticPairsAnticorrelated(t *testing.T) {
	b, err := Compile(antiTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewRunner()
	const pairs = 200
	var sx, sy, sxx, syy, sxy float64
	for seed := uint64(0); seed < pairs; seed++ {
		x := r.Run(seed).Waste
		y := r.RunAntithetic(seed, true).Waste
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	n := float64(pairs)
	cov := sxy/n - sx/n*sy/n
	varX, varY := sxx/n-sx/n*sx/n, syy/n-sy/n*sy/n
	if varX <= 0 || varY <= 0 {
		t.Fatalf("degenerate waste variance (%v, %v)", varX, varY)
	}
	if cov >= 0 {
		t.Errorf("antithetic waste covariance %v, want negative", cov)
	}
}

// TestAggregateAntitheticWorkerAndRoundIndependence pins the two
// determinism properties the adaptive executor builds on: the chunked
// antithetic aggregation is bitwise independent of the worker count,
// and executing an index range in two rounds merges to exactly the
// one-shot aggregate of the full range.
func TestAggregateAntitheticWorkerAndRoundIndependence(t *testing.T) {
	b, err := Compile(antiTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	newRunner := func(int) func(uint64, bool) (Result, error) {
		r := b.NewRunner()
		return func(seed uint64, anti bool) (Result, error) { return r.RunAntithetic(seed, anti), nil }
	}
	const base, runs = 42, 48
	serial, err := AggregateAntithetic(base, 0, runs, 1, newRunner, nil)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := AggregateAntithetic(base, 0, runs, 8, newRunner, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("antithetic aggregate differs between 1 and 8 workers:\n%+v\n%+v", serial, wide)
	}
	var resumed Aggregate
	firstHalf, err := AggregateAntithetic(base, 0, 16, 4, newRunner, nil)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := AggregateAntithetic(base, 16, runs-16, 4, newRunner, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Merge(firstHalf)
	resumed.Merge(rest)
	oneShotRounds, err := AggregateAntithetic(base, 0, 16, 4, newRunner, nil)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := AggregateAntithetic(base, 16, runs-16, 4, newRunner, nil)
	if err != nil {
		t.Fatal(err)
	}
	var again Aggregate
	again.Merge(oneShotRounds)
	again.Merge(tail)
	if !reflect.DeepEqual(resumed, again) {
		t.Errorf("re-executed rounds are not bitwise reproducible")
	}
}

// TestAggregateAntitheticObserveOrder checks observe sees every run
// exactly once, in run-index order, whatever the worker count.
func TestAggregateAntitheticObserveOrder(t *testing.T) {
	b, err := Compile(antiTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	newRunner := func(int) func(uint64, bool) (Result, error) {
		r := b.NewRunner()
		return func(seed uint64, anti bool) (Result, error) { return r.RunAntithetic(seed, anti), nil }
	}
	collect := func(workers int) []Result {
		var seen []Result
		if _, err := AggregateAntithetic(7, 4, 20, workers, newRunner, func(res Result) {
			seen = append(seen, res)
		}); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	serial := collect(1)
	wide := collect(8)
	if len(serial) != 20 {
		t.Fatalf("observe saw %d results, want 20", len(serial))
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("observe order depends on the worker count")
	}
	// Spot-check the pairing: observed runs 0 and 1 of the range (global
	// indices 4 and 5) share seed 7+2, one plain and one reflected.
	r := b.NewRunner()
	if want := r.Run(7 + 2); serial[0] != want {
		t.Errorf("first observed run is not the plain half of pair 2")
	}
	if want := r.RunAntithetic(7+2, true); serial[1] != want {
		t.Errorf("second observed run is not the reflected half of pair 2")
	}
}

// TestRunDetailedMemoReuse pins the one-shot memo: repeated
// RunDetailed calls of one configuration return exactly what a fresh
// compile returns (the memoized runner rewinds completely), and the
// steady state stops paying the ~1700-allocation substrate rebuild.
func TestRunDetailedMemoReuse(t *testing.T) {
	cfg := DetailedConfig{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithNodes(96).WithMTBF(600),
		Phi:      1,
		Tbase:    5e3,
	}
	for seed := uint64(0); seed < 4; seed++ {
		cfg.Seed = seed
		got, err := RunDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := CompileDetailed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.NewRunner().Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: memoized RunDetailed %+v != fresh compile %+v", seed, got, want)
		}
	}
	cfg.Seed = 1
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := RunDetailed(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Errorf("memoized RunDetailed allocates %.0f/op, want the compile-free steady state", allocs)
	}
	// Spelling out the substrate defaults is the same physical config:
	// it must hit the same memo entry (no recompilation allocations),
	// the promise DetailedConfig.Normalize documents.
	spelled := cfg
	spelled.Spares = cfg.Params.N/10 + 1
	spelled.ImageBytes = 512 << 20
	allocs = testing.AllocsPerRun(20, func() {
		if _, err := RunDetailed(spelled); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Errorf("explicit-default RunDetailed allocates %.0f/op; it should share the omitted-default memo entry", allocs)
	}
}

// TestRunDetailedMemoConcurrent hammers the one-shot memo from many
// goroutines across two configurations: per-entry locking must keep
// the results identical to the sequential answers (no shared-runner
// races; the race detector patrols this test).
func TestRunDetailedMemoConcurrent(t *testing.T) {
	cfgA := DetailedConfig{
		Protocol: core.DoubleNBL,
		Params:   scenario.Base().Params.WithNodes(96).WithMTBF(900),
		Phi:      1,
		Tbase:    2e3,
	}
	cfgB := cfgA
	cfgB.Protocol = core.TripleNBL
	want := map[uint64][2]DetailedResult{}
	for seed := uint64(0); seed < 4; seed++ {
		cfgA.Seed, cfgB.Seed = seed, seed
		a, err := RunDetailed(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunDetailed(cfgB)
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = [2]DetailedResult{a, b}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				seed := uint64((g + i) % 4)
				cfg := cfgA
				wantIdx := 0
				if (g+i)%2 == 1 {
					cfg = cfgB
					wantIdx = 1
				}
				cfg.Seed = seed
				got, err := RunDetailed(cfg)
				if err != nil {
					errs <- err.Error()
					return
				}
				if got != want[seed][wantIdx] {
					errs <- "concurrent memoized result diverged from sequential"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
