package sim

import (
	"sync"

	"repro/internal/core"
	"repro/internal/failure"
)

// compiled is the per-batch precomputation: everything derived from a
// Config that is identical across all seeds of a Monte-Carlo batch
// (protocol traits, schedule phases, optimal period, risk window,
// importance coefficients). Compiling once and resetting a reusable
// engine per seed is what makes the hot path allocation-free.
type compiled struct {
	pr core.Protocol
	p  core.Params

	phi     float64
	theta   float64
	phases  core.Phases
	period  float64
	exRate  float64 // work rate during an overlapped exchange: 1 − φ/θ
	images  int     // buddy images to re-receive after a failure
	risk    float64 // risk-window length
	group   int     // buddy group size
	tbase   float64 // failure-free application duration
	horizon float64 // absolute simulation-time bound
	// periodWork is the work accomplished by one full fault-free
	// period (= scheduleWork(period)); it lets advanceUntil fast-forward
	// whole risk-idle periods in O(1) instead of walking segments.
	periodWork float64
	// impFatal is the first-order fatal-chain probability charged per
	// observed failure (λ·risk for pairs, 2(λ·risk)² for triples).
	impFatal float64
	law      failure.Law
	// corr carries the correlation settings (failure domains and/or
	// MTBF groups); nil or empty means the classic i.i.d. model.
	corr *failure.Correlation
	// nodeLaws is the per-node law slice prebuilt from corr.Groups
	// (nil without groups); it forces the renewal source.
	nodeLaws []failure.Law
}

// iid reports whether the batch keeps the i.i.d. exponential platform
// process — the precondition of the lane kernel's closed-form
// fast-forward and batched sampling. Any law override or correlation
// setting routes the batch through the scalar engine.
func (c *compiled) iid() bool { return c.law == nil && c.corr.IID() }

// compileConfig validates cfg and computes the batch precomputation.
func compileConfig(cfg Config) (compiled, error) {
	if err := cfg.Validate(); err != nil {
		return compiled{}, err
	}
	pr, p := cfg.Protocol, cfg.Params
	phi := core.EffectivePhi(pr, p, cfg.Phi)
	period := cfg.Period
	if period == 0 {
		var err error
		period, err = core.OptimalPeriod(pr, p, phi)
		if err != nil && err != core.ErrMTBFTooSmall {
			return compiled{}, err
		}
	}
	phases, err := core.PeriodPhases(pr, p, phi, period)
	if err != nil {
		return compiled{}, err
	}
	theta := p.Theta(phi)
	images := 1
	if pr.IsTriple() {
		images = 2
	}
	horizon := cfg.MaxSimTime
	if horizon == 0 {
		horizon = 1000 * cfg.Tbase
	}
	c := compiled{
		pr:      pr,
		p:       p,
		phi:     phi,
		theta:   theta,
		phases:  phases,
		period:  period,
		exRate:  (theta - phi) / theta,
		images:  images,
		risk:    core.RiskWindow(pr, p, phi),
		group:   pr.GroupSize(),
		tbase:   cfg.Tbase,
		horizon: horizon,
		law:     cfg.Law,
	}
	if !cfg.Correlation.IID() {
		if err := cfg.Correlation.Validate(p.N); err != nil {
			return compiled{}, err
		}
		c.corr = cfg.Correlation
		if len(cfg.Correlation.Groups) > 0 {
			laws, err := failure.GroupLaws(p.N, p.M, cfg.Correlation.Groups, cfg.Law)
			if err != nil {
				return compiled{}, err
			}
			c.nodeLaws = laws
		}
	}
	c.periodWork = c.scheduleWork(period)
	lr := p.Lambda() * c.risk
	if c.group == 2 {
		c.impFatal = lr
	} else {
		c.impFatal = 2 * lr * lr
	}
	return c, nil
}

// Batch is a compiled simulation configuration, immutable and safe for
// concurrent use. It amortizes per-batch precomputation (protocol
// phases, optimal period, risk window) across every seed of a
// Monte-Carlo batch: a 10⁵-run sweep point compiles once instead of
// 10⁵ times.
type Batch struct {
	cfg Config
	c   compiled
	// lanes pools default-width LaneRunners across aggregateLanes
	// calls: the sweep engine reuses cached compiled batches over many
	// small points, and a lane runner's SoA construction would
	// otherwise dominate such a point's allocations.
	lanes sync.Pool
}

// laneRunner returns a pooled DefaultLaneWidth runner (aggregateLanes
// returns it via lanes.Put when the batch completes). Every mutable
// bit of a LaneRunner is rewound per run and its mode flags are reset
// by the caller, so reuse cannot leak state between batches.
func (b *Batch) laneRunner() (*LaneRunner, error) {
	if lr, ok := b.lanes.Get().(*LaneRunner); ok {
		return lr, nil
	}
	return b.NewLaneRunner(DefaultLaneWidth)
}

// Compile validates cfg and precomputes the batch state shared by all
// seeds. cfg.Source is ignored (sources are single-run; use Run).
func Compile(cfg Config) (*Batch, error) {
	cfg.Source = nil
	c, err := compileConfig(cfg)
	if err != nil {
		return nil, err
	}
	return &Batch{cfg: cfg, c: c}, nil
}

// Period returns the checkpointing period the batch simulates (the
// model-optimal period when the Config left it 0).
func (b *Batch) Period() float64 { return b.c.period }

// PeriodWork returns the work accomplished by one full fault-free
// period of the schedule. The multilevel composition uses it to convert
// a global-checkpoint interval of k periods into preserved work.
func (b *Batch) PeriodWork() float64 { return b.c.periodWork }

// FaultFreeMakespan returns the time the fault-free schedule needs to
// produce the given amount of work, the baseline of the LostTime
// metric.
func (b *Batch) FaultFreeMakespan(work float64) float64 {
	return b.c.faultFreeMakespan(work)
}

// Config returns the batch configuration with the period resolved.
func (b *Batch) Config() Config {
	cfg := b.cfg
	cfg.Period = b.c.period
	return cfg
}

// NewRunner returns a reusable single-goroutine simulation engine for
// the batch. A Runner amortizes every per-run allocation: after its
// first run it executes in zero allocations on the exponential path.
// Runners are not safe for concurrent use; create one per worker.
func (b *Batch) NewRunner() *Runner {
	r := &Runner{}
	r.e.compiled = b.c
	r.e.comp = make([]riskEntry, 0, 16)
	r.e.initSource(nil)
	return r
}

// Runner executes simulations of one Batch, reusing all engine state
// between runs.
type Runner struct {
	e engine
}

// Run simulates one execution with the given seed. Equal seeds give
// identical Results, and Runner.Run(seed) is identical to sim.Run with
// the batch Config and that seed.
func (r *Runner) Run(seed uint64) Result {
	return r.e.runSeed(seed, false)
}

// RunAntithetic simulates one execution with the given seed, drawing
// the reflected-uniform failure sample when antithetic is true: the
// same raw RNG state as Run(seed) (same victims, same draw counts),
// with every inter-arrival time taken from the mirrored quantile. The
// pair (Run(seed), RunAntithetic(seed, true)) is the variance
// reduction unit of the adaptive executor; RunAntithetic(seed, false)
// is bitwise identical to Run(seed).
func (r *Runner) RunAntithetic(seed uint64, antithetic bool) Result {
	return r.e.runSeed(seed, antithetic)
}

// RunWork simulates one execution with the given seed and a work
// target overriding the batch's Tbase; the simulation horizon stays the
// batch's. The multilevel composition uses it to resume an execution
// after a global rollback (the remaining work shrinks, the compiled
// schedule does not), without recompiling or allocating per attempt.
// RunWork(seed, batch Tbase) is identical to Run(seed).
func (r *Runner) RunWork(seed uint64, tbase float64) Result {
	return r.RunWorkAntithetic(seed, tbase, false)
}

// RunWorkAntithetic is RunWork with the antithetic failure sample,
// letting the multilevel composition's resumed attempts participate in
// antithetic pairing: a reflected two-level run reflects every one of
// its inner attempts.
func (r *Runner) RunWorkAntithetic(seed uint64, tbase float64, antithetic bool) Result {
	saved := r.e.tbase
	r.e.tbase = tbase
	res := r.e.runSeed(seed, antithetic)
	r.e.tbase = saved
	return res
}
