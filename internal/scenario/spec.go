package scenario

import "repro/internal/core"

// Spec is the JSON description of a platform accepted by the service
// API (DESIGN.md, "API request lifecycle"). It either names a Table I
// scenario, optionally overriding individual parameters, or spells out
// a fully custom platform when Name is empty.
//
// A zero Spec resolves to the Base scenario, so curl examples stay
// short; every override is validated through core.Params.Validate
// before it reaches the model.
type Spec struct {
	// Name selects the starting scenario ("Base" or "Exa"). Empty
	// defaults to Base.
	Name string `json:"name,omitempty"`
	// D overrides the downtime, in seconds.
	D *float64 `json:"d,omitempty"`
	// Delta overrides the blocking local checkpoint time δ, in seconds.
	Delta *float64 `json:"delta,omitempty"`
	// R overrides the blocking buddy-transfer time, in seconds.
	R *float64 `json:"r,omitempty"`
	// Alpha overrides the overlap speedup factor α.
	Alpha *float64 `json:"alpha,omitempty"`
	// N overrides the platform size in nodes.
	N *int `json:"n,omitempty"`
	// MTBF overrides the platform MTBF M, in seconds.
	MTBF *float64 `json:"mtbf,omitempty"`
}

// Resolve returns the platform parameters the spec describes: the named
// scenario's Table I row with the overrides applied, validated through
// core.Params.Validate.
func (s Spec) Resolve() (core.Params, error) {
	name := s.Name
	if name == "" {
		name = "Base"
	}
	sc, err := ByName(name)
	if err != nil {
		return core.Params{}, err
	}
	p := sc.Params
	if s.D != nil {
		p.D = *s.D
	}
	if s.Delta != nil {
		p.Delta = *s.Delta
	}
	if s.R != nil {
		p.R = *s.R
	}
	if s.Alpha != nil {
		p.Alpha = *s.Alpha
	}
	if s.N != nil {
		p.N = *s.N
	}
	if s.MTBF != nil {
		p.M = *s.MTBF
	}
	if err := p.Validate(); err != nil {
		return core.Params{}, err
	}
	return p, nil
}
