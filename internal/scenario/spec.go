package scenario

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/failure"
)

// Spec is the JSON description of a platform accepted by the service
// API (DESIGN.md, "API request lifecycle"). It either names a Table I
// scenario, optionally overriding individual parameters, or spells out
// a fully custom platform when Name is empty.
//
// A zero Spec resolves to the Base scenario, so curl examples stay
// short; every override is validated through core.Params.Validate
// before it reaches the model.
//
// Beyond the platform parameters, a Spec selects the evaluation
// backend and failure law (DESIGN.md, "Evaluation backends"): Backend
// names the engine, Law/Shape the inter-arrival distribution,
// ImageBytes/Spares the detailed engine's substrate shape, and Global
// the multilevel engine's stable-storage level. The zero value of each
// keeps the paper's defaults: the fast coordinated-timeline engine
// under Exponential failures.
type Spec struct {
	// Name selects the starting scenario ("Base" or "Exa"). Empty
	// defaults to Base.
	Name string `json:"name,omitempty"`
	// D overrides the downtime, in seconds.
	D *float64 `json:"d,omitempty"`
	// Delta overrides the blocking local checkpoint time δ, in seconds.
	Delta *float64 `json:"delta,omitempty"`
	// R overrides the blocking buddy-transfer time, in seconds.
	R *float64 `json:"r,omitempty"`
	// Alpha overrides the overlap speedup factor α.
	Alpha *float64 `json:"alpha,omitempty"`
	// N overrides the platform size in nodes.
	N *int `json:"n,omitempty"`
	// MTBF overrides the platform MTBF M, in seconds.
	MTBF *float64 `json:"mtbf,omitempty"`

	// Backend selects the evaluation engine: "fast" (default),
	// "detailed" or "multilevel".
	Backend string `json:"backend,omitempty"`
	// Law selects the failure law: "exponential" (default), "weibull"
	// or "lognormal". The non-exponential laws need Shape.
	Law string `json:"law,omitempty"`
	// Shape is the Weibull shape parameter k (< 1 for the decreasing
	// hazard observed on production machines) or the LogNormal sigma.
	Shape float64 `json:"shape,omitempty"`
	// ImageBytes is the detailed engine's checkpoint image size
	// (0 → 512 MB, the Base scenario's value).
	ImageBytes int64 `json:"imageBytes,omitempty"`
	// Spares is the detailed engine's spare-node pool size
	// (0 → N/10+1).
	Spares int `json:"spares,omitempty"`
	// Global describes the multilevel engine's global checkpoint level;
	// required when Backend is "multilevel".
	Global *GlobalSpec `json:"global,omitempty"`

	// Domains configures spatially correlated failure domains (a burst
	// model felling one rack/switch/PSU group at a time); supported by
	// the fast and detailed backends. Nil keeps the i.i.d. model.
	Domains *DomainsSpec `json:"domains,omitempty"`
	// Groups gives relative per-group individual-MTBF weights
	// (heterogeneous hardware generations): the platform splits into
	// len(Groups) contiguous equal blocks, node MTBFs proportional to
	// their group's weight, normalized so the platform rate 1/M is
	// preserved. Empty keeps the uniform model.
	Groups []float64 `json:"groups,omitempty"`
	// Trace names a server-registered failure trace to replay instead
	// of generating failures (detailed backend only). Runs outliving
	// the trace's coverage fail loudly.
	Trace string `json:"trace,omitempty"`
}

// DomainsSpec is the JSON description of correlated failure domains.
type DomainsSpec struct {
	// Size is the number of nodes per domain; it must divide N.
	Size int `json:"size"`
	// BurstRate is the platform-wide domain-burst rate in failures per
	// second; each burst fells every member of a uniformly chosen
	// domain at once. 0 degenerates to the i.i.d. model exactly.
	BurstRate float64 `json:"burstRate"`
	// Placement maps domains onto node ranks: "block" (default) makes
	// domains contiguous — aligned with buddy groups, so one burst can
	// fell a whole group — and "stripe" interleaves them so buddies
	// land in distinct domains.
	Placement string `json:"placement,omitempty"`
}

// ResolveCorrelation returns the correlation settings the spec selects
// for the given (resolved) platform, or nil when the spec keeps the
// i.i.d. model. Values are validated here (a bad rate or weight is a
// request error); layout feasibility against N is the backend's call,
// so grids sweeping N degrade per point. The settings are
// MTBF-independent — relative weights, absolute burst rate — so sweep
// engines may resolve them once per grid.
func (s Spec) ResolveCorrelation(p core.Params) (*failure.Correlation, error) {
	if s.Domains == nil && len(s.Groups) == 0 {
		return nil, nil
	}
	c := &failure.Correlation{Groups: s.Groups}
	if d := s.Domains; d != nil {
		var stripe bool
		switch d.Placement {
		case "", "block":
		case "stripe":
			stripe = true
		default:
			return nil, fmt.Errorf("scenario: unknown domain placement %q (want block or stripe)", d.Placement)
		}
		if d.Size < 1 {
			return nil, fmt.Errorf("scenario: domain size must be at least 1, got %d", d.Size)
		}
		if math.IsNaN(d.BurstRate) || math.IsInf(d.BurstRate, 0) || d.BurstRate < 0 {
			return nil, fmt.Errorf("scenario: domain burst rate %v must be finite and non-negative", d.BurstRate)
		}
		c.Domains = &failure.DomainSpec{Size: d.Size, Rate: d.BurstRate, Stripe: stripe}
	}
	for i, w := range s.Groups {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, fmt.Errorf("scenario: MTBF group %d weight %v must be finite and positive", i, w)
		}
	}
	return c, nil
}

// GlobalSpec is the multilevel backend's global (stable-storage)
// checkpoint level: a blocking whole-application dump of duration G
// every K inner periods, reloaded in Rg after a fatal in-memory
// failure. K = 0 lets the planner optimize the interval.
type GlobalSpec struct {
	G  float64 `json:"g"`
	Rg float64 `json:"rg,omitempty"`
	K  int     `json:"k,omitempty"`
}

// Resolve returns the platform parameters the spec describes: the named
// scenario's Table I row with the overrides applied, validated through
// core.Params.Validate.
func (s Spec) Resolve() (core.Params, error) {
	name := s.Name
	if name == "" {
		name = "Base"
	}
	sc, err := ByName(name)
	if err != nil {
		return core.Params{}, err
	}
	p := sc.Params
	if s.D != nil {
		p.D = *s.D
	}
	if s.Delta != nil {
		p.Delta = *s.Delta
	}
	if s.R != nil {
		p.R = *s.R
	}
	if s.Alpha != nil {
		p.Alpha = *s.Alpha
	}
	if s.N != nil {
		p.N = *s.N
	}
	if s.MTBF != nil {
		p.M = *s.MTBF
	}
	if err := p.Validate(); err != nil {
		return core.Params{}, err
	}
	return p, nil
}

// ResolveLaw returns the node-level failure law the spec selects for
// the given (resolved) platform, with the individual MTBF derived from
// the platform MTBF p.M. It returns nil for the exponential default:
// a nil law selects the merged-superposition fast path, which is
// statistically identical to per-node Exponential renewal processes
// and orders of magnitude cheaper.
//
// The law depends on p.M, so sweep engines must re-resolve it at every
// MTBF axis point.
func (s Spec) ResolveLaw(p core.Params) (failure.Law, error) {
	switch s.Law {
	case "", "exponential":
		if s.Shape != 0 {
			return nil, fmt.Errorf("scenario: shape = %v is meaningless for the exponential law", s.Shape)
		}
		return nil, nil
	case "weibull":
		if s.Shape <= 0 {
			return nil, fmt.Errorf("scenario: weibull law needs shape > 0, got %v", s.Shape)
		}
		return failure.Weibull{Shape: s.Shape, MTBF: failure.IndividualMTBF(p.M, p.N)}, nil
	case "lognormal":
		if s.Shape <= 0 {
			return nil, fmt.Errorf("scenario: lognormal law needs shape (sigma) > 0, got %v", s.Shape)
		}
		return failure.LogNormal{MTBF: failure.IndividualMTBF(p.M, p.N), Sigma: s.Shape}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown failure law %q (want exponential, weibull or lognormal)", s.Law)
	}
}
