package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/failure"
)

// Spec is the JSON description of a platform accepted by the service
// API (DESIGN.md, "API request lifecycle"). It either names a Table I
// scenario, optionally overriding individual parameters, or spells out
// a fully custom platform when Name is empty.
//
// A zero Spec resolves to the Base scenario, so curl examples stay
// short; every override is validated through core.Params.Validate
// before it reaches the model.
//
// Beyond the platform parameters, a Spec selects the evaluation
// backend and failure law (DESIGN.md, "Evaluation backends"): Backend
// names the engine, Law/Shape the inter-arrival distribution,
// ImageBytes/Spares the detailed engine's substrate shape, and Global
// the multilevel engine's stable-storage level. The zero value of each
// keeps the paper's defaults: the fast coordinated-timeline engine
// under Exponential failures.
type Spec struct {
	// Name selects the starting scenario ("Base" or "Exa"). Empty
	// defaults to Base.
	Name string `json:"name,omitempty"`
	// D overrides the downtime, in seconds.
	D *float64 `json:"d,omitempty"`
	// Delta overrides the blocking local checkpoint time δ, in seconds.
	Delta *float64 `json:"delta,omitempty"`
	// R overrides the blocking buddy-transfer time, in seconds.
	R *float64 `json:"r,omitempty"`
	// Alpha overrides the overlap speedup factor α.
	Alpha *float64 `json:"alpha,omitempty"`
	// N overrides the platform size in nodes.
	N *int `json:"n,omitempty"`
	// MTBF overrides the platform MTBF M, in seconds.
	MTBF *float64 `json:"mtbf,omitempty"`

	// Backend selects the evaluation engine: "fast" (default),
	// "detailed" or "multilevel".
	Backend string `json:"backend,omitempty"`
	// Law selects the failure law: "exponential" (default), "weibull"
	// or "lognormal". The non-exponential laws need Shape.
	Law string `json:"law,omitempty"`
	// Shape is the Weibull shape parameter k (< 1 for the decreasing
	// hazard observed on production machines) or the LogNormal sigma.
	Shape float64 `json:"shape,omitempty"`
	// ImageBytes is the detailed engine's checkpoint image size
	// (0 → 512 MB, the Base scenario's value).
	ImageBytes int64 `json:"imageBytes,omitempty"`
	// Spares is the detailed engine's spare-node pool size
	// (0 → N/10+1).
	Spares int `json:"spares,omitempty"`
	// Global describes the multilevel engine's global checkpoint level;
	// required when Backend is "multilevel".
	Global *GlobalSpec `json:"global,omitempty"`
}

// GlobalSpec is the multilevel backend's global (stable-storage)
// checkpoint level: a blocking whole-application dump of duration G
// every K inner periods, reloaded in Rg after a fatal in-memory
// failure. K = 0 lets the planner optimize the interval.
type GlobalSpec struct {
	G  float64 `json:"g"`
	Rg float64 `json:"rg,omitempty"`
	K  int     `json:"k,omitempty"`
}

// Resolve returns the platform parameters the spec describes: the named
// scenario's Table I row with the overrides applied, validated through
// core.Params.Validate.
func (s Spec) Resolve() (core.Params, error) {
	name := s.Name
	if name == "" {
		name = "Base"
	}
	sc, err := ByName(name)
	if err != nil {
		return core.Params{}, err
	}
	p := sc.Params
	if s.D != nil {
		p.D = *s.D
	}
	if s.Delta != nil {
		p.Delta = *s.Delta
	}
	if s.R != nil {
		p.R = *s.R
	}
	if s.Alpha != nil {
		p.Alpha = *s.Alpha
	}
	if s.N != nil {
		p.N = *s.N
	}
	if s.MTBF != nil {
		p.M = *s.MTBF
	}
	if err := p.Validate(); err != nil {
		return core.Params{}, err
	}
	return p, nil
}

// ResolveLaw returns the node-level failure law the spec selects for
// the given (resolved) platform, with the individual MTBF derived from
// the platform MTBF p.M. It returns nil for the exponential default:
// a nil law selects the merged-superposition fast path, which is
// statistically identical to per-node Exponential renewal processes
// and orders of magnitude cheaper.
//
// The law depends on p.M, so sweep engines must re-resolve it at every
// MTBF axis point.
func (s Spec) ResolveLaw(p core.Params) (failure.Law, error) {
	switch s.Law {
	case "", "exponential":
		if s.Shape != 0 {
			return nil, fmt.Errorf("scenario: shape = %v is meaningless for the exponential law", s.Shape)
		}
		return nil, nil
	case "weibull":
		if s.Shape <= 0 {
			return nil, fmt.Errorf("scenario: weibull law needs shape > 0, got %v", s.Shape)
		}
		return failure.Weibull{Shape: s.Shape, MTBF: failure.IndividualMTBF(p.M, p.N)}, nil
	case "lognormal":
		if s.Shape <= 0 {
			return nil, fmt.Errorf("scenario: lognormal law needs shape (sigma) > 0, got %v", s.Shape)
		}
		return failure.LogNormal{MTBF: failure.IndividualMTBF(p.M, p.N), Sigma: s.Shape}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown failure law %q (want exponential, weibull or lognormal)", s.Law)
	}
}
