// Package scenario defines the evaluation scenarios of the paper's
// Table I (Base, taken from Ni/Meneses/Kalé, and Exa, modeling a
// future exascale platform) together with the parameter grids swept by
// the figures.
package scenario

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Convenient durations, in seconds (the model's time unit).
const (
	Second = 1.0
	Minute = 60 * Second
	Hour   = 60 * Minute
	Day    = 24 * Hour
	Week   = 7 * Day
)

// Scenario is a named platform configuration from Table I. The MTBF M
// is not part of Table I (the figures sweep it); Params carries a
// representative default that sweeps override.
type Scenario struct {
	Name        string
	Description string
	Params      core.Params
}

// Base returns the Base scenario of Table I, using the values of the
// Cluster'12 paper: 512 MB of state per node, local checkpoint to SSD
// in δ = 2 s, blocking remote upload in R = 4 s, α = 10, no downtime,
// n = 324 × 32 nodes. The default MTBF is 7 h, the value used by the
// paper's Fig. 5.
func Base() Scenario {
	return Scenario{
		Name: "Base",
		Description: "Cluster'12 setup: 512MB state, SSD local checkpoint, " +
			"fast interconnect, 324x32 nodes",
		Params: core.Params{
			D:     0,
			Delta: 2 * Second,
			R:     4 * Second,
			Alpha: 10,
			N:     324 * 32,
			M:     7 * Hour,
		},
	}
}

// Exa returns the Exa scenario of Table I, modeling the IESP "slim"
// exascale machine: 10⁶ nodes of 1000 cores, 64 GB/core, 1 TB/s/node
// network, 500 Gb/s local storage bus, giving D = 60 s, δ = 30 s,
// R = 60 s, α = 10. The default MTBF is 7 h as in Fig. 8.
func Exa() Scenario {
	return Scenario{
		Name: "Exa",
		Description: "IESP slim exascale projection: 1e6 nodes, 1000 cores/node, " +
			"1TB/s/node network",
		Params: core.Params{
			D:     60 * Second,
			Delta: 30 * Second,
			R:     60 * Second,
			Alpha: 10,
			N:     1_000_000,
			M:     7 * Hour,
		},
	}
}

// All returns the scenarios of Table I in paper order.
func All() []Scenario { return []Scenario{Base(), Exa()} }

// ByName returns the scenario with the given name (case-sensitive).
func ByName(name string) (Scenario, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (want Base or Exa)", name)
}

// PhiGrid returns points+1 evenly spaced overhead values φ covering
// [0, R], i.e. φ/R ∈ {0, 1/points, ..., 1}, the x-axis of Figures 4,
// 5, 7 and 8.
func (s Scenario) PhiGrid(points int) []float64 {
	if points < 1 {
		points = 1
	}
	grid := make([]float64, points+1)
	for i := range grid {
		grid[i] = s.Params.R * float64(i) / float64(points)
	}
	return grid
}

// MTBFGridLog returns points MTBF values logarithmically spaced over
// [min, max], the M-axis of the waste surfaces (Fig. 4 and 7, from
// 15 s to 1 day).
func MTBFGridLog(min, max float64, points int) []float64 {
	if points < 2 || min <= 0 || max <= min {
		return []float64{min}
	}
	grid := make([]float64, points)
	lmin, lmax := math.Log(min), math.Log(max)
	for i := range grid {
		grid[i] = math.Exp(lmin + (lmax-lmin)*float64(i)/float64(points-1))
	}
	return grid
}

// LinearGrid returns points values evenly spaced over [min, max],
// used for the risk surfaces' M and platform-life axes (Fig. 6, 9).
func LinearGrid(min, max float64, points int) []float64 {
	if points < 2 {
		return []float64{min}
	}
	grid := make([]float64, points)
	for i := range grid {
		grid[i] = min + (max-min)*float64(i)/float64(points-1)
	}
	return grid
}

// TableI renders the parameters of the given scenarios as the paper's
// Table I, one row per scenario.
func TableI(scenarios []Scenario) string {
	out := "Scenario |    D |    δ |        φ |    R |  α |       n\n"
	out += "---------+------+------+----------+------+----+--------\n"
	for _, s := range scenarios {
		p := s.Params
		out += fmt.Sprintf("%-8s | %4.0f | %4.0f | 0 ≤ φ ≤ %.0f | %4.0f | %2.0f | %7d\n",
			s.Name, p.D, p.Delta, p.R, p.R, p.Alpha, p.N)
	}
	return out
}
