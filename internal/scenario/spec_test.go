package scenario

import "testing"

func TestSpecZeroValueIsBase(t *testing.T) {
	p, err := Spec{}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if p != Base().Params {
		t.Errorf("zero spec resolved to %+v, want Base %+v", p, Base().Params)
	}
}

func TestSpecOverrides(t *testing.T) {
	mtbf, n, delta := 3600.0, 1000, 5.0
	p, err := Spec{Name: "Exa", MTBF: &mtbf, N: &n, Delta: &delta}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	exa := Exa().Params
	if p.M != mtbf || p.N != n || p.Delta != delta {
		t.Errorf("overrides not applied: %+v", p)
	}
	if p.D != exa.D || p.R != exa.R || p.Alpha != exa.Alpha {
		t.Errorf("non-overridden fields changed: %+v vs %+v", p, exa)
	}
}

func TestSpecRejectsInvalid(t *testing.T) {
	bad := -1.0
	if _, err := (Spec{MTBF: &bad}).Resolve(); err == nil {
		t.Error("negative MTBF must fail validation")
	}
	if _, err := (Spec{Name: "Peta"}).Resolve(); err == nil {
		t.Error("unknown scenario name must fail")
	}
}
