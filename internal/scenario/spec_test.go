package scenario

import (
	"encoding/json"
	"testing"
)

func TestSpecZeroValueIsBase(t *testing.T) {
	p, err := Spec{}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if p != Base().Params {
		t.Errorf("zero spec resolved to %+v, want Base %+v", p, Base().Params)
	}
}

func TestSpecOverrides(t *testing.T) {
	mtbf, n, delta := 3600.0, 1000, 5.0
	p, err := Spec{Name: "Exa", MTBF: &mtbf, N: &n, Delta: &delta}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	exa := Exa().Params
	if p.M != mtbf || p.N != n || p.Delta != delta {
		t.Errorf("overrides not applied: %+v", p)
	}
	if p.D != exa.D || p.R != exa.R || p.Alpha != exa.Alpha {
		t.Errorf("non-overridden fields changed: %+v vs %+v", p, exa)
	}
}

func TestSpecRejectsInvalid(t *testing.T) {
	bad := -1.0
	if _, err := (Spec{MTBF: &bad}).Resolve(); err == nil {
		t.Error("negative MTBF must fail validation")
	}
	if _, err := (Spec{Name: "Peta"}).Resolve(); err == nil {
		t.Error("unknown scenario name must fail")
	}
}

// TestSpecResolveLaw covers the law selector added for the evaluation
// backends.
func TestSpecResolveLaw(t *testing.T) {
	p := Base().Params.WithMTBF(3600)
	cases := []struct {
		name    string
		spec    Spec
		want    string // law Name(), "" for the nil exponential fast path
		wantErr bool
	}{
		{"default", Spec{}, "", false},
		{"explicit exponential", Spec{Law: "exponential"}, "", false},
		{"exponential with shape", Spec{Law: "exponential", Shape: 0.5}, "", true},
		{"weibull", Spec{Law: "weibull", Shape: 0.7}, "weibull(0.7)", false},
		{"weibull no shape", Spec{Law: "weibull"}, "", true},
		{"lognormal", Spec{Law: "lognormal", Shape: 1.5}, "lognormal(1.5)", false},
		{"unknown", Spec{Law: "gaussian", Shape: 1}, "", true},
	}
	for _, tc := range cases {
		law, err := tc.spec.ResolveLaw(p)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		got := ""
		if law != nil {
			got = law.Name()
		}
		if got != tc.want {
			t.Errorf("%s: law = %q, want %q", tc.name, got, tc.want)
		}
	}
	// The law's individual MTBF must track the platform MTBF.
	law, err := (Spec{Law: "weibull", Shape: 0.7}).ResolveLaw(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := law.Mean(), p.M*float64(p.N); got != want {
		t.Errorf("individual MTBF = %v, want platform M × N = %v", got, want)
	}
}

// TestSpecBackendFieldsRoundTrip pins the JSON names of the backend
// selector fields.
func TestSpecBackendFieldsRoundTrip(t *testing.T) {
	in := `{"name": "Base", "backend": "multilevel", "law": "weibull", "shape": 0.7,
		"imageBytes": 1048576, "spares": 4, "global": {"g": 200, "rg": 100, "k": 8}}`
	var s Spec
	if err := json.Unmarshal([]byte(in), &s); err != nil {
		t.Fatal(err)
	}
	if s.Backend != "multilevel" || s.Law != "weibull" || s.Shape != 0.7 ||
		s.ImageBytes != 1<<20 || s.Spares != 4 {
		t.Errorf("decoded %+v", s)
	}
	if s.Global == nil || s.Global.G != 200 || s.Global.Rg != 100 || s.Global.K != 8 {
		t.Errorf("decoded global %+v", s.Global)
	}
	// The zero spec still marshals to the empty object, keeping default
	// requests minimal.
	data, err := json.Marshal(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Errorf("zero spec marshals to %s, want {}", data)
	}
}
