package scenario

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTableIValues(t *testing.T) {
	base := Base()
	// Table I row "Base": D=0, δ=2, R=4, α=10, n=324×32.
	p := base.Params
	if p.D != 0 || p.Delta != 2 || p.R != 4 || p.Alpha != 10 || p.N != 324*32 {
		t.Fatalf("Base params: %+v", p)
	}
	exa := Exa()
	// Table I row "Exa": D=60, δ=30, R=60, α=10, n=10⁶.
	q := exa.Params
	if q.D != 60 || q.Delta != 30 || q.R != 60 || q.Alpha != 10 || q.N != 1_000_000 {
		t.Fatalf("Exa params: %+v", q)
	}
	for _, sc := range All() {
		if err := sc.Params.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Base", "Exa"} {
		sc, err := ByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, sc.Name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown scenario should fail")
	}
	if _, err := ByName("base"); err == nil {
		t.Fatal("lookup is case-sensitive; 'base' should fail")
	}
}

func TestPhiGrid(t *testing.T) {
	sc := Base()
	grid := sc.PhiGrid(10)
	if len(grid) != 11 {
		t.Fatalf("grid size %d", len(grid))
	}
	if grid[0] != 0 || grid[10] != sc.Params.R {
		t.Fatalf("grid endpoints %v, %v", grid[0], grid[10])
	}
	if grid[5] != sc.Params.R/2 {
		t.Fatalf("grid midpoint %v", grid[5])
	}
	// Degenerate request still yields a usable grid.
	if g := sc.PhiGrid(0); len(g) != 2 {
		t.Fatalf("PhiGrid(0) = %v", g)
	}
}

func TestMTBFGridLog(t *testing.T) {
	grid := MTBFGridLog(15, Day, 10)
	if len(grid) != 10 {
		t.Fatalf("grid size %d", len(grid))
	}
	if math.Abs(grid[0]-15) > 1e-9 || math.Abs(grid[9]-Day) > 1e-6 {
		t.Fatalf("endpoints %v, %v", grid[0], grid[9])
	}
	// Log spacing: constant ratio between consecutive points.
	ratio := grid[1] / grid[0]
	for i := 2; i < len(grid); i++ {
		if math.Abs(grid[i]/grid[i-1]-ratio) > 1e-9 {
			t.Fatalf("not log-spaced at %d", i)
		}
	}
	// Degenerate inputs collapse to the minimum.
	if g := MTBFGridLog(15, Day, 1); len(g) != 1 || g[0] != 15 {
		t.Fatalf("degenerate grid %v", g)
	}
	if g := MTBFGridLog(0, Day, 5); len(g) != 1 {
		t.Fatalf("zero-min grid %v", g)
	}
}

func TestLinearGrid(t *testing.T) {
	grid := LinearGrid(0, 10, 11)
	for i, v := range grid {
		if math.Abs(v-float64(i)) > 1e-12 {
			t.Fatalf("grid = %v", grid)
		}
	}
	if g := LinearGrid(5, 10, 1); len(g) != 1 || g[0] != 5 {
		t.Fatalf("degenerate linear grid %v", g)
	}
}

func TestTableIRendering(t *testing.T) {
	table := TableI(All())
	for _, want := range []string{"Base", "Exa", "Scenario"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
	if lines := strings.Count(table, "\n"); lines != 4 {
		t.Errorf("table has %d lines, want 4 (header+rule+2 rows)", lines)
	}
}

func TestDurations(t *testing.T) {
	if Minute != 60 || Hour != 3600 || Day != 86400 || Week != 604800 {
		t.Fatal("duration constants wrong")
	}
}

func TestScenarioMTBFDefaults(t *testing.T) {
	// The default M is 7h, the value of Figures 5 and 8; both
	// scenarios must be feasible there for every protocol.
	for _, sc := range All() {
		for _, pr := range core.Protocols {
			if _, err := core.OptimalPeriod(pr, sc.Params, sc.Params.R/2); err != nil {
				t.Errorf("%s/%s infeasible at default MTBF: %v", sc.Name, pr, err)
			}
		}
	}
}
