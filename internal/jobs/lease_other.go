//go:build !unix

package jobs

// acquireLease is a no-op on platforms without flock semantics; the
// per-job single-executor guard is advisory and Unix-only.
func acquireLease(path string) (release func(), err error) {
	return func() {}, nil
}
