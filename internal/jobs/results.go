package jobs

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// ErrCorruptResults marks a results file whose bytes no longer match
// the per-record checksums in its sidecar: a record that was durably
// written and summed has since changed on the media. The damage is
// detected at open time — before any resume appends to the file — so
// a corrupt job is quarantined (failed with this error) instead of
// silently extending a poisoned prefix.
var ErrCorruptResults = errors.New("jobs: corrupt results file")

// castagnoli is the CRC-32C polynomial used for result-record sums
// (hardware-accelerated on common platforms).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sumRecordLen is the fixed width of one sidecar record: eight
// lowercase hex digits of the line's CRC-32C plus a newline, so
// record i lives exactly at byte offset i*sumRecordLen.
const sumRecordLen = crc32.Size*2 + 1

// SumsPath returns the path of a job's checksum sidecar: one
// fixed-width CRC-32C record per results line, covering the line's
// full bytes including its trailing newline. The sidecar is derived
// data — results.ndjson stays byte-identical to what the executor
// emitted — and exists so recovery can detect mid-file corruption,
// not just the torn tail that newline-counting already catches.
func (s *Store) SumsPath(id string) string {
	return filepath.Join(s.jobDir(id), "results.sum")
}

// ResultsFile is an open, integrity-tracked results file: appends go
// to results.ndjson and their checksums to the sidecar, and Sync makes
// both durable (results first, so the sidecar never vouches for bytes
// that were lost).
type ResultsFile struct {
	f    *os.File
	sums *os.File
	bw   *bufio.Writer
	sw   *bufio.Writer
	hook func(line []byte) []byte
}

// SetAppendHook installs a fault-injection hook over the results
// append path. The checksum is computed on the true line BEFORE the
// hook runs, and the hook's output is what lands on disk — exactly
// the shape of media corruption, which the next recovery's integrity
// scan must catch. Production paths leave this nil.
func (r *ResultsFile) SetAppendHook(hook func(line []byte) []byte) { r.hook = hook }

// Append buffers one result line and its checksum record.
func (r *ResultsFile) Append(line []byte) error {
	sum := crc32.Checksum(line, castagnoli)
	out := line
	if r.hook != nil {
		out = r.hook(line)
	}
	if _, err := r.bw.Write(out); err != nil {
		return storage(err)
	}
	if _, err := fmt.Fprintf(r.sw, "%08x\n", sum); err != nil {
		return storage(err)
	}
	return nil
}

// Sync flushes and fsyncs both files, results before sidecar: after a
// crash the sidecar may trail the results (recovery backfills the
// missing sums) or run ahead of a torn tail (recovery drops the
// extras), but never attest to a record that was lost.
func (r *ResultsFile) Sync() error {
	if err := r.bw.Flush(); err != nil {
		return storage(err)
	}
	if err := r.f.Sync(); err != nil {
		return storage(err)
	}
	if err := r.sw.Flush(); err != nil {
		return storage(err)
	}
	return storage(r.sums.Sync())
}

// Close flushes any buffered tail and closes both files.
func (r *ResultsFile) Close() error {
	err := r.bw.Flush()
	if serr := r.sw.Flush(); err == nil {
		err = serr
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	if cerr := r.sums.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenResults opens (creating if needed) a job's results file for
// appending, after recovering from a possible crash: the file is
// truncated to its last complete ('\n'-terminated) line, every
// surviving line is verified against the checksum sidecar — a
// mismatch is ErrCorruptResults — and the count of verified lines,
// the resume offset, is returned. Sidecar entries the crash (or a
// pre-sidecar store) never wrote are backfilled from the surviving
// lines; entries beyond the surviving lines are dropped.
func (s *Store) OpenResults(id string) (r *ResultsFile, lines int, err error) {
	f, err := os.OpenFile(s.ResultsPath(id), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, storage(err)
	}
	lines, keep, sums, err := scanResults(f)
	if err != nil {
		f.Close()
		return nil, 0, storage(err)
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, 0, storage(err)
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, storage(err)
	}
	sf, err := s.openSums(id, sums)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return &ResultsFile{f: f, sums: sf, bw: bufio.NewWriter(f), sw: bufio.NewWriter(sf)}, lines, nil
}

// openSums opens the checksum sidecar and reconciles it against the
// computed sums of the surviving result lines. Verification only
// trusts well-formed sidecar records: the sidecar is append-only like
// the results file, so a malformed record means a torn tail — the
// suffix from there on is rewritten from the lines. A well-formed
// record that disagrees with its line is the one unrecoverable state:
// the results bytes changed after they were attested.
func (s *Store) openSums(id string, want []uint32) (*os.File, error) {
	sf, err := os.OpenFile(s.SumsPath(id), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, storage(err)
	}
	data, err := io.ReadAll(sf)
	if err != nil {
		sf.Close()
		return nil, storage(err)
	}
	lines := len(want)
	have := len(data) / sumRecordLen
	if have > lines {
		have = lines
	}
	for i := 0; i < have; i++ {
		rec := data[i*sumRecordLen : (i+1)*sumRecordLen]
		stored, perr := strconv.ParseUint(string(rec[:sumRecordLen-1]), 16, 32)
		if perr != nil || rec[sumRecordLen-1] != '\n' {
			have = i // torn from here on: rewrite the suffix
			break
		}
		if uint32(stored) != want[i] {
			sf.Close()
			return nil, fmt.Errorf("%w: job %s: record %d checksum mismatch (stored %08x, computed %08x)",
				ErrCorruptResults, id, i, uint32(stored), want[i])
		}
	}
	tail := make([]byte, 0, (lines-have)*sumRecordLen)
	for i := have; i < lines; i++ {
		tail = fmt.Appendf(tail, "%08x\n", want[i])
	}
	if err := sf.Truncate(int64(have * sumRecordLen)); err != nil {
		sf.Close()
		return nil, storage(err)
	}
	if _, err := sf.Seek(int64(have*sumRecordLen), io.SeekStart); err != nil {
		sf.Close()
		return nil, storage(err)
	}
	if len(tail) > 0 {
		if _, err := sf.Write(tail); err != nil {
			sf.Close()
			return nil, storage(err)
		}
		if err := sf.Sync(); err != nil {
			sf.Close()
			return nil, storage(err)
		}
	}
	return sf, nil
}

// scanResults counts complete lines, returns the byte offset just
// after the last one (everything beyond is a torn tail), and computes
// each complete line's CRC-32C (trailing newline included) for
// sidecar verification.
func scanResults(f *os.File) (lines int, keep int64, sums []uint32, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, nil, err
	}
	buf := make([]byte, 64<<10)
	var pos int64 // bytes consumed so far
	var cur uint32
	for {
		n, rerr := f.Read(buf)
		chunk := buf[:n]
		for {
			i := bytes.IndexByte(chunk, '\n')
			if i < 0 {
				break
			}
			cur = crc32.Update(cur, castagnoli, chunk[:i+1])
			sums = append(sums, cur)
			cur = 0
			lines++
			pos += int64(i) + 1
			keep = pos
			chunk = chunk[i+1:]
		}
		cur = crc32.Update(cur, castagnoli, chunk)
		pos += int64(len(chunk))
		if rerr == io.EOF {
			return lines, keep, sums, nil
		}
		if rerr != nil {
			return 0, 0, nil, rerr
		}
	}
}
