//go:build unix

package jobs

import (
	"errors"
	"os"
	"syscall"
)

// acquireLease takes a non-blocking exclusive advisory flock on path,
// creating the file if needed. It returns ErrLeaseHeld when another
// process (or another Manager in this process) holds the lease. The
// kernel releases the lock when the holder dies, so a kill -9 never
// leaves a stale lease behind (unlike a pid file).
//
// Leases are per job, not per store: each Manager locks only the jobs
// it is actively executing, so several managers can share one store
// directory and run disjoint jobs concurrently — the single-node
// single-writer assumption the distributed fabric refactors away.
func acquireLease(path string) (release func(), err error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, ErrLeaseHeld
		}
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
