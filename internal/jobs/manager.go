package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"
)

// ErrQueueFull marks a submission rejected because the pending-job
// queue is at its configured bound. The HTTP layer maps it to 503
// with a Retry-After: the job was NOT created and an identical
// resubmission later will succeed (or dedupe) normally.
var ErrQueueFull = errors.New("jobs: job queue is full")

// Executor runs one job's request from a point offset: it must emit
// exactly one '\n'-terminated NDJSON line per completed point, in the
// request's deterministic point order, starting at point `offset`
// (the lines before it are already durable). start is called once,
// before any emission, with the request's total point count. A
// deterministic executor — same request, same offset, same line bytes
// — is what makes a resumed job bitwise identical to an uninterrupted
// one.
type Executor func(ctx context.Context, request []byte, offset int, start func(total int) error, emit func(line []byte) error) error

// Normalizer validates a raw request and returns its canonical bytes
// (the content key: identical sweeps must canonicalize identically)
// and total point count. Errors are request errors (HTTP 400).
type Normalizer func(request []byte) (canonical []byte, total int, err error)

// Config configures a Manager.
type Config struct {
	// Dir is the durable job directory.
	Dir string
	// MaxConcurrent bounds jobs executing simultaneously (default 1).
	// Point-level parallelism inside each job is governed by the shared
	// Pool, not by this knob.
	MaxConcurrent int
	// CheckpointEvery flushes+fsyncs the results file and persists the
	// progress marker every N completed points (default 16).
	CheckpointEvery int
	// LeaseProbeEvery is how often, on average, the manager re-probes
	// jobs that are executing under another manager's lease (several
	// managers may share one store directory), adopting their terminal
	// states and taking over orphaned jobs whose holder died (default
	// 1s). Each wakeup is jittered uniformly over [p/2, 3p/2) so a
	// fleet of managers sharing one directory never synchronizes into
	// periodic scan stampedes.
	LeaseProbeEvery time.Duration
	// MaxQueued bounds the number of jobs awaiting execution: a
	// submission that would create a NEW job while the queue is at the
	// bound is rejected with ErrQueueFull. Deduped resubmissions and
	// adoptions of jobs already on disk are never rejected — refusing
	// those would lose no work and help no one. Zero means unbounded.
	MaxQueued int
	// Exec executes job requests.
	Exec Executor
	// Normalize canonicalizes and validates submissions.
	Normalize Normalizer
	// ResultsAppendHook, when non-nil, transforms each result line's
	// bytes on their way to disk. Checksums are computed on the true
	// line BEFORE the hook runs, so whatever the hook changes is
	// media corruption the next recovery's integrity scan must catch.
	// Fault injection only; production paths leave it nil.
	ResultsAppendHook func(line []byte) []byte
	// Replicate, when non-nil, receives every durable mutation — job
	// creation, each checkpoint flush with its result-line suffix, job
	// removal — and must not return nil until the mutation is durable
	// on a write quorum of peers (see ReplicationSink). A checkpoint
	// the sink rejects fails the job; the lines stay durable locally
	// and the job resumes wherever the quorum survives. Nil (the
	// single-node default) adds zero cost to the emit path.
	Replicate ReplicationSink
	// JanitorSeed seeds the janitor's rescan-jitter source, so lease
	// takeover timing is replayable from a logged seed (the chaos
	// matrix derives it from CHAOS_SEED). Zero derives a seed from the
	// clock — still per-Manager, never the global math/rand state.
	JanitorSeed int64
	// now stamps Meta times; tests may override. Nil uses time.Now.
	now func() time.Time
}

// job is the in-memory side of one job.
type job struct {
	meta            Meta
	cancelRequested bool
	cancel          context.CancelFunc // non-nil while running
	// creating is true while Submit is still making the job durable
	// (the directory may not exist yet): Cancel defers its disk write
	// to Submit's completion and runners cannot see the job (it is not
	// queued until creating clears).
	creating bool
	// remote is true while another manager holds the job's execution
	// lease: this manager mirrors the job's on-disk progress (the
	// janitor refreshes it) instead of executing it, and takes over if
	// the holder dies before finishing.
	remote bool
	subs   map[chan struct{}]struct{}
}

// Manager owns the job lifecycle: it persists submissions through a
// Store, schedules them over MaxConcurrent runner goroutines, streams
// their results to followers, and resumes interrupted jobs on
// restart. All methods are safe for concurrent use.
type Manager struct {
	cfg   Config
	store *Store

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// jrand jitters the janitor's probe interval. It is owned by the
	// janitor goroutine (the one caller of probeInterval), seeded per
	// Manager so concurrent managers never share RNG state and a test
	// run replays from Config.JanitorSeed.
	jrand *rand.Rand

	mu     sync.Mutex
	cond   *sync.Cond // signals runners that queue/closed changed
	jobs   map[string]*job
	queue  []string // pending job ids, FIFO
	closed bool
}

// NewManager opens the job directory, recovers persisted jobs —
// running jobs from a previous process go back to pending and will
// resume from their last durable point — and starts the runner
// goroutines.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Exec == nil || cfg.Normalize == nil {
		return nil, errors.New("jobs: manager needs Exec and Normalize")
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 16
	}
	if cfg.LeaseProbeEvery <= 0 {
		cfg.LeaseProbeEvery = time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.JanitorSeed == 0 {
		cfg.JanitorSeed = time.Now().UnixNano()
	}
	store, err := NewStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	m := &Manager{cfg: cfg, store: store, jobs: make(map[string]*job)}
	m.jrand = rand.New(rand.NewSource(cfg.JanitorSeed))
	m.cond = sync.NewCond(&m.mu)
	m.ctx, m.cancel = context.WithCancel(context.Background())

	metas, err := store.Load()
	if err != nil {
		return nil, err
	}
	// Oldest first, so recovered work keeps its submission order.
	sort.Slice(metas, func(i, j int) bool {
		if metas[i].CreatedAt != metas[j].CreatedAt {
			return metas[i].CreatedAt < metas[j].CreatedAt
		}
		return metas[i].ID < metas[j].ID
	})
	for _, meta := range metas {
		j := &job{meta: meta, subs: make(map[chan struct{}]struct{})}
		if meta.State == Running {
			// "Running" on disk means either a live manager elsewhere
			// (its per-job lease is held: mirror it and let the janitor
			// follow its progress) or a process that died mid-execution
			// (lease free: the job goes back to pending and resumes from
			// its last durable point).
			if store.LeaseFree(meta.ID) {
				meta.State = Pending
				if err := store.WriteMeta(meta); err != nil {
					return nil, err
				}
				j.meta = meta
			} else {
				j.remote = true
			}
		}
		m.jobs[meta.ID] = j
		if j.meta.State == Pending {
			m.queue = append(m.queue, meta.ID)
		}
	}

	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	m.wg.Add(1)
	go m.janitor()
	return m, nil
}

// Close stops accepting work, cancels running jobs and waits for the
// runners to drain. Running jobs flush their progress and stay in
// state "running" on disk, so the next NewManager over the same
// directory resumes them; pending jobs stay pending.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.cond.Broadcast()
	m.wg.Wait()
}

// Store returns the manager's durable store (for results paths and
// diagnostics).
func (m *Manager) Store() *Store { return m.store }

// Stats is a point-in-time load snapshot of the job subsystem, the
// jobs half of the /readyz readiness report.
type Stats struct {
	// Queued counts jobs awaiting a runner.
	Queued int `json:"queued"`
	// Running counts jobs executing under THIS manager's leases
	// (remote-mirrored jobs are another manager's load).
	Running int `json:"running"`
	// MaxQueued echoes the configured queue bound; zero is unbounded.
	MaxQueued int `json:"maxQueued,omitempty"`
	// Saturated reports whether a new submission would be rejected
	// with ErrQueueFull right now.
	Saturated bool `json:"saturated,omitempty"`
}

// Stats returns the manager's current load snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Queued: len(m.queue), MaxQueued: m.cfg.MaxQueued}
	st.Saturated = st.MaxQueued > 0 && st.Queued >= st.MaxQueued
	for _, j := range m.jobs {
		if j.meta.State == Running && !j.remote {
			st.Running++
		}
	}
	return st
}

// Submit canonicalizes the request and creates (or dedupes to) its
// content-keyed job. The boolean reports whether a new job was
// created; resubmitting an identical request returns the existing
// job, whatever its state.
func (m *Manager) Submit(request []byte) (Meta, bool, error) {
	canonical, total, err := m.cfg.Normalize(request)
	if err != nil {
		return Meta{}, false, err
	}
	id := IDFor(canonical)

	meta := Meta{
		ID:        id,
		State:     Pending,
		Total:     total,
		CreatedAt: m.cfg.now().UnixMilli(),
	}
	// A manager sharing the store directory with others may be asked
	// for a job that already exists on disk but not in its memory:
	// adopt the existing job (clobbering its meta would reset another
	// manager's progress) exactly like an in-memory dedupe.
	diskMeta, diskErr := m.store.ReadMeta(id)
	// Reserve the id under the lock, but run the store's fsync-heavy
	// Create outside it: a submission burst on a slow disk must not
	// stall status reads, checkpoints and cancels for every other job.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Meta{}, false, errors.New("jobs: manager is shut down")
	}
	if j, ok := m.jobs[id]; ok {
		existing := j.meta
		m.mu.Unlock()
		return existing, false, nil
	}
	if diskErr == nil {
		j := &job{meta: diskMeta, subs: make(map[chan struct{}]struct{})}
		switch {
		case diskMeta.State.Terminal():
			// Adopt as-is.
		case m.store.LeaseFree(id):
			// Orphaned (or never started): resume it here, from its
			// last durable point.
			j.meta.State = Pending
			m.queue = append(m.queue, id)
			m.cond.Signal()
		default:
			j.remote = true // live under another manager's lease
		}
		m.jobs[id] = j
		adopted := j.meta
		m.mu.Unlock()
		return adopted, false, nil
	}
	if m.cfg.MaxQueued > 0 && len(m.queue) >= m.cfg.MaxQueued {
		// Saturated: shed the NEW job before any disk work. Dedupes and
		// adoptions (above) are never shed — they create no new load.
		m.mu.Unlock()
		return Meta{}, false, ErrQueueFull
	}
	j := &job{meta: meta, creating: true, subs: make(map[chan struct{}]struct{})}
	m.jobs[id] = j
	m.mu.Unlock()

	if err := m.store.Create(meta, canonical); err != nil {
		m.mu.Lock()
		delete(m.jobs, id)
		m.mu.Unlock()
		m.notify(j) // waiters on the vanished job observe ErrNotFound
		return Meta{}, false, err
	}
	if m.cfg.Replicate != nil {
		// The submission is only acknowledged once a write quorum of
		// peers holds the request: an acked job must survive this node's
		// disk. On failure the local copy is withdrawn too, so "created"
		// and "quorum-replicated" stay synonymous.
		if rerr := m.cfg.Replicate.JobCreated(meta, canonical); rerr != nil {
			m.store.Remove(id)
			m.mu.Lock()
			delete(m.jobs, id)
			m.mu.Unlock()
			m.notify(j)
			return Meta{}, false, rerr
		}
	}

	m.mu.Lock()
	j.creating = false
	if j.cancelRequested {
		// Cancelled while being created: finalize the terminal state
		// now that the directory exists; never enqueue.
		m.mu.Unlock()
		m.finish(id, Cancelled, "")
		meta, _ := m.Get(id)
		return meta, true, nil
	}
	// Enqueue only after the request is durable, so a runner never
	// races a half-created job.
	m.queue = append(m.queue, id)
	m.cond.Signal()
	m.mu.Unlock()
	return meta, true, nil
}

// Get returns a job's current status.
func (m *Manager) Get(id string) (Meta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Meta{}, ErrNotFound
	}
	return j.meta, nil
}

// List returns every job's status, oldest first (ties broken by id).
func (m *Manager) List() []Meta {
	m.mu.Lock()
	defer m.mu.Unlock()
	metas := make([]Meta, 0, len(m.jobs))
	for _, j := range m.jobs {
		metas = append(metas, j.meta)
	}
	sort.Slice(metas, func(i, j int) bool {
		if metas[i].CreatedAt != metas[j].CreatedAt {
			return metas[i].CreatedAt < metas[j].CreatedAt
		}
		return metas[i].ID < metas[j].ID
	})
	return metas
}

// Cancel requests cancellation: a pending job becomes cancelled
// immediately; a running job's context is cancelled and it transitions
// once its executor unwinds (the returned Meta may still say
// "running"). Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Meta, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Meta{}, ErrNotFound
	}
	if j.remote {
		// The job executes under another manager's lease; this manager
		// only mirrors its progress and cannot reach its context. Report
		// the current status — cancel it on the manager that runs it.
		meta := j.meta
		m.mu.Unlock()
		return meta, nil
	}
	switch j.meta.State {
	case Pending:
		if j.creating {
			// The job directory may not exist yet; Submit finalizes the
			// cancellation once the creation lands.
			j.cancelRequested = true
			meta := j.meta
			m.mu.Unlock()
			return meta, nil
		}
		// Mark and dequeue under the lock (a racing runner skips a
		// cancel-requested job), but persist before the in-memory state
		// turns terminal so an observer's immediate Delete cannot race
		// the meta rename.
		j.cancelRequested = true
		m.dequeue(id)
		meta := j.meta
		meta.State = Cancelled
		meta.FinishedAt = m.cfg.now().UnixMilli()
		m.mu.Unlock()
		if err := m.store.WriteMeta(meta); err != nil {
			return meta, err
		}
		if m.cfg.Replicate != nil {
			// Best-effort: a lost terminal meta is safe — a peer that
			// resumes this job re-executes zero remaining points and
			// reaches the same terminal bytes (see ReplicationSink).
			_ = m.cfg.Replicate.Checkpoint(id, meta, meta.Completed, nil)
		}
		m.mu.Lock()
		if j, ok := m.jobs[id]; ok {
			j.meta = meta
		}
		m.mu.Unlock()
		m.notifyJob(id)
		return meta, nil
	case Running:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		meta := j.meta
		m.mu.Unlock()
		return meta, nil
	default:
		meta := j.meta
		m.mu.Unlock()
		return meta, nil
	}
}

// Delete removes a terminal job from the store and the listing. An
// active (pending/running) job must be cancelled first.
func (m *Manager) Delete(id string) (Meta, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Meta{}, ErrNotFound
	}
	meta := j.meta
	if !meta.State.Terminal() {
		m.mu.Unlock()
		return meta, fmt.Errorf("jobs: job %s is %s; cancel it before deleting", id, meta.State)
	}
	m.mu.Unlock()
	if m.cfg.Replicate != nil {
		// Removal needs the same quorum as creation, and it lands on the
		// peers BEFORE the local delete: a rejected removal leaves the
		// job whole everywhere instead of resurrectable from a replica.
		if err := m.cfg.Replicate.JobRemoved(id); err != nil {
			return meta, err
		}
	}
	m.mu.Lock()
	delete(m.jobs, id)
	m.mu.Unlock()
	return meta, m.store.Remove(id)
}

// Wait blocks until the job reaches a terminal state (or ctx is done)
// and returns its final status.
func (m *Manager) Wait(ctx context.Context, id string) (Meta, error) {
	ch, unsub, err := m.subscribe(id)
	if err != nil {
		return Meta{}, err
	}
	defer unsub()
	for {
		meta, err := m.Get(id)
		if err != nil || meta.State.Terminal() {
			return meta, err
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return meta, ctx.Err()
		}
	}
}

// subscribe registers a wakeup channel signalled on every checkpoint
// and state transition of the job.
func (m *Manager) subscribe(id string) (ch chan struct{}, unsub func(), err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch = make(chan struct{}, 1)
	j.subs[ch] = struct{}{}
	return ch, func() {
		m.mu.Lock()
		delete(j.subs, ch)
		m.mu.Unlock()
	}, nil
}

// notifyJob wakes the job's subscribers (non-blocking).
func (m *Manager) notifyJob(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		m.notify(j)
	}
}

// notify wakes a job object's subscribers directly — usable even when
// the job was just unlinked from the map.
func (m *Manager) notify(j *job) {
	m.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	m.mu.Unlock()
}

// dequeue removes id from the pending queue (m.mu held).
func (m *Manager) dequeue(id string) {
	for i, q := range m.queue {
		if q == id {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return
		}
	}
}

// runner is one job-executing goroutine: it pops pending jobs in
// submission order until the manager closes.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		id := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		m.runJob(id)
	}
}

// runJob executes one job end to end: transition to running, recover
// the durable offset, execute from there with periodic checkpoints,
// and persist the terminal state. On manager shutdown the job's disk
// state is left "running" with its progress flushed, which the next
// manager recovers into a resumed pending job.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.meta.State != Pending || j.cancelRequested {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	// The per-job lease is the single-executor guard: whatever path
	// queued this job (submission, recovery, janitor takeover), only
	// the manager that wins the flock appends to its results file.
	release, err := acquireLease(m.store.LeasePath(id))
	if errors.Is(err, ErrLeaseHeld) {
		// Another manager got there first: follow its progress instead.
		m.mu.Lock()
		if j.meta.State == Pending {
			j.remote = true
		}
		m.mu.Unlock()
		return
	}
	if err != nil {
		m.finish(id, Failed, fmt.Sprintf("acquiring job lease: %v", err))
		return
	}
	defer release()

	m.mu.Lock()
	if j.meta.State != Pending || j.cancelRequested {
		m.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(m.ctx)
	defer cancel()
	j.cancel = cancel
	j.meta.State = Running
	if j.meta.StartedAt == 0 {
		j.meta.StartedAt = m.cfg.now().UnixMilli()
	}
	meta := j.meta
	m.mu.Unlock()

	fail := func(err error) {
		m.finish(id, Failed, err.Error())
	}
	if err := m.store.WriteMeta(meta); err != nil {
		fail(err)
		return
	}
	m.notifyJob(id)

	request, err := m.store.Request(id)
	if err != nil {
		fail(err)
		return
	}
	// OpenResults verifies every durable record against the checksum
	// sidecar before the job may resume: a corrupt results file fails
	// the job here — quarantined with its typed error in the status,
	// other jobs and the manager itself unharmed — rather than letting
	// an executor append a clean suffix to a poisoned prefix.
	rf, offset, err := m.store.OpenResults(id)
	if err != nil {
		fail(err)
		return
	}
	defer rf.Close()
	if m.cfg.ResultsAppendHook != nil {
		rf.SetAppendHook(m.cfg.ResultsAppendHook)
	}

	completed := offset
	unflushed := 0
	// With a replication sink, the lines of the current checkpoint
	// window are buffered so each flush can stream exactly the new
	// durable suffix to the peers. The buffer is bounded by
	// CheckpointEvery lines and unused (nil) in single-node mode.
	var replBuf []byte
	replFrom := offset
	checkpoint := func() error {
		if err := rf.Sync(); err != nil {
			return err
		}
		unflushed = 0
		m.mu.Lock()
		j.meta.Completed = completed
		meta := j.meta
		m.mu.Unlock()
		if err := m.store.WriteMeta(meta); err != nil {
			return err
		}
		if m.cfg.Replicate != nil {
			// The flush acks — and execution proceeds — only once the
			// suffix is on a write quorum. A rejected checkpoint (peers
			// unreachable, or this leader fenced by a newer term) fails
			// the job here: the lines stay durable locally, and the job
			// resumes wherever the quorum survives.
			if err := m.cfg.Replicate.Checkpoint(id, meta, replFrom, replBuf); err != nil {
				return err
			}
			replFrom = completed
			replBuf = replBuf[:0]
		}
		m.notifyJob(id)
		return nil
	}
	start := func(total int) error {
		m.mu.Lock()
		j.meta.Total = total
		m.mu.Unlock()
		return nil
	}
	emit := func(line []byte) error {
		if len(line) == 0 || line[len(line)-1] != '\n' || bytes.IndexByte(line[:len(line)-1], '\n') >= 0 {
			return fmt.Errorf("jobs: executor emitted a malformed record (%d bytes)", len(line))
		}
		if err := rf.Append(line); err != nil {
			return err
		}
		if m.cfg.Replicate != nil {
			replBuf = append(replBuf, line...)
		}
		completed++
		unflushed++
		if unflushed >= m.cfg.CheckpointEvery {
			return checkpoint()
		}
		return nil
	}

	execErr := m.cfg.Exec(jctx, request, offset, start, emit)

	// Whatever happened, make the emitted prefix durable: even a failed
	// or interrupted job resumes (or reports) from everything it
	// completed.
	if err := checkpoint(); err != nil && execErr == nil {
		execErr = err
	}

	m.mu.Lock()
	cancelled := j.cancelRequested
	shutdown := m.ctx.Err() != nil && !cancelled
	j.cancel = nil
	m.mu.Unlock()

	switch {
	case execErr == nil:
		// Every point is durable: the job is done even when a cancel
		// (or shutdown) raced the final emission — a byte-complete
		// result set must never read as a truncated one.
		m.finish(id, Done, "")
	case shutdown:
		// Manager shutdown: leave the durable state "running" so the
		// next manager resumes the job; only the in-memory view ends.
	case cancelled:
		m.finish(id, Cancelled, "")
	default:
		fail(execErr)
	}
}

// janitor periodically re-probes jobs that execute under another
// manager's lease (several managers may share one store directory):
// it mirrors their on-disk progress for this manager's status and
// results followers, adopts their terminal states, and — when a
// holder dies mid-job, releasing the lease with the job still
// "running" on disk — takes the job over, re-queueing it to resume
// from its last durable point. This is what makes any node able to
// resume any job: checkpoints live in the shared store, and leases,
// not process identity, decide the executor.
func (m *Manager) janitor() {
	defer m.wg.Done()
	t := time.NewTimer(m.probeInterval())
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
		}
		m.probeRemote()
		t.Reset(m.probeInterval())
	}
}

// probeInterval jitters the janitor period uniformly over [p/2, 3p/2):
// managers sharing a store directory are typically started together
// (deploys, restarts), and identical fixed tickers would then hammer
// the directory in lockstep forever. The draws come from the manager's
// own source (seeded by Config.JanitorSeed), so rescan and takeover
// timing replays from a logged seed and test runs never share the
// global math/rand state. Only the janitor goroutine calls this.
func (m *Manager) probeInterval() time.Duration {
	p := m.cfg.LeaseProbeEvery
	return p/2 + time.Duration(m.jrand.Int63n(int64(p)))
}

// probeRemote is one janitor pass over the remote-mirrored jobs.
func (m *Manager) probeRemote() {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id, j := range m.jobs {
		if j.remote {
			ids = append(ids, id)
		}
	}
	m.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		meta, err := m.store.ReadMeta(id)
		if err != nil {
			// The owning manager deleted it: drop the mirror so local
			// observers see ErrNotFound instead of a forever-stale state.
			m.mu.Lock()
			j, ok := m.jobs[id]
			if ok && j.remote {
				delete(m.jobs, id)
			}
			m.mu.Unlock()
			if ok {
				m.notify(j)
			}
			continue
		}
		orphaned := !meta.State.Terminal() && m.store.LeaseFree(id)
		m.mu.Lock()
		j, ok := m.jobs[id]
		if !ok || !j.remote {
			m.mu.Unlock()
			continue
		}
		j.meta = meta
		if meta.State.Terminal() {
			j.remote = false
		} else if orphaned {
			j.remote = false
			if j.meta.State == Running {
				j.meta.State = Pending
			}
			if !j.cancelRequested {
				m.queue = append(m.queue, id)
				m.cond.Signal()
			}
		}
		m.mu.Unlock()
		m.notifyJob(id)
	}
}

// finish persists a terminal transition. The disk write lands BEFORE
// the in-memory state turns terminal, so an observer that sees a
// terminal status (and may immediately Delete the directory) never
// races the meta rename. A persistence failure is surfaced in the
// job's Error field: the in-memory state is still terminal for this
// process, but the disk may say "running" — the next start would
// resume the job — so clients reading the status see the store is in
// trouble instead of nothing at all.
func (m *Manager) finish(id string, state State, errMsg string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	meta := j.meta
	meta.State = state
	meta.Error = errMsg
	meta.FinishedAt = m.cfg.now().UnixMilli()
	m.mu.Unlock()
	if err := m.store.WriteMeta(meta); err != nil {
		if meta.Error == "" {
			meta.Error = fmt.Sprintf("terminal state not persisted: %v", err)
		} else {
			meta.Error = fmt.Sprintf("%s (terminal state not persisted: %v)", meta.Error, err)
		}
	} else if m.cfg.Replicate != nil {
		// Best-effort: a lost terminal meta is safe — a peer that resumes
		// this job re-executes zero remaining points and reaches the same
		// terminal bytes (see ReplicationSink).
		_ = m.cfg.Replicate.Checkpoint(id, meta, meta.Completed, nil)
	}
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		j.meta = meta
	}
	m.mu.Unlock()
	m.notifyJob(id)
}

// StreamResults emits the job's durable result lines from line-number
// `offset` on, then follows the file — waking on every checkpoint —
// until the job is terminal, and returns the final status. Lines are
// emitted exactly as the executor produced them; a torn tail is never
// emitted (only '\n'-terminated lines count). A client that was cut
// off at line K resumes with offset=K and receives the identical
// remaining byte stream.
func (m *Manager) StreamResults(ctx context.Context, id string, offset int, emit func(line []byte) error) (Meta, error) {
	meta, err := m.Get(id)
	if err != nil {
		return Meta{}, err
	}
	ch, unsub, err := m.subscribe(id)
	if err != nil {
		return Meta{}, err
	}
	defer unsub()

	f, err := os.Open(m.store.ResultsPath(id))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return meta, err
	}
	// The file may not exist yet (the job has not started); drain
	// reopens it on a later wakeup, so close whatever handle is current
	// when the stream ends, not just the one opened here.
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	var pos int64 // byte offset of the last consumed complete line
	skip := offset
	buf := make([]byte, 64<<10)
	drain := func() error {
		if f == nil { // not created yet; reopen on the next wakeup
			var oerr error
			if f, oerr = os.Open(m.store.ResultsPath(id)); oerr != nil {
				if errors.Is(oerr, os.ErrNotExist) {
					return nil
				}
				return oerr
			}
		}
		// pos only ever rests on a line boundary: a torn tail is left
		// in the file and re-read on the next wakeup rather than
		// buffered across drains. Crash-recovery truncation
		// (Store.OpenResults) removes only bytes after the last '\n',
		// so pos stays valid even when a resumed job rewrites the tail
		// under a live follower.
		if _, err := f.Seek(pos, io.SeekStart); err != nil {
			return err
		}
		var pending []byte
		for {
			n, rerr := f.Read(buf)
			if n > 0 {
				pending = append(pending, buf[:n]...)
				for {
					i := bytes.IndexByte(pending, '\n')
					if i < 0 {
						break
					}
					line := pending[:i+1]
					pos += int64(i + 1)
					if skip > 0 {
						skip--
					} else if err := emit(line); err != nil {
						return err
					}
					pending = pending[i+1:]
				}
			}
			if rerr == io.EOF {
				return nil
			}
			if rerr != nil {
				return rerr
			}
		}
	}

	for {
		if err := drain(); err != nil {
			return meta, err
		}
		meta, err = m.Get(id)
		if err != nil {
			return Meta{}, err
		}
		if meta.State.Terminal() {
			// One final drain: the terminal checkpoint may have landed
			// between the last drain and the state read.
			return meta, drain()
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return meta, ctx.Err()
		}
	}
}
