//go:build !unix

package jobs

// lockDir is a no-op on platforms without flock semantics; the
// single-writer guard is advisory and Unix-only.
func lockDir(dir string) (release func(), err error) {
	return func() {}, nil
}
