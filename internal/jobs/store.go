package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// State is a job's lifecycle state. The machine is
//
//	pending -> running -> done
//	                   -> failed
//	pending/running -> cancelled
//
// plus the recovery edge running -> pending when a restarted Manager
// finds a job that was mid-execution when the process died.
type State string

const (
	Pending   State = "pending"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// Meta is a job's status record: the checkpointed progress marker
// persisted as meta.json and the JSON body of GET /v1/jobs/{id}. The
// results file, not Completed, is the source of truth at recovery —
// Completed is the advisory high-water mark of the last checkpoint.
type Meta struct {
	// ID is the content key: "job-" plus the truncated SHA-256 of the
	// canonical request bytes, so resubmitting an identical sweep
	// dedupes to the same job.
	ID    string `json:"id"`
	State State  `json:"state"`
	// Total is the job's grid size in points (known at submission).
	Total int `json:"total"`
	// Completed counts results known to be durably on disk.
	Completed int `json:"completed"`
	// Error carries the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// CreatedAt/StartedAt/FinishedAt are Unix milliseconds; zero means
	// "not yet".
	CreatedAt  int64 `json:"createdAt"`
	StartedAt  int64 `json:"startedAt,omitempty"`
	FinishedAt int64 `json:"finishedAt,omitempty"`
}

// ErrNotFound marks an unknown job id.
var ErrNotFound = errors.New("jobs: job not found")

// ErrLeaseHeld marks a job whose execution lease is held by another
// manager (possibly in another process sharing the store directory).
var ErrLeaseHeld = errors.New("jobs: job lease held by another manager")

// ErrStorage marks a server-side persistence failure (disk full,
// permissions, ...) as opposed to a bad request; the HTTP layer maps
// it to a 5xx so clients retry instead of discarding the submission.
var ErrStorage = errors.New("jobs: storage failure")

// storage wraps err so errors.Is(_, ErrStorage) holds.
func storage(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrStorage, err)
}

// IDFor derives the content-keyed job id from the canonical request
// bytes.
func IDFor(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return "job-" + hex.EncodeToString(sum[:8])
}

// Store persists jobs under one directory, one subdirectory per job:
//
//	<dir>/<id>/request.json   canonical request (immutable)
//	<dir>/<id>/meta.json      Meta checkpoint (atomic tmp+rename)
//	<dir>/<id>/results.ndjson one emitted line per completed point
//	<dir>/<id>/results.sum    per-record CRC-32C sidecar (derived)
//
// results.ndjson is append-only and fsynced at every checkpoint; a
// crash can leave at most a partial trailing line, which recovery
// truncates before counting the resume offset. The sidecar carries
// one fixed-width checksum per record so recovery also detects
// mid-file corruption, not just the torn tail (see OpenResults).
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the job directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("jobs: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) jobDir(id string) string { return filepath.Join(s.dir, id) }

// Create persists a new job — its directory, canonical request and
// initial meta — durably: both files are synced before their renames
// land, and the directory entries themselves are fsynced, so a job
// acknowledged to the client survives power loss whole (never as a
// directory with a missing or torn request).
func (s *Store) Create(meta Meta, request []byte) error {
	dir := s.jobDir(meta.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return storage(err)
	}
	if err := atomicWrite(dir, "request.json", request); err != nil {
		return storage(err)
	}
	if err := s.WriteMeta(meta); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return storage(err)
	}
	return storage(syncDir(s.dir))
}

// WriteMeta checkpoints the job status atomically (write temp file,
// fsync, rename), so a crash never leaves a torn meta.json.
func (s *Store) WriteMeta(meta Meta) error {
	data, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return storage(atomicWrite(s.jobDir(meta.ID), "meta.json", append(data, '\n')))
}

// atomicWrite lands data under dir/name via a synced temp file and a
// rename, so the target is always either absent or whole.
func atomicWrite(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+"-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// ReadMeta loads a job's status record.
func (s *Store) ReadMeta(id string) (Meta, error) {
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), "meta.json"))
	if errors.Is(err, os.ErrNotExist) {
		return Meta{}, ErrNotFound
	}
	if err != nil {
		return Meta{}, err
	}
	var meta Meta
	if err := json.Unmarshal(data, &meta); err != nil {
		return Meta{}, fmt.Errorf("jobs: corrupt meta for %s: %w", id, err)
	}
	return meta, nil
}

// Request loads a job's canonical request bytes.
func (s *Store) Request(id string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), "request.json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	return data, err
}

// Load scans the store and returns every job's meta (unspecified
// order). Entries whose meta is unreadable are skipped: a job
// directory is only half-created for the instant between MkdirAll and
// the first WriteMeta, and a stray file cannot wedge the whole
// subsystem.
func (s *Store) Load() ([]Meta, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	metas := make([]Meta, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "job-") {
			continue
		}
		meta, err := s.ReadMeta(e.Name())
		if err != nil {
			continue
		}
		metas = append(metas, meta)
	}
	return metas, nil
}

// Remove deletes a job's directory.
func (s *Store) Remove(id string) error {
	return storage(os.RemoveAll(s.jobDir(id)))
}

// ResultsPath returns the path of a job's results file.
func (s *Store) ResultsPath(id string) string {
	return filepath.Join(s.jobDir(id), "results.ndjson")
}

// LeasePath returns the path of a job's execution-lease file. The
// lease is an advisory per-job flock: exactly one manager holds it
// while executing the job, which is what lets several managers share
// one store directory (each appends only to results files it leases)
// without the store-wide single-writer lock of earlier revisions.
func (s *Store) LeasePath(id string) string {
	return filepath.Join(s.jobDir(id), ".lease")
}

// LeaseFree reports whether a job's execution lease is currently
// unheld. It is a point-in-time probe — the lease can be taken the
// instant after — so callers use it only to classify jobs (live on
// another manager vs orphaned); the authoritative guard is the
// non-blocking acquisition in the runner itself.
func (s *Store) LeaseFree(id string) bool {
	release, err := acquireLease(s.LeasePath(id))
	if err != nil {
		return false
	}
	release()
	return true
}
