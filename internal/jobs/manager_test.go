package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// stubReq is the test executor's request language: emit N deterministic
// lines, optionally failing or blocking at a given point.
type stubReq struct {
	N      int `json:"n"`
	FailAt int `json:"failAt,omitempty"` // fail before emitting this index (-1 = never)
	WaitAt int `json:"waitAt,omitempty"` // block at this index until gate or ctx (-1 = never)
}

// stubLine is the deterministic record for point i: identical whatever
// offset the executor starts at, like the sweep engine's items.
func stubLine(i int) []byte {
	return []byte(fmt.Sprintf("{\"i\":%d}\n", i))
}

// stubExec returns a deterministic Executor over stubReq. gate, if
// non-nil, unblocks a WaitAt point.
func stubExec(gate chan struct{}) Executor {
	return func(ctx context.Context, request []byte, offset int, start func(int) error, emit func([]byte) error) error {
		var req stubReq
		if err := json.Unmarshal(request, &req); err != nil {
			return err
		}
		if err := start(req.N); err != nil {
			return err
		}
		for i := offset; i < req.N; i++ {
			if req.FailAt != 0 && i == req.FailAt {
				return fmt.Errorf("stub: induced failure at point %d", i)
			}
			if req.WaitAt != 0 && i == req.WaitAt {
				select {
				case <-gate:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			if err := emit(stubLine(i)); err != nil {
				return err
			}
		}
		return nil
	}
}

func stubNormalize(request []byte) ([]byte, int, error) {
	var req stubReq
	if err := json.Unmarshal(request, &req); err != nil {
		return nil, 0, err
	}
	canonical, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	return canonical, req.N, nil
}

func newTestManager(t *testing.T, dir string, gate chan struct{}) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Dir:             dir,
		MaxConcurrent:   2,
		CheckpointEvery: 4,
		Exec:            stubExec(gate),
		Normalize:       stubNormalize,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// wantLines is the full expected results file for an n-point job.
func wantLines(n int) []byte {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		b.Write(stubLine(i))
	}
	return b.Bytes()
}

func TestJobRunsToCompletion(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	meta, created, err := m.Submit([]byte(`{"n": 10}`))
	if err != nil || !created {
		t.Fatalf("submit: %v (created %v)", err, created)
	}
	if meta.State != Pending || meta.Total != 10 {
		t.Fatalf("submitted meta %+v", meta)
	}
	final, err := m.Wait(waitCtx(t), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.Completed != 10 {
		t.Fatalf("final meta %+v", final)
	}
	data, err := os.ReadFile(m.store.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantLines(10)) {
		t.Errorf("results file:\n%s\nwant:\n%s", data, wantLines(10))
	}
}

// TestJobDedupe pins the content key: resubmitting an identical
// request — even with different whitespace — returns the same job,
// while a different request gets its own.
func TestJobDedupe(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	a, created, err := m.Submit([]byte(`{"n": 6}`))
	if err != nil || !created {
		t.Fatalf("first submit: %v (created %v)", err, created)
	}
	b, created, err := m.Submit([]byte(`{ "n":6 }`))
	if err != nil {
		t.Fatal(err)
	}
	if created || b.ID != a.ID {
		t.Errorf("identical request created a new job: %+v vs %+v", b, a)
	}
	c, created, err := m.Submit([]byte(`{"n": 7}`))
	if err != nil || !created {
		t.Fatalf("distinct submit: %v (created %v)", err, created)
	}
	if c.ID == a.ID {
		t.Error("distinct requests share a job id")
	}
	// Dedupe holds across restarts and terminal states too.
	if _, err := m.Wait(waitCtx(t), a.ID); err != nil {
		t.Fatal(err)
	}
	again, created, err := m.Submit([]byte(`{"n": 6}`))
	if err != nil {
		t.Fatal(err)
	}
	if created || again.State != Done {
		t.Errorf("resubmitting a done job should return it: %+v", again)
	}
}

func TestJobCancelWhileRunning(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, t.TempDir(), gate)
	meta, _, err := m.Submit([]byte(`{"n": 10, "waitAt": 6}`))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job has checkpointed some progress (blocked at 6,
	// checkpoint every 4 → completed 4 is durable).
	ctx := waitCtx(t)
	for {
		got, err := m.Get(meta.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Completed >= 4 {
			break
		}
		if ctx.Err() != nil {
			t.Fatalf("job never progressed: %+v", got)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(meta.ID); err != nil {
		t.Fatal(err)
	}
	final, err := m.Wait(ctx, meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Cancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	// The partial prefix is durable and well-formed.
	data, err := os.ReadFile(m.store.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantLines(6)) {
		t.Errorf("cancelled job results:\n%s\nwant the 6-line prefix", data)
	}
}

func TestJobCancelPending(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, t.TempDir(), gate)
	// Two blocking jobs saturate MaxConcurrent=2; the third stays
	// pending.
	for i := 0; i < 2; i++ {
		if _, _, err := m.Submit([]byte(fmt.Sprintf(`{"n": %d, "waitAt": 1}`, 4+i))); err != nil {
			t.Fatal(err)
		}
	}
	meta, _, err := m.Submit([]byte(`{"n": 9}`))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != Cancelled {
		t.Fatalf("pending cancel state %s, want cancelled immediately", got.State)
	}
	close(gate)
}

// TestJobCancelRacingCompletionStaysDone: a cancel that lands while
// the executor is emitting its final point must not turn a
// byte-complete job into a "cancelled" one — the results file holds
// every point, so the terminal state is Done.
func TestJobCancelRacingCompletionStaysDone(t *testing.T) {
	almostDone := make(chan struct{})
	release := make(chan struct{})
	exec := func(ctx context.Context, request []byte, offset int, start func(int) error, emit func([]byte) error) error {
		if err := start(3); err != nil {
			return err
		}
		for i := offset; i < 3; i++ {
			if i == 2 {
				close(almostDone)
				<-release // let the cancel land mid-final-point
			}
			if err := emit(stubLine(i)); err != nil {
				return err
			}
		}
		return nil // completes despite the cancelled context
	}
	m, err := NewManager(Config{Dir: t.TempDir(), MaxConcurrent: 1, CheckpointEvery: 2, Exec: exec, Normalize: stubNormalize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	meta, _, err := m.Submit([]byte(`{"n": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	<-almostDone
	if _, err := m.Cancel(meta.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	final, err := m.Wait(waitCtx(t), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.Completed != 3 {
		t.Errorf("complete job finished as %+v, want done with 3 points", final)
	}
	data, err := os.ReadFile(m.store.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantLines(3)) {
		t.Errorf("results:\n%q\nwant all 3 lines", data)
	}
}

func TestJobFailureRecordsError(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	meta, _, err := m.Submit([]byte(`{"n": 10, "failAt": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Wait(waitCtx(t), meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Failed || !strings.Contains(final.Error, "induced failure") {
		t.Fatalf("final meta %+v", final)
	}
	if final.Completed != 7 {
		t.Errorf("completed %d, want the durable 7-point prefix", final.Completed)
	}
}

// TestJobResumeAfterKillMidChunk is the durability acceptance test:
// a job killed mid-chunk — durable prefix plus a torn half-line tail,
// meta still saying "running" — is recovered by the next manager and
// its final results file is byte-identical to an uninterrupted run.
func TestJobResumeAfterKillMidChunk(t *testing.T) {
	// Uninterrupted reference run.
	refDir := t.TempDir()
	ref := newTestManager(t, refDir, nil)
	refMeta, _, err := ref.Submit([]byte(`{"n": 11}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Wait(waitCtx(t), refMeta.ID); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref.store.ResultsPath(refMeta.ID))
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate the killed state: same request, 5 durable lines, a torn
	// tail from line 6, meta frozen mid-execution.
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	canonical, _, err := stubNormalize([]byte(`{"n": 11}`))
	if err != nil {
		t.Fatal(err)
	}
	id := IDFor(canonical)
	if id != refMeta.ID {
		t.Fatalf("content key differs across stores: %s vs %s", id, refMeta.ID)
	}
	killed := Meta{ID: id, State: Running, Total: 11, Completed: 4, CreatedAt: 1}
	if err := store.Create(killed, canonical); err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, wantLines(5)...), []byte(`{"i":5`)...)
	if err := os.WriteFile(store.ResultsPath(id), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, dir, nil)
	final, err := m.Wait(waitCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.Completed != 11 {
		t.Fatalf("resumed meta %+v", final)
	}
	got, err := os.ReadFile(store.ResultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed results differ from uninterrupted run:\n%q\nwant:\n%q", got, want)
	}
}

// TestStoreRecoveryTruncatesTornTail pins OpenResults: the resume
// offset counts only complete lines and the torn tail is gone.
func TestStoreRecoveryTruncatesTornTail(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "job-feedbeef", State: Running}
	if err := store.Create(meta, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, wantLines(3)...), []byte("{\"i\":3,\"x")...)
	if err := os.WriteFile(store.ResultsPath(meta.ID), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	f, lines, err := store.OpenResults(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if lines != 3 {
		t.Errorf("recovered offset %d, want 3", lines)
	}
	data, err := os.ReadFile(store.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantLines(3)) {
		t.Errorf("torn tail survived recovery: %q", data)
	}
	// Appends continue where the complete prefix ends.
	if err := f.Append(stubLine(3)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(store.ResultsPath(meta.ID))
	if !bytes.Equal(data, wantLines(4)) {
		t.Errorf("append after recovery: %q", data)
	}
}

// TestManagerRecoveryRequeuesRunning: a meta left "running" by a dead
// process is requeued pending on load, and pending jobs stay queued.
func TestManagerRecoveryRequeuesRunning(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, state := range []State{Running, Pending, Done} {
		canonical, _, err := stubNormalize([]byte(fmt.Sprintf(`{"n": %d}`, 3+i)))
		if err != nil {
			t.Fatal(err)
		}
		meta := Meta{ID: IDFor(canonical), State: state, Total: 3 + i, CreatedAt: int64(i)}
		if state == Done {
			meta.Completed = meta.Total
		}
		if err := store.Create(meta, canonical); err != nil {
			t.Fatal(err)
		}
		if state == Done {
			if err := os.WriteFile(store.ResultsPath(meta.ID), wantLines(meta.Total), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := newTestManager(t, dir, nil)
	for _, meta := range m.List() {
		final := meta
		if !meta.State.Terminal() {
			if final, err = m.Wait(waitCtx(t), meta.ID); err != nil {
				t.Fatal(err)
			}
		}
		if final.State != Done || final.Completed != final.Total {
			t.Errorf("job %s finished as %+v", meta.ID, final)
		}
	}
	if got := len(m.List()); got != 3 {
		t.Errorf("recovered %d jobs, want 3", got)
	}
}

// TestStreamResultsFollowsAndResumes: a follower sees checkpointed
// lines while the job runs and the stream ends at the terminal state;
// a second read with an offset returns exactly the suffix.
func TestStreamResultsFollowsAndResumes(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, t.TempDir(), gate)
	meta, _, err := m.Submit([]byte(`{"n": 10, "waitAt": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	type streamed struct {
		data []byte
		meta Meta
		err  error
	}
	got := make(chan streamed, 1)
	go func() {
		var buf bytes.Buffer
		final, err := m.StreamResults(waitCtx(t), meta.ID, 0, func(line []byte) error {
			buf.Write(line)
			if buf.Len() == len(wantLines(8)) {
				close(gate) // unblock the tail once the prefix arrived
			}
			return nil
		})
		got <- streamed{buf.Bytes(), final, err}
	}()
	res := <-got
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.meta.State != Done {
		t.Fatalf("stream ended in state %s", res.meta.State)
	}
	if !bytes.Equal(res.data, wantLines(10)) {
		t.Errorf("followed stream:\n%q\nwant all 10 lines", res.data)
	}

	var tail bytes.Buffer
	if _, err := m.StreamResults(waitCtx(t), meta.ID, 7, func(line []byte) error {
		tail.Write(line)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, stubLine(7)...), append(stubLine(8), stubLine(9)...)...)
	if !bytes.Equal(tail.Bytes(), want) {
		t.Errorf("offset stream:\n%q\nwant:\n%q", tail.Bytes(), want)
	}
}

func TestJobDelete(t *testing.T) {
	m := newTestManager(t, t.TempDir(), nil)
	meta, _, err := m.Submit([]byte(`{"n": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(waitCtx(t), meta.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete(meta.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(meta.ID); err != ErrNotFound {
		t.Errorf("deleted job still known: %v", err)
	}
	if _, err := os.Stat(filepath.Join(m.store.Dir(), meta.ID)); !os.IsNotExist(err) {
		t.Errorf("deleted job directory still on disk: %v", err)
	}
	// And the id is submittable again.
	again, created, err := m.Submit([]byte(`{"n": 5}`))
	if err != nil || !created || again.ID != meta.ID {
		t.Errorf("resubmission after delete: %+v created=%v err=%v", again, created, err)
	}
}
