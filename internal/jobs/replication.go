package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
)

// ReplicationSink receives every durable mutation of the job store so
// a fleet of nodes can hold quorum-replicated copies of each job with
// no shared filesystem. The Manager calls it synchronously at exactly
// the points where the local disk state becomes durable:
//
//   - JobCreated after the job directory (request + initial meta) is
//     fsynced: a submission is only acknowledged to the client once the
//     sink accepts it, so an acked job survives the loss of this node.
//   - Checkpoint after every results flush (results.ndjson + sidecar
//     fsynced, meta.json renamed): `lines` carries the raw bytes of the
//     result lines [from, from+n) appended since the previous
//     checkpoint, and may be empty for a meta-only update (state
//     transitions). The checkpoint does not count as acknowledged —
//     and job execution does not proceed past it — until the sink
//     returns nil, which is where a write quorum is enforced.
//   - JobRemoved before the local directory is deleted: a deletion the
//     sink rejects leaves the job in place everywhere.
//
// A nil sink (single-node mode) costs nothing: no buffering, no extra
// allocation on the emit path. Terminal-state meta updates are
// replicated best-effort (see Manager.finish): a lost terminal meta is
// safe because a peer resuming the job re-executes zero remaining
// points and reaches the same terminal state with the same bytes.
type ReplicationSink interface {
	JobCreated(meta Meta, request []byte) error
	Checkpoint(id string, meta Meta, from int, lines []byte) error
	JobRemoved(id string) error
}

// ReplicaGapError reports an ApplyReplicated whose `from` offset lies
// beyond the replica's durable line count: the replica missed an
// earlier checkpoint (it was down, or a create never reached it) and
// needs the leader to backfill from Have before this write can land.
type ReplicaGapError struct {
	Have, Want int
}

func (e *ReplicaGapError) Error() string {
	return fmt.Sprintf("jobs: replica has %d result lines, checkpoint starts at %d", e.Have, e.Want)
}

// ApplyReplicated lands replicated result lines [from, from+k) plus
// the accompanying meta on this node's store, enforcing the replica
// invariant: the results file is always a byte prefix of the job's
// canonical line stream.
//
//   - A file shorter than `from` is a gap (*ReplicaGapError): the
//     leader must backfill from the replica's count.
//   - A file longer than `from` is rolled back to `from` lines first.
//     Everything beyond a quorum-acknowledged checkpoint is unacked
//     state — a dead leader's un-replicated suffix — and, because
//     point content is deterministic, the bytes being truncated are
//     identical to the bytes the current leader will re-deliver.
//   - The job's execution lease must be free: a manager mid-shutdown
//     (a just-fenced leader) may still hold it, in which case the
//     caller retries (ErrLeaseHeld).
//
// Lines are fsynced (results before sidecar) before the meta lands, so
// a crash mid-apply leaves the standard recoverable states OpenResults
// already handles. Returns the new durable line count.
func (s *Store) ApplyReplicated(id string, from int, lines []byte, meta Meta) (int, error) {
	if len(lines) > 0 && lines[len(lines)-1] != '\n' {
		return 0, errors.New("jobs: replicated lines must end in a newline")
	}
	release, err := acquireLease(s.LeasePath(id))
	if err != nil {
		return 0, err
	}
	defer release()

	rf, n, err := s.OpenResults(id)
	if err != nil {
		return 0, err
	}
	if n < from {
		rf.Close()
		return n, &ReplicaGapError{Have: n, Want: from}
	}
	if n > from {
		rf.Close()
		if err := s.TruncateResults(id, from); err != nil {
			return 0, err
		}
		if rf, n, err = s.OpenResults(id); err != nil {
			return 0, err
		}
		if n != from {
			rf.Close()
			return 0, fmt.Errorf("jobs: truncate to %d lines left %d", from, n)
		}
	}
	count := n
	for rest := lines; len(rest) > 0; {
		i := bytes.IndexByte(rest, '\n')
		if err := rf.Append(rest[:i+1]); err != nil {
			rf.Close()
			return 0, err
		}
		count++
		rest = rest[i+1:]
	}
	if err := rf.Sync(); err != nil {
		rf.Close()
		return 0, err
	}
	if err := rf.Close(); err != nil {
		return 0, storage(err)
	}
	if err := s.WriteMeta(meta); err != nil {
		return 0, err
	}
	return count, nil
}

// TruncateResults truncates a job's results file to its first `keep`
// lines — the quorum-acknowledged prefix a replica rolls back to when
// a new leader's checkpoint starts behind the replica's local count.
// Only the ndjson file is cut here; the checksum sidecar is reconciled
// by the next OpenResults (its extra entries are dropped the same way
// torn-tail recovery drops them).
func (s *Store) TruncateResults(id string, keep int) error {
	f, err := os.OpenFile(s.ResultsPath(id), os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		if keep == 0 {
			return nil
		}
		return &ReplicaGapError{Have: 0, Want: keep}
	}
	if err != nil {
		return storage(err)
	}
	defer f.Close()
	off, lines, err := lineOffset(f, keep)
	if err != nil {
		return err
	}
	if lines < keep {
		return &ReplicaGapError{Have: lines, Want: keep}
	}
	if err := f.Truncate(off); err != nil {
		return storage(err)
	}
	return storage(f.Sync())
}

// ReadResultLines returns the raw bytes of result lines [from, to) of
// a job's durable results file — the backfill payload a leader streams
// to a lagging replica. Only complete lines are returned; a file with
// fewer than `to` lines is an error (the caller asked for bytes the
// leader claims are durable).
func (s *Store) ReadResultLines(id string, from, to int) ([]byte, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("jobs: bad line range [%d, %d)", from, to)
	}
	f, err := os.Open(s.ResultsPath(id))
	if err != nil {
		return nil, storage(err)
	}
	defer f.Close()
	start, lines, err := lineOffset(f, from)
	if err != nil {
		return nil, err
	}
	if lines < from {
		return nil, fmt.Errorf("jobs: results file has %d lines, range starts at %d", lines, from)
	}
	end, lines, err := lineOffset(f, to)
	if err != nil {
		return nil, err
	}
	if lines < to {
		return nil, fmt.Errorf("jobs: results file has %d lines, range ends at %d", lines, to)
	}
	buf := make([]byte, end-start)
	if _, err := f.ReadAt(buf, start); err != nil {
		return nil, storage(err)
	}
	return buf, nil
}

// lineOffset returns the byte offset just after line number n (0-based
// exclusive: offset of the start of line n), plus the number of
// complete lines found if the file holds fewer than n.
func lineOffset(f *os.File, n int) (off int64, lines int, err error) {
	if n == 0 {
		return 0, 0, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, storage(err)
	}
	buf := make([]byte, 64<<10)
	var pos int64
	for {
		k, rerr := f.Read(buf)
		chunk := buf[:k]
		for {
			i := bytes.IndexByte(chunk, '\n')
			if i < 0 {
				break
			}
			pos += int64(i) + 1
			lines++
			chunk = chunk[i+1:]
			if lines == n {
				return pos, lines, nil
			}
		}
		pos += int64(len(chunk))
		if rerr == io.EOF {
			return pos, lines, nil
		}
		if rerr != nil {
			return 0, 0, storage(rerr)
		}
	}
}
