// Package jobs is the durable sweep-job subsystem behind /v1/jobs:
// sweeps are submitted as content-keyed jobs, executed by a bounded
// job scheduler over a single shared, priority-aware evaluation pool,
// and checkpointed to disk every few completed points so that a
// restarted server resumes a job mid-sweep — bitwise identically,
// thanks to the deterministic per-point seeding of the sweep engine.
//
// The package is deliberately ignorant of what a sweep is: the
// Manager executes opaque request bytes through an injected Executor
// and persists the NDJSON lines it emits, so internal/api can supply
// the sweep engine without a dependency cycle. DESIGN.md, "Job
// subsystem", documents the state machine, the checkpoint format and
// the resume semantics.
package jobs

import (
	"context"
	"sync"
)

// Priority orders admission to the shared evaluation pool. Lower
// values win: an interactive /v1/sweep waiter is admitted before any
// queued background-job point, whatever their arrival order.
type Priority int

const (
	// Interactive is the priority of synchronous sweep requests (a
	// client is blocked on the answer).
	Interactive Priority = iota
	// Batch is the priority of background job points: they soak up
	// whatever capacity interactive traffic leaves idle.
	Batch
	numPriorities
)

// Pool is the single shared, bounded, priority-aware evaluation pool:
// a counting semaphore over the service's worker budget whose wait
// queues are drained in priority order (FIFO within a priority). It
// replaces the per-request goroutine fan-out the sweep engine used to
// spawn — every in-flight sweep, synchronous or job, draws its
// per-point concurrency from this one budget.
//
// Invariant: a waiter only exists while the budget is exhausted, and
// a released token is handed straight to the highest-priority waiter
// (the in-use count never dips while someone is queued), so capacity
// is never idle under load and Batch work cannot starve Interactive
// work.
type Pool struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	waiters  [numPriorities][]chan struct{}
}

// NewPool returns a pool with the given concurrency budget (minimum 1).
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{capacity: capacity}
}

// Capacity returns the pool's concurrency budget.
func (p *Pool) Capacity() int { return p.capacity }

// Acquire blocks until one budget token is granted or ctx is done.
// Tokens are granted in priority order, FIFO within a priority. A
// dead ctx fails even when budget is idle, so a cancelled sweep's
// feeder stops dispatching instead of riding the uncontended fast
// path through the rest of its grid.
func (p *Pool) Acquire(ctx context.Context, pr Priority) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.mu.Lock()
	if p.inUse < p.capacity && !p.hasWaiters() {
		p.inUse++
		p.mu.Unlock()
		return nil
	}
	w := make(chan struct{})
	p.waiters[pr] = append(p.waiters[pr], w)
	p.mu.Unlock()
	select {
	case <-w:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		removed := p.remove(pr, w)
		p.mu.Unlock()
		if !removed {
			// The grant raced the cancellation: the token is ours, so
			// hand it back to the next waiter.
			p.Release()
		}
		return ctx.Err()
	}
}

// TryAcquire grants a token only if budget is idle right now AND no
// one is queued — opportunistic inner parallelism (a point fanning its
// Monte-Carlo runs out) never starves queued grid points.
func (p *Pool) TryAcquire() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inUse < p.capacity && !p.hasWaiters() {
		p.inUse++
		return true
	}
	return false
}

// Release returns one token, handing it to the highest-priority
// waiter if any.
func (p *Pool) Release() {
	p.mu.Lock()
	for pr := range p.waiters {
		if len(p.waiters[pr]) > 0 {
			w := p.waiters[pr][0]
			p.waiters[pr] = p.waiters[pr][1:]
			p.mu.Unlock()
			close(w) // token transferred, inUse unchanged
			return
		}
	}
	p.inUse--
	p.mu.Unlock()
}

// hasWaiters reports whether any queue is non-empty (p.mu held).
func (p *Pool) hasWaiters() bool {
	for pr := range p.waiters {
		if len(p.waiters[pr]) > 0 {
			return true
		}
	}
	return false
}

// remove unlinks w from its queue, reporting whether it was still
// queued (p.mu held). A false return means the token was already
// granted concurrently.
func (p *Pool) remove(pr Priority, w chan struct{}) bool {
	q := p.waiters[pr]
	for i := range q {
		if q[i] == w {
			p.waiters[pr] = append(q[:i], q[i+1:]...)
			return true
		}
	}
	return false
}
