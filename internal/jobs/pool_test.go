package jobs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestPoolCapacityBound(t *testing.T) {
	p := NewPool(2)
	ctx := context.Background()
	if err := p.Acquire(ctx, Interactive); err != nil {
		t.Fatal(err)
	}
	if !p.TryAcquire() {
		t.Fatal("second token should be free")
	}
	if p.TryAcquire() {
		t.Fatal("third token must be refused at capacity 2")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("released token should be reacquirable")
	}
}

// TestPoolPriorityOrder pins the scheduling contract: a released token
// goes to the interactive waiter even when a batch waiter queued
// first.
func TestPoolPriorityOrder(t *testing.T) {
	p := NewPool(1)
	ctx := context.Background()
	if err := p.Acquire(ctx, Interactive); err != nil {
		t.Fatal(err)
	}

	got := make(chan Priority, 2)
	var wg sync.WaitGroup
	acquire := func(pr Priority) {
		defer wg.Done()
		if err := p.Acquire(ctx, pr); err != nil {
			t.Error(err)
			return
		}
		got <- pr
		p.Release()
	}
	wg.Add(1)
	go acquire(Batch)
	// Wait until the batch waiter is queued before queueing the
	// interactive one, so arrival order is fixed.
	for queued := false; !queued; {
		p.mu.Lock()
		queued = len(p.waiters[Batch]) == 1
		p.mu.Unlock()
	}
	wg.Add(1)
	go acquire(Interactive)
	for queued := false; !queued; {
		p.mu.Lock()
		queued = len(p.waiters[Interactive]) == 1
		p.mu.Unlock()
	}

	p.Release()
	wg.Wait()
	close(got)
	if first := <-got; first != Interactive {
		t.Errorf("first grant went to priority %d, want Interactive", first)
	}
}

// TestPoolTryAcquireNeverStarvesWaiters: opportunistic extra tokens
// are refused while anyone is queued, even if capacity is nominally
// free for an instant.
func TestPoolTryAcquireNeverStarvesWaiters(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background(), Interactive); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := p.Acquire(context.Background(), Batch); err != nil {
			t.Error(err)
			return
		}
		p.Release()
	}()
	for queued := false; !queued; {
		p.mu.Lock()
		queued = len(p.waiters[Batch]) == 1
		p.mu.Unlock()
	}
	if p.TryAcquire() {
		t.Error("TryAcquire must refuse while a waiter is queued")
	}
	p.Release() // hand the token to the waiter
	<-done
	if !p.TryAcquire() {
		t.Error("token should be free after the waiter released it")
	}
	p.Release()
}

// TestPoolAcquireDeadContextOnIdlePool: a cancelled context must fail
// Acquire even when budget is free — the fast path may not outrun the
// cancellation check, or a disconnected client's sweep would keep
// dispatching its whole grid on an idle server.
func TestPoolAcquireDeadContextOnIdlePool(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx, Interactive); err == nil {
		t.Fatal("acquire on an idle pool must still honor a dead context")
	}
	if !p.TryAcquire() {
		t.Error("failed acquire must not consume budget")
	}
	p.Release()
}

func TestPoolAcquireCancelled(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background(), Interactive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Acquire(ctx, Batch); err == nil {
		t.Fatal("acquire should fail when the context dies first")
	}
	// The cancelled waiter must have unlinked itself: the release goes
	// back to the free budget, not to a ghost.
	p.Release()
	if !p.TryAcquire() {
		t.Error("token lost to a cancelled waiter")
	}
	p.Release()
}
