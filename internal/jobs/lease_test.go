package jobs

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// leaseManager is newTestManager with a caller-owned gate and a fast
// janitor, for the shared-store tests.
func leaseManager(t *testing.T, dir string, gate chan struct{}) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Dir:             dir,
		MaxConcurrent:   2,
		CheckpointEvery: 2,
		LeaseProbeEvery: 10 * time.Millisecond,
		Exec:            stubExec(gate),
		Normalize:       stubNormalize,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitState polls until the job reaches the wanted state on the given
// manager (the cross-manager paths are asynchronous: janitor probes,
// runner scheduling).
func waitState(t *testing.T, m *Manager, id string, want State) Meta {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		meta, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if meta.State == want {
			return meta
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, meta.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSharedStoreDisjointJobsConcurrent: two managers over ONE store
// directory execute disjoint jobs at the same time — the per-job
// leases that replaced the store-wide flock make the store a shared
// substrate, not a single-writer resource. Both jobs are observed
// simultaneously mid-execution (each blocked inside its executor)
// before either finishes.
func TestSharedStoreDisjointJobsConcurrent(t *testing.T) {
	dir := t.TempDir()
	gateA := make(chan struct{})
	gateB := make(chan struct{})
	m1 := leaseManager(t, dir, gateA)
	m2 := leaseManager(t, dir, gateB)

	metaA, created, err := m1.Submit([]byte(`{"n": 6, "waitAt": 3}`))
	if err != nil || !created {
		t.Fatalf("submit A: %v (created %v)", err, created)
	}
	metaB, created, err := m2.Submit([]byte(`{"n": 5, "waitAt": 2}`))
	if err != nil || !created {
		t.Fatalf("submit B: %v (created %v)", err, created)
	}
	// Both running at once, on one directory.
	waitState(t, m1, metaA.ID, Running)
	waitState(t, m2, metaB.ID, Running)
	close(gateA)
	close(gateB)
	if final, err := m1.Wait(waitCtx(t), metaA.ID); err != nil || final.State != Done || final.Completed != 6 {
		t.Fatalf("job A final %+v, err %v", final, err)
	}
	if final, err := m2.Wait(waitCtx(t), metaB.ID); err != nil || final.State != Done || final.Completed != 5 {
		t.Fatalf("job B final %+v, err %v", final, err)
	}
	for id, n := range map[string]int{metaA.ID: 6, metaB.ID: 5} {
		data, err := os.ReadFile(m1.store.ResultsPath(id))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, wantLines(n)) {
			t.Errorf("job %s results:\n%s\nwant:\n%s", id, data, wantLines(n))
		}
	}
}

// TestLeaseSingleExecutor: the same request submitted to two managers
// sharing a directory executes exactly once — the second manager
// adopts the on-disk job as a remote mirror, follows the holder's
// checkpoints, and reports the terminal state without ever appending
// to the results file itself.
func TestLeaseSingleExecutor(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	m1 := leaseManager(t, dir, gate)
	m2 := leaseManager(t, dir, nil)

	meta, created, err := m1.Submit([]byte(`{"n": 8, "waitAt": 4}`))
	if err != nil || !created {
		t.Fatalf("submit: %v (created %v)", err, created)
	}
	waitState(t, m1, meta.ID, Running)
	adopted, created, err := m2.Submit([]byte(`{"n": 8, "waitAt": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if created || adopted.ID != meta.ID {
		t.Fatalf("adoption created a new job: %+v (created %v)", adopted, created)
	}
	close(gate)
	if final, err := m1.Wait(waitCtx(t), meta.ID); err != nil || final.State != Done {
		t.Fatalf("holder final %+v, err %v", final, err)
	}
	// The mirror converges on the holder's terminal state via the
	// janitor, and the results file carries each line exactly once.
	mirror := waitState(t, m2, meta.ID, Done)
	if mirror.Completed != 8 {
		t.Fatalf("mirror meta %+v", mirror)
	}
	data, err := os.ReadFile(m2.store.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantLines(8)) {
		t.Errorf("results:\n%s\nwant:\n%s", data, wantLines(8))
	}
}

// TestLeaseTakeoverAfterHolderDeath: a job whose executing manager
// dies mid-run (lease released, disk state still "running") is taken
// over by a sibling manager watching the same directory, resumes from
// the last durable checkpoint, and finishes with a results file
// byte-identical to an uninterrupted run.
func TestLeaseTakeoverAfterHolderDeath(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	m1 := leaseManager(t, dir, gate)
	closed := make(chan struct{})
	close(closed) // m2's executor never blocks: resume runs straight through
	m2 := leaseManager(t, dir, closed)

	meta, created, err := m1.Submit([]byte(`{"n": 9, "waitAt": 5}`))
	if err != nil || !created {
		t.Fatalf("submit: %v (created %v)", err, created)
	}
	waitState(t, m1, meta.ID, Running)
	if adopted, created, err := m2.Submit([]byte(`{"n": 9, "waitAt": 5}`)); err != nil || created || adopted.ID != meta.ID {
		t.Fatalf("adopt: %+v (created %v, err %v)", adopted, created, err)
	}
	// The holder dies mid-job: Close cancels its executor, flushes the
	// durable prefix, leaves "running" on disk and releases the lease.
	m1.Close()
	// The sibling's janitor notices the orphaned lease, takes the job
	// over and resumes it from the durable offset.
	final := waitState(t, m2, meta.ID, Done)
	if final.Completed != 9 {
		t.Fatalf("final meta %+v", final)
	}
	data, err := os.ReadFile(m2.store.ResultsPath(meta.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, wantLines(9)) {
		t.Errorf("resumed results are not byte-identical:\n%s\nwant:\n%s", data, wantLines(9))
	}
}
