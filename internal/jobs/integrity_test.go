package jobs

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// appendResults runs n stub records through the integrity-tracked
// append path, leaving a valid results file and checksum sidecar.
func appendResults(t *testing.T, store *Store, id string, n int) {
	t.Helper()
	rf, lines, err := store.OpenResults(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := lines; i < n; i++ {
		if err := rf.Append(stubLine(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
}

// flipByte corrupts one byte of a file in place, avoiding newlines so
// the damage cannot masquerade as a torn tail.
func flipByte(t *testing.T, path string, offset int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[offset] == '\n' {
		t.Fatalf("offset %d is a newline; pick a byte inside a record", offset)
	}
	data[offset] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestResultsCorruptionDetected pins the integrity oracle: a byte
// flipped in the middle of a durable, attested record surfaces as
// ErrCorruptResults at the next open — not as a clean resume over
// poisoned data.
func TestResultsCorruptionDetected(t *testing.T) {
	store := newTestStore(t)
	id := "job-0dd0cafe"
	if err := store.Create(Meta{ID: id, State: Running}, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	appendResults(t, store, id, 5)

	// Flip a byte inside record 2 — mid-file, far from the tail that
	// newline-counting recovery already handles.
	flipByte(t, store.ResultsPath(id), len(wantLines(2))+4)

	rf, _, err := store.OpenResults(id)
	if err == nil {
		rf.Close()
		t.Fatal("mid-file corruption opened cleanly")
	}
	if !errors.Is(err, ErrCorruptResults) {
		t.Fatalf("corruption surfaced as %v, want ErrCorruptResults", err)
	}
	if !strings.Contains(err.Error(), "record 2") {
		t.Errorf("error does not name the corrupt record: %v", err)
	}
}

// TestResultsLegacySidecarBackfill: a results file from before the
// sidecar existed (or whose sums were lost) opens cleanly, gets its
// sums backfilled from the surviving lines, and is protected from
// then on.
func TestResultsLegacySidecarBackfill(t *testing.T) {
	store := newTestStore(t)
	id := "job-1e9ac000"
	if err := store.Create(Meta{ID: id, State: Running}, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.ResultsPath(id), wantLines(4), 0o644); err != nil {
		t.Fatal(err)
	}

	rf, lines, err := store.OpenResults(id)
	if err != nil {
		t.Fatalf("legacy store rejected: %v", err)
	}
	rf.Close()
	if lines != 4 {
		t.Fatalf("recovered %d lines, want 4", lines)
	}
	sums, err := os.ReadFile(store.SumsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4*sumRecordLen {
		t.Fatalf("backfilled sidecar is %d bytes, want %d", len(sums), 4*sumRecordLen)
	}

	// The backfilled sums are live: corruption is now detectable.
	flipByte(t, store.ResultsPath(id), 2)
	if _, _, err := store.OpenResults(id); !errors.Is(err, ErrCorruptResults) {
		t.Fatalf("corruption after backfill surfaced as %v, want ErrCorruptResults", err)
	}
}

// TestResultsSidecarTornTail: a sidecar that crashed mid-append (torn
// final record, or garbage where a record should be) is repaired from
// the results lines, never reported as corruption.
func TestResultsSidecarTornTail(t *testing.T) {
	store := newTestStore(t)
	id := "job-70a2caf0"
	if err := store.Create(Meta{ID: id, State: Running}, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	appendResults(t, store, id, 5)

	sums, err := os.ReadFile(store.SumsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	// Tear the sidecar mid-record 3 and append garbage.
	torn := append(append([]byte{}, sums[:3*sumRecordLen+4]...), "zzzz"...)
	if err := os.WriteFile(store.SumsPath(id), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	rf, lines, err := store.OpenResults(id)
	if err != nil {
		t.Fatalf("torn sidecar rejected: %v", err)
	}
	rf.Close()
	if lines != 5 {
		t.Fatalf("recovered %d lines, want 5", lines)
	}
	repaired, err := os.ReadFile(store.SumsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, sums) {
		t.Errorf("repaired sidecar differs from the original:\n%q\nwant:\n%q", repaired, sums)
	}
}

// TestResultsSidecarExtraEntries: after a crash that tore the results
// tail but landed its sum, the extra sidecar entries are dropped along
// with the torn line — a false "corruption" here would brick every
// job that crashed at the wrong instant.
func TestResultsSidecarExtraEntries(t *testing.T) {
	store := newTestStore(t)
	id := "job-7ea27a11"
	if err := store.Create(Meta{ID: id, State: Running}, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	appendResults(t, store, id, 5)
	// Tear record 4 out of the results file; its sum stays behind.
	if err := os.Truncate(store.ResultsPath(id), int64(len(wantLines(4))+3)); err != nil {
		t.Fatal(err)
	}

	rf, lines, err := store.OpenResults(id)
	if err != nil {
		t.Fatalf("stale sidecar entries rejected the open: %v", err)
	}
	rf.Close()
	if lines != 4 {
		t.Fatalf("recovered %d lines, want 4", lines)
	}
	sums, err := os.ReadFile(store.SumsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4*sumRecordLen {
		t.Fatalf("sidecar kept %d bytes, want %d (extras dropped)", len(sums), 4*sumRecordLen)
	}
}

// TestManagerQuarantinesCorruptJob: recovery of a corrupt job marks
// THAT job failed with the typed error and nothing else — submissions
// keep flowing through the same manager.
func TestManagerQuarantinesCorruptJob(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	canonical, _, err := stubNormalize([]byte(`{"n": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	id := IDFor(canonical)
	// A job that died mid-run with 5 durable, attested records...
	if err := store.Create(Meta{ID: id, State: Running, Total: 8, Completed: 5, CreatedAt: 1}, canonical); err != nil {
		t.Fatal(err)
	}
	appendResults(t, store, id, 5)
	// ...one of which rotted on the media before the restart.
	flipByte(t, store.ResultsPath(id), len(wantLines(3))+4)

	m := newTestManager(t, dir, nil)
	final, err := m.Wait(waitCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Failed {
		t.Fatalf("corrupt job state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "corrupt results file") {
		t.Errorf("failure not typed as corruption: %q", final.Error)
	}

	// The quarantine is per-job: the manager still runs fresh work.
	meta, created, err := m.Submit([]byte(`{"n": 3}`))
	if err != nil || !created {
		t.Fatalf("submit after quarantine: %v (created %v)", err, created)
	}
	if final, err := m.Wait(waitCtx(t), meta.ID); err != nil || final.State != Done {
		t.Fatalf("job after quarantine: %+v, %v", final, err)
	}
}

// TestResultsAppendHookCorruptsMedia wires the fault-injection hook
// end to end: the hook damages bytes on their way to disk, the job
// itself completes (the executor saw clean lines), and the damage is
// caught by the next recovery's integrity scan.
func TestResultsAppendHookCorruptsMedia(t *testing.T) {
	dir := t.TempDir()
	hit := 0
	m, err := NewManager(Config{
		Dir:             dir,
		CheckpointEvery: 2,
		Exec:            stubExec(nil),
		Normalize:       stubNormalize,
		ResultsAppendHook: func(line []byte) []byte {
			hit++
			if hit != 3 {
				return line
			}
			out := append([]byte(nil), line...)
			out[1] ^= 0x04
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	meta, _, err := m.Submit([]byte(`{"n": 6}`))
	if err != nil {
		t.Fatal(err)
	}
	if final, werr := m.Wait(waitCtx(t), meta.ID); werr != nil || final.State != Done {
		t.Fatalf("job under media-corruption hook: %+v, %v", final, werr)
	}
	if _, _, err := m.Store().OpenResults(meta.ID); !errors.Is(err, ErrCorruptResults) {
		t.Fatalf("hook damage surfaced as %v, want ErrCorruptResults", err)
	}
}

// TestManagerQueueBound: MaxQueued sheds only brand-new submissions —
// dedupes pass through — and Stats reports the saturation.
func TestManagerQueueBound(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m, err := NewManager(Config{
		Dir:           t.TempDir(),
		MaxConcurrent: 1,
		MaxQueued:     1,
		Exec:          stubExec(gate),
		Normalize:     stubNormalize,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Job A blocks at point 1 and holds the single runner.
	blocked, _, err := m.Submit([]byte(`{"n": 3, "waitAt": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if meta, err := m.Get(blocked.ID); err == nil && meta.State == Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Job B fills the queue.
	queued, _, err := m.Submit([]byte(`{"n": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Queued != 1 || st.Running != 1 || !st.Saturated {
		t.Fatalf("stats at saturation: %+v", st)
	}
	// Job C is new: shed with the typed error, not created.
	if _, _, err := m.Submit([]byte(`{"n": 4}`)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submission over the bound: %v, want ErrQueueFull", err)
	}
	if _, err := m.Get(IDFor(mustCanonical(t, `{"n": 4}`))); !errors.Is(err, ErrNotFound) {
		t.Fatal("shed submission left a job behind")
	}
	// Resubmitting B dedupes despite the full queue.
	if meta, created, err := m.Submit([]byte(`{"n": 2}`)); err != nil || created || meta.ID != queued.ID {
		t.Fatalf("dedupe under saturation: %+v created=%v err=%v", meta, created, err)
	}

	gate <- struct{}{} // unblock A; B drains behind it
	for _, id := range []string{blocked.ID, queued.ID} {
		if final, err := m.Wait(waitCtx(t), id); err != nil || final.State != Done {
			t.Fatalf("job %s after saturation: %+v, %v", id, final, err)
		}
	}
}

func mustCanonical(t *testing.T, request string) []byte {
	t.Helper()
	canonical, _, err := stubNormalize([]byte(request))
	if err != nil {
		t.Fatal(err)
	}
	return canonical
}
