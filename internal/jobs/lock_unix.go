//go:build unix

package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/.lock, so two
// server processes pointed at the same -jobs-dir fail fast instead of
// both appending to the same results files. The kernel releases the
// lock when the process dies, so a kill -9 never leaves a stale lock
// behind (unlike a pid file).
func lockDir(dir string) (release func(), err error) {
	f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: directory %s is owned by another process: %w", dir, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
