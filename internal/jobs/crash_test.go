package jobs

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// This file is the crash-at-every-fsync-boundary torture suite: a
// checkpoint flush makes three files durable in a fixed order —
// results.ndjson, then results.sum, then meta.json (atomic rename) —
// and a kill can land between (or inside) any pair of those fsyncs.
// For EVERY checkpoint boundary of a reference job and every
// achievable crash state at that boundary, the test rebuilds the
// post-crash disk image byte-for-byte, recovers with a fresh Manager,
// and asserts the pinned outcome: the job resumes and finishes with a
// results file byte-identical to an uninterrupted run (repair /
// truncate), or — when a durably-summed byte was altered — the job is
// quarantined with ErrCorruptResults. Never silent corruption.

// crashState is one post-crash disk image at a checkpoint boundary c
// (c lines were durably flushed by the previous checkpoint; the crash
// interrupts the flush that would have made `next` lines durable).
type crashState struct {
	name string
	// build mutates the job dir (holding a completed reference run)
	// into the post-crash image. ref is the full reference results
	// bytes; c and next the surrounding boundaries.
	build func(t *testing.T, dir string, ref []byte, c, next int)
	// corrupt marks states that must quarantine instead of resume.
	corrupt bool
}

// refSums returns the sidecar bytes for the first n lines of ref.
func refSums(t *testing.T, ref []byte, n int) []byte {
	t.Helper()
	var out bytes.Buffer
	rest := ref
	for i := 0; i < n; i++ {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			t.Fatalf("reference has fewer than %d lines", n)
		}
		fmt.Fprintf(&out, "%08x\n", crc32.Checksum(rest[:nl+1], crc32.MakeTable(crc32.Castagnoli)))
		rest = rest[nl+1:]
	}
	return out.Bytes()
}

// prefixLines returns the bytes of the first n lines of ref.
func prefixLines(t *testing.T, ref []byte, n int) []byte {
	t.Helper()
	rest, off := ref, 0
	for i := 0; i < n; i++ {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			t.Fatalf("reference has fewer than %d lines", n)
		}
		off += nl + 1
		rest = rest[nl+1:]
	}
	return ref[:off]
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCrashAtEveryFsyncBoundary(t *testing.T) {
	const n, every = 12, 4

	// Reference run: an uninterrupted job over the same store layout.
	refDir := t.TempDir()
	refMgr, err := NewManager(Config{
		Dir: refDir, CheckpointEvery: every,
		Exec: stubExec(nil), Normalize: stubNormalize,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := []byte(fmt.Sprintf(`{"n": %d}`, n))
	meta, _, err := refMgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	id := meta.ID
	if meta, err = refMgr.Wait(waitCtx(t), id); err != nil || meta.State != Done {
		t.Fatalf("reference job: %+v, %v", meta, err)
	}
	refMgr.Close()
	ref, err := os.ReadFile(filepath.Join(refDir, id, "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	refMetaRunning := func(completed int) []byte {
		return []byte(fmt.Sprintf(`{"id":%q,"state":"running","total":%d,"completed":%d,"createdAt":1,"startedAt":2}`, id, n, completed))
	}
	request, err := os.ReadFile(filepath.Join(refDir, id, "request.json"))
	if err != nil {
		t.Fatal(err)
	}

	// The achievable crash states between each pair of fsyncs. The
	// flush order is results → sums → meta; without fsync barriers in
	// between, the media may hold any prefix of that sequence, plus
	// torn in-progress writes of the file being flushed.
	states := []crashState{
		{
			// Killed mid-results-write: the batch's last line is torn.
			// Sums still describe the previous boundary. Recovery must
			// truncate the torn tail and resume from the last complete
			// line.
			name: "torn-results-tail",
			build: func(t *testing.T, dir string, ref []byte, c, next int) {
				lines := prefixLines(t, ref, next)
				writeFile(t, filepath.Join(dir, "results.ndjson"), lines[:len(lines)-3])
				writeFile(t, filepath.Join(dir, "results.sum"), refSums(t, ref, c))
			},
		},
		{
			// Killed between the results fsync and the sums fsync: lines
			// are durable, the sidecar lags a whole batch. Recovery must
			// backfill the missing sidecar entries from the (verified
			// complete) lines.
			name: "results-ahead-of-sums",
			build: func(t *testing.T, dir string, ref []byte, c, next int) {
				writeFile(t, filepath.Join(dir, "results.ndjson"), prefixLines(t, ref, next))
				writeFile(t, filepath.Join(dir, "results.sum"), refSums(t, ref, c))
			},
		},
		{
			// Killed mid-sums-write: the sidecar's last record is torn.
			name: "torn-sums-tail",
			build: func(t *testing.T, dir string, ref []byte, c, next int) {
				writeFile(t, filepath.Join(dir, "results.ndjson"), prefixLines(t, ref, next))
				sums := refSums(t, ref, next)
				writeFile(t, filepath.Join(dir, "results.sum"), sums[:len(sums)-4])
			},
		},
		{
			// The page cache persisted the sidecar ahead of a torn
			// results tail (no barrier between the two writes): the
			// sidecar vouches for a line the results file lost. Recovery
			// must drop the unmatched sidecar entries with the tail.
			name: "sums-ahead-of-torn-results",
			build: func(t *testing.T, dir string, ref []byte, c, next int) {
				lines := prefixLines(t, ref, next)
				writeFile(t, filepath.Join(dir, "results.ndjson"), lines[:len(lines)-3])
				writeFile(t, filepath.Join(dir, "results.sum"), refSums(t, ref, next))
			},
		},
		{
			// Killed between the sums fsync and the meta rename: data
			// complete at `next`, meta still claims c. Recovery trusts
			// the file (resume offset comes from the verified line
			// count, not the stale meta).
			name: "meta-behind-data",
			build: func(t *testing.T, dir string, ref []byte, c, next int) {
				writeFile(t, filepath.Join(dir, "results.ndjson"), prefixLines(t, ref, next))
				writeFile(t, filepath.Join(dir, "results.sum"), refSums(t, ref, next))
			},
		},
		{
			// Killed mid-meta-rename: the atomic-write temp file
			// survives next to a stale meta. Recovery must ignore it.
			name: "meta-tmp-orphan",
			build: func(t *testing.T, dir string, ref []byte, c, next int) {
				writeFile(t, filepath.Join(dir, "results.ndjson"), prefixLines(t, ref, next))
				writeFile(t, filepath.Join(dir, "results.sum"), refSums(t, ref, next))
				writeFile(t, filepath.Join(dir, "meta.json-1234.tmp"), []byte(`{"half":`))
			},
		},
		{
			// A durably-summed byte later changed on the media (bit rot,
			// misdirected write). This is NOT recoverable by truncation:
			// the job must quarantine with ErrCorruptResults, never
			// resume over the poisoned prefix.
			name:    "durable-byte-flipped",
			corrupt: true,
			build: func(t *testing.T, dir string, ref []byte, c, next int) {
				lines := append([]byte(nil), prefixLines(t, ref, next)...)
				if next == 0 {
					t.Skip("no durable byte to flip at boundary 0")
				}
				lines[2] ^= 0x04
				writeFile(t, filepath.Join(dir, "results.ndjson"), lines)
				writeFile(t, filepath.Join(dir, "results.sum"), refSums(t, ref, next))
			},
		},
	}

	for c := 0; c <= n; c += every {
		next := c + every
		if next > n {
			next = n
		}
		if next == c {
			continue
		}
		for _, st := range states {
			t.Run(fmt.Sprintf("boundary-%d/%s", c, st.name), func(t *testing.T) {
				dir := t.TempDir()
				jobDir := filepath.Join(dir, id)
				if err := os.MkdirAll(jobDir, 0o755); err != nil {
					t.Fatal(err)
				}
				writeFile(t, filepath.Join(jobDir, "request.json"), request)
				writeFile(t, filepath.Join(jobDir, "meta.json"), refMetaRunning(c))
				st.build(t, jobDir, ref, c, next)

				m := newTestManager(t, dir, nil)
				meta, err := m.Wait(waitCtx(t), id)
				if err != nil {
					t.Fatalf("wait: %v", err)
				}
				if st.corrupt {
					if meta.State != Failed {
						t.Fatalf("corrupt state recovered to %s, want quarantine (failed)", meta.State)
					}
					if meta.Error == "" || !bytes.Contains([]byte(meta.Error), []byte("corrupt")) {
						t.Fatalf("quarantined job's error does not name the corruption: %q", meta.Error)
					}
					return
				}
				if meta.State != Done {
					t.Fatalf("recovered job state %s (error %q), want done", meta.State, meta.Error)
				}
				got, err := os.ReadFile(filepath.Join(dir, id, "results.ndjson"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("recovered results differ from the uninterrupted run:\ngot  %d bytes\nwant %d bytes", len(got), len(ref))
				}
			})
		}
	}
}
