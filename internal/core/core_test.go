package core

import (
	"math"
	"testing"
)

// baseParams mirrors the paper's Base scenario (Table I) with M = 7h.
func baseParams() Params {
	return Params{D: 0, Delta: 2, R: 4, Alpha: 10, N: 324 * 32, M: 7 * 3600}
}

// exaParams mirrors the paper's Exa scenario (Table I) with M = 7h.
func exaParams() Params {
	return Params{D: 60, Delta: 30, R: 60, Alpha: 10, N: 1_000_000, M: 7 * 3600}
}

func TestParamsValidate(t *testing.T) {
	if err := baseParams().Validate(); err != nil {
		t.Fatalf("Base params should validate: %v", err)
	}
	if err := exaParams().Validate(); err != nil {
		t.Fatalf("Exa params should validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative D", func(p *Params) { p.D = -1 }},
		{"NaN D", func(p *Params) { p.D = math.NaN() }},
		{"negative delta", func(p *Params) { p.Delta = -0.5 }},
		{"zero R", func(p *Params) { p.R = 0 }},
		{"negative R", func(p *Params) { p.R = -3 }},
		{"infinite R", func(p *Params) { p.R = math.Inf(1) }},
		{"negative alpha", func(p *Params) { p.Alpha = -1 }},
		{"one node", func(p *Params) { p.N = 1 }},
		{"zero nodes", func(p *Params) { p.N = 0 }},
		{"zero MTBF", func(p *Params) { p.M = 0 }},
		{"NaN MTBF", func(p *Params) { p.M = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := baseParams()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("expected validation error for %s", tc.name)
			}
		})
	}
}

func TestLambda(t *testing.T) {
	p := baseParams()
	want := 1 / (float64(p.N) * p.M)
	if got := p.Lambda(); got != want {
		t.Fatalf("Lambda = %g, want %g", got, want)
	}
	if got := p.NodeMTBF(); got != float64(p.N)*p.M {
		t.Fatalf("NodeMTBF = %g, want %g", got, float64(p.N)*p.M)
	}
	// λ·NodeMTBF must be exactly 1 up to rounding.
	if prod := p.Lambda() * p.NodeMTBF(); math.Abs(prod-1) > 1e-12 {
		t.Fatalf("Lambda*NodeMTBF = %g, want 1", prod)
	}
}

func TestWithHelpers(t *testing.T) {
	p := baseParams()
	q := p.WithMTBF(60)
	if q.M != 60 || p.M != 7*3600 {
		t.Fatalf("WithMTBF must copy: q.M=%v p.M=%v", q.M, p.M)
	}
	r := p.WithNodes(12)
	if r.N != 12 || p.N != 324*32 {
		t.Fatalf("WithNodes must copy: r.N=%v p.N=%v", r.N, p.N)
	}
}

func TestProtocolProperties(t *testing.T) {
	if len(Protocols) != numProtocols {
		t.Fatalf("Protocols lists %d entries, want %d", len(Protocols), numProtocols)
	}
	wantNames := map[Protocol]string{
		DoubleBlocking: "DoubleBlocking",
		DoubleNBL:      "DoubleNBL",
		DoubleBoF:      "DoubleBoF",
		TripleNBL:      "Triple",
		TripleBoF:      "TripleBoF",
	}
	for pr, name := range wantNames {
		if pr.String() != name {
			t.Errorf("%v.String() = %q, want %q", int(pr), pr.String(), name)
		}
		if !pr.Valid() {
			t.Errorf("%s should be valid", name)
		}
	}
	if Protocol(99).Valid() {
		t.Error("Protocol(99) should be invalid")
	}
	if got := Protocol(99).String(); got != "Protocol(99)" {
		t.Errorf("invalid protocol String = %q", got)
	}
	for _, pr := range []Protocol{DoubleBlocking, DoubleNBL, DoubleBoF} {
		if pr.GroupSize() != 2 || !pr.IsDouble() || pr.IsTriple() {
			t.Errorf("%s should be a pair protocol", pr)
		}
	}
	for _, pr := range []Protocol{TripleNBL, TripleBoF} {
		if pr.GroupSize() != 3 || pr.IsDouble() || !pr.IsTriple() {
			t.Errorf("%s should be a triple protocol", pr)
		}
	}
	blocking := map[Protocol]bool{
		DoubleBlocking: true, DoubleBoF: true, TripleBoF: true,
		DoubleNBL: false, TripleNBL: false,
	}
	for pr, want := range blocking {
		if pr.BlocksOnFailure() != want {
			t.Errorf("%s.BlocksOnFailure() = %v, want %v", pr, pr.BlocksOnFailure(), want)
		}
	}
}

func TestDoubleBlockingPinsPhi(t *testing.T) {
	p := baseParams()
	// Whatever φ is requested, DoubleBlocking behaves as φ = R, θ = R.
	for _, phi := range []float64{0, 1, 2.5, 4} {
		ev := Evaluate(DoubleBlocking, p, phi)
		if ev.Phi != p.R {
			t.Fatalf("DoubleBlocking effective φ = %v, want R = %v", ev.Phi, p.R)
		}
		if ev.Theta != p.R {
			t.Fatalf("DoubleBlocking θ = %v, want R = %v", ev.Theta, p.R)
		}
	}
	// And it must coincide with DoubleNBL at φ = R.
	evB := Evaluate(DoubleBlocking, p, 0)
	evN := Evaluate(DoubleNBL, p, p.R)
	if math.Abs(evB.Waste-evN.Waste) > 1e-12 {
		t.Fatalf("DoubleBlocking waste %v != DoubleNBL(φ=R) waste %v", evB.Waste, evN.Waste)
	}
}
