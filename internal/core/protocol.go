package core

import "fmt"

// Protocol identifies one of the peer-to-peer in-memory checkpointing
// protocols analyzed by the paper.
type Protocol int

const (
	// DoubleBlocking is the original buddy algorithm of Zheng, Shi and
	// Kalé (FTC-Charm++, Cluster 2004): the remote exchange is fully
	// blocking, which pins φ = R and θ = θmin = R. It is the special
	// case φ/R = 1 of DoubleNBL and serves as the paper's historical
	// baseline.
	DoubleBlocking Protocol = iota

	// DoubleNBL is the non-blocking ("semi-blocking") double
	// checkpointing algorithm of Ni, Meneses and Kalé (Cluster 2012):
	// the remote exchange overlaps with computation, and after a
	// failure the buddy's image is re-sent in overlapped mode too,
	// leaving a long risk window D+R+θ.
	DoubleNBL

	// DoubleBoF (Blocking on Failure) is the paper's new double
	// variant: regular periods are non-blocking like DoubleNBL, but
	// after a failure both images are re-sent at full speed (time R
	// each, no overlap), shrinking the risk window to D+2R at the
	// price of a higher per-failure overhead.
	DoubleBoF

	// TripleNBL is the paper's new triple checkpointing algorithm:
	// nodes form triples with a preferred and a secondary buddy; a
	// copy-on-write fork replaces the blocking local checkpoint, so
	// the period is 2θ+σ with fault-free waste 2φ/P. After a failure
	// the two buddy images are re-sent in overlapped mode
	// (risk window D+R+2θ).
	TripleNBL

	// TripleBoF is the blocking-on-failure triple variant sketched
	// (but not analyzed) in §IV of the paper: after a failure all
	// three messages are sent at full speed, for a risk window of
	// D+3R. The loss formula F = Ftri + 2(R-φ) is our extrapolation
	// of the DoubleBoF correction (see DESIGN.md).
	TripleBoF

	numProtocols int = iota
)

// Protocols lists every protocol in declaration order. It is the set
// iterated by the experiment harness.
var Protocols = []Protocol{DoubleBlocking, DoubleNBL, DoubleBoF, TripleNBL, TripleBoF}

// String returns the protocol name used throughout the paper's figures.
func (pr Protocol) String() string {
	switch pr {
	case DoubleBlocking:
		return "DoubleBlocking"
	case DoubleNBL:
		return "DoubleNBL"
	case DoubleBoF:
		return "DoubleBoF"
	case TripleNBL:
		return "Triple"
	case TripleBoF:
		return "TripleBoF"
	default:
		return fmt.Sprintf("Protocol(%d)", int(pr))
	}
}

// Valid reports whether pr is a defined protocol.
func (pr Protocol) Valid() bool { return pr >= 0 && int(pr) < numProtocols }

// ParseProtocol returns the protocol with the given figure name (the
// strings produced by Protocol.String, e.g. "DoubleNBL" or "Triple").
// It is the inverse of String and the form accepted by the JSON API.
func ParseProtocol(name string) (Protocol, error) {
	for _, pr := range Protocols {
		if pr.String() == name {
			return pr, nil
		}
	}
	return 0, fmt.Errorf("core: unknown protocol %q (want one of %v)", name, Protocols)
}

// GroupSize returns the number of nodes per buddy group: 2 for the
// double protocols, 3 for the triple protocols.
func (pr Protocol) GroupSize() int {
	if pr.IsTriple() {
		return 3
	}
	return 2
}

// IsTriple reports whether pr organizes nodes in triples.
func (pr Protocol) IsTriple() bool { return pr == TripleNBL || pr == TripleBoF }

// IsDouble reports whether pr organizes nodes in pairs.
func (pr Protocol) IsDouble() bool { return pr.Valid() && !pr.IsTriple() }

// BlocksOnFailure reports whether the protocol re-sends the surviving
// checkpoint images at full speed (blocking) after a failure.
// DoubleBlocking re-sends in time θ = R which is both "blocking" and
// "regular speed"; the model treats it as blocking on failure.
func (pr Protocol) BlocksOnFailure() bool {
	return pr == DoubleBlocking || pr == DoubleBoF || pr == TripleBoF
}

// effectivePhi returns the overhead actually used by the protocol for
// a requested φ: DoubleBlocking pins φ = R regardless of the request.
func (pr Protocol) effectivePhi(p Params, phi float64) float64 {
	if pr == DoubleBlocking {
		return p.R
	}
	return phi
}

// EffectivePhi returns the overhead the protocol actually uses for a
// requested φ. It differs from the request only for DoubleBlocking,
// which pins φ = R (its exchange is always fully blocking).
func EffectivePhi(pr Protocol, p Params, phi float64) float64 {
	return pr.effectivePhi(p, phi)
}
