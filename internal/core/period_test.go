package core

import (
	"math"
	"testing"

	"repro/internal/optimize"
)

func TestOptimalPeriodClosedForms(t *testing.T) {
	for _, p := range []Params{baseParams(), exaParams()} {
		for _, frac := range []float64{0.1, 0.25, 0.5, 1} {
			phi := frac * p.R
			theta := p.Theta(phi)

			got, err := OptimalPeriod(DoubleNBL, p, phi)
			if err != nil {
				t.Fatal(err)
			}
			want := math.Sqrt(2 * (p.Delta + phi) * (p.M - p.R - p.D - theta))
			if math.Abs(got-want) > 1e-9*want {
				t.Errorf("DoubleNBL φ=%v: P = %v, want Eq.9 = %v", phi, got, want)
			}

			got, err = OptimalPeriod(DoubleBoF, p, phi)
			if err != nil {
				t.Fatal(err)
			}
			want = math.Sqrt(2 * (p.Delta + phi) * (p.M - 2*p.R - p.D - theta + phi))
			if math.Abs(got-want) > 1e-9*want {
				t.Errorf("DoubleBoF φ=%v: P = %v, want Eq.10 = %v", phi, got, want)
			}

			got, err = OptimalPeriod(TripleNBL, p, phi)
			if err != nil {
				t.Fatal(err)
			}
			want = 2 * math.Sqrt(phi*(p.M-p.D-p.R-theta))
			if want < MinPeriod(TripleNBL, p, phi) {
				want = MinPeriod(TripleNBL, p, phi)
			}
			if math.Abs(got-want) > 1e-9*want {
				t.Errorf("Triple φ=%v: P = %v, want Eq.15 = %v", phi, got, want)
			}
		}
	}
}

// TestOptimalPeriodMatchesNumericMinimum stands in for the paper's
// Maple derivation: golden-section minimization of the exact waste
// function must land on the closed-form period (up to the flatness of
// the optimum).
func TestOptimalPeriodMatchesNumericMinimum(t *testing.T) {
	for _, p := range []Params{baseParams(), exaParams()} {
		for _, pr := range Protocols {
			for _, frac := range []float64{0.1, 0.3, 0.6, 1} {
				phi := frac * p.R
				closed, err := OptimalPeriod(pr, p, phi)
				if err != nil {
					t.Fatalf("%s φ=%v: %v", pr, phi, err)
				}
				minP := MinPeriod(pr, p, phi)
				waste := func(period float64) float64 {
					w, werr := Waste(pr, p, phi, period)
					if werr != nil {
						return 2
					}
					return w
				}
				numeric := optimize.GoldenSection(waste, minP, p.M, 1e-4)
				// The waste curve is extremely flat near its optimum;
				// compare achieved waste instead of the abscissa.
				wClosed := waste(closed)
				wNumeric := waste(numeric)
				if wClosed > wNumeric+1e-9 {
					t.Errorf("%s/%s φ=%v: closed-form waste %v > numeric optimum %v (P %v vs %v)",
						p.short(), pr, phi, wClosed, wNumeric, closed, numeric)
				}
			}
		}
	}
}

// short gives a scenario label for test messages.
func (p Params) short() string {
	if p.N == 1_000_000 {
		return "Exa"
	}
	return "Base"
}

func TestOptimalPeriodMTBFTooSmall(t *testing.T) {
	p := baseParams().WithMTBF(5) // smaller than D+R+θ for any φ
	for _, pr := range Protocols {
		period, err := OptimalPeriod(pr, p, 0.5*p.R)
		if err != ErrMTBFTooSmall {
			t.Errorf("%s: err = %v, want ErrMTBFTooSmall", pr, err)
		}
		if period != MinPeriod(pr, p, 0.5*p.R) {
			t.Errorf("%s: infeasible period = %v, want MinPeriod", pr, period)
		}
	}
}

func TestTriplePeriodClampsAtFreeCheckpoints(t *testing.T) {
	// At φ = 0 triple checkpoints are free and the optimal period is
	// the minimum one (checkpoint as often as possible).
	p := baseParams()
	period, err := OptimalPeriod(TripleNBL, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * p.ThetaMax(); period != want {
		t.Fatalf("triple optimal period at φ=0 = %v, want 2θmax = %v", period, want)
	}
}

func TestDistributedPeriodsBeatCentralized(t *testing.T) {
	// §III.B: because δ is a *single-node* checkpoint, the distributed
	// optimal period is much larger than Young/Daly periods computed
	// with a whole-application dump time, and the waste accordingly
	// smaller. Model a global dump 100x slower than the local one.
	p := baseParams()
	globalC := 100 * p.Delta
	central := CentralizedOptimalWaste(p.M, p.D, p.R, globalC)
	ev := Evaluate(DoubleNBL, p, 0.25*p.R)
	// The paper's quantitative takeaway is on the waste, whose
	// dominant term √(2δ/M) shrinks with the (much smaller) per-node δ.
	if ev.Waste >= central {
		t.Errorf("distributed waste %v not smaller than centralized %v", ev.Waste, central)
	}
	if ev.Waste >= central/2 {
		t.Errorf("distributed waste %v should be well under half of centralized %v", ev.Waste, central)
	}
}

func TestEvaluateConsistency(t *testing.T) {
	p := exaParams()
	for _, pr := range Protocols {
		ev := Evaluate(pr, p, 0.3*p.R)
		if !ev.Feasible {
			t.Fatalf("%s should be feasible at M=7h", pr)
		}
		if ev.Theta != p.Theta(ev.Phi) {
			t.Errorf("%s: Theta mismatch", pr)
		}
		w, err := Waste(pr, p, ev.Phi, ev.Period)
		if err != nil || math.Abs(w-ev.Waste) > 1e-12 {
			t.Errorf("%s: Evaluate waste %v != Waste() %v (err %v)", pr, ev.Waste, w, err)
		}
		if ev.Sigma < 0 {
			t.Errorf("%s: negative σ %v", pr, ev.Sigma)
		}
		ph, _ := PeriodPhases(pr, p, ev.Phi, ev.Period)
		if math.Abs(ph.Compute-ev.Sigma) > 1e-9 {
			t.Errorf("%s: σ = %v, phases give %v", pr, ev.Sigma, ph.Compute)
		}
		if ev.Risk != RiskWindow(pr, p, ev.Phi) {
			t.Errorf("%s: Risk mismatch", pr)
		}
	}
}

func TestEvaluateInfeasible(t *testing.T) {
	p := baseParams().WithMTBF(5)
	ev := Evaluate(DoubleNBL, p, 1)
	if ev.Feasible {
		t.Fatal("M=5s should be infeasible")
	}
	if ev.Waste != 1 {
		t.Fatalf("infeasible waste = %v, want 1", ev.Waste)
	}
}

// TestPaperShapeFig5 checks the headline comparison of the paper's
// Fig. 5 (Base scenario, M = 7h): Triple beats both double protocols
// by a wide margin for φ/R ≤ 0.5, and is at most ~15% worse at
// φ/R = 1; DoubleBoF is never better than DoubleNBL.
func TestPaperShapeFig5(t *testing.T) {
	p := baseParams()
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1} {
		phi := frac * p.R
		nbl := OptimalWaste(DoubleNBL, p, phi)
		bof := OptimalWaste(DoubleBoF, p, phi)
		tri := OptimalWaste(TripleNBL, p, phi)
		if bof < nbl-1e-12 {
			t.Errorf("φ/R=%v: DoubleBoF waste %v < DoubleNBL %v", frac, bof, nbl)
		}
		// Triple's fault-free cost 2φ beats the double's δ+φ exactly
		// when φ < δ, i.e. φ/R < δ/R = 0.5 on Base: the crossover of
		// Fig. 5 falls at φ/R = 0.5.
		if frac < 0.5 && tri >= nbl {
			t.Errorf("φ/R=%v: Triple waste %v should beat DoubleNBL %v", frac, tri, nbl)
		}
		if frac == 0.5 && math.Abs(tri-nbl) > 1e-12 {
			t.Errorf("φ/R=0.5 on Base: Triple %v and DoubleNBL %v should tie (φ=δ)", tri, nbl)
		}
		if tri > 1.2*nbl {
			t.Errorf("φ/R=%v: Triple waste %v exceeds DoubleNBL %v by more than 20%%", frac, tri, nbl)
		}
	}
	// Paper: "limited to 15% more waste in the worst case" (at φ/R = 1).
	worst := OptimalWaste(TripleNBL, p, p.R) / OptimalWaste(DoubleNBL, p, p.R)
	if worst < 1.05 || worst > 1.2 {
		t.Errorf("Triple/DoubleNBL worst-case ratio = %v, want ~1.15", worst)
	}
}

// TestPaperShapeFig8 checks the Exa-scenario claim: the gain of Triple
// reaches ~25% of DoubleNBL's waste at φ/R = 1/10.
func TestPaperShapeFig8(t *testing.T) {
	p := exaParams()
	ratio := OptimalWaste(TripleNBL, p, p.R/10) / OptimalWaste(DoubleNBL, p, p.R/10)
	if ratio < 0.65 || ratio > 0.85 {
		t.Errorf("Exa Triple/DoubleNBL ratio at φ/R=0.1 = %v, want ~0.75", ratio)
	}
}
