package core

import "math"

// periodCoefficients returns the constants (C, A) such that the total
// waste for period P is, to first order,
//
//	WASTE(P) ≈ C/P + (A + P/2)/M − (A + P/2)·C/(M·P)
//
// where C is the fault-free loss per period (δ+φ for double, 2φ for
// triple) and A = F − P/2 is the period-independent part of the
// failure loss. Setting dWASTE/dP = 0 yields P² = 2C(M−A), which is
// exactly the paper's Eq. 9, 10 and 15.
func periodCoefficients(pr Protocol, p Params, phi float64) (c, a float64) {
	phi = pr.effectivePhi(p, phi)
	theta := p.Theta(phi)
	if pr.IsTriple() {
		c = 2 * phi
	} else {
		c = p.Delta + phi
	}
	a = p.D + p.R + theta
	switch pr {
	case DoubleBoF:
		a += p.R - phi
	case TripleBoF:
		a += 2 * (p.R - phi)
	}
	return c, a
}

// OptimalPeriod returns the period length minimizing the total waste:
//
//	DoubleNBL: √(2(δ+φ)(M − R − D − θ))          (paper Eq. 9)
//	DoubleBoF: √(2(δ+φ)(M − 2R − D − θ + φ))     (paper Eq. 10)
//	Triple:    2√(φ(M − D − R − θ))              (paper Eq. 15)
//
// The closed form is clamped from below to MinPeriod (σ ≥ 0); the
// clamp matters for the triple protocols when φ → 0, where checkpoints
// are free and the model drives the period to its minimum. It returns
// ErrMTBFTooSmall when M ≤ A, in which case no period allows progress
// and the returned period is MinPeriod.
func OptimalPeriod(pr Protocol, p Params, phi float64) (float64, error) {
	c, a := periodCoefficients(pr, p, phi)
	minP := MinPeriod(pr, p, phi)
	if p.M <= a {
		return minP, ErrMTBFTooSmall
	}
	period := math.Sqrt(2 * c * (p.M - a))
	if period < minP {
		period = minP
	}
	return period, nil
}

// OptimalWaste returns the waste at the optimal period. When the MTBF
// is too small for the protocol to progress it returns 1.
func OptimalWaste(pr Protocol, p Params, phi float64) float64 {
	period, err := OptimalPeriod(pr, p, phi)
	if err != nil {
		return 1
	}
	w, err := Waste(pr, p, phi, period)
	if err != nil {
		return 1
	}
	return w
}

// Evaluation bundles every model output at the waste-optimal period
// for one (protocol, platform, φ) point. It is the unit the experiment
// harness sweeps over.
type Evaluation struct {
	Protocol Protocol
	Params   Params
	Phi      float64 // overhead φ actually used (R for DoubleBlocking)
	Theta    float64 // exchange duration θ(φ)
	Period   float64 // waste-optimal period P
	Sigma    float64 // full-speed phase σ = P − checkpointing phases
	WasteFF  float64 // fault-free waste
	WasteRE  float64 // failure-induced waste F/M
	Waste    float64 // total waste (Eq. 5)
	Loss     float64 // expected time lost per failure F
	Risk     float64 // risk-window length
	Feasible bool    // false when M is too small for any progress
}

// Evaluate computes the full model at the optimal period. Infeasible
// points (M ≤ A) are returned with Waste = 1 and Feasible = false
// rather than an error, because the paper's waste surfaces include the
// saturated region (M → 15 s).
func Evaluate(pr Protocol, p Params, phi float64) Evaluation {
	phi = pr.effectivePhi(p, phi)
	ev := Evaluation{
		Protocol: pr,
		Params:   p,
		Phi:      phi,
		Theta:    p.Theta(phi),
		Risk:     RiskWindow(pr, p, phi),
	}
	period, err := OptimalPeriod(pr, p, phi)
	ev.Period = period
	if err != nil {
		ev.Waste = 1
		ev.WasteFF = WasteFF(pr, p, phi, period)
		ev.WasteRE = 1
		ev.Loss = FailureLoss(pr, p, phi, period)
		return ev
	}
	ph, perr := PeriodPhases(pr, p, phi, period)
	if perr == nil {
		ev.Sigma = ph.Compute
	}
	ev.Feasible = true
	ev.WasteFF = WasteFF(pr, p, phi, period)
	ev.WasteRE = WasteFail(pr, p, phi, period)
	ev.Loss = FailureLoss(pr, p, phi, period)
	w, werr := Waste(pr, p, phi, period)
	if werr != nil {
		w = 1
		ev.Feasible = false
	}
	ev.Waste = w
	if w >= 1 {
		ev.Feasible = false
	}
	return ev
}
