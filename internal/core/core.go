// Package core implements the unified performance/risk model of
// "Revisiting the double checkpointing algorithm" (Dongarra, Hérault,
// Robert, APDCM 2013).
//
// The model covers peer-to-peer in-memory checkpointing protocols in
// which platform nodes are organized in pairs (double checkpointing,
// after Zheng/Shi/Kalé and Ni/Meneses/Kalé) or triples (the paper's new
// triple checkpointing algorithm). For each protocol the package
// computes:
//
//   - the fault-free waste WASTEff and the failure-induced waste
//     WASTEfail = F/M (paper Eq. 4-5),
//   - the expected time lost per failure F (paper Eq. 7, 8, 14),
//   - the per-phase expected re-execution times RE1..RE3 (§III.A, §V.A),
//   - the optimal checkpointing period (paper Eq. 9, 10, 15),
//   - the risk window and the application success probability
//     (paper Eq. 11, 12, 16).
//
// All durations are expressed in seconds and, per the paper's
// convention, the application progresses at unit speed, so time units
// and work units are interchangeable.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the platform and protocol parameters of the unified
// model (paper Table I plus the platform MTBF).
//
// The overhead parameter φ is deliberately not part of Params: the
// paper sweeps φ between 0 and R for a fixed platform, so φ is an
// argument of the evaluation functions instead.
type Params struct {
	// D is the downtime: the time to detect a failure and allocate a
	// replacement node, in seconds.
	D float64

	// Delta (δ) is the duration of the blocking local checkpoint, in
	// seconds. During δ no application work is performed.
	Delta float64

	// R is the base time to transfer one checkpoint image between
	// buddies in fully blocking mode, in seconds. R equals θmin, and
	// the paper also uses R as the recovery time (re-reception of the
	// lost image after a failure).
	R float64

	// Alpha (α) is the overlap speedup factor: stretching the transfer
	// from θmin to θmax = (1+α)θmin drives the overhead φ from R down
	// to zero (paper §II).
	Alpha float64

	// N is the number of platform nodes, used for risk assessment.
	N int

	// M is the platform MTBF in seconds. The individual node MTBF is
	// N*M and the per-node failure rate is λ = 1/(N*M).
	M float64
}

// Validate reports an error if the parameters are outside the model's
// domain.
func (p Params) Validate() error {
	switch {
	case !(p.D >= 0) || math.IsInf(p.D, 0):
		return fmt.Errorf("core: downtime D = %v must be finite and >= 0", p.D)
	case !(p.Delta >= 0) || math.IsInf(p.Delta, 0):
		return fmt.Errorf("core: local checkpoint time δ = %v must be finite and >= 0", p.Delta)
	case !(p.R > 0) || math.IsInf(p.R, 0):
		return fmt.Errorf("core: blocking transfer time R = %v must be finite and > 0", p.R)
	case !(p.Alpha >= 0) || math.IsInf(p.Alpha, 0):
		return fmt.Errorf("core: overlap factor α = %v must be finite and >= 0", p.Alpha)
	case p.N < 2:
		return fmt.Errorf("core: platform size n = %d must be at least 2", p.N)
	case !(p.M > 0) || math.IsInf(p.M, 0):
		return fmt.Errorf("core: platform MTBF M = %v must be finite and > 0", p.M)
	}
	return nil
}

// Lambda returns the instantaneous failure rate λ = 1/(nM) of an
// individual processor (paper §III.C).
func (p Params) Lambda() float64 { return 1 / (float64(p.N) * p.M) }

// NodeMTBF returns the individual node MTBF, Mind = n*M.
func (p Params) NodeMTBF() float64 { return float64(p.N) * p.M }

// WithMTBF returns a copy of p with the platform MTBF set to m.
func (p Params) WithMTBF(m float64) Params {
	p.M = m
	return p
}

// WithNodes returns a copy of p with the platform size set to n.
func (p Params) WithNodes(n int) Params {
	p.N = n
	return p
}

// ErrPeriodTooSmall is returned when a period is too small to contain
// the checkpointing phases of the protocol.
var ErrPeriodTooSmall = errors.New("core: period smaller than the checkpointing phases")

// ErrMTBFTooSmall is returned when the platform MTBF is so small that
// the expected failure-induced loss exceeds the MTBF for every valid
// period, i.e. the application cannot progress.
var ErrMTBFTooSmall = errors.New("core: MTBF too small for the protocol to progress")
