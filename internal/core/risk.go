package core

import "math"

// RiskWindow returns the length of the risk period that follows a
// failure: the time during which a further failure striking the
// surviving image holder(s) is fatal to the application (paper §III.C
// and §V.C):
//
//	DoubleNBL:      D + R + θ
//	DoubleBoF:      D + 2R
//	DoubleBlocking: D + 2R   (θ = R under full blocking)
//	TripleNBL:      D + R + 2θ
//	TripleBoF:      D + 3R
func RiskWindow(pr Protocol, p Params, phi float64) float64 {
	phi = pr.effectivePhi(p, phi)
	theta := p.Theta(phi)
	switch pr {
	case DoubleNBL:
		return p.D + p.R + theta
	case DoubleBlocking, DoubleBoF:
		return p.D + 2*p.R
	case TripleNBL:
		return p.D + p.R + 2*theta
	case TripleBoF:
		return p.D + 3*p.R
	}
	return math.NaN()
}

// SuccessProbability returns the probability that an application (or
// platform exploitation) of duration t completes without a fatal
// failure:
//
//	double protocols: (1 − 2λ²·t·Risk)^(n/2)      (paper Eq. 11)
//	triple protocols: (1 − 6λ³·t·Risk²)^(n/3)     (paper Eq. 16)
//
// with λ = 1/(nM). The per-group fatality probability is clamped to
// [0, 1]; the power is computed as exp(k·log1p(−x)) for numerical
// stability with n up to 10⁶ and x down to 10⁻²⁰.
func SuccessProbability(pr Protocol, p Params, phi, t float64) float64 {
	risk := RiskWindow(pr, p, phi)
	lambda := p.Lambda()
	var x, groups float64
	if pr.IsTriple() {
		x = 6 * lambda * lambda * lambda * t * risk * risk
		groups = float64(p.N) / 3
	} else {
		x = 2 * lambda * lambda * t * risk
		groups = float64(p.N) / 2
	}
	return groupSurvival(x, groups)
}

// FatalFailureProbability returns 1 − SuccessProbability.
func FatalFailureProbability(pr Protocol, p Params, phi, t float64) float64 {
	return 1 - SuccessProbability(pr, p, phi, t)
}

// BaseSuccessProbability returns the probability that the application
// succeeds with no checkpointing at all: Pbase = (1 − λ·Tbase)^n
// (paper Eq. 12). Any single failure is then fatal.
func BaseSuccessProbability(p Params, tbase float64) float64 {
	return groupSurvival(p.Lambda()*tbase, float64(p.N))
}

// RunsTolerated returns the expected number of executions of duration
// t the platform can run before the first fatal failure, 1/(1−P).
// The paper uses this to state that Triple "is able to tolerate twice
// more runs without incurring a fatal failure" than DoubleNBL. It
// returns +Inf when the success probability is 1 to working precision.
func RunsTolerated(pr Protocol, p Params, phi, t float64) float64 {
	q := FatalFailureProbability(pr, p, phi, t)
	if q <= 0 {
		return math.Inf(1)
	}
	return 1 / q
}

// groupSurvival computes (1−x)^groups with clamping and log1p-based
// stability: the per-group fatality x is often ~1e-15 while groups is
// ~1e6, where naive Pow loses all precision.
func groupSurvival(x, groups float64) float64 {
	if groups <= 0 {
		return 1
	}
	switch {
	case x <= 0:
		return 1
	case x >= 1:
		return 0
	}
	return math.Exp(groups * math.Log1p(-x))
}
