package core

import (
	"math"
	"testing"
)

func TestYoungDalyPeriods(t *testing.T) {
	m, c := 7.0*3600, 200.0
	if got, want := YoungPeriod(m, c), math.Sqrt(2*m*c)+c; got != want {
		t.Errorf("Young = %v, want %v", got, want)
	}
	d, r := 60.0, 60.0
	if got, want := DalyPeriod(m, d, r, c), math.Sqrt(2*(m+d+r)*c)+c; got != want {
		t.Errorf("Daly = %v, want %v", got, want)
	}
	// Daly's refinement always increases the period (adds D+R to M).
	if DalyPeriod(m, d, r, c) <= YoungPeriod(m, c) {
		t.Error("Daly period should exceed Young period for D+R > 0")
	}
	if DalyPeriod(m, 0, 0, c) != YoungPeriod(m, c) {
		t.Error("Daly with D=R=0 should equal Young")
	}
}

func TestCentralizedWaste(t *testing.T) {
	m, d, r, c := 7.0*3600, 60.0, 60.0, 600.0
	// Degenerate periods saturate.
	if got := CentralizedWaste(m, d, r, c, c); got != 1 {
		t.Errorf("waste at P=C = %v, want 1", got)
	}
	if got := CentralizedWaste(0, d, r, c, 2*c); got != 1 {
		t.Errorf("waste at M=0 = %v, want 1", got)
	}
	// The optimum beats both a too-short and a too-long period.
	opt := CentralizedOptimalWaste(m, d, r, c)
	if opt <= 0 || opt >= 1 {
		t.Fatalf("optimal centralized waste = %v", opt)
	}
	if short := CentralizedWaste(m, d, r, c, 1.2*c); short <= opt {
		t.Errorf("short-period waste %v should exceed optimal %v", short, opt)
	}
	if long := CentralizedWaste(m, d, r, c, 50*DalyPeriod(m, d, r, c)); long <= opt {
		t.Errorf("long-period waste %v should exceed optimal %v", long, opt)
	}
}

func TestCentralizedVersusDistributedShape(t *testing.T) {
	// §III.B / §VII: with a whole-application dump far costlier than a
	// single-node checkpoint, the buddy protocols win decisively.
	p := baseParams()
	for _, mult := range []float64{20, 100, 500} {
		central := CentralizedOptimalWaste(p.M, p.D, p.R, mult*p.Delta)
		for _, pr := range Protocols {
			if w := OptimalWaste(pr, p, 0.5*p.R); w >= central {
				t.Errorf("dump=%vδ: %s waste %v not better than centralized %v",
					mult, pr, w, central)
			}
		}
	}
}
