package core

import (
	"math"
	"testing"
)

// TestBoFREPhases checks the blocking-on-failure re-execution times:
// the overlap overhead φ is removed per re-sent image (the blocking
// retransmissions are accounted in the recovery term instead).
func TestBoFREPhases(t *testing.T) {
	p := baseParams()
	phi, period := 1.0, 200.0

	nbl, err := REPhases(DoubleNBL, p, phi, period)
	if err != nil {
		t.Fatal(err)
	}
	bof, err := REPhases(DoubleBoF, p, phi, period)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nbl {
		if math.Abs(bof[i]-(nbl[i]-phi)) > 1e-9 {
			t.Errorf("double RE%d: bof %v, want nbl-φ = %v", i+1, bof[i], nbl[i]-phi)
		}
	}

	tn, err := REPhases(TripleNBL, p, phi, period)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := REPhases(TripleBoF, p, phi, period)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tn {
		if math.Abs(tb[i]-(tn[i]-2*phi)) > 1e-9 {
			t.Errorf("triple RE%d: bof %v, want nbl-2φ = %v", i+1, tb[i], tn[i]-2*phi)
		}
	}
}

// TestAlphaZeroDegeneratesToBlocking: with no overlap capability the
// non-blocking protocols pay full overhead at any φ request... more
// precisely, θ(φ) = R for every φ, so the only consistent operating
// point is φ = R and DoubleNBL collapses onto DoubleBlocking.
func TestAlphaZeroDegeneratesToBlocking(t *testing.T) {
	p := baseParams()
	p.Alpha = 0
	evN := Evaluate(DoubleNBL, p, p.R)
	evB := Evaluate(DoubleBlocking, p, 0)
	if math.Abs(evN.Waste-evB.Waste) > 1e-12 {
		t.Fatalf("α=0: DoubleNBL waste %v != DoubleBlocking %v", evN.Waste, evB.Waste)
	}
	if evN.Theta != p.R {
		t.Fatalf("α=0: θ = %v, want R", evN.Theta)
	}
}

// TestEvaluatePhiEndpoints exercises both ends of the overhead range.
func TestEvaluatePhiEndpoints(t *testing.T) {
	p := exaParams()
	for _, pr := range Protocols {
		for _, phi := range []float64{0, p.R} {
			ev := Evaluate(pr, p, phi)
			if !ev.Feasible {
				t.Errorf("%s at φ=%v infeasible", pr, phi)
			}
			if ev.Waste <= 0 || ev.Waste >= 1 {
				t.Errorf("%s at φ=%v: waste %v", pr, phi, ev.Waste)
			}
		}
	}
	// φ = 0 with Triple: the checkpointing is free and the waste is
	// purely failure-induced.
	ev := Evaluate(TripleNBL, p, 0)
	if ev.WasteFF != 0 {
		t.Errorf("Triple at φ=0: WASTEff = %v, want 0", ev.WasteFF)
	}
	if math.Abs(ev.Waste-ev.WasteRE) > 1e-12 {
		t.Errorf("Triple at φ=0: waste %v != failure waste %v", ev.Waste, ev.WasteRE)
	}
}

// TestWasteFailClamp: F beyond M saturates the failure waste at 1.
func TestWasteFailClamp(t *testing.T) {
	p := baseParams().WithMTBF(30)
	if got := WasteFail(DoubleNBL, p, 0, 1000); got != 1 {
		t.Fatalf("WasteFail = %v, want 1", got)
	}
}

// TestFailureLossGrowsWithPeriod: dF/dP = 1/2 for every protocol.
func TestFailureLossGrowsWithPeriod(t *testing.T) {
	p := baseParams()
	for _, pr := range Protocols {
		f1 := FailureLoss(pr, p, 1, 100)
		f2 := FailureLoss(pr, p, 1, 300)
		if math.Abs((f2-f1)-100) > 1e-9 {
			t.Errorf("%s: F(300)-F(100) = %v, want 100 (P/2 term)", pr, f2-f1)
		}
	}
}

// TestRiskOrderingAcrossProtocols: for φ < R the windows order as
// BoF < Blocking? No: Blocking and BoF share D+2R; the NBL variants
// trade risk for overlap. Assert the full ordering the model implies.
func TestRiskOrderingAcrossProtocols(t *testing.T) {
	p := exaParams()
	phi := 0.2 * p.R
	bof := RiskWindow(DoubleBoF, p, phi)
	blocking := RiskWindow(DoubleBlocking, p, phi)
	nbl := RiskWindow(DoubleNBL, p, phi)
	tbof := RiskWindow(TripleBoF, p, phi)
	tnbl := RiskWindow(TripleNBL, p, phi)
	if bof != blocking {
		t.Errorf("BoF %v != Blocking %v (both D+2R)", bof, blocking)
	}
	if !(bof < nbl && nbl < tnbl) {
		t.Errorf("ordering broken: bof %v, nbl %v, triple-nbl %v", bof, nbl, tnbl)
	}
	if !(tbof > bof && tbof < tnbl) {
		t.Errorf("TripleBoF %v should sit between %v and %v", tbof, bof, tnbl)
	}
}

// TestWorkNonNegativeAtMinPeriod: the minimum period always leaves
// non-negative work for every protocol and φ.
func TestWorkNonNegativeAtMinPeriod(t *testing.T) {
	for _, p := range []Params{baseParams(), exaParams()} {
		for _, pr := range Protocols {
			for _, frac := range []float64{0, 0.5, 1} {
				phi := frac * p.R
				minP := MinPeriod(pr, p, phi)
				if w := Work(pr, p, phi, minP); w < -1e-9 {
					t.Errorf("%s/%s φ=%v: W(minP) = %v", p.short(), pr, phi, w)
				}
			}
		}
	}
}
