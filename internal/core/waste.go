package core

import "math"

// Phases holds the durations of the three parts of a checkpointing
// period (paper Fig. 1 and Fig. 3).
//
// For the double protocols: Ckpt1 = δ (blocking local checkpoint),
// Ckpt2 = θ (remote exchange, overlapped), Compute = σ.
//
// For the triple protocols: Ckpt1 = θ (exchange with the preferred
// buddy), Ckpt2 = θ (exchange with the secondary buddy), Compute = σ.
type Phases struct {
	Ckpt1   float64 // first checkpointing phase
	Ckpt2   float64 // second checkpointing phase
	Compute float64 // full-speed computation phase (σ)
}

// Period returns the total period length P = Ckpt1 + Ckpt2 + Compute.
func (ph Phases) Period() float64 { return ph.Ckpt1 + ph.Ckpt2 + ph.Compute }

// PhaseOf returns the 1-based index of the phase containing period
// offset x ∈ [0, P), matching the paper's RE1/RE2/RE3 numbering.
func (ph Phases) PhaseOf(x float64) int {
	switch {
	case x < ph.Ckpt1:
		return 1
	case x < ph.Ckpt1+ph.Ckpt2:
		return 2
	default:
		return 3
	}
}

// MinPeriod returns the smallest admissible period for the protocol,
// i.e. the period with σ = 0: δ+θ(φ) for the double protocols and
// 2θ(φ) for the triple protocols.
func MinPeriod(pr Protocol, p Params, phi float64) float64 {
	phi = pr.effectivePhi(p, phi)
	theta := p.Theta(phi)
	if pr.IsTriple() {
		return 2 * theta
	}
	return p.Delta + theta
}

// PeriodPhases splits a period P into the protocol's three phases.
// It returns ErrPeriodTooSmall if P cannot contain the checkpointing
// phases (σ would be negative).
func PeriodPhases(pr Protocol, p Params, phi, period float64) (Phases, error) {
	phi = pr.effectivePhi(p, phi)
	theta := p.Theta(phi)
	var ph Phases
	if pr.IsTriple() {
		ph = Phases{Ckpt1: theta, Ckpt2: theta}
	} else {
		ph = Phases{Ckpt1: p.Delta, Ckpt2: theta}
	}
	ph.Compute = period - ph.Ckpt1 - ph.Ckpt2
	if ph.Compute < -1e-9 {
		return Phases{}, ErrPeriodTooSmall
	}
	if ph.Compute < 0 {
		ph.Compute = 0
	}
	return ph, nil
}

// Work returns the amount W of application work executed during one
// fault-free period of length P: W = P − δ − φ for the double
// protocols (paper §II) and W = P − 2φ for the triple protocols (§V).
func Work(pr Protocol, p Params, phi, period float64) float64 {
	phi = pr.effectivePhi(p, phi)
	if pr.IsTriple() {
		return period - 2*phi
	}
	return period - p.Delta - phi
}

// WasteFF returns the fault-free waste WASTEff = (P−W)/P: (δ+φ)/P for
// the double protocols and 2φ/P for the triple protocols.
func WasteFF(pr Protocol, p Params, phi, period float64) float64 {
	if period <= 0 {
		return 1
	}
	w := 1 - Work(pr, p, phi, period)/period
	return clamp01(w)
}

// FailureLoss returns F, the expected time lost per failure when the
// period length is P:
//
//	Fnbl  = D + R + θ + P/2            (paper Eq. 7)
//	Fbof  = Fnbl + R − φ               (paper Eq. 8)
//	Ftri  = D + R + θ + P/2            (paper Eq. 14)
//	Ftbof = Ftri + 2(R − φ)            (our extrapolation, DESIGN.md)
//
// DoubleBlocking is Fnbl evaluated at φ = R (hence θ = R), which
// coincides with Fbof at φ = R.
func FailureLoss(pr Protocol, p Params, phi, period float64) float64 {
	phi = pr.effectivePhi(p, phi)
	theta := p.Theta(phi)
	f := p.D + p.R + theta + period/2
	switch pr {
	case DoubleBoF:
		f += p.R - phi
	case TripleBoF:
		f += 2 * (p.R - phi)
	}
	return f
}

// REPhases returns the expected re-execution times RE1, RE2, RE3 for
// a failure striking each of the three parts of the period (§III.A
// for the double protocols, §V.A for the triple protocols):
//
//	double: RE1 = θ+σ+δ/2, RE2 = θ+σ+δ+θ/2, RE3 = θ+σ/2
//	triple: RE1 = 2θ+σ+θ/2, RE2 = 3θ/2,     RE3 = 2θ+σ/2
//
// For the blocking-on-failure variants the overlap overhead is removed
// from every re-execution (−φ per overlapped message) while the extra
// blocking retransmissions are accounted in the recovery term of
// FailureLoss, mirroring the paper's Fbof = Fnbl + R − φ.
func REPhases(pr Protocol, p Params, phi, period float64) ([3]float64, error) {
	phi = pr.effectivePhi(p, phi)
	ph, err := PeriodPhases(pr, p, phi, period)
	if err != nil {
		return [3]float64{}, err
	}
	theta := p.Theta(phi)
	sigma := ph.Compute
	var re [3]float64
	if pr.IsTriple() {
		re = [3]float64{
			2*theta + sigma + theta/2,
			3 * theta / 2,
			2*theta + sigma/2,
		}
		if pr.BlocksOnFailure() {
			for i := range re {
				re[i] -= 2 * phi
			}
		}
	} else {
		re = [3]float64{
			theta + sigma + p.Delta/2,
			theta + sigma + p.Delta + theta/2,
			theta + sigma/2,
		}
		if pr.BlocksOnFailure() {
			for i := range re {
				re[i] -= phi
			}
		}
	}
	return re, nil
}

// failureLossFromPhases recomputes F by weighting the per-phase
// re-execution times by the probability of the failure striking each
// phase (paper Eq. 6 and Eq. 13). It must agree with FailureLoss; the
// test suite asserts the identity, which is the paper's own
// consistency check between Eq. 6/13 and Eq. 7/14.
func failureLossFromPhases(pr Protocol, p Params, phi, period float64) (float64, error) {
	phi = pr.effectivePhi(p, phi)
	ph, err := PeriodPhases(pr, p, phi, period)
	if err != nil {
		return 0, err
	}
	re, err := REPhases(pr, p, phi, period)
	if err != nil {
		return 0, err
	}
	recovery := p.D + p.R
	switch pr {
	case DoubleBoF, DoubleBlocking:
		// One extra blocking retransmission of the buddy's image. For
		// DoubleBlocking this matches Fbof = Fnbl + R − φ at φ = R.
		recovery += p.R
	case TripleBoF:
		recovery += 2 * p.R
	}
	f := recovery
	weights := [3]float64{ph.Ckpt1, ph.Ckpt2, ph.Compute}
	for i, w := range weights {
		f += w / period * re[i]
	}
	return f, nil
}

// WasteFail returns the failure-induced waste F/M for period P.
func WasteFail(pr Protocol, p Params, phi, period float64) float64 {
	return clamp01(FailureLoss(pr, p, phi, period) / p.M)
}

// Waste returns the total waste for period P (paper Eq. 4/5):
//
//	WASTE = 1 − (1 − F/M)(1 − WASTEff)
//
// clamped to [0, 1]. It returns ErrPeriodTooSmall if P cannot contain
// the protocol's checkpointing phases.
func Waste(pr Protocol, p Params, phi, period float64) (float64, error) {
	if _, err := PeriodPhases(pr, p, phi, period); err != nil {
		return 1, err
	}
	wff := WasteFF(pr, p, phi, period)
	wfail := WasteFail(pr, p, phi, period)
	return clamp01(1 - (1-wfail)*(1-wff)), nil
}

// ExpectedRuntime returns the expected makespan T of an application of
// failure-free duration Tbase under the protocol with period P:
// (1 − WASTE) T = Tbase (paper Eq. 3). It returns +Inf when the waste
// is 1 (the application cannot progress).
func ExpectedRuntime(pr Protocol, p Params, phi, period, tbase float64) (float64, error) {
	w, err := Waste(pr, p, phi, period)
	if err != nil {
		return math.Inf(1), err
	}
	if w >= 1 {
		return math.Inf(1), nil
	}
	return tbase / (1 - w), nil
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	case math.IsNaN(x):
		return 1
	}
	return x
}
