package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhasesSplit(t *testing.T) {
	p := baseParams()
	phi := 1.0
	theta := p.Theta(phi) // 4 + 10*3 = 34

	ph, err := PeriodPhases(DoubleNBL, p, phi, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Ckpt1 != p.Delta || ph.Ckpt2 != theta || math.Abs(ph.Compute-(100-2-34)) > 1e-12 {
		t.Fatalf("double phases = %+v", ph)
	}
	if math.Abs(ph.Period()-100) > 1e-12 {
		t.Fatalf("Period() = %v, want 100", ph.Period())
	}

	ph, err = PeriodPhases(TripleNBL, p, phi, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Ckpt1 != theta || ph.Ckpt2 != theta || math.Abs(ph.Compute-(100-68)) > 1e-12 {
		t.Fatalf("triple phases = %+v", ph)
	}
}

func TestPhaseOf(t *testing.T) {
	ph := Phases{Ckpt1: 2, Ckpt2: 34, Compute: 64}
	cases := []struct {
		x    float64
		want int
	}{
		{0, 1}, {1.99, 1}, {2, 2}, {20, 2}, {35.99, 2}, {36, 3}, {99, 3},
	}
	for _, tc := range cases {
		if got := ph.PhaseOf(tc.x); got != tc.want {
			t.Errorf("PhaseOf(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestPeriodTooSmall(t *testing.T) {
	p := baseParams()
	if _, err := PeriodPhases(DoubleNBL, p, 0, 10); err != ErrPeriodTooSmall {
		t.Fatalf("period 10 < δ+θmax should fail, got %v", err)
	}
	if _, err := Waste(DoubleNBL, p, 0, 10); err != ErrPeriodTooSmall {
		t.Fatalf("Waste with too-small period should fail, got %v", err)
	}
	if _, err := REPhases(TripleNBL, p, 0, 50); err != ErrPeriodTooSmall {
		t.Fatalf("triple REPhases with P < 2θmax should fail, got %v", err)
	}
}

func TestWorkFormulas(t *testing.T) {
	p := baseParams()
	phi, period := 1.0, 200.0
	if got, want := Work(DoubleNBL, p, phi, period), period-p.Delta-phi; got != want {
		t.Errorf("double W = %v, want P-δ-φ = %v", got, want)
	}
	if got, want := Work(TripleNBL, p, phi, period), period-2*phi; got != want {
		t.Errorf("triple W = %v, want P-2φ = %v", got, want)
	}
	// DoubleBlocking pins φ = R.
	if got, want := Work(DoubleBlocking, p, 0, period), period-p.Delta-p.R; got != want {
		t.Errorf("blocking W = %v, want P-δ-R = %v", got, want)
	}
}

func TestWasteFFFormulas(t *testing.T) {
	p := baseParams()
	phi, period := 2.0, 300.0
	if got, want := WasteFF(DoubleNBL, p, phi, period), (p.Delta+phi)/period; math.Abs(got-want) > 1e-12 {
		t.Errorf("double WASTEff = %v, want (δ+φ)/P = %v", got, want)
	}
	if got, want := WasteFF(TripleNBL, p, phi, period), 2*phi/period; math.Abs(got-want) > 1e-12 {
		t.Errorf("triple WASTEff = %v, want 2φ/P = %v", got, want)
	}
	// Triple with φ = 0 has zero fault-free waste: the paper's headline
	// property (§IV: "WASTEff tends to zero").
	if got := WasteFF(TripleNBL, p, 0, period); got != 0 {
		t.Errorf("triple WASTEff at φ=0 = %v, want 0", got)
	}
	if got := WasteFF(DoubleNBL, p, 0, 0); got != 1 {
		t.Errorf("WASTEff at P=0 = %v, want 1 (clamped)", got)
	}
}

func TestFailureLossClosedForms(t *testing.T) {
	p := exaParams()
	phi, period := 6.0, 1500.0
	theta := p.Theta(phi)

	fnbl := FailureLoss(DoubleNBL, p, phi, period)
	if want := p.D + p.R + theta + period/2; math.Abs(fnbl-want) > 1e-9 {
		t.Errorf("Fnbl = %v, want Eq.7 = %v", fnbl, want)
	}
	fbof := FailureLoss(DoubleBoF, p, phi, period)
	if want := fnbl + p.R - phi; math.Abs(fbof-want) > 1e-9 {
		t.Errorf("Fbof = %v, want Fnbl+R-φ = %v (Eq.8)", fbof, want)
	}
	ftri := FailureLoss(TripleNBL, p, phi, period)
	if math.Abs(ftri-fnbl) > 1e-9 {
		t.Errorf("Ftri = %v, want = Fnbl = %v (paper: Fnbl = Ftri)", ftri, fnbl)
	}
	ftbof := FailureLoss(TripleBoF, p, phi, period)
	if want := ftri + 2*(p.R-phi); math.Abs(ftbof-want) > 1e-9 {
		t.Errorf("Ftbof = %v, want Ftri+2(R-φ) = %v", ftbof, want)
	}
}

// TestFailureLossMatchesPhaseDecomposition is the paper's own
// consistency check: averaging the per-phase re-execution times RE1,
// RE2, RE3 weighted by the phase lengths (Eq. 6 / Eq. 13) must give
// the closed forms of Eq. 7 / Eq. 14.
func TestFailureLossMatchesPhaseDecomposition(t *testing.T) {
	for _, p := range []Params{baseParams(), exaParams()} {
		for _, pr := range Protocols {
			for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
				phi := frac * p.R
				minP := MinPeriod(pr, p, phi)
				for _, period := range []float64{minP, minP * 1.5, minP * 4, minP * 20} {
					want := FailureLoss(pr, p, phi, period)
					got, err := failureLossFromPhases(pr, p, phi, period)
					if err != nil {
						t.Fatalf("%s φ=%v P=%v: %v", pr, phi, period, err)
					}
					if math.Abs(got-want) > 1e-6*want {
						t.Errorf("%s φ=%v P=%v: phase-weighted F = %v, closed form = %v",
							pr, phi, period, got, want)
					}
				}
			}
		}
	}
}

func TestREPhasesClosedForms(t *testing.T) {
	p := baseParams()
	phi := 1.0
	theta := p.Theta(phi)
	period := 200.0

	re, err := REPhases(DoubleNBL, p, phi, period)
	if err != nil {
		t.Fatal(err)
	}
	sigma := period - p.Delta - theta
	want := [3]float64{
		theta + sigma + p.Delta/2,
		theta + sigma + p.Delta + theta/2,
		theta + sigma/2,
	}
	for i := range re {
		if math.Abs(re[i]-want[i]) > 1e-9 {
			t.Errorf("double RE%d = %v, want %v", i+1, re[i], want[i])
		}
	}

	re, err = REPhases(TripleNBL, p, phi, period)
	if err != nil {
		t.Fatal(err)
	}
	sigma = period - 2*theta
	want = [3]float64{
		2*theta + sigma + theta/2,
		3 * theta / 2,
		2*theta + sigma/2,
	}
	for i := range re {
		if math.Abs(re[i]-want[i]) > 1e-9 {
			t.Errorf("triple RE%d = %v, want %v", i+1, re[i], want[i])
		}
	}
}

func TestWasteComposition(t *testing.T) {
	// Eq. 5: WASTE = WASTEfail + WASTEff − WASTEfail·WASTEff.
	p := baseParams()
	phi, period := 1.0, 400.0
	for _, pr := range Protocols {
		wff := WasteFF(pr, p, phi, period)
		wfail := WasteFail(pr, p, phi, period)
		got, err := Waste(pr, p, phi, period)
		if err != nil {
			t.Fatalf("%s: %v", pr, err)
		}
		want := wfail + wff - wfail*wff
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: WASTE = %v, want Eq.5 = %v", pr, got, want)
		}
	}
}

func TestWasteSaturatesAtTinyMTBF(t *testing.T) {
	// Paper §VI.A: at M = 15 s "no progress happens for any protocol".
	// DoubleBlocking (θ = R = 4s) remains marginally feasible on Base,
	// so assert near-saturation rather than exact saturation.
	p := baseParams().WithMTBF(15)
	for _, pr := range Protocols {
		if w := OptimalWaste(pr, p, 0.5*p.R); w < 0.9 {
			t.Errorf("%s at M=15s: waste = %v, want >= 0.9", pr, w)
		}
	}
}

func TestWasteSmallAtLargeMTBF(t *testing.T) {
	p := baseParams().WithMTBF(24 * 3600) // 1 day
	for _, pr := range Protocols {
		w := OptimalWaste(pr, p, 0.2*p.R)
		if w <= 0 || w >= 0.1 {
			t.Errorf("%s at M=1day: waste = %v, want (0, 0.1)", pr, w)
		}
	}
}

func TestExpectedRuntime(t *testing.T) {
	p := baseParams()
	phi, period := 1.0, 400.0
	tbase := 1e6
	tt, err := ExpectedRuntime(DoubleNBL, p, phi, period, tbase)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Waste(DoubleNBL, p, phi, period)
	if math.Abs(tt*(1-w)-tbase) > 1e-6*tbase {
		t.Fatalf("(1-WASTE)·T = %v, want Tbase = %v", tt*(1-w), tbase)
	}
	// Saturated platform: runtime is infinite.
	sat := p.WithMTBF(10)
	tt, _ = ExpectedRuntime(DoubleNBL, sat, phi, period, tbase)
	if !math.IsInf(tt, 1) {
		t.Fatalf("runtime at M=10s = %v, want +Inf", tt)
	}
}

func TestWasteInUnitIntervalProperty(t *testing.T) {
	p := baseParams()
	f := func(rawPhi, rawM, rawP float64) bool {
		phi := quickPhi(p, rawPhi)
		m := 1 + math.Mod(math.Abs(rawM), 1e6)
		if math.IsNaN(m) {
			m = 100
		}
		q := p.WithMTBF(m)
		for _, pr := range Protocols {
			minP := MinPeriod(pr, q, phi)
			span := 1 + math.Mod(math.Abs(rawP), 1e5)
			if math.IsNaN(span) {
				span = 1
			}
			w, err := Waste(pr, q, phi, minP+span)
			if err != nil {
				return false
			}
			if w < 0 || w > 1 || math.IsNaN(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWasteMonotoneInMTBFProperty(t *testing.T) {
	// At the optimal period, a larger MTBF never increases the waste.
	p := exaParams()
	f := func(rawPhi, rawM1, rawM2 float64) bool {
		phi := quickPhi(p, rawPhi)
		m1 := 30 + math.Mod(math.Abs(rawM1), 1e6)
		m2 := 30 + math.Mod(math.Abs(rawM2), 1e6)
		if math.IsNaN(m1) || math.IsNaN(m2) {
			return true
		}
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		for _, pr := range Protocols {
			w1 := OptimalWaste(pr, p.WithMTBF(m1), phi)
			w2 := OptimalWaste(pr, p.WithMTBF(m2), phi)
			if w2 > w1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
		{math.NaN(), 1}, {math.Inf(1), 1}, {math.Inf(-1), 0},
	}
	for _, tc := range cases {
		if got := clamp01(tc.in); got != tc.want {
			t.Errorf("clamp01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
