package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThetaEndpoints(t *testing.T) {
	p := baseParams()
	if got := p.Theta(p.R); got != p.R {
		t.Fatalf("θ(R) = %v, want θmin = R = %v", got, p.R)
	}
	if got := p.Theta(0); got != (1+p.Alpha)*p.R {
		t.Fatalf("θ(0) = %v, want θmax = (1+α)R = %v", got, (1+p.Alpha)*p.R)
	}
	if p.ThetaMin() != p.R {
		t.Fatalf("ThetaMin = %v, want %v", p.ThetaMin(), p.R)
	}
	if p.ThetaMax() != (1+p.Alpha)*p.R {
		t.Fatalf("ThetaMax = %v, want %v", p.ThetaMax(), (1+p.Alpha)*p.R)
	}
}

func TestThetaPhiInverse(t *testing.T) {
	p := baseParams()
	for _, phi := range []float64{0, 0.5, 1, 2, 3.99, 4} {
		back := p.PhiForTheta(p.Theta(phi))
		if math.Abs(back-phi) > 1e-12 {
			t.Errorf("PhiForTheta(Theta(%v)) = %v", phi, back)
		}
	}
	// Out-of-range θ values clamp φ to [0, R].
	if got := p.PhiForTheta(p.ThetaMax() + 100); got != 0 {
		t.Errorf("φ for θ beyond θmax = %v, want 0", got)
	}
	if got := p.PhiForTheta(p.ThetaMin() - 1); got != p.R {
		t.Errorf("φ for θ below θmin = %v, want R", got)
	}
}

func TestPhiForThetaAlphaZero(t *testing.T) {
	p := baseParams()
	p.Alpha = 0
	// With no overlap capability, any transfer is fully blocking.
	for _, theta := range []float64{p.R, 2 * p.R, 100} {
		if got := p.PhiForTheta(theta); got != p.R {
			t.Errorf("α=0: PhiForTheta(%v) = %v, want R", theta, got)
		}
	}
	if p.ThetaMax() != p.ThetaMin() {
		t.Errorf("α=0: θmax = %v should equal θmin = %v", p.ThetaMax(), p.ThetaMin())
	}
}

func TestCheckPhi(t *testing.T) {
	p := baseParams()
	for _, phi := range []float64{0, 2, 4} {
		if err := p.CheckPhi(phi); err != nil {
			t.Errorf("CheckPhi(%v) = %v, want nil", phi, err)
		}
	}
	for _, phi := range []float64{-0.1, 4.01, 100} {
		if err := p.CheckPhi(phi); err == nil {
			t.Errorf("CheckPhi(%v) should fail", phi)
		}
	}
}

func TestExchangeRate(t *testing.T) {
	p := baseParams()
	if got := p.ExchangeRate(p.R); got != 0 {
		t.Errorf("fully blocking exchange rate = %v, want 0", got)
	}
	if got := p.ExchangeRate(0); got != 1 {
		t.Errorf("fully overlapped exchange rate = %v, want 1", got)
	}
	// The rate must be monotone decreasing in φ.
	prev := 2.0
	for _, phi := range []float64{0, 1, 2, 3, 4} {
		r := p.ExchangeRate(phi)
		if r > prev {
			t.Fatalf("exchange rate not decreasing at φ=%v: %v > %v", phi, r, prev)
		}
		prev = r
	}
}

// quickPhi maps an arbitrary float into the valid φ domain [0, R].
func quickPhi(p Params, raw float64) float64 {
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		return 0
	}
	frac := math.Abs(raw) - math.Floor(math.Abs(raw))
	return frac * p.R
}

func TestThetaPhiRoundTripProperty(t *testing.T) {
	p := baseParams()
	f := func(raw float64) bool {
		phi := quickPhi(p, raw)
		theta := p.Theta(phi)
		if theta < p.ThetaMin()-1e-9 || theta > p.ThetaMax()+1e-9 {
			return false
		}
		return math.Abs(p.PhiForTheta(theta)-phi) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThetaMonotoneProperty(t *testing.T) {
	// θ(φ) is strictly decreasing in φ for α > 0: stretching the
	// transfer is what buys the overhead down.
	p := exaParams()
	f := func(rawA, rawB float64) bool {
		a, b := quickPhi(p, rawA), quickPhi(p, rawB)
		if a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return p.Theta(a) > p.Theta(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
