package core

import "fmt"

// The overlap model (paper §II) interpolates the cost of the remote
// checkpoint exchange between two extremes:
//
//   - θ = θmin = R: the transfer runs at full network speed, no
//     computation can proceed concurrently, the overhead is φ = R;
//   - θ = θmax = (1+α)θmin: the transfer is stretched enough to hide
//     entirely behind computation, the overhead is φ = 0.
//
// Between the extremes the paper uses the linear interpolation
//
//	θ(φ) = θmin + α(θmin − φ).

// ThetaMin returns θmin, the smallest possible duration of the remote
// exchange (fully blocking). It equals R.
func (p Params) ThetaMin() float64 { return p.R }

// ThetaMax returns θmax = (1+α)θmin, the exchange duration at which
// the transfer is fully overlapped with computation (φ = 0).
func (p Params) ThetaMax() float64 { return (1 + p.Alpha) * p.R }

// Theta returns the duration θ(φ) of the remote exchange for overhead
// φ ∈ [0, R]: θ(φ) = θmin + α(θmin − φ).
func (p Params) Theta(phi float64) float64 {
	return p.R + p.Alpha*(p.R-phi)
}

// PhiForTheta inverts the overlap model: it returns the overhead φ
// incurred when the exchange is stretched to duration θ ∈ [θmin, θmax].
// For α = 0 the transfer cannot be stretched and φ = R for any θ.
func (p Params) PhiForTheta(theta float64) float64 {
	if p.Alpha == 0 {
		return p.R
	}
	phi := p.R - (theta-p.R)/p.Alpha
	switch {
	case phi < 0:
		return 0
	case phi > p.R:
		return p.R
	}
	return phi
}

// CheckPhi reports an error if φ is outside [0, R], the domain of the
// overlap model.
func (p Params) CheckPhi(phi float64) error {
	if phi < 0 || phi > p.R {
		return fmt.Errorf("core: overhead φ = %v outside [0, R = %v]", phi, p.R)
	}
	return nil
}

// ExchangeRate returns the rate at which application work progresses
// during a remote exchange of duration θ(φ), namely (θ−φ)/θ. It is 0
// in fully blocking mode and approaches 1 under full overlap.
func (p Params) ExchangeRate(phi float64) float64 {
	theta := p.Theta(phi)
	if theta <= 0 {
		return 0
	}
	return (theta - phi) / theta
}
