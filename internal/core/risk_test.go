package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRiskWindows(t *testing.T) {
	p := baseParams()
	phi := 1.0
	theta := p.Theta(phi)
	cases := []struct {
		pr   Protocol
		want float64
	}{
		{DoubleNBL, p.D + p.R + theta},
		{DoubleBoF, p.D + 2*p.R},
		{DoubleBlocking, p.D + 2*p.R},
		{TripleNBL, p.D + p.R + 2*theta},
		{TripleBoF, p.D + 3*p.R},
	}
	for _, tc := range cases {
		if got := RiskWindow(tc.pr, p, phi); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s risk window = %v, want %v", tc.pr, got, tc.want)
		}
	}
	if !math.IsNaN(RiskWindow(Protocol(99), p, phi)) {
		t.Error("invalid protocol risk window should be NaN")
	}
}

func TestBoFShrinksRisk(t *testing.T) {
	// Blocking on failure exists precisely to shrink the risk window;
	// strictly so whenever θ > R (i.e. φ < R).
	for _, p := range []Params{baseParams(), exaParams()} {
		for _, frac := range []float64{0, 0.25, 0.5, 0.9} {
			phi := frac * p.R
			if RiskWindow(DoubleBoF, p, phi) >= RiskWindow(DoubleNBL, p, phi) {
				t.Errorf("%s φ/R=%v: BoF risk not smaller", p.short(), frac)
			}
			if RiskWindow(TripleBoF, p, phi) >= RiskWindow(TripleNBL, p, phi) {
				t.Errorf("%s φ/R=%v: TripleBoF risk not smaller", p.short(), frac)
			}
		}
	}
}

func TestSuccessProbabilityFormulas(t *testing.T) {
	// Cross-check Eq. 11/16 against a direct small-n computation where
	// Pow is still accurate.
	p := baseParams().WithNodes(6).WithMTBF(24 * 3600)
	phi := 0.0
	tlife := 3600.0 * 24
	lambda := p.Lambda()

	risk := RiskWindow(DoubleNBL, p, phi)
	want := math.Pow(1-2*lambda*lambda*tlife*risk, float64(p.N)/2)
	if got := SuccessProbability(DoubleNBL, p, phi, tlife); math.Abs(got-want) > 1e-9 {
		t.Errorf("double success = %v, want Eq.11 = %v", got, want)
	}

	risk = RiskWindow(TripleNBL, p, phi)
	want = math.Pow(1-6*lambda*lambda*lambda*tlife*risk*risk, float64(p.N)/3)
	if got := SuccessProbability(TripleNBL, p, phi, tlife); math.Abs(got-want) > 1e-9 {
		t.Errorf("triple success = %v, want Eq.16 = %v", got, want)
	}

	want = math.Pow(1-lambda*tlife, float64(p.N))
	if got := BaseSuccessProbability(p, tlife); math.Abs(got-want) > 1e-9 {
		t.Errorf("base success = %v, want Eq.12 = %v", got, want)
	}
}

func TestSuccessProbabilityBounds(t *testing.T) {
	p := exaParams()
	for _, pr := range Protocols {
		for _, tlife := range []float64{0, 3600, 1e9, 1e15} {
			got := SuccessProbability(pr, p, 0, tlife)
			if got < 0 || got > 1 || math.IsNaN(got) {
				t.Errorf("%s t=%v: success = %v outside [0,1]", pr, tlife, got)
			}
		}
		if got := SuccessProbability(pr, p, 0, 0); got != 1 {
			t.Errorf("%s: success at t=0 = %v, want 1", pr, got)
		}
	}
	// Fatality clamp: ridiculous risk drives success to 0, not negative.
	tiny := Params{D: 0, Delta: 1, R: 1e6, Alpha: 0, N: 2, M: 1e-3}
	if got := SuccessProbability(DoubleNBL, tiny, 0, 1e12); got != 0 {
		t.Errorf("saturated success = %v, want 0", got)
	}
}

func TestSuccessProbabilityNumericalStability(t *testing.T) {
	// Exascale regime: per-group fatality ~1e-15, one million nodes.
	// The log1p path must not collapse to exactly 1.
	p := exaParams().WithMTBF(Hour())
	tlife := 30.0 * 24 * 3600
	got := SuccessProbability(DoubleNBL, p, 0, tlife)
	if got <= 0 || got >= 1 {
		t.Fatalf("exascale success = %v, want in (0,1)", got)
	}
	naive := math.Pow(1-2*p.Lambda()*p.Lambda()*tlife*RiskWindow(DoubleNBL, p, 0), float64(p.N)/2)
	if math.Abs(got-naive) > 1e-6 {
		t.Fatalf("stable %v vs naive %v differ too much", got, naive)
	}
}

func Hour() float64 { return 3600 }

func TestSuccessMonotoneInLifeProperty(t *testing.T) {
	p := baseParams().WithMTBF(60)
	f := func(raw1, raw2 float64) bool {
		t1 := math.Mod(math.Abs(raw1), 1e7)
		t2 := math.Mod(math.Abs(raw2), 1e7)
		if math.IsNaN(t1) || math.IsNaN(t2) {
			return true
		}
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		for _, pr := range Protocols {
			if SuccessProbability(pr, p, 0, t2) > SuccessProbability(pr, p, 0, t1)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTripleDominatesRisk reproduces the paper's central risk claim
// (Fig. 6b/9b): the triple algorithm's success probability dominates
// both double protocols even with its largest possible risk window
// θ = (α+1)R (φ = 0).
func TestTripleDominatesRisk(t *testing.T) {
	for _, p := range []Params{baseParams(), exaParams()} {
		for _, m := range []float64{30, 60, 300, 1800} {
			q := p.WithMTBF(m)
			for _, tlife := range []float64{24 * 3600, 10 * 24 * 3600, 30 * 24 * 3600} {
				tri := SuccessProbability(TripleNBL, q, 0, tlife)
				nbl := SuccessProbability(DoubleNBL, q, 0, tlife)
				bof := SuccessProbability(DoubleBoF, q, 0, tlife)
				if tri < nbl-1e-15 || tri < bof-1e-15 {
					t.Errorf("%s M=%v t=%v: triple %v not dominating nbl %v / bof %v",
						q.short(), m, tlife, tri, nbl, bof)
				}
				if bof < nbl-1e-15 {
					t.Errorf("%s M=%v t=%v: BoF %v should be at least as safe as NBL %v",
						q.short(), m, tlife, bof, nbl)
				}
			}
		}
	}
}

func TestCheckpointingBeatsNoCheckpointing(t *testing.T) {
	// Any buddy protocol must beat running with no checkpoints at all
	// for a long execution: Pbase decays with λT, the pairs with λ²T.
	p := baseParams().WithMTBF(600)
	tlife := 7.0 * 24 * 3600
	pbase := BaseSuccessProbability(p, tlife)
	for _, pr := range Protocols {
		if got := SuccessProbability(pr, p, 0, tlife); got <= pbase {
			t.Errorf("%s success %v should beat no-checkpoint %v", pr, got, pbase)
		}
	}
}

func TestRunsTolerated(t *testing.T) {
	p := baseParams().WithMTBF(60)
	tlife := 24.0 * 3600
	nbl := RunsTolerated(DoubleNBL, p, 0, tlife)
	tri := RunsTolerated(TripleNBL, p, 0, tlife)
	if !(tri > 2*nbl) {
		t.Errorf("triple runs tolerated %v, want > 2x double %v (paper §VI.A)", tri, nbl)
	}
	if got := RunsTolerated(DoubleNBL, p, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("runs tolerated at t=0 = %v, want +Inf", got)
	}
}

func TestGroupSurvivalEdges(t *testing.T) {
	if got := groupSurvival(0.5, 0); got != 1 {
		t.Errorf("zero groups survival = %v, want 1", got)
	}
	if got := groupSurvival(-0.1, 10); got != 1 {
		t.Errorf("negative fatality survival = %v, want 1", got)
	}
	if got := groupSurvival(1, 10); got != 0 {
		t.Errorf("certain fatality survival = %v, want 0", got)
	}
	if got := groupSurvival(0.5, 2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("survival(0.5, 2) = %v, want 0.25", got)
	}
}

func TestFatalFailureProbabilityComplement(t *testing.T) {
	p := exaParams().WithMTBF(120)
	tlife := 3.0 * 24 * 3600
	for _, pr := range Protocols {
		s := SuccessProbability(pr, p, 0.2*p.R, tlife)
		q := FatalFailureProbability(pr, p, 0.2*p.R, tlife)
		if math.Abs(s+q-1) > 1e-12 {
			t.Errorf("%s: success+fatal = %v, want 1", pr, s+q)
		}
	}
}
