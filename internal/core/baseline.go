package core

import "math"

// This file implements the centralized stable-storage checkpointing
// baselines the paper compares against in §III.B and §VII: the
// first-order period approximations of Young and the refinement of
// Daly. In these formulas the checkpoint cost C is the time to dump
// the WHOLE application onto stable storage, whereas the distributed
// protocols only pay the single-node local/remote checkpoint, which is
// why their optimal periods are much larger (paper §III.B).

// YoungPeriod returns Young's first-order optimal checkpointing period
// T = √(2MC) + C for platform MTBF m and checkpoint cost c.
func YoungPeriod(m, c float64) float64 {
	return math.Sqrt(2*m*c) + c
}

// DalyPeriod returns Daly's higher-order estimate
// T = √(2(M+D+R)C) + C for platform MTBF m, downtime d, recovery r and
// checkpoint cost c.
func DalyPeriod(m, d, r, c float64) float64 {
	return math.Sqrt(2*(m+d+r)*c) + c
}

// CentralizedWaste returns the first-order waste of a coordinated
// checkpointing protocol writing to centralized stable storage, using
// the same two-source decomposition as Eq. 4/5: WASTEff = C/P and
// F = D + R + P/2 (blocking checkpoint, uniform failure position).
func CentralizedWaste(m, d, r, c, period float64) float64 {
	if period <= c || m <= 0 {
		return 1
	}
	wff := c / period
	f := d + r + period/2
	return clamp01(1 - (1-clamp01(f/m))*(1-clamp01(wff)))
}

// CentralizedOptimalWaste returns the waste of the centralized
// baseline at Daly's period. The paper's point in §III.B is that the
// distributed protocols beat this because their δ (single node, local
// medium) is far smaller than the global dump time C.
func CentralizedOptimalWaste(m, d, r, c float64) float64 {
	return CentralizedWaste(m, d, r, c, DalyPeriod(m, d, r, c))
}
