// Package protocol gives the declarative, executable description of
// each checkpointing protocol: the phase structure of its period (who
// sends which image to whom, at what work rate, and when the snapshot
// set commits) and the failure-handling plan (stall, retransmissions,
// overlap window, risk window, resume policy).
//
// The analytic package core encodes the same information as closed
// formulas; this package exposes it as data so the detailed simulator
// can drive the cluster/checkpoint/network substrates. The test suite
// asserts the two views agree (work per period, risk windows, commit
// points), which guards against the two implementations drifting.
package protocol

import (
	"fmt"

	"repro/internal/core"
)

// PhaseKind classifies a period phase.
type PhaseKind int

const (
	// LocalCheckpoint is the blocking local snapshot (double
	// protocols' δ phase). No work progresses.
	LocalCheckpoint PhaseKind = iota
	// Exchange is a buddy image transfer overlapped with computation
	// at rate (θ−φ)/θ.
	Exchange
	// Compute is the full-speed phase σ.
	Compute
)

// String returns the phase-kind name.
func (k PhaseKind) String() string {
	switch k {
	case LocalCheckpoint:
		return "local-checkpoint"
	case Exchange:
		return "exchange"
	case Compute:
		return "compute"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// BuddyTarget selects the destination of an exchange phase relative
// to the sending rank.
type BuddyTarget int

const (
	// NoTarget: the phase moves no image (local checkpoint, compute).
	NoTarget BuddyTarget = iota
	// PairBuddy: the unique partner in a pair.
	PairBuddy
	// PreferredBuddy: p' in the triple rotation (§IV).
	PreferredBuddy
	// SecondaryBuddy: p'' in the triple rotation (§IV).
	SecondaryBuddy
)

// Phase is one part of the protocol period.
type Phase struct {
	Kind     PhaseKind
	Duration float64
	// WorkRate is the application progress rate during the phase
	// (0 for blocking, (θ−φ)/θ for overlapped exchange, 1 for σ).
	WorkRate float64
	// SendTo names the image destination for Exchange phases.
	SendTo BuddyTarget
	// CommitAfter marks the phase whose completion commits the
	// snapshot set (double: after the pair exchange; triple: after
	// the preferred-buddy exchange).
	CommitAfter bool
}

// Schedule is a protocol's period.
type Schedule struct {
	Protocol core.Protocol
	Phi      float64
	Phases   []Phase
}

// Build returns the period schedule for the protocol at overhead φ
// and the given period length.
func Build(pr core.Protocol, p core.Params, phi, period float64) (Schedule, error) {
	phi = core.EffectivePhi(pr, p, phi)
	ph, err := core.PeriodPhases(pr, p, phi, period)
	if err != nil {
		return Schedule{}, err
	}
	exRate := p.ExchangeRate(phi)
	var phases []Phase
	if pr.IsTriple() {
		phases = []Phase{
			{Kind: Exchange, Duration: ph.Ckpt1, WorkRate: exRate, SendTo: PreferredBuddy, CommitAfter: true},
			{Kind: Exchange, Duration: ph.Ckpt2, WorkRate: exRate, SendTo: SecondaryBuddy},
			{Kind: Compute, Duration: ph.Compute, WorkRate: 1},
		}
	} else {
		phases = []Phase{
			{Kind: LocalCheckpoint, Duration: ph.Ckpt1, WorkRate: 0},
			{Kind: Exchange, Duration: ph.Ckpt2, WorkRate: exRate, SendTo: PairBuddy, CommitAfter: true},
			{Kind: Compute, Duration: ph.Compute, WorkRate: 1},
		}
	}
	return Schedule{Protocol: pr, Phi: phi, Phases: phases}, nil
}

// Period returns the schedule's total duration.
func (s Schedule) Period() float64 {
	var sum float64
	for _, ph := range s.Phases {
		sum += ph.Duration
	}
	return sum
}

// Work returns the application work accomplished in one fault-free
// period; it must equal core.Work for the same inputs.
func (s Schedule) Work() float64 {
	var sum float64
	for _, ph := range s.Phases {
		sum += ph.Duration * ph.WorkRate
	}
	return sum
}

// CommitPhase returns the index of the phase whose completion commits
// the snapshot set, or -1 if none (not a valid protocol schedule).
func (s Schedule) CommitPhase() int {
	for i, ph := range s.Phases {
		if ph.CommitAfter {
			return i
		}
	}
	return -1
}

// FailurePlan describes how a protocol reacts to a failure.
type FailurePlan struct {
	// Stall is the blocking time before re-execution can start:
	// downtime + own-image recovery + blocking retransmissions for
	// the BoF variants.
	Stall float64
	// ImagesToRestore is the number of buddy images the replacement
	// must re-receive besides its own (1 for pairs, 2 for triples).
	ImagesToRestore int
	// OverlapWindow is the re-execution time slice with reduced work
	// rate while the images stream in (0 for the BoF variants, which
	// already paid for them in Stall).
	OverlapWindow float64
	// RestoreDone lists, for each restored image, the delay after the
	// failure at which that image is back on the replacement node.
	// The last entry closes the risk window.
	RestoreDone []float64
	// RiskWindow is the risk-period length, equal to the last
	// RestoreDone entry and to core.RiskWindow.
	RiskWindow float64
}

// PlanFailure returns the failure-handling plan for the protocol.
func PlanFailure(pr core.Protocol, p core.Params, phi float64) FailurePlan {
	phi = core.EffectivePhi(pr, p, phi)
	theta := p.Theta(phi)
	images := pr.GroupSize() - 1
	plan := FailurePlan{
		Stall:           p.D + p.R,
		ImagesToRestore: images,
	}
	perImage := theta
	if pr.BlocksOnFailure() {
		plan.Stall += float64(images) * p.R
		perImage = p.R
	} else {
		plan.OverlapWindow = float64(images) * theta
	}
	at := p.D + p.R
	for i := 0; i < images; i++ {
		at += perImage
		plan.RestoreDone = append(plan.RestoreDone, at)
	}
	plan.RiskWindow = at
	return plan
}
