package protocol

import (
	"math"
	"testing"

	"repro/internal/core"
)

func baseParams() core.Params {
	return core.Params{D: 0, Delta: 2, R: 4, Alpha: 10, N: 324 * 32, M: 7 * 3600}
}

func exaParams() core.Params {
	return core.Params{D: 60, Delta: 30, R: 60, Alpha: 10, N: 1_000_000, M: 7 * 3600}
}

func TestBuildShapes(t *testing.T) {
	p := baseParams()
	s, err := Build(core.DoubleNBL, p, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 3 {
		t.Fatalf("double schedule has %d phases", len(s.Phases))
	}
	if s.Phases[0].Kind != LocalCheckpoint || s.Phases[1].Kind != Exchange || s.Phases[2].Kind != Compute {
		t.Fatalf("double phase kinds wrong: %+v", s.Phases)
	}
	if s.Phases[1].SendTo != PairBuddy {
		t.Fatal("double exchange should target the pair buddy")
	}
	if s.CommitPhase() != 1 {
		t.Fatalf("double commit phase = %d, want 1", s.CommitPhase())
	}

	s, err = Build(core.TripleNBL, p, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Phases[0].Kind != Exchange || s.Phases[0].SendTo != PreferredBuddy {
		t.Fatalf("triple phase 1 = %+v", s.Phases[0])
	}
	if s.Phases[1].SendTo != SecondaryBuddy {
		t.Fatalf("triple phase 2 = %+v", s.Phases[1])
	}
	if s.CommitPhase() != 0 {
		t.Fatalf("triple commit phase = %d, want 0 (preferred buddy)", s.CommitPhase())
	}
}

func TestBuildRejectsShortPeriods(t *testing.T) {
	if _, err := Build(core.DoubleNBL, baseParams(), 0, 10); err == nil {
		t.Fatal("period shorter than δ+θmax should fail")
	}
}

// TestScheduleAgreesWithCore is the anti-drift check: the declarative
// schedule and the analytic formulas must describe the same protocol.
func TestScheduleAgreesWithCore(t *testing.T) {
	for _, p := range []core.Params{baseParams(), exaParams()} {
		for _, pr := range core.Protocols {
			for _, frac := range []float64{0, 0.25, 0.5, 1} {
				phi := frac * p.R
				period := core.MinPeriod(pr, p, phi) * 3
				s, err := Build(pr, p, phi, period)
				if err != nil {
					t.Fatalf("%s: %v", pr, err)
				}
				if math.Abs(s.Period()-period) > 1e-9 {
					t.Errorf("%s: schedule period %v != %v", pr, s.Period(), period)
				}
				wantW := core.Work(pr, p, core.EffectivePhi(pr, p, phi), period)
				if math.Abs(s.Work()-wantW) > 1e-6 {
					t.Errorf("%s φ=%v: schedule work %v != core.Work %v", pr, phi, s.Work(), wantW)
				}
				plan := PlanFailure(pr, p, phi)
				wantRisk := core.RiskWindow(pr, p, phi)
				if math.Abs(plan.RiskWindow-wantRisk) > 1e-9 {
					t.Errorf("%s φ=%v: plan risk %v != core risk %v", pr, phi, plan.RiskWindow, wantRisk)
				}
				if plan.ImagesToRestore != pr.GroupSize()-1 {
					t.Errorf("%s: %d images to restore", pr, plan.ImagesToRestore)
				}
				if got := len(plan.RestoreDone); got != plan.ImagesToRestore {
					t.Errorf("%s: %d restore milestones", pr, got)
				}
				if plan.RestoreDone[len(plan.RestoreDone)-1] != plan.RiskWindow {
					t.Errorf("%s: last restore %v != risk window %v",
						pr, plan.RestoreDone[len(plan.RestoreDone)-1], plan.RiskWindow)
				}
			}
		}
	}
}

func TestPlanFailureBlockingVsOverlap(t *testing.T) {
	p := baseParams()
	phi := 1.0
	nbl := PlanFailure(core.DoubleNBL, p, phi)
	bof := PlanFailure(core.DoubleBoF, p, phi)
	// NBL pays with an overlap window, BoF with a longer stall.
	if nbl.OverlapWindow == 0 || bof.OverlapWindow != 0 {
		t.Fatalf("overlap windows: nbl %v, bof %v", nbl.OverlapWindow, bof.OverlapWindow)
	}
	if bof.Stall <= nbl.Stall {
		t.Fatalf("stalls: bof %v should exceed nbl %v", bof.Stall, nbl.Stall)
	}
	if bof.RiskWindow >= nbl.RiskWindow {
		t.Fatalf("risk: bof %v should be below nbl %v", bof.RiskWindow, nbl.RiskWindow)
	}
}

func TestCommitPhaseMissing(t *testing.T) {
	s := Schedule{Phases: []Phase{{Kind: Compute, Duration: 1, WorkRate: 1}}}
	if s.CommitPhase() != -1 {
		t.Fatal("schedule without commit should return -1")
	}
}

func TestPhaseKindString(t *testing.T) {
	for k, want := range map[PhaseKind]string{
		LocalCheckpoint: "local-checkpoint", Exchange: "exchange", Compute: "compute",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if PhaseKind(9).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestTripleWorkRateDuringExchanges(t *testing.T) {
	p := baseParams()
	s, err := Build(core.TripleNBL, p, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// At φ=0 the exchanges are fully overlapped: work rate 1 even
	// during the transfers — the triple protocol's headline property.
	if s.Phases[0].WorkRate != 1 || s.Phases[1].WorkRate != 1 {
		t.Fatalf("φ=0 exchange rates = %v, %v; want 1",
			s.Phases[0].WorkRate, s.Phases[1].WorkRate)
	}
}
