package rng

import (
	"math"
	"testing"
)

// TestExpFromUniformsMatchesExponential pins the batched conversion's
// contract: buffering the positive uniforms and converting them with
// ExpFromUniforms yields bit for bit the variates Exponential would
// have drawn from the same stream states, for plain and reflected
// streams alike.
func TestExpFromUniformsMatchesExponential(t *testing.T) {
	for _, reflected := range []bool{false, true} {
		for _, rate := range []float64{1, 1.0 / 1800, 3.5} {
			a, b := New(99), New(99)
			a.SetReflected(reflected)
			b.SetReflected(reflected)
			const n = 257
			us := make([]float64, n)
			for i := range us {
				us[i] = a.PositiveFloat64()
			}
			got := make([]float64, n)
			ExpFromUniforms(rate, us, got)
			for i := 0; i < n; i++ {
				if want := b.Exponential(rate); got[i] != want {
					t.Fatalf("reflected=%v rate=%v draw %d: batched %v != scalar %v",
						reflected, rate, i, got[i], want)
				}
			}
		}
	}
}

// TestExpFromUniformsInPlace checks the documented aliasing: us and dst
// may be the same slice.
func TestExpFromUniformsInPlace(t *testing.T) {
	a := New(7)
	us := make([]float64, 64)
	for i := range us {
		us[i] = a.PositiveFloat64()
	}
	want := make([]float64, len(us))
	ExpFromUniforms(2, us, want)
	b := New(7)
	for i := range us {
		us[i] = b.PositiveFloat64()
	}
	ExpFromUniforms(2, us, us)
	for i := range us {
		if us[i] != want[i] {
			t.Fatalf("in-place conversion diverges at %d: %v != %v", i, us[i], want[i])
		}
	}
}

// TestExpZigguratDeterministic: equal seeds replay the exact variate
// sequence — the ziggurat's rejection retries are a pure function of
// the stream.
func TestExpZigguratDeterministic(t *testing.T) {
	a, b := New(1234), New(1234)
	for i := 0; i < 10000; i++ {
		if x, y := a.ExpZiggurat(0.5), b.ExpZiggurat(0.5); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
}

// TestExpZigguratMoments: the ziggurat samples the same Exp(rate)
// distribution as the inverse CDF — mean and second moment must land
// within 5σ of the analytic values (1/rate and 2/rate²).
func TestExpZigguratMoments(t *testing.T) {
	const (
		n    = 2_000_000
		rate = 1.0 / 450
	)
	s := New(42)
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.ExpZiggurat(rate)
		if x < 0 {
			t.Fatalf("draw %d: negative variate %v", i, x)
		}
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	m2 := sum2 / n
	// Var(X) = 1/rate², se(mean) = 1/(rate·√n).
	seMean := 1 / (rate * math.Sqrt(n))
	if d := math.Abs(mean - 1/rate); d > 5*seMean {
		t.Fatalf("mean %v vs %v: |diff| %v > 5σ (%v)", mean, 1/rate, d, 5*seMean)
	}
	// Var(X²) = E[X⁴]−E[X²]² = 24/rate⁴ − 4/rate⁴ = 20/rate⁴.
	seM2 := math.Sqrt(20) / (rate * rate * math.Sqrt(n))
	if d := math.Abs(m2 - 2/(rate*rate)); d > 5*seM2 {
		t.Fatalf("second moment %v vs %v: |diff| %v > 5σ (%v)", m2, 2/(rate*rate), d, 5*seM2)
	}
}

// TestExpZigguratAntitheticCorrelation: a reflected stream mirrors the
// within-layer position, so paired draws must be strongly negatively
// correlated on the accept path — the property that keeps antithetic
// pairing worthwhile even under the log-free sampler. The exact
// quantile reflection of the inverse CDF is not preserved (rejection
// retries may consume differently and desynchronize the streams), so
// each pair is drawn from freshly aligned streams and the bound is a
// correlation threshold, not bitwise equality.
func TestExpZigguratAntitheticCorrelation(t *testing.T) {
	const n = 100_000
	var plain, refl Stream
	refl.SetReflected(true)
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		plain.Reseed(uint64(i))
		refl.Reseed(uint64(i))
		x := plain.ExpZiggurat(1)
		y := refl.ExpZiggurat(1)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if corr := cov / math.Sqrt(vx*vy); corr > -0.3 {
		t.Fatalf("antithetic ziggurat correlation %v, want strongly negative (≤ -0.3)", corr)
	}
}

// TestFillExpZigguratMatchesScalar: the batched refill is the scalar
// ziggurat loop verbatim.
func TestFillExpZigguratMatchesScalar(t *testing.T) {
	a, b := New(5), New(5)
	dst := make([]float64, 301)
	a.FillExpZiggurat(2, dst)
	for i, got := range dst {
		if want := b.ExpZiggurat(2); got != want {
			t.Fatalf("draw %d: batched %v != scalar %v", i, got, want)
		}
	}
}
