// Package rng provides deterministic, splittable pseudo-random number
// streams and the variate distributions used by the failure and memory
// substrates.
//
// The simulator needs (a) reproducible runs given a seed, (b) one
// independent stream per node so that adding instrumentation or
// reordering events never perturbs the failure sample, and (c)
// Exponential, Weibull and LogNormal variates for the failure laws
// discussed in the paper's related work (§VII). The generator is
// xoshiro256**, seeded through SplitMix64 as its authors recommend;
// both are implemented here to keep the module stdlib-only.
package rng

import "math"

// Stream is a deterministic pseudo-random stream (xoshiro256**).
// The zero value is invalid; use New or Split.
type Stream struct {
	s [4]uint64
	// cachedNorm holds the second Box-Muller variate between calls.
	cachedNorm    float64
	hasCachedNorm bool
	// reflected selects the antithetic uniform mapping: Float64 returns
	// the reflection (1 − 2⁻⁵³) − u instead of u, so every variate built
	// on the uniform (Exponential, Weibull, LogNormal, Normal) is drawn
	// from the reflected quantile. The raw Uint64 sequence — and with it
	// Intn victim selection and Split/ReseedSplit child derivation — is
	// unaffected, which is what keeps an antithetic run consuming its
	// stream in lockstep with its mirror run.
	reflected bool
}

// maxUniform is the largest value Float64 can return: (2⁵³−1)/2⁵³.
// Reflection maps u → maxUniform − u; both operands are multiples of
// 2⁻⁵³ no larger than 1, so the subtraction is exact and the image is
// again [0, 1).
const maxUniform = float64(1<<53-1) / (1 << 53)

// SetReflected switches the stream between the plain and the
// antithetic (reflected-uniform) mapping. It does not consume or
// perturb the underlying state: toggling it between otherwise
// identical runs yields perfectly synchronized mirror trajectories.
func (s *Stream) SetReflected(on bool) {
	s.reflected = on
	s.cachedNorm = 0
	s.hasCachedNorm = false
}

// Reflected reports whether the stream draws reflected uniforms.
func (s *Stream) Reflected() bool { return s.reflected }

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is the recommended seeding generator for xoshiro.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Stream {
	var s Stream
	s.Reseed(seed)
	return &s
}

// Reseed reinitializes the stream in place to the state New(seed)
// would produce, without allocating. It is the hot-path alternative to
// New for callers that reuse one Stream across many runs. The
// reflection mode is preserved: an antithetic stream reseeded for the
// next run stays antithetic until SetReflected flips it.
func (s *Stream) Reseed(seed uint64) {
	st := seed
	for i := range s.s {
		s.s[i] = splitMix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	s.cachedNorm = 0
	s.hasCachedNorm = false
}

// Split derives an independent child stream identified by index. It
// does not advance the parent. Typical use: one child per node.
func (s *Stream) Split(index uint64) *Stream {
	var child Stream
	child.ReseedSplit(s, index)
	return &child
}

// ReseedSplit reinitializes s in place to the state parent.Split(index)
// would produce, without allocating. The child inherits the parent's
// reflection mode, so the per-node streams of an antithetic run draw
// reflected variates too.
func (s *Stream) ReseedSplit(parent *Stream, index uint64) {
	// Mix the parent state with the index through SplitMix64 so that
	// children of distinct indices, and children of distinct parents,
	// are decorrelated.
	st := parent.s[0] ^ (parent.s[1] << 1) ^ (parent.s[2] << 2) ^ (parent.s[3] << 3) ^ (index * 0xd1342543de82ef95)
	s.Reseed(splitMix64(&st))
	s.reflected = parent.reflected
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of
// precision. A reflected stream (SetReflected) returns the exact
// antithetic image maxUniform − u of the variate u the plain stream
// would have returned, consuming the identical raw state either way.
func (s *Stream) Float64() float64 {
	u := float64(s.Uint64()>>11) / (1 << 53)
	if s.reflected {
		return maxUniform - u
	}
	return u
}

// positiveFloat64 returns a uniform variate in (0, 1], suitable as the
// argument of a logarithm.
func (s *Stream) positiveFloat64() float64 {
	return 1 - s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + (aLo*bHi+t&mask)>>32 + t>>32
	return hi, lo
}

// Exponential returns a variate of the Exponential distribution with
// the given rate λ (mean 1/λ).
func (s *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	return -math.Log(s.positiveFloat64()) / rate
}

// Weibull returns a variate of the Weibull distribution with shape k
// and scale λ. Shape k < 1 models the infant-mortality failure laws
// observed on real HPC platforms (paper §VII refs [8]-[10]).
func (s *Stream) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive shape or scale")
	}
	return scale * math.Pow(-math.Log(s.positiveFloat64()), 1/shape)
}

// Normal returns a variate of the Normal distribution with the given
// mean and standard deviation, using the Box-Muller transform.
func (s *Stream) Normal(mean, stddev float64) float64 {
	if s.hasCachedNorm {
		s.hasCachedNorm = false
		return mean + stddev*s.cachedNorm
	}
	u := s.positiveFloat64()
	v := s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s.cachedNorm = r * math.Sin(2*math.Pi*v)
	s.hasCachedNorm = true
	return mean + stddev*r*math.Cos(2*math.Pi*v)
}

// LogNormal returns a variate whose logarithm is Normal(mu, sigma).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Perm fills dst with a uniform random permutation of 0..len(dst)-1
// (Fisher-Yates).
func (s *Stream) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
