package rng

import "math"

// This file is the batched sampling layer behind the lane-batched
// simulation kernel (internal/sim, "Lane kernel" in DESIGN.md). The
// scalar hot path draws one exponential inter-arrival time per failure
// with Stream.Exponential, which puts one math.Log on the critical
// path of every event: the log's result feeds the event time, the
// event time picks the advance target, and nothing else can start
// until it lands. Batching breaks that chain in two:
//
//   - the stream work (PositiveFloat64 + whatever integer draws the
//     caller interleaves, e.g. victim selection) is done for a whole
//     buffer first, preserving the exact per-event stream consumption
//     order of the scalar path;
//   - the logs are then evaluated back to back over the buffered
//     uniforms (ExpFromUniforms). The evaluations are mutually
//     independent, so the CPU pipelines them at throughput instead of
//     paying full latency per event.
//
// ExpFromUniforms performs bit-for-bit the operations of
// Stream.Exponential on each uniform, so a batched consumer replays
// the scalar path's variates exactly — the property the lane-kernel
// equivalence tests pin down.
//
// The ziggurat sampler (ExpZiggurat) is the log-free alternative: it
// accepts ~97.9% of draws with a compare against a precomputed layer
// table and touches math.Exp/math.Log only in the wedge and tail. It
// consumes the stream differently from the inverse-CDF path (one
// uint64 per attempt plus rejection retries), so it changes the
// failure sample (statistically, not in distribution) and weakens the
// antithetic reflection from exact quantile mirroring to a layer-and-
// position reflection — still strongly negatively correlated, but not
// bitwise — which is why the antithetic executor stays on the
// inverse-CDF path while the plain batched executor defaults to the
// ziggurat.

// PositiveFloat64 returns a uniform variate in (0, 1], the argument
// shape a logarithm needs. It is the batched-sampling building block:
// callers buffer the uniforms (interleaving any integer draws in
// event order) and convert them with ExpFromUniforms afterwards,
// keeping the stream consumption identical to calling Exponential
// per event.
func (s *Stream) PositiveFloat64() float64 { return s.positiveFloat64() }

// ExpFromUniforms converts buffered positive uniforms into
// exponential inter-arrival times: dst[i] = -log(us[i])/rate, the
// exact float operations Stream.Exponential performs on the same
// uniform. us and dst may alias (in-place conversion). The loop body
// carries no cross-iteration dependency, so consecutive logs overlap
// in the pipeline instead of serializing per event.
func ExpFromUniforms(rate float64, us, dst []float64) {
	if rate <= 0 {
		panic("rng: ExpFromUniforms with non-positive rate")
	}
	if len(us) == 0 {
		return
	}
	dst = dst[:len(us)]
	for i, u := range us {
		dst[i] = -math.Log(u) / rate
	}
}

// Ziggurat tables for the Exp(1) density f(x) = e⁻ˣ, 256 layers
// (Marsaglia & Tsang 2000). zigR is the base-strip boundary and zigV
// the common layer area; the tables are derived at init from the two
// constants so the construction is auditable rather than a wall of
// literals. Layer 0 is the base strip (rectangle [0, zigR] plus the
// analytic tail), layers 1..255 shrink towards the mode, zigX[256] = 0.
const (
	zigR = 7.69711747013104972
	zigV = 0.0039496598225815571993
)

var (
	zigX [257]float64 // layer right edges, decreasing
	zigF [257]float64 // e^(-zigX[i])
)

func init() {
	zigX[0] = zigV / math.Exp(-zigR) // virtual base-strip width: area/height
	zigX[1] = zigR
	for i := 2; i < 256; i++ {
		// Equal areas: zigV = zigX[i-1]·(f(zigX[i]) − f(zigX[i-1])).
		zigX[i] = -math.Log(zigV/zigX[i-1] + math.Exp(-zigX[i-1]))
	}
	zigX[256] = 0
	for i := range zigX {
		zigF[i] = math.Exp(-zigX[i])
	}
}

// ExpZiggurat returns an Exponential(rate) variate via the ziggurat
// method: one uint64 per attempt supplies both the layer index (low 8
// bits) and the 53-bit position within it, a single compare accepts
// the rectangular core (~97.9% of draws), and only the wedge and the
// analytic tail evaluate a transcendental. A reflected stream mirrors
// both the layer index and the within-layer position (the raw uint64
// sequence is untouched), which keeps antithetic pairs strongly
// negatively correlated but not exactly quantile-reflected —
// rejection retries may consume differently across the pair.
func (s *Stream) ExpZiggurat(rate float64) float64 {
	if rate <= 0 {
		panic("rng: ExpZiggurat with non-positive rate")
	}
	return s.expZig() / rate
}

func (s *Stream) expZig() float64 {
	for {
		bits := s.Uint64()
		i := int(bits & 0xFF)
		u := float64(bits>>11) / (1 << 53)
		if s.reflected {
			// Reflect both coordinates: layers have equal probability, so
			// i → 255−i preserves the distribution while mapping large-x
			// layers to small-x ones, and the within-layer position
			// mirrors — together a globally decreasing image of the plain
			// draw, which is what keeps antithetic pairs negatively
			// correlated under the ziggurat.
			i = 255 - i
			u = maxUniform - u
		}
		x := u * zigX[i]
		if x < zigX[i+1] {
			return x // inside the layer's rectangular core
		}
		if i == 0 {
			// Base strip beyond zigR: the tail of Exp(1) restarts
			// memorylessly at zigR.
			return zigR - math.Log(s.positiveFloat64())
		}
		// Wedge: accept x with probability proportional to the density
		// overhang between the layer's edges.
		if zigF[i]+(zigF[i+1]-zigF[i])*s.Float64() < math.Exp(-x) {
			return x
		}
	}
}

// FillExpZiggurat fills dst with Exponential(rate) ziggurat variates,
// the batched refill used by the lane kernel's ziggurat mode.
func (s *Stream) FillExpZiggurat(rate float64, dst []float64) {
	if rate <= 0 {
		panic("rng: FillExpZiggurat with non-positive rate")
	}
	for i := range dst {
		dst[i] = s.expZig() / rate
	}
}
