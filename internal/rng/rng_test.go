package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if s.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("seed 0 stream produced %d zero outputs", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1, c2 := parent.Split(0), parent.Split(1)
	c1again := parent.Split(0)
	for i := 0; i < 100; i++ {
		v1, v1b := c1.Uint64(), c1again.Uint64()
		if v1 != v1b {
			t.Fatal("Split is not deterministic")
		}
		if v1 == c2.Uint64() {
			t.Fatal("sibling streams collided")
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(7), New(7)
	_ = a.Split(3)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(5)
	const n, buckets = 120000, 12
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ~%v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestExponentialMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	rate := 0.25
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Exponential(rate)
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05/rate {
		t.Fatalf("exponential mean = %v, want %v", mean, 1/rate)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1/(rate*rate)) > 0.1/(rate*rate) {
		t.Fatalf("exponential variance = %v, want %v", variance, 1/(rate*rate))
	}
}

func TestWeibullMean(t *testing.T) {
	s := New(23)
	const n = 200000
	// shape 2, scale 1: mean = Γ(1.5) = √π/2.
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Weibull(2, 1)
	}
	want := math.Sqrt(math.Pi) / 2
	if mean := sum / n; math.Abs(mean-want) > 0.01 {
		t.Fatalf("Weibull(2,1) mean = %v, want %v", mean, want)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	// Weibull with shape 1 and scale m is Exponential with mean m:
	// compare empirical CDFs at a few quantiles.
	s := New(29)
	const n = 100000
	m := 3.0
	var exceed1, exceed3 int
	for i := 0; i < n; i++ {
		x := s.Weibull(1, m)
		if x > m {
			exceed1++
		}
		if x > 3*m {
			exceed3++
		}
	}
	if got, want := float64(exceed1)/n, math.Exp(-1); math.Abs(got-want) > 0.01 {
		t.Errorf("P[X>m] = %v, want %v", got, want)
	}
	if got, want := float64(exceed3)/n, math.Exp(-3); math.Abs(got-want) > 0.005 {
		t.Errorf("P[X>3m] = %v, want %v", got, want)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(31)
	const n = 200000
	mean, stddev := 5.0, 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Normal(mean, stddev)
		sum += x
		sumSq += x * x
	}
	m := sum / n
	if math.Abs(m-mean) > 0.03 {
		t.Fatalf("normal mean = %v, want %v", m, mean)
	}
	v := sumSq/n - m*m
	if math.Abs(v-stddev*stddev) > 0.1 {
		t.Fatalf("normal variance = %v, want %v", v, stddev*stddev)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(37)
	const n = 100001
	mu := 1.5
	var below int
	for i := 0; i < n; i++ {
		if s.LogNormal(mu, 0.8) < math.Exp(mu) {
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("lognormal median fraction = %v, want 0.5", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	dst := make([]int, 100)
	s.Perm(dst)
	seen := make([]bool, len(dst))
	for _, v := range dst {
		if v < 0 || v >= len(dst) || seen[v] {
			t.Fatalf("not a permutation: %v", dst)
		}
		seen[v] = true
	}
}

func TestVariatePanics(t *testing.T) {
	cases := []func(){
		func() { New(1).Exponential(0) },
		func() { New(1).Exponential(-1) },
		func() { New(1).Weibull(0, 1) },
		func() { New(1).Weibull(1, -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMul64Property(t *testing.T) {
	// Verify the 128-bit product against big-number arithmetic done in
	// two 64-bit halves: (hi, lo) must satisfy hi*2^64 + lo = a*b when
	// computed modulo 2^64 in parts.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		if lo != a*b {
			return false
		}
		// Recompute hi by schoolbook on 32-bit limbs.
		const mask = 0xffffffff
		aLo, aHi := a&mask, a>>32
		bLo, bHi := b&mask, b>>32
		carry := (aLo*bLo)>>32 + (aHi*bLo)&mask + (aLo*bHi)&mask
		wantHi := aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32 + carry>>32
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialMemorylessProperty(t *testing.T) {
	// P[X > s+t | X > s] = P[X > t]: compare tail fractions.
	s := New(43)
	const n = 300000
	rate := 1.0
	var beyond1, beyond2 int
	for i := 0; i < n; i++ {
		x := s.Exponential(rate)
		if x > 1 {
			beyond1++
			if x > 2 {
				beyond2++
			}
		}
	}
	conditional := float64(beyond2) / float64(beyond1)
	want := math.Exp(-1)
	if math.Abs(conditional-want) > 0.02 {
		t.Fatalf("memoryless check: P[X>2|X>1] = %v, want %v", conditional, want)
	}
}

// TestReflectedFloat64 pins the antithetic mapping: a reflected stream
// returns exactly maxUniform − u for the u its plain twin returns,
// consumes the identical raw Uint64 sequence, and stays inside [0, 1).
func TestReflectedFloat64(t *testing.T) {
	plain := New(123)
	anti := New(123)
	anti.SetReflected(true)
	const maxU = float64(1<<53-1) / (1 << 53)
	for i := 0; i < 1000; i++ {
		u := plain.Float64()
		v := anti.Float64()
		if v != maxU-u {
			t.Fatalf("draw %d: reflected %v != maxUniform - %v", i, v, u)
		}
		if v < 0 || v >= 1 {
			t.Fatalf("draw %d: reflected variate %v outside [0, 1)", i, v)
		}
	}
	// The raw integer sequence is unaffected by reflection.
	plain.Reseed(9)
	anti.Reseed(9)
	for i := 0; i < 100; i++ {
		if a, b := plain.Uint64(), anti.Uint64(); a != b {
			t.Fatalf("draw %d: Uint64 diverges under reflection: %d vs %d", i, a, b)
		}
	}
}

// TestReflectedInheritance pins how the reflection mode travels:
// Reseed preserves it, ReseedSplit and Split copy the parent's.
func TestReflectedInheritance(t *testing.T) {
	s := New(7)
	s.SetReflected(true)
	s.Reseed(8)
	if !s.Reflected() {
		t.Error("Reseed dropped the reflection mode")
	}
	child := s.Split(3)
	if !child.Reflected() {
		t.Error("Split child did not inherit reflection")
	}
	s.SetReflected(false)
	var c2 Stream
	c2.SetReflected(true)
	c2.ReseedSplit(s, 3)
	if c2.Reflected() {
		t.Error("ReseedSplit kept the child's stale reflection instead of the parent's")
	}
	// The reflected child's state is the plain child's state: only the
	// uniform mapping differs.
	plainChild := s.Split(3)
	refChild := s.Split(3)
	refChild.SetReflected(true)
	if a, b := plainChild.Uint64(), refChild.Uint64(); a != b {
		t.Errorf("reflected child diverged in raw state: %d vs %d", a, b)
	}
}

// TestReflectedExponentialAnticorrelated checks the point of the
// machinery: mirror-image exponential samples are strongly negatively
// correlated.
func TestReflectedExponentialAnticorrelated(t *testing.T) {
	plain := New(5)
	anti := New(5)
	anti.SetReflected(true)
	const n = 20000
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x := plain.Exponential(1)
		y := anti.Exponential(1)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - sx/n*sy/n
	corr := cov / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
	if corr > -0.5 {
		t.Errorf("antithetic exponential correlation %v, want strongly negative", corr)
	}
}
