package fabric

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys generates deterministic pseudo-random key strings shaped
// like the sweep engine's content keys (long, structured, shared
// prefixes) so the partition properties are exercised on realistic
// input.
func testKeys(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("Double|0x1.5p+02|0x1p+%02d|n=%d|runs=%d|seed=%d",
			r.Intn(40), r.Intn(1<<20), 2+r.Intn(64), r.Int63())
	}
	return keys
}

func workerNames(n int) []string {
	ws := make([]string, n)
	for i := range ws {
		ws[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return ws
}

// TestRingEveryKeyExactlyOneOwner is the partitioner's core property:
// for any worker count, every key maps to exactly one worker — a valid
// index, stable across calls and across ring rebuilds from the same
// fleet.
func TestRingEveryKeyExactlyOneOwner(t *testing.T) {
	keys := testKeys(500, 1)
	for n := 1; n <= 8; n++ {
		ring, err := NewRing(workerNames(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := NewRing(workerNames(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range keys {
			w := ring.Owner(key)
			if w < 0 || w >= n {
				t.Fatalf("n=%d: key %q owned by out-of-range worker %d", n, key, w)
			}
			if again := ring.Owner(key); again != w {
				t.Fatalf("n=%d: key %q owner unstable: %d then %d", n, key, w, again)
			}
			if other := rebuilt.Owner(key); other != w {
				t.Fatalf("n=%d: key %q owner differs across rebuilds: %d vs %d", n, key, w, other)
			}
		}
	}
}

// TestRingRemovalReassignsOnlyLostKeys checks the consistent-hashing
// contract from the removal side: dropping one worker moves only the
// keys that worker owned — every other key keeps its owner (by name) —
// and the moved fraction is ~1/N.
func TestRingRemovalReassignsOnlyLostKeys(t *testing.T) {
	const n, nKeys = 6, 3000
	workers := workerNames(n)
	before, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(nKeys, 2)
	for removed := 0; removed < n; removed++ {
		rest := make([]string, 0, n-1)
		for i, w := range workers {
			if i != removed {
				rest = append(rest, w)
			}
		}
		after, err := NewRing(rest, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, key := range keys {
			was := workers[before.Owner(key)]
			now := rest[after.Owner(key)]
			if was != workers[removed] {
				if now != was {
					t.Fatalf("removing %s moved key %q from surviving %s to %s", workers[removed], key, was, now)
				}
				continue
			}
			moved++
			if now == workers[removed] {
				t.Fatalf("key %q still assigned to removed worker", key)
			}
		}
		// The removed worker owned ~1/N of the keys; allow generous
		// slack for hash variance at 128 vnodes.
		lo, hi := nKeys/(3*n), 3*nKeys/n
		if moved < lo || moved > hi {
			t.Errorf("removing worker %d moved %d/%d keys, want ~%d (accepting [%d, %d])",
				removed, moved, nKeys, nKeys/n, lo, hi)
		}
	}
}

// TestRingAdditionReassignsOnlyToNewWorker checks the addition side:
// a key either keeps its owner or moves to the new worker, and the new
// worker receives ~1/(N+1) of the keys.
func TestRingAdditionReassignsOnlyToNewWorker(t *testing.T) {
	const n, nKeys = 5, 3000
	workers := workerNames(n)
	before, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown := append(append([]string(nil), workers...), "http://worker-new:8080")
	after, err := NewRing(grown, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(nKeys, 3)
	moved := 0
	for _, key := range keys {
		was := workers[before.Owner(key)]
		now := grown[after.Owner(key)]
		if now == was {
			continue
		}
		if now != "http://worker-new:8080" {
			t.Fatalf("adding a worker moved key %q between old workers: %s -> %s", key, was, now)
		}
		moved++
	}
	lo, hi := nKeys/(3*(n+1)), 3*nKeys/(n+1)
	if moved < lo || moved > hi {
		t.Errorf("adding a worker moved %d/%d keys, want ~%d (accepting [%d, %d])",
			moved, nKeys, nKeys/(n+1), lo, hi)
	}
}

// TestRingRangesTileExactly checks that Ranges is a partition of the
// grid interval: contiguous, exhaustive, non-overlapping, in grid
// order, with each range's keys all owned by its worker and adjacent
// ranges owned by different workers (maximality).
func TestRingRangesTileExactly(t *testing.T) {
	ring, err := NewRing(workerNames(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []int{0, 7, 1000} {
		keys := testKeys(257, int64(base)+10)
		ranges := ring.Ranges(keys, base)
		next := base
		for i, rg := range ranges {
			if rg.Start != next {
				t.Fatalf("base %d: range %d starts at %d, want %d (gap or overlap)", base, i, rg.Start, next)
			}
			if rg.Count <= 0 {
				t.Fatalf("base %d: empty range %+v", base, rg)
			}
			if i > 0 && ranges[i-1].Worker == rg.Worker {
				t.Errorf("base %d: adjacent ranges %d,%d share worker %d (not maximal)", base, i-1, i, rg.Worker)
			}
			for j := 0; j < rg.Count; j++ {
				if w := ring.Owner(keys[rg.Start-base+j]); w != rg.Worker {
					t.Fatalf("base %d: point %d in range of worker %d but owned by %d", base, rg.Start+j, rg.Worker, w)
				}
			}
			next = rg.Start + rg.Count
		}
		if next != base+len(keys) {
			t.Fatalf("base %d: ranges cover [%d, %d), want [%d, %d)", base, base, next, base, base+len(keys))
		}
	}
	if got := ring.Ranges(nil, 5); len(got) != 0 {
		t.Errorf("empty key slice produced ranges %v", got)
	}
}

func TestNewRingRejectsBadFleets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty worker id accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate worker accepted")
	}
}
