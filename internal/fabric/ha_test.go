package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/jobs"
)

// This file is the failover drill ground: real 3-node fleets (each node
// its own store directory, replica, HA controller and HTTP server; no
// shared disk), leaders killed at every checkpoint boundary, partitions
// healed into fencing, and the replication channel run through the
// chaos matrix — the final results must always be byte-identical to an
// uninterrupted single-node run.

// swapHandler lets the fleet's HTTP servers start before their HA
// controllers exist (the controllers need every peer's URL first).
type swapHandler struct{ v atomic.Value }

type handlerBox struct{ h http.Handler }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.v.Load().(handlerBox).h.ServeHTTP(w, r)
}

// inboundGate drops every inbound request when armed — one half of a
// full network partition (the other half is the node's outbound
// client).
type inboundGate struct {
	mu   sync.Mutex
	drop bool
}

func (g *inboundGate) set(drop bool) {
	g.mu.Lock()
	g.drop = drop
	g.mu.Unlock()
}

func (g *inboundGate) middleware(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.mu.Lock()
		drop := g.drop
		g.mu.Unlock()
		if drop {
			panic(http.ErrAbortHandler) // cut the connection, like a dead link
		}
		inner.ServeHTTP(w, r)
	})
}

// dropTransport drops every outbound request when armed — the other
// half of the partition.
type dropTransport struct {
	mu   sync.Mutex
	drop bool
	next http.RoundTripper
}

func (d *dropTransport) set(drop bool) {
	d.mu.Lock()
	d.drop = drop
	d.mu.Unlock()
}

func (d *dropTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	drop := d.drop
	d.mu.Unlock()
	if drop {
		return nil, fmt.Errorf("ha test: outbound partitioned")
	}
	return d.next.RoundTrip(req)
}

// haNode is one fleet member under test.
type haNode struct {
	t       *testing.T
	self    string
	dir     string
	store   *jobs.Store
	svc     *api.Service
	ha      *HA
	ts      *httptest.Server
	inbound *inboundGate

	// exec is the node's job executor (default: the local sweep
	// executor; the distributed test installs a coordinator's).
	exec jobs.Executor
	// gateAt, when >= 0, blocks the executor before emitting line index
	// gateAt — parked exactly on a checkpoint boundary when gateAt is
	// even and CheckpointEvery is 2. reached is closed the first time
	// the gate blocks; closing gate releases it.
	gateAt      int
	gate        chan struct{}
	reached     chan struct{}
	reachedOnce sync.Once

	killOnce sync.Once
	mu       sync.Mutex
	mgr      *jobs.Manager
}

// onPromote is the node's execution-plane factory: a jobs.Manager over
// the node's store with the promotion's Replicator as its sink, exactly
// as cmd/serve wires it.
func (n *haNode) onPromote(term uint64, repl *Replicator) (func(), error) {
	exec := n.exec
	if n.gateAt >= 0 {
		inner := exec
		at := n.gateAt
		exec = func(ctx context.Context, req []byte, offset int, start func(int) error, emit func([]byte) error) error {
			i := offset
			return inner(ctx, req, offset, start, func(line []byte) error {
				if i == at {
					n.reachedOnce.Do(func() { close(n.reached) })
					select {
					case <-n.gate:
					case <-ctx.Done():
						return ctx.Err()
					}
				}
				i++
				return emit(line)
			})
		}
	}
	mgr, err := jobs.NewManager(jobs.Config{
		Dir:             n.dir,
		CheckpointEvery: 2,
		LeaseProbeEvery: 50 * time.Millisecond,
		Exec:            exec,
		Normalize:       n.svc.NormalizeJobRequest,
		Replicate:       repl,
		JanitorSeed:     1,
	})
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.mgr = mgr
	n.mu.Unlock()
	n.svc.AttachJobs(mgr)
	return func() {
		n.svc.DetachJobs()
		mgr.Close()
	}, nil
}

// manager waits for the node's execution plane (built at promotion).
func (n *haNode) manager(t *testing.T) *jobs.Manager {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n.mu.Lock()
		mgr := n.mgr
		n.mu.Unlock()
		if mgr != nil {
			return mgr
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never built a manager (never promoted?)", n.self)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// kill is the crash: stop serving, stop the controller, kill the
// manager. Idempotent (it doubles as the test cleanup).
func (n *haNode) kill() {
	n.killOnce.Do(func() {
		n.ts.Close()
		n.ha.Close()
		n.mu.Lock()
		mgr := n.mgr
		n.mu.Unlock()
		if mgr != nil {
			mgr.Close()
		}
	})
}

// newHACluster builds and starts an n-node fleet: node 0 is the initial
// leader at term 1, everyone else a standby. mutate, when non-nil, may
// adjust each node and its HAConfig (executors, clients, gates) before
// the controller is built.
func newHACluster(t *testing.T, n int, mutate func(i int, node *haNode, cfg *HAConfig)) []*haNode {
	t.Helper()
	nodes := make([]*haNode, n)
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range nodes {
		dir := t.TempDir()
		store, err := jobs.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		node := &haNode{
			t:       t,
			dir:     dir,
			store:   store,
			svc:     api.NewService(testOptions()),
			inbound: &inboundGate{},
			gateAt:  -1,
			gate:    make(chan struct{}),
			reached: make(chan struct{}),
		}
		swaps[i] = &swapHandler{}
		swaps[i].v.Store(handlerBox{http.NotFoundHandler()})
		node.ts = httptest.NewServer(node.inbound.middleware(swaps[i]))
		urls[i] = node.ts.URL
		node.self = urls[i]
		nodes[i] = node
	}
	for i, node := range nodes {
		cfg := HAConfig{
			Self:           urls[i],
			Peers:          urls,
			Store:          node.store,
			HeartbeatEvery: 30 * time.Millisecond,
			LeaseTTL:       120 * time.Millisecond,
			PromoteStagger: 90 * time.Millisecond,
			Attempts:       5,
			Backoff:        2 * time.Millisecond,
			Timeout:        2 * time.Second,
			Leader:         i == 0,
			OnPromote:      node.onPromote,
			Logf:           t.Logf,
		}
		if mutate != nil {
			mutate(i, node, &cfg)
		}
		if node.exec == nil {
			node.exec = node.svc.JobExecutor()
		}
		ha, err := NewHA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		node.ha = ha
		swaps[i].v.Store(handlerBox{ha.Handler(api.NewServer(node.svc))})
	}
	for _, node := range nodes {
		if err := node.ha.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.kill)
	}
	return nodes
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func haCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// awaitGate waits for a node's gated executor to park.
func awaitGate(t *testing.T, n *haNode) {
	t.Helper()
	select {
	case <-n.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("gated executor never reached its boundary")
	}
}

// isPrefix reports whether got is a byte prefix of ref — the invariant
// every replica's results file must satisfy at all times.
func isPrefix(got, ref []byte) bool {
	return len(got) <= len(ref) && bytes.Equal(ref[:len(got)], got)
}

// TestHAFailoverEveryCheckpointBoundary is the tentpole drill: for
// EVERY checkpoint boundary of a 25-point sweep (CheckpointEvery=2 →
// 13 boundaries), park the leader's executor exactly on the boundary,
// kill the node (server, controller and manager), and require that the
// first standby promotes to term 2 in deterministic order, adopts the
// replicated job, resumes it from the quorum-acknowledged offset, and
// finishes with a results file byte-identical to an uninterrupted
// single-node run — with the surviving replica holding the same bytes.
func TestHAFailoverEveryCheckpointBoundary(t *testing.T) {
	_, want := singleNodeLines(t, sweepBody)
	ref := bytes.Join(want, nil)
	boundaries := len(want)/2 + 1 // kill after 0, 2, 4, …, 24 durable lines
	for b := 0; b < boundaries; b++ {
		t.Run(fmt.Sprintf("boundary-%d", b), func(t *testing.T) {
			nodes := newHACluster(t, 3, func(i int, node *haNode, cfg *HAConfig) {
				if i == 0 {
					node.gateAt = 2 * b
				}
			})
			meta, created, err := nodes[0].manager(t).Submit([]byte(sweepBody))
			if err != nil || !created {
				t.Fatalf("submit: created=%v err=%v", created, err)
			}
			awaitGate(t, nodes[0])
			// Exactly b checkpoints are quorum-durable; the kill lands on
			// the boundary.
			nodes[0].kill()

			waitFor(t, 10*time.Second, "standby promotion", func() bool {
				return nodes[1].ha.Role() == RoleLeader
			})
			if term := nodes[1].ha.Term(); term != 2 {
				t.Errorf("promoted standby term = %d, want 2", term)
			}
			if role := nodes[2].ha.Role(); role != RoleStandby {
				t.Errorf("second standby role = %s, want standby (deterministic order)", role)
			}

			final, err := nodes[1].manager(t).Wait(haCtx(t), meta.ID)
			if err != nil {
				t.Fatal(err)
			}
			if final.State != jobs.Done {
				t.Fatalf("resumed job finished %s (%s), want done", final.State, final.Error)
			}
			if got := readResults(t, nodes[1].store, meta.ID); !bytes.Equal(got, ref) {
				t.Fatalf("boundary %d: resumed results differ from single-node run (%d vs %d bytes)", b, len(got), len(ref))
			}
			// The new leader's checkpoints were quorum-acked by the last
			// surviving replica: it holds the identical file.
			waitFor(t, 10*time.Second, "replica catch-up", func() bool {
				return bytes.Equal(readResults(t, nodes[2].store, meta.ID), ref)
			})
		})
	}
}

// TestHAPartitionThenFence: the old leader is partitioned mid-job (both
// directions), a standby promotes and finishes the job, and on heal the
// stale leader's first write is rejected with 412 — it detects, halts
// (its unquorumed checkpoint fails the local job, leaving a clean byte
// prefix), demotes to standby at the new term, and rejoins the
// replication plane. No split brain, no double append.
func TestHAPartitionThenFence(t *testing.T) {
	_, want := singleNodeLines(t, sweepBody)
	ref := bytes.Join(want, nil)
	outbound := &dropTransport{next: http.DefaultTransport}
	nodes := newHACluster(t, 3, func(i int, node *haNode, cfg *HAConfig) {
		if i == 0 {
			node.gateAt = 10 // park mid-job, 5 checkpoints replicated
			cfg.Client = &http.Client{Transport: outbound}
		}
	})
	meta, _, err := nodes[0].manager(t).Submit([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	awaitGate(t, nodes[0])

	// Partition the leader: outbound heartbeats and replication drop,
	// inbound connections die. It still believes it is leading.
	outbound.set(true)
	nodes[0].inbound.set(true)

	waitFor(t, 10*time.Second, "standby promotion during partition", func() bool {
		return nodes[1].ha.Role() == RoleLeader
	})

	// Release the stale leader's executor: its next checkpoint cannot
	// reach a quorum, so the job fails locally — the halt — with the
	// emitted lines still a clean byte prefix on its disk.
	close(nodes[0].gate)
	waitFor(t, 10*time.Second, "stale leader checkpoint rejection", func() bool {
		m, err := nodes[0].manager(t).Get(meta.ID)
		return err == nil && m.State == jobs.Failed
	})
	if m, _ := nodes[0].manager(t).Get(meta.ID); !strings.Contains(m.Error, "quorum") {
		t.Errorf("stale leader's failure does not name the lost quorum: %q", m.Error)
	}
	if got := readResults(t, nodes[0].store, meta.ID); !isPrefix(got, ref) || len(got) == 0 {
		t.Fatal("stale leader's results are not a byte prefix of the canonical stream")
	}

	// The new leader finishes the job from the replicated offset.
	final, err := nodes[1].manager(t).Wait(haCtx(t), meta.ID)
	if err != nil || final.State != jobs.Done {
		t.Fatalf("job on new leader: %+v, %v", final, err)
	}
	if got := readResults(t, nodes[1].store, meta.ID); !bytes.Equal(got, ref) {
		t.Fatal("new leader's results differ from single-node run")
	}
	if got := readResults(t, nodes[2].store, meta.ID); !bytes.Equal(got, ref) {
		t.Fatal("surviving replica's results differ from single-node run")
	}

	// Heal. The stale leader's next heartbeat meets term 2, fences it,
	// and it rejoins as a standby.
	outbound.set(false)
	nodes[0].inbound.set(false)
	waitFor(t, 10*time.Second, "stale leader demotion", func() bool {
		return nodes[0].ha.Role() == RoleStandby
	})
	if term := nodes[0].ha.Term(); term != 2 {
		t.Errorf("demoted leader term = %d, want 2", term)
	}
	if nodes[0].svc.Jobs() != nil {
		t.Error("demoted leader still has a job manager attached")
	}

	// The rejoined standby receives the next job's replication stream.
	body2 := `{"scenario":{"mtbf":1800},"tbase":10000,"runs":2,"seed":8}`
	_, want2 := singleNodeLines(t, body2)
	ref2 := bytes.Join(want2, nil)
	meta2, _, err := nodes[1].manager(t).Submit([]byte(body2))
	if err != nil {
		t.Fatal(err)
	}
	if final, err := nodes[1].manager(t).Wait(haCtx(t), meta2.ID); err != nil || final.State != jobs.Done {
		t.Fatalf("post-heal job: %+v, %v", final, err)
	}
	if got := readResults(t, nodes[0].store, meta2.ID); !bytes.Equal(got, ref2) {
		t.Fatal("rejoined standby did not receive the post-heal job's bytes")
	}
}

// replicaDataChaos applies chaos to the replication DATA channel
// (create/checkpoint/delete) while leaving the heartbeat lease signal
// clean — the matrix targets the data plane, not the failure detector.
type replicaDataChaos struct {
	chaos http.RoundTripper
	next  http.RoundTripper
}

func (t *replicaDataChaos) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasPrefix(req.URL.Path, "/v1/replica/jobs/") {
		return t.chaos.RoundTrip(req)
	}
	return t.next.RoundTrip(req)
}

// TestHAReplicationChaosMatrix runs every chaos fault class over the
// leader→replica checkpoint channel of a live 3-node fleet. Whatever
// the channel does — drop, delay, corrupt-in-flight, hang, partition a
// peer — the job must complete byte-identical on the leader, at least
// one replica must hold the identical file (the write quorum), and
// every replica's file must be a byte prefix of the canonical stream
// (corruption never lands: the replica-side CRC-32C frames reject it).
func TestHAReplicationChaosMatrix(t *testing.T) {
	seed := chaosSeed(t)
	_, want := singleNodeLines(t, sweepBody)
	ref := bytes.Join(want, nil)
	for _, class := range chaos.Classes {
		t.Run(string(class), func(t *testing.T) {
			nodes := newHACluster(t, 3, func(i int, node *haNode, cfg *HAConfig) {
				if i != 0 {
					return
				}
				rule := chaos.Rule{Site: chaos.SiteReplica, Class: class, P: 0.25}
				switch class {
				case chaos.Delay:
					rule.Delay = 3 * time.Millisecond
				case chaos.Hang:
					rule.P = 0.1
				case chaos.Partition:
					rule.P = 1
					rule.Peer = strings.TrimPrefix(cfg.Peers[2], "http://")
				}
				plan := chaos.Plan{Seed: seed, Rules: []chaos.Rule{rule}}
				inj, err := chaos.New(plan)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("chaos plan %q (replay: CHAOS_SEED=%d)", plan, seed)
				cfg.Client = &http.Client{Transport: &replicaDataChaos{
					chaos: &chaos.Transport{Injector: inj, Site: chaos.SiteReplica, CorruptRequests: true},
					next:  http.DefaultTransport,
				}}
				cfg.Attempts = 8
				cfg.Backoff = 2 * time.Millisecond
				cfg.Timeout = 250 * time.Millisecond
			})
			meta, _, err := nodes[0].manager(t).Submit([]byte(sweepBody))
			if err != nil {
				t.Fatalf("submit under %s chaos: %v", class, err)
			}
			final, err := nodes[0].manager(t).Wait(haCtx(t), meta.ID)
			if err != nil {
				t.Fatal(err)
			}
			if final.State != jobs.Done {
				t.Fatalf("job under %s chaos finished %s (%s), want done", class, final.State, final.Error)
			}
			if got := readResults(t, nodes[0].store, meta.ID); !bytes.Equal(got, ref) {
				t.Fatal("leader results differ from single-node run")
			}
			complete := 0
			for _, n := range nodes[1:] {
				got := readResults(t, n.store, meta.ID)
				if !isPrefix(got, ref) {
					t.Fatalf("replica %s holds bytes outside the canonical stream", n.self)
				}
				if bytes.Equal(got, ref) {
					complete++
				}
			}
			if complete < 1 {
				t.Fatalf("no replica holds the complete file (quorum violated) under %s", class)
			}
			if class == chaos.Partition {
				// The unpartitioned peer is the quorum; the partitioned one
				// must simply have no divergent bytes (checked above).
				if got := readResults(t, nodes[1].store, meta.ID); !bytes.Equal(got, ref) {
					t.Fatal("unpartitioned replica incomplete")
				}
			}
		})
	}
}

// TestHADistributedFailoverChaosBoundary is the full-stack drill: the
// job executes DISTRIBUTED (each HA node fronts a coordinator over a
// shared worker tier, with the coordinator's backoff jitter seeded from
// CHAOS_SEED), the leader is killed at a chaos-chosen checkpoint
// boundary, and the promoted standby resumes the distributed sweep to a
// byte-identical result.
func TestHADistributedFailoverChaosBoundary(t *testing.T) {
	seed := chaosSeed(t)
	_, want := singleNodeLines(t, sweepBody)
	ref := bytes.Join(want, nil)
	b := int(seed % uint64(len(want)/2+1))
	t.Logf("chaos-chosen kill boundary %d (replay: CHAOS_SEED=%d)", b, seed)

	workers := make([]string, 3)
	for i := range workers {
		ts := httptest.NewServer(api.NewServer(api.NewService(testOptions())))
		t.Cleanup(ts.Close)
		workers[i] = ts.URL
	}
	nodes := newHACluster(t, 3, func(i int, node *haNode, cfg *HAConfig) {
		coord, err := New(Config{
			Service:    node.svc,
			Workers:    workers,
			JitterSeed: seed + uint64(i), // derived from CHAOS_SEED: replayable
			Logf:       t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.exec = coord.Executor()
		if i == 0 {
			node.gateAt = 2 * b
		}
	})
	meta, _, err := nodes[0].manager(t).Submit([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	awaitGate(t, nodes[0])
	nodes[0].kill()

	waitFor(t, 10*time.Second, "standby promotion", func() bool {
		return nodes[1].ha.Role() == RoleLeader
	})
	final, err := nodes[1].manager(t).Wait(haCtx(t), meta.ID)
	if err != nil || final.State != jobs.Done {
		t.Fatalf("resumed distributed job: %+v, %v", final, err)
	}
	if got := readResults(t, nodes[1].store, meta.ID); !bytes.Equal(got, ref) {
		t.Fatal("distributed failover results differ from single-node run")
	}
	waitFor(t, 10*time.Second, "replica catch-up", func() bool {
		return bytes.Equal(readResults(t, nodes[2].store, meta.ID), ref)
	})
}

// TestHAReadyzOverlay pins the health surface: the leader's /readyz
// carries role/term/peer-lag/quorum, a standby reports its lease view
// and serves 503 on the job routes, and a leader that loses its
// replicas turns degraded.
func TestHAReadyzOverlay(t *testing.T) {
	nodes := newHACluster(t, 3, nil)
	readyz := func(n *haNode) (int, map[string]any) {
		resp, err := http.Get(n.ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var report map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, report
	}
	haSection := func(report map[string]any) map[string]any {
		ha, ok := report["ha"].(map[string]any)
		if !ok {
			t.Fatalf("/readyz has no ha section: %v", report)
		}
		return ha
	}

	code, report := readyz(nodes[0])
	ha := haSection(report)
	if code != http.StatusOK || ha["role"] != "leader" || ha["term"] != float64(1) {
		t.Fatalf("leader /readyz: code %d, ha %v", code, ha)
	}
	// Quorum health turns true once the first heartbeat round is acked.
	waitFor(t, 5*time.Second, "leader quorum health", func() bool {
		_, report := readyz(nodes[0])
		ok, _ := haSection(report)["quorumOk"].(bool)
		return ok
	})
	_, report = readyz(nodes[0])
	ha = haSection(report)
	if _, hasPeers := ha["peers"]; !hasPeers {
		// Peer lag appears once the leader has replicated something;
		// quorum fields must be present regardless.
		if _, hasQuorum := ha["quorum"]; !hasQuorum {
			t.Fatalf("leader /readyz lacks peer/quorum detail: %v", ha)
		}
	}

	waitFor(t, 5*time.Second, "standby lease view", func() bool {
		_, report := readyz(nodes[1])
		return haSection(report)["term"] == float64(1)
	})
	_, report = readyz(nodes[1])
	if ha := haSection(report); ha["role"] != "standby" {
		t.Fatalf("standby /readyz role: %v", ha)
	}
	// Standby job surface: mounted, explicit 503 (retryable), not 404.
	resp, err := http.Get(nodes[1].ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby /v1/jobs: status %d, want 503", resp.StatusCode)
	}

	// Kill both replicas: the leader keeps serving but must report
	// degraded — it is one disk away from losing new work.
	nodes[1].kill()
	nodes[2].kill()
	waitFor(t, 5*time.Second, "leader degradation", func() bool {
		code, report := readyz(nodes[0])
		degraded, _ := report["degraded"].(bool)
		return code == http.StatusOK && degraded
	})
}
