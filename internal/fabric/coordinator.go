package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
)

// Config configures a Coordinator.
type Config struct {
	// Service is the coordinator's local evaluation service, used for
	// request normalization and point-key expansion — never for
	// simulation (the workers simulate). Workers must run the same
	// grid limits (maxgrid, maxruns) or dispatches can be rejected.
	Service *api.Service
	// Workers lists the worker base URLs (e.g. http://host:8080).
	Workers []string
	// Client issues the dispatch requests (default: a fresh
	// http.Client with no global timeout; the per-dispatch lease is
	// the timeout discipline).
	Client *http.Client
	// Lease is the per-dispatch heartbeat budget: a dispatch that
	// delivers no line for Lease is cancelled and its unfinished
	// suffix re-dispatched (default 15s). Every delivered line renews
	// the lease, so a slow-but-alive worker is never pre-empted.
	Lease time.Duration
	// StealAfter is how long an in-flight range must go without
	// progress before an idle worker speculatively duplicates its
	// remainder (default Lease/2). The merger dedupes the race by
	// point index, and content-keyed seeds make both copies byte-
	// identical, so stealing never perturbs the output.
	StealAfter time.Duration
	// MaxAttempts bounds the dispatch attempts per range before the
	// sweep fails (default 3 × worker count, minimum 4).
	MaxAttempts int
	// Replicas is the consistent-hash ring's virtual-node count per
	// worker (default DefaultReplicas).
	Replicas int
}

// Coordinator shards sweeps across a fleet of workers. It is safe for
// concurrent use; each sweep runs its own scheduler and merger.
type Coordinator struct {
	cfg  Config
	ring *Ring
}

// New validates the config and builds the coordinator's hash ring.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Service == nil {
		return nil, errors.New("fabric: coordinator needs a local api.Service")
	}
	ring, err := NewRing(cfg.Workers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 15 * time.Second
	}
	if cfg.StealAfter <= 0 {
		cfg.StealAfter = cfg.Lease / 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3 * len(cfg.Workers)
		if cfg.MaxAttempts < 4 {
			cfg.MaxAttempts = 4
		}
	}
	return &Coordinator{cfg: cfg, ring: ring}, nil
}

// Ring returns the coordinator's consistent-hash ring.
func (c *Coordinator) Ring() *Ring { return c.ring }

// task is one key range's scheduling state. start advances over the
// delivered prefix on every (re)dispatch accounting pass, so a requeue
// carries exactly the unfinished suffix.
type task struct {
	start, end int
	owner      int // preferred worker (ring assignment)
	attempts   int
	copies     int // concurrent dispatches (1 + speculative steals)
	lastWorker int // last worker to fail it; steered away on requeue
	progress   time.Time
	completed  bool
}

// sched is one sweep's scheduler: a pending queue plus the stealing
// and failure bookkeeping shared by the per-worker loops.
type sched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*task
	tasks   []*task
	failed  error
	done    bool
	cancel  context.CancelFunc // kills in-flight dispatches on failure
}

func (s *sched) fail(err error) {
	s.mu.Lock()
	if s.failed == nil && err != nil {
		s.failed = err
		s.cancel()
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *sched) finished() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done, s.failed
}

// next blocks until a range is available for worker w and claims it.
// Preference order: a pending range this worker owns (ring
// assignment), then a stolen pending range (largest first, skipping
// ranges this worker just failed), then a speculative duplicate of an
// in-flight range with stale progress. Returns nil when the sweep is
// done or failed.
func (s *sched) next(ctx context.Context, w int, stealAfter time.Duration) *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.done || s.failed != nil || ctx.Err() != nil {
			return nil
		}
		best := -1
		for i, t := range s.pending {
			if t.owner == w {
				best = i
				break
			}
		}
		if best < 0 {
			size := 0
			for i, t := range s.pending {
				if t.lastWorker == w && t.attempts > 0 {
					continue // let another worker try what this one failed
				}
				if n := t.end - t.start; n > size {
					best, size = i, n
				}
			}
		}
		if best < 0 && len(s.pending) > 0 {
			best = 0 // nothing better: retry even a range this worker failed
		}
		if best >= 0 {
			t := s.pending[best]
			s.pending = append(s.pending[:best], s.pending[best+1:]...)
			t.copies++
			return t
		}
		// Idle with nothing pending: speculatively duplicate the
		// stalest in-flight range that has gone quiet. The duplicate
		// races the original; the merger dedupes by index.
		now := time.Now()
		var cand *task
		size := 0
		for _, t := range s.tasks {
			if t.completed || t.copies != 1 || now.Sub(t.progress) < stealAfter {
				continue
			}
			if n := t.end - t.start; n > size {
				cand, size = t, n
			}
		}
		if cand != nil {
			cand.copies++
			return cand
		}
		s.cond.Wait()
	}
}

// finish accounts for a returned dispatch: the delivered prefix is
// retired, a fully covered range completes, and an unfinished suffix
// is requeued — or the sweep failed once the range exhausts its
// attempts.
func (s *sched) finish(t *task, w int, err error, m *Merger, maxAttempts int) {
	s.mu.Lock()
	t.copies--
	gap := m.FirstGap(t.start, t.end)
	if gap >= t.end {
		if !t.completed {
			t.completed = true
		}
		if m.Done() {
			s.done = true
		}
		s.mu.Unlock()
		s.cond.Broadcast()
		return
	}
	t.start = gap
	if t.copies > 0 {
		// A racing duplicate is still delivering this range; it will
		// run this accounting when it returns.
		s.mu.Unlock()
		return
	}
	t.lastWorker = w
	t.attempts++
	if t.attempts >= maxAttempts {
		s.mu.Unlock()
		s.fail(fmt.Errorf("fabric: range [%d, %d) exhausted %d dispatch attempts, last error: %v",
			t.start, t.end, t.attempts, err))
		return
	}
	s.pending = append(s.pending, t)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// touch renews the range's heartbeat on every delivered line.
func (s *sched) touch(t *task) {
	s.mu.Lock()
	t.progress = time.Now()
	s.mu.Unlock()
}

// Executor adapts the coordinator to the durable job subsystem: jobs
// submitted to a coordinator node execute across the fleet while their
// checkpoints land in the coordinator's store, so a restarted
// coordinator resumes a distributed job from its last durable point
// exactly like a single-node job — and emits the identical remaining
// bytes.
func (c *Coordinator) Executor() jobs.Executor {
	return func(ctx context.Context, request []byte, offset int, start func(total int) error, emit func(line []byte) error) error {
		return c.SweepStreamFrom(ctx, request, offset, start, emit)
	}
}

// SweepStreamFrom runs the request's grid from point `offset` on
// across the worker fleet, emitting one NDJSON line per point in
// canonical grid order — byte-identical to a single-node run of the
// same request. It is the distributed twin of
// api.Service.SweepStreamFrom and satisfies the same executor
// contract.
func (c *Coordinator) SweepStreamFrom(ctx context.Context, request []byte, offset int, start func(total int) error, emit func(line []byte) error) error {
	var req api.SweepRequest
	if err := json.Unmarshal(request, &req); err != nil {
		return fmt.Errorf("fabric: decoding request: %w", err)
	}
	keys, err := c.cfg.Service.PointKeys(req)
	if err != nil {
		return err
	}
	if start != nil {
		if err := start(len(keys)); err != nil {
			return err
		}
	}
	if offset < 0 || offset > len(keys) {
		return fmt.Errorf("fabric: resume offset %d outside the %d-point grid", offset, len(keys))
	}
	return c.run(ctx, request, keys, offset, len(keys), emit)
}

// run dispatches grid points [from, to) and merges their lines.
func (c *Coordinator) run(ctx context.Context, request []byte, keys []string, from, to int, emit func(line []byte) error) error {
	if from >= to {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	m := NewMerger(from, to, emit)
	s := &sched{cancel: cancel}
	s.cond = sync.NewCond(&s.mu)
	for _, rg := range c.ring.Ranges(keys[from:to], from) {
		t := &task{start: rg.Start, end: rg.Start + rg.Count, owner: rg.Worker, lastWorker: -1, progress: time.Now()}
		s.tasks = append(s.tasks, t)
		s.pending = append(s.pending, t)
	}

	// The waker gives cond.Wait a clock: steal thresholds and context
	// cancellation are time-based conditions no cond broadcast fires
	// for on its own.
	wake := time.NewTicker(c.wakeEvery())
	stop := make(chan struct{})
	defer func() { wake.Stop(); close(stop) }()
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-wake.C:
				s.cond.Broadcast()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := range c.ring.workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.workerLoop(ctx, s, m, request, w)
		}(w)
	}
	wg.Wait()

	done, failed := s.finished()
	switch {
	case failed != nil:
		return failed
	case ctx.Err() != nil:
		return ctx.Err()
	case !done:
		return errors.New("fabric: sweep stalled with no failure recorded")
	}
	return nil
}

// wakeEvery is the scheduler's clock tick: fine-grained enough to
// notice a stale lease promptly at test-scale lease budgets without
// spinning at production ones.
func (c *Coordinator) wakeEvery() time.Duration {
	d := c.cfg.StealAfter / 4
	if c.cfg.Lease/4 < d {
		d = c.cfg.Lease / 4
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// workerLoop claims ranges for one worker until the sweep completes.
func (c *Coordinator) workerLoop(ctx context.Context, s *sched, m *Merger, request []byte, w int) {
	for {
		t := s.next(ctx, w, c.cfg.StealAfter)
		if t == nil {
			return
		}
		err := c.dispatch(ctx, s, m, request, t, w)
		s.finish(t, w, err, m, c.cfg.MaxAttempts)
		if err != nil && ctx.Err() == nil {
			// A failed worker pauses before its next claim, so a dead
			// node does not spin through every range's attempt budget
			// while live workers are still delivering.
			select {
			case <-ctx.Done():
				return
			case <-time.After(c.wakeEvery()):
			}
		}
	}
}

// errorRecord matches the {"error": ...} terminal NDJSON record a
// worker emits when its stream aborts mid-range. A SweepItem line can
// never start this way (its first field is "protocol").
var errorRecord = []byte(`{"error":`)

// dispatch sends one range to one worker and feeds its lines into the
// merger, under the lease + heartbeat watchdog. It returns nil when
// the range's remaining points were all delivered (by this dispatch or
// a racing duplicate).
func (c *Coordinator) dispatch(ctx context.Context, s *sched, m *Merger, request []byte, t *task, w int) error {
	s.mu.Lock()
	start, end := t.start, t.end
	s.mu.Unlock()
	// Skip whatever a racing duplicate has already delivered.
	if start = m.FirstGap(start, end); start >= end {
		return nil
	}

	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	progress := make(chan struct{}, 1)
	go c.watchdog(dctx, cancel, progress)

	worker := c.ring.workers[w]
	url := fmt.Sprintf("%s/v1/sweep?offset=%d&limit=%d", strings.TrimSuffix(worker, "/"), start, end-start)
	hreq, err := http.NewRequestWithContext(dctx, http.MethodPost, url, bytes.NewReader(request))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", api.NDJSONContentType)
	resp, err := c.cfg.Client.Do(hreq)
	if err != nil {
		return fmt.Errorf("fabric: worker %s: %w", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("fabric: worker %s: status %d: %s", worker, resp.StatusCode, bytes.TrimSpace(body))
	}

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for i := start; i < end; i++ {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return fmt.Errorf("fabric: worker %s: stream ended %d points early: %w", worker, end-i, err)
		}
		if bytes.HasPrefix(line, errorRecord) {
			return fmt.Errorf("fabric: worker %s: mid-stream abort: %s", worker, bytes.TrimSpace(line))
		}
		if _, err := m.Add(i, line); err != nil {
			// The merge window or the downstream consumer failed; both
			// doom the sweep, not just this dispatch.
			s.fail(err)
			return err
		}
		s.touch(t)
		select {
		case progress <- struct{}{}:
		default:
		}
	}
	return nil
}

// watchdog cancels the dispatch when no line lands within the lease.
// Every delivered line renews it.
func (c *Coordinator) watchdog(ctx context.Context, cancel context.CancelFunc, progress <-chan struct{}) {
	timer := time.NewTimer(c.cfg.Lease)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-progress:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(c.cfg.Lease)
		case <-timer.C:
			cancel()
			return
		}
	}
}
