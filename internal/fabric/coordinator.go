package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
	"repro/internal/rng"
)

// Config configures a Coordinator.
type Config struct {
	// Service is the coordinator's local evaluation service, used for
	// request normalization and point-key expansion — and, when the
	// fleet degrades, for executing ranges in-process. Workers must run
	// the same grid limits (maxgrid, maxruns) or dispatches can be
	// rejected.
	Service *api.Service
	// Workers lists the worker base URLs (e.g. http://host:8080).
	Workers []string
	// Client issues the dispatch requests (default: a client on
	// DefaultTransport — explicit dial/TLS/response-header timeouts, no
	// whole-request timeout; the per-dispatch lease is the liveness
	// discipline once a stream is flowing).
	Client *http.Client
	// Lease is the per-dispatch heartbeat budget: a dispatch that
	// delivers no line for Lease is cancelled and its unfinished
	// suffix re-dispatched (default 15s). Every delivered line renews
	// the lease, so a slow-but-alive worker is never pre-empted.
	Lease time.Duration
	// StealAfter is how long an in-flight range must go without
	// progress before an idle worker speculatively duplicates its
	// remainder (default Lease/2). The merger dedupes the race by
	// point index, and content-keyed seeds make both copies byte-
	// identical, so stealing never perturbs the output.
	StealAfter time.Duration
	// MaxAttempts bounds the dispatch attempts per range before the
	// range is handed to the in-process executor — or, with
	// DisableLocalFallback, before the sweep fails (default 3 × worker
	// count, minimum 4).
	MaxAttempts int
	// Replicas is the consistent-hash ring's virtual-node count per
	// worker (default DefaultReplicas).
	Replicas int
	// RetryBackoff is the base of the capped exponential backoff a
	// range waits out between dispatch attempts (default 25ms). The
	// actual delay is full-jitter: uniform in [0, min(cap, base·2ⁿ)].
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the backoff window (default 1s).
	RetryBackoffCap time.Duration
	// BreakerThreshold is how many consecutive dispatch failures open a
	// worker's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit sheds all claims
	// before admitting a half-open probe (default Lease).
	BreakerCooldown time.Duration
	// DisableLocalFallback turns off degraded in-process execution:
	// a range that exhausts MaxAttempts fails the sweep instead of
	// falling back to the coordinator's own Service. Mostly for tests
	// that pin the fail-loudly path.
	DisableLocalFallback bool
	// JitterSeed seeds the backoff jitter stream. Zero draws a seed
	// from the clock — two coordinators sharing a recovering fleet must
	// not re-dispatch in lockstep — but either way the seed in use is
	// reported through Logf, so a scheduling race replays by passing
	// the logged value back in (the chaos matrix derives it from
	// CHAOS_SEED). Nothing byte-visible depends on it.
	JitterSeed uint64
	// Logf receives the coordinator's operational log lines (the jitter
	// seed, degraded-execution transitions). Nil discards them.
	Logf func(format string, args ...any)
}

// DefaultTransport returns the transport the coordinator dials workers
// with when Config.Client is nil: explicit connect, TLS-handshake and
// response-header timeouts so a dark or wedged worker fails a dispatch
// in bounded time instead of parking a scheduler slot forever. There
// is deliberately no whole-request timeout — a healthy dispatch
// streams for as long as its range takes; once headers have arrived
// the lease watchdog owns liveness.
func DefaultTransport() *http.Transport {
	return &http.Transport{
		Proxy:                 http.ProxyFromEnvironment,
		DialContext:           (&net.Dialer{Timeout: 5 * time.Second, KeepAlive: 30 * time.Second}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ResponseHeaderTimeout: 15 * time.Second,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// Coordinator shards sweeps across a fleet of workers. It is safe for
// concurrent use; each sweep runs its own scheduler and merger, while
// the per-worker circuit breakers persist across sweeps.
type Coordinator struct {
	cfg  Config
	ring *Ring

	breakers    []*breaker
	localPoints atomic.Int64 // grid points executed in-process, degraded

	// readers pools the per-dispatch response readers: a sweep issues
	// one dispatch per range attempt, and the 64 KiB read buffer is the
	// dominant per-dispatch allocation.
	readers sync.Pool

	jmu    sync.Mutex
	jitter *rng.Stream
}

// New validates the config and builds the coordinator's hash ring.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Service == nil {
		return nil, errors.New("fabric: coordinator needs a local api.Service")
	}
	ring, err := NewRing(cfg.Workers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 15 * time.Second
	}
	if cfg.Client == nil {
		tr := DefaultTransport()
		if cfg.Lease > tr.ResponseHeaderTimeout {
			// A lease above the default header timeout means the
			// operator expects slower first points; don't let the
			// transport pre-empt the watchdog.
			tr.ResponseHeaderTimeout = cfg.Lease
		}
		cfg.Client = &http.Client{Transport: tr}
	}
	if cfg.StealAfter <= 0 {
		cfg.StealAfter = cfg.Lease / 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3 * len(cfg.Workers)
		if cfg.MaxAttempts < 4 {
			cfg.MaxAttempts = 4
		}
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.RetryBackoffCap <= 0 {
		cfg.RetryBackoffCap = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = cfg.Lease
	}
	c := &Coordinator{cfg: cfg, ring: ring}
	for range cfg.Workers {
		c.breakers = append(c.breakers, newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown))
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = uint64(time.Now().UnixNano())
	}
	c.cfg.JitterSeed = cfg.JitterSeed
	c.jitter = rng.New(cfg.JitterSeed)
	c.logf("fabric: coordinator backoff jitter seed %d", cfg.JitterSeed)
	return c, nil
}

// logf routes a log line to Config.Logf, if any.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Ring returns the coordinator's consistent-hash ring.
func (c *Coordinator) Ring() *Ring { return c.ring }

// WorkerStatus is one worker's circuit view, surfaced on /readyz.
type WorkerStatus struct {
	URL     string `json:"url"`
	Circuit string `json:"circuit"` // closed | open | half-open
}

// FleetStatus summarizes the coordinator's live view of its fleet.
type FleetStatus struct {
	Workers []WorkerStatus `json:"workers"`
	// Degraded is true when any worker's circuit is not closed: sweeps
	// still complete (healthy workers absorb the load, the coordinator
	// itself backstops), but capacity is impaired and /readyz says so.
	Degraded bool `json:"degraded"`
	// LocalPoints counts grid points this coordinator executed
	// in-process because the fleet could not.
	LocalPoints int64 `json:"localPoints"`
}

// Status reports per-worker circuit state and the degraded-execution
// counters. It never blocks on sweep progress.
func (c *Coordinator) Status() FleetStatus {
	st := FleetStatus{Workers: make([]WorkerStatus, len(c.breakers))}
	for i, b := range c.breakers {
		state := b.State()
		st.Workers[i] = WorkerStatus{URL: c.ring.workers[i], Circuit: state}
		if state != "closed" {
			st.Degraded = true
		}
	}
	st.LocalPoints = c.localPoints.Load()
	return st
}

// fleetDark reports whether every worker's circuit is impaired (open,
// or half-open with the probe unresolved): the signal for the local
// loop to stop waiting on the fleet and claim pending ranges itself.
func (c *Coordinator) fleetDark() bool {
	for _, b := range c.breakers {
		if b.Closed() {
			return false
		}
	}
	return true
}

// backoffDelay is the capped-exponential full-jitter delay a range
// waits before dispatch attempt n+1: uniform in [0, min(cap, base·2ⁿ)].
// Full jitter (spreading retries over the whole window, not around its
// midpoint) keeps re-dispatches of distinct ranges from
// re-synchronizing against a just-recovered worker.
func (c *Coordinator) backoffDelay(attempts int) time.Duration {
	window := c.cfg.RetryBackoffCap
	if attempts < 20 { // beyond 2²⁰ the shift is past any sane cap
		if d := c.cfg.RetryBackoff << uint(attempts-1); d < window {
			window = d
		}
	}
	c.jmu.Lock()
	u := c.jitter.Float64()
	c.jmu.Unlock()
	return time.Duration(u * float64(window))
}

// task is one key range's scheduling state. start advances over the
// delivered prefix on every (re)dispatch accounting pass, so a requeue
// carries exactly the unfinished suffix.
type task struct {
	start, end int
	owner      int // preferred worker (ring assignment)
	attempts   int
	copies     int // concurrent dispatches (1 + speculative steals)
	lastWorker int // last worker to fail it; steered away on requeue
	progress   time.Time
	completed  bool
	notBefore  time.Time // retry backoff gate: ineligible until then
	localOnly  bool      // remote budget spent; in-process executor only
}

// sched is one sweep's scheduler: a pending queue plus the stealing
// and failure bookkeeping shared by the per-worker loops.
type sched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*task
	tasks   []*task
	failed  error
	done    bool
	cancel  context.CancelFunc // kills in-flight dispatches on failure
}

func (s *sched) fail(err error) {
	s.mu.Lock()
	if s.failed == nil && err != nil {
		s.failed = err
		s.cancel()
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *sched) finished() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done, s.failed
}

// next blocks until a range is available for worker w and claims it.
// Preference order: a pending range this worker owns (ring
// assignment), then a stolen pending range (largest first, skipping
// ranges this worker just failed), then a speculative duplicate of an
// in-flight range with stale progress. Ranges sitting out a retry
// backoff or marked local-only are invisible to workers. Returns nil
// when the sweep is done or failed.
func (s *sched) next(ctx context.Context, w int, stealAfter time.Duration) *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.done || s.failed != nil || ctx.Err() != nil {
			return nil
		}
		now := time.Now()
		eligible := func(t *task) bool { return !t.localOnly && !now.Before(t.notBefore) }
		best := -1
		for i, t := range s.pending {
			if t.owner == w && eligible(t) {
				best = i
				break
			}
		}
		if best < 0 {
			size := 0
			for i, t := range s.pending {
				if !eligible(t) {
					continue
				}
				if t.lastWorker == w && t.attempts > 0 {
					continue // let another worker try what this one failed
				}
				if n := t.end - t.start; n > size {
					best, size = i, n
				}
			}
		}
		if best < 0 {
			for i, t := range s.pending {
				if eligible(t) {
					best = i // nothing better: retry even a range this worker failed
					break
				}
			}
		}
		if best >= 0 {
			t := s.pending[best]
			s.pending = append(s.pending[:best], s.pending[best+1:]...)
			t.copies++
			return t
		}
		// Idle with nothing pending: speculatively duplicate the
		// stalest in-flight range that has gone quiet. The duplicate
		// races the original; the merger dedupes by index. Local-only
		// ranges are never duplicated back onto the fleet.
		var cand *task
		size := 0
		for _, t := range s.tasks {
			if t.completed || t.localOnly || t.copies != 1 || now.Sub(t.progress) < stealAfter {
				continue
			}
			if n := t.end - t.start; n > size {
				cand, size = t, n
			}
		}
		if cand != nil {
			cand.copies++
			return cand
		}
		s.cond.Wait()
	}
}

// nextLocal blocks until a range is eligible for in-process execution
// and claims it: any range marked local-only (its remote attempt
// budget is spent), or — while the whole fleet's circuits are
// impaired — any pending range at all, retry backoff notwithstanding
// (a delay aimed at a fleet known to be dark protects nothing).
// Returns nil when the sweep is done or failed.
func (s *sched) nextLocal(ctx context.Context, dark func() bool) *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.done || s.failed != nil || ctx.Err() != nil {
			return nil
		}
		allDark := dark()
		for i, t := range s.pending {
			if t.localOnly || allDark {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				t.copies++
				return t
			}
		}
		s.cond.Wait()
	}
}

// finish accounts for a returned dispatch: the delivered prefix is
// retired, a fully covered range completes, and an unfinished suffix
// is requeued behind its backoff — or handed to the in-process
// executor once the range exhausts its remote attempts (with
// DisableLocalFallback, the sweep fails instead).
func (c *Coordinator) finish(s *sched, t *task, w int, err error, m *Merger) {
	s.mu.Lock()
	t.copies--
	gap := m.FirstGap(t.start, t.end)
	if gap >= t.end {
		if !t.completed {
			t.completed = true
		}
		if m.Done() {
			s.done = true
		}
		s.mu.Unlock()
		s.cond.Broadcast()
		return
	}
	t.start = gap
	if t.copies > 0 {
		// A racing duplicate is still delivering this range; it will
		// run this accounting when it returns.
		s.mu.Unlock()
		return
	}
	t.lastWorker = w
	t.attempts++
	if !t.localOnly && t.attempts >= c.cfg.MaxAttempts {
		if c.cfg.DisableLocalFallback {
			s.mu.Unlock()
			s.fail(fmt.Errorf("fabric: range [%d, %d) exhausted %d dispatch attempts, last error: %v",
				t.start, t.end, t.attempts, err))
			return
		}
		// Degrade rather than die: the range's remote budget is spent,
		// so it is withdrawn from the fleet and handed to the local
		// loop.
		t.localOnly = true
	}
	if !t.localOnly {
		t.notBefore = time.Now().Add(c.backoffDelay(t.attempts))
	}
	s.pending = append(s.pending, t)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// touch renews the range's heartbeat on every delivered line.
func (s *sched) touch(t *task) {
	s.mu.Lock()
	t.progress = time.Now()
	s.mu.Unlock()
}

// Executor adapts the coordinator to the durable job subsystem: jobs
// submitted to a coordinator node execute across the fleet while their
// checkpoints land in the coordinator's store, so a restarted
// coordinator resumes a distributed job from its last durable point
// exactly like a single-node job — and emits the identical remaining
// bytes.
func (c *Coordinator) Executor() jobs.Executor {
	return func(ctx context.Context, request []byte, offset int, start func(total int) error, emit func(line []byte) error) error {
		return c.SweepStreamFrom(ctx, request, offset, start, emit)
	}
}

// SweepStreamFrom runs the request's grid from point `offset` on
// across the worker fleet, emitting one NDJSON line per point in
// canonical grid order — byte-identical to a single-node run of the
// same request. It is the distributed twin of
// api.Service.SweepStreamFrom and satisfies the same executor
// contract.
func (c *Coordinator) SweepStreamFrom(ctx context.Context, request []byte, offset int, start func(total int) error, emit func(line []byte) error) error {
	var req api.SweepRequest
	if err := json.Unmarshal(request, &req); err != nil {
		return fmt.Errorf("fabric: decoding request: %w", err)
	}
	keys, err := c.cfg.Service.PointKeys(req)
	if err != nil {
		return err
	}
	if start != nil {
		if err := start(len(keys)); err != nil {
			return err
		}
	}
	if offset < 0 || offset > len(keys) {
		return fmt.Errorf("fabric: resume offset %d outside the %d-point grid", offset, len(keys))
	}
	return c.run(ctx, request, keys, offset, len(keys), emit)
}

// run dispatches grid points [from, to) and merges their lines.
func (c *Coordinator) run(ctx context.Context, request []byte, keys []string, from, to int, emit func(line []byte) error) error {
	if from >= to {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	m := NewMerger(from, to, emit)
	s := &sched{cancel: cancel}
	s.cond = sync.NewCond(&s.mu)
	for _, rg := range c.ring.Ranges(keys[from:to], from) {
		t := &task{start: rg.Start, end: rg.Start + rg.Count, owner: rg.Worker, lastWorker: -1, progress: time.Now()}
		s.tasks = append(s.tasks, t)
		s.pending = append(s.pending, t)
	}

	// The waker gives cond.Wait a clock: steal thresholds, retry
	// backoffs and context cancellation are time-based conditions no
	// cond broadcast fires for on its own.
	wake := time.NewTicker(c.wakeEvery())
	stop := make(chan struct{})
	defer func() { wake.Stop(); close(stop) }()
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-wake.C:
				s.cond.Broadcast()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := range c.ring.workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c.workerLoop(ctx, s, m, request, w)
		}(w)
	}
	if !c.cfg.DisableLocalFallback {
		var req api.SweepRequest
		if err := json.Unmarshal(request, &req); err != nil {
			cancel()
			return fmt.Errorf("fabric: decoding request: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.localLoop(ctx, s, m, req)
		}()
	}
	wg.Wait()

	done, failed := s.finished()
	switch {
	case failed != nil:
		return failed
	case ctx.Err() != nil:
		return ctx.Err()
	case !done:
		return errors.New("fabric: sweep stalled with no failure recorded")
	}
	return nil
}

// wakeEvery is the scheduler's clock tick: fine-grained enough to
// notice a stale lease promptly at test-scale lease budgets without
// spinning at production ones.
func (c *Coordinator) wakeEvery() time.Duration {
	d := c.cfg.StealAfter / 4
	if c.cfg.Lease/4 < d {
		d = c.cfg.Lease / 4
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// workerLoop claims ranges for one worker until the sweep completes.
// An open circuit sheds the worker's claims entirely: its ranges flow
// to healthy workers (or the local loop) instead of burning attempt
// budget against a peer known to be dark.
func (c *Coordinator) workerLoop(ctx context.Context, s *sched, m *Merger, request []byte, w int) {
	b := c.breakers[w]
	for {
		for !b.Allow(time.Now()) {
			if done, failed := s.finished(); done || failed != nil || ctx.Err() != nil {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(c.wakeEvery()):
			}
		}
		t := s.next(ctx, w, c.cfg.StealAfter)
		if t == nil {
			b.CancelProbe()
			return
		}
		attempted, err := c.dispatch(ctx, s, m, request, t, w)
		switch {
		case !attempted:
			// The range was already covered by a racing duplicate; no
			// request reached the worker, so its circuit learned
			// nothing.
			b.CancelProbe()
		case err == nil:
			b.Success()
		case ctx.Err() == nil:
			b.Failure(time.Now())
		}
		c.finish(s, t, w, err, m)
	}
}

// localLoop is the degraded-execution backstop: it claims ranges the
// fleet can no longer serve and runs them through the coordinator's
// own Service. A local execution failure is terminal for the sweep —
// there is no path more reliable left to retry on.
func (c *Coordinator) localLoop(ctx context.Context, s *sched, m *Merger, req api.SweepRequest) {
	for {
		t := s.nextLocal(ctx, c.fleetDark)
		if t == nil {
			return
		}
		err := c.runLocal(ctx, s, m, req, t)
		if err != nil && ctx.Err() == nil {
			s.fail(fmt.Errorf("fabric: degraded local execution of range [%d, %d): %w", t.start, t.end, err))
		}
		c.finish(s, t, -1, err, m)
	}
}

// runLocal executes one claimed range in-process through the same
// sweep path a worker runs, encoding each item exactly as
// api.JobExecutor does — so degraded output stays byte-identical to
// the fleet's. Priority is Batch: degraded bulk work must not starve
// interactive point queries on the local pool.
func (c *Coordinator) runLocal(ctx context.Context, s *sched, m *Merger, req api.SweepRequest, t *task) error {
	s.mu.Lock()
	start, end := t.start, t.end
	s.mu.Unlock()
	// Skip whatever a racing remote duplicate has already delivered.
	if start = m.FirstGap(start, end); start >= end {
		return nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	i := start
	_, err := c.cfg.Service.SweepStreamRange(ctx, req, start, end-start, jobs.Batch, func(item api.SweepItem) error {
		buf.Reset()
		if err := enc.Encode(item); err != nil {
			return err
		}
		if _, err := m.Add(i, buf.Bytes()); err != nil {
			return err
		}
		i++
		s.touch(t)
		c.localPoints.Add(1)
		return nil
	})
	return err
}

// errorRecord matches the {"error": ...} terminal NDJSON record a
// worker emits when its stream aborts mid-range. A SweepItem line can
// never start this way (its first field is "protocol"), and an
// integrity-framed line starts with hex digits.
var errorRecord = []byte(`{"error":`)

// ErrCorruptLine marks a worker-delivered result line that failed
// integrity verification. It fails the dispatch (the range retries on
// another attempt), never the sweep.
var ErrCorruptLine = errors.New("fabric: corrupt result line")

// dispatch sends one range to one worker and feeds its lines into the
// merger, under the lease + heartbeat watchdog. The response is
// integrity-framed (api.HeaderSweepIntegrity): each line's checksum is
// verified before the merger may emit it, so a byte flipped in flight
// becomes a typed retryable error instead of silently breaking byte
// identity. Returns nil when the range's remaining points were all
// delivered (by this dispatch or a racing duplicate); attempted is
// false when no request was issued at all, so the worker's circuit
// breaker only learns from real attempts.
func (c *Coordinator) dispatch(ctx context.Context, s *sched, m *Merger, request []byte, t *task, w int) (attempted bool, _ error) {
	s.mu.Lock()
	start, end := t.start, t.end
	s.mu.Unlock()
	// Skip whatever a racing duplicate has already delivered.
	if start = m.FirstGap(start, end); start >= end {
		return false, nil
	}

	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	progress := make(chan struct{}, 1)
	go c.watchdog(dctx, cancel, progress)

	worker := c.ring.workers[w]
	url := fmt.Sprintf("%s/v1/sweep?offset=%d&limit=%d", strings.TrimSuffix(worker, "/"), start, end-start)
	hreq, err := http.NewRequestWithContext(dctx, http.MethodPost, url, bytes.NewReader(request))
	if err != nil {
		return true, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", api.NDJSONContentType)
	hreq.Header.Set(api.HeaderSweepIntegrity, api.IntegrityCRC32C)
	resp, err := c.cfg.Client.Do(hreq)
	if err != nil {
		return true, fmt.Errorf("fabric: worker %s: %w", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return true, fmt.Errorf("fabric: worker %s: status %d: %s", worker, resp.StatusCode, bytes.TrimSpace(body))
	}

	br, _ := c.readers.Get().(*bufio.Reader)
	if br == nil {
		br = bufio.NewReaderSize(nil, 64<<10)
	}
	br.Reset(resp.Body)
	defer func() { br.Reset(nil); c.readers.Put(br) }()
	var scratch []byte // spill for the rare line longer than the read buffer
	for i := start; i < end; i++ {
		// ReadSlice hands back a view into the reader's buffer — valid
		// until the next read, which is long enough: the merger copies on
		// Add. ReadBytes would allocate a fresh copy per line.
		framed, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			scratch = append(scratch[:0], framed...)
			for err == bufio.ErrBufferFull {
				framed, err = br.ReadSlice('\n')
				scratch = append(scratch, framed...)
			}
			framed = scratch
		}
		if err != nil {
			return true, fmt.Errorf("fabric: worker %s: stream ended %d points early: %w", worker, end-i, err)
		}
		if bytes.HasPrefix(framed, errorRecord) {
			return true, fmt.Errorf("fabric: worker %s: mid-stream abort: %s", worker, bytes.TrimSpace(framed))
		}
		line, err := api.UnframeLine(framed)
		if err != nil {
			return true, fmt.Errorf("fabric: worker %s: point %d: %w: %v", worker, i, ErrCorruptLine, err)
		}
		if !json.Valid(line) {
			return true, fmt.Errorf("fabric: worker %s: point %d: %w: not JSON", worker, i, ErrCorruptLine)
		}
		if _, err := m.Add(i, line); err != nil {
			if errors.Is(err, ErrMalformedLine) {
				// Torn or unframed delivery: this dispatch failed, the
				// range retries elsewhere.
				return true, fmt.Errorf("fabric: worker %s: point %d: %w", worker, i, err)
			}
			// The merge window or the downstream consumer failed; both
			// doom the sweep, not just this dispatch.
			s.fail(err)
			return true, err
		}
		s.touch(t)
		select {
		case progress <- struct{}{}:
		default:
		}
	}
	return true, nil
}

// watchdog cancels the dispatch when no line lands within the lease.
// Every delivered line renews it.
func (c *Coordinator) watchdog(ctx context.Context, cancel context.CancelFunc, progress <-chan struct{}) {
	timer := time.NewTimer(c.cfg.Lease)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-progress:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(c.cfg.Lease)
		case <-timer.C:
			cancel()
			return
		}
	}
}
