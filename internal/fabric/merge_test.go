package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func lineFor(i int) []byte {
	return []byte(fmt.Sprintf(`{"protocol":"p","point":%d}`+"\n", i))
}

// checkCanonical asserts the three merge invariants over an emitted
// line sequence for the window [start, end): order, exactly-once, no
// invention.
func checkCanonical(t *testing.T, got [][]byte, start, end int) {
	t.Helper()
	if len(got) != end-start {
		t.Fatalf("emitted %d lines, want %d", len(got), end-start)
	}
	for i, line := range got {
		if want := lineFor(start + i); !bytes.Equal(line, want) {
			t.Fatalf("position %d: got %q, want %q", i, line, want)
		}
	}
}

// TestMergerInterleavings drives the merger through adversarial
// delivery schedules — out-of-order ranges, duplicated deliveries,
// delayed (late-arriving) prefixes — and asserts the canonical output
// every time. Deterministically seeded so failures replay.
func TestMergerInterleavings(t *testing.T) {
	const start, end = 3, 83
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		var got [][]byte
		m := NewMerger(start, end, func(line []byte) error {
			got = append(got, append([]byte(nil), line...))
			return nil
		})
		// Schedule: every index once, shuffled, plus ~50% duplicates
		// spliced in (a stolen range racing its original re-delivers a
		// prefix), delivered through a reusable buffer to catch aliasing.
		schedule := r.Perm(end - start)
		for range schedule {
			schedule = append(schedule, schedule[r.Intn(end-start)])
		}
		r.Shuffle(len(schedule), func(i, j int) { schedule[i], schedule[j] = schedule[j], schedule[i] })
		buf := make([]byte, 0, 64)
		freshCount := make(map[int]int)
		for _, off := range schedule {
			i := start + off
			buf = append(buf[:0], lineFor(i)...)
			fresh, err := m.Add(i, buf)
			if err != nil {
				t.Fatalf("seed %d: Add(%d): %v", seed, i, err)
			}
			if fresh {
				freshCount[i]++
			}
		}
		if !m.Done() {
			t.Fatalf("seed %d: merger not done after full schedule", seed)
		}
		checkCanonical(t, got, start, end)
		for i := start; i < end; i++ {
			if freshCount[i] != 1 {
				t.Fatalf("seed %d: index %d accepted fresh %d times, want exactly once", seed, i, freshCount[i])
			}
		}
		if gap := m.FirstGap(start, end); gap != end {
			t.Errorf("seed %d: FirstGap over complete window = %d, want %d", seed, gap, end)
		}
	}
}

// TestMergerConcurrentWorkers emulates the real topology under -race:
// several goroutines each deliver one contiguous range (in range order,
// as a worker stream does), one range delivered twice by a racing
// thief.
func TestMergerConcurrentWorkers(t *testing.T) {
	const end = 120
	var mu sync.Mutex
	var got [][]byte
	m := NewMerger(0, end, func(line []byte) error {
		mu.Lock()
		got = append(got, append([]byte(nil), line...))
		mu.Unlock()
		return nil
	})
	ranges := [][2]int{{0, 31}, {31, 57}, {57, 90}, {90, 120}, {31, 57}} // last = stolen duplicate
	var wg sync.WaitGroup
	for _, rg := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if _, err := m.Add(i, lineFor(i)); err != nil {
					t.Errorf("Add(%d): %v", i, err)
					return
				}
			}
		}(rg[0], rg[1])
	}
	wg.Wait()
	if !m.Done() {
		t.Fatal("merger not done")
	}
	checkCanonical(t, got, 0, end)
}

func TestMergerWindowAndGap(t *testing.T) {
	m := NewMerger(10, 20, func([]byte) error { return nil })
	for _, bad := range []int{9, 20, -1} {
		if _, err := m.Add(bad, lineFor(bad)); err == nil {
			t.Errorf("Add(%d) outside window accepted", bad)
		}
	}
	// Accept a non-prefix subset; the gap must be the first hole, and
	// already-emitted prefixes must report no gap.
	for _, i := range []int{10, 11, 14} {
		if _, err := m.Add(i, lineFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if gap := m.FirstGap(10, 20); gap != 12 {
		t.Errorf("FirstGap(10,20) = %d, want 12", gap)
	}
	if gap := m.FirstGap(14, 20); gap != 15 {
		t.Errorf("FirstGap(14,20) = %d, want 15 (14 buffered)", gap)
	}
	if m.Done() {
		t.Error("Done with holes outstanding")
	}
}

// TestMergerStickyEmitError: once the downstream consumer fails, every
// further Add reports that error and nothing more is emitted — the
// whole sweep is doomed, not silently truncated.
func TestMergerStickyEmitError(t *testing.T) {
	boom := errors.New("downstream gone")
	emitted := 0
	m := NewMerger(0, 5, func([]byte) error {
		if emitted == 2 {
			return boom
		}
		emitted++
		return nil
	})
	var firstErr error
	for i := 0; i < 5 && firstErr == nil; i++ {
		_, firstErr = m.Add(i, lineFor(i))
	}
	if !errors.Is(firstErr, boom) {
		t.Fatalf("emit failure not surfaced: %v", firstErr)
	}
	if _, err := m.Add(4, lineFor(4)); !errors.Is(err, boom) {
		t.Errorf("sticky error not returned on later Add: %v", err)
	}
	if err := m.Err(); !errors.Is(err, boom) {
		t.Errorf("Err() = %v, want %v", err, boom)
	}
	if emitted != 2 {
		t.Errorf("emitted %d lines after failure, want 2", emitted)
	}
}

// TestMergerTornDeliveryNonSticky pins the malformed-line contract: a
// torn delivery is refused with ErrMalformedLine, the merger stays
// healthy (the error is not sticky), and a later intact delivery of
// the same point merges normally.
func TestMergerTornDeliveryNonSticky(t *testing.T) {
	var got [][]byte
	m := NewMerger(0, 2, func(line []byte) error {
		got = append(got, append([]byte(nil), line...))
		return nil
	})
	intact := lineFor(0)
	for _, torn := range [][]byte{
		nil,                       // empty delivery
		intact[:len(intact)-1],    // trailing newline stripped
		append(intact, "{}\n"...), // spliced: interior newline
	} {
		fresh, err := m.Add(0, torn)
		if fresh || !errors.Is(err, ErrMalformedLine) {
			t.Fatalf("Add(0, %q) = (%v, %v), want ErrMalformedLine", torn, fresh, err)
		}
	}
	if err := m.Err(); err != nil {
		t.Fatalf("torn deliveries stuck the merger: %v", err)
	}
	for i := 0; i < 2; i++ {
		if fresh, err := m.Add(i, lineFor(i)); !fresh || err != nil {
			t.Fatalf("intact Add(%d) after tears = (%v, %v)", i, fresh, err)
		}
	}
	if !m.Done() {
		t.Fatal("merger not done after intact re-deliveries")
	}
	checkCanonical(t, got, 0, 2)
}

// TestMergerHookInjectsTear exercises the chaos intake hook: a hook
// that tears a point's first delivery makes that Add fail with
// ErrMalformedLine; the retry (hook passes it through) completes the
// canonical merge.
func TestMergerHookInjectsTear(t *testing.T) {
	var got [][]byte
	m := NewMerger(0, 5, func(line []byte) error {
		got = append(got, append([]byte(nil), line...))
		return nil
	})
	torn := 0
	m.SetHook(func(i int, line []byte) []byte {
		if i == 2 && torn == 0 {
			torn++
			return line[:len(line)-1]
		}
		return line
	})
	for i := 0; i < 5; i++ {
		fresh, err := m.Add(i, lineFor(i))
		if i == 2 {
			if fresh || !errors.Is(err, ErrMalformedLine) {
				t.Fatalf("hooked Add(2) = (%v, %v), want ErrMalformedLine", fresh, err)
			}
			if fresh, err = m.Add(i, lineFor(i)); !fresh || err != nil {
				t.Fatalf("retry Add(2) = (%v, %v)", fresh, err)
			}
			continue
		}
		if !fresh || err != nil {
			t.Fatalf("Add(%d) = (%v, %v)", i, fresh, err)
		}
	}
	if !m.Done() {
		t.Fatal("merger not done")
	}
	checkCanonical(t, got, 0, 5)
}

// FuzzMergerInterleaving lets the fuzzer search delivery schedules for
// an ordering, duplication or dropped-line violation. Each fuzz input
// byte selects the next delivery among the not-yet-delivered indices
// (plus re-deliveries of already-delivered ones) and may tear the
// delivery — strip its newline or splice two lines together — which
// must bounce with ErrMalformedLine and leave the merger healthy, so
// any byte string is a valid schedule.
func FuzzMergerInterleaving(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{9, 9, 9, 0, 0, 1})
	f.Add([]byte{255, 128, 7, 7, 63, 2, 90, 4, 4, 4})
	f.Add([]byte{2, 6, 2, 130, 6, 3, 7, 11})  // torn then re-delivered
	f.Add([]byte{254, 250, 246, 242, 238, 0}) // tears across the window
	f.Fuzz(func(t *testing.T, schedule []byte) {
		const end = 17
		var got [][]byte
		m := NewMerger(0, end, func(line []byte) error {
			got = append(got, append([]byte(nil), line...))
			return nil
		})
		pending := make([]int, end)
		for i := range pending {
			pending[i] = i
		}
		delivered := make([]int, 0, end)
		for _, b := range schedule {
			var i int
			fromPending := len(pending) > 0 && (b&1 == 0 || len(delivered) == 0)
			if fromPending {
				k := int(b>>2) % len(pending)
				i = pending[k]
				pending = append(pending[:k], pending[k+1:]...)
			} else {
				i = delivered[int(b>>2)%len(delivered)] // duplicate delivery
			}
			if b&2 != 0 { // torn delivery: refused, index still owed
				line := lineFor(i)
				if b >= 128 {
					line = append(line, lineFor(i)...) // splice: interior '\n'
				} else {
					line = line[:len(line)-1] // strip trailing '\n'
				}
				if fresh, err := m.Add(i, line); fresh || !errors.Is(err, ErrMalformedLine) {
					t.Fatalf("torn Add(%d) = (%v, %v), want ErrMalformedLine", i, fresh, err)
				}
				if fromPending {
					pending = append(pending, i)
				}
				continue
			}
			delivered = append(delivered, i)
			if _, err := m.Add(i, lineFor(i)); err != nil {
				t.Fatalf("Add(%d): %v", i, err)
			}
		}
		// Drain the remainder so the invariants are checked on a
		// complete window whatever schedule the fuzzer chose.
		for _, i := range pending {
			if _, err := m.Add(i, lineFor(i)); err != nil {
				t.Fatalf("drain Add(%d): %v", i, err)
			}
		}
		if !m.Done() {
			t.Fatal("complete delivery left merger not done")
		}
		checkCanonical(t, got, 0, end)
	})
}
