package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
)

// timeoutContext bounds one replication round trip.
func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// ErrFenced is returned by every Replicator operation once a replica
// has rejected this leader's term: a newer leader exists, and the only
// safe move is to halt writes immediately — quorum on the other peers
// does not matter.
var ErrFenced = errors.New("fabric: leader fenced by a newer term")

// ErrNoQuorum reports a mutation that could not reach a write quorum
// of replicas.
var ErrNoQuorum = errors.New("fabric: replication quorum not reached")

// ReplicatorConfig configures a Replicator.
type ReplicatorConfig struct {
	// Self is this leader's advertised URL, stamped on every write.
	Self string
	// Peers are the replica base URLs (excluding self).
	Peers []string
	// Store is the local job store, read for gap backfills.
	Store *jobs.Store
	// Client issues the replication requests (default http.DefaultClient).
	Client *http.Client
	// Quorum is how many peer acks a mutation needs. The default,
	// (len(Peers)+1)/2, is a cluster majority counting the leader's own
	// durable copy: 1 of 2 peers in a 3-node fleet.
	Quorum int
	// Attempts bounds the per-peer tries per mutation (default 4).
	// Protocol-level healing — gap backfill, job re-create — does not
	// consume attempts; only transport faults and transient rejections
	// do.
	Attempts int
	// Backoff is the base delay between per-peer retries (default
	// 25ms, doubling per attempt).
	Backoff time.Duration
	// Timeout bounds each replication round trip (default 10s).
	Timeout time.Duration
	// OnFenced, when non-nil, is called exactly once when a replica
	// fences this leader, with the winning term.
	OnFenced func(term uint64)
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

// peerState is the replicator's health view of one replica.
type peerState struct {
	acked   map[string]int // job id -> lines acked by this peer
	lastErr string
	ok      bool
}

// Replicator is the sending side of the replication plane: a
// jobs.ReplicationSink that fans each durable mutation out to the
// peer replicas and acks once a write quorum holds it. It is safe for
// concurrent use.
type Replicator struct {
	cfg  ReplicatorConfig
	term atomic.Uint64

	fenced     atomic.Bool
	fencedTerm atomic.Uint64
	fenceOnce  sync.Once

	mu    sync.Mutex
	peers map[string]*peerState
}

// NewReplicator validates the config and returns a replicator.
func NewReplicator(cfg ReplicatorConfig) (*Replicator, error) {
	if cfg.Store == nil {
		return nil, errors.New("fabric: replicator needs a jobs.Store")
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("fabric: replicator needs at least one peer")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = (len(cfg.Peers) + 1) / 2
	}
	if cfg.Quorum > len(cfg.Peers) {
		return nil, fmt.Errorf("fabric: quorum %d exceeds the %d peers", cfg.Quorum, len(cfg.Peers))
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 4
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	r := &Replicator{cfg: cfg, peers: make(map[string]*peerState)}
	for _, p := range cfg.Peers {
		// A peer is healthy until a replication round says otherwise —
		// a fresh leader with nothing to replicate is not degraded.
		r.peers[p] = &peerState{acked: make(map[string]int), ok: true}
	}
	r.term.Store(1)
	return r, nil
}

// SetTerm installs the term this leader writes under (promotion).
func (r *Replicator) SetTerm(term uint64) { r.term.Store(term) }

// Term returns the term this leader writes under.
func (r *Replicator) Term() uint64 { return r.term.Load() }

// Fenced reports whether a replica has rejected this leader's term,
// and the winning term.
func (r *Replicator) Fenced() (bool, uint64) {
	return r.fenced.Load(), r.fencedTerm.Load()
}

func (r *Replicator) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// fence latches the fenced state and fires OnFenced once.
func (r *Replicator) fence(term uint64) {
	r.fencedTerm.Store(term)
	r.fenced.Store(true)
	r.fenceOnce.Do(func() {
		r.logf("fabric: leader (term %d) fenced by term %d; halting writes", r.term.Load(), term)
		if r.cfg.OnFenced != nil {
			r.cfg.OnFenced(term)
		}
	})
}

// errPeerStale is a replica's 412: this leader lost to a newer term.
type errPeerStale struct{ term uint64 }

func (e *errPeerStale) Error() string {
	return fmt.Sprintf("fabric: replica fenced this write (term %d)", e.term)
}

// quorum runs one mutation against every peer concurrently and
// resolves the quorum: nil once cfg.Quorum peers acked, ErrFenced the
// moment any peer reports a newer term (regardless of other acks),
// ErrNoQuorum otherwise. op runs once per peer with per-peer retries
// already applied by the caller-provided closure.
func (r *Replicator) quorum(opName, jobID string, lines int, op func(peer string) error) error {
	if r.fenced.Load() {
		return fmt.Errorf("%w (term %d)", ErrFenced, r.fencedTerm.Load())
	}
	type result struct {
		peer string
		err  error
	}
	results := make(chan result, len(r.cfg.Peers))
	for _, peer := range r.cfg.Peers {
		go func(peer string) {
			results <- result{peer, r.withRetries(func() error { return op(peer) })}
		}(peer)
	}
	acks, errs := 0, make([]error, 0, len(r.cfg.Peers))
	var fencedBy uint64
	for range r.cfg.Peers {
		res := <-results
		st := r.peerState(res.peer)
		r.mu.Lock()
		if res.err == nil {
			st.ok, st.lastErr = true, ""
			if jobID != "" {
				st.acked[jobID] = lines
			}
			acks++
		} else {
			st.ok, st.lastErr = false, res.err.Error()
			var stale *errPeerStale
			if errors.As(res.err, &stale) && stale.term > fencedBy {
				fencedBy = stale.term
			}
			errs = append(errs, fmt.Errorf("%s: %w", res.peer, res.err))
		}
		r.mu.Unlock()
	}
	if fencedBy > 0 {
		r.fence(fencedBy)
		return fmt.Errorf("%w (term %d)", ErrFenced, fencedBy)
	}
	if acks < r.cfg.Quorum {
		return fmt.Errorf("%w: %s %s got %d/%d acks: %v", ErrNoQuorum, opName, jobID, acks, r.cfg.Quorum, errors.Join(errs...))
	}
	return nil
}

func (r *Replicator) peerState(peer string) *peerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peers[peer]
}

// withRetries retries transient failures with doubling backoff. A
// stale-term rejection is terminal — retrying a fenced write cannot
// succeed and must not delay the halt.
func (r *Replicator) withRetries(op func() error) error {
	var err error
	delay := r.cfg.Backoff
	for attempt := 0; attempt < r.cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		if err = op(); err == nil {
			return nil
		}
		var stale *errPeerStale
		if errors.As(err, &stale) {
			return err
		}
	}
	return err
}

// do issues one stamped replication request and decodes the protocol's
// error vocabulary into typed errors.
func (r *Replicator) do(method, url string, body []byte, header http.Header) (*http.Response, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, v := range header {
		req.Header[k] = v
	}
	req.Header.Set(HeaderReplicaTerm, strconv.FormatUint(r.term.Load(), 10))
	req.Header.Set(HeaderReplicaLeader, r.cfg.Self)
	ctx, cancel := timeoutContext(r.cfg.Timeout)
	defer cancel()
	resp, err := r.cfg.Client.Do(req.WithContext(ctx))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusPreconditionFailed {
		var body struct {
			Term uint64 `json:"term"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		return nil, &errPeerStale{term: body.Term}
	}
	return resp, nil
}

// JobCreated implements jobs.ReplicationSink: the job's canonical
// request and initial meta must land on a quorum of peers before the
// submission is acknowledged.
func (r *Replicator) JobCreated(meta jobs.Meta, request []byte) error {
	body, err := json.Marshal(replicaJobBody{Meta: meta, Request: request})
	if err != nil {
		return err
	}
	return r.quorum("create", meta.ID, 0, func(peer string) error {
		return r.putJob(peer, meta.ID, body)
	})
}

func (r *Replicator) putJob(peer, id string, body []byte) error {
	resp, err := r.do(http.MethodPut, peer+"/v1/replica/jobs/"+id, body, nil)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: replica PUT %s: %s", id, respError(resp))
	}
	return nil
}

// Checkpoint implements jobs.ReplicationSink: the result-line suffix
// [from, from+k) plus the meta must land on a quorum of peers before
// the flush acks. Per-peer protocol healing: a 409 gap backfills the
// peer from its durable count (the leader's store holds every line it
// has ever checkpointed), a 404 re-creates the job there first.
func (r *Replicator) Checkpoint(id string, meta jobs.Meta, from int, lines []byte) error {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	target := from + countNewlines(lines)
	return r.quorum("checkpoint", id, target, func(peer string) error {
		// Healing budget 2: a fresh peer may need BOTH a job re-create
		// (404) and a gap backfill (409) before the checkpoint lands.
		return r.checkpointPeer(peer, id, metaJSON, from, lines, 2)
	})
}

func (r *Replicator) checkpointPeer(peer, id string, metaJSON []byte, from int, lines []byte, heal int) error {
	header := http.Header{HeaderReplicaMeta: []string{string(metaJSON)}}
	url := fmt.Sprintf("%s/v1/replica/jobs/%s/checkpoint?from=%d", peer, id, from)
	resp, err := r.do(http.MethodPost, url, frameAll(lines), header)
	if err != nil {
		return err
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		if heal <= 0 {
			break
		}
		// The peer is behind (it missed earlier checkpoints): backfill
		// the whole range from its durable count out of the local store,
		// then retry once — a second gap means the peer is losing writes
		// and the normal retry budget takes over.
		var gap struct {
			Lines int `json:"lines"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&gap); err != nil {
			return fmt.Errorf("fabric: replica gap response undecodable: %w", err)
		}
		if gap.Lines > from {
			return fmt.Errorf("fabric: replica %s claims %d lines beyond checkpoint %d", peer, gap.Lines, from)
		}
		backfill, err := r.cfg.Store.ReadResultLines(id, gap.Lines, from)
		if err != nil {
			return fmt.Errorf("fabric: reading backfill [%d,%d) for %s: %w", gap.Lines, from, id, err)
		}
		r.logf("fabric: backfilling replica %s job %s lines [%d,%d)", peer, id, gap.Lines, from)
		return r.checkpointPeer(peer, id, metaJSON, gap.Lines, append(backfill, lines...), heal-1)
	case http.StatusNotFound:
		if heal <= 0 {
			break
		}
		// The peer never saw this job (it joined late, or its disk is
		// fresh): re-create it there, then retry the checkpoint with the
		// remaining healing budget — the fresh job will still need a gap
		// backfill when from > 0.
		request, err := r.cfg.Store.Request(id)
		if err != nil {
			return fmt.Errorf("fabric: reading request for re-create of %s: %w", id, err)
		}
		var meta jobs.Meta
		if err := json.Unmarshal(metaJSON, &meta); err != nil {
			return err
		}
		body, err := json.Marshal(replicaJobBody{Meta: meta, Request: request})
		if err != nil {
			return err
		}
		r.logf("fabric: re-creating job %s on replica %s", id, peer)
		if err := r.putJob(peer, id, body); err != nil {
			return err
		}
		return r.checkpointPeer(peer, id, metaJSON, from, lines, heal-1)
	}
	return fmt.Errorf("fabric: replica checkpoint %s@%d: %s", id, from, respError(resp))
}

// JobRemoved implements jobs.ReplicationSink: a deletion needs the
// same quorum as a creation. A peer that never had the job acks
// trivially (DELETE is idempotent).
func (r *Replicator) JobRemoved(id string) error {
	return r.quorum("remove", id, 0, func(peer string) error {
		resp, err := r.do(http.MethodDelete, peer+"/v1/replica/jobs/"+id, nil, nil)
		if err != nil {
			return err
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
			return fmt.Errorf("fabric: replica DELETE %s: %s", id, respError(resp))
		}
		return nil
	})
}

// ReplicaPeerStatus is one peer's replication health, for /readyz.
type ReplicaPeerStatus struct {
	URL string `json:"url"`
	// Acked reports whether the peer acked its most recent mutation.
	Acked bool `json:"acked"`
	// LagLines is how far the peer's acked line count trails the
	// leader's durable count, summed over jobs (0 = in sync as of the
	// last quorum round).
	LagLines int    `json:"lagLines"`
	Error    string `json:"error,omitempty"`
}

// Status reports per-peer replication health and whether a write
// quorum is currently reachable.
func (r *Replicator) Status() (peers []ReplicaPeerStatus, quorumOK bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// The leader's own acked view is max over peers per job — every
	// acked line was durable locally first.
	leader := make(map[string]int)
	for _, p := range r.cfg.Peers {
		for id, n := range r.peers[p].acked {
			if n > leader[id] {
				leader[id] = n
			}
		}
	}
	ok := 0
	for _, p := range r.cfg.Peers {
		st := r.peers[p]
		lag := 0
		for id, n := range leader {
			if have := st.acked[id]; have < n {
				lag += n - have
			}
		}
		if st.ok {
			ok++
		}
		peers = append(peers, ReplicaPeerStatus{URL: p, Acked: st.ok, LagLines: lag, Error: st.lastErr})
	}
	return peers, ok >= r.cfg.Quorum
}

// frameAll wraps each '\n'-terminated line in the CRC-32C integrity
// frame the replica verifies on receipt.
func frameAll(lines []byte) []byte {
	out := make([]byte, 0, len(lines)+len(lines)/8)
	for len(lines) > 0 {
		i := bytes.IndexByte(lines, '\n')
		if i < 0 {
			i = len(lines) - 1 // defensive; sink contract says this cannot happen
		}
		out = api.AppendFrameLine(out, lines[:i+1])
		lines = lines[i+1:]
	}
	return out
}

func countNewlines(b []byte) int { return bytes.Count(b, []byte{'\n'}) }

// respError extracts the {"error": ...} body of a failed replication
// response.
func respError(resp *http.Response) string {
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&body)
	if body.Error == "" {
		return resp.Status
	}
	return fmt.Sprintf("%s (%s)", resp.Status, body.Error)
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
