package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
)

// The replication wire protocol (leader → replica, documented in
// DESIGN.md "Failure model"). Every mutating request is stamped with
// the leader's term and identity:
//
//	PUT    /v1/replica/jobs/{id}             create/refresh a job (meta + canonical request)
//	POST   /v1/replica/jobs/{id}/checkpoint  append result lines [from, from+k) + meta
//	DELETE /v1/replica/jobs/{id}             remove a job
//	POST   /v1/replica/heartbeat             leader lease renewal {term, leader}
//	GET    /v1/replica/jobs/{id}             durable state (meta + line count)
//	GET    /v1/replica/status                term / leader / heartbeat age
//
// Checkpoint bodies reuse the sweep stream's CRC-32C line framing
// (api.FrameLine): a byte flipped in flight fails the frame check on
// the replica and the write is rejected with 422 — the leader retries
// with fresh bytes. Status codes are the protocol's vocabulary:
//
//	412 stale term   {"term": T}   the writer is fenced; it must halt
//	409 line gap     {"lines": n}  replica is behind; backfill from n
//	404 unknown job                re-PUT the job, then retry
//	422 bad frame                  transient; resend
//	503 lease held                 replica-side executor still closing; retry
const (
	// HeaderReplicaTerm stamps a replication request with the writer's
	// leader term.
	HeaderReplicaTerm = "X-Replica-Term"
	// HeaderReplicaLeader stamps it with the writer's advertised URL.
	HeaderReplicaLeader = "X-Replica-Leader"
	// HeaderReplicaMeta carries the job meta of a checkpoint as compact
	// JSON (the body is reserved for the framed result lines).
	HeaderReplicaMeta = "X-Replica-Meta"
)

// ReplicaConfig configures a Replica.
type ReplicaConfig struct {
	// Store is the node's local job store replicated writes land in.
	Store *jobs.Store
	// OnTermAdvance, when non-nil, is called (outside the replica's
	// lock) whenever a request carries a term newer than any seen — the
	// signal that fences a stale local leader.
	OnTermAdvance func(term uint64, leader string)
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

// Replica is the receiving end of the replication plane: it applies
// term-fenced job mutations to the local store and tracks the current
// leader's lease. Every fleet node runs one — including the leader,
// whose own replica is how it learns it has been superseded.
type Replica struct {
	cfg ReplicaConfig

	mu     sync.Mutex
	term   uint64
	leader string
	beatAt time.Time
}

// NewReplica returns a replica over the store.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Store == nil {
		return nil, errors.New("fabric: replica needs a jobs.Store")
	}
	return &Replica{cfg: cfg, beatAt: time.Now()}, nil
}

// Term returns the highest term observed and the leader that holds it.
func (rp *Replica) Term() (uint64, string) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.term, rp.leader
}

// BeatAge returns how long ago the current leader last renewed its
// lease (heartbeat or any accepted write). Standbys promote when this
// exceeds the lease TTL.
func (rp *Replica) BeatAge() time.Duration {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return time.Since(rp.beatAt)
}

// SetTerm installs a term this node itself holds (promotion): later
// requests from older terms are fenced. It also resets the lease
// clock.
func (rp *Replica) SetTerm(term uint64, leader string) {
	rp.mu.Lock()
	if term > rp.term {
		rp.term, rp.leader = term, leader
	}
	rp.beatAt = time.Now()
	rp.mu.Unlock()
}

// errStaleTerm is the fencing rejection, carrying the term the writer
// lost to.
type errStaleTerm struct{ term uint64 }

func (e *errStaleTerm) Error() string {
	return fmt.Sprintf("fabric: write fenced by term %d", e.term)
}

// observe runs the fencing state machine for one request stamped
// (term, leader): older terms — or a different claimant of the current
// term — are rejected with the term to beat; the newest term advances
// the replica (firing OnTermAdvance); an accepted request renews the
// leader's lease.
func (rp *Replica) observe(term uint64, leader string) error {
	rp.mu.Lock()
	switch {
	case term < rp.term, term == rp.term && rp.leader != "" && leader != rp.leader:
		cur := rp.term
		rp.mu.Unlock()
		return &errStaleTerm{term: cur}
	case term > rp.term:
		rp.term, rp.leader = term, leader
		rp.beatAt = time.Now()
		rp.mu.Unlock()
		rp.logf("fabric: replica advanced to term %d (leader %s)", term, leader)
		if rp.cfg.OnTermAdvance != nil {
			rp.cfg.OnTermAdvance(term, leader)
		}
		return nil
	default:
		rp.leader = leader
		rp.beatAt = time.Now()
		rp.mu.Unlock()
		return nil
	}
}

func (rp *Replica) logf(format string, args ...any) {
	if rp.cfg.Logf != nil {
		rp.cfg.Logf(format, args...)
	}
}

// fence parses the request's term stamp and runs it through observe,
// writing the 412 itself when the writer is stale. Returns false when
// the request must not proceed.
func (rp *Replica) fence(w http.ResponseWriter, r *http.Request) bool {
	term, err := strconv.ParseUint(r.Header.Get(HeaderReplicaTerm), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: bad %s: %v", HeaderReplicaTerm, err))
		return false
	}
	if err := rp.observe(term, r.Header.Get(HeaderReplicaLeader)); err != nil {
		var stale *errStaleTerm
		if errors.As(err, &stale) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusPreconditionFailed)
			json.NewEncoder(w).Encode(struct {
				Term  uint64 `json:"term"`
				Error string `json:"error"`
			}{stale.term, err.Error()})
			return false
		}
		writeError(w, http.StatusInternalServerError, err)
		return false
	}
	return true
}

// Routes mounts the /v1/replica/* surface on mux.
func (rp *Replica) Routes(mux *http.ServeMux) {
	mux.HandleFunc("PUT /v1/replica/jobs/{id}", rp.handleCreate)
	mux.HandleFunc("POST /v1/replica/jobs/{id}/checkpoint", rp.handleCheckpoint)
	mux.HandleFunc("DELETE /v1/replica/jobs/{id}", rp.handleDelete)
	mux.HandleFunc("GET /v1/replica/jobs/{id}", rp.handleStatus)
	mux.HandleFunc("POST /v1/replica/heartbeat", rp.handleHeartbeat)
	mux.HandleFunc("GET /v1/replica/status", rp.handleSelf)
}

// replicaJobBody is the PUT body: the job meta plus its canonical
// request bytes (which are themselves JSON, so they embed verbatim).
type replicaJobBody struct {
	Meta    jobs.Meta       `json:"meta"`
	Request json.RawMessage `json:"request"`
}

func (rp *Replica) handleCreate(w http.ResponseWriter, r *http.Request) {
	if !rp.fence(w, r) {
		return
	}
	id := r.PathValue("id")
	var body replicaJobBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: bad replica job body: %w", err))
		return
	}
	if body.Meta.ID != id {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: body id %q != path id %q", body.Meta.ID, id))
		return
	}
	if jobs.IDFor(body.Request) != id {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("fabric: request bytes do not hash to %q (corrupt in flight?)", id))
		return
	}
	// Create is atomic-rename idempotent: a re-PUT (the leader healing
	// a 404) refreshes request and meta in place.
	if err := rp.cfg.Store.Create(body.Meta, body.Request); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct {
		ID string `json:"id"`
	}{id})
}

func (rp *Replica) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !rp.fence(w, r) {
		return
	}
	id := r.PathValue("id")
	from, err := strconv.Atoi(r.URL.Query().Get("from"))
	if err != nil || from < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: checkpoint from %q must be a non-negative integer", r.URL.Query().Get("from")))
		return
	}
	var meta jobs.Meta
	if err := json.Unmarshal([]byte(r.Header.Get(HeaderReplicaMeta)), &meta); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: bad %s: %v", HeaderReplicaMeta, err))
		return
	}
	if meta.ID != id {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: meta id %q != path id %q", meta.ID, id))
		return
	}
	if _, err := rp.cfg.Store.ReadMeta(id); errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, fmt.Errorf("fabric: job %s not replicated here", id))
		return
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: reading checkpoint body: %w", err))
		return
	}
	// Unframe and verify every line before any byte lands: a corrupt
	// frame rejects the whole checkpoint (422) and the leader resends —
	// partial application would leave the replica claiming lines it
	// does not durably hold.
	lines, err := unframeAll(body)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	n, err := rp.cfg.Store.ApplyReplicated(id, from, lines, meta)
	var gap *jobs.ReplicaGapError
	switch {
	case errors.As(err, &gap):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(struct {
			Lines int    `json:"lines"`
			Error string `json:"error"`
		}{gap.Have, err.Error()})
		return
	case errors.Is(err, jobs.ErrLeaseHeld):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct {
		Lines int `json:"lines"`
	}{n})
}

// unframeAll verifies a body of CRC-32C framed result lines and
// returns the concatenated payload bytes.
func unframeAll(body []byte) ([]byte, error) {
	out := make([]byte, 0, len(body))
	for i := 0; len(body) > 0; i++ {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("fabric: checkpoint frame %d is torn (no newline)", i)
		}
		line, err := api.UnframeLine(body[:nl+1])
		if err != nil {
			return nil, fmt.Errorf("fabric: checkpoint frame %d: %w", i, err)
		}
		out = append(out, line...)
		body = body[nl+1:]
	}
	return out, nil
}

func (rp *Replica) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !rp.fence(w, r) {
		return
	}
	if err := rp.cfg.Store.Remove(r.PathValue("id")); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStatus reports a replicated job's durable state: its meta plus
// how many complete result lines are on disk.
func (rp *Replica) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	meta, err := rp.cfg.Store.ReadMeta(id)
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, err)
		return
	} else if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	lines, err := countLines(rp.cfg.Store.ResultsPath(id))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, struct {
		Meta  jobs.Meta `json:"meta"`
		Lines int       `json:"lines"`
	}{meta, lines})
}

// countLines counts complete ('\n'-terminated) lines; a missing file
// is zero lines.
func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, buf := 0, make([]byte, 64<<10)
	for {
		k, rerr := f.Read(buf)
		n += bytes.Count(buf[:k], []byte{'\n'})
		if rerr == io.EOF {
			return n, nil
		}
		if rerr != nil {
			return 0, rerr
		}
	}
}

// heartbeatBody is the lease-renewal payload.
type heartbeatBody struct {
	Term   uint64 `json:"term"`
	Leader string `json:"leader"`
}

func (rp *Replica) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb heartbeatBody
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<10)).Decode(&hb); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("fabric: bad heartbeat: %w", err))
		return
	}
	if err := rp.observe(hb.Term, hb.Leader); err != nil {
		var stale *errStaleTerm
		if errors.As(err, &stale) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusPreconditionFailed)
			json.NewEncoder(w).Encode(struct {
				Term uint64 `json:"term"`
			}{stale.term})
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	term, leader := rp.Term()
	writeJSON(w, struct {
		Term   uint64 `json:"term"`
		Leader string `json:"leader"`
	}{term, leader})
}

// handleSelf reports this replica's view of the lease.
func (rp *Replica) handleSelf(w http.ResponseWriter, r *http.Request) {
	rp.mu.Lock()
	term, leader, age := rp.term, rp.leader, time.Since(rp.beatAt)
	rp.mu.Unlock()
	writeJSON(w, struct {
		Term      uint64 `json:"term"`
		Leader    string `json:"leader"`
		BeatAgeMS int64  `json:"beatAgeMs"`
	}{term, leader, age.Milliseconds()})
}
