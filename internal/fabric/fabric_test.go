package fabric

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/jobs"
)

// sweepBody is the shared test request: the default protocol and φ/R
// axes over one MTBF — a 25-point grid, enough to land several ranges
// on every worker of a 3-node fleet.
const sweepBody = `{"scenario":{"mtbf":1800},"tbase":10000,"runs":2,"seed":7}`

func testOptions() api.Options {
	return api.Options{CacheSize: 64, Workers: 2, MaxRuns: 16}
}

// fault is a per-worker fault injector wrapped around the worker's API
// handler. Its zero value is transparent.
type fault struct {
	mu sync.Mutex
	// cutAfter > 0 aborts each sweep response's connection after that
	// many NDJSON lines.
	cutAfter int
	// hang blocks each sweep dispatch — writing nothing — until the
	// coordinator gives up (the partition case: the lease watchdog is
	// the only way out).
	hang bool
}

func (f *fault) middleware(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" {
			inner.ServeHTTP(w, r)
			return
		}
		f.mu.Lock()
		cut, hang := f.cutAfter, f.hang
		f.mu.Unlock()
		if hang {
			// Drain the body first: net/http only watches for client
			// aborts once the request body is consumed, and without
			// that watch the handler would outlive the coordinator's
			// cancelled dispatch and wedge server shutdown.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
		if cut > 0 {
			w = &cutoffWriter{ResponseWriter: w, remaining: cut}
		}
		inner.ServeHTTP(w, r)
	})
}

// cutoffWriter drops the connection once its line budget is spent,
// emulating a worker process killed mid-range.
type cutoffWriter struct {
	http.ResponseWriter
	remaining int
}

func (w *cutoffWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	w.remaining -= bytes.Count(p, []byte{'\n'})
	return w.ResponseWriter.Write(p)
}

func (w *cutoffWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newFleet starts n in-process workers (each a full api server over its
// own service) and returns a coordinator over them plus the per-worker
// fault injectors.
func newFleet(t *testing.T, n int, cfg Config) (*Coordinator, []*fault) {
	t.Helper()
	faults := make([]*fault, n)
	urls := make([]string, n)
	for i := range urls {
		faults[i] = &fault{}
		ts := httptest.NewServer(faults[i].middleware(api.NewServer(api.NewService(testOptions()))))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	cfg.Workers = urls
	if cfg.Service == nil {
		cfg.Service = api.NewService(testOptions())
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord, faults
}

// singleNodeLines runs the request on one fresh node through the job
// executor — the same encoder the workers stream through — and returns
// the canonical request bytes and the reference NDJSON lines. This is
// the oracle every distributed run must match byte for byte.
func singleNodeLines(t *testing.T, body string) (canonical []byte, lines [][]byte) {
	t.Helper()
	svc := api.NewService(testOptions())
	canonical, _, err := svc.NormalizeJobRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	err = svc.JobExecutor()(context.Background(), canonical, 0, nil, func(line []byte) error {
		lines = append(lines, append([]byte(nil), line...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return canonical, lines
}

// collectDistributed runs the coordinator's executor path and returns
// the merged lines.
func collectDistributed(t *testing.T, coord *Coordinator, canonical []byte, offset int) [][]byte {
	t.Helper()
	var lines [][]byte
	total := -1
	err := coord.SweepStreamFrom(context.Background(), canonical, offset, func(n int) error {
		total = n
		return nil
	}, func(line []byte) error {
		lines = append(lines, append([]byte(nil), line...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total < 0 {
		t.Fatal("start callback never ran")
	}
	return lines
}

func requireIdentical(t *testing.T, got, want [][]byte) {
	t.Helper()
	if !bytes.Equal(bytes.Join(got, nil), bytes.Join(want, nil)) {
		if len(got) != len(want) {
			t.Fatalf("got %d lines, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("line %d differs:\ngot  %s\nwant %s", i, got[i], want[i])
			}
		}
		t.Fatal("outputs differ")
	}
}

// TestFabricThreeNodeByteIdentical is the central oracle and the CI
// smoke test: a 3-worker distributed sweep — executor path, streaming
// HTTP path, ranged HTTP path and non-streaming JSON path — produces
// exactly the bytes of a single-node run.
func TestFabricThreeNodeByteIdentical(t *testing.T) {
	canonical, want := singleNodeLines(t, sweepBody)
	coord, _ := newFleet(t, 3, Config{})

	requireIdentical(t, collectDistributed(t, coord, canonical, 0), want)
	// Resume offsets shard mid-grid (the durable-job resume path).
	requireIdentical(t, collectDistributed(t, coord, canonical, 11), want[11:])

	cts := httptest.NewServer(coord.Handler(api.NewServer(coord.cfg.Service)))
	defer cts.Close()

	// Streaming HTTP: body bytes equal the single-node stream.
	req, _ := http.NewRequest(http.MethodPost, cts.URL+"/v1/sweep", strings.NewReader(sweepBody))
	req.Header.Set("Accept", api.NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, bytes.Join(want, nil)) {
		t.Fatal("streamed HTTP body differs from single-node stream")
	}
	if got := resp.Trailer.Get(api.HeaderSweepPoints); got != "25" {
		t.Errorf("points trailer = %q, want 25", got)
	}

	// Ranged dispatch wire format on the coordinator itself (so a
	// coordinator can serve as a worker tier of a larger fabric).
	req, _ = http.NewRequest(http.MethodPost, cts.URL+"/v1/sweep?offset=5&limit=7", strings.NewReader(sweepBody))
	req.Header.Set("Accept", api.NDJSONContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(body, bytes.Join(want[5:12], nil)) {
		t.Fatal("ranged HTTP body differs from the single-node slice")
	}

	// Non-streaming JSON: byte-identical to the single-node response.
	single := httptest.NewServer(api.NewServer(api.NewService(testOptions())))
	defer single.Close()
	wantJSON := postJSON(t, single.URL+"/v1/sweep", sweepBody)
	gotJSON := postJSON(t, cts.URL+"/v1/sweep", sweepBody)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("non-streaming body differs:\ngot  %s\nwant %s", gotJSON, wantJSON)
	}
}

func postJSON(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	return data
}

// TestFabricWorkerKilledMidRange: worker 0's connection drops after two
// lines of every dispatch. Its ranges are re-dispatched (resuming at
// the first undelivered point) and stolen by the survivors; the merged
// output is still byte-identical.
func TestFabricWorkerKilledMidRange(t *testing.T) {
	canonical, want := singleNodeLines(t, sweepBody)
	coord, faults := newFleet(t, 3, Config{Lease: 500 * time.Millisecond, MaxAttempts: 40})
	faults[0].cutAfter = 2
	requireIdentical(t, collectDistributed(t, coord, canonical, 0), want)
}

// TestFabricWorkerPartitioned: worker 1 accepts dispatches but never
// sends a byte — the network-partition case, where only the lease
// watchdog can reclaim the range. The sweep completes on the survivors,
// byte-identically.
func TestFabricWorkerPartitioned(t *testing.T) {
	canonical, want := singleNodeLines(t, sweepBody)
	coord, faults := newFleet(t, 3, Config{Lease: 200 * time.Millisecond, MaxAttempts: 60})
	faults[1].hang = true
	requireIdentical(t, collectDistributed(t, coord, canonical, 0), want)
}

// TestFabricStaleWorkerStolen: every worker is healthy but worker 2
// hangs on its first dispatch only; the range must come back through
// the watchdog + steal path and the duplicate deliveries dedupe.
func TestFabricStaleWorkerStolen(t *testing.T) {
	canonical, want := singleNodeLines(t, sweepBody)
	coord, faults := newFleet(t, 3, Config{Lease: 250 * time.Millisecond, StealAfter: 100 * time.Millisecond, MaxAttempts: 60})
	faults[2].mu.Lock()
	faults[2].hang = true
	faults[2].mu.Unlock()
	go func() {
		time.Sleep(150 * time.Millisecond)
		faults[2].mu.Lock()
		faults[2].hang = false
		faults[2].mu.Unlock()
	}()
	requireIdentical(t, collectDistributed(t, coord, canonical, 0), want)
}

// TestFabricAllWorkersBroken: with local fallback disabled, a sweep
// over a dead fleet fails with the worker's error after the attempt
// budget — never a silent truncation. (With fallback on — the default
// — the same fleet degrades to local execution; see
// TestFabricAllWorkersDarkDegradesLocal.)
func TestFabricAllWorkersBroken(t *testing.T) {
	canonical, _ := singleNodeLines(t, sweepBody)
	coord, faults := newFleet(t, 2, Config{Lease: 100 * time.Millisecond, MaxAttempts: 3, DisableLocalFallback: true})
	for _, f := range faults {
		f.cutAfter = 1 // dies inside the first line of every response
	}
	err := coord.SweepStreamFrom(context.Background(), canonical, 0, nil, func([]byte) error { return nil })
	if err == nil {
		t.Fatal("sweep over a dead fleet succeeded")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error does not name the exhausted attempts: %v", err)
	}
}

// TestFabricCoordinatorRestartMidJob is the coordinator-crash drill: a
// distributed job checkpoints into the coordinator's store, the
// coordinator dies mid-sweep, a restarted coordinator adopts the job
// from its durable offset, and the final results file is byte-identical
// to an uninterrupted single-node run.
func TestFabricCoordinatorRestartMidJob(t *testing.T) {
	_, want := singleNodeLines(t, sweepBody)
	dir := t.TempDir()

	coord1, _ := newFleet(t, 3, Config{})
	gate := make(chan struct{})
	exec1 := coord1.Executor()
	// The gated executor stalls the first coordinator after 5 emitted
	// points so the kill lands mid-sweep with checkpoints on disk.
	gated := func(ctx context.Context, request []byte, offset int, start func(int) error, emit func(line []byte) error) error {
		n := 0
		return exec1(ctx, request, offset, start, func(line []byte) error {
			if n >= 5 {
				select {
				case <-gate:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			n++
			return emit(line)
		})
	}
	mgr1, err := jobs.NewManager(jobs.Config{
		Dir:             dir,
		CheckpointEvery: 2,
		Exec:            gated,
		Normalize:       coord1.cfg.Service.NormalizeJobRequest,
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, created, err := mgr1.Submit([]byte(sweepBody))
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	id := meta.ID

	// Wait for durable progress, then kill the coordinator mid-job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m, err := mgr1.Get(id); err == nil && m.Completed >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no durable checkpoint before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mgr1.Close() // the "kill": cancels the in-flight distributed sweep

	crashed, err := jobs.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := crashed.ReadMeta(id)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != jobs.Running || m.Completed >= m.Total {
		t.Fatalf("job after crash: state %s completed %d/%d, want mid-sweep running", m.State, m.Completed, m.Total)
	}

	// Restart: a fresh coordinator (fresh fleet, too) over the same
	// store adopts the job at recovery and resumes from the durable
	// offset.
	coord2, _ := newFleet(t, 3, Config{})
	mgr2, err := jobs.NewManager(jobs.Config{
		Dir:             dir,
		CheckpointEvery: 2,
		Exec:            coord2.Executor(),
		Normalize:       coord2.cfg.Service.NormalizeJobRequest,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := mgr2.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.Done {
		t.Fatalf("resumed job finished %s (%s), want done", final.State, final.Error)
	}
	results, err := os.ReadFile(mgr2.Store().ResultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(results, bytes.Join(want, nil)) {
		t.Fatal("post-restart results file differs from uninterrupted single-node run")
	}
}

// TestFabricEmitErrorAborts: a failing downstream consumer (client
// disconnect) aborts the whole sweep promptly with that error.
func TestFabricEmitErrorAborts(t *testing.T) {
	canonical, _ := singleNodeLines(t, sweepBody)
	coord, _ := newFleet(t, 2, Config{})
	boom := errors.New("client gone")
	n := 0
	err := coord.SweepStreamFrom(context.Background(), canonical, 0, nil, func([]byte) error {
		if n >= 3 {
			return boom
		}
		n++
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("emit error not surfaced: %v", err)
	}
}

// TestFabricRejectsBadRequests: validation errors surface before any
// dispatch, through both the executor and HTTP paths.
func TestFabricBadRequest(t *testing.T) {
	coord, _ := newFleet(t, 2, Config{})
	err := coord.SweepStreamFrom(context.Background(), []byte(`{"runs":-3}`), 0, nil, func([]byte) error { return nil })
	if err == nil {
		t.Fatal("invalid request accepted")
	}
	cts := httptest.NewServer(coord.Handler(api.NewServer(coord.cfg.Service)))
	defer cts.Close()
	resp, err := http.Post(cts.URL+"/v1/sweep", "application/json", strings.NewReader(`{"runs":-3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid request got status %d, want 400", resp.StatusCode)
	}
}
