// Package fabric shards one sweep across N serve nodes: a coordinator
// partitions a grid's content-keyed point keys over workers with
// consistent hashing, dispatches contiguous point ranges through the
// existing /v1/sweep wire format (offset/limit parameters), merges the
// worker NDJSON streams back into canonical grid order — byte-identical
// to a single-node run, which is the central correctness oracle — and
// re-dispatches ranges from slow or dead workers under a lease +
// heartbeat discipline. Because every point's seed is content-keyed
// (never position- or node-dependent), any worker produces the same
// bytes for the same point, so work stealing and duplicate dispatches
// stay deterministic: the merger dedupes by point index and the first
// copy of a line is the only possible value of that line.
//
// DESIGN.md, "Distributed fabric", documents the partitioning, lease
// and merge invariants; README.md has the coordinator/worker
// quickstart.
package fabric

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over worker indices: each worker owns
// `replicas` virtual nodes, and a key belongs to the worker whose
// virtual node is the key hash's clockwise successor. Adding or
// removing one worker therefore reassigns only ~1/N of the keys —
// the property the partitioner's test pins down — so a fleet change
// invalidates only a sliver of any warm per-worker point caches.
type Ring struct {
	workers  []string
	replicas int
	hashes   []uint64 // sorted virtual-node hashes
	owner    []int    // owner[i] = worker index of hashes[i]
}

// DefaultReplicas is the virtual-node count per worker when NewRing is
// given zero: enough to keep per-worker load within a few percent of
// even for the grid sizes the service admits.
const DefaultReplicas = 128

// NewRing builds a ring over the given workers (base URLs or any
// distinct identifiers).
func NewRing(workers []string, replicas int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, errors.New("fabric: ring needs at least one worker")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w == "" {
			return nil, errors.New("fabric: empty worker identifier")
		}
		if seen[w] {
			return nil, fmt.Errorf("fabric: duplicate worker %q", w)
		}
		seen[w] = true
	}
	r := &Ring{
		workers:  append([]string(nil), workers...),
		replicas: replicas,
		hashes:   make([]uint64, 0, len(workers)*replicas),
		owner:    make([]int, 0, len(workers)*replicas),
	}
	type vnode struct {
		hash  uint64
		owner int
	}
	vnodes := make([]vnode, 0, len(workers)*replicas)
	for wi, w := range workers {
		for v := 0; v < replicas; v++ {
			vnodes = append(vnodes, vnode{hash64(fmt.Sprintf("%s#%d", w, v)), wi})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit FNV) break by worker
		// index so the ring stays a pure function of its inputs.
		return vnodes[i].owner < vnodes[j].owner
	})
	for _, v := range vnodes {
		r.hashes = append(r.hashes, v.hash)
		r.owner = append(r.owner, v.owner)
	}
	return r, nil
}

// Workers returns the ring's worker identifiers, in construction order.
func (r *Ring) Workers() []string { return append([]string(nil), r.workers...) }

// Owner returns the worker index owning the key: the owner of the
// key hash's successor virtual node. Every key has exactly one owner,
// whatever the worker count.
func (r *Ring) Owner(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap: the successor of the largest hash is the smallest
	}
	return r.owner[i]
}

// Range is a contiguous run of grid points [Start, Start+Count) whose
// keys all hash to one worker.
type Range struct {
	Start  int
	Count  int
	Worker int
}

// Ranges partitions the keys of grid points [base, base+len(keys))
// into maximal contiguous same-owner ranges, in grid order. The ranges
// tile the interval exactly: every point appears in exactly one range.
func (r *Ring) Ranges(keys []string, base int) []Range {
	var out []Range
	for i, key := range keys {
		w := r.Owner(key)
		if n := len(out); n > 0 && out[n-1].Worker == w {
			out[n-1].Count++
			continue
		}
		out = append(out, Range{Start: base + i, Count: 1, Worker: w})
	}
	return out
}

// hash64 is the FNV-1a hash used for both virtual nodes and point
// keys. The point keys it consumes are the sweep engine's canonical
// content keys, so the partition — like the per-point seeds derived
// from the same keys — is independent of grid position.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
