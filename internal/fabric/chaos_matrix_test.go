package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
)

// chaosSeed is the matrix's plan seed: CHAOS_SEED from the environment
// (the CI chaos shard randomizes it per run) or a fixed default. It is
// always logged so a failing run replays exactly.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEED")
	if env == "" {
		return 20260808
	}
	seed, err := strconv.ParseUint(env, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", env, err)
	}
	return seed
}

// TestFabricChaosMatrix is the chaos oracle: every fault class the
// chaos package can inject, armed on the coordinator→worker transport
// of a healthy 3-node fleet, and the sweep must still complete
// byte-identical to a single-node run — faults surface as retries,
// open circuits or degraded local execution, never as silent
// truncation, corruption or a hang past the test deadline.
//
// chaos.Classes is iterated, so adding a fault class without matrix
// coverage fails here.
func TestFabricChaosMatrix(t *testing.T) {
	seed := chaosSeed(t)
	canonical, want := singleNodeLines(t, sweepBody)
	for _, class := range chaos.Classes {
		t.Run(string(class), func(t *testing.T) {
			urls := make([]string, 3)
			for i := range urls {
				ts := httptest.NewServer(api.NewServer(api.NewService(testOptions())))
				t.Cleanup(ts.Close)
				urls[i] = ts.URL
			}
			rule := chaos.Rule{Site: chaos.SiteComms, Class: class, P: 0.3}
			switch class {
			case chaos.Delay:
				rule.Delay = 5 * time.Millisecond
			case chaos.Hang:
				// Every hang burns a full lease before the watchdog frees
				// the slot; keep the rate where the sweep finishes well
				// inside the deadline.
				rule.P = 0.15
			case chaos.Partition:
				// One worker fully unreachable: its circuit must open and
				// the survivors absorb its ranges.
				rule.P = 1
				rule.Peer = strings.TrimPrefix(urls[0], "http://")
			}
			plan := chaos.Plan{Seed: seed, Rules: []chaos.Rule{rule}}
			inj, err := chaos.New(plan)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("chaos plan %q (replay: CHAOS_SEED=%d)", plan, seed)
			coord, err := New(Config{
				Service: api.NewService(testOptions()),
				Workers: urls,
				Client: &http.Client{
					Transport: &chaos.Transport{Injector: inj, Next: DefaultTransport()},
				},
				Lease:           300 * time.Millisecond,
				RetryBackoff:    time.Millisecond,
				RetryBackoffCap: 20 * time.Millisecond,
				BreakerCooldown: 100 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			var lines [][]byte
			err = coord.SweepStreamFrom(ctx, canonical, 0, nil, func(line []byte) error {
				lines = append(lines, append([]byte(nil), line...))
				return nil
			})
			if err != nil {
				t.Fatalf("sweep under %s chaos: %v", class, err)
			}
			requireIdentical(t, lines, want)
			if class == chaos.Partition && !coord.Status().Degraded {
				t.Error("partitioned worker's circuit never opened")
			}
		})
	}
}
