package fabric

import (
	"sync"
	"time"
)

// breakerState is the classic circuit-breaker state machine:
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapses)──▶ half-open
//	half-open ──(probe succeeds)──▶ closed
//	half-open ──(probe fails)──▶ open (cooldown restarts)
//
// One breaker guards one worker, process-wide: its verdict persists
// across sweeps, so a worker that burned its budget during one sweep
// is not naively hammered by the next.
type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case bkOpen:
		return "open"
	case bkHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-worker circuit breaker. All methods are safe for
// concurrent use (several sweeps may drive one worker's breaker at
// once).
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int // consecutive failures
	openUntil time.Time
	probing   bool // a half-open probe dispatch is in flight
	threshold int
	cooldown  time.Duration
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a dispatch to this worker may proceed now.
// An open circuit admits nothing until its cooldown elapses, then
// exactly one probe at a time (half-open); a probe that never turns
// into a dispatch must be returned via CancelProbe.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkClosed:
		return true
	case bkOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = bkHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// CancelProbe returns an unused half-open probe slot (the worker loop
// claimed it but the sweep ended before a dispatch ran).
func (b *breaker) CancelProbe() {
	b.mu.Lock()
	if b.state == bkHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// Success records a completed dispatch: the circuit closes and the
// failure run resets.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = bkClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed dispatch: a half-open probe reopens the
// circuit immediately, a closed circuit opens once the consecutive
// run reaches the threshold.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	b.fails++
	b.probing = false
	if b.state == bkHalfOpen || b.fails >= b.threshold {
		b.state = bkOpen
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
}

// Closed reports whether the circuit is closed (the worker is believed
// healthy). Open and half-open circuits both count as impaired: a
// probe in flight is hope, not health.
func (b *breaker) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == bkClosed
}

// State renders the current state for /readyz.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
